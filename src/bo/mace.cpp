#include "bo/mace.hpp"

#include <cmath>
#include <limits>

#include "obs/obs.hpp"

namespace kato::bo {

namespace {

/// Objective metric GP scale for violation normalization.
std::vector<double> constraint_scales(const Surrogate& surrogate,
                                      std::size_t n_constraints) {
  // Scales are folded into the GP standardization already; use unit scales.
  (void)surrogate;
  return std::vector<double>(n_constraints, 1.0);
}

/// Lift a per-candidate acquisition map (predictions -> objective vector)
/// into the NSGA batch evaluator.  The surrogate posterior — the expensive
/// stage — runs over the whole generation at once (one cross-covariance and
/// one triangular solve per metric) and splits across KATO_THREADS workers
/// inside predict_batch, writing per-candidate slots so any thread count
/// produces bit-identical proposals.  The remaining acquisition arithmetic
/// is a handful of flops per candidate: spawning threads for it would cost
/// more than the work, so it stays a plain loop.
template <typename AcqFn>
moo::BatchObjectiveFn batch_acquisition(const Surrogate& surrogate,
                                        AcqFn acquisition) {
  return [&surrogate, acquisition](const std::vector<std::vector<double>>& xs) {
    const la::Matrix xq = la::Matrix::from_points(xs);
    const auto preds = surrogate.predict_batch(xq);
    std::vector<std::vector<double>> out(xs.size());
    for (std::size_t q = 0; q < xs.size(); ++q) out[q] = acquisition(preds[q]);
    return out;
  };
}

}  // namespace

moo::ParetoSet mace_proposals(const Surrogate& surrogate,
                              const std::vector<ckt::MetricSpec>& specs,
                              double y_best, const MaceOptions& options,
                              util::Rng& rng,
                              const std::vector<std::vector<double>>& seeds) {
  KATO_OBS_SPAN("acquisition");
  KATO_OBS_STAGE(acquisition);
  const bool have_incumbent = std::isfinite(y_best);
  const std::size_t n_obj = options.variant == MaceVariant::modified ? 3 : 6;
  const auto scales = constraint_scales(surrogate, specs.size());

  auto acquisition = [&specs, &scales, &options, y_best,
                      have_incumbent](const std::vector<gp::GpPrediction>& preds) {
    const gp::GpPrediction obj = preds.front();
    const std::vector<gp::GpPrediction> cons(preds.begin() + 1, preds.end());
    const double pf = probability_of_feasibility(cons, specs);

    // Without a feasible incumbent the improvement acquisitions are
    // undefined; search feasibility (PF) with an exploration tiebreak.
    const double sigma = std::sqrt(std::max(obj.var, 1e-18));
    const double ei = have_incumbent ? expected_improvement(obj, y_best) : sigma;
    const double pi = have_incumbent ? probability_of_improvement(obj, y_best)
                                     : pf;
    const double ucb = have_incumbent
                           ? ucb_improvement(obj, y_best, options.ucb_beta)
                           : sigma;

    if (options.variant == MaceVariant::modified) {
      // Eq. 13: maximize {UCB, PI, EI} x PF  ==  minimize the negations.
      return std::vector<double>{-ei * pf, -pi * pf, -ucb * pf};
    }
    return std::vector<double>{-ei,
                               -pi,
                               -ucb,
                               -pf,
                               total_violation(cons, specs, scales),
                               total_violation_scaled(cons, specs)};
  };

  // NSGA genes = design variables in the unit box.
  const std::size_t dim = surrogate.input_dim();
  return moo::nsga2_batch(batch_acquisition(surrogate, acquisition), dim, n_obj,
                          options.nsga, rng, seeds);
}

moo::ParetoSet mace_proposals_unconstrained(
    const Surrogate& surrogate, double y_best, const MaceOptions& options,
    util::Rng& rng, const std::vector<std::vector<double>>& seeds) {
  KATO_OBS_SPAN("acquisition");
  KATO_OBS_STAGE(acquisition);
  auto acquisition = [&options,
                      y_best](const std::vector<gp::GpPrediction>& preds) {
    const gp::GpPrediction obj = preds.front();
    return std::vector<double>{
        -expected_improvement(obj, y_best),
        -probability_of_improvement(obj, y_best),
        -ucb_improvement(obj, y_best, options.ucb_beta)};
  };
  const std::size_t dim = surrogate.input_dim();
  return moo::nsga2_batch(batch_acquisition(surrogate, acquisition), dim, 3,
                          options.nsga, rng, seeds);
}

std::vector<std::vector<double>> select_batch(const moo::ParetoSet& set,
                                              std::size_t count, std::size_t dim,
                                              util::Rng& rng) {
  std::vector<std::vector<double>> batch;
  if (!set.x.empty()) {
    const auto order = rng.permutation(set.x.size());
    for (std::size_t k = 0; k < order.size() && batch.size() < count; ++k) {
      const auto& cand = set.x[order[k]];
      bool duplicate = false;
      for (const auto& chosen : batch) {
        double d2 = 0.0;
        for (std::size_t j = 0; j < dim; ++j)
          d2 += (cand[j] - chosen[j]) * (cand[j] - chosen[j]);
        if (d2 < 1e-10) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) batch.push_back(cand);
    }
  }
  while (batch.size() < count) batch.push_back(rng.uniform_vec(dim));
  return batch;
}

}  // namespace kato::bo

#include "bo/drivers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/journal.hpp"
#include "obs/obs.hpp"
#include "rf/random_forest.hpp"
#include "util/sampling.hpp"

namespace kato::bo {

namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

// --- Run-journal helpers ---------------------------------------------------
// Journal emission is value-free: these helpers only read optimizer state
// and format strings, and every call site is gated on the state's captured
// journal flag, so a journaled run's RNG stream and arithmetic stay
// bit-identical to an unjournaled one (pinned by obs_test's ObsBo cases).

std::string config_json(const BoConfig& c, bool transfer) {
  obs::JsonObj o;
  o.uint("batch", c.batch)
      .uint("iterations", c.iterations)
      .uint("n_init", c.n_init)
      .num("ucb_beta", c.ucb_beta)
      .boolean("use_stl", c.use_stl)
      .uint("max_gp_points", c.max_gp_points)
      .uint("hyper_every", c.hyper_every)
      .boolean("transfer", transfer);
  return o.take();
}

/// New design points as an array of arrays, from index `from` on.
std::string points_json(const std::vector<std::vector<double>>& xs,
                        std::size_t from) {
  std::string out = "[";
  for (std::size_t i = from; i < xs.size(); ++i) {
    if (i != from) out += ',';
    out += obs::json_array(xs[i]);
  }
  out += ']';
  return out;
}

/// Append the acquisition vectors of a selected batch, matched back into the
/// Pareto set by exact design-vector equality (select_batch copies rows
/// verbatim; random fill-ins that never sat on the front log as null).
/// Rows of `p.f` are the negated acquisition objectives MACE minimizes.
void append_acq(std::string& out, const moo::ParetoSet& p,
                const std::vector<std::vector<double>>& batch) {
  for (const auto& x : batch) {
    if (out.size() > 1) out += ',';
    std::size_t hit = p.x.size();
    for (std::size_t i = 0; i < p.x.size(); ++i)
      if (p.x[i] == x) {
        hit = i;
        break;
      }
    out += hit < p.x.size() ? obs::json_array(p.f[hit]) : "null";
  }
}

/// GP refit diagnostics from the objective GP (metric 0): NLL/iterations of
/// the last hyper-fit, current noise, and the kernel hyperparameters — in
/// full for small kernels, as dimension+norm for NeuK's weight vector so a
/// journal line stays bounded.
std::string gp_json(GpSurrogate& s, bool hyper, bool warm) {
  gp::GaussianProcess& g0 = s.model().metric(0);
  const gp::GpFitInfo& info = g0.last_fit_info();
  obs::JsonObj o;
  o.boolean("hyper", hyper)
      .boolean("warm", warm)
      .num("nll", info.best_nll)
      .num("fit_iters", info.iterations)
      .num("noise", g0.noise_var());
  const auto theta = g0.kernel().params();
  if (theta.size() <= 16) {
    o.raw("theta", obs::json_array({theta.begin(), theta.end()}));
  } else {
    double sq = 0.0;
    for (const double t : theta) sq += t * t;
    o.uint("n_theta", theta.size()).num("theta_norm", std::sqrt(sq));
  }
  return o.take();
}

/// Shared bookkeeping: simulate, record history, maintain the running best.
class ConstrainedState {
 public:
  ConstrainedState(const ckt::SizingCircuit& circuit) : circuit_(circuit) {}

  /// Simulate one design; returns true when it improved the incumbent.
  bool simulate(const std::vector<double>& x) {
    return record(x, circuit_.evaluate(x));
  }

  /// Simulate a whole proposal batch through SizingCircuit::evaluate_batch
  /// (thread-parallel for circuits that override it), then record in
  /// submission order — history, trace and incumbent bookkeeping are
  /// bit-identical to calling simulate() in a loop.
  std::vector<char> simulate_batch(const std::vector<std::vector<double>>& xs) {
    KATO_OBS_SPAN("simulate_batch");
    obs::bo_count(obs::BoCounter::proposal_batches);
    obs::bo_count(obs::BoCounter::proposals, xs.size());
    const std::uint64_t t0 = jon_ ? obs::trace_now_ns() : 0;
    const auto metrics = circuit_.evaluate_batch(xs);
    if (jon_) eval_ns_ += obs::trace_now_ns() - t0;
    std::vector<char> improved(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
      improved[i] = record(xs[i], metrics[i]) ? 1 : 0;
    return improved;
  }

  double best() const { return best_; }
  std::size_t n_valid() const { return xs_.size(); }
  const ckt::SizingCircuit& circuit() const { return circuit_; }
  RunResult take_result() { return std::move(result_); }

  // --- Run-journal emission (value-free; see helpers above) ---------------

  bool journal_on() const { return jon_; }

  void journal_begin(const char* method, const BoConfig& config,
                     std::uint64_t seed, bool transfer) {
    if (!jon_) return;
    obs::JsonObj o;
    o.str("event", "run_begin")
        .uint("run", jid_)
        .str("mode", "constrained")
        .str("method", method)
        .str("circuit", circuit_.name())
        .uint("dim", circuit_.dim())
        .uint("n_metrics", circuit_.n_metrics())
        .uint("seed", seed)
        .raw("config", config_json(config, transfer));
    obs::journal_write(o.take());
  }

  /// One progress record covering everything simulated since the previous
  /// one: the DOE batch ("doe"), a too-little-data random batch ("explore"),
  /// or a model-driven iteration ("propose", with GP/acquisition payloads).
  void journal_step(const char* phase, std::int64_t iter,
                    const std::string& gp, const std::string& acq) {
    if (!jon_) return;
    obs::JsonObj o;
    o.str("event", "iteration")
        .uint("run", jid_)
        .str("phase", phase)
        .num("iter", static_cast<double>(iter))
        .uint("sims", result_.trace.size());
    std::size_t ok = 0;
    std::size_t feas = 0;
    for (std::size_t i = jmark_; i < result_.metrics_history.size(); ++i)
      if (result_.metrics_history[i]) {
        ++ok;
        if (circuit_.feasible(*result_.metrics_history[i])) ++feas;
      }
    o.uint("n_prop", result_.trace.size() - jmark_)
        .uint("n_valid", ok)
        .uint("n_feasible", feas)
        .num("eval_ms", static_cast<double>(eval_ns_) / 1e6)
        .raw("proposals", points_json(result_.x_history, jmark_))
        .raw("trace", obs::json_array({result_.trace.begin() +
                                           static_cast<std::ptrdiff_t>(jmark_),
                                       result_.trace.end()}))
        .num("best", best_);
    if (!result_.best_metrics.empty())
      o.raw("best_violation", violation_json());
    if (!gp.empty()) o.raw("gp", gp);
    if (!acq.empty()) o.raw("acq_f", acq);
    obs::journal_write(o.take());
    jmark_ = result_.trace.size();
    eval_ns_ = 0;
  }

  void journal_end(double w_kat, double w_self) {
    if (!jon_) return;
    obs::JsonObj o;
    o.str("event", "run_end")
        .uint("run", jid_)
        .uint("sims", result_.trace.size())
        .num("best", best_)
        .raw("best_x", obs::json_array(result_.best_x));
    if (!result_.best_metrics.empty())
      o.raw("best_metrics", obs::json_array(result_.best_metrics))
          .raw("best_violation", violation_json());
    o.num("stl_w_kat", w_kat)
        .num("stl_w_self", w_self)
        .raw("regret_curve", obs::json_array(result_.trace));
    obs::journal_write(o.take());
  }

  /// Training matrices capped at `max_points`: all feasible designs are
  /// kept (they anchor the incumbent region), the remainder filled with the
  /// most recent simulations.
  void training_data(std::size_t max_points, la::Matrix& x, la::Matrix& y) const {
    std::vector<std::size_t> keep;
    if (xs_.size() <= max_points) {
      keep.resize(xs_.size());
      for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i;
    } else {
      std::vector<char> taken(xs_.size(), 0);
      for (std::size_t i = 0; i < xs_.size(); ++i)
        if (circuit_.feasible(ys_[i]) && keep.size() < max_points) {
          keep.push_back(i);
          taken[i] = 1;
        }
      for (std::size_t i = xs_.size(); i-- > 0 && keep.size() < max_points;)
        if (!taken[i]) keep.push_back(i);
      std::sort(keep.begin(), keep.end());
    }
    x = la::Matrix(keep.size(), circuit_.dim());
    y = la::Matrix(keep.size(), circuit_.n_metrics());
    for (std::size_t r = 0; r < keep.size(); ++r) {
      x.set_row(r, xs_[keep[r]]);
      y.set_row(r, ys_[keep[r]]);
    }
  }

  /// Up to `count` best feasible designs (NSGA-II seeds).
  std::vector<std::vector<double>> incumbent_seeds(std::size_t count) const {
    std::vector<std::pair<double, std::size_t>> feas;
    for (std::size_t i = 0; i < xs_.size(); ++i)
      if (circuit_.feasible(ys_[i])) feas.push_back({ys_[i][0], i});
    std::sort(feas.begin(), feas.end());
    std::vector<std::vector<double>> seeds;
    for (std::size_t k = 0; k < feas.size() && k < count; ++k)
      seeds.push_back(xs_[feas[k].second]);
    return seeds;
  }

 private:
  bool record(const std::vector<double>& x,
              const std::optional<std::vector<double>>& metrics) {
    result_.x_history.push_back(x);
    result_.metrics_history.push_back(metrics);
    bool improved = false;
    if (metrics) {
      xs_.push_back(x);
      ys_.push_back(*metrics);
      if (circuit_.feasible(*metrics) && (*metrics)[0] < best_) {
        best_ = (*metrics)[0];
        result_.best_x = x;
        result_.best_metrics = *metrics;
        improved = true;
      }
    }
    result_.trace.push_back(best_);
    return improved;
  }

  /// Constraint violations of the incumbent's metrics (0 when satisfied).
  std::string violation_json() const {
    const auto& specs = circuit_.constraints();
    std::vector<double> v(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
      v[i] = specs[i].violation(result_.best_metrics[i + 1]);
    return obs::json_array(v);
  }

  const ckt::SizingCircuit& circuit_;
  RunResult result_;
  std::vector<std::vector<double>> xs_;  ///< valid sims only
  std::vector<std::vector<double>> ys_;
  double best_ = k_inf;
  // Journal bookkeeping, captured once so one run is consistently journaled
  // or not.  jmark_ is the history index at the last emitted step; eval_ns_
  // accumulates simulate_batch wall time between steps.
  const bool jon_ = obs::journal_enabled();
  const std::uint64_t jid_ = jon_ ? obs::journal_next_run_id() : 0;
  std::size_t jmark_ = 0;
  std::uint64_t eval_ns_ = 0;
};

/// Greedy top-k distinct designs from a scored candidate pool.
std::vector<std::vector<double>> top_k_distinct(
    std::vector<std::pair<double, std::vector<double>>>& scored, std::size_t k,
    std::size_t dim, util::Rng& rng) {
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::vector<double>> batch;
  for (const auto& [score, x] : scored) {
    if (batch.size() >= k) break;
    bool dup = false;
    for (const auto& chosen : batch) {
      double d2 = 0.0;
      for (std::size_t j = 0; j < dim; ++j)
        d2 += (x[j] - chosen[j]) * (x[j] - chosen[j]);
      if (d2 < 1e-6) {
        dup = true;
        break;
      }
    }
    if (!dup) batch.push_back(x);
  }
  while (batch.size() < k) batch.push_back(rng.uniform_vec(dim));
  return batch;
}

/// Candidate pool for the scalarized baselines: random exploration plus
/// Gaussian perturbations of the incumbent seeds.
std::vector<std::vector<double>> candidate_pool(
    const std::vector<std::vector<double>>& seeds, std::size_t dim,
    util::Rng& rng) {
  std::vector<std::vector<double>> pool;
  for (int i = 0; i < 1200; ++i) pool.push_back(rng.uniform_vec(dim));
  for (const auto& s : seeds)
    for (int i = 0; i < 80; ++i) {
      auto x = s;
      for (auto& v : x) v = std::clamp(v + 0.05 * rng.normal(), 0.0, 1.0);
      pool.push_back(std::move(x));
    }
  return pool;
}

}  // namespace

const char* to_string(FomMethod m) {
  switch (m) {
    case FomMethod::kato: return "KATO";
    case FomMethod::mace: return "MACE";
    case FomMethod::smac_rf: return "SMAC-RF";
    case FomMethod::random_search: return "RS";
    case FomMethod::tlmbo: return "TLMBO";
  }
  return "?";
}

const char* to_string(ConstrainedMethod m) {
  switch (m) {
    case ConstrainedMethod::kato: return "KATO";
    case ConstrainedMethod::mace_full: return "MACE";
    case ConstrainedMethod::mesmoc: return "MESMOC";
    case ConstrainedMethod::usemoc: return "USEMOC";
  }
  return "?";
}

TransferSource build_transfer_source(const ckt::SizingCircuit& circuit,
                                     std::size_t n_samples, KernelKind kind,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  TransferSource src;
  src.dim = circuit.dim();
  src.fom_norm = ckt::calibrate_fom(circuit, 200, rng);

  std::vector<std::vector<double>> xs;
  std::vector<std::vector<double>> ys;
  std::vector<double> foms;
  while (xs.size() < n_samples) {
    const auto x = rng.uniform_vec(circuit.dim());
    const auto m = circuit.evaluate(x);
    if (!m) continue;
    xs.push_back(x);
    ys.push_back(*m);
    foms.push_back(ckt::fom_value(src.fom_norm, *m));
  }
  src.x = la::Matrix::from_points(xs);
  src.y = la::Matrix(ys.size(), circuit.n_metrics());
  for (std::size_t i = 0; i < ys.size(); ++i) src.y.set_row(i, ys[i]);

  gp::GpFitOptions fit;
  fit.iterations = 120;
  util::Rng fit_rng = rng.split();
  src.metric_model = std::make_shared<gp::MultiGp>(
      circuit.n_metrics(), [&] { return make_kernel(kind, circuit.dim(), fit_rng); });
  src.metric_model->set_data(src.x, src.y);
  src.metric_model->fit(fit, fit_rng);

  // Single-output view for FOM-mode transfer: model -FOM (minimization).
  la::Matrix neg_fom(foms.size(), 1);
  for (std::size_t i = 0; i < foms.size(); ++i) neg_fom(i, 0) = -foms[i];
  src.fom_model = std::make_shared<gp::MultiGp>(
      1, [&] { return make_kernel(kind, circuit.dim(), fit_rng); });
  src.fom_model->set_data(src.x, neg_fom);
  src.fom_model->fit(fit, fit_rng);
  return src;
}

// ---------------------------------------------------------------------------
// Constrained mode.

RunResult run_constrained(const ckt::SizingCircuit& circuit,
                          ConstrainedMethod method, const BoConfig& config,
                          std::uint64_t seed, const TransferSource* source) {
  util::Rng rng(seed);
  ConstrainedState state(circuit);
  const std::size_t dim = circuit.dim();
  const auto& specs = circuit.constraints();

  // Draws consume the RNG stream in the same order as the historical
  // one-point-at-a-time loop; evaluation happens as one (possibly
  // thread-parallel) batch.
  auto random_batch = [&](std::size_t count) {
    std::vector<std::vector<double>> pts;
    pts.reserve(count);
    for (std::size_t i = 0; i < count; ++i) pts.push_back(rng.uniform_vec(dim));
    return pts;
  };

  const bool transfer = method == ConstrainedMethod::kato && source != nullptr;
  state.journal_begin(to_string(method), config, seed, transfer);

  // Initial random design set (DOE).
  (void)state.simulate_batch(random_batch(config.n_init));
  state.journal_step("doe", -1, "", "");

  // Surrogates.
  util::Rng model_rng = rng.split();
  auto self_model = std::make_unique<GpSurrogate>(
      dim, circuit.n_metrics(),
      method == ConstrainedMethod::kato ? KernelKind::neuk : KernelKind::rbf,
      config.gp_initial, config.gp_refit, model_rng);
  std::unique_ptr<KatSurrogate> kat_model;
  if (transfer)
    kat_model = std::make_unique<KatSurrogate>(source->metric_model.get(), dim,
                                               circuit.n_metrics(), config.kat,
                                               model_rng);

  // STL weights (Alg. 1): initialized with the sample counts.
  double w_kat = transfer ? static_cast<double>(source->x.rows()) : 0.0;
  double w_self = static_cast<double>(config.n_init);

  MaceOptions mace_opts;
  mace_opts.ucb_beta = config.ucb_beta;
  mace_opts.nsga = config.nsga;

  bool gp_fitted = false;  // first refit is a cold initial fit
  for (std::size_t it = 0; it < config.iterations; ++it) {
    if (state.n_valid() < 4) {  // not enough data to model: explore
      (void)state.simulate_batch(random_batch(config.batch));
      state.journal_step("explore", static_cast<std::int64_t>(it), "", "");
      continue;
    }
    la::Matrix x;
    la::Matrix y;
    state.training_data(config.max_gp_points, x, y);
    // Warm-started refits: both surrogates keep their previous optimum's
    // hyperparameters and, after the first fit, train on the smaller
    // gp_refit / KatGpConfig::refit_iterations budget.  Posterior-only
    // iterations skip hyper-training entirely.
    const bool hyper = it % config.hyper_every == 0;
    // What the surrogate actually does (it forces an initial fit when none
    // has run yet) — recorded in the journal's gp payload.
    const bool eff_hyper = hyper || !gp_fitted;
    const bool gp_warm = eff_hyper && gp_fitted;
    self_model->refit(x, y, model_rng, hyper);
    if (transfer) kat_model->refit(x, y, model_rng, hyper);
    gp_fitted = true;
    std::string gp_info;
    if (state.journal_on()) gp_info = gp_json(*self_model, eff_hyper, gp_warm);
    std::string acq;

    const double y_best = state.best();
    const auto seeds = state.incumbent_seeds(4);

    switch (method) {
      case ConstrainedMethod::kato: {
        mace_opts.variant = config.kato_variant;
        if (transfer && config.use_stl) {
          // Alg. 1: split the batch between the two proposal sets by weight.
          const auto p_kat =
              mace_proposals(*kat_model, specs, y_best, mace_opts, rng, seeds);
          const auto p_self =
              mace_proposals(*self_model, specs, y_best, mace_opts, rng, seeds);
          const auto n_kat = static_cast<std::size_t>(std::lround(
              w_kat / (w_kat + w_self) * static_cast<double>(config.batch)));
          const auto a_kat = select_batch(p_kat, n_kat, dim, rng);
          const auto a_self =
              select_batch(p_self, config.batch - n_kat, dim, rng);
          if (state.journal_on()) {
            acq = "[";
            append_acq(acq, p_kat, a_kat);
            append_acq(acq, p_self, a_self);
            acq += ']';
          }
          for (char imp : state.simulate_batch(a_kat))
            if (imp) w_kat += 1.0;  // Eq. 14
          for (char imp : state.simulate_batch(a_self))
            if (imp) w_self += 1.0;
        } else if (transfer) {
          // Transfer without STL: trust KAT-GP exclusively (ablation mode).
          const auto p =
              mace_proposals(*kat_model, specs, y_best, mace_opts, rng, seeds);
          const auto sel = select_batch(p, config.batch, dim, rng);
          if (state.journal_on()) {
            acq = "[";
            append_acq(acq, p, sel);
            acq += ']';
          }
          (void)state.simulate_batch(sel);
        } else {
          const auto p =
              mace_proposals(*self_model, specs, y_best, mace_opts, rng, seeds);
          const auto sel = select_batch(p, config.batch, dim, rng);
          if (state.journal_on()) {
            acq = "[";
            append_acq(acq, p, sel);
            acq += ']';
          }
          (void)state.simulate_batch(sel);
        }
        break;
      }
      case ConstrainedMethod::mace_full: {
        mace_opts.variant = MaceVariant::full;
        const auto p =
            mace_proposals(*self_model, specs, y_best, mace_opts, rng, seeds);
        const auto sel = select_batch(p, config.batch, dim, rng);
        if (state.journal_on()) {
          acq = "[";
          append_acq(acq, p, sel);
          acq += ']';
        }
        (void)state.simulate_batch(sel);
        break;
      }
      case ConstrainedMethod::mesmoc: {
        // Exploitation-heavy feasible lower-confidence-bound (see DESIGN.md).
        auto pool = candidate_pool(seeds, dim, rng);
        const auto all_preds =
            self_model->predict_batch(la::Matrix::from_points(pool));
        std::vector<std::pair<double, std::vector<double>>> scored;
        scored.reserve(pool.size());
        for (std::size_t c = 0; c < pool.size(); ++c) {
          const auto& preds = all_preds[c];
          const std::vector<gp::GpPrediction> cons(preds.begin() + 1, preds.end());
          const double pf = probability_of_feasibility(cons, specs);
          const double lcb = std::isfinite(y_best)
                                 ? ucb_improvement(preds[0], y_best, 0.5)
                                 : 1.0;
          scored.push_back({pf * lcb, std::move(pool[c])});
        }
        (void)state.simulate_batch(top_k_distinct(scored, config.batch, dim, rng));
        break;
      }
      case ConstrainedMethod::usemoc: {
        // Uncertainty-aware search: total predictive spread gated by PF.
        auto pool = candidate_pool(seeds, dim, rng);
        const auto all_preds =
            self_model->predict_batch(la::Matrix::from_points(pool));
        std::vector<std::pair<double, std::vector<double>>> scored;
        scored.reserve(pool.size());
        for (std::size_t c = 0; c < pool.size(); ++c) {
          const auto& preds = all_preds[c];
          const std::vector<gp::GpPrediction> cons(preds.begin() + 1, preds.end());
          const double pf = probability_of_feasibility(cons, specs);
          double spread = 0.0;
          for (const auto& p : preds) spread += std::sqrt(std::max(p.var, 0.0));
          scored.push_back({spread * std::sqrt(pf), std::move(pool[c])});
        }
        (void)state.simulate_batch(top_k_distinct(scored, config.batch, dim, rng));
        break;
      }
    }
    state.journal_step("propose", static_cast<std::int64_t>(it), gp_info, acq);
  }

  state.journal_end(w_kat, w_self);
  RunResult result = state.take_result();
  result.stl_w_kat = w_kat;
  result.stl_w_self = w_self;
  return result;
}

// ---------------------------------------------------------------------------
// FOM mode.

namespace {

/// GP surrogate whose mean is offset by a frozen source model — the
/// TLMBO-lite technology-transfer baseline (see DESIGN.md).
class ResidualSurrogate final : public Surrogate {
 public:
  ResidualSurrogate(const gp::MultiGp* source, std::size_t dim,
                    const gp::GpFitOptions& initial_fit,
                    const gp::GpFitOptions& refit, util::Rng& rng)
      : source_(source),
        residual_(dim, 1, KernelKind::rbf, initial_fit, refit, rng) {}

  std::string name() const override { return "tlmbo"; }
  std::size_t n_metrics() const override { return 1; }
  std::size_t input_dim() const override { return residual_.input_dim(); }

  void refit(const la::Matrix& x, const la::Matrix& y, util::Rng& rng,
             bool train_hyper = true) override {
    la::Matrix res(x.rows(), 1);
    const auto src_preds = source_->metric(0).predict_batch(x);
    for (std::size_t i = 0; i < x.rows(); ++i)
      res(i, 0) = y(i, 0) - src_preds[i].mean;
    residual_.refit(x, res, rng, train_hyper);
  }

  std::vector<gp::GpPrediction> predict(std::span<const double> x) const override {
    const auto src = source_->metric(0).predict(x);
    auto pred = residual_.predict(x);
    pred[0].mean += src.mean;
    pred[0].var += 0.25 * src.var;  // deflated: the source is a prior, not data
    return pred;
  }

  std::vector<std::vector<gp::GpPrediction>> predict_batch(
      const la::Matrix& xq) const override {
    const auto src = source_->metric(0).predict_batch(xq);
    auto preds = residual_.predict_batch(xq);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      preds[i][0].mean += src[i].mean;
      preds[i][0].var += 0.25 * src[i].var;
    }
    return preds;
  }

 private:
  const gp::MultiGp* source_;
  GpSurrogate residual_;
};

class FomState {
 public:
  FomState(const ckt::SizingCircuit& circuit, const ckt::FomNormalization& norm)
      : circuit_(circuit), norm_(norm) {}

  bool simulate(const std::vector<double>& x) {
    return record(x, circuit_.evaluate(x));
  }

  /// Batch counterpart of simulate(); see ConstrainedState::simulate_batch.
  std::vector<char> simulate_batch(const std::vector<std::vector<double>>& xs) {
    KATO_OBS_SPAN("simulate_batch");
    obs::bo_count(obs::BoCounter::proposal_batches);
    obs::bo_count(obs::BoCounter::proposals, xs.size());
    const std::uint64_t t0 = jon_ ? obs::trace_now_ns() : 0;
    const auto metrics = circuit_.evaluate_batch(xs);
    if (jon_) eval_ns_ += obs::trace_now_ns() - t0;
    std::vector<char> improved(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
      improved[i] = record(xs[i], metrics[i]) ? 1 : 0;
    return improved;
  }

  // --- Run-journal emission (FOM-mode twin of ConstrainedState's) ---------
  // `best` here is the figure of merit (maximized); there is no constraint
  // vector, so n_feasible counts valid simulations.

  bool journal_on() const { return jon_; }

  void journal_begin(const char* method, const BoConfig& config,
                     std::uint64_t seed, bool transfer) {
    if (!jon_) return;
    obs::JsonObj o;
    o.str("event", "run_begin")
        .uint("run", jid_)
        .str("mode", "fom")
        .str("method", method)
        .str("circuit", circuit_.name())
        .uint("dim", circuit_.dim())
        .uint("n_metrics", circuit_.n_metrics())
        .uint("seed", seed)
        .raw("config", config_json(config, transfer));
    obs::journal_write(o.take());
  }

  void journal_step(const char* phase, std::int64_t iter,
                    const std::string& gp, const std::string& acq) {
    if (!jon_) return;
    obs::JsonObj o;
    o.str("event", "iteration")
        .uint("run", jid_)
        .str("phase", phase)
        .num("iter", static_cast<double>(iter))
        .uint("sims", result_.trace.size());
    std::size_t ok = 0;
    for (std::size_t i = jmark_; i < result_.metrics_history.size(); ++i)
      if (result_.metrics_history[i]) ++ok;
    o.uint("n_prop", result_.trace.size() - jmark_)
        .uint("n_valid", ok)
        .uint("n_feasible", ok)
        .num("eval_ms", static_cast<double>(eval_ns_) / 1e6)
        .raw("proposals", points_json(result_.x_history, jmark_))
        .raw("trace", obs::json_array({result_.trace.begin() +
                                           static_cast<std::ptrdiff_t>(jmark_),
                                       result_.trace.end()}))
        .num("best", best_);
    if (!gp.empty()) o.raw("gp", gp);
    if (!acq.empty()) o.raw("acq_f", acq);
    obs::journal_write(o.take());
    jmark_ = result_.trace.size();
    eval_ns_ = 0;
  }

  void journal_end(double w_kat, double w_self) {
    if (!jon_) return;
    obs::JsonObj o;
    o.str("event", "run_end")
        .uint("run", jid_)
        .uint("sims", result_.trace.size())
        .num("best", best_)
        .raw("best_x", obs::json_array(result_.best_x));
    if (!result_.best_metrics.empty())
      o.raw("best_metrics", obs::json_array(result_.best_metrics));
    o.num("stl_w_kat", w_kat)
        .num("stl_w_self", w_self)
        .raw("regret_curve", obs::json_array(result_.trace));
    obs::journal_write(o.take());
  }

  double best_neg() const { return -best_; }
  std::size_t n_valid() const { return xs_.size(); }
  const std::vector<std::vector<double>>& xs() const { return xs_; }
  const std::vector<double>& neg_fom() const { return neg_fom_; }
  RunResult take_result() { return std::move(result_); }

  void training_data(std::size_t max_points, la::Matrix& x, la::Matrix& y) const {
    // Keep the best + most recent points under the cap.
    std::vector<std::size_t> keep;
    if (xs_.size() <= max_points) {
      keep.resize(xs_.size());
      for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i;
    } else {
      std::vector<std::size_t> order(xs_.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return neg_fom_[a] < neg_fom_[b];
      });
      keep.assign(order.begin(), order.begin() + max_points / 2);
      for (std::size_t i = xs_.size(); i-- > 0 && keep.size() < max_points;) {
        if (std::find(keep.begin(), keep.end(), i) == keep.end())
          keep.push_back(i);
      }
      std::sort(keep.begin(), keep.end());
    }
    x = la::Matrix(keep.size(), circuit_.dim());
    y = la::Matrix(keep.size(), 1);
    for (std::size_t r = 0; r < keep.size(); ++r) {
      x.set_row(r, xs_[keep[r]]);
      y(r, 0) = neg_fom_[keep[r]];
    }
  }

  std::vector<std::vector<double>> incumbent_seeds(std::size_t count) const {
    std::vector<std::size_t> order(xs_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return neg_fom_[a] < neg_fom_[b];
    });
    std::vector<std::vector<double>> seeds;
    for (std::size_t k = 0; k < order.size() && k < count; ++k)
      seeds.push_back(xs_[order[k]]);
    return seeds;
  }

 private:
  bool record(const std::vector<double>& x,
              const std::optional<std::vector<double>>& metrics) {
    result_.x_history.push_back(x);
    result_.metrics_history.push_back(metrics);
    bool improved = false;
    if (metrics) {
      const double fom = ckt::fom_value(norm_, *metrics);
      xs_.push_back(x);
      neg_fom_.push_back(-fom);
      if (fom > best_) {
        best_ = fom;
        result_.best_x = x;
        result_.best_metrics = *metrics;
        improved = true;
      }
    }
    result_.trace.push_back(best_);
    return improved;
  }

  const ckt::SizingCircuit& circuit_;
  const ckt::FomNormalization& norm_;
  RunResult result_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> neg_fom_;
  double best_ = -k_inf;
  // Journal bookkeeping; see ConstrainedState.
  const bool jon_ = obs::journal_enabled();
  const std::uint64_t jid_ = jon_ ? obs::journal_next_run_id() : 0;
  std::size_t jmark_ = 0;
  std::uint64_t eval_ns_ = 0;
};

}  // namespace

RunResult run_fom(const ckt::SizingCircuit& circuit,
                  const ckt::FomNormalization& norm, FomMethod method,
                  const BoConfig& config, std::uint64_t seed,
                  const TransferSource* source) {
  util::Rng rng(seed);
  FomState state(circuit, norm);
  const std::size_t dim = circuit.dim();

  // Same draw-then-batch discipline as run_constrained: the RNG stream is
  // untouched, only the evaluation is batched.
  auto random_batch = [&](std::size_t count) {
    std::vector<std::vector<double>> pts;
    pts.reserve(count);
    for (std::size_t i = 0; i < count; ++i) pts.push_back(rng.uniform_vec(dim));
    return pts;
  };

  const bool transfer = method == FomMethod::kato && source != nullptr;
  state.journal_begin(to_string(method), config, seed, transfer);

  (void)state.simulate_batch(random_batch(config.n_init));
  state.journal_step("doe", -1, "", "");

  if (method == FomMethod::random_search) {
    (void)state.simulate_batch(random_batch(config.batch * config.iterations));
    state.journal_step("propose", 0, "", "");
    state.journal_end(0.0, 0.0);
    return state.take_result();
  }
  if (method == FomMethod::tlmbo && source == nullptr)
    throw std::invalid_argument("run_fom: tlmbo requires a transfer source");

  util::Rng model_rng = rng.split();
  std::unique_ptr<Surrogate> model;
  GpSurrogate* gp_model = nullptr;  // journal diagnostics want the GP view
  std::unique_ptr<KatSurrogate> kat_model;
  switch (method) {
    case FomMethod::kato:
      model = std::make_unique<GpSurrogate>(dim, 1, KernelKind::neuk,
                                            config.gp_initial, config.gp_refit,
                                            model_rng);
      gp_model = static_cast<GpSurrogate*>(model.get());
      if (transfer)
        kat_model = std::make_unique<KatSurrogate>(source->fom_model.get(), dim,
                                                   1, config.kat, model_rng);
      break;
    case FomMethod::mace:
      model = std::make_unique<GpSurrogate>(dim, 1, KernelKind::rbf,
                                            config.gp_initial, config.gp_refit,
                                            model_rng);
      gp_model = static_cast<GpSurrogate*>(model.get());
      break;
    case FomMethod::tlmbo:
      model = std::make_unique<ResidualSurrogate>(source->fom_model.get(), dim,
                                                  config.gp_initial,
                                                  config.gp_refit, model_rng);
      break;
    case FomMethod::smac_rf:
    case FomMethod::random_search:
      break;
  }

  rf::RandomForest forest;

  double w_kat = transfer ? static_cast<double>(source->x.rows()) : 0.0;
  double w_self = static_cast<double>(config.n_init);

  MaceOptions mace_opts;
  mace_opts.ucb_beta = config.ucb_beta;
  mace_opts.nsga = config.nsga;

  bool gp_fitted = false;  // first refit is a cold initial fit
  for (std::size_t it = 0; it < config.iterations; ++it) {
    if (state.n_valid() < 4) {
      (void)state.simulate_batch(random_batch(config.batch));
      state.journal_step("explore", static_cast<std::int64_t>(it), "", "");
      continue;
    }
    const double y_best = state.best_neg();
    const auto seeds = state.incumbent_seeds(4);

    if (method == FomMethod::smac_rf) {
      forest.fit(state.xs(), state.neg_fom(), model_rng);
      auto pool = candidate_pool(seeds, dim, rng);
      std::vector<std::pair<double, std::vector<double>>> scored;
      scored.reserve(pool.size());
      for (auto& cand : pool) {
        const auto p = forest.predict(cand);
        scored.push_back(
            {expected_improvement({p.mean, p.var}, y_best), std::move(cand)});
      }
      (void)state.simulate_batch(top_k_distinct(scored, config.batch, dim, rng));
      state.journal_step("propose", static_cast<std::int64_t>(it), "", "");
      continue;
    }

    la::Matrix x;
    la::Matrix y;
    state.training_data(config.max_gp_points, x, y);
    const bool hyper = it % config.hyper_every == 0;
    const bool eff_hyper = hyper || !gp_fitted;
    const bool gp_warm = eff_hyper && gp_fitted;
    model->refit(x, y, model_rng, hyper);
    if (transfer) kat_model->refit(x, y, model_rng, hyper);
    gp_fitted = true;
    std::string gp_info;
    if (state.journal_on() && gp_model != nullptr)
      gp_info = gp_json(*gp_model, eff_hyper, gp_warm);
    std::string acq;

    if (transfer && config.use_stl) {
      const auto p_kat =
          mace_proposals_unconstrained(*kat_model, y_best, mace_opts, rng, seeds);
      const auto p_self =
          mace_proposals_unconstrained(*model, y_best, mace_opts, rng, seeds);
      const auto n_kat = static_cast<std::size_t>(std::lround(
          w_kat / (w_kat + w_self) * static_cast<double>(config.batch)));
      const auto a_kat = select_batch(p_kat, n_kat, dim, rng);
      const auto a_self = select_batch(p_self, config.batch - n_kat, dim, rng);
      if (state.journal_on()) {
        acq = "[";
        append_acq(acq, p_kat, a_kat);
        append_acq(acq, p_self, a_self);
        acq += ']';
      }
      for (char imp : state.simulate_batch(a_kat))
        if (imp) w_kat += 1.0;
      for (char imp : state.simulate_batch(a_self))
        if (imp) w_self += 1.0;
    } else if (transfer) {
      const auto p =
          mace_proposals_unconstrained(*kat_model, y_best, mace_opts, rng, seeds);
      const auto sel = select_batch(p, config.batch, dim, rng);
      if (state.journal_on()) {
        acq = "[";
        append_acq(acq, p, sel);
        acq += ']';
      }
      (void)state.simulate_batch(sel);
    } else {
      const auto p =
          mace_proposals_unconstrained(*model, y_best, mace_opts, rng, seeds);
      const auto sel = select_batch(p, config.batch, dim, rng);
      if (state.journal_on()) {
        acq = "[";
        append_acq(acq, p, sel);
        acq += ']';
      }
      (void)state.simulate_batch(sel);
    }
    state.journal_step("propose", static_cast<std::int64_t>(it), gp_info, acq);
  }

  state.journal_end(w_kat, w_self);
  RunResult result = state.take_result();
  result.stl_w_kat = w_kat;
  result.stl_w_self = w_self;
  return result;
}

}  // namespace kato::bo

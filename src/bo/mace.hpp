#pragma once
// MACE batch-proposal machinery.
//
// Original constrained MACE (Zhang et al., TCAD 2021) searches the Pareto
// front of SIX objectives: {UCB, PI, EI, PF, total violation, scaled
// violation}.  KATO's modified MACE (paper Eq. 13) reduces this to THREE
// objectives, multiplying each improvement acquisition by the probability of
// feasibility: argmax {UCB, PI, EI} x PF.  Both variants are implemented so
// the ablation bench can compare them; the batch is drawn from the resulting
// non-dominated set.

#include "bo/acquisition.hpp"
#include "bo/surrogate.hpp"
#include "moo/nsga2.hpp"

namespace kato::bo {

enum class MaceVariant {
  modified,  ///< KATO's 3-objective form (Eq. 13)
  full,      ///< original 6-objective constrained MACE
};

struct MaceOptions {
  MaceVariant variant = MaceVariant::modified;
  double ucb_beta = 2.0;
  moo::Nsga2Options nsga;
};

/// Pareto proposal set for the constrained problem: the objective metric is
/// metrics[0] (minimized), the rest follow `specs`.  `y_best` is the
/// incumbent feasible objective (+inf if none yet: acquisitions then reduce
/// to feasibility search).  `seeds` inject incumbent designs into NSGA-II.
moo::ParetoSet mace_proposals(const Surrogate& surrogate,
                              const std::vector<ckt::MetricSpec>& specs,
                              double y_best, const MaceOptions& options,
                              util::Rng& rng,
                              const std::vector<std::vector<double>>& seeds);

/// Same machinery for an unconstrained single-metric problem (FOM mode):
/// Pareto front of {EI, PI, UCB} alone.
moo::ParetoSet mace_proposals_unconstrained(const Surrogate& surrogate,
                                            double y_best,
                                            const MaceOptions& options,
                                            util::Rng& rng,
                                            const std::vector<std::vector<double>>& seeds);

/// Draw `count` distinct points from a Pareto set (random without
/// replacement; uniform-random fill if the set is too small).
std::vector<std::vector<double>> select_batch(const moo::ParetoSet& set,
                                              std::size_t count, std::size_t dim,
                                              util::Rng& rng);

}  // namespace kato::bo

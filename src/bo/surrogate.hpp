#pragma once
// Surrogate abstraction: anything that predicts a per-metric Gaussian given a
// unit-box design.  The STL scheme (Sec. 3.4) runs MACE over two surrogates —
// a plain NeukGP and a KAT-GP — through this interface.

#include <memory>

#include "gp/gp.hpp"
#include "gp/kat_gp.hpp"
#include "kernel/neuk.hpp"
#include "kernel/stationary.hpp"

namespace kato::bo {

class Surrogate {
 public:
  virtual ~Surrogate() = default;
  virtual std::string name() const = 0;
  /// Replace training data (x: n x d unit box, y: n x m metrics) and refit.
  /// With train_hyper=false only the posterior is refreshed (cheap update
  /// used on alternate BO iterations).
  virtual void refit(const la::Matrix& x, const la::Matrix& y, util::Rng& rng,
                     bool train_hyper = true) = 0;
  /// Per-metric predictive Gaussians at x.
  virtual std::vector<gp::GpPrediction> predict(std::span<const double> x) const = 0;
  /// Per-metric predictive Gaussians for a block of candidates (rows of xq);
  /// out[q][m] is metric m at query row q.  The base implementation loops
  /// predict(); GP-backed surrogates override it with a batched posterior
  /// that shares one triangular solve across the block.
  virtual std::vector<std::vector<gp::GpPrediction>> predict_batch(
      const la::Matrix& xq) const;
  virtual std::size_t n_metrics() const = 0;
  virtual std::size_t input_dim() const = 0;
};

enum class KernelKind { neuk, rbf, matern52 };

std::unique_ptr<kern::Kernel> make_kernel(KernelKind kind, std::size_t dim,
                                          util::Rng& rng);

/// Independent GPs (one per metric).  "NeukGP" of the paper when kind=neuk.
class GpSurrogate final : public Surrogate {
 public:
  GpSurrogate(std::size_t dim, std::size_t n_metrics, KernelKind kind,
              const gp::GpFitOptions& initial_fit, const gp::GpFitOptions& refit,
              util::Rng& rng);

  std::string name() const override;
  void refit(const la::Matrix& x, const la::Matrix& y, util::Rng& rng,
             bool train_hyper = true) override;
  std::vector<gp::GpPrediction> predict(std::span<const double> x) const override;
  std::vector<std::vector<gp::GpPrediction>> predict_batch(
      const la::Matrix& xq) const override;
  std::size_t n_metrics() const override { return model_.n_metrics(); }
  std::size_t input_dim() const override { return dim_; }

  gp::MultiGp& model() { return model_; }

 private:
  std::size_t dim_;
  KernelKind kind_;
  gp::MultiGp model_;
  gp::GpFitOptions initial_fit_;
  gp::GpFitOptions refit_;
  bool fitted_ = false;
};

/// KAT-GP wrapped as a Surrogate (Sec. 3.2); the frozen source model must
/// outlive this object.
class KatSurrogate final : public Surrogate {
 public:
  KatSurrogate(const gp::MultiGp* source, std::size_t target_dim,
               std::size_t target_metrics, const gp::KatGpConfig& config,
               util::Rng& rng);

  std::string name() const override { return "kat-gp"; }
  void refit(const la::Matrix& x, const la::Matrix& y, util::Rng& rng,
             bool train_hyper = true) override;
  std::vector<gp::GpPrediction> predict(std::span<const double> x) const override;
  std::vector<std::vector<gp::GpPrediction>> predict_batch(
      const la::Matrix& xq) const override;
  std::size_t n_metrics() const override { return model_.n_metrics(); }
  std::size_t input_dim() const override { return dim_; }

 private:
  std::size_t dim_;
  gp::KatGp model_;
  bool fitted_ = false;
};

}  // namespace kato::bo

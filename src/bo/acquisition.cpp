#include "bo/acquisition.hpp"

#include <cmath>
#include <stdexcept>

namespace kato::bo {

namespace {
constexpr double k_inv_sqrt_2pi = 0.3989422804014327;
constexpr double k_inv_sqrt_2 = 0.7071067811865476;
}  // namespace

double norm_pdf(double z) { return k_inv_sqrt_2pi * std::exp(-0.5 * z * z); }

double norm_cdf(double z) { return 0.5 * std::erfc(-z * k_inv_sqrt_2); }

double expected_improvement(const gp::GpPrediction& p, double y_best) {
  const double sigma = std::sqrt(std::max(p.var, 1e-18));
  const double z = (y_best - p.mean) / sigma;
  return (y_best - p.mean) * norm_cdf(z) + sigma * norm_pdf(z);
}

double probability_of_improvement(const gp::GpPrediction& p, double y_best) {
  const double sigma = std::sqrt(std::max(p.var, 1e-18));
  return norm_cdf((y_best - p.mean) / sigma);
}

double ucb_improvement(const gp::GpPrediction& p, double y_best, double beta) {
  const double sigma = std::sqrt(std::max(p.var, 1e-18));
  return std::max(y_best - p.mean + beta * sigma, 0.0);
}

double probability_of_feasibility(
    const std::vector<gp::GpPrediction>& constraint_preds,
    const std::vector<ckt::MetricSpec>& specs) {
  if (constraint_preds.size() != specs.size())
    throw std::invalid_argument("probability_of_feasibility: count mismatch");
  double pf = 1.0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const double sigma = std::sqrt(std::max(constraint_preds[i].var, 1e-18));
    const double margin = specs[i].is_lower_bound
                              ? constraint_preds[i].mean - specs[i].bound
                              : specs[i].bound - constraint_preds[i].mean;
    pf *= norm_cdf(margin / sigma);
  }
  return pf;
}

double total_violation(const std::vector<gp::GpPrediction>& constraint_preds,
                       const std::vector<ckt::MetricSpec>& specs,
                       const std::vector<double>& scales) {
  if (constraint_preds.size() != specs.size() || scales.size() != specs.size())
    throw std::invalid_argument("total_violation: count mismatch");
  double v = 0.0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const double scale = scales[i] > 0.0 ? scales[i] : 1.0;
    v += specs[i].violation(constraint_preds[i].mean) / scale;
  }
  return v;
}

double total_violation_scaled(
    const std::vector<gp::GpPrediction>& constraint_preds,
    const std::vector<ckt::MetricSpec>& specs) {
  if (constraint_preds.size() != specs.size())
    throw std::invalid_argument("total_violation_scaled: count mismatch");
  double v = 0.0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const double sigma = std::sqrt(std::max(constraint_preds[i].var, 1e-18));
    v += specs[i].violation(constraint_preds[i].mean) / sigma;
  }
  return v;
}

}  // namespace kato::bo

#include "bo/surrogate.hpp"

#include "obs/obs.hpp"

namespace kato::bo {

std::vector<std::vector<gp::GpPrediction>> Surrogate::predict_batch(
    const la::Matrix& xq) const {
  std::vector<std::vector<gp::GpPrediction>> out;
  out.reserve(xq.rows());
  for (std::size_t q = 0; q < xq.rows(); ++q) out.push_back(predict(xq.row(q)));
  return out;
}

std::unique_ptr<kern::Kernel> make_kernel(KernelKind kind, std::size_t dim,
                                          util::Rng& rng) {
  switch (kind) {
    case KernelKind::neuk: {
      kern::NeukConfig cfg;
      return std::make_unique<kern::NeukKernel>(dim, cfg, rng);
    }
    case KernelKind::rbf:
      return std::make_unique<kern::StationaryArd>(kern::StationaryType::rbf, dim);
    case KernelKind::matern52:
      return std::make_unique<kern::StationaryArd>(kern::StationaryType::matern52,
                                                   dim);
  }
  throw std::logic_error("make_kernel: unknown kind");
}

GpSurrogate::GpSurrogate(std::size_t dim, std::size_t n_metrics, KernelKind kind,
                         const gp::GpFitOptions& initial_fit,
                         const gp::GpFitOptions& refit, util::Rng& rng)
    : dim_(dim),
      kind_(kind),
      model_(n_metrics, [&] { return make_kernel(kind, dim, rng); }),
      initial_fit_(initial_fit),
      refit_(refit) {}

std::string GpSurrogate::name() const {
  switch (kind_) {
    case KernelKind::neuk: return "neuk-gp";
    case KernelKind::rbf: return "rbf-gp";
    case KernelKind::matern52: return "matern52-gp";
  }
  return "gp";
}

void GpSurrogate::refit(const la::Matrix& x, const la::Matrix& y, util::Rng& rng,
                        bool train_hyper) {
  const bool hyper = train_hyper || !fitted_;
  // When hyper-training follows, defer the posterior rebuild: fit() always
  // refreshes at its end, so refreshing inside set_data too would factor the
  // full kernel matrix twice per refit.  Hyperparameters warm-start from the
  // previous optimum (the kernel keeps its parameters across refits), and
  // after the first fit the smaller `refit_` budget applies.
  model_.set_data(x, y, /*refresh=*/!hyper);
  if (hyper) {
    // A refit after the first full fit reuses the previous hyperparameter
    // optimum as its starting point — the warm-start path the obs counter
    // tracks against cold initial fits.
    if (fitted_) obs::bo_count(obs::BoCounter::gp_warm_starts);
    model_.fit(fitted_ ? refit_ : initial_fit_, rng);
    fitted_ = true;
  }
}

std::vector<gp::GpPrediction> GpSurrogate::predict(std::span<const double> x) const {
  return model_.predict(x);
}

std::vector<std::vector<gp::GpPrediction>> GpSurrogate::predict_batch(
    const la::Matrix& xq) const {
  return model_.predict_batch(xq);
}

KatSurrogate::KatSurrogate(const gp::MultiGp* source, std::size_t target_dim,
                           std::size_t target_metrics,
                           const gp::KatGpConfig& config, util::Rng& rng)
    : dim_(target_dim), model_(source, target_dim, target_metrics, config, rng) {}

void KatSurrogate::refit(const la::Matrix& x, const la::Matrix& y, util::Rng& rng,
                         bool train_hyper) {
  model_.set_target_data(x, y);
  if (train_hyper || !fitted_) {
    if (fitted_) obs::bo_count(obs::BoCounter::gp_warm_starts);
    model_.fit(rng);
    fitted_ = true;
  }
}

std::vector<gp::GpPrediction> KatSurrogate::predict(std::span<const double> x) const {
  return model_.predict(x);
}

std::vector<std::vector<gp::GpPrediction>> KatSurrogate::predict_batch(
    const la::Matrix& xq) const {
  return model_.predict_batch(xq);
}

}  // namespace kato::bo

#pragma once
// Acquisition functions (paper Eqs. 5-7 and 13).
//
// Everything here uses the MINIMIZATION convention for the objective metric:
// the incumbent y_best is the smallest observed (feasible) value and
// improvement means going below it.  UCB is therefore the optimistic
// improvement max(y_best - mu + beta*sigma, 0) — clamped at zero so that the
// Eq. 13 product with the probability of feasibility stays monotone.

#include <vector>

#include "circuits/sizing_problem.hpp"
#include "gp/gp.hpp"

namespace kato::bo {

/// Standard normal PDF / CDF.
double norm_pdf(double z);
double norm_cdf(double z);

/// Expected improvement below y_best (Eq. 6, minimization form).
double expected_improvement(const gp::GpPrediction& p, double y_best);
/// Probability of improvement below y_best (Eq. 5).
double probability_of_improvement(const gp::GpPrediction& p, double y_best);
/// Optimistic improvement (UCB for minimization), clamped at zero (Eq. 7).
double ucb_improvement(const gp::GpPrediction& p, double y_best, double beta);

/// Probability of feasibility (Sec. 3.3): product over constraints of
/// Phi(+-(mu - bound)/sigma) following each spec's direction.
double probability_of_feasibility(const std::vector<gp::GpPrediction>& constraint_preds,
                                  const std::vector<ckt::MetricSpec>& specs);

/// Mean constraint violation (standardized by each GP's scale) and its
/// uncertainty-weighted variant — the two violation objectives of the full
/// six-objective constrained MACE.
double total_violation(const std::vector<gp::GpPrediction>& constraint_preds,
                       const std::vector<ckt::MetricSpec>& specs,
                       const std::vector<double>& scales);
double total_violation_scaled(const std::vector<gp::GpPrediction>& constraint_preds,
                              const std::vector<ckt::MetricSpec>& specs);

}  // namespace kato::bo

#pragma once
// Experiment drivers: complete optimization loops for every method the paper
// evaluates, in both experiment modes.
//
// FOM mode (Sec. 4.1, Fig. 4): the scalar FOM of Eq. 2 is maximized.
//   Methods: KATO (NeukGP + Eq. 13 ensemble), MACE (RBF GP + acquisition
//   ensemble, Lyu et al. 2018), SMAC-RF (random forest + EI), random search,
//   and TLMBO-lite (GP with a source-model mean prior — the Gaussian-copula
//   technology-transfer baseline, see DESIGN.md).
//
// Constrained mode (Secs. 4.2-4.3, Figs. 5-6, Tables 1-2): minimize
//   metrics[0] subject to the circuit's specs.  Methods: KATO (modified
//   MACE, optional KAT-GP transfer with Selective Transfer Learning,
//   Alg. 1), full 6-objective MACE, MESMOC-lite (exploitation-heavy
//   feasible-LCB) and USEMOC-lite (uncertainty-driven), per DESIGN.md.
//
// Every driver consumes an explicit seed and returns the per-simulation
// running-best trace that the figure benches aggregate across seeds.

#include <memory>
#include <optional>

#include "bo/mace.hpp"
#include "circuits/sizing_problem.hpp"

namespace kato::bo {

inline gp::KatGpConfig default_kat_config() {
  gp::KatGpConfig c;
  c.init_iterations = 250;
  c.refit_iterations = 30;
  return c;
}

struct BoConfig {
  std::size_t batch = 4;        ///< simulations per BO iteration (N_B)
  std::size_t iterations = 25;  ///< BO iterations (N_I)
  std::size_t n_init = 10;      ///< initial random simulations
  double ucb_beta = 2.0;
  MaceVariant kato_variant = MaceVariant::modified;
  bool use_stl = true;          ///< Alg. 1 when a transfer source is present
  std::size_t max_gp_points = 320;  ///< surrogate training-set cap
  /// Hyperparameters are re-trained every `hyper_every` iterations; in
  /// between only the posterior is refreshed with the new data.
  std::size_t hyper_every = 2;
  /// First hyper-training budget vs the warm-started refit budget.  Every
  /// surrogate in the loop — the NeukGP/RBF self-models, the TLMBO residual
  /// GP, and (via KatGpConfig::refit_iterations) the KAT-GP — carries the
  /// previous optimum's hyperparameters into each refit and switches to the
  /// smaller `gp_refit` budget after its first fit.
  gp::GpFitOptions gp_initial{80, 0.05, 192, 1e-6};
  gp::GpFitOptions gp_refit{12, 0.03, 128, 1e-6};
  gp::KatGpConfig kat = default_kat_config();
  moo::Nsga2Options nsga{32, 20, 0.9, 15.0, 20.0, -1.0};
};

struct RunResult {
  /// Running best after each simulation: FOM mode = best FOM so far
  /// (maximize); constrained mode = best feasible objective so far
  /// (minimize; +inf until the first feasible design).
  std::vector<double> trace;
  std::vector<std::vector<double>> x_history;
  std::vector<std::optional<std::vector<double>>> metrics_history;
  std::vector<double> best_x;
  std::vector<double> best_metrics;  ///< empty if nothing feasible was found
  /// STL diagnostics: final weights (w_kat, w_self); zeros when STL unused.
  double stl_w_kat = 0.0;
  double stl_w_self = 0.0;
};

/// Frozen source-circuit knowledge for the transfer experiments: 200 random
/// simulations (paper Sec. 4.3) with per-metric GPs and a FOM-level GP.
struct TransferSource {
  std::size_t dim = 0;
  la::Matrix x;                                ///< valid sims only
  la::Matrix y;                                ///< metric matrix
  std::shared_ptr<gp::MultiGp> metric_model;   ///< for constrained KAT-GP
  std::shared_ptr<gp::MultiGp> fom_model;      ///< single-GP view for FOM mode
  ckt::FomNormalization fom_norm;
};

TransferSource build_transfer_source(const ckt::SizingCircuit& circuit,
                                     std::size_t n_samples, KernelKind kind,
                                     std::uint64_t seed);

enum class FomMethod { kato, mace, smac_rf, random_search, tlmbo };
enum class ConstrainedMethod { kato, mace_full, mesmoc, usemoc };

const char* to_string(FomMethod m);
const char* to_string(ConstrainedMethod m);

/// FOM-mode run.  `source` enables transfer for kato (KAT-GP + STL) and is
/// required for tlmbo.
RunResult run_fom(const ckt::SizingCircuit& circuit,
                  const ckt::FomNormalization& norm, FomMethod method,
                  const BoConfig& config, std::uint64_t seed,
                  const TransferSource* source = nullptr);

/// Constrained-mode run.  `source` enables KAT-GP + STL for kato.
RunResult run_constrained(const ckt::SizingCircuit& circuit,
                          ConstrainedMethod method, const BoConfig& config,
                          std::uint64_t seed,
                          const TransferSource* source = nullptr);

}  // namespace kato::bo

#include "gp/gp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/mlp.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace kato::gp {

namespace {
constexpr double k_two_pi = 6.283185307179586;
}

GaussianProcess::GaussianProcess(std::unique_ptr<kern::Kernel> kernel)
    : kernel_(std::move(kernel)), log_noise_(std::log(1e-2)) {
  if (!kernel_) throw std::invalid_argument("GaussianProcess: null kernel");
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : kernel_(other.kernel_->clone()),
      log_noise_(other.log_noise_),
      x_(other.x_),
      y_std_(other.y_std_),
      y_mean_(other.y_mean_),
      y_sd_(other.y_sd_),
      post_(other.post_) {}

GaussianProcess& GaussianProcess::operator=(const GaussianProcess& other) {
  if (this == &other) return *this;
  kernel_ = other.kernel_->clone();
  log_noise_ = other.log_noise_;
  x_ = other.x_;
  y_std_ = other.y_std_;
  y_mean_ = other.y_mean_;
  y_sd_ = other.y_sd_;
  post_ = other.post_;
  return *this;
}

double GaussianProcess::noise_var() const { return std::exp(log_noise_); }

void GaussianProcess::set_data(la::Matrix x, la::Vector y) {
  if (x.rows() != y.size())
    throw std::invalid_argument("GaussianProcess::set_data: n mismatch");
  if (x.rows() == 0)
    throw std::invalid_argument("GaussianProcess::set_data: empty data");
  if (x.cols() != kernel_->input_dim())
    throw std::invalid_argument("GaussianProcess::set_data: dim mismatch");
  y_mean_ = util::mean(y);
  y_sd_ = util::stddev(y);
  if (y_sd_ < 1e-12) y_sd_ = 1.0;  // constant targets: keep scale identity
  x_ = std::move(x);
  y_std_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_std_[i] = (y[i] - y_mean_) / y_sd_;
  refresh_posterior();
}

double GaussianProcess::nll_and_grad(const la::Matrix& x, const la::Vector& y,
                                     std::vector<double>& grad) const {
  const std::size_t n = x.rows();
  la::Matrix k = kernel_->matrix(x);
  const double noise = std::max(std::exp(log_noise_), 1e-12);
  for (std::size_t i = 0; i < n; ++i) k(i, i) += noise;

  const auto chol = la::cholesky_jittered(k);
  const la::Vector alpha = la::cholesky_solve(chol.l, y);
  const double logdet = la::cholesky_logdet(chol.l);
  const double nll = 0.5 * la::dot(y, alpha) + 0.5 * logdet +
                     0.5 * static_cast<double>(n) * std::log(k_two_pi);

  // dNLL/dK = 0.5 (K^-1 - alpha alpha^T).
  la::Matrix dk = la::cholesky_inverse(chol.l);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      dk(i, j) = 0.5 * (dk(i, j) - alpha[i] * alpha[j]);

  grad.assign(kernel_->n_params() + 1, 0.0);
  kernel_->backward(x, dk, std::span<double>(grad.data(), kernel_->n_params()));
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += dk(i, i);
  grad[kernel_->n_params()] = trace * noise;  // dK/d log sigma^2 = sigma^2 I
  return nll;
}

void GaussianProcess::fit(const GpFitOptions& opts, util::Rng& rng) {
  if (x_.empty()) throw std::logic_error("GaussianProcess::fit: no data");

  // Hyper-training subset (full posterior still uses all points).
  la::Matrix xs = x_;
  la::Vector ys = y_std_;
  if (x_.rows() > opts.max_train_points) {
    const auto idx = rng.choice(x_.rows(), opts.max_train_points);
    xs = la::Matrix(opts.max_train_points, x_.cols());
    ys.resize(opts.max_train_points);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      xs.set_row(i, x_.row(idx[i]));
      ys[i] = y_std_[idx[i]];
    }
  }

  const std::size_t np = kernel_->n_params() + 1;
  nn::Adam adam(np, opts.lr);
  std::vector<double> grad;
  std::vector<double> best_params(np);
  double best_nll = std::numeric_limits<double>::infinity();

  auto pack = [&](std::vector<double>& out) {
    auto kp = kernel_->params();
    std::copy(kp.begin(), kp.end(), out.begin());
    out[np - 1] = log_noise_;
  };
  auto unpack = [&](const std::vector<double>& in) {
    auto kp = kernel_->params();
    std::copy(in.begin(), in.begin() + kp.size(), kp.begin());
    log_noise_ = in[np - 1];
  };

  std::vector<double> theta(np);
  pack(theta);
  for (int it = 0; it < opts.iterations; ++it) {
    unpack(theta);
    double nll;
    try {
      nll = nll_and_grad(xs, ys, grad);
    } catch (const std::runtime_error&) {
      break;  // kernel degenerated beyond the jitter ladder; keep best so far
    }
    if (nll < best_nll) {
      best_nll = nll;
      best_params = theta;
    }
    adam.step(theta, grad);
    // Noise floor keeps the posterior numerically sane.
    theta[np - 1] = std::max(theta[np - 1], std::log(opts.min_noise));
  }
  if (std::isfinite(best_nll)) unpack(best_params);
  refresh_posterior();
}

void GaussianProcess::refresh_posterior() {
  const std::size_t n = x_.rows();
  la::Matrix k = kernel_->matrix(x_);
  const double noise = std::max(std::exp(log_noise_), 1e-12);
  for (std::size_t i = 0; i < n; ++i) k(i, i) += noise;
  auto chol = la::cholesky_jittered(k);
  Posterior p;
  p.alpha = la::cholesky_solve(chol.l, y_std_);
  p.kinv = la::cholesky_inverse(chol.l);
  p.chol_l = std::move(chol.l);
  post_ = std::move(p);
}

const GaussianProcess::Posterior& GaussianProcess::posterior() const {
  if (!post_) throw std::logic_error("GaussianProcess: posterior not ready");
  return *post_;
}

GpPrediction GaussianProcess::predict_std(std::span<const double> x) const {
  const auto& p = posterior();
  const std::size_t n = x_.rows();
  la::Matrix xq(1, x.size());
  xq.set_row(0, x);
  const la::Matrix kx = kernel_->cross(xq, x_);  // 1 x n
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += kx(0, i) * p.alpha[i];
  // v = k(x,x) - k^T K^-1 k.
  la::Vector kv(n);
  for (std::size_t i = 0; i < n; ++i) kv[i] = kx(0, i);
  const la::Vector kinv_k = la::matvec(p.kinv, kv);
  double var = kernel_->diag(x) - la::dot(kv, kinv_k);
  var = std::max(var, 1e-12);
  return {mean, var};
}

GpPrediction GaussianProcess::predict(std::span<const double> x) const {
  GpPrediction p = predict_std(x);
  p.mean = p.mean * y_sd_ + y_mean_;
  p.var *= y_sd_ * y_sd_;
  return p;
}

std::vector<GpPrediction> GaussianProcess::predict_std_batch(
    const la::Matrix& xq) const {
  const auto& p = posterior();
  const std::size_t n = x_.rows();
  const std::size_t m = xq.rows();
  std::vector<GpPrediction> out(m);
  if (m == 0) return out;
  if (xq.cols() != kernel_->input_dim())
    throw std::invalid_argument("predict_std_batch: dim mismatch");

  // One cross-covariance evaluation for the whole block: kernels with an
  // input transform (Neuk) embed the training set once instead of once per
  // candidate.
  const la::Matrix kx = kernel_->cross(xq, x_);  // m x n

  // Contiguous query ranges keep the result bit-identical at any thread
  // count: every candidate's mean/variance depends only on its own column.
  util::parallel_for(m, [&](std::size_t q0, std::size_t q1) {
    const std::size_t w = q1 - q0;
    // rhs = kx[q0:q1, :]^T, then one forward sweep solves L V = rhs for all
    // w candidates together; var = k(x,x) - ||v||^2 column-wise.
    la::Matrix rhs(n, w);
    for (std::size_t q = q0; q < q1; ++q)
      for (std::size_t k = 0; k < n; ++k) rhs(k, q - q0) = kx(q, k);
    const la::Matrix v = la::solve_lower_multi(p.chol_l, rhs);
    la::Vector sumsq(w, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      const auto row = v.row(k);
      for (std::size_t j = 0; j < w; ++j) sumsq[j] += row[j] * row[j];
    }
    for (std::size_t q = q0; q < q1; ++q) {
      const double mean = la::dot(kx.row(q), p.alpha);
      const double var =
          std::max(kernel_->diag(xq.row(q)) - sumsq[q - q0], 1e-12);
      out[q] = {mean, var};
    }
  });
  return out;
}

std::vector<GpPrediction> GaussianProcess::predict_batch(
    const la::Matrix& xq) const {
  auto out = predict_std_batch(xq);
  for (auto& p : out) {
    p.mean = p.mean * y_sd_ + y_mean_;
    p.var *= y_sd_ * y_sd_;
  }
  return out;
}

void GaussianProcess::predict_std_grad(std::span<const double> x,
                                       GpPrediction& pred, la::Vector& dmean_dx,
                                       la::Vector& dvar_dx) const {
  const auto& p = posterior();
  const std::size_t n = x_.rows();
  const std::size_t d = x.size();
  la::Matrix xq(1, d);
  xq.set_row(0, x);
  const la::Matrix kx = kernel_->cross(xq, x_);
  la::Vector kv(n);
  for (std::size_t i = 0; i < n; ++i) kv[i] = kx(0, i);

  double mean = la::dot(kv, p.alpha);
  const la::Vector kinv_k = la::matvec(p.kinv, kv);
  double var = std::max(kernel_->diag(x) - la::dot(kv, kinv_k), 1e-12);
  pred = {mean, var};

  // d mean/dx = (dk/dx)^T alpha ; d var/dx = -2 (dk/dx)^T K^-1 k.
  // (k(x,x) is constant in x for the stationary and Neuk kernels used here.)
  const la::Matrix dk_dx = kernel_->input_grad(x, x_);  // n x d
  dmean_dx.assign(d, 0.0);
  dvar_dx.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      dmean_dx[j] += dk_dx(i, j) * p.alpha[i];
      dvar_dx[j] += -2.0 * dk_dx(i, j) * kinv_k[i];
    }
  }
}

double GaussianProcess::nll() const {
  std::vector<double> grad;
  // Reuse the training path on the full data (gradient discarded).
  return nll_and_grad(x_, y_std_, grad);
}

MultiGp::MultiGp(std::size_t n_metrics,
                 const std::function<std::unique_ptr<kern::Kernel>()>& make_kernel) {
  if (n_metrics == 0) throw std::invalid_argument("MultiGp: need >= 1 metric");
  gps_.reserve(n_metrics);
  for (std::size_t i = 0; i < n_metrics; ++i)
    gps_.emplace_back(make_kernel());
}

void MultiGp::set_data(const la::Matrix& x, const la::Matrix& y) {
  if (y.cols() != gps_.size())
    throw std::invalid_argument("MultiGp::set_data: metric count mismatch");
  for (std::size_t m = 0; m < gps_.size(); ++m) {
    la::Vector col(y.rows());
    for (std::size_t i = 0; i < y.rows(); ++i) col[i] = y(i, m);
    gps_[m].set_data(x, std::move(col));
  }
}

void MultiGp::fit(const GpFitOptions& opts, util::Rng& rng) {
  for (auto& g : gps_) g.fit(opts, rng);
}

std::vector<GpPrediction> MultiGp::predict(std::span<const double> x) const {
  std::vector<GpPrediction> out;
  out.reserve(gps_.size());
  for (const auto& g : gps_) out.push_back(g.predict(x));
  return out;
}

std::vector<std::vector<GpPrediction>> MultiGp::predict_batch(
    const la::Matrix& xq) const {
  std::vector<std::vector<GpPrediction>> out(xq.rows());
  for (auto& row : out) row.reserve(gps_.size());
  for (const auto& g : gps_) {
    const auto preds = g.predict_batch(xq);
    for (std::size_t q = 0; q < preds.size(); ++q) out[q].push_back(preds[q]);
  }
  return out;
}

}  // namespace kato::gp

#include "gp/gp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/mlp.hpp"
#include "obs/obs.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace kato::gp {

namespace {
constexpr double k_two_pi = 6.283185307179586;
}

GaussianProcess::GaussianProcess(std::unique_ptr<kern::Kernel> kernel)
    : kernel_(std::move(kernel)), log_noise_(std::log(1e-2)) {
  if (!kernel_) throw std::invalid_argument("GaussianProcess: null kernel");
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : kernel_(other.kernel_->clone()),
      log_noise_(other.log_noise_),
      x_(other.x_),
      y_std_(other.y_std_),
      y_mean_(other.y_mean_),
      y_sd_(other.y_sd_),
      post_(other.post_),
      fit_info_(other.fit_info_) {}

GaussianProcess& GaussianProcess::operator=(const GaussianProcess& other) {
  if (this == &other) return *this;
  kernel_ = other.kernel_->clone();
  log_noise_ = other.log_noise_;
  x_ = other.x_;
  y_std_ = other.y_std_;
  y_mean_ = other.y_mean_;
  y_sd_ = other.y_sd_;
  post_ = other.post_;
  fit_info_ = other.fit_info_;
  return *this;
}

double GaussianProcess::noise_var() const { return std::exp(log_noise_); }

void GaussianProcess::set_data(la::Matrix x, la::Vector y, bool refresh) {
  if (x.rows() != y.size())
    throw std::invalid_argument("GaussianProcess::set_data: n mismatch");
  if (x.rows() == 0)
    throw std::invalid_argument("GaussianProcess::set_data: empty data");
  if (x.cols() != kernel_->input_dim())
    throw std::invalid_argument("GaussianProcess::set_data: dim mismatch");
  y_mean_ = util::mean(y);
  y_sd_ = util::stddev(y);
  if (y_sd_ < 1e-12) y_sd_ = 1.0;  // constant targets: keep scale identity
  x_ = std::move(x);
  y_std_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_std_[i] = (y[i] - y_mean_) / y_sd_;
  if (refresh)
    refresh_posterior();
  else
    post_.reset();  // stale posterior must not outlive the data swap
}

double GaussianProcess::nll_and_grad(const la::Matrix& x, const la::Vector& y,
                                     std::vector<double>& grad) const {
  const std::size_t n = x.rows();
  la::Matrix k = kernel_->matrix(x);
  const double noise = std::max(std::exp(log_noise_), 1e-12);
  for (std::size_t i = 0; i < n; ++i) k(i, i) += noise;

  // gp:chol_fail skips the zero-jitter rung as if the factorization had
  // failed, driving the escalating-jitter retry it exists to test.
  const int start =
      util::fault_fires(util::FaultSite::gp_chol_fail) ? 1 : 0;
  const auto chol = la::cholesky_jittered(k, start);
  if (chol.jitter > 0.0) obs::bo_count(obs::BoCounter::gp_jitter_retries);
  const la::Vector alpha = la::cholesky_solve(chol.l, y);
  const double logdet = la::cholesky_logdet(chol.l);
  const double nll = 0.5 * la::dot(y, alpha) + 0.5 * logdet +
                     0.5 * static_cast<double>(n) * std::log(k_two_pi);

  // dNLL/dK = 0.5 (K^-1 - alpha alpha^T).
  la::Matrix dk = la::cholesky_inverse(chol.l);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      dk(i, j) = 0.5 * (dk(i, j) - alpha[i] * alpha[j]);

  grad.assign(kernel_->n_params() + 1, 0.0);
  kernel_->backward(x, dk, std::span<double>(grad.data(), kernel_->n_params()));
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += dk(i, i);
  grad[kernel_->n_params()] = trace * noise;  // dK/d log sigma^2 = sigma^2 I
  return nll;
}

double GaussianProcess::nll_and_grad_ws(FitScratch& s, const la::Vector& y,
                                        std::vector<double>& grad) const {
  const std::size_t n = y.size();
  kernel_->matrix_ws(*s.ws, s.k);
  const double noise = std::max(std::exp(log_noise_), 1e-12);
  for (std::size_t i = 0; i < n; ++i) s.k(i, i) += noise;

  const int start =
      util::fault_fires(util::FaultSite::gp_chol_fail) ? 1 : 0;
  if (la::cholesky_jittered_into(s.k, s.l, start) > 0.0)
    obs::bo_count(obs::BoCounter::gp_jitter_retries);
  la::cholesky_solve_into(s.l, y, s.alpha, s.tmp);
  const double logdet = la::cholesky_logdet(s.l);
  const double nll = 0.5 * la::dot(y, s.alpha) + 0.5 * logdet +
                     0.5 * static_cast<double>(n) * std::log(k_two_pi);

  // dNLL/dK = 0.5 (K^-1 - alpha alpha^T), with K^-1(i,j) = <t_i, t_j> over
  // the triangular support of T = (L^-1)^T — the inverse is contracted
  // directly into dK, never materialized on its own.
  la::lower_inverse_transposed_into(s.l, s.t);
  if (s.dk.rows() != n || s.dk.cols() != n) s.dk = la::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* ti = s.t.data().data() + i * n;
    const double ai = s.alpha[i];
    std::size_t j = 0;
    for (; j + 1 <= i; j += 2) {  // two columns share each ti load
      const double* tj0 = s.t.data().data() + j * n;
      const double* tj1 = s.t.data().data() + (j + 1) * n;
      double k0 = 0.0;
      double k1 = 0.0;
      for (std::size_t k = i; k < n; ++k) {
        k0 += ti[k] * tj0[k];
        k1 += ti[k] * tj1[k];
      }
      const double v0 = 0.5 * (k0 - ai * s.alpha[j]);
      const double v1 = 0.5 * (k1 - ai * s.alpha[j + 1]);
      s.dk(i, j) = v0;
      s.dk(j, i) = v0;
      s.dk(i, j + 1) = v1;
      s.dk(j + 1, i) = v1;
    }
    for (; j <= i; ++j) {
      const double* tj = s.t.data().data() + j * n;
      double kinv_ij = 0.0;
      for (std::size_t k = i; k < n; ++k) kinv_ij += ti[k] * tj[k];
      const double v = 0.5 * (kinv_ij - ai * s.alpha[j]);
      s.dk(i, j) = v;
      s.dk(j, i) = v;
    }
  }

  grad.assign(kernel_->n_params() + 1, 0.0);
  kernel_->backward_ws(*s.ws, s.dk,
                       std::span<double>(grad.data(), kernel_->n_params()));
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += s.dk(i, i);
  grad[kernel_->n_params()] = trace * noise;  // dK/d log sigma^2 = sigma^2 I
  return nll;
}

void GaussianProcess::fit(const GpFitOptions& opts, util::Rng& rng) {
  KATO_OBS_SPAN("gp_fit");
  KATO_OBS_STAGE(gp_fit);
  if (x_.empty()) throw std::logic_error("GaussianProcess::fit: no data");

  // Hyper-training subset (full posterior still uses all points).
  la::Matrix xs = x_;
  la::Vector ys = y_std_;
  if (x_.rows() > opts.max_train_points) {
    const auto idx = rng.choice(x_.rows(), opts.max_train_points);
    xs = la::Matrix(opts.max_train_points, x_.cols());
    ys.resize(opts.max_train_points);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      xs.set_row(i, x_.row(idx[i]));
      ys[i] = y_std_[idx[i]];
    }
  }

  const std::size_t np = kernel_->n_params() + 1;
  nn::Adam adam(np, opts.lr);
  std::vector<double> grad;
  std::vector<double> best_params(np);
  double best_nll = std::numeric_limits<double>::infinity();

  // The workspace is bound to the subset once per fit: pairwise deltas are
  // computed here and every LML iteration below reuses the same buffers.
  FitScratch scratch;
  if (opts.use_workspace) scratch.ws = kernel_->fit_workspace(xs);

  auto pack = [&](std::vector<double>& out) {
    auto kp = kernel_->params();
    std::copy(kp.begin(), kp.end(), out.begin());
    out[np - 1] = log_noise_;
  };
  auto unpack = [&](const std::vector<double>& in) {
    auto kp = kernel_->params();
    std::copy(in.begin(), in.begin() + kp.size(), kp.begin());
    log_noise_ = in[np - 1];
  };

  std::vector<double> theta(np);
  pack(theta);
  int iters_run = 0;
  for (int it = 0; it < opts.iterations; ++it) {
    unpack(theta);
    double nll;
    try {
      nll = scratch.ws ? nll_and_grad_ws(scratch, ys, grad)
                       : nll_and_grad(xs, ys, grad);
    } catch (const std::runtime_error&) {
      break;  // kernel degenerated beyond the jitter ladder; keep best so far
    }
    ++iters_run;
    if (nll < best_nll) {
      best_nll = nll;
      best_params = theta;
    }
    adam.step(theta, grad);
    // Noise floor keeps the posterior numerically sane.
    theta[np - 1] = std::max(theta[np - 1], std::log(opts.min_noise));
  }
  if (std::isfinite(best_nll)) unpack(best_params);
  fit_info_ = {iters_run, best_nll, scratch.ws != nullptr};
  obs::bo_count(obs::BoCounter::gp_fits);
  obs::bo_count(obs::BoCounter::gp_fit_iters,
                static_cast<std::uint64_t>(iters_run));
  refresh_posterior();
}

void GaussianProcess::refresh_posterior() {
  const std::size_t n = x_.rows();
  la::Matrix k = kernel_->matrix(x_);
  const double noise = std::max(std::exp(log_noise_), 1e-12);
  for (std::size_t i = 0; i < n; ++i) k(i, i) += noise;
  const int start =
      util::fault_fires(util::FaultSite::gp_chol_fail) ? 1 : 0;
  auto chol = la::cholesky_jittered(k, start);
  if (chol.jitter > 0.0) obs::bo_count(obs::BoCounter::gp_jitter_retries);
  Posterior p;
  p.alpha = la::cholesky_solve(chol.l, y_std_);
  la::Matrix t_scratch;
  la::cholesky_inverse_into(chol.l, p.kinv, t_scratch);
  p.chol_l = std::move(chol.l);
  post_ = std::move(p);
}

const GaussianProcess::Posterior& GaussianProcess::posterior() const {
  if (!post_) throw std::logic_error("GaussianProcess: posterior not ready");
  return *post_;
}

GpPrediction GaussianProcess::predict_std(std::span<const double> x) const {
  const auto& p = posterior();
  const std::size_t n = x_.rows();
  la::Matrix xq(1, x.size());
  xq.set_row(0, x);
  const la::Matrix kx = kernel_->cross(xq, x_);  // 1 x n
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += kx(0, i) * p.alpha[i];
  // v = k(x,x) - k^T K^-1 k.
  la::Vector kv(n);
  for (std::size_t i = 0; i < n; ++i) kv[i] = kx(0, i);
  const la::Vector kinv_k = la::matvec(p.kinv, kv);
  double var = kernel_->diag(x) - la::dot(kv, kinv_k);
  var = std::max(var, 1e-12);
  return {mean, var};
}

GpPrediction GaussianProcess::predict(std::span<const double> x) const {
  GpPrediction p = predict_std(x);
  p.mean = p.mean * y_sd_ + y_mean_;
  p.var *= y_sd_ * y_sd_;
  return p;
}

std::vector<GpPrediction> GaussianProcess::predict_std_batch(
    const la::Matrix& xq) const {
  const auto& p = posterior();
  const std::size_t n = x_.rows();
  const std::size_t m = xq.rows();
  std::vector<GpPrediction> out(m);
  if (m == 0) return out;
  if (xq.cols() != kernel_->input_dim())
    throw std::invalid_argument("predict_std_batch: dim mismatch");

  // One cross-covariance evaluation for the whole block: kernels with an
  // input transform (Neuk) embed the training set once instead of once per
  // candidate.
  const la::Matrix kx = kernel_->cross(xq, x_);  // m x n

  // Contiguous query ranges keep the result bit-identical at any thread
  // count: every candidate's mean/variance depends only on its own column.
  util::parallel_for(m, [&](std::size_t q0, std::size_t q1) {
    const std::size_t w = q1 - q0;
    // rhs = kx[q0:q1, :]^T, then one forward sweep solves L V = rhs for all
    // w candidates together; var = k(x,x) - ||v||^2 column-wise.
    la::Matrix rhs(n, w);
    for (std::size_t q = q0; q < q1; ++q)
      for (std::size_t k = 0; k < n; ++k) rhs(k, q - q0) = kx(q, k);
    const la::Matrix v = la::solve_lower_multi(p.chol_l, rhs);
    la::Vector sumsq(w, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      const auto row = v.row(k);
      for (std::size_t j = 0; j < w; ++j) sumsq[j] += row[j] * row[j];
    }
    for (std::size_t q = q0; q < q1; ++q) {
      const double mean = la::dot(kx.row(q), p.alpha);
      const double var =
          std::max(kernel_->diag(xq.row(q)) - sumsq[q - q0], 1e-12);
      out[q] = {mean, var};
    }
  });
  return out;
}

std::vector<GpPrediction> GaussianProcess::predict_batch(
    const la::Matrix& xq) const {
  auto out = predict_std_batch(xq);
  for (auto& p : out) {
    p.mean = p.mean * y_sd_ + y_mean_;
    p.var *= y_sd_ * y_sd_;
  }
  return out;
}

void GaussianProcess::predict_std_grad(std::span<const double> x,
                                       GpPrediction& pred, la::Vector& dmean_dx,
                                       la::Vector& dvar_dx) const {
  const auto& p = posterior();
  const std::size_t n = x_.rows();
  const std::size_t d = x.size();
  la::Matrix xq(1, d);
  xq.set_row(0, x);
  const la::Matrix kx = kernel_->cross(xq, x_);
  la::Vector kv(n);
  for (std::size_t i = 0; i < n; ++i) kv[i] = kx(0, i);

  double mean = la::dot(kv, p.alpha);
  const la::Vector kinv_k = la::matvec(p.kinv, kv);
  double var = std::max(kernel_->diag(x) - la::dot(kv, kinv_k), 1e-12);
  pred = {mean, var};

  // d mean/dx = (dk/dx)^T alpha ; d var/dx = -2 (dk/dx)^T K^-1 k.
  // (k(x,x) is constant in x for the stationary and Neuk kernels used here.)
  const la::Matrix dk_dx = kernel_->input_grad(x, x_);  // n x d
  dmean_dx.assign(d, 0.0);
  dvar_dx.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      dmean_dx[j] += dk_dx(i, j) * p.alpha[i];
      dvar_dx[j] += -2.0 * dk_dx(i, j) * kinv_k[i];
    }
  }
}

GpPrediction GaussianProcess::kinv_predict_one(const la::Matrix& kx,
                                               const la::Matrix& xq,
                                               std::size_t q,
                                               la::Vector& kinv_k) const {
  const auto& p = posterior();
  const std::size_t n = x_.rows();
  const auto kv = kx.row(q);
  // kinv_k = K^-1 k; row-wise dot against the (exactly symmetric) inverse
  // reproduces la::matvec's summation order bit for bit.
  kinv_k.resize(n);
  for (std::size_t i = 0; i < n; ++i) kinv_k[i] = la::dot(p.kinv.row(i), kv);
  const double mean = la::dot(kv, p.alpha);
  const double var =
      std::max(kernel_->diag(xq.row(q)) - la::dot(kv, kinv_k), 1e-12);
  return {mean, var};
}

void GaussianProcess::predict_std_grad_batch(const la::Matrix& xq,
                                             std::vector<GpPrediction>& preds,
                                             la::Matrix& dmean_dx,
                                             la::Matrix& dvar_dx) const {
  const auto& p = posterior();
  const std::size_t n = x_.rows();
  const std::size_t m = xq.rows();
  const std::size_t d = xq.cols();
  preds.resize(m);
  if (dmean_dx.rows() != m || dmean_dx.cols() != d) dmean_dx = la::Matrix(m, d);
  if (dvar_dx.rows() != m || dvar_dx.cols() != d) dvar_dx = la::Matrix(m, d);
  if (m == 0) return;

  // One cross-covariance for the whole block: input-transform kernels embed
  // the training set once per block instead of once per query.
  const la::Matrix kx = kernel_->cross(xq, x_);  // m x n

  util::parallel_for(m, [&](std::size_t q0, std::size_t q1) {
    la::Vector kinv_k(n);
    for (std::size_t q = q0; q < q1; ++q) {
      preds[q] = kinv_predict_one(kx, xq, q, kinv_k);

      const la::Matrix dk_dx = kernel_->input_grad(xq.row(q), x_);  // n x d
      auto dm = dmean_dx.row(q);
      auto dv = dvar_dx.row(q);
      for (std::size_t j = 0; j < d; ++j) {
        dm[j] = 0.0;
        dv[j] = 0.0;
      }
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
          dm[j] += dk_dx(i, j) * p.alpha[i];
          dv[j] += -2.0 * dk_dx(i, j) * kinv_k[i];
        }
      }
    }
  });
}

void GaussianProcess::predict_std_batch_exact(
    const la::Matrix& xq, std::vector<GpPrediction>& preds) const {
  const std::size_t n = x_.rows();
  const std::size_t m = xq.rows();
  preds.resize(m);
  if (m == 0) return;
  const la::Matrix kx = kernel_->cross(xq, x_);
  util::parallel_for(m, [&](std::size_t q0, std::size_t q1) {
    la::Vector kinv_k(n);
    for (std::size_t q = q0; q < q1; ++q)
      preds[q] = kinv_predict_one(kx, xq, q, kinv_k);
  });
}

double GaussianProcess::nll() const {
  std::vector<double> grad;
  // Reuse the training path on the full data (gradient discarded).
  return nll_and_grad(x_, y_std_, grad);
}

MultiGp::MultiGp(std::size_t n_metrics,
                 const std::function<std::unique_ptr<kern::Kernel>()>& make_kernel) {
  if (n_metrics == 0) throw std::invalid_argument("MultiGp: need >= 1 metric");
  gps_.reserve(n_metrics);
  for (std::size_t i = 0; i < n_metrics; ++i)
    gps_.emplace_back(make_kernel());
}

void MultiGp::set_data(const la::Matrix& x, const la::Matrix& y, bool refresh) {
  if (y.cols() != gps_.size())
    throw std::invalid_argument("MultiGp::set_data: metric count mismatch");
  // The per-metric posterior rebuilds are independent: refresh them on the
  // pool when more than one metric is present.
  util::parallel_for(gps_.size(), [&](std::size_t m0, std::size_t m1) {
    for (std::size_t m = m0; m < m1; ++m) {
      la::Vector col(y.rows());
      for (std::size_t i = 0; i < y.rows(); ++i) col[i] = y(i, m);
      gps_[m].set_data(x, std::move(col), refresh);
    }
  });
}

void MultiGp::fit(const GpFitOptions& opts, util::Rng& rng) {
  // Deterministic parallel training: every metric gets its own RNG stream,
  // split from the caller's in metric order *before* any work starts, so the
  // draw sequences — and therefore the fitted hyperparameters — are
  // bit-identical whether the metrics run on 1 thread or many.
  std::vector<util::Rng> rngs;
  rngs.reserve(gps_.size());
  for (std::size_t m = 0; m < gps_.size(); ++m) rngs.push_back(rng.split());
  util::parallel_for(gps_.size(), [&](std::size_t m0, std::size_t m1) {
    for (std::size_t m = m0; m < m1; ++m) gps_[m].fit(opts, rngs[m]);
  });
}

std::vector<GpPrediction> MultiGp::predict(std::span<const double> x) const {
  std::vector<GpPrediction> out;
  out.reserve(gps_.size());
  for (const auto& g : gps_) out.push_back(g.predict(x));
  return out;
}

std::vector<std::vector<GpPrediction>> MultiGp::predict_batch(
    const la::Matrix& xq) const {
  std::vector<std::vector<GpPrediction>> out(xq.rows());
  for (auto& row : out) row.reserve(gps_.size());
  for (const auto& g : gps_) {
    const auto preds = g.predict_batch(xq);
    for (std::size_t q = 0; q < preds.size(); ++q) out[q].push_back(preds[q]);
  }
  return out;
}

}  // namespace kato::gp

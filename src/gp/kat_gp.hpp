#pragma once
// Knowledge Alignment and Transfer GP (KAT-GP) — paper Sec. 3.2.
//
// Structure (Fig. 2):
//   encoder E : target design space  -> source design space   (MLP d_t-32-d_s)
//   source GP : frozen MultiGp trained on the source circuit's data
//   decoder D : source metric space  -> target metric space   (MLP m_s-32-m_t)
//
// Predictive distribution via the Delta method (Eq. 11):
//   mu_t(x)    = D( mu_s(E(x)) )
//   Sigma_t(x) = J diag(v_s(E(x))) J^T + sigma_t^2 I,
// where J is the decoder Jacobian at mu_s (the source GPs are independent per
// metric, so the source covariance S is diagonal).
//
// Training maximizes the Gaussian likelihood of the target data (Eq. 12) with
// Adam over encoder weights, decoder weights and the target noise.  Gradients
// flow through the decoder (backprop), through the source GP posterior
// (analytic d mean/dx, d var/dx from GaussianProcess::predict_std_grad) and
// into the encoder (backprop).  The gradient through the Jacobian J inside
// the Delta-method covariance is computed exactly for the paper's one-hidden-
// layer decoder: with D(u) = W2 s(W1 u + b1) + b2 the Jacobian factors as
// J = W2 diag(s'(a)) W1, whose parameter- and input-derivatives are closed
// form (they involve s'').  All gradients are finite-difference checked in
// tests/gp_test.cpp.
//
// The first fit begins with a mean-warmup phase (squared-error loss on the
// predictive mean only).  Without it, Adam reliably falls into the variance-
// sink local optimum of Eq. 12 — inflate sigma_t to "explain" the residuals
// and leave the encoder untrained — because the mean path needs coordinated
// encoder+decoder progress while the variance path has an easy one-parameter
// fix.  Warmup removes that shortcut while the alignment forms.
//
// All alignment happens in standardized spaces: inputs live in unit boxes,
// the decoder consumes standardized source-GP outputs and produces
// standardized target outputs.

#include <memory>

#include "gp/gp.hpp"
#include "nn/mlp.hpp"

namespace kato::gp {

struct KatGpConfig {
  std::size_t hidden = 32;      ///< hidden width of encoder/decoder (paper: 32)
  int init_iterations = 400;    ///< Adam steps for the first fit
  int refit_iterations = 60;    ///< Adam steps for warm-started refits
  double lr = 1e-2;
  double warmup_frac = 0.4;     ///< fraction of the first fit spent on mean-only loss
  double grad_clip = 10.0;      ///< global-norm gradient clip (0 = off)
  double reg_to_init = 1e-3;    ///< L2 pull toward the identity-biased init
  int eval_every = 10;          ///< full-NLL evaluation cadence for best-param tracking
  std::size_t batch_size = 128; ///< minibatch size (0 = full batch)
  double init_noise = 1e-2;     ///< initial target noise (standardized)
  double min_noise = 1e-6;
};

class KatGp {
 public:
  /// `source` must outlive this object and already be fitted on source data.
  KatGp(const MultiGp* source, std::size_t target_dim,
        std::size_t target_metrics, const KatGpConfig& config, util::Rng& rng);

  /// Replace target data: x (n x d_t, unit box), y (n x m_t, raw units).
  void set_target_data(const la::Matrix& x, const la::Matrix& y);

  /// Train encoder/decoder/noise.  First call uses init_iterations, later
  /// calls warm-start with refit_iterations.
  void fit(util::Rng& rng);

  /// Delta-method predictive per target metric, raw units.
  std::vector<GpPrediction> predict(std::span<const double> x) const;
  /// Batched prediction (out[q][m]): encodes the whole query block, then
  /// runs each source metric's batched posterior over the encoded block so
  /// the expensive source-GP stage shares one cross-covariance and one
  /// triangular solve across candidates (and splits across KATO_THREADS).
  std::vector<std::vector<GpPrediction>> predict_batch(const la::Matrix& xq) const;

  /// Exact Eq. 12 negative log likelihood of the current parameters on the
  /// full target set (used by tests and diagnostics).
  double nll() const;

  std::size_t n_metrics() const { return m_t_; }
  std::size_t n_target_data() const { return x_t_.rows(); }

 private:
  struct Forward {
    la::Vector enc_out;          ///< E(x), d_s
    la::Vector mu_s;             ///< standardized source means, m_s
    la::Vector v_s;              ///< standardized source variances, m_s
    la::Vector mean_t;           ///< decoder output (standardized target), m_t
    la::Matrix jac;              ///< decoder Jacobian m_t x m_s
    nn::Mlp::Cache enc_cache;
    nn::Mlp::Cache dec_cache;
  };

  /// Per-minibatch source-GP state: posterior values plus d mu_s/dx and
  /// d v_s/dx for every (point, metric) pair, computed by one batched
  /// predict_std_grad_batch call per metric.  The batched values are
  /// bit-identical to the per-point calls the training loop used to make,
  /// but the source kernel embeds the minibatch once per hyper-step instead
  /// of once per point per metric.
  struct SourceGrads {
    std::vector<std::vector<GpPrediction>> preds;  ///< [metric][point]
    std::vector<la::Matrix> dmean;                 ///< [metric]: b x d_s
    std::vector<la::Matrix> dvar;                  ///< [metric]: b x d_s
  };

  Forward forward(std::span<const double> x) const;
  /// NLL of one target point given a forward pass.
  double point_nll(const Forward& f, std::size_t row) const;
  /// Accumulate gradients for one point into encoder/decoder grads and
  /// d/d log sigma_t^2; returns the point loss.  With mean_only the loss is
  /// the squared error of the predictive mean (warmup phase).  `sg`/`brow`
  /// supply the batched source posterior gradients for this point.
  double point_backward(const Forward& f, std::size_t row, bool mean_only,
                        const SourceGrads& sg, std::size_t brow);

  const MultiGp* source_;
  std::size_t d_t_;
  std::size_t m_t_;
  KatGpConfig config_;
  mutable nn::Mlp encoder_;   // mutable: forward() caches are external, but
  mutable nn::Mlp decoder_;   // jacobian() is const-logical
  double log_noise_;
  double noise_grad_ = 0.0;  ///< scratch accumulator for d NLL / d log sigma^2
  la::Matrix x_t_;
  la::Matrix y_t_std_;
  la::Vector y_mean_;
  la::Vector y_sd_;
  bool fitted_once_ = false;
};

}  // namespace kato::gp

#include "gp/kat_gp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace kato::gp {

namespace {
constexpr double k_log_two_pi = 1.8378770664093453;

/// Inverse of a small SPD matrix via Cholesky (m_t is 1-4 here).
la::Matrix small_spd_inverse(const la::Matrix& a) {
  const auto chol = la::cholesky_jittered(a);
  return la::cholesky_inverse(chol.l);
}

double small_spd_logdet(const la::Matrix& a) {
  const auto chol = la::cholesky_jittered(a);
  return la::cholesky_logdet(chol.l);
}
}  // namespace

KatGp::KatGp(const MultiGp* source, std::size_t target_dim,
             std::size_t target_metrics, const KatGpConfig& config,
             util::Rng& rng)
    : source_(source),
      d_t_(target_dim),
      m_t_(target_metrics),
      config_(config),
      encoder_({target_dim, config.hidden, source->metric(0).input_dim()},
               nn::Activation::sigmoid, rng),
      decoder_({source->n_metrics(), config.hidden, target_metrics},
               nn::Activation::sigmoid, rng),
      log_noise_(std::log(config.init_noise)) {
  if (!source_) throw std::invalid_argument("KatGp: null source model");
  if (target_dim == 0 || target_metrics == 0)
    throw std::invalid_argument("KatGp: zero target dimension");

  // Identity-biased initialization: start from "target behaves like source".
  // Matching design variables (i < min(d_t, d_s)) are wired through so that
  // E(x) ~= x, and matching metrics so that D(u) ~= u; surplus dimensions
  // start at the box/metric center.  This is the natural prior for node
  // transfer (same topology, same variable order) and a harmless starting
  // point for topology transfer, where training reshapes the maps.  Xavier
  // noise left by the Mlp constructor provides the symmetry breaking.
  {
    const std::size_t d_s = source_->metric(0).input_dim();
    auto scale_block = [](std::span<double> w, double s) {
      for (auto& v : w) v *= s;
    };
    scale_block(encoder_.weight(0), 0.1);
    scale_block(encoder_.weight(1), 0.1);
    // 8 sigmoid(x/2 - 1/4) - 3.5 ~= x on [0,1] to within 3e-3 (the sigmoid
    // stays in its linear region), so E starts as a near-exact identity on
    // the shared dimensions; surplus source dimensions start near the box
    // center (sigmoid of small noise scaled into [0,1] via the bias).
    auto ew1 = encoder_.weight(0);
    auto eb1 = encoder_.bias(0);
    auto ew2 = encoder_.weight(1);
    auto eb2 = encoder_.bias(1);
    const std::size_t eh = encoder_.layer_out(0);
    for (std::size_t i = 0; i < std::min(d_t_, d_s); ++i) {
      ew1[i * d_t_ + i] = 0.5;
      eb1[i] = -0.25;
      ew2[i * eh + i] = 8.0;
      eb2[i] = -3.5;
    }
    for (std::size_t i = std::min(d_t_, d_s); i < d_s; ++i) eb2[i] = 0.5;
    scale_block(decoder_.weight(0), 0.1);
    scale_block(decoder_.weight(1), 0.1);
    // 8(sigmoid(u/2) - 1/2) ~= u on the standardized range |u| <~ 2.
    const std::size_t m_s = source_->n_metrics();
    auto dw1 = decoder_.weight(0);
    auto db1 = decoder_.bias(0);
    auto dw2 = decoder_.weight(1);
    auto db2 = decoder_.bias(1);
    const std::size_t dh = decoder_.layer_out(0);
    for (std::size_t i = 0; i < std::min(m_t_, m_s); ++i) {
      dw1[i * m_s + i] = 0.5;
      db1[i] = 0.0;
      dw2[i * dh + i] = 8.0;
      db2[i] = -4.0;
    }
  }
}

void KatGp::set_target_data(const la::Matrix& x, const la::Matrix& y) {
  if (x.rows() != y.rows())
    throw std::invalid_argument("KatGp::set_target_data: n mismatch");
  if (x.cols() != d_t_ || y.cols() != m_t_)
    throw std::invalid_argument("KatGp::set_target_data: dim mismatch");
  x_t_ = x;
  y_mean_.assign(m_t_, 0.0);
  y_sd_.assign(m_t_, 1.0);
  y_t_std_ = la::Matrix(y.rows(), m_t_);
  for (std::size_t m = 0; m < m_t_; ++m) {
    la::Vector col(y.rows());
    for (std::size_t i = 0; i < y.rows(); ++i) col[i] = y(i, m);
    y_mean_[m] = util::mean(col);
    y_sd_[m] = util::stddev(col);
    if (y_sd_[m] < 1e-12) y_sd_[m] = 1.0;
    for (std::size_t i = 0; i < y.rows(); ++i)
      y_t_std_(i, m) = (y(i, m) - y_mean_[m]) / y_sd_[m];
  }
}

KatGp::Forward KatGp::forward(std::span<const double> x) const {
  Forward f;
  la::Vector xin(x.begin(), x.end());
  f.enc_out = encoder_.forward(xin, f.enc_cache);

  const std::size_t m_s = source_->n_metrics();
  f.mu_s.resize(m_s);
  f.v_s.resize(m_s);
  for (std::size_t k = 0; k < m_s; ++k) {
    const GpPrediction p = source_->metric(k).predict_std(f.enc_out);
    f.mu_s[k] = p.mean;
    f.v_s[k] = p.var;
  }
  f.mean_t = decoder_.forward(f.mu_s, f.dec_cache);
  f.jac = decoder_.jacobian(f.mu_s);
  return f;
}

double KatGp::point_nll(const Forward& f, std::size_t row) const {
  const double noise = std::exp(log_noise_);
  la::Matrix sigma(m_t_, m_t_);
  for (std::size_t a = 0; a < m_t_; ++a)
    for (std::size_t b = 0; b < m_t_; ++b) {
      double s = 0.0;
      for (std::size_t k = 0; k < f.v_s.size(); ++k)
        s += f.jac(a, k) * f.v_s[k] * f.jac(b, k);
      sigma(a, b) = s + (a == b ? noise : 0.0);
    }
  la::Vector r(m_t_);
  for (std::size_t m = 0; m < m_t_; ++m) r[m] = y_t_std_(row, m) - f.mean_t[m];
  const la::Matrix sigma_inv = small_spd_inverse(sigma);
  const la::Vector w = la::matvec(sigma_inv, r);
  return 0.5 * la::dot(r, w) + 0.5 * small_spd_logdet(sigma) +
         0.5 * static_cast<double>(m_t_) * k_log_two_pi;
}

double KatGp::point_backward(const Forward& f, std::size_t row, bool mean_only,
                             const SourceGrads& sg, std::size_t brow) {
  const std::size_t m_s = f.v_s.size();
  const double noise = std::exp(log_noise_);

  if (mean_only) {
    // Warmup phase: L = 0.5 ||y - mean_t||^2.
    la::Vector dmean(m_t_);
    double loss = 0.0;
    for (std::size_t m = 0; m < m_t_; ++m) {
      const double r = y_t_std_(row, m) - f.mean_t[m];
      loss += 0.5 * r * r;
      dmean[m] = -r;
    }
    la::Vector dmu = decoder_.backward(f.dec_cache, dmean);
    const std::size_t d_s = f.enc_out.size();
    la::Vector dxs(d_s, 0.0);
    for (std::size_t k = 0; k < m_s; ++k) {
      const auto dmean_dx = sg.dmean[k].row(brow);
      for (std::size_t j = 0; j < d_s; ++j) dxs[j] += dmu[k] * dmean_dx[j];
    }
    (void)encoder_.backward(f.enc_cache, dxs);
    return loss;
  }

  la::Matrix sigma(m_t_, m_t_);
  for (std::size_t a = 0; a < m_t_; ++a)
    for (std::size_t b = 0; b < m_t_; ++b) {
      double s = 0.0;
      for (std::size_t k = 0; k < m_s; ++k)
        s += f.jac(a, k) * f.v_s[k] * f.jac(b, k);
      sigma(a, b) = s + (a == b ? noise : 0.0);
    }
  la::Vector r(m_t_);
  for (std::size_t m = 0; m < m_t_; ++m) r[m] = y_t_std_(row, m) - f.mean_t[m];

  const la::Matrix sigma_inv = small_spd_inverse(sigma);
  const la::Vector w = la::matvec(sigma_inv, r);
  const double nll = 0.5 * la::dot(r, w) + 0.5 * small_spd_logdet(sigma) +
                     0.5 * static_cast<double>(m_t_) * k_log_two_pi;

  // dNLL/dSigma = 0.5 (Sigma^-1 - w w^T).
  la::Matrix dsigma(m_t_, m_t_);
  for (std::size_t a = 0; a < m_t_; ++a)
    for (std::size_t b = 0; b < m_t_; ++b)
      dsigma(a, b) = 0.5 * (sigma_inv(a, b) - w[a] * w[b]);

  double trace = 0.0;
  for (std::size_t a = 0; a < m_t_; ++a) trace += dsigma(a, a);
  noise_grad_ += trace * noise;

  // dNLL/dv_k = J[:,k]^T dSigma J[:,k].
  la::Vector dv(m_s, 0.0);
  for (std::size_t k = 0; k < m_s; ++k) {
    double acc = 0.0;
    for (std::size_t a = 0; a < m_t_; ++a)
      for (std::size_t b = 0; b < m_t_; ++b)
        acc += f.jac(a, k) * dsigma(a, b) * f.jac(b, k);
    dv[k] = acc;
  }

  // Decoder: upstream dNLL/dmean_t = -w.
  la::Vector dmean(m_t_);
  for (std::size_t m = 0; m < m_t_; ++m) dmean[m] = -w[m];
  la::Vector dmu = decoder_.backward(f.dec_cache, dmean);  // dNLL/dmu_s

  // ---- Exact gradient through the Delta-method Jacobian ----
  // J = W2 diag(s'(a)) W1 with a = W1 mu_s + b1 (one hidden layer).
  // dNLL/dJ = (P + P^T) J S = 2 P J S with P = dsigma (symmetric), S = diag(v).
  {
    const std::size_t h = decoder_.layer_out(0);
    const auto w1 = decoder_.weight(0);  // h x m_s
    const auto w2 = decoder_.weight(1);  // m_t x h
    const auto& a_pre = f.dec_cache.pre_act[0];
    const nn::Activation act = decoder_.activation_of(0);

    la::Matrix dj(m_t_, m_s);
    for (std::size_t p = 0; p < m_t_; ++p)
      for (std::size_t j = 0; j < m_s; ++j) {
        double s = 0.0;
        for (std::size_t b = 0; b < m_t_; ++b) s += dsigma(p, b) * f.jac(b, j);
        dj(p, j) = 2.0 * s * f.v_s[j];
      }

    // T = W2^T dJ (h x m_s).
    la::Matrix t(h, m_s);
    for (std::size_t k = 0; k < h; ++k)
      for (std::size_t j = 0; j < m_s; ++j) {
        double s = 0.0;
        for (std::size_t p = 0; p < m_t_; ++p) s += w2[p * h + k] * dj(p, j);
        t(k, j) = s;
      }

    auto w1g = decoder_.weight_grad(0);
    auto w2g = decoder_.weight_grad(1);
    auto b1g = decoder_.bias_grad(0);
    for (std::size_t k = 0; k < h; ++k) {
      const double sp = nn::activate_deriv(act, a_pre[k]);
      const double spp = nn::activate_second_deriv(act, a_pre[k]);
      // dW2[p,k] += sum_j dJ[p,j] s'(a_k) W1[k,j].
      for (std::size_t p = 0; p < m_t_; ++p) {
        double s = 0.0;
        for (std::size_t j = 0; j < m_s; ++j) s += dj(p, j) * w1[k * m_s + j];
        w2g[p * h + k] += sp * s;
      }
      // g_k = sum_j T[k,j] W1[k,j]; da_k = g_k s''(a_k).
      double g = 0.0;
      for (std::size_t j = 0; j < m_s; ++j) g += t(k, j) * w1[k * m_s + j];
      const double da = g * spp;
      b1g[k] += da;
      for (std::size_t j = 0; j < m_s; ++j) {
        // explicit-W1 path + activation path.
        w1g[k * m_s + j] += sp * t(k, j) + da * f.mu_s[j];
        // a depends on the decoder input mu_s as well.
        dmu[j] += da * w1[k * m_s + j];
      }
    }
  }

  // Source GP posterior: chain d mu/dx_s and d var/dx_s into the encoder.
  const std::size_t d_s = f.enc_out.size();
  la::Vector dxs(d_s, 0.0);
  for (std::size_t k = 0; k < m_s; ++k) {
    const auto dmean_dx = sg.dmean[k].row(brow);
    const auto dvar_dx = sg.dvar[k].row(brow);
    for (std::size_t j = 0; j < d_s; ++j)
      dxs[j] += dmu[k] * dmean_dx[j] + dv[k] * dvar_dx[j];
  }
  (void)encoder_.backward(f.enc_cache, dxs);
  return nll;
}

void KatGp::fit(util::Rng& rng) {
  if (x_t_.empty()) throw std::logic_error("KatGp::fit: no target data");
  const int iters =
      fitted_once_ ? config_.refit_iterations : config_.init_iterations;
  const std::size_t n = x_t_.rows();
  const std::size_t batch = config_.batch_size == 0
                                ? n
                                : std::min<std::size_t>(config_.batch_size, n);

  const std::size_t np = encoder_.n_params() + decoder_.n_params() + 1;
  nn::Adam adam(np, config_.lr);
  std::vector<double> theta(np);
  std::vector<double> grad(np);

  auto pack = [&] {
    auto ep = encoder_.params();
    auto dp = decoder_.params();
    std::copy(ep.begin(), ep.end(), theta.begin());
    std::copy(dp.begin(), dp.end(), theta.begin() + ep.size());
    theta[np - 1] = log_noise_;
  };
  auto unpack = [&] {
    auto ep = encoder_.params();
    auto dp = decoder_.params();
    std::copy(theta.begin(), theta.begin() + ep.size(), ep.begin());
    std::copy(theta.begin() + ep.size(), theta.begin() + ep.size() + dp.size(),
              dp.begin());
    log_noise_ = theta[np - 1];
  };

  // Mean-only warmup applies to the first fit only (see header).
  const int warmup =
      fitted_once_ ? 0
                   : static_cast<int>(config_.warmup_frac *
                                      static_cast<double>(iters));

  // Track the best parameters by exact full-data NLL so a diverging run can
  // never leave the model worse than its starting point.
  std::vector<double> best_theta(np);
  double best_nll = std::numeric_limits<double>::infinity();
  auto consider_best = [&] {
    const double cur = nll();
    if (cur < best_nll) {
      best_nll = cur;
      best_theta = theta;
    }
  };

  pack();
  consider_best();
  // The regularizer anchors to the parameters at the start of this fit —
  // the identity-biased init on the first call, the previous optimum on
  // refits — so transfer stays conservative unless the data insists.
  const std::vector<double> anchor = theta;

  // Reused minibatch buffers: the encoder caches live across iterations and
  // the batched source stage shares one kernel cross-covariance and one
  // K^-1 contraction per metric per hyper-step (bit-identical to the old
  // per-point calls; see GaussianProcess::predict_std_grad_batch).
  const std::size_t m_s = source_->n_metrics();
  std::vector<Forward> fwd;
  la::Matrix enc;
  SourceGrads sg;
  sg.preds.resize(m_s);
  sg.dmean.resize(m_s);
  sg.dvar.resize(m_s);

  for (int it = 0; it < iters; ++it) {
    unpack();
    encoder_.zero_grad();
    decoder_.zero_grad();
    noise_grad_ = 0.0;
    const auto idx = batch < n ? rng.choice(n, batch) : rng.permutation(n);
    const std::size_t b = idx.size();
    if (fwd.size() < b) fwd.resize(b);
    if (enc.rows() != b) enc = la::Matrix(b, encoder_.out_dim());

    // Encode the whole minibatch once per hyper-step.
    for (std::size_t bi = 0; bi < b; ++bi) {
      const auto row = x_t_.row(idx[bi]);
      la::Vector xin(row.begin(), row.end());
      fwd[bi].enc_out = encoder_.forward(xin, fwd[bi].enc_cache);
      enc.set_row(bi, fwd[bi].enc_out);
    }
    for (std::size_t k = 0; k < m_s; ++k)
      source_->metric(k).predict_std_grad_batch(enc, sg.preds[k], sg.dmean[k],
                                                sg.dvar[k]);

    for (std::size_t bi = 0; bi < b; ++bi) {
      Forward& f = fwd[bi];
      f.mu_s.resize(m_s);
      f.v_s.resize(m_s);
      for (std::size_t k = 0; k < m_s; ++k) {
        f.mu_s[k] = sg.preds[k][bi].mean;
        f.v_s[k] = sg.preds[k][bi].var;
      }
      f.mean_t = decoder_.forward(f.mu_s, f.dec_cache);
      f.jac = decoder_.jacobian(f.mu_s);
      (void)point_backward(f, idx[bi], it < warmup, sg, bi);
    }
    const double scale = 1.0 / static_cast<double>(idx.size());
    auto eg = encoder_.grads();
    auto dg = decoder_.grads();
    for (std::size_t i = 0; i < eg.size(); ++i) grad[i] = eg[i] * scale;
    for (std::size_t i = 0; i < dg.size(); ++i) grad[eg.size() + i] = dg[i] * scale;
    grad[np - 1] = noise_grad_ * scale;
    if (config_.reg_to_init > 0.0)
      for (std::size_t i = 0; i + 1 < np; ++i)  // noise is not anchored
        grad[i] += config_.reg_to_init * (theta[i] - anchor[i]);
    if (config_.grad_clip > 0.0) {
      const double norm = la::norm2(grad);
      if (norm > config_.grad_clip) {
        const double s = config_.grad_clip / norm;
        for (auto& g : grad) g *= s;
      }
    }
    adam.step(theta, grad);
    theta[np - 1] = std::max(theta[np - 1], std::log(config_.min_noise));
    if (it >= warmup &&
        (config_.eval_every > 0 && (it + 1) % config_.eval_every == 0)) {
      unpack();
      consider_best();
    }
  }
  unpack();
  consider_best();
  theta = best_theta;
  unpack();
  fitted_once_ = true;
}

std::vector<GpPrediction> KatGp::predict(std::span<const double> x) const {
  const Forward f = forward(x);
  const double noise = std::exp(log_noise_);
  std::vector<GpPrediction> out(m_t_);
  for (std::size_t m = 0; m < m_t_; ++m) {
    double var = noise;
    for (std::size_t k = 0; k < f.v_s.size(); ++k)
      var += f.jac(m, k) * f.jac(m, k) * f.v_s[k];
    out[m].mean = f.mean_t[m] * y_sd_[m] + y_mean_[m];
    out[m].var = var * y_sd_[m] * y_sd_[m];
  }
  return out;
}

std::vector<std::vector<GpPrediction>> KatGp::predict_batch(
    const la::Matrix& xq) const {
  const std::size_t q = xq.rows();
  const std::size_t m_s = source_->n_metrics();

  // Encode every query (cheap MLP forwards) into one block.
  nn::Mlp::Cache enc_cache;
  la::Matrix enc;
  for (std::size_t i = 0; i < q; ++i) {
    const auto row = xq.row(i);
    la::Vector xin(row.begin(), row.end());
    const la::Vector e = encoder_.forward(xin, enc_cache);
    if (enc.empty()) enc = la::Matrix(q, e.size());
    enc.set_row(i, e);
  }

  // Batched source posterior: one cross-covariance + triangular solve per
  // source metric instead of one per metric per candidate.
  la::Matrix mu_s(q, m_s);
  la::Matrix v_s(q, m_s);
  for (std::size_t k = 0; k < m_s; ++k) {
    const auto preds = source_->metric(k).predict_std_batch(enc);
    for (std::size_t i = 0; i < q; ++i) {
      mu_s(i, k) = preds[i].mean;
      v_s(i, k) = preds[i].var;
    }
  }

  // Decoder + Delta-method variance per candidate (cheap MLP arithmetic).
  const double noise = std::exp(log_noise_);
  std::vector<std::vector<GpPrediction>> out(q);
  nn::Mlp::Cache dec_cache;
  for (std::size_t i = 0; i < q; ++i) {
    const la::Vector mu = mu_s.row_vec(i);
    const la::Vector mean_t = decoder_.forward(mu, dec_cache);
    const la::Matrix jac = decoder_.jacobian(mu);
    out[i].resize(m_t_);
    for (std::size_t m = 0; m < m_t_; ++m) {
      double var = noise;
      for (std::size_t k = 0; k < m_s; ++k)
        var += jac(m, k) * jac(m, k) * v_s(i, k);
      out[i][m].mean = mean_t[m] * y_sd_[m] + y_mean_[m];
      out[i][m].var = var * y_sd_[m] * y_sd_[m];
    }
  }
  return out;
}

double KatGp::nll() const {
  const std::size_t n = x_t_.rows();
  const std::size_t m_s = source_->n_metrics();
  // Batched evaluation sweep: encode every point, then one kinv-path batched
  // posterior per source metric (bit-identical to per-point forward()).
  la::Matrix enc(n, encoder_.out_dim());
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = x_t_.row(i);
    la::Vector xin(row.begin(), row.end());
    enc.set_row(i, encoder_.forward(xin));
  }
  std::vector<std::vector<GpPrediction>> preds(m_s);
  for (std::size_t k = 0; k < m_s; ++k)
    source_->metric(k).predict_std_batch_exact(enc, preds[k]);

  double total = 0.0;
  Forward f;
  f.mu_s.resize(m_s);
  f.v_s.resize(m_s);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < m_s; ++k) {
      f.mu_s[k] = preds[k][i].mean;
      f.v_s[k] = preds[k][i].var;
    }
    f.mean_t = decoder_.forward(f.mu_s, f.dec_cache);
    f.jac = decoder_.jacobian(f.mu_s);
    total += point_nll(f, i);
  }
  return total / static_cast<double>(n);
}

}  // namespace kato::gp

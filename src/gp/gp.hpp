#pragma once
// Gaussian-process regression with exact marginal-likelihood training.
//
// Implements Eqs. (3)-(4) of the paper.  Hyperparameters (kernel parameters
// plus observation noise) are trained by Adam on the exact negative log
// marginal likelihood; the gradient splits at the kernel-matrix boundary:
//   dNLL/dK = 0.5 (K^-1 - alpha alpha^T),  alpha = K^-1 y,
// which is analytic, and each kernel provides backward() for dK/dtheta.
//
// Targets are standardized internally; predictions are returned in raw units
// unless the *_std variants are used (the KAT-GP transfer path works in
// standardized space so the encoder/decoder see O(1) values).

#include <functional>
#include <memory>
#include <optional>

#include "kernel/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "util/rng.hpp"

namespace kato::gp {

struct GpFitOptions {
  int iterations = 100;             ///< Adam steps on the NLL
  double lr = 0.05;                 ///< Adam learning rate
  std::size_t max_train_points = 192;  ///< subsample cap for hyper-training
  double min_noise = 1e-6;          ///< noise floor (standardized space)
};

struct GpPrediction {
  double mean = 0.0;
  double var = 0.0;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(std::unique_ptr<kern::Kernel> kernel);

  GaussianProcess(const GaussianProcess& other);
  GaussianProcess& operator=(const GaussianProcess& other);
  GaussianProcess(GaussianProcess&&) = default;
  GaussianProcess& operator=(GaussianProcess&&) = default;

  /// Replace the training set (inputs in the unit box, raw-unit targets)
  /// and refresh the posterior with current hyperparameters.
  void set_data(la::Matrix x, la::Vector y);

  /// Maximum-likelihood hyperparameter training (warm-started from current
  /// values).  `rng` drives the hyper-training subsample when n exceeds
  /// GpFitOptions::max_train_points.
  void fit(const GpFitOptions& opts, util::Rng& rng);

  /// Predictive posterior (Eq. 4) in raw target units.
  GpPrediction predict(std::span<const double> x) const;
  /// Predictive posterior in standardized-target space.
  GpPrediction predict_std(std::span<const double> x) const;
  /// Batched posterior for a whole query block (rows of xq), raw units.
  /// One kernel cross-covariance evaluation and one multi-RHS triangular
  /// solve are shared across all candidates — agrees with per-point
  /// predict() to numerical round-off but is several times cheaper.
  /// Splits across KATO_THREADS workers deterministically.
  std::vector<GpPrediction> predict_batch(const la::Matrix& xq) const;
  /// Batched posterior in standardized-target space.
  std::vector<GpPrediction> predict_std_batch(const la::Matrix& xq) const;
  /// Standardized posterior plus gradients d mean/dx and d var/dx
  /// (used by KAT-GP to backpropagate through the source GP).
  void predict_std_grad(std::span<const double> x, GpPrediction& pred,
                        la::Vector& dmean_dx, la::Vector& dvar_dx) const;

  /// Exact NLL of the current hyperparameters on the full training set.
  double nll() const;

  std::size_t n_data() const { return x_.rows(); }
  std::size_t input_dim() const { return kernel_->input_dim(); }
  const la::Matrix& train_x() const { return x_; }
  kern::Kernel& kernel() { return *kernel_; }
  const kern::Kernel& kernel() const { return *kernel_; }
  double y_mean() const { return y_mean_; }
  double y_std() const { return y_sd_; }
  double noise_var() const;  ///< standardized-space sigma^2

 private:
  struct Posterior {
    la::Matrix chol_l;
    la::Vector alpha;
    la::Matrix kinv;
  };

  /// NLL and gradient (kernel params then log-noise) on the given subset.
  double nll_and_grad(const la::Matrix& x, const la::Vector& y,
                      std::vector<double>& grad) const;
  void refresh_posterior();
  const Posterior& posterior() const;

  std::unique_ptr<kern::Kernel> kernel_;
  double log_noise_;
  la::Matrix x_;
  la::Vector y_std_;  ///< standardized targets
  double y_mean_ = 0.0;
  double y_sd_ = 1.0;
  std::optional<Posterior> post_;
};

/// Independent per-metric GPs sharing one input set — the surrogate layout
/// used for constrained sizing (one GP for the objective, one per constraint).
class MultiGp {
 public:
  /// `make_kernel` builds a fresh kernel per metric.
  MultiGp(std::size_t n_metrics,
          const std::function<std::unique_ptr<kern::Kernel>()>& make_kernel);

  /// y has one column per metric.
  void set_data(const la::Matrix& x, const la::Matrix& y);
  void fit(const GpFitOptions& opts, util::Rng& rng);

  std::vector<GpPrediction> predict(std::span<const double> x) const;
  /// Batched prediction: out[q][m] is metric m's posterior at query row q.
  std::vector<std::vector<GpPrediction>> predict_batch(const la::Matrix& xq) const;

  std::size_t n_metrics() const { return gps_.size(); }
  GaussianProcess& metric(std::size_t i) { return gps_[i]; }
  const GaussianProcess& metric(std::size_t i) const { return gps_[i]; }

 private:
  std::vector<GaussianProcess> gps_;
};

}  // namespace kato::gp

#pragma once
// Gaussian-process regression with exact marginal-likelihood training.
//
// Implements Eqs. (3)-(4) of the paper.  Hyperparameters (kernel parameters
// plus observation noise) are trained by Adam on the exact negative log
// marginal likelihood; the gradient splits at the kernel-matrix boundary:
//   dNLL/dK = 0.5 (K^-1 - alpha alpha^T),  alpha = K^-1 y,
// which is analytic, and each kernel provides backward() for dK/dtheta.
//
// Targets are standardized internally; predictions are returned in raw units
// unless the *_std variants are used (the KAT-GP transfer path works in
// standardized space so the encoder/decoder see O(1) values).

#include <functional>
#include <memory>
#include <optional>

#include "kernel/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "util/rng.hpp"

namespace kato::gp {

struct GpFitOptions {
  int iterations = 100;             ///< Adam steps on the NLL
  double lr = 0.05;                 ///< Adam learning rate
  std::size_t max_train_points = 192;  ///< subsample cap for hyper-training
  double min_noise = 1e-6;          ///< noise floor (standardized space)
  /// Use the fused kernel workspace path (one transcendental per pair per
  /// LML iteration, allocation-free loop).  The reference per-entry path is
  /// kept for A/B checks and benchmarking; both agree to ~1e-12.
  bool use_workspace = true;
};

struct GpPrediction {
  double mean = 0.0;
  double var = 0.0;
};

/// Diagnostics of the most recent fit() call — lets callers (and tests) pin
/// that warm-started refits really run the smaller refit budget.
struct GpFitInfo {
  int iterations = 0;    ///< Adam steps executed
  double best_nll = 0.0; ///< best subset NLL seen during the fit
  bool workspace = false;  ///< fused path used
};

class GaussianProcess {
 public:
  explicit GaussianProcess(std::unique_ptr<kern::Kernel> kernel);

  GaussianProcess(const GaussianProcess& other);
  GaussianProcess& operator=(const GaussianProcess& other);
  GaussianProcess(GaussianProcess&&) = default;
  GaussianProcess& operator=(GaussianProcess&&) = default;

  /// Replace the training set (inputs in the unit box, raw-unit targets).
  /// With refresh=true (default) the posterior is rebuilt at the current
  /// hyperparameters; pass refresh=false when a fit() follows immediately —
  /// fit() refreshes at the end, and skipping the interim rebuild saves a
  /// full factorization + inverse per refit.
  void set_data(la::Matrix x, la::Vector y, bool refresh = true);

  /// Maximum-likelihood hyperparameter training (warm-started from current
  /// values).  `rng` drives the hyper-training subsample when n exceeds
  /// GpFitOptions::max_train_points.
  void fit(const GpFitOptions& opts, util::Rng& rng);

  /// Predictive posterior (Eq. 4) in raw target units.
  GpPrediction predict(std::span<const double> x) const;
  /// Predictive posterior in standardized-target space.
  GpPrediction predict_std(std::span<const double> x) const;
  /// Batched posterior for a whole query block (rows of xq), raw units.
  /// One kernel cross-covariance evaluation and one multi-RHS triangular
  /// solve are shared across all candidates — agrees with per-point
  /// predict() to numerical round-off but is several times cheaper.
  /// Splits across KATO_THREADS workers deterministically.
  std::vector<GpPrediction> predict_batch(const la::Matrix& xq) const;
  /// Batched posterior in standardized-target space.
  std::vector<GpPrediction> predict_std_batch(const la::Matrix& xq) const;
  /// Standardized posterior plus gradients d mean/dx and d var/dx
  /// (used by KAT-GP to backpropagate through the source GP).
  void predict_std_grad(std::span<const double> x, GpPrediction& pred,
                        la::Vector& dmean_dx, la::Vector& dvar_dx) const;
  /// Batched predict_std_grad: one kernel cross-covariance for the whole
  /// query block (kernels with an input transform embed the training set
  /// once per block instead of once per query) and one K^-1 contraction.
  /// Bit-identical to the per-point call — same algebra, same summation
  /// order — so KAT-GP training can batch its source stage without changing
  /// results.  Row q of dmean_dx/dvar_dx is the gradient at query q.
  void predict_std_grad_batch(const la::Matrix& xq,
                              std::vector<GpPrediction>& preds,
                              la::Matrix& dmean_dx, la::Matrix& dvar_dx) const;
  /// The posterior values of predict_std_grad_batch without the gradients
  /// (bit-identical to per-point predict_std; used for exact-NLL sweeps).
  void predict_std_batch_exact(const la::Matrix& xq,
                               std::vector<GpPrediction>& preds) const;

  /// Exact NLL of the current hyperparameters on the full training set.
  double nll() const;

  /// Diagnostics of the most recent fit().
  const GpFitInfo& last_fit_info() const { return fit_info_; }

  std::size_t n_data() const { return x_.rows(); }
  std::size_t input_dim() const { return kernel_->input_dim(); }
  const la::Matrix& train_x() const { return x_; }
  kern::Kernel& kernel() { return *kernel_; }
  const kern::Kernel& kernel() const { return *kernel_; }
  double y_mean() const { return y_mean_; }
  double y_std() const { return y_sd_; }
  double noise_var() const;  ///< standardized-space sigma^2

 private:
  struct Posterior {
    la::Matrix chol_l;
    la::Vector alpha;
    la::Matrix kinv;
  };

  /// Reusable heap state for the allocation-free LML loop: the kernel
  /// workspace plus every matrix/vector the per-iteration algebra touches.
  struct FitScratch {
    std::unique_ptr<kern::Kernel::FitWorkspace> ws;
    la::Matrix k;      ///< kernel matrix (+ noise on the diagonal)
    la::Matrix l;      ///< Cholesky factor
    la::Matrix t;      ///< (L^-1)^T; contracted straight into dk
    la::Matrix dk;     ///< dNLL/dK
    la::Vector alpha;
    la::Vector tmp;
  };

  /// One query of the batched kinv-path posterior: mean/variance for row q
  /// of the cross-covariance kx, leaving K^-1 k in `kinv_k` for gradient
  /// consumers.  Shared by predict_std_grad_batch and
  /// predict_std_batch_exact so their bit-identity contract has exactly one
  /// implementation.
  GpPrediction kinv_predict_one(const la::Matrix& kx, const la::Matrix& xq,
                                std::size_t q, la::Vector& kinv_k) const;

  /// NLL and gradient (kernel params then log-noise) on the given subset.
  double nll_and_grad(const la::Matrix& x, const la::Vector& y,
                      std::vector<double>& grad) const;
  /// Fused-workspace variant: same result to ~1e-12, several times faster
  /// and allocation-free after the first iteration.
  double nll_and_grad_ws(FitScratch& s, const la::Vector& y,
                         std::vector<double>& grad) const;
  void refresh_posterior();
  const Posterior& posterior() const;

  std::unique_ptr<kern::Kernel> kernel_;
  double log_noise_;
  la::Matrix x_;
  la::Vector y_std_;  ///< standardized targets
  double y_mean_ = 0.0;
  double y_sd_ = 1.0;
  std::optional<Posterior> post_;
  GpFitInfo fit_info_;
};

/// Independent per-metric GPs sharing one input set — the surrogate layout
/// used for constrained sizing (one GP for the objective, one per constraint).
class MultiGp {
 public:
  /// `make_kernel` builds a fresh kernel per metric.
  MultiGp(std::size_t n_metrics,
          const std::function<std::unique_ptr<kern::Kernel>()>& make_kernel);

  /// y has one column per metric.  refresh as in GaussianProcess::set_data.
  void set_data(const la::Matrix& x, const la::Matrix& y, bool refresh = true);
  /// Train every metric's GP.  The metrics are fitted concurrently across
  /// KATO_THREADS pool workers; each metric receives its own RNG stream
  /// split from `rng` up front (in metric order), so the result is
  /// bit-identical at any thread count.
  void fit(const GpFitOptions& opts, util::Rng& rng);

  std::vector<GpPrediction> predict(std::span<const double> x) const;
  /// Batched prediction: out[q][m] is metric m's posterior at query row q.
  std::vector<std::vector<GpPrediction>> predict_batch(const la::Matrix& xq) const;

  std::size_t n_metrics() const { return gps_.size(); }
  GaussianProcess& metric(std::size_t i) { return gps_[i]; }
  const GaussianProcess& metric(std::size_t i) const { return gps_[i]; }

 private:
  std::vector<GaussianProcess> gps_;
};

}  // namespace kato::gp

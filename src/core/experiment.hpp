#pragma once
// Multi-seed experiment runner shared by the benchmark harness: runs a
// method across seeds, aggregates running-best traces into median/IQR bands
// and prints figure series / table rows in a uniform format.

#include <iostream>
#include <string>

#include "bo/drivers.hpp"
#include "circuits/factory.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace kato::core {

struct MethodSeries {
  std::string name;
  util::SeriesBand band;                ///< aggregated running-best traces
  std::vector<bo::RunResult> runs;
};

/// Seed list: 1..n with n from the KATO_SEEDS environment variable
/// (default `fallback`).
std::vector<std::uint64_t> seed_list(std::size_t fallback);

/// BoConfig trimmed for the benchmark suite so every figure/table finishes
/// in minutes on one core: smaller NSGA-II budget, tighter GP training-set
/// cap and sparser hyper-retraining.  The library defaults in bo::BoConfig
/// remain the recommended settings for real sizing runs.
inline bo::BoConfig bench_config() {
  bo::BoConfig cfg;
  cfg.nsga.population = 24;
  cfg.nsga.generations = 16;
  cfg.max_gp_points = 256;
  cfg.hyper_every = 3;
  cfg.gp_refit.iterations = 10;
  cfg.kat.init_iterations = 200;
  cfg.kat.refit_iterations = 25;
  return cfg;
}

/// One cross-design / cross-technology transfer experiment: frozen source
/// knowledge plus matched constrained-KATO series with and without it.
struct TransferComparison {
  bo::TransferSource source;
  MethodSeries with_transfer;     ///< "KATO-TL" (KAT-GP + STL, Alg. 1)
  MethodSeries without_transfer;  ///< "KATO"
};

/// Build `source_samples` random simulations of `source_circuit` into a
/// TransferSource and run the with/without-transfer comparison on `target`.
/// Works for any SizingCircuit pair — hand-written topologies or netlist
/// decks (see `make_circuit("netlist:<path>", node)`) in any combination;
/// this is the harness behind the Fig. 6 panels and the netlist transfer
/// workflow.
TransferComparison run_transfer_comparison(
    const ckt::SizingCircuit& source_circuit, const ckt::SizingCircuit& target,
    std::size_t source_samples, const bo::BoConfig& config,
    const std::vector<std::uint64_t>& seeds,
    bo::KernelKind source_kernel = bo::KernelKind::rbf,
    std::uint64_t source_seed = 777);

MethodSeries run_constrained_series(const ckt::SizingCircuit& circuit,
                                    bo::ConstrainedMethod method,
                                    const bo::BoConfig& config,
                                    const std::vector<std::uint64_t>& seeds,
                                    const bo::TransferSource* source = nullptr,
                                    const std::string& label = "");

MethodSeries run_fom_series(const ckt::SizingCircuit& circuit,
                            const ckt::FomNormalization& norm,
                            bo::FomMethod method, const bo::BoConfig& config,
                            const std::vector<std::uint64_t>& seeds,
                            const bo::TransferSource* source = nullptr,
                            const std::string& label = "");

/// Print "simulations vs median [q25,q75]" rows for each method, sampled
/// every `stride` simulations — the text rendering of a Fig. 4/5/6 panel.
void print_series(std::ostream& os, const std::string& title,
                  const std::vector<MethodSeries>& methods, std::size_t stride);

/// Median number of simulations needed to first reach `target` (running-best
/// <= target for minimization, >= for maximization); simulations beyond the
/// trace count as trace-length + 1.  Used for the speedup numbers.
double median_sims_to_reach(const MethodSeries& series, double target,
                            bool minimize);

/// Best run (by final trace value) across seeds.
const bo::RunResult& best_run(const MethodSeries& series, bool minimize);

}  // namespace kato::core

#pragma once
// Public KATO API.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto circuit = kato::ckt::make_circuit("opamp2", "180nm");
//   kato::KatoOptimizer opt(*circuit);
//   auto result = opt.optimize(/*seed=*/1);
//   // result.best_x (unit box), result.best_metrics, result.trace
//
// Transfer learning (Sec. 3.2/3.4): build a TransferSource from a previously
// studied circuit — any design-variable dimensionality — and attach it; the
// optimizer then runs KAT-GP alongside the NeukGP under Selective Transfer
// Learning (Alg. 1):
//
//   auto source = kato::bo::build_transfer_source(*old_circuit, 200,
//                                                 kato::bo::KernelKind::rbf, 7);
//   opt.set_transfer_source(&source);

#include "bo/drivers.hpp"
#include "circuits/factory.hpp"

namespace kato {

class KatoOptimizer {
 public:
  explicit KatoOptimizer(const ckt::SizingCircuit& circuit,
                         bo::BoConfig config = {})
      : circuit_(&circuit), config_(std::move(config)) {}

  bo::BoConfig& config() { return config_; }

  /// Attach source-circuit knowledge (must outlive this optimizer).
  /// Pass nullptr to detach.
  void set_transfer_source(const bo::TransferSource* source) {
    source_ = source;
  }

  /// Constrained sizing (Eq. 1): minimize metrics[0] subject to the
  /// circuit's specs, with the modified MACE ensemble (Eq. 13) and — when a
  /// source is attached — KAT-GP + STL.
  bo::RunResult optimize(std::uint64_t seed) const {
    return bo::run_constrained(*circuit_, bo::ConstrainedMethod::kato, config_,
                               seed, source_);
  }

  /// FOM optimization (Eq. 2): maximize the scalar figure of merit.
  bo::RunResult optimize_fom(const ckt::FomNormalization& norm,
                             std::uint64_t seed) const {
    return bo::run_fom(*circuit_, norm, bo::FomMethod::kato, config_, seed,
                       source_);
  }

 private:
  const ckt::SizingCircuit* circuit_;
  bo::BoConfig config_;
  const bo::TransferSource* source_ = nullptr;
};

}  // namespace kato

#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/journal.hpp"
#include "util/parallel.hpp"

namespace kato::core {

std::vector<std::uint64_t> seed_list(std::size_t fallback) {
  std::size_t n = fallback;
  if (const char* env = std::getenv("KATO_SEEDS")) {
    // Strict full-string parse: trailing garbage ("4abc", "1e3") and
    // non-positive values fall back rather than silently truncating, and a
    // fat-fingered huge count is clamped instead of exploding the sweep.
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      n = static_cast<std::size_t>(std::min(v, 1024L));
  }
  std::vector<std::uint64_t> seeds(n);
  for (std::size_t i = 0; i < n; ++i) seeds[i] = i + 1;
  return seeds;
}

namespace {

/// Replace +-inf placeholders so the aggregation stays finite: infeasible
/// prefixes are reported as the worst finite value seen in any run.
void sanitize_traces(std::vector<std::vector<double>>& traces, bool minimize) {
  double worst = minimize ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();
  for (const auto& t : traces)
    for (double v : t)
      if (std::isfinite(v)) worst = minimize ? std::max(worst, v) : std::min(worst, v);
  if (!std::isfinite(worst)) worst = 0.0;
  const double fill = minimize ? 2.0 * std::abs(worst) + 1.0 : worst;
  for (auto& t : traces)
    for (double& v : t)
      if (!std::isfinite(v)) v = minimize ? fill : v;
}

/// Run fn(i) for every seed index.  Fans out across the worker pool only
/// when there are enough seeds to fill it — with fewer seeds the serial
/// loop leaves each run's *inner* parallelism (GP fits, batch candidate
/// evaluation) free to use the pool instead, which nested fan-out would
/// force inline.  Either route writes slot i from fn(i) only, so results
/// are identical.
void for_each_seed(std::size_t count,
                   const std::function<void(std::size_t)>& fn) {
  if (count >= util::thread_count()) {
    util::parallel_for(count, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

/// Bracket a seed series in the run journal: `series_begin` announces the
/// fan-out (the per-run events that follow carry their own run ids, so
/// interleaved runs demultiplex), `series_end` records the aggregate band's
/// final value.  Value-free like all journal emission.
void journal_series(const char* event, const std::string& name,
                    const ckt::SizingCircuit& circuit, const char* mode,
                    const std::vector<std::uint64_t>& seeds,
                    const MethodSeries* series) {
  if (!obs::journal_enabled()) return;
  obs::JsonObj o;
  o.str("event", event)
      .str("name", name)
      .str("circuit", circuit.name())
      .str("mode", mode)
      .uint("n_seeds", seeds.size());
  o.raw("seeds",
        obs::json_array(std::vector<double>(seeds.begin(), seeds.end())));
  if (series != nullptr && !series->band.median.empty())
    o.num("final_median", series->band.median.back())
        .num("final_q25", series->band.q25.back())
        .num("final_q75", series->band.q75.back());
  obs::journal_write(o.take());
}

}  // namespace

TransferComparison run_transfer_comparison(
    const ckt::SizingCircuit& source_circuit, const ckt::SizingCircuit& target,
    std::size_t source_samples, const bo::BoConfig& config,
    const std::vector<std::uint64_t>& seeds, bo::KernelKind source_kernel,
    std::uint64_t source_seed) {
  TransferComparison cmp;
  cmp.source = bo::build_transfer_source(source_circuit, source_samples,
                                         source_kernel, source_seed);
  cmp.with_transfer =
      run_constrained_series(target, bo::ConstrainedMethod::kato, config, seeds,
                             &cmp.source, "KATO-TL");
  cmp.without_transfer = run_constrained_series(
      target, bo::ConstrainedMethod::kato, config, seeds, nullptr, "KATO");
  return cmp;
}

MethodSeries run_constrained_series(const ckt::SizingCircuit& circuit,
                                    bo::ConstrainedMethod method,
                                    const bo::BoConfig& config,
                                    const std::vector<std::uint64_t>& seeds,
                                    const bo::TransferSource* source,
                                    const std::string& label) {
  MethodSeries series;
  series.name = label.empty() ? bo::to_string(method) : label;
  // Seeds are independent runs (each builds its own RNG from its seed and
  // the circuit is read-only), so the series fans out across the worker
  // pool; run i lands in slot i regardless of KATO_THREADS, keeping the
  // aggregate bit-identical to the sequential loop.
  series.runs.resize(seeds.size());
  journal_series("series_begin", series.name, circuit, "constrained", seeds,
                 nullptr);
  for_each_seed(seeds.size(), [&](std::size_t i) {
    series.runs[i] =
        bo::run_constrained(circuit, method, config, seeds[i], source);
  });
  std::vector<std::vector<double>> traces;
  for (const auto& run : series.runs) traces.push_back(run.trace);
  sanitize_traces(traces, /*minimize=*/true);
  series.band = util::aggregate_traces(traces);
  journal_series("series_end", series.name, circuit, "constrained", seeds,
                 &series);
  return series;
}

MethodSeries run_fom_series(const ckt::SizingCircuit& circuit,
                            const ckt::FomNormalization& norm,
                            bo::FomMethod method, const bo::BoConfig& config,
                            const std::vector<std::uint64_t>& seeds,
                            const bo::TransferSource* source,
                            const std::string& label) {
  MethodSeries series;
  series.name = label.empty() ? bo::to_string(method) : label;
  series.runs.resize(seeds.size());
  journal_series("series_begin", series.name, circuit, "fom", seeds, nullptr);
  for_each_seed(seeds.size(), [&](std::size_t i) {
    series.runs[i] = bo::run_fom(circuit, norm, method, config, seeds[i], source);
  });
  std::vector<std::vector<double>> traces;
  for (const auto& run : series.runs) traces.push_back(run.trace);
  sanitize_traces(traces, /*minimize=*/false);
  series.band = util::aggregate_traces(traces);
  journal_series("series_end", series.name, circuit, "fom", seeds, &series);
  return series;
}

void print_series(std::ostream& os, const std::string& title,
                  const std::vector<MethodSeries>& methods, std::size_t stride) {
  os << "--- " << title << " ---\n";
  std::vector<std::string> header{"sims"};
  for (const auto& m : methods) header.push_back(m.name + " med [q25,q75]");
  util::Table table(header);
  const std::size_t len = methods.front().band.median.size();
  for (std::size_t i = stride - 1; i < len; i += stride) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (const auto& m : methods) {
      row.push_back(util::fmt(m.band.median[i], 3) + " [" +
                    util::fmt(m.band.q25[i], 3) + "," +
                    util::fmt(m.band.q75[i], 3) + "]");
    }
    table.add_row(row);
  }
  os << table.to_string();
}

double median_sims_to_reach(const MethodSeries& series, double target,
                            bool minimize) {
  std::vector<double> counts;
  for (const auto& run : series.runs) {
    double c = static_cast<double>(run.trace.size()) + 1.0;
    for (std::size_t i = 0; i < run.trace.size(); ++i) {
      const bool hit = minimize ? run.trace[i] <= target : run.trace[i] >= target;
      if (hit) {
        c = static_cast<double>(i + 1);
        break;
      }
    }
    counts.push_back(c);
  }
  return util::median(counts);
}

const bo::RunResult& best_run(const MethodSeries& series, bool minimize) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < series.runs.size(); ++i) {
    const double a = series.runs[i].trace.back();
    const double b = series.runs[best].trace.back();
    if (minimize ? a < b : a > b) best = i;
  }
  return series.runs[best];
}

}  // namespace kato::core

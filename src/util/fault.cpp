#include "util/fault.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/obs.hpp"

namespace kato::util {

namespace {

// Armed spec lives in three plain atomics so fault_fires stays lock-free:
// g_fault_site doubles as the "armed" flag (count_ == disarmed).  Writes
// happen at startup and from single-threaded test code, never concurrently
// with each other.
std::atomic<int> g_fault_site{static_cast<int>(FaultSite::count_)};
std::atomic<double> g_fault_rate{0.0};
std::atomic<std::uint64_t> g_fault_seed{0};
std::atomic<std::uint64_t> g_fault_draws{0};

std::atomic<bool> g_recovery{true};
std::atomic<std::uint64_t> g_deadline_ms{0};

// Per-thread absolute deadline (steady-clock ns); 0 == unarmed.
thread_local std::uint64_t t_deadline_ns = 0;

constexpr const char* k_site_names[] = {
    "dc:singular", "tran:nan_device", "lu:collapse",
    "gp:chol_fail", "eval:slow",      "eval:throw",
};
static_assert(sizeof(k_site_names) / sizeof(k_site_names[0]) ==
                  static_cast<std::size_t>(FaultSite::count_),
              "k_site_names must cover every FaultSite");

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Same tolerant boolean as resolve_mna_solver's KATO_SPARSE: only an
/// explicit "0"/"off"/"false" (case-sensitive, full string) disables.
bool parse_toggle_off(const char* v) {
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "false") == 0;
}

/// Startup hook mirroring obs::ObsBoot: parses KATO_FAULT /
/// KATO_EVAL_DEADLINE_MS / KATO_RECOVERY before main() so the hot-path
/// checks never need a once-flag.
struct FaultBoot {
  FaultBoot() {
    set_fault(fault_from_env());
    if (auto ms = deadline_ms_from_env()) set_eval_deadline_ms(*ms);
    if (const char* v = std::getenv("KATO_RECOVERY"))
      if (parse_toggle_off(v)) set_recovery_enabled(false);
  }
};
FaultBoot g_fault_boot;

}  // namespace

std::optional<FaultSpec> parse_fault_spec(const char* value) {
  if (value == nullptr || *value == '\0') return std::nullopt;
  const std::string s(value);
  // Full-string discipline: any whitespace anywhere is a shell-quoting
  // accident (and would sneak past strtod/strtoull, which skip it).
  for (char c : s)
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return std::nullopt;
  // "<stage>:<kind>:<rate>:<seed>" — stage:kind is itself colon-separated,
  // so split from the right: the last two fields are rate and seed.
  const auto p_seed = s.rfind(':');
  if (p_seed == std::string::npos || p_seed == 0) return std::nullopt;
  const auto p_rate = s.rfind(':', p_seed - 1);
  if (p_rate == std::string::npos || p_rate == 0) return std::nullopt;
  const std::string site_str = s.substr(0, p_rate);
  const std::string rate_str = s.substr(p_rate + 1, p_seed - p_rate - 1);
  const std::string seed_str = s.substr(p_seed + 1);
  if (rate_str.empty() || seed_str.empty()) return std::nullopt;

  FaultSpec spec;
  spec.site = FaultSite::count_;
  for (std::size_t i = 0; i < static_cast<std::size_t>(FaultSite::count_); ++i)
    if (site_str == k_site_names[i]) spec.site = static_cast<FaultSite>(i);
  if (spec.site == FaultSite::count_) return std::nullopt;

  // Full-token numeric parses: strtod/strtoull must consume every
  // character, and the seed must not be a negative number in disguise.
  char* end = nullptr;
  errno = 0;
  spec.rate = std::strtod(rate_str.c_str(), &end);
  if (errno != 0 || end != rate_str.c_str() + rate_str.size())
    return std::nullopt;
  if (!(spec.rate > 0.0) || spec.rate > 1.0) return std::nullopt;
  if (seed_str.front() == '-' || seed_str.front() == '+') return std::nullopt;
  errno = 0;
  spec.seed = std::strtoull(seed_str.c_str(), &end, 10);
  if (errno != 0 || end != seed_str.c_str() + seed_str.size())
    return std::nullopt;
  return spec;
}

std::optional<FaultSpec> fault_from_env() {
  const char* value = std::getenv("KATO_FAULT");
  if (value == nullptr) return std::nullopt;
  auto parsed = parse_fault_spec(value);
  if (!parsed)
    std::fprintf(stderr,
                 "KATO_FAULT: ignoring unusable spec '%s' (want "
                 "<stage>:<kind>:<rate>:<seed>, rate in (0,1]); "
                 "feature disabled\n",
                 value);
  return parsed;
}

void set_fault(const std::optional<FaultSpec>& spec) {
  g_fault_draws.store(0, std::memory_order_relaxed);
  if (!spec) {
    g_fault_site.store(static_cast<int>(FaultSite::count_),
                       std::memory_order_relaxed);
    return;
  }
  g_fault_rate.store(spec->rate, std::memory_order_relaxed);
  g_fault_seed.store(spec->seed, std::memory_order_relaxed);
  g_fault_site.store(static_cast<int>(spec->site), std::memory_order_relaxed);
}

double fault_uniform(std::uint64_t seed, std::uint64_t index) {
  // splitmix64 finalizer over a golden-ratio counter stream: a pure
  // function of (seed, index), so schedules replay exactly.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool fault_fires(FaultSite site) {
  if (g_fault_site.load(std::memory_order_relaxed) !=
      static_cast<int>(site))
    return false;
  const std::uint64_t idx = g_fault_draws.fetch_add(1,
                                                    std::memory_order_relaxed);
  const bool fire =
      fault_uniform(g_fault_seed.load(std::memory_order_relaxed), idx) <
      g_fault_rate.load(std::memory_order_relaxed);
  if (fire) obs::bo_count(obs::BoCounter::faults_injected);
  return fire;
}

const char* fault_site_name(FaultSite site) {
  const auto i = static_cast<std::size_t>(site);
  if (i >= static_cast<std::size_t>(FaultSite::count_)) return "?";
  return k_site_names[i];
}

bool recovery_enabled() {
  return g_recovery.load(std::memory_order_relaxed);
}

void set_recovery_enabled(bool on) {
  g_recovery.store(on, std::memory_order_relaxed);
}

std::optional<std::uint64_t> parse_deadline_ms(const char* value) {
  if (value == nullptr || *value == '\0') return std::nullopt;
  const std::string s(value);
  for (char c : s)  // strtoull skips leading whitespace; we must not
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return std::nullopt;
  if (s.front() == '-' || s.front() == '+') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const std::uint64_t ms = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return std::nullopt;
  if (ms == 0) return std::nullopt;  // "0" is a mistake, not "no deadline"
  return ms;
}

std::optional<std::uint64_t> deadline_ms_from_env() {
  const char* value = std::getenv("KATO_EVAL_DEADLINE_MS");
  if (value == nullptr) return std::nullopt;
  auto parsed = parse_deadline_ms(value);
  if (!parsed)
    std::fprintf(stderr,
                 "KATO_EVAL_DEADLINE_MS: ignoring unusable value '%s' "
                 "(want a positive integer millisecond budget); "
                 "feature disabled\n",
                 value);
  return parsed;
}

std::uint64_t eval_deadline_ms() {
  return g_deadline_ms.load(std::memory_order_relaxed);
}

void set_eval_deadline_ms(std::uint64_t ms) {
  g_deadline_ms.store(ms, std::memory_order_relaxed);
}

EvalDeadline::EvalDeadline(std::uint64_t ms) : prev_ns_(t_deadline_ns) {
  if (ms > 0) t_deadline_ns = now_ns() + ms * 1000000ULL;
}

EvalDeadline::~EvalDeadline() { t_deadline_ns = prev_ns_; }

bool deadline_exceeded() {
  return t_deadline_ns != 0 && now_ns() >= t_deadline_ns;
}

void fault_sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace kato::util

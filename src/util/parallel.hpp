#pragma once
// Deterministic thread-parallel helpers for the acquisition/prediction hot
// paths.
//
// Thread count comes from the KATO_THREADS environment variable (default 1 =
// fully sequential, matching the library's historical behavior).  Work is
// split into contiguous index ranges so a function that writes result[i] for
// each i produces bit-identical output at any thread count — the property the
// MACE proposal path relies on (tests/perf_regression_test.cpp asserts it).

#include <cstddef>
#include <functional>

namespace kato::util {

/// Worker count from KATO_THREADS, clamped to [1, 64].  Unset, empty or
/// unparsable values mean 1 (sequential).  Read on every call so tests can
/// flip the knob with setenv().
std::size_t thread_count();

/// Invoke fn(begin, end) over a partition of [0, n) using thread_count()
/// workers.  Runs inline (no threads spawned) when the worker count is 1 or
/// n is too small to be worth splitting.  fn must only write state disjoint
/// across index ranges.  Exceptions thrown by fn are rethrown in the caller.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace kato::util

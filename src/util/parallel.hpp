#pragma once
// Deterministic thread-parallel helpers for the GP training and
// acquisition/prediction hot paths.
//
// Thread count comes from the KATO_THREADS environment variable (default 1 =
// fully sequential, matching the library's historical behavior).  Work is
// split into contiguous index ranges so a function that writes result[i] for
// each i produces bit-identical output at any thread count — the property the
// MACE proposal path and the parallel MultiGp fit rely on
// (tests/perf_regression_test.cpp asserts it).
//
// Workers live in a persistent process-wide pool: the first parallel_for call
// spawns them and later calls reuse them, so the per-call cost is a wakeup
// instead of a thread spawn+join.  parallel_for called from inside a pool
// worker runs inline (sequentially) — nested parallelism stays deterministic
// and cannot deadlock the pool.

#include <cstddef>
#include <functional>

namespace kato::util {

/// Upper bound for thread_count(): max(hardware_concurrency, 4).  The floor
/// of 4 keeps deliberate oversubscription possible on small CI boxes, where
/// the bit-identical-at-any-thread-count tests would otherwise silently
/// degenerate to the sequential path.
std::size_t thread_cap();

/// Worker count from KATO_THREADS, clamped to [1, thread_cap()].  Unset or
/// empty means 1 (sequential).  Garbage is rejected, not best-effort parsed:
/// any non-numeric trailing characters, negative or zero values fall back to
/// 1.  Read on every call so tests can flip the knob with setenv().
std::size_t thread_count();

/// True when the calling thread is a pool worker (used to run nested
/// parallel_for calls inline).
bool on_pool_thread();

/// Invoke fn(begin, end) over a partition of [0, n) using thread_count()
/// workers.  Runs inline (no pool dispatch) when the worker count is 1, n is
/// too small to be worth splitting, or the caller is itself a pool worker.
/// fn must only write state disjoint across index ranges.  Exceptions thrown
/// by fn are rethrown in the caller (first failing chunk wins).
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace kato::util

#pragma once
// Small statistics helpers used for training-data standardization and for
// aggregating optimization traces across random seeds.

#include <cstddef>
#include <vector>

namespace kato::util {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  // population variance
double stddev(const std::vector<double>& v);
double median(std::vector<double> v);  // by value: sorts a copy

/// Linear-interpolated quantile, q in [0,1].
double quantile(std::vector<double> v, double q);

double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);

/// Element-wise running best (max) of a sequence: out[i] = max(v[0..i]).
std::vector<double> running_max(const std::vector<double>& v);
/// Element-wise running best (min) of a sequence: out[i] = min(v[0..i]).
std::vector<double> running_min(const std::vector<double>& v);

/// Aggregate equal-length traces from several seeds into median and
/// inter-quartile band, index by index.  Used to print Fig. 4/5/6 series.
struct SeriesBand {
  std::vector<double> median;
  std::vector<double> q25;
  std::vector<double> q75;
};
SeriesBand aggregate_traces(const std::vector<std::vector<double>>& traces);

}  // namespace kato::util

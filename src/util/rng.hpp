#pragma once
// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library takes an explicit Rng (or a seed)
// so that a given seed always reproduces the same optimization trace.

#include <cstdint>
#include <random>
#include <vector>

namespace kato::util {

/// Seeded random generator with the distributions the library needs.
///
/// Wraps std::mt19937_64.  `split()` derives an independent child stream so
/// that sub-components (e.g. NSGA-II inside a BO iteration) cannot perturb the
/// draw sequence of their parent.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal (or scaled/shifted) draw.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int randint(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Vector of n uniform draws in [lo, hi).
  std::vector<double> uniform_vec(std::size_t n, double lo = 0.0, double hi = 1.0);

  /// Vector of n standard-normal draws.
  std::vector<double> normal_vec(std::size_t n);

  /// Random permutation of 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Sample k distinct indices from 0..n-1 (k <= n).
  std::vector<std::size_t> choice(std::size_t n, std::size_t k);

  /// Derive an independent child stream.
  Rng split() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace kato::util

#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace kato::util {

namespace {

constexpr std::size_t k_min_cap = 4;

thread_local bool t_on_pool_thread = false;
/// Depth of parallel_for frames on this thread.  The pool runs exactly one
/// job at a time, so any nested call — from a pool worker *or* from the
/// submitting thread's own chunk — must run inline: a second submission
/// would overwrite the in-flight job and orphan its unclaimed chunks.
thread_local int t_parallel_depth = 0;

/// One parallel_for invocation: a fixed chunk list plus a claim counter.
/// Chunk boundaries are computed by the caller (and depend only on the
/// requested worker count), so which physical thread executes a chunk never
/// affects results — fn writes disjoint state per chunk.
struct Job {
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::vector<std::exception_ptr> errors;
};

/// Persistent worker pool.  Workers are spawned lazily up to thread_cap()-1
/// (the caller always executes chunks too) and parked on a condition variable
/// between jobs.  Only one job is in flight at a time: parallel_for is called
/// from the main thread, and nested calls from workers run inline.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(const std::shared_ptr<Job>& job, std::size_t helpers) {
    // One submission at a time: the pool has a single job slot, so
    // concurrent submitters (distinct non-pool threads) serialize here
    // instead of overwriting each other's in-flight job.
    std::lock_guard<std::mutex> submit_lock(submit_mu_);
    // Queue-depth gauge brackets the job: the Perfetto counter track shows
    // how many chunks were outstanding while the pool was busy, dropping
    // back to zero at completion (pool-utilization view of the fan-out).
    obs::trace_counter("pool_queue_depth",
                       static_cast<std::uint64_t>(job->chunks.size()));
    {
      std::unique_lock<std::mutex> lock(mu_);
      ensure_workers(helpers);
      job_ = job;
      ++generation_;
    }
    cv_work_.notify_all();

    work(*job);  // the caller is a full participant

    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return job->done.load() == job->chunks.size(); });
    job_.reset();
    obs::trace_counter("pool_queue_depth", 0);
  }

  ~Pool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
  }

 private:
  Pool() = default;

  void ensure_workers(std::size_t count) {
    count = std::min(count, thread_cap() - 1);
    while (workers_.size() < count) {
      const std::size_t id = workers_.size();
      workers_.emplace_back([this, id] {
        obs::name_this_thread("pool-worker-" + std::to_string(id + 1));
        worker_loop();
      });
    }
  }

  static void work(Job& job) {
    const std::size_t n_chunks = job.chunks.size();
    for (std::size_t c = job.next.fetch_add(1); c < n_chunks;
         c = job.next.fetch_add(1)) {
      KATO_OBS_SPAN("pool_chunk");
      try {
        (*job.fn)(job.chunks[c].first, job.chunks[c].second);
      } catch (...) {
        job.errors[c] = std::current_exception();
      }
      job.done.fetch_add(1);
    }
  }

  void worker_loop() {
    t_on_pool_thread = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;  // keeps the job alive past the caller's wait
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      if (!job) continue;
      work(*job);
      // The mutex round-trip orders this worker's done-updates against the
      // caller's predicate check: without it the notify could fire in the
      // window between the caller evaluating the predicate (false) and
      // blocking, and the caller would sleep forever.
      { std::lock_guard<std::mutex> lock(mu_); }
      cv_done_.notify_all();
    }
  }

  std::mutex submit_mu_;  ///< serializes whole submissions
  std::mutex mu_;         ///< guards job_/generation_/workers_/stop_
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

std::size_t thread_cap() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(hw == 0 ? k_min_cap : hw, k_min_cap);
}

std::size_t thread_count() {
  const char* env = std::getenv("KATO_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') return 1;  // trailing garbage: reject
  if (parsed < 1) return 1;
  const std::size_t cap = thread_cap();
  return std::min(static_cast<std::size_t>(parsed), cap);
}

bool on_pool_thread() { return t_on_pool_thread; }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t workers = thread_count();
  if (workers > n) workers = n;
  if (workers <= 1 || n < 2 || t_on_pool_thread || t_parallel_depth > 0) {
    fn(0, n);
    return;
  }

  // Contiguous chunks, same partition formula as the historical per-call
  // implementation: results must depend on the chunk boundaries only through
  // disjoint writes, never on which pool thread ran a chunk.
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t begin = 0; begin < n; begin += chunk)
    job->chunks.emplace_back(begin, std::min(begin + chunk, n));
  job->errors.resize(job->chunks.size());

  ++t_parallel_depth;
  Pool::instance().run(job, job->chunks.size() - 1);
  --t_parallel_depth;

  for (auto& e : job->errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace kato::util

#include "util/parallel.hpp"

#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

namespace kato::util {

std::size_t thread_count() {
  const char* env = std::getenv("KATO_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || parsed < 1) return 1;
  return parsed > 64 ? 64 : static_cast<std::size_t>(parsed);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t workers = thread_count();
  if (workers > n) workers = n;
  if (workers <= 1 || n < 2) {
    fn(0, n);
    return;
  }

  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(workers);
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    threads.emplace_back([&fn, &errors, w, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace kato::util

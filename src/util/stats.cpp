#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace kato::util {

double mean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("mean: empty vector");
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) { return quantile(std::move(v), 0.5); }

double quantile(std::vector<double> v, double q) {
  if (v.empty()) throw std::invalid_argument("quantile: empty vector");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of [0,1]");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double min_of(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("min_of: empty vector");
  return *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("max_of: empty vector");
  return *std::max_element(v.begin(), v.end());
}

std::vector<double> running_max(const std::vector<double>& v) {
  std::vector<double> out(v.size());
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < v.size(); ++i) {
    best = std::max(best, v[i]);
    out[i] = best;
  }
  return out;
}

std::vector<double> running_min(const std::vector<double>& v) {
  std::vector<double> out(v.size());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < v.size(); ++i) {
    best = std::min(best, v[i]);
    out[i] = best;
  }
  return out;
}

SeriesBand aggregate_traces(const std::vector<std::vector<double>>& traces) {
  if (traces.empty()) throw std::invalid_argument("aggregate_traces: no traces");
  const std::size_t len = traces.front().size();
  for (const auto& t : traces)
    if (t.size() != len)
      throw std::invalid_argument("aggregate_traces: unequal trace lengths");
  SeriesBand band;
  band.median.resize(len);
  band.q25.resize(len);
  band.q75.resize(len);
  std::vector<double> column(traces.size());
  for (std::size_t i = 0; i < len; ++i) {
    for (std::size_t s = 0; s < traces.size(); ++s) column[s] = traces[s][i];
    band.median[i] = quantile(column, 0.5);
    band.q25[i] = quantile(column, 0.25);
    band.q75[i] = quantile(column, 0.75);
  }
  return band;
}

}  // namespace kato::util

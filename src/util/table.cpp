#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace kato::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table::add_row: cell count != header count");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t j = 0; j < header_.size(); ++j) width[j] = header_[j].size();
  for (const auto& row : rows_)
    for (std::size_t j = 0; j < row.size(); ++j)
      width[j] = std::max(width[j], row[j].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      out << row[j];
      if (j + 1 < row.size())
        out << std::string(width[j] - row[j].size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t j = 0; j < width.size(); ++j)
    total += width[j] + (j + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      out << row[j];
      if (j + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

}  // namespace kato::util

#include "util/rng.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace kato::util {

std::vector<double> Rng::uniform_vec(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = uniform(lo, hi);
  return v;
}

std::vector<double> Rng::normal_vec(std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = normal();
  return v;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

std::vector<std::size_t> Rng::choice(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::choice: k > n");
  auto p = permutation(n);
  p.resize(k);
  return p;
}

}  // namespace kato::util

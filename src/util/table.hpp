#pragma once
// Aligned console tables and CSV emission for the benchmark harness.

#include <string>
#include <vector>

namespace kato::util {

/// Column-aligned text table.  Rows may be added as strings or doubles
/// (formatted with a fixed precision).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell label, remaining cells numeric.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  /// Render with padded columns and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated form (no alignment), suitable for plotting scripts.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision (fixed notation).
std::string fmt(double v, int precision = 3);

}  // namespace kato::util

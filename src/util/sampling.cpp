#include "util/sampling.hpp"

#include <stdexcept>

namespace kato::util {

DesignMatrix latin_hypercube(std::size_t n, std::size_t d, Rng& rng) {
  DesignMatrix m{n, d, std::vector<double>(n * d)};
  for (std::size_t j = 0; j < d; ++j) {
    auto order = rng.permutation(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double jitter = rng.uniform();
      m.data[i * d + j] = (static_cast<double>(order[i]) + jitter) /
                          static_cast<double>(n);
    }
  }
  return m;
}

DesignMatrix uniform_design(std::size_t n, std::size_t d, Rng& rng) {
  DesignMatrix m{n, d, rng.uniform_vec(n * d)};
  return m;
}

std::vector<double> scale_to_box(const std::vector<double>& unit,
                                 const std::vector<double>& lo,
                                 const std::vector<double>& hi) {
  if (unit.size() != lo.size() || lo.size() != hi.size())
    throw std::invalid_argument("scale_to_box: dimension mismatch");
  std::vector<double> x(unit.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = lo[i] + unit[i] * (hi[i] - lo[i]);
  return x;
}

std::vector<double> scale_to_unit(const std::vector<double>& x,
                                  const std::vector<double>& lo,
                                  const std::vector<double>& hi) {
  if (x.size() != lo.size() || lo.size() != hi.size())
    throw std::invalid_argument("scale_to_unit: dimension mismatch");
  std::vector<double> u(x.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double span = hi[i] - lo[i];
    u[i] = span > 0.0 ? (x[i] - lo[i]) / span : 0.0;
  }
  return u;
}

}  // namespace kato::util

#pragma once
// Space-filling initial designs for Bayesian optimization.

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace kato::util {

/// n points in the unit hypercube [0,1]^d, row-major (point i at [i*d .. i*d+d)).
struct DesignMatrix {
  std::size_t n = 0;
  std::size_t d = 0;
  std::vector<double> data;

  double* row(std::size_t i) { return data.data() + i * d; }
  const double* row(std::size_t i) const { return data.data() + i * d; }
  std::vector<double> point(std::size_t i) const {
    return {row(i), row(i) + d};
  }
};

/// Latin hypercube sample: each dimension stratified into n equal bins,
/// one point per bin, bins shuffled independently per dimension.
DesignMatrix latin_hypercube(std::size_t n, std::size_t d, Rng& rng);

/// Plain uniform sample in the unit hypercube.
DesignMatrix uniform_design(std::size_t n, std::size_t d, Rng& rng);

/// Affine map of a unit-cube point into [lo_i, hi_i] per dimension.
std::vector<double> scale_to_box(const std::vector<double>& unit,
                                 const std::vector<double>& lo,
                                 const std::vector<double>& hi);

/// Inverse of scale_to_box.
std::vector<double> scale_to_unit(const std::vector<double>& x,
                                  const std::vector<double>& lo,
                                  const std::vector<double>& hi);

}  // namespace kato::util

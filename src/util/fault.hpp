#pragma once

// Fault injection, per-candidate evaluation deadlines, and the recovery
// toggle.  Three independent knobs, all parsed once at startup with the
// same strict full-string discipline as KATO_SEEDS / KATO_TRACE:
//
//   KATO_FAULT=<stage>:<kind>:<rate>:<seed>
//       Arms exactly one deterministic fault site (e.g. "dc:singular" or
//       "tran:nan_device").  Each potential firing consumes one index from
//       a dedicated counter-based splitmix64 stream, so a given
//       (seed, rate) pair fires at exactly the same draw indices on every
//       run — fault schedules are reproducible, not sampled from shared
//       process RNG state.
//
//   KATO_EVAL_DEADLINE_MS=<positive integer>
//       Per-candidate wall-clock budget.  NetlistCircuit::evaluate_single
//       arms a thread-local absolute deadline via the EvalDeadline RAII
//       guard; the Newton and timestep loops poll deadline_exceeded()
//       cooperatively.  Off (the default) costs one thread-local load.
//
//   KATO_RECOVERY=0|off
//       Disables the recovery ladders (DC homotopy / pseudo-transient,
//       transient step-floor + device-eval fallback) so tests and bit-
//       identity checks can pin the pre-recovery failure behaviour.
//
// With no fault armed and no deadline set, every hook in the hot path is a
// single predicated load — seeded BO runs are bit-identical to a build
// without this module.

#include <cstdint>
#include <optional>

namespace kato::util {

/// Named injection sites.  The enumerator spelling (with '_' standing in
/// for the "stage:kind" separator) is the env-var spelling: dc_singular
/// parses from "dc:singular", and so on.
enum class FaultSite {
  dc_singular,      ///< DC system unsolvable at every gmin/source step
  tran_nan_device,  ///< table device eval returns NaN mid-transient
  lu_collapse,      ///< sparse refactor pivot collapse (forces re-pivot)
  gp_chol_fail,     ///< GP covariance Cholesky fails at zero jitter
  eval_slow,        ///< candidate evaluation stalls past any deadline
  eval_throw,       ///< candidate evaluation throws std::runtime_error
  count_,
};

struct FaultSpec {
  FaultSite site = FaultSite::count_;
  double rate = 0.0;       ///< firing probability per draw, in (0, 1]
  std::uint64_t seed = 0;  ///< seed of the dedicated splitmix64 stream
};

/// Strict full-string parse of "<stage>:<kind>:<rate>:<seed>".  The
/// stage:kind pair must name a FaultSite, rate must be a double in (0, 1]
/// consuming its whole token, seed a non-negative integer likewise.
/// Returns nullopt on any deviation — no trimming, no partial parses.
std::optional<FaultSpec> parse_fault_spec(const char* value);

/// Reads KATO_FAULT; warns once on stderr (sink_from_env wording) and
/// returns nullopt when the value is set but unusable.
std::optional<FaultSpec> fault_from_env();

/// Installs (or clears, with nullopt) the process-wide fault, resetting the
/// draw counter so schedules restart from index 0.  Test hook; startup
/// installs the env-derived spec before main().
void set_fault(const std::optional<FaultSpec>& spec);

/// True when the armed fault matches `site` and this draw fires.  Each call
/// against the armed site consumes one stream index.  When no fault is
/// armed this is one relaxed atomic load.
bool fault_fires(FaultSite site);

/// The underlying stream: uniform in [0, 1) as a pure function of
/// (seed, index) via splitmix64.  Exposed so tests can pin which draw
/// indices fire for a given spec.
double fault_uniform(std::uint64_t seed, std::uint64_t index);

/// Env-var spelling ("dc:singular") for messages and tests.
const char* fault_site_name(FaultSite site);

// --- Recovery toggle -------------------------------------------------------

/// True unless KATO_RECOVERY disabled the ladders ("0"/"off"/"false", the
/// KATO_SPARSE tolerant-parse precedent).
bool recovery_enabled();
void set_recovery_enabled(bool on);

// --- Evaluation deadlines --------------------------------------------------

/// Strict full-string parse of a positive integer millisecond budget.
/// "0", negatives, trailing junk, and whitespace all return nullopt.
std::optional<std::uint64_t> parse_deadline_ms(const char* value);

/// Reads KATO_EVAL_DEADLINE_MS with the same warn-once discipline.
std::optional<std::uint64_t> deadline_ms_from_env();

/// Process-wide per-candidate budget in ms; 0 means no deadline.
std::uint64_t eval_deadline_ms();
void set_eval_deadline_ms(std::uint64_t ms);

/// Arms the calling thread's deadline for one candidate evaluation:
/// ctor computes now + ms (ms == 0 leaves the thread unarmed), dtor
/// restores the previous value so nested scopes compose.
class EvalDeadline {
 public:
  explicit EvalDeadline(std::uint64_t ms);
  ~EvalDeadline();
  EvalDeadline(const EvalDeadline&) = delete;
  EvalDeadline& operator=(const EvalDeadline&) = delete;

 private:
  std::uint64_t prev_ns_;
};

/// True when the calling thread's armed deadline has passed.  Unarmed
/// threads pay one thread-local load and a branch.
bool deadline_exceeded();

/// Sleep helper for the eval:slow fault (kept here so sim code does not
/// need <thread>).
void fault_sleep_ms(std::uint64_t ms);

}  // namespace kato::util

#include "rf/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace kato::rf {

namespace {

double sse(const std::vector<double>& y, const std::vector<std::size_t>& idx) {
  if (idx.empty()) return 0.0;
  double mean = 0.0;
  for (auto i : idx) mean += y[i];
  mean /= static_cast<double>(idx.size());
  double s = 0.0;
  for (auto i : idx) s += (y[i] - mean) * (y[i] - mean);
  return s;
}

}  // namespace

double RandomForest::leaf_value(const std::vector<double>& y,
                                const std::vector<std::size_t>& idx) {
  double mean = 0.0;
  for (auto i : idx) mean += y[i];
  return idx.empty() ? 0.0 : mean / static_cast<double>(idx.size());
}

int RandomForest::build_node(Tree& tree, const std::vector<std::vector<double>>& x,
                             const std::vector<double>& y,
                             std::vector<std::size_t>& idx, std::size_t depth,
                             util::Rng& rng) {
  const int node_id = static_cast<int>(tree.size());
  tree.emplace_back();

  const bool stop = idx.size() < 2 * options_.min_leaf ||
                    depth >= options_.max_depth || sse(y, idx) < 1e-12;
  if (stop) {
    tree[node_id].value = leaf_value(y, idx);
    return node_id;
  }

  // Best split over a random feature subset with random thresholds.
  const std::size_t n_feat = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.feature_fraction *
                                  static_cast<double>(dim_)));
  const auto features = rng.choice(dim_, n_feat);
  double best_gain = -1.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  const double parent_sse = sse(y, idx);

  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  for (auto f : features) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (auto i : idx) {
      lo = std::min(lo, x[i][f]);
      hi = std::max(hi, x[i][f]);
    }
    if (!(hi > lo)) continue;
    for (std::size_t t = 0; t < options_.n_thresholds; ++t) {
      const double thr = rng.uniform(lo, hi);
      left.clear();
      right.clear();
      for (auto i : idx) (x[i][f] <= thr ? left : right).push_back(i);
      if (left.size() < options_.min_leaf || right.size() < options_.min_leaf)
        continue;
      const double gain = parent_sse - sse(y, left) - sse(y, right);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
      }
    }
  }
  if (best_feature < 0) {
    tree[node_id].value = leaf_value(y, idx);
    return node_id;
  }

  left.clear();
  right.clear();
  for (auto i : idx)
    (x[i][static_cast<std::size_t>(best_feature)] <= best_threshold ? left
                                                                    : right)
        .push_back(i);
  tree[node_id].feature = best_feature;
  tree[node_id].threshold = best_threshold;
  const int l = build_node(tree, x, y, left, depth + 1, rng);
  const int r = build_node(tree, x, y, right, depth + 1, rng);
  tree[node_id].left = l;
  tree[node_id].right = r;
  return node_id;
}

void RandomForest::fit(const std::vector<std::vector<double>>& x,
                       const std::vector<double>& y, util::Rng& rng) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("RandomForest::fit: bad data");
  dim_ = x.front().size();
  trees_.clear();
  trees_.reserve(options_.n_trees);
  const std::size_t n = x.size();
  for (std::size_t t = 0; t < options_.n_trees; ++t) {
    std::vector<std::size_t> idx(n);
    for (auto& i : idx) i = static_cast<std::size_t>(rng.randint(0, static_cast<int>(n) - 1));
    Tree tree;
    (void)build_node(tree, x, y, idx, 0, rng);
    trees_.push_back(std::move(tree));
  }
}

RfPrediction RandomForest::predict(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::predict: not fitted");
  double mean = 0.0;
  double m2 = 0.0;
  for (const auto& tree : trees_) {
    int node = 0;
    while (tree[static_cast<std::size_t>(node)].feature >= 0) {
      const auto& nd = tree[static_cast<std::size_t>(node)];
      node = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                     : nd.right;
    }
    const double v = tree[static_cast<std::size_t>(node)].value;
    mean += v;
    m2 += v * v;
  }
  const double nt = static_cast<double>(trees_.size());
  mean /= nt;
  const double var = std::max(m2 / nt - mean * mean, 1e-8);
  return {mean, var};
}

}  // namespace kato::rf

#pragma once
// Random-forest regressor backing the SMAC-RF baseline (Sec. 4.1 compares
// KATO against SMAC-RF).  CART trees with variance-reduction splits, trained
// on bootstrap resamples with per-split feature subsampling; the ensemble
// mean/variance across trees provides the surrogate used by expected
// improvement, mirroring SMAC's RF mode.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace kato::rf {

struct RfOptions {
  std::size_t n_trees = 40;
  std::size_t min_leaf = 3;       ///< minimum samples per leaf
  std::size_t max_depth = 24;
  double feature_fraction = 0.8;  ///< features considered per split
  std::size_t n_thresholds = 12;  ///< candidate thresholds per feature
};

struct RfPrediction {
  double mean = 0.0;
  double var = 0.0;
};

class RandomForest {
 public:
  explicit RandomForest(RfOptions options = {}) : options_(options) {}

  /// Fit on rows of x (n x d) with targets y.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, util::Rng& rng);

  /// Ensemble mean and across-tree variance (plus a small floor so EI stays
  /// defined at training points).
  RfPrediction predict(std::span<const double> x) const;

  bool trained() const { return !trees_.empty(); }

 private:
  struct Node {
    int feature = -1;      ///< -1 marks a leaf
    double threshold = 0.0;
    double value = 0.0;    ///< leaf mean
    int left = -1;
    int right = -1;
  };
  using Tree = std::vector<Node>;

  int build_node(Tree& tree, const std::vector<std::vector<double>>& x,
                 const std::vector<double>& y, std::vector<std::size_t>& idx,
                 std::size_t depth, util::Rng& rng);
  static double leaf_value(const std::vector<double>& y,
                           const std::vector<std::size_t>& idx);

  RfOptions options_;
  std::vector<Tree> trees_;
  std::size_t dim_ = 0;
};

}  // namespace kato::rf

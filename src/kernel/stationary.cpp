#include "kernel/stationary.hpp"

#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace kato::kern {

namespace {
constexpr double k_sqrt3 = 1.7320508075688772;
constexpr double k_sqrt5 = 2.23606797749979;

double ard_r2(std::span<const double> a, std::span<const double> b,
              const std::vector<double>& w) {
  double r2 = 0.0;
  for (std::size_t j = 0; j < w.size(); ++j) {
    const double diff = a[j] - b[j];
    r2 += w[j] * diff * diff;
  }
  return r2;
}

/// Fit-scoped caches for StationaryArd.  Pairs (i, j > i) are stored packed
/// row-major: pair_base(i) + (j - i - 1).
class StationaryFitWs final : public Kernel::FitWorkspace {
 public:
  const la::Matrix* x = nullptr;
  std::size_t n = 0;
  std::size_t d = 0;
  std::vector<double> diff2;  ///< per pair: d squared coordinate deltas
  std::vector<double> r2;     ///< per pair, from the last matrix_ws call
  std::vector<double> g;      ///< per pair: g(r2), ditto
  std::vector<double> aux;    ///< per pair: log1p(r2 / 2 alpha), RQ only
  std::vector<double> w;      ///< exponentiated ARD weights scratch
  la::Matrix rowg;            ///< n x n_params partial grads; reduced in row
                              ///< order so any thread count is bit-identical

  std::size_t pair_base(std::size_t i) const { return i * (2 * n - i - 1) / 2; }
};
}  // namespace

double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double softplus_deriv(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return std::exp(x);
  return 1.0 / (1.0 + std::exp(-x));
}

StationaryArd::StationaryArd(StationaryType type, std::size_t dim)
    : type_(type), dim_(dim) {
  if (dim == 0) throw std::invalid_argument("StationaryArd: dim must be > 0");
  // log sigma^2 = 0, log w_j = 0, RQ: log alpha = 0.
  params_.assign(1 + dim + (type == StationaryType::rq ? 1 : 0), 0.0);
}

std::string StationaryArd::name() const {
  switch (type_) {
    case StationaryType::rbf: return "rbf";
    case StationaryType::rq: return "rq";
    case StationaryType::matern32: return "matern32";
    case StationaryType::matern52: return "matern52";
  }
  return "stationary";
}

double StationaryArd::amplitude2() const { return std::exp(params_[0]); }
double StationaryArd::weight(std::size_t j) const { return std::exp(params_[1 + j]); }
double StationaryArd::alpha() const { return std::exp(params_[1 + dim_]); }

std::vector<double> StationaryArd::weights() const {
  std::vector<double> w(dim_);
  for (std::size_t j = 0; j < dim_; ++j) w[j] = std::exp(params_[1 + j]);
  return w;
}

double StationaryArd::g(double r2) const {
  switch (type_) {
    case StationaryType::rbf:
      return std::exp(-r2);
    case StationaryType::rq: {
      const double a = alpha();
      return std::pow(1.0 + r2 / (2.0 * a), -a);
    }
    case StationaryType::matern32: {
      const double r = std::sqrt(r2);
      return (1.0 + k_sqrt3 * r) * std::exp(-k_sqrt3 * r);
    }
    case StationaryType::matern52: {
      const double r = std::sqrt(r2);
      return (1.0 + k_sqrt5 * r + 5.0 * r2 / 3.0) * std::exp(-k_sqrt5 * r);
    }
  }
  throw std::logic_error("StationaryArd::g: unknown type");
}

double StationaryArd::dg_dr2(double r2) const {
  switch (type_) {
    case StationaryType::rbf:
      return -std::exp(-r2);
    case StationaryType::rq: {
      const double a = alpha();
      return -0.5 * std::pow(1.0 + r2 / (2.0 * a), -a - 1.0);
    }
    case StationaryType::matern32: {
      // dg/dr2 = dg/dr * 1/(2r); analytic limit 3/2*... at r->0 is -3/2.
      const double r = std::sqrt(r2);
      if (r < 1e-12) return -1.5;
      const double dg_dr = -3.0 * r * std::exp(-k_sqrt3 * r);
      return dg_dr / (2.0 * r);
    }
    case StationaryType::matern52: {
      const double r = std::sqrt(r2);
      if (r < 1e-12) return -5.0 / 6.0;
      const double dg_dr =
          -(5.0 / 3.0) * r * (1.0 + k_sqrt5 * r) * std::exp(-k_sqrt5 * r);
      return dg_dr / (2.0 * r);
    }
  }
  throw std::logic_error("StationaryArd::dg_dr2: unknown type");
}

double StationaryArd::dg_dalpha(double r2) const {
  if (type_ != StationaryType::rq) return 0.0;
  const double a = alpha();
  const double t = r2 / (2.0 * a);
  const double base = 1.0 + t;
  // d/da [ exp(-a ln(1+t)) ] with t depending on a.
  return std::pow(base, -a) * (-std::log(base) + t / base);
}

la::Matrix StationaryArd::cross(const la::Matrix& x1, const la::Matrix& x2) const {
  const double s2 = amplitude2();
  const auto w = weights();
  la::Matrix k(x1.rows(), x2.rows());
  for (std::size_t i = 0; i < x1.rows(); ++i)
    for (std::size_t j = 0; j < x2.rows(); ++j)
      k(i, j) = s2 * g(ard_r2(x1.row(i), x2.row(j), w));
  return k;
}

la::Matrix StationaryArd::matrix(const la::Matrix& x) const {
  const double s2 = amplitude2();
  const auto w = weights();
  const std::size_t n = x.rows();
  la::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double kv = s2 * g(ard_r2(x.row(i), x.row(j), w));
      k(i, j) = kv;
      k(j, i) = kv;
    }
  return k;
}

double StationaryArd::diag(std::span<const double>) const { return amplitude2(); }

void StationaryArd::backward(const la::Matrix& x, const la::Matrix& dk,
                             std::span<double> grad) const {
  if (grad.size() != params_.size())
    throw std::invalid_argument("StationaryArd::backward: grad size mismatch");
  const double s2 = amplitude2();
  const auto w = weights();
  const std::size_t n = x.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double up = dk(i, j);
      if (up == 0.0) continue;
      const double r2 = ard_r2(x.row(i), x.row(j), w);
      const double gv = g(r2);
      // d k / d log sigma^2 = k.
      grad[0] += up * s2 * gv;
      const double dgr2 = dg_dr2(r2);
      for (std::size_t m = 0; m < dim_; ++m) {
        const double diff = x(i, m) - x(j, m);
        // d r2 / d log w_m = w_m diff^2.
        grad[1 + m] += up * s2 * dgr2 * w[m] * diff * diff;
      }
      if (type_ == StationaryType::rq) {
        const double a = alpha();
        grad[1 + dim_] += up * s2 * dg_dalpha(r2) * a;
      }
    }
  }
}

la::Matrix StationaryArd::input_grad(std::span<const double> x,
                                     const la::Matrix& x2) const {
  const double s2 = amplitude2();
  const auto w = weights();
  la::Matrix out(x2.rows(), dim_);
  for (std::size_t j = 0; j < x2.rows(); ++j) {
    const double r2 = ard_r2(x, x2.row(j), w);
    const double dgr2 = dg_dr2(r2);
    for (std::size_t m = 0; m < dim_; ++m) {
      // d r2/dx_m = 2 w (x_m - x2_m).
      out(j, m) = s2 * dgr2 * 2.0 * w[m] * (x[m] - x2(j, m));
    }
  }
  return out;
}

std::unique_ptr<Kernel> StationaryArd::clone() const {
  return std::make_unique<StationaryArd>(*this);
}

std::unique_ptr<Kernel::FitWorkspace> StationaryArd::fit_workspace(
    const la::Matrix& x) const {
  auto ws = std::make_unique<StationaryFitWs>();
  const std::size_t n = x.rows();
  ws->x = &x;
  ws->n = n;
  ws->d = dim_;
  const std::size_t pairs = n * (n - 1) / 2;
  ws->diff2.resize(pairs * dim_);
  ws->r2.resize(pairs);
  ws->g.resize(pairs);
  if (type_ == StationaryType::rq) ws->aux.resize(pairs);
  ws->w.resize(dim_);
  ws->rowg = la::Matrix(n, params_.size());
  // Pairwise squared deltas are hyperparameter-independent: computed once per
  // fit, reused by every LML iteration.
  for (std::size_t i = 0; i < n; ++i) {
    double* out = ws->diff2.data() + ws->pair_base(i) * dim_;
    for (std::size_t j = i + 1; j < n; ++j)
      for (std::size_t m = 0; m < dim_; ++m) {
        const double diff = x(i, m) - x(j, m);
        *out++ = diff * diff;
      }
  }
  return ws;
}

void StationaryArd::matrix_ws(FitWorkspace& base, la::Matrix& k) const {
  auto& ws = static_cast<StationaryFitWs&>(base);
  const std::size_t n = ws.n;
  if (k.rows() != n || k.cols() != n) k = la::Matrix(n, n);
  const double s2 = amplitude2();
  for (std::size_t m = 0; m < dim_; ++m) ws.w[m] = std::exp(params_[1 + m]);
  const double a = type_ == StationaryType::rq ? alpha() : 0.0;

  util::parallel_for(n, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      k(i, i) = s2;
      const double* d2 = ws.diff2.data() + ws.pair_base(i) * dim_;
      std::size_t t = ws.pair_base(i);
      for (std::size_t j = i + 1; j < n; ++j, ++t, d2 += dim_) {
        double r2 = 0.0;
        for (std::size_t m = 0; m < dim_; ++m) r2 += ws.w[m] * d2[m];
        ws.r2[t] = r2;
        double gv;
        switch (type_) {
          case StationaryType::rbf:
            gv = std::exp(-r2);
            break;
          case StationaryType::rq: {
            // g = base^-alpha via log1p+exp; the log is cached for the
            // alpha-gradient so backward_ws needs no transcendental at all.
            const double lb = std::log1p(r2 / (2.0 * a));
            ws.aux[t] = lb;
            gv = std::exp(-a * lb);
            break;
          }
          case StationaryType::matern32: {
            const double r = std::sqrt(r2);
            gv = (1.0 + k_sqrt3 * r) * std::exp(-k_sqrt3 * r);
            break;
          }
          case StationaryType::matern52: {
            const double r = std::sqrt(r2);
            gv = (1.0 + k_sqrt5 * r + 5.0 * r2 / 3.0) * std::exp(-k_sqrt5 * r);
            break;
          }
          default:
            throw std::logic_error("StationaryArd::matrix_ws: unknown type");
        }
        ws.g[t] = gv;
        const double kv = s2 * gv;
        k(i, j) = kv;
        k(j, i) = kv;
      }
    }
  });
}

void StationaryArd::backward_ws(FitWorkspace& base, const la::Matrix& dk,
                                std::span<double> grad) const {
  auto& ws = static_cast<StationaryFitWs&>(base);
  if (grad.size() != params_.size())
    throw std::invalid_argument("StationaryArd::backward_ws: grad size mismatch");
  const std::size_t n = ws.n;
  const std::size_t np = params_.size();
  const double s2 = amplitude2();
  const bool is_rq = type_ == StationaryType::rq;
  const double a = is_rq ? alpha() : 0.0;
  ws.rowg.data().assign(ws.rowg.data().size(), 0.0);

  // Each row accumulates the contributions of its pairs (i, j > i) plus its
  // diagonal entry into rowg.row(i); the serial row-order reduction below
  // makes the result independent of the parallel chunking.
  util::parallel_for(n, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      double* row = ws.rowg.data().data() + i * np;
      row[0] += dk(i, i) * s2;  // diagonal: r2 = 0, g = 1, dg terms vanish
      const double* d2 = ws.diff2.data() + ws.pair_base(i) * dim_;
      std::size_t t = ws.pair_base(i);
      for (std::size_t j = i + 1; j < n; ++j, ++t, d2 += dim_) {
        const double up = dk(i, j) + dk(j, i);
        if (up == 0.0) continue;
        const double gv = ws.g[t];
        row[0] += up * s2 * gv;
        // dg/dr2 recovered from the cached g: no exp/pow in this loop.
        double dgr2;
        switch (type_) {
          case StationaryType::rbf:
            dgr2 = -gv;
            break;
          case StationaryType::rq:
            dgr2 = -0.5 * gv / (1.0 + ws.r2[t] / (2.0 * a));
            break;
          case StationaryType::matern32:
            dgr2 = -1.5 * gv / (1.0 + k_sqrt3 * std::sqrt(ws.r2[t]));
            break;
          case StationaryType::matern52: {
            const double r = std::sqrt(ws.r2[t]);
            const double e = gv / (1.0 + k_sqrt5 * r + 5.0 * ws.r2[t] / 3.0);
            dgr2 = -(5.0 / 6.0) * (1.0 + k_sqrt5 * r) * e;
            break;
          }
          default:
            throw std::logic_error("StationaryArd::backward_ws: unknown type");
        }
        const double c = up * s2 * dgr2;
        for (std::size_t m = 0; m < dim_; ++m)
          row[1 + m] += c * ws.w[m] * d2[m];
        if (is_rq) {
          const double tt = ws.r2[t] / (2.0 * a);
          const double dg_da = gv * (-ws.aux[t] + tt / (1.0 + tt));
          row[1 + dim_] += up * s2 * dg_da * a;
        }
      }
    }
  });

  for (std::size_t i = 0; i < n; ++i) {
    const double* row = ws.rowg.data().data() + i * np;
    for (std::size_t p = 0; p < np; ++p) grad[p] += row[p];
  }
}

PeriodicArd::PeriodicArd(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("PeriodicArd: dim must be > 0");
  params_.assign(1 + dim + 1, 0.0);  // log s2, log w_j, log p
}

double PeriodicArd::amplitude2() const { return std::exp(params_[0]); }
double PeriodicArd::weight(std::size_t j) const { return std::exp(params_[1 + j]); }
double PeriodicArd::period() const { return std::exp(params_[1 + dim_]); }

la::Matrix PeriodicArd::cross(const la::Matrix& x1, const la::Matrix& x2) const {
  const double s2 = amplitude2();
  const double p = period();
  la::Matrix k(x1.rows(), x2.rows());
  for (std::size_t i = 0; i < x1.rows(); ++i)
    for (std::size_t j = 0; j < x2.rows(); ++j) {
      double e = 0.0;
      for (std::size_t m = 0; m < dim_; ++m) {
        const double s = std::sin(M_PI * (x1(i, m) - x2(j, m)) / p);
        e += weight(m) * s * s;
      }
      k(i, j) = s2 * std::exp(-2.0 * e);
    }
  return k;
}

double PeriodicArd::diag(std::span<const double>) const { return amplitude2(); }

void PeriodicArd::backward(const la::Matrix& x, const la::Matrix& dk,
                           std::span<double> grad) const {
  if (grad.size() != params_.size())
    throw std::invalid_argument("PeriodicArd::backward: grad size mismatch");
  const double s2 = amplitude2();
  const double p = period();
  const std::size_t n = x.rows();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const double up = dk(i, j);
      if (up == 0.0) continue;
      double e = 0.0;
      for (std::size_t m = 0; m < dim_; ++m) {
        const double s = std::sin(M_PI * (x(i, m) - x(j, m)) / p);
        e += weight(m) * s * s;
      }
      const double kv = s2 * std::exp(-2.0 * e);
      grad[0] += up * kv;  // d/d log s2
      double de_dp = 0.0;
      for (std::size_t m = 0; m < dim_; ++m) {
        const double diff = x(i, m) - x(j, m);
        const double s = std::sin(M_PI * diff / p);
        // d e / d log w_m = w_m sin^2.
        grad[1 + m] += up * kv * (-2.0) * weight(m) * s * s;
        // d sin^2(pi diff/p) / dp = -sin(2 pi diff / p) * pi diff / p^2.
        de_dp += weight(m) * (-std::sin(2.0 * M_PI * diff / p)) * M_PI * diff / (p * p);
      }
      grad[1 + dim_] += up * kv * (-2.0) * de_dp * p;  // chain to log p
    }
}

la::Matrix PeriodicArd::input_grad(std::span<const double> x,
                                   const la::Matrix& x2) const {
  const double s2 = amplitude2();
  const double p = period();
  la::Matrix out(x2.rows(), dim_);
  for (std::size_t j = 0; j < x2.rows(); ++j) {
    double e = 0.0;
    for (std::size_t m = 0; m < dim_; ++m) {
      const double s = std::sin(M_PI * (x[m] - x2(j, m)) / p);
      e += weight(m) * s * s;
    }
    const double kv = s2 * std::exp(-2.0 * e);
    for (std::size_t m = 0; m < dim_; ++m) {
      const double diff = x[m] - x2(j, m);
      // d e/dx_m = w_m sin(2 pi diff / p) * pi / p.
      const double de = weight(m) * std::sin(2.0 * M_PI * diff / p) * M_PI / p;
      out(j, m) = kv * (-2.0) * de;
    }
  }
  return out;
}

std::unique_ptr<Kernel> PeriodicArd::clone() const {
  return std::make_unique<PeriodicArd>(*this);
}

}  // namespace kato::kern

#include "kernel/stationary.hpp"

#include <cmath>
#include <stdexcept>

namespace kato::kern {

namespace {
constexpr double k_sqrt3 = 1.7320508075688772;
constexpr double k_sqrt5 = 2.23606797749979;

double ard_r2(std::span<const double> a, std::span<const double> b,
              const std::vector<double>& w) {
  double r2 = 0.0;
  for (std::size_t j = 0; j < w.size(); ++j) {
    const double diff = a[j] - b[j];
    r2 += w[j] * diff * diff;
  }
  return r2;
}
}  // namespace

double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double softplus_deriv(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return std::exp(x);
  return 1.0 / (1.0 + std::exp(-x));
}

StationaryArd::StationaryArd(StationaryType type, std::size_t dim)
    : type_(type), dim_(dim) {
  if (dim == 0) throw std::invalid_argument("StationaryArd: dim must be > 0");
  // log sigma^2 = 0, log w_j = 0, RQ: log alpha = 0.
  params_.assign(1 + dim + (type == StationaryType::rq ? 1 : 0), 0.0);
}

std::string StationaryArd::name() const {
  switch (type_) {
    case StationaryType::rbf: return "rbf";
    case StationaryType::rq: return "rq";
    case StationaryType::matern32: return "matern32";
    case StationaryType::matern52: return "matern52";
  }
  return "stationary";
}

double StationaryArd::amplitude2() const { return std::exp(params_[0]); }
double StationaryArd::weight(std::size_t j) const { return std::exp(params_[1 + j]); }
double StationaryArd::alpha() const { return std::exp(params_[1 + dim_]); }

std::vector<double> StationaryArd::weights() const {
  std::vector<double> w(dim_);
  for (std::size_t j = 0; j < dim_; ++j) w[j] = std::exp(params_[1 + j]);
  return w;
}

double StationaryArd::g(double r2) const {
  switch (type_) {
    case StationaryType::rbf:
      return std::exp(-r2);
    case StationaryType::rq: {
      const double a = alpha();
      return std::pow(1.0 + r2 / (2.0 * a), -a);
    }
    case StationaryType::matern32: {
      const double r = std::sqrt(r2);
      return (1.0 + k_sqrt3 * r) * std::exp(-k_sqrt3 * r);
    }
    case StationaryType::matern52: {
      const double r = std::sqrt(r2);
      return (1.0 + k_sqrt5 * r + 5.0 * r2 / 3.0) * std::exp(-k_sqrt5 * r);
    }
  }
  throw std::logic_error("StationaryArd::g: unknown type");
}

double StationaryArd::dg_dr2(double r2) const {
  switch (type_) {
    case StationaryType::rbf:
      return -std::exp(-r2);
    case StationaryType::rq: {
      const double a = alpha();
      return -0.5 * std::pow(1.0 + r2 / (2.0 * a), -a - 1.0);
    }
    case StationaryType::matern32: {
      // dg/dr2 = dg/dr * 1/(2r); analytic limit 3/2*... at r->0 is -3/2.
      const double r = std::sqrt(r2);
      if (r < 1e-12) return -1.5;
      const double dg_dr = -3.0 * r * std::exp(-k_sqrt3 * r);
      return dg_dr / (2.0 * r);
    }
    case StationaryType::matern52: {
      const double r = std::sqrt(r2);
      if (r < 1e-12) return -5.0 / 6.0;
      const double dg_dr =
          -(5.0 / 3.0) * r * (1.0 + k_sqrt5 * r) * std::exp(-k_sqrt5 * r);
      return dg_dr / (2.0 * r);
    }
  }
  throw std::logic_error("StationaryArd::dg_dr2: unknown type");
}

double StationaryArd::dg_dalpha(double r2) const {
  if (type_ != StationaryType::rq) return 0.0;
  const double a = alpha();
  const double t = r2 / (2.0 * a);
  const double base = 1.0 + t;
  // d/da [ exp(-a ln(1+t)) ] with t depending on a.
  return std::pow(base, -a) * (-std::log(base) + t / base);
}

la::Matrix StationaryArd::cross(const la::Matrix& x1, const la::Matrix& x2) const {
  const double s2 = amplitude2();
  const auto w = weights();
  la::Matrix k(x1.rows(), x2.rows());
  for (std::size_t i = 0; i < x1.rows(); ++i)
    for (std::size_t j = 0; j < x2.rows(); ++j)
      k(i, j) = s2 * g(ard_r2(x1.row(i), x2.row(j), w));
  return k;
}

la::Matrix StationaryArd::matrix(const la::Matrix& x) const {
  const double s2 = amplitude2();
  const auto w = weights();
  const std::size_t n = x.rows();
  la::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double kv = s2 * g(ard_r2(x.row(i), x.row(j), w));
      k(i, j) = kv;
      k(j, i) = kv;
    }
  return k;
}

double StationaryArd::diag(std::span<const double>) const { return amplitude2(); }

void StationaryArd::backward(const la::Matrix& x, const la::Matrix& dk,
                             std::span<double> grad) const {
  if (grad.size() != params_.size())
    throw std::invalid_argument("StationaryArd::backward: grad size mismatch");
  const double s2 = amplitude2();
  const auto w = weights();
  const std::size_t n = x.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double up = dk(i, j);
      if (up == 0.0) continue;
      const double r2 = ard_r2(x.row(i), x.row(j), w);
      const double gv = g(r2);
      // d k / d log sigma^2 = k.
      grad[0] += up * s2 * gv;
      const double dgr2 = dg_dr2(r2);
      for (std::size_t m = 0; m < dim_; ++m) {
        const double diff = x(i, m) - x(j, m);
        // d r2 / d log w_m = w_m diff^2.
        grad[1 + m] += up * s2 * dgr2 * w[m] * diff * diff;
      }
      if (type_ == StationaryType::rq) {
        const double a = alpha();
        grad[1 + dim_] += up * s2 * dg_dalpha(r2) * a;
      }
    }
  }
}

la::Matrix StationaryArd::input_grad(std::span<const double> x,
                                     const la::Matrix& x2) const {
  const double s2 = amplitude2();
  const auto w = weights();
  la::Matrix out(x2.rows(), dim_);
  for (std::size_t j = 0; j < x2.rows(); ++j) {
    const double r2 = ard_r2(x, x2.row(j), w);
    const double dgr2 = dg_dr2(r2);
    for (std::size_t m = 0; m < dim_; ++m) {
      // d r2/dx_m = 2 w (x_m - x2_m).
      out(j, m) = s2 * dgr2 * 2.0 * w[m] * (x[m] - x2(j, m));
    }
  }
  return out;
}

std::unique_ptr<Kernel> StationaryArd::clone() const {
  return std::make_unique<StationaryArd>(*this);
}

PeriodicArd::PeriodicArd(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("PeriodicArd: dim must be > 0");
  params_.assign(1 + dim + 1, 0.0);  // log s2, log w_j, log p
}

double PeriodicArd::amplitude2() const { return std::exp(params_[0]); }
double PeriodicArd::weight(std::size_t j) const { return std::exp(params_[1 + j]); }
double PeriodicArd::period() const { return std::exp(params_[1 + dim_]); }

la::Matrix PeriodicArd::cross(const la::Matrix& x1, const la::Matrix& x2) const {
  const double s2 = amplitude2();
  const double p = period();
  la::Matrix k(x1.rows(), x2.rows());
  for (std::size_t i = 0; i < x1.rows(); ++i)
    for (std::size_t j = 0; j < x2.rows(); ++j) {
      double e = 0.0;
      for (std::size_t m = 0; m < dim_; ++m) {
        const double s = std::sin(M_PI * (x1(i, m) - x2(j, m)) / p);
        e += weight(m) * s * s;
      }
      k(i, j) = s2 * std::exp(-2.0 * e);
    }
  return k;
}

double PeriodicArd::diag(std::span<const double>) const { return amplitude2(); }

void PeriodicArd::backward(const la::Matrix& x, const la::Matrix& dk,
                           std::span<double> grad) const {
  if (grad.size() != params_.size())
    throw std::invalid_argument("PeriodicArd::backward: grad size mismatch");
  const double s2 = amplitude2();
  const double p = period();
  const std::size_t n = x.rows();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const double up = dk(i, j);
      if (up == 0.0) continue;
      double e = 0.0;
      for (std::size_t m = 0; m < dim_; ++m) {
        const double s = std::sin(M_PI * (x(i, m) - x(j, m)) / p);
        e += weight(m) * s * s;
      }
      const double kv = s2 * std::exp(-2.0 * e);
      grad[0] += up * kv;  // d/d log s2
      double de_dp = 0.0;
      for (std::size_t m = 0; m < dim_; ++m) {
        const double diff = x(i, m) - x(j, m);
        const double s = std::sin(M_PI * diff / p);
        // d e / d log w_m = w_m sin^2.
        grad[1 + m] += up * kv * (-2.0) * weight(m) * s * s;
        // d sin^2(pi diff/p) / dp = -sin(2 pi diff / p) * pi diff / p^2.
        de_dp += weight(m) * (-std::sin(2.0 * M_PI * diff / p)) * M_PI * diff / (p * p);
      }
      grad[1 + dim_] += up * kv * (-2.0) * de_dp * p;  // chain to log p
    }
}

la::Matrix PeriodicArd::input_grad(std::span<const double> x,
                                   const la::Matrix& x2) const {
  const double s2 = amplitude2();
  const double p = period();
  la::Matrix out(x2.rows(), dim_);
  for (std::size_t j = 0; j < x2.rows(); ++j) {
    double e = 0.0;
    for (std::size_t m = 0; m < dim_; ++m) {
      const double s = std::sin(M_PI * (x[m] - x2(j, m)) / p);
      e += weight(m) * s * s;
    }
    const double kv = s2 * std::exp(-2.0 * e);
    for (std::size_t m = 0; m < dim_; ++m) {
      const double diff = x[m] - x2(j, m);
      // d e/dx_m = w_m sin(2 pi diff / p) * pi / p.
      const double de = weight(m) * std::sin(2.0 * M_PI * diff / p) * M_PI / p;
      out(j, m) = kv * (-2.0) * de;
    }
  }
  return out;
}

std::unique_ptr<Kernel> PeriodicArd::clone() const {
  return std::make_unique<PeriodicArd>(*this);
}

}  // namespace kato::kern

#include "kernel/neuk.hpp"

#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace kato::kern {

namespace {
/// Fit-scoped caches for NeukKernel.  All per-pair state is stored packed
/// over the upper triangle (pairs (p, q > p), index pair_base(p) + q - p - 1)
/// — half the memory traffic of mirrored matrices, and every primitive is
/// exactly symmetric so nothing is lost.
class NeukFitWs final : public Kernel::FitWorkspace {
 public:
  const la::Matrix* x = nullptr;
  std::size_t n = 0;
  std::vector<la::Matrix> u;  ///< per primitive: n x latent embeddings
  std::vector<std::vector<double>> h;  ///< per primitive: packed pair values
  /// Per primitive: packed per-pair gradient caches.  Stride 2 for RQ
  /// (r2, log1p(r2/2a)), `latent` for periodic (sin(2 arg) per coordinate),
  /// 0 for RBF.
  std::vector<std::vector<double>> aux;
  std::vector<double> kvg;   ///< packed dK/dS = exp(S), or 0 where clamped
  double kg_diag = 0.0;      ///< diagonal dK/dS (every h_i is exactly 1)
  std::vector<double> dsum;  ///< packed scratch: ds(p,q) + ds(q,p) per pair
  la::Matrix du;             ///< scratch: n x latent embedding gradients
  la::Matrix rowred;  ///< n x (1 + n_prims) row partials for ds_sum / dot_dh

  std::size_t pair_base(std::size_t p) const { return p * (2 * n - p - 1) / 2; }
};

inline void fast_sincos(double arg, double& s, double& c) {
#if defined(__GNUC__)
  __builtin_sincos(arg, &s, &c);
#else
  s = std::sin(arg);
  c = std::cos(arg);
#endif
}
}  // namespace

NeukKernel::NeukKernel(std::size_t dim, const NeukConfig& config, util::Rng& rng)
    : dim_(dim), mix_width_(config.mix_width) {
  if (dim == 0) throw std::invalid_argument("NeukKernel: dim must be > 0");
  if (config.primitives.empty())
    throw std::invalid_argument("NeukKernel: need at least one primitive");
  latent_ = config.latent_dim > 0 ? config.latent_dim : std::min<std::size_t>(dim, 4);

  std::size_t offset = 0;
  for (Primitive p : config.primitives) {
    PrimBlock blk;
    blk.type = p;
    blk.w_offset = offset;
    offset += latent_ * dim_;
    blk.b_offset = offset;
    offset += latent_;
    blk.shape_offset = (p == Primitive::rbf) ? k_npos : offset;
    if (p != Primitive::rbf) offset += 1;
    prims_.push_back(blk);
  }
  wz_offset_ = offset;
  offset += mix_width_ * prims_.size();
  bz_offset_ = offset;
  offset += mix_width_;
  bk_offset_ = offset;
  offset += 1;
  params_.assign(offset, 0.0);

  // Initialization: transforms scaled so distances between unit-cube inputs
  // are O(1); mixing weights start near 1/n_prims; b_k centers the diagonal
  // of K at ~1 (outputs are standardized by the GP).
  const double w_scale = 1.0 / std::sqrt(static_cast<double>(dim_));
  for (const auto& blk : prims_) {
    for (std::size_t i = 0; i < latent_ * dim_; ++i)
      params_[blk.w_offset + i] = rng.normal(0.0, w_scale);
    for (std::size_t i = 0; i < latent_; ++i)
      params_[blk.b_offset + i] = 0.1 * rng.normal();
    if (blk.shape_offset != k_npos) params_[blk.shape_offset] = 0.0;  // alpha=p=1
  }
  for (std::size_t i = 0; i < mix_width_ * prims_.size(); ++i)
    params_[wz_offset_ + i] = -1.0 + 0.1 * rng.normal();
  double a_sum = 0.0;
  for (std::size_t i = 0; i < prims_.size(); ++i) a_sum += mix_weight(i);
  params_[bk_offset_] = -a_sum;  // diag(K) = exp(sum_i a_i + c) ~= 1
}

la::Matrix NeukKernel::transform(std::size_t i, const la::Matrix& x) const {
  la::Matrix u;
  transform_into(i, x, u);
  return u;
}

void NeukKernel::transform_into(std::size_t i, const la::Matrix& x,
                                la::Matrix& u) const {
  const auto& blk = prims_[i];
  if (u.rows() != x.rows() || u.cols() != latent_)
    u = la::Matrix(x.rows(), latent_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t l = 0; l < latent_; ++l) {
      double s = params_[blk.b_offset + l];
      const double* w = params_.data() + blk.w_offset + l * dim_;
      for (std::size_t j = 0; j < dim_; ++j) s += w[j] * x(r, j);
      u(r, l) = s;
    }
  }
}

la::Vector NeukKernel::transform_point(std::size_t i, std::span<const double> x) const {
  const auto& blk = prims_[i];
  la::Vector u(latent_);
  for (std::size_t l = 0; l < latent_; ++l) {
    double s = params_[blk.b_offset + l];
    const double* w = params_.data() + blk.w_offset + l * dim_;
    for (std::size_t j = 0; j < dim_; ++j) s += w[j] * x[j];
    u[l] = s;
  }
  return u;
}

double NeukKernel::shape_value(std::size_t i) const {
  const auto& blk = prims_[i];
  return blk.shape_offset == k_npos ? 1.0 : std::exp(params_[blk.shape_offset]);
}

double NeukKernel::prim_value_shaped(std::size_t i, double shape,
                                     std::span<const double> u,
                                     std::span<const double> v) const {
  switch (prims_[i].type) {
    case Primitive::rbf:
      return std::exp(-la::sq_dist(u, v));
    case Primitive::rq: {
      const double base = 1.0 + la::sq_dist(u, v) / (2.0 * shape);
      // pow(base, -1) is just a division at the default alpha = 1.
      return shape == 1.0 ? 1.0 / base : std::pow(base, -shape);
    }
    case Primitive::periodic: {
      const double inv_p = M_PI / shape;
      double e = 0.0;
      for (std::size_t m = 0; m < u.size(); ++m) {
        const double s = std::sin((u[m] - v[m]) * inv_p);
        e += s * s;
      }
      return std::exp(-2.0 * e);
    }
  }
  throw std::logic_error("NeukKernel::prim_value_shaped: unknown primitive");
}

la::Vector NeukKernel::prim_input_grad(std::size_t i, std::span<const double> u,
                                       std::span<const double> v) const {
  const auto& blk = prims_[i];
  la::Vector g(latent_, 0.0);
  switch (blk.type) {
    case Primitive::rbf: {
      const double h = std::exp(-la::sq_dist(u, v));
      for (std::size_t m = 0; m < latent_; ++m)
        g[m] = -2.0 * h * (u[m] - v[m]);
      return g;
    }
    case Primitive::rq: {
      const double alpha = std::exp(params_[blk.shape_offset]);
      const double r2 = la::sq_dist(u, v);
      const double dh_dr2 = -0.5 * std::pow(1.0 + r2 / (2.0 * alpha), -alpha - 1.0);
      for (std::size_t m = 0; m < latent_; ++m)
        g[m] = dh_dr2 * 2.0 * (u[m] - v[m]);
      return g;
    }
    case Primitive::periodic: {
      const double p = std::exp(params_[blk.shape_offset]);
      double e = 0.0;
      for (std::size_t m = 0; m < latent_; ++m) {
        const double s = std::sin(M_PI * (u[m] - v[m]) / p);
        e += s * s;
      }
      const double h = std::exp(-2.0 * e);
      for (std::size_t m = 0; m < latent_; ++m) {
        const double de = std::sin(2.0 * M_PI * (u[m] - v[m]) / p) * M_PI / p;
        g[m] = -2.0 * h * de;
      }
      return g;
    }
  }
  throw std::logic_error("NeukKernel::prim_input_grad: unknown primitive");
}

void NeukKernel::prim_input_grad_cached(std::size_t i, double shape,
                                        std::span<const double> u,
                                        std::span<const double> v, double h,
                                        std::span<double> out) const {
  switch (prims_[i].type) {
    case Primitive::rbf: {
      for (std::size_t m = 0; m < latent_; ++m)
        out[m] = -2.0 * h * (u[m] - v[m]);
      return;
    }
    case Primitive::rq: {
      const double r2 = la::sq_dist(u, v);
      // h = base^-alpha, so base^(-alpha-1) = h / base: no pow needed.
      const double base = 1.0 + r2 / (2.0 * shape);
      const double dh_dr2 = -0.5 * h / base;
      for (std::size_t m = 0; m < latent_; ++m)
        out[m] = dh_dr2 * 2.0 * (u[m] - v[m]);
      return;
    }
    case Primitive::periodic: {
      for (std::size_t m = 0; m < latent_; ++m) {
        const double de =
            std::sin(2.0 * M_PI * (u[m] - v[m]) / shape) * M_PI / shape;
        out[m] = -2.0 * h * de;
      }
      return;
    }
  }
  throw std::logic_error("NeukKernel::prim_input_grad_cached: unknown primitive");
}

double NeukKernel::prim_shape_grad_cached(std::size_t i, double shape,
                                          std::span<const double> u,
                                          std::span<const double> v,
                                          double h) const {
  switch (prims_[i].type) {
    case Primitive::rbf:
      return 0.0;
    case Primitive::rq: {
      const double t = la::sq_dist(u, v) / (2.0 * shape);
      const double base = 1.0 + t;
      // d h/d alpha * alpha (log-space chain); h = base^-alpha is cached.
      return h * (-std::log(base) + t / base) * shape;
    }
    case Primitive::periodic: {
      double de_dp = 0.0;
      for (std::size_t m = 0; m < latent_; ++m) {
        const double diff = u[m] - v[m];
        de_dp +=
            -std::sin(2.0 * M_PI * diff / shape) * M_PI * diff / (shape * shape);
      }
      return h * (-2.0) * de_dp * shape;  // log-space chain
    }
  }
  throw std::logic_error("NeukKernel::prim_shape_grad_cached: unknown primitive");
}

double NeukKernel::mix_weight(std::size_t i) const {
  double a = 0.0;
  for (std::size_t j = 0; j < mix_width_; ++j)
    a += softplus(params_[wz_offset_ + j * prims_.size() + i]);
  return a;
}

double NeukKernel::mix_bias() const {
  double c = params_[bk_offset_];
  for (std::size_t j = 0; j < mix_width_; ++j) c += params_[bz_offset_ + j];
  return c;
}

la::Matrix NeukKernel::cross(const la::Matrix& x1, const la::Matrix& x2) const {
  const double c = mix_bias();
  la::Matrix s(x1.rows(), x2.rows(), c);
  for (std::size_t i = 0; i < prims_.size(); ++i) {
    const double a = mix_weight(i);
    const double shape = shape_value(i);
    const la::Matrix u1 = transform(i, x1);
    const la::Matrix u2 = transform(i, x2);
    for (std::size_t p = 0; p < x1.rows(); ++p)
      for (std::size_t q = 0; q < x2.rows(); ++q)
        s(p, q) += a * prim_value_shaped(i, shape, u1.row(p), u2.row(q));
  }
  for (auto& v : s.data()) v = std::exp(std::min(v, k_log_clamp));
  return s;
}

la::Matrix NeukKernel::matrix(const la::Matrix& x) const {
  const std::size_t n = x.rows();
  const double c = mix_bias();
  la::Matrix s(n, n, c);
  for (std::size_t i = 0; i < prims_.size(); ++i) {
    const double a = mix_weight(i);
    const double shape = shape_value(i);
    const la::Matrix u = transform(i, x);
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p; q < n; ++q)
        s(p, q) += a * prim_value_shaped(i, shape, u.row(p), u.row(q));
  }
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = p; q < n; ++q) {
      const double kv = std::exp(std::min(s(p, q), k_log_clamp));
      s(p, q) = kv;
      s(q, p) = kv;
    }
  return s;
}

double NeukKernel::diag(std::span<const double>) const {
  // Every primitive evaluates to 1 at zero distance, so k(x,x) is constant.
  double s = mix_bias();
  for (std::size_t i = 0; i < prims_.size(); ++i) s += mix_weight(i);
  return std::exp(std::min(s, k_log_clamp));
}

void NeukKernel::backward(const la::Matrix& x, const la::Matrix& dk,
                          std::span<double> grad) const {
  if (grad.size() != params_.size())
    throw std::invalid_argument("NeukKernel::backward: grad size mismatch");
  const std::size_t n = x.rows();
  const double c = mix_bias();

  // Forward caches.  Primitive kernels are exactly symmetric, so only the
  // upper triangle is evaluated and then mirrored.
  std::vector<la::Matrix> u(prims_.size());
  std::vector<la::Matrix> h(prims_.size());
  std::vector<double> a(prims_.size());
  la::Matrix s(n, n, c);
  for (std::size_t i = 0; i < prims_.size(); ++i) {
    a[i] = mix_weight(i);
    const double shape = shape_value(i);
    u[i] = transform(i, x);
    h[i] = la::Matrix(n, n);
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p; q < n; ++q) {
        const double hv = prim_value_shaped(i, shape, u[i].row(p), u[i].row(q));
        h[i](p, q) = hv;
        h[i](q, p) = hv;
        s(p, q) += a[i] * hv;
        if (q != p) s(q, p) += a[i] * hv;
      }
  }

  // dL/dS = dL/dK * K (zero where the exp clamp is active).
  la::Matrix ds(n, n);
  double ds_sum = 0.0;
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      const double sv = s(p, q);
      const double kv = sv < k_log_clamp ? std::exp(sv) : 0.0;
      ds(p, q) = dk(p, q) * kv;
      ds_sum += ds(p, q);
    }

  grad[bk_offset_] += ds_sum;
  for (std::size_t j = 0; j < mix_width_; ++j) grad[bz_offset_ + j] += ds_sum;

  for (std::size_t i = 0; i < prims_.size(); ++i) {
    const auto& blk = prims_[i];
    // Mixing weights: dL/d w_z[j,i] = (sum_pq dS * H_i) * softplus'.
    double dot_dh = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = 0; q < n; ++q) dot_dh += ds(p, q) * h[i](p, q);
    for (std::size_t j = 0; j < mix_width_; ++j) {
      const std::size_t idx = wz_offset_ + j * prims_.size() + i;
      grad[idx] += dot_dh * softplus_deriv(params_[idx]);
    }

    // Through the primitive into its transform and shape parameter.  The
    // primitives are stationary in u, so dh/d(second arg) = -dh/d(first) and
    // both gradients vanish on the diagonal: the ordered pairs (p,q) and
    // (q,p) collapse into one visit with the combined upstream weight
    // ds(p,q) + ds(q,p), and h is reused from the forward cache so no exp or
    // pow is re-evaluated here.
    la::Matrix du(n, latent_);
    la::Vector dgu(latent_);
    const double shape = shape_value(i);
    double dshape = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) {
        const double up_grad = a[i] * (ds(p, q) + ds(q, p));
        if (up_grad == 0.0) continue;
        prim_input_grad_cached(i, shape, u[i].row(p), u[i].row(q), h[i](p, q),
                               dgu);
        for (std::size_t m = 0; m < latent_; ++m) {
          du(p, m) += up_grad * dgu[m];
          du(q, m) -= up_grad * dgu[m];
        }
        if (blk.shape_offset != k_npos)
          dshape += up_grad * prim_shape_grad_cached(i, shape, u[i].row(p),
                                                     u[i].row(q), h[i](p, q));
      }
    if (blk.shape_offset != k_npos) grad[blk.shape_offset] += dshape;
    // dL/dW_i = dU^T X ; dL/db_i = column sums of dU.
    for (std::size_t m = 0; m < latent_; ++m) {
      double db = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        db += du(p, m);
        for (std::size_t j = 0; j < dim_; ++j)
          grad[blk.w_offset + m * dim_ + j] += du(p, m) * x(p, j);
      }
      grad[blk.b_offset + m] += db;
    }
  }
}

std::unique_ptr<Kernel::FitWorkspace> NeukKernel::fit_workspace(
    const la::Matrix& x) const {
  auto ws = std::make_unique<NeukFitWs>();
  const std::size_t n = x.rows();
  ws->x = &x;
  ws->n = n;
  const std::size_t pairs = n * (n - 1) / 2;
  ws->u.resize(prims_.size());
  ws->h.assign(prims_.size(), std::vector<double>(pairs));
  ws->aux.resize(prims_.size());
  for (std::size_t i = 0; i < prims_.size(); ++i) {
    const std::size_t stride = prims_[i].type == Primitive::rq       ? 2
                               : prims_[i].type == Primitive::periodic ? latent_
                                                                        : 0;
    ws->aux[i].resize(pairs * stride);
  }
  ws->kvg.resize(pairs);
  ws->dsum.resize(pairs);
  ws->du = la::Matrix(n, latent_);
  ws->rowred = la::Matrix(n, 1 + prims_.size());
  return ws;
}

void NeukKernel::matrix_ws(FitWorkspace& base, la::Matrix& k) const {
  auto& ws = static_cast<NeukFitWs&>(base);
  const std::size_t n = ws.n;
  if (k.rows() != n || k.cols() != n) k = la::Matrix(n, n);
  const double c = mix_bias();
  std::vector<double> a(prims_.size());
  std::vector<double> shape(prims_.size());
  for (std::size_t i = 0; i < prims_.size(); ++i) {
    a[i] = mix_weight(i);
    shape[i] = shape_value(i);
    // The latent embedding: once per hyper-step, shared with backward_ws.
    transform_into(i, *ws.x, ws.u[i]);
  }

  // Diagonal: every primitive is exactly 1 at zero distance.
  double s_diag = c;
  for (std::size_t i = 0; i < prims_.size(); ++i) s_diag += a[i];
  const double k_diag = std::exp(std::min(s_diag, k_log_clamp));
  ws.kg_diag = s_diag < k_log_clamp ? k_diag : 0.0;

  const std::size_t n_prims = prims_.size();
  util::parallel_for(n, [&](std::size_t p0, std::size_t p1) {
    std::vector<const double*> urow_p(n_prims);
    for (std::size_t p = p0; p < p1; ++p) {
      k(p, p) = k_diag;
      for (std::size_t i = 0; i < n_prims; ++i)
        urow_p[i] = ws.u[i].data().data() + p * latent_;
      std::size_t t = ws.pair_base(p);
      for (std::size_t q = p + 1; q < n; ++q, ++t) {
        double s = c;
        for (std::size_t i = 0; i < n_prims; ++i) {
          const std::span<const double> up{urow_p[i], latent_};
          const std::span<const double> uq{
              ws.u[i].data().data() + q * latent_, latent_};
          double hv;
          switch (prims_[i].type) {
            case Primitive::rbf:
              hv = std::exp(-la::sq_dist(up, uq));
              break;
            case Primitive::rq: {
              const double r2 = la::sq_dist(up, uq);
              const double lb = std::log1p(r2 / (2.0 * shape[i]));
              // base^-1 is just a division at the default alpha = 1 (same
              // fast path as prim_value_shaped); the log is cached for the
              // shape gradient either way.
              hv = shape[i] == 1.0 ? 1.0 / (1.0 + 0.5 * r2)
                                   : std::exp(-shape[i] * lb);
              double* aux = ws.aux[i].data() + t * 2;
              aux[0] = r2;
              aux[1] = lb;
              break;
            }
            case Primitive::periodic: {
              const double inv_p = M_PI / shape[i];
              double e = 0.0;
              double* aux = ws.aux[i].data() + t * latent_;
              for (std::size_t m = 0; m < latent_; ++m) {
                const double arg = (up[m] - uq[m]) * inv_p;
                double s1;
                double c1;
                fast_sincos(arg, s1, c1);
                e += s1 * s1;
                aux[m] = 2.0 * s1 * c1;  // sin(2 arg), reused by backward_ws
              }
              hv = std::exp(-2.0 * e);
              break;
            }
            default:
              throw std::logic_error("NeukKernel::matrix_ws: unknown primitive");
          }
          ws.h[i][t] = hv;
          s += a[i] * hv;
        }
        const double kv = std::exp(std::min(s, k_log_clamp));
        k(p, q) = kv;
        k(q, p) = kv;
        ws.kvg[t] = s < k_log_clamp ? kv : 0.0;
      }
    }
  });
}

void NeukKernel::backward_ws(FitWorkspace& base, const la::Matrix& dk,
                             std::span<double> grad) const {
  auto& ws = static_cast<NeukFitWs&>(base);
  if (grad.size() != params_.size())
    throw std::invalid_argument("NeukKernel::backward_ws: grad size mismatch");
  const std::size_t n = ws.n;
  const std::size_t width = 1 + prims_.size();
  const la::Matrix& x = *ws.x;

  // dL/dS = dL/dK * K (cached, zero where the exp clamp was active).  Every
  // later consumer only needs the symmetric pair sums ds(p,q) + ds(q,p), so
  // one packed upper-triangle array carries the whole gradient-through-exp,
  // along with row partials of ds_sum and of each primitive's <dS, H_i>
  // (reduced in row order: bit-identical at any thread count).
  util::parallel_for(n, [&](std::size_t p0, std::size_t p1) {
    for (std::size_t p = p0; p < p1; ++p) {
      double* red = ws.rowred.data().data() + p * width;
      const double dd = dk(p, p) * ws.kg_diag;
      red[0] = dd;
      for (std::size_t i = 0; i < prims_.size(); ++i)
        red[1 + i] = dd;  // h_i(p, p) = 1
      std::size_t t = ws.pair_base(p);
      for (std::size_t q = p + 1; q < n; ++q, ++t) {
        const double dsv = (dk(p, q) + dk(q, p)) * ws.kvg[t];
        ws.dsum[t] = dsv;
        red[0] += dsv;
        for (std::size_t i = 0; i < prims_.size(); ++i)
          red[1 + i] += dsv * ws.h[i][t];
      }
    }
  });
  double ds_sum = 0.0;
  std::vector<double> dot_dh(prims_.size(), 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    const double* red = ws.rowred.data().data() + p * width;
    ds_sum += red[0];
    for (std::size_t i = 0; i < prims_.size(); ++i) dot_dh[i] += red[1 + i];
  }

  grad[bk_offset_] += ds_sum;
  for (std::size_t j = 0; j < mix_width_; ++j) grad[bz_offset_ + j] += ds_sum;

  for (std::size_t i = 0; i < prims_.size(); ++i) {
    const auto& blk = prims_[i];
    const double a = mix_weight(i);
    const double shape = shape_value(i);
    for (std::size_t j = 0; j < mix_width_; ++j) {
      const std::size_t idx = wz_offset_ + j * prims_.size() + i;
      grad[idx] += dot_dh[i] * softplus_deriv(params_[idx]);
    }

    // Pair loop over the upper triangle, entirely from the forward caches:
    // h, the RQ r2/log and the periodic sin(2 arg) values make this pass
    // free of exp/pow/sin.  Same visit order as the reference backward().
    ws.du.data().assign(ws.du.data().size(), 0.0);
    double dshape = 0.0;
    const la::Matrix& u = ws.u[i];
    const std::vector<double>& h = ws.h[i];
    const double inv_shape = 1.0 / shape;
    for (std::size_t p = 0; p < n; ++p) {
      double* dup = ws.du.data().data() + p * latent_;
      std::size_t t = ws.pair_base(p);
      for (std::size_t q = p + 1; q < n; ++q, ++t) {
        const double up_grad = a * ws.dsum[t];
        if (up_grad == 0.0) continue;
        const double hv = h[t];
        const double* urow_p = u.data().data() + p * latent_;
        const double* urow_q = u.data().data() + q * latent_;
        double* duq = ws.du.data().data() + q * latent_;
        switch (blk.type) {
          case Primitive::rbf: {
            const double coef = -2.0 * hv * up_grad;
            for (std::size_t m = 0; m < latent_; ++m) {
              const double gm = coef * (urow_p[m] - urow_q[m]);
              dup[m] += gm;
              duq[m] -= gm;
            }
            break;
          }
          case Primitive::rq: {
            const double* aux = ws.aux[i].data() + t * 2;
            const double tt = aux[0] / (2.0 * shape);
            const double base = 1.0 + tt;
            // dh/dr2 = -0.5 h / base; chain through r2 -> u.
            const double coef = -hv / base * up_grad;
            for (std::size_t m = 0; m < latent_; ++m) {
              const double gm = coef * (urow_p[m] - urow_q[m]);
              dup[m] += gm;
              duq[m] -= gm;
            }
            dshape += up_grad * hv * (-aux[1] + tt / base) * shape;
            break;
          }
          case Primitive::periodic: {
            const double* s2v = ws.aux[i].data() + t * latent_;
            const double coef = -2.0 * hv * M_PI * inv_shape * up_grad;
            double sd = 0.0;  // sum_m sin(2 arg_m) * (u_p - u_q)_m
            for (std::size_t m = 0; m < latent_; ++m) {
              dup[m] += coef * s2v[m];
              duq[m] -= coef * s2v[m];
              sd += s2v[m] * (urow_p[m] - urow_q[m]);
            }
            // de/dp summed over m, chained to log p (see
            // prim_shape_grad_cached): collapses to 2 h pi/p * sd.
            dshape += up_grad * 2.0 * hv * M_PI * inv_shape * sd;
            break;
          }
        }
      }
    }
    if (blk.shape_offset != k_npos) grad[blk.shape_offset] += dshape;
    // dL/dW_i = dU^T X ; dL/db_i = column sums of dU.
    for (std::size_t m = 0; m < latent_; ++m) {
      double db = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        const double dupm = ws.du(p, m);
        db += dupm;
        if (dupm == 0.0) continue;
        double* wg = grad.data() + blk.w_offset + m * dim_;
        const double* xp = x.data().data() + p * dim_;
        for (std::size_t j = 0; j < dim_; ++j) wg[j] += dupm * xp[j];
      }
      grad[blk.b_offset + m] += db;
    }
  }
}

la::Matrix NeukKernel::input_grad(std::span<const double> x,
                                  const la::Matrix& x2) const {
  const std::size_t n2 = x2.rows();
  la::Matrix out(n2, dim_);
  const double c = mix_bias();

  std::vector<la::Vector> ux(prims_.size());
  std::vector<la::Matrix> u2(prims_.size());
  std::vector<double> a(prims_.size());
  std::vector<double> shape(prims_.size());
  for (std::size_t i = 0; i < prims_.size(); ++i) {
    a[i] = mix_weight(i);
    shape[i] = shape_value(i);
    ux[i] = transform_point(i, x);
    u2[i] = transform(i, x2);
  }
  for (std::size_t q = 0; q < n2; ++q) {
    double s = c;
    for (std::size_t i = 0; i < prims_.size(); ++i)
      s += a[i] * prim_value_shaped(i, shape[i], ux[i], u2[i].row(q));
    const double kv = s < k_log_clamp ? std::exp(s) : 0.0;
    for (std::size_t i = 0; i < prims_.size(); ++i) {
      const la::Vector dgu = prim_input_grad(i, ux[i], u2[i].row(q));
      const auto& blk = prims_[i];
      // chain: dk/dx = k * a_i * W_i^T (dh/du).
      for (std::size_t m = 0; m < latent_; ++m) {
        const double coeff = kv * a[i] * dgu[m];
        if (coeff == 0.0) continue;
        const double* w = params_.data() + blk.w_offset + m * dim_;
        for (std::size_t j = 0; j < dim_; ++j) out(q, j) += coeff * w[j];
      }
    }
  }
  return out;
}

std::unique_ptr<Kernel> NeukKernel::clone() const {
  return std::make_unique<NeukKernel>(*this);
}

}  // namespace kato::kern

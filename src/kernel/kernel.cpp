#include "kernel/kernel.hpp"

namespace kato::kern {

namespace {

/// Fallback workspace for kernels without a fused path: just remembers the
/// training inputs and forwards to the plain matrix()/backward() pair.
class GenericFitWorkspace final : public Kernel::FitWorkspace {
 public:
  explicit GenericFitWorkspace(const la::Matrix& x) : x_(&x) {}
  const la::Matrix& x() const { return *x_; }

 private:
  const la::Matrix* x_;
};

}  // namespace

std::unique_ptr<Kernel::FitWorkspace> Kernel::fit_workspace(
    const la::Matrix& x) const {
  return std::make_unique<GenericFitWorkspace>(x);
}

void Kernel::matrix_ws(FitWorkspace& ws, la::Matrix& k) const {
  k = matrix(static_cast<const GenericFitWorkspace&>(ws).x());
}

void Kernel::backward_ws(FitWorkspace& ws, const la::Matrix& dk,
                         std::span<double> grad) const {
  backward(static_cast<const GenericFitWorkspace&>(ws).x(), dk, grad);
}

}  // namespace kato::kern

#pragma once
// Classic stationary ARD kernels: RBF, Rational Quadratic, Matern 3/2 & 5/2,
// and an ARD Periodic kernel.  These serve as (a) baselines for the Fig. 1
// kernel assessment and (b) surrogate options in ablation benches.
//
// Parameterization (all unconstrained, log space):
//   params[0]      = log amplitude^2 (sigma^2)
//   params[1..d]   = log ARD weights w_j  (k uses  r2 = sum_j w_j (x_j-x'_j)^2)
//   params[d+1...] = kernel-specific shape parameters (RQ alpha, periodic p).

#include "kernel/kernel.hpp"

namespace kato::kern {

enum class StationaryType { rbf, rq, matern32, matern52 };

/// ARD kernels of the form k = sigma^2 * g(r2).
class StationaryArd final : public Kernel {
 public:
  StationaryArd(StationaryType type, std::size_t dim);

  std::string name() const override;
  std::size_t input_dim() const override { return dim_; }
  std::size_t n_params() const override { return params_.size(); }
  std::span<double> params() override { return params_; }
  std::span<const double> params() const override { return params_; }

  la::Matrix cross(const la::Matrix& x1, const la::Matrix& x2) const override;
  /// Symmetric K(X, X): upper triangle only, mirrored (bit-identical values).
  la::Matrix matrix(const la::Matrix& x) const override;
  double diag(std::span<const double> x) const override;
  void backward(const la::Matrix& x, const la::Matrix& dk,
                std::span<double> grad) const override;
  la::Matrix input_grad(std::span<const double> x,
                        const la::Matrix& x2) const override;
  std::unique_ptr<Kernel> clone() const override;

  /// Fused training path: the workspace precomputes the pairwise squared
  /// coordinate deltas once per fit (they do not depend on hyperparameters),
  /// matrix_ws caches r2 and g(r2) per pair, and backward_ws recovers every
  /// dg/dr2 from the cached g — the gradient pass is transcendental-free for
  /// RBF and the Materns and touches the upper triangle only.
  std::unique_ptr<FitWorkspace> fit_workspace(const la::Matrix& x) const override;
  void matrix_ws(FitWorkspace& ws, la::Matrix& k) const override;
  void backward_ws(FitWorkspace& ws, const la::Matrix& dk,
                   std::span<double> grad) const override;

 private:
  double amplitude2() const;
  double weight(std::size_t j) const;
  /// All ARD weights exponentiated once (the per-pair loops reuse them).
  std::vector<double> weights() const;
  double alpha() const;  // RQ only

  /// g(r2) and dg/dr2 for the configured type.
  double g(double r2) const;
  double dg_dr2(double r2) const;
  /// dg/dalpha (RQ only; 0 otherwise).
  double dg_dalpha(double r2) const;

  StationaryType type_;
  std::size_t dim_;
  std::vector<double> params_;
};

/// ARD periodic kernel: k = sigma^2 exp(-2 sum_j w_j sin^2(pi (x_j-x'_j)/p)).
class PeriodicArd final : public Kernel {
 public:
  explicit PeriodicArd(std::size_t dim);

  std::string name() const override { return "periodic"; }
  std::size_t input_dim() const override { return dim_; }
  std::size_t n_params() const override { return params_.size(); }
  std::span<double> params() override { return params_; }
  std::span<const double> params() const override { return params_; }

  la::Matrix cross(const la::Matrix& x1, const la::Matrix& x2) const override;
  double diag(std::span<const double> x) const override;
  void backward(const la::Matrix& x, const la::Matrix& dk,
                std::span<double> grad) const override;
  la::Matrix input_grad(std::span<const double> x,
                        const la::Matrix& x2) const override;
  std::unique_ptr<Kernel> clone() const override;

 private:
  double amplitude2() const;
  double weight(std::size_t j) const;
  double period() const;

  std::size_t dim_;
  std::vector<double> params_;
};

}  // namespace kato::kern

#pragma once
// Neural Kernel (Neuk) — paper Sec. 3.1, Eqs. (8)-(10).
//
// Architecture (one Neuk unit, as used in the paper):
//   u_i   = W_i x + b_i                    (per-primitive linear transform)
//   H_i   = h_i(u_i, u_i')                 (primitive kernels: RBF, RQ, PER)
//   z_j   = sum_i softplus(w_z[j,i]) H_i + b_z[j]   (mixing linear layer)
//   k     = exp( sum_j z_j + b_k )         (Eq. 10)
//
// Positive semidefiniteness: each primitive is a valid kernel; composing with
// the linear input map preserves PSD; nonnegative mixing weights (enforced by
// softplus, as in the NKN construction of Sun et al. 2018 that the paper
// follows) keep the sum PSD; and elementwise exp of a PSD kernel is PSD by
// the Schur product theorem applied to its power series.  The bias terms only
// contribute a positive global scale exp(b).

#include "kernel/kernel.hpp"
#include "util/rng.hpp"

namespace kato::kern {

enum class Primitive { rbf, rq, periodic };

struct NeukConfig {
  std::vector<Primitive> primitives{Primitive::rbf, Primitive::rq,
                                    Primitive::periodic};
  std::size_t latent_dim = 4;  ///< d_h: rows of each W_i (0 = min(dim, 4))
  std::size_t mix_width = 2;   ///< d_l: width of the mixing layer z
};

class NeukKernel final : public Kernel {
 public:
  NeukKernel(std::size_t dim, const NeukConfig& config, util::Rng& rng);

  std::string name() const override { return "neuk"; }
  std::size_t input_dim() const override { return dim_; }
  std::size_t n_params() const override { return params_.size(); }
  std::span<double> params() override { return params_; }
  std::span<const double> params() const override { return params_; }

  la::Matrix cross(const la::Matrix& x1, const la::Matrix& x2) const override;
  /// Symmetric K(X, X): evaluates the upper triangle only and mirrors it
  /// (every primitive is exactly symmetric), halving the training-path cost.
  la::Matrix matrix(const la::Matrix& x) const override;
  double diag(std::span<const double> x) const override;
  void backward(const la::Matrix& x, const la::Matrix& dk,
                std::span<double> grad) const override;
  la::Matrix input_grad(std::span<const double> x,
                        const la::Matrix& x2) const override;
  std::unique_ptr<Kernel> clone() const override;

  /// Fused training path.  matrix_ws computes each primitive's latent
  /// embedding U_i = X W_i^T + b_i once per hyper-step (shared with the
  /// gradient pass instead of being recomputed there), caches every
  /// primitive value h_i(p, q) plus the per-pair quantities the gradients
  /// need (RQ: r2 and log1p(r2/2a); periodic: sin(2 arg) per latent
  /// coordinate, obtained from the forward sincos), and keeps the clamped
  /// exp(S) values — backward_ws then runs without a single exp/pow/sin.
  std::unique_ptr<FitWorkspace> fit_workspace(const la::Matrix& x) const override;
  void matrix_ws(FitWorkspace& ws, la::Matrix& k) const override;
  void backward_ws(FitWorkspace& ws, const la::Matrix& dk,
                   std::span<double> grad) const override;

  std::size_t n_primitives() const { return prims_.size(); }

 private:
  struct PrimBlock {
    Primitive type;
    std::size_t w_offset;      ///< W_i, row-major latent x dim
    std::size_t b_offset;      ///< b_i, latent
    std::size_t shape_offset;  ///< log alpha (RQ) / log p (PER); npos if none
  };

  /// Transform all rows of x through primitive i: U = X W^T + b.
  la::Matrix transform(std::size_t i, const la::Matrix& x) const;
  /// Allocation-free variant writing into a caller-owned buffer.
  void transform_into(std::size_t i, const la::Matrix& x, la::Matrix& u) const;
  la::Vector transform_point(std::size_t i, std::span<const double> x) const;

  /// exp(shape param) for primitive i (alpha for RQ, period for PER; 1.0 for
  /// shapeless primitives) — hoisted out of the O(n^2) pair loops so the
  /// per-pair cost is one transcendental, not three.
  double shape_value(std::size_t i) const;
  /// prim_value with the shape transcendental precomputed by the caller.
  double prim_value_shaped(std::size_t i, double shape,
                           std::span<const double> u,
                           std::span<const double> v) const;
  /// d h / d u (first argument) between transformed points.
  la::Vector prim_input_grad(std::size_t i, std::span<const double> u,
                             std::span<const double> v) const;
  /// Allocation-free variant reusing the cached primitive value h and the
  /// hoisted shape (exp of the shape param) — the backward() inner loop
  /// avoids the heap traffic and every exp/pow of the generic path.
  void prim_input_grad_cached(std::size_t i, double shape,
                              std::span<const double> u,
                              std::span<const double> v, double h,
                              std::span<double> out) const;
  /// d h / d (log shape param), reusing the cached h and hoisted shape;
  /// 0 when the primitive has none.
  double prim_shape_grad_cached(std::size_t i, double shape,
                                std::span<const double> u,
                                std::span<const double> v, double h) const;

  /// Effective mixing weight a_i = sum_j softplus(w_z[j,i]).
  double mix_weight(std::size_t i) const;
  /// Constant part c = sum_j b_z[j] + b_k (enters k as global scale exp(c)).
  double mix_bias() const;

  std::size_t dim_;
  std::size_t latent_;
  std::size_t mix_width_;
  std::vector<PrimBlock> prims_;
  std::size_t wz_offset_ = 0;  ///< mixing weights, row-major mix_width x n_prims
  std::size_t bz_offset_ = 0;  ///< b_z, mix_width
  std::size_t bk_offset_ = 0;  ///< scalar b_k
  std::vector<double> params_;

  static constexpr double k_log_clamp = 30.0;  ///< guard on exp argument
  static constexpr std::size_t k_npos = static_cast<std::size_t>(-1);
};

}  // namespace kato::kern

#pragma once
// Kernel interface for the GP stack.
//
// Kernels expose three things beyond evaluation:
//  * params()   — a flat unconstrained parameter vector (positive quantities
//                 are stored in log space) so a generic optimizer can train
//                 any kernel;
//  * backward() — accumulate dL/dparams given the upstream gradient dL/dK of
//                 a scalar loss w.r.t. the kernel matrix.  The GP's marginal
//                 likelihood gradient dL/dK is analytic (see gp.cpp), so the
//                 chain rule splits cleanly at the kernel-matrix boundary;
//  * input_grad() — d k(x, x2_j)/dx, needed by KAT-GP to backpropagate
//                 through the source GP's posterior into the encoder.
//
// For the training loop there is additionally a fit-scoped workspace path
// (fit_workspace / matrix_ws / backward_ws): the workspace is bound once per
// GaussianProcess::fit() to a fixed training matrix, precomputes everything
// that does not depend on the hyperparameters (pairwise input deltas), and
// carries the per-pair forward intermediates from matrix_ws into backward_ws
// so one LML iteration evaluates every transcendental exactly once.  The
// fused path must agree with the plain matrix()/backward() pair to 1e-12;
// tests/perf_regression_test.cpp pins this.
//
// All gradients are finite-difference checked in tests/kernel_test.cpp.

#include <memory>
#include <span>
#include <string>

#include "linalg/matrix.hpp"

namespace kato::kern {

class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual std::string name() const = 0;
  virtual std::size_t input_dim() const = 0;
  virtual std::size_t n_params() const = 0;
  virtual std::span<double> params() = 0;
  virtual std::span<const double> params() const = 0;

  /// Cross-covariance K(X1, X2), shape n1 x n2.
  virtual la::Matrix cross(const la::Matrix& x1, const la::Matrix& x2) const = 0;

  /// Symmetric covariance K(X, X).  Default forwards to cross().
  virtual la::Matrix matrix(const la::Matrix& x) const { return cross(x, x); }

  /// k(x, x) for a single point.
  virtual double diag(std::span<const double> x) const = 0;

  /// Accumulate dL/dparams into `grad` given dL/dK for K(X, X).
  virtual void backward(const la::Matrix& x, const la::Matrix& dk,
                        std::span<double> grad) const = 0;

  /// Rows j = d k(x, x2_j) / dx; shape n2 x d.
  virtual la::Matrix input_grad(std::span<const double> x,
                                const la::Matrix& x2) const = 0;

  virtual std::unique_ptr<Kernel> clone() const = 0;

  // --- Fit-scoped fused value+grad path (see file comment) ---

  /// Opaque training-loop scratch state.  Owns reusable heap buffers and the
  /// per-pair caches shared between matrix_ws and backward_ws.
  class FitWorkspace {
   public:
    virtual ~FitWorkspace() = default;
  };

  /// Bind a workspace to training inputs `x`, which must outlive the
  /// workspace and stay unchanged.  Param-independent precomputation
  /// (pairwise deltas) happens here, once per fit.
  virtual std::unique_ptr<FitWorkspace> fit_workspace(const la::Matrix& x) const;

  /// Fused forward: fill k = K(x, x) (k is resized by the callee) and cache
  /// the per-pair intermediates backward_ws needs.  Valid for the current
  /// parameter values only — call again after every parameter update.
  virtual void matrix_ws(FitWorkspace& ws, la::Matrix& k) const;

  /// Accumulate dL/dparams into `grad` given dL/dK, reusing the forward
  /// intermediates cached by the matrix_ws call made at the same parameters.
  virtual void backward_ws(FitWorkspace& ws, const la::Matrix& dk,
                           std::span<double> grad) const;
};

/// Numerically safe softplus and its derivative (used for positivity
/// constraints on Neuk mixing weights).
double softplus(double x);
double softplus_deriv(double x);

}  // namespace kato::kern

#pragma once
// Kernel interface for the GP stack.
//
// Kernels expose three things beyond evaluation:
//  * params()   — a flat unconstrained parameter vector (positive quantities
//                 are stored in log space) so a generic optimizer can train
//                 any kernel;
//  * backward() — accumulate dL/dparams given the upstream gradient dL/dK of
//                 a scalar loss w.r.t. the kernel matrix.  The GP's marginal
//                 likelihood gradient dL/dK is analytic (see gp.cpp), so the
//                 chain rule splits cleanly at the kernel-matrix boundary;
//  * input_grad() — d k(x, x2_j)/dx, needed by KAT-GP to backpropagate
//                 through the source GP's posterior into the encoder.
//
// All gradients are finite-difference checked in tests/kernel_test.cpp.

#include <memory>
#include <span>
#include <string>

#include "linalg/matrix.hpp"

namespace kato::kern {

class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual std::string name() const = 0;
  virtual std::size_t input_dim() const = 0;
  virtual std::size_t n_params() const = 0;
  virtual std::span<double> params() = 0;
  virtual std::span<const double> params() const = 0;

  /// Cross-covariance K(X1, X2), shape n1 x n2.
  virtual la::Matrix cross(const la::Matrix& x1, const la::Matrix& x2) const = 0;

  /// Symmetric covariance K(X, X).  Default forwards to cross().
  virtual la::Matrix matrix(const la::Matrix& x) const { return cross(x, x); }

  /// k(x, x) for a single point.
  virtual double diag(std::span<const double> x) const = 0;

  /// Accumulate dL/dparams into `grad` given dL/dK for K(X, X).
  virtual void backward(const la::Matrix& x, const la::Matrix& dk,
                        std::span<double> grad) const = 0;

  /// Rows j = d k(x, x2_j) / dx; shape n2 x d.
  virtual la::Matrix input_grad(std::span<const double> x,
                                const la::Matrix& x2) const = 0;

  virtual std::unique_ptr<Kernel> clone() const = 0;
};

/// Numerically safe softplus and its derivative (used for positivity
/// constraints on Neuk mixing weights).
double softplus(double x);
double softplus_deriv(double x);

}  // namespace kato::kern

#include "nn/mlp.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace kato::nn {

double activate(Activation a, double x) {
  switch (a) {
    case Activation::identity: return x;
    case Activation::sigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::tanh: return std::tanh(x);
  }
  throw std::logic_error("activate: unknown activation");
}

double activate_deriv(Activation a, double x) {
  switch (a) {
    case Activation::identity: return 1.0;
    case Activation::sigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-x));
      return s * (1.0 - s);
    }
    case Activation::tanh: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
  }
  throw std::logic_error("activate_deriv: unknown activation");
}

double activate_second_deriv(Activation a, double x) {
  switch (a) {
    case Activation::identity: return 0.0;
    case Activation::sigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-x));
      return s * (1.0 - s) * (1.0 - 2.0 * s);
    }
    case Activation::tanh: {
      const double t = std::tanh(x);
      return -2.0 * t * (1.0 - t * t);
    }
  }
  throw std::logic_error("activate_second_deriv: unknown activation");
}

Mlp::Mlp(std::vector<std::size_t> layer_sizes, Activation hidden_act,
         util::Rng& rng, Activation output_act)
    : sizes_(std::move(layer_sizes)), act_(hidden_act), out_act_(output_act) {
  if (sizes_.size() < 2)
    throw std::invalid_argument("Mlp: need at least input and output sizes");
  std::size_t offset = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    LayerView view;
    view.in = sizes_[l];
    view.out = sizes_[l + 1];
    view.w_offset = offset;
    offset += view.in * view.out;
    view.b_offset = offset;
    offset += view.out;
    layers_.push_back(view);
  }
  params_.resize(offset);
  grads_.assign(offset, 0.0);
  for (const auto& l : layers_) {
    const double bound =
        std::sqrt(6.0 / static_cast<double>(l.in + l.out));
    for (std::size_t i = 0; i < l.in * l.out; ++i)
      params_[l.w_offset + i] = rng.uniform(-bound, bound);
    for (std::size_t i = 0; i < l.out; ++i) params_[l.b_offset + i] = 0.0;
  }
}

void Mlp::zero_grad() { grads_.assign(grads_.size(), 0.0); }

la::Vector Mlp::apply_linear(const LayerView& l, const la::Vector& x) const {
  la::Vector y(l.out);
  for (std::size_t i = 0; i < l.out; ++i) {
    double s = params_[l.b_offset + i];
    const double* w = params_.data() + l.w_offset + i * l.in;
    for (std::size_t j = 0; j < l.in; ++j) s += w[j] * x[j];
    y[i] = s;
  }
  return y;
}

la::Vector Mlp::forward(const la::Vector& x, Cache& cache) const {
  if (x.size() != in_dim()) throw std::invalid_argument("Mlp::forward: bad input dim");
  cache.inputs.clear();
  cache.pre_act.clear();
  la::Vector h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    cache.inputs.push_back(h);
    la::Vector z = apply_linear(layers_[l], h);
    cache.pre_act.push_back(z);
    const Activation act = layer_act(l);
    if (act != Activation::identity)
      for (auto& v : z) v = activate(act, v);
    h = std::move(z);
  }
  return h;
}

la::Vector Mlp::forward(const la::Vector& x) const {
  Cache scratch;
  return forward(x, scratch);
}

la::Vector Mlp::backward(const Cache& cache, const la::Vector& dy) {
  if (cache.inputs.size() != layers_.size())
    throw std::invalid_argument("Mlp::backward: cache does not match network");
  la::Vector delta = dy;  // gradient w.r.t. current layer's (post-act) output
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& l = layers_[li];
    const Activation act = layer_act(li);
    if (act != Activation::identity) {
      const auto& z = cache.pre_act[li];
      for (std::size_t i = 0; i < l.out; ++i)
        delta[i] *= activate_deriv(act, z[i]);
    }
    const auto& input = cache.inputs[li];
    for (std::size_t i = 0; i < l.out; ++i) {
      grads_[l.b_offset + i] += delta[i];
      double* gw = grads_.data() + l.w_offset + i * l.in;
      for (std::size_t j = 0; j < l.in; ++j) gw[j] += delta[i] * input[j];
    }
    la::Vector dx(l.in, 0.0);
    for (std::size_t i = 0; i < l.out; ++i) {
      const double* w = params_.data() + l.w_offset + i * l.in;
      for (std::size_t j = 0; j < l.in; ++j) dx[j] += delta[i] * w[j];
    }
    delta = std::move(dx);
  }
  return delta;  // dL/dx
}

la::Matrix Mlp::jacobian(const la::Vector& x) const {
  Cache cache;
  (void)forward(x, cache);
  // J = W_last * diag(act') * W_{last-1} * ... built back-to-front.
  la::Matrix j;  // current product, dims: out_dim x (current layer input)
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& l = layers_[li];
    la::Matrix w(l.out, l.in);
    for (std::size_t i = 0; i < l.out; ++i)
      for (std::size_t jj = 0; jj < l.in; ++jj)
        w(i, jj) = params_[l.w_offset + i * l.in + jj];
    const Activation act = layer_act(li);
    if (li + 1 == layers_.size()) {
      j = std::move(w);
      if (act != Activation::identity) {
        // Output activation scales the rows of the last weight matrix.
        const auto& z = cache.pre_act[li];
        for (std::size_t r = 0; r < j.rows(); ++r) {
          const double d = activate_deriv(act, z[r]);
          for (std::size_t c = 0; c < j.cols(); ++c) j(r, c) *= d;
        }
      }
    } else {
      // Scale columns of the running product by the activation derivative
      // before multiplying in this layer's weights.
      const auto& z = cache.pre_act[li];
      for (std::size_t c = 0; c < l.out; ++c) {
        const double d = activate_deriv(act, z[c]);
        for (std::size_t r = 0; r < j.rows(); ++r) j(r, c) *= d;
      }
      j = la::matmul(j, w);
    }
  }
  return j;
}

Adam::Adam(std::size_t n_params, double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      m_(n_params, 0.0), v_(n_params, 0.0) {}

void Adam::step(std::span<double> params, std::span<const double> grads) {
  if (params.size() != m_.size() || grads.size() != m_.size())
    throw std::invalid_argument("Adam::step: size mismatch");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double g = grads[i];
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * g;
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * g * g;
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

void Adam::reset() {
  m_.assign(m_.size(), 0.0);
  v_.assign(v_.size(), 0.0);
  t_ = 0;
}

std::vector<double> numeric_gradient(const std::function<double()>& f,
                                     std::span<double> params, double h) {
  std::vector<double> g(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double saved = params[i];
    params[i] = saved + h;
    const double fp = f();
    params[i] = saved - h;
    const double fm = f();
    params[i] = saved;
    g[i] = (fp - fm) / (2.0 * h);
  }
  return g;
}

}  // namespace kato::nn

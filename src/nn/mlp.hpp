#pragma once
// Minimal multi-layer perceptron with explicit forward/backward passes.
//
// KAT-GP (paper Sec. 3.2) uses two small MLPs: an encoder mapping target
// design variables into the source design space and a decoder mapping source
// GP outputs to target outputs, both with the linear(d_in x 32)-sigmoid-
// linear(32 x d_out) structure given in the paper.  The Delta method (Eq. 11)
// also needs the decoder's analytic Jacobian, provided here.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace kato::nn {

enum class Activation { identity, sigmoid, tanh };

double activate(Activation a, double x);
double activate_deriv(Activation a, double x);  // derivative w.r.t. pre-activation
double activate_second_deriv(Activation a, double x);

/// Fully connected network: linear -> act -> linear -> act ... -> linear
/// [-> output activation].  The paper's encoder/decoder use a linear output;
/// the KAT-GP encoder additionally squashes its output with a sigmoid so the
/// encoded point stays inside the source design box (the source GP has no
/// gradient signal far outside its data).
class Mlp {
 public:
  /// Cached intermediates of one forward pass, consumed by backward().
  struct Cache {
    std::vector<la::Vector> inputs;   ///< input to each linear layer
    std::vector<la::Vector> pre_act;  ///< pre-activation of each layer
  };

  /// layer_sizes = {d_in, h1, ..., d_out}; weights get Xavier-uniform init.
  Mlp(std::vector<std::size_t> layer_sizes, Activation hidden_act,
      util::Rng& rng, Activation output_act = Activation::identity);

  std::size_t in_dim() const { return sizes_.front(); }
  std::size_t out_dim() const { return sizes_.back(); }
  std::size_t n_params() const { return params_.size(); }

  std::span<double> params() { return params_; }
  std::span<const double> params() const { return params_; }
  std::span<double> grads() { return grads_; }
  void zero_grad();

  /// Forward pass; fills `cache` for a subsequent backward().
  la::Vector forward(const la::Vector& x, Cache& cache) const;
  /// Forward pass without caching.
  la::Vector forward(const la::Vector& x) const;

  /// Backpropagate an upstream gradient dL/dy.  Accumulates parameter
  /// gradients into grads() and returns dL/dx.
  la::Vector backward(const Cache& cache, const la::Vector& dy);

  /// Analytic Jacobian dy/dx evaluated at x (out_dim x in_dim).
  la::Matrix jacobian(const la::Vector& x) const;

  // Direct views of a layer's weights/bias and their gradient blocks.
  // Needed by KAT-GP, whose Delta-method covariance gradient addresses the
  // decoder's weight matrices individually.
  std::size_t n_layers() const { return layers_.size(); }
  std::size_t layer_in(std::size_t l) const { return layers_.at(l).in; }
  std::size_t layer_out(std::size_t l) const { return layers_.at(l).out; }
  Activation activation_of(std::size_t l) const { return layer_act(l); }
  /// Weight block of layer l, row-major out x in.
  std::span<double> weight(std::size_t l) {
    return {params_.data() + layers_.at(l).w_offset, layers_.at(l).in * layers_.at(l).out};
  }
  std::span<const double> weight(std::size_t l) const {
    return {params_.data() + layers_.at(l).w_offset, layers_.at(l).in * layers_.at(l).out};
  }
  std::span<double> bias(std::size_t l) {
    return {params_.data() + layers_.at(l).b_offset, layers_.at(l).out};
  }
  std::span<double> weight_grad(std::size_t l) {
    return {grads_.data() + layers_.at(l).w_offset, layers_.at(l).in * layers_.at(l).out};
  }
  std::span<double> bias_grad(std::size_t l) {
    return {grads_.data() + layers_.at(l).b_offset, layers_.at(l).out};
  }

 private:
  struct LayerView {
    std::size_t w_offset;  ///< into params_: weight block, row-major out x in
    std::size_t b_offset;  ///< into params_: bias block
    std::size_t in;
    std::size_t out;
  };

  la::Vector apply_linear(const LayerView& l, const la::Vector& x) const;

  /// Activation applied after linear layer `li`.
  Activation layer_act(std::size_t li) const {
    return li + 1 < layers_.size() ? act_ : out_act_;
  }

  std::vector<std::size_t> sizes_;
  Activation act_;
  Activation out_act_ = Activation::identity;
  std::vector<LayerView> layers_;
  std::vector<double> params_;
  std::vector<double> grads_;
};

/// Adam optimizer over a flat parameter vector.
class Adam {
 public:
  explicit Adam(std::size_t n_params, double lr = 1e-2, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  void step(std::span<double> params, std::span<const double> grads);
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }
  void reset();

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::vector<double> m_;
  std::vector<double> v_;
  long t_ = 0;
};

/// Central finite-difference gradient of a scalar function for grad-checks.
std::vector<double> numeric_gradient(const std::function<double()>& f,
                                     std::span<double> params, double h = 1e-6);

}  // namespace kato::nn

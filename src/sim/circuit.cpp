#include "sim/circuit.hpp"

#include <stdexcept>

namespace kato::sim {

int Circuit::new_node(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<int>(names_.size());  // ground is 0
}

const std::string& Circuit::node_name(int node) const {
  static const std::string ground_name = "gnd";
  if (node == ground) return ground_name;
  check_node(node);
  return names_[static_cast<std::size_t>(node) - 1];
}

void Circuit::check_node(int node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= n_nodes())
    throw std::invalid_argument("Circuit: unknown node " + std::to_string(node));
}

void Circuit::add_resistor(int a, int b, double ohms) {
  check_node(a);
  check_node(b);
  if (!(ohms > 0.0)) throw std::invalid_argument("Circuit: resistance must be > 0");
  resistors_.push_back({a, b, ohms});
}

void Circuit::add_capacitor(int a, int b, double farads) {
  check_node(a);
  check_node(b);
  if (!(farads >= 0.0)) throw std::invalid_argument("Circuit: capacitance must be >= 0");
  capacitors_.push_back({a, b, farads});
}

int Circuit::add_vsource(int p, int n, double dc, double ac) {
  check_node(p);
  check_node(n);
  vsources_.push_back({p, n, dc, ac});
  return static_cast<int>(vsources_.size()) - 1;
}

void Circuit::add_isource(int p, int n, double dc) {
  check_node(p);
  check_node(n);
  isources_.push_back({p, n, dc});
}

void Circuit::add_vccs(int p, int n, int cp, int cn, double gm) {
  check_node(p);
  check_node(n);
  check_node(cp);
  check_node(cn);
  vccs_.push_back({p, n, cp, cn, gm});
}

void Circuit::add_diode(const Diode& d) {
  check_node(d.a);
  check_node(d.c);
  if (!(d.is_sat > 0.0) || !(d.area > 0.0))
    throw std::invalid_argument("Circuit: diode is/area must be > 0");
  diodes_.push_back(d);
}

int Circuit::add_mosfet(int d, int g, int s, double w, double l,
                        const MosModel& model) {
  check_node(d);
  check_node(g);
  check_node(s);
  if (!(w > 0.0) || !(l > 0.0))
    throw std::invalid_argument("Circuit: mosfet W and L must be > 0");
  mosfets_.push_back({d, g, s, w, l, model});
  return static_cast<int>(mosfets_.size()) - 1;
}

}  // namespace kato::sim

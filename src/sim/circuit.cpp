#include "sim/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace kato::sim {

namespace {

constexpr double k_two_pi = 6.283185307179586;

/// Throws std::invalid_argument describing the first malformed parameter.
void validate_waveform(const Waveform& w) {
  switch (w.kind) {
    case Waveform::Kind::none:
      return;
    case Waveform::Kind::pulse:
      if (!(w.td >= 0.0))
        throw std::invalid_argument("pulse: delay td must be >= 0");
      if (!(w.tr > 0.0) || !(w.tf > 0.0))
        throw std::invalid_argument("pulse: rise/fall times must be > 0");
      if (!(w.pw >= 0.0))
        throw std::invalid_argument("pulse: pulse width pw must be >= 0");
      if (w.period != 0.0 && !(w.period >= w.tr + w.pw + w.tf))
        throw std::invalid_argument(
            "pulse: period must be 0 (single pulse) or >= tr + pw + tf");
      return;
    case Waveform::Kind::sine:
      if (!(w.freq > 0.0))
        throw std::invalid_argument("sin: frequency must be > 0");
      if (!(w.td >= 0.0))
        throw std::invalid_argument("sin: delay td must be >= 0");
      if (!(w.theta >= 0.0))
        throw std::invalid_argument("sin: damping theta must be >= 0");
      return;
    case Waveform::Kind::pwl: {
      if (w.t.size() != w.v.size() || w.t.size() < 2)
        throw std::invalid_argument("pwl: needs at least two (time, value) pairs");
      if (!(w.t.front() >= 0.0))
        throw std::invalid_argument("pwl: times must be >= 0");
      for (std::size_t i = 1; i < w.t.size(); ++i)
        if (!(w.t[i] > w.t[i - 1]))
          throw std::invalid_argument("pwl: times must be strictly increasing");
      return;
    }
  }
}

}  // namespace

double waveform_value(const Waveform& w, double dc, double time) {
  switch (w.kind) {
    case Waveform::Kind::none:
      return dc;
    case Waveform::Kind::pulse: {
      if (time < w.td) return w.v1;
      double tau = time - w.td;
      if (w.period > 0.0) tau = std::fmod(tau, w.period);
      if (tau < w.tr) return w.v1 + (w.v2 - w.v1) * tau / w.tr;
      if (tau < w.tr + w.pw) return w.v2;
      if (tau < w.tr + w.pw + w.tf)
        return w.v2 + (w.v1 - w.v2) * (tau - w.tr - w.pw) / w.tf;
      return w.v1;
    }
    case Waveform::Kind::sine: {
      if (time < w.td) return w.vo;
      const double tau = time - w.td;
      const double damp = w.theta > 0.0 ? std::exp(-tau * w.theta) : 1.0;
      return w.vo + w.va * damp * std::sin(k_two_pi * w.freq * tau);
    }
    case Waveform::Kind::pwl: {
      if (time <= w.t.front()) return w.v.front();
      if (time >= w.t.back()) return w.v.back();
      // First breakpoint with t[i] >= time (times are strictly increasing,
      // so this is the same index the former linear scan found, and the
      // interpolation below is bit-identical to it).
      const std::size_t i = static_cast<std::size_t>(
          std::lower_bound(w.t.begin() + 1, w.t.end(), time) - w.t.begin());
      const double f = (time - w.t[i - 1]) / (w.t[i] - w.t[i - 1]);
      return w.v[i - 1] + f * (w.v[i] - w.v[i - 1]);
    }
  }
  return dc;
}

int Circuit::new_node(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<int>(names_.size());  // ground is 0
}

const std::string& Circuit::node_name(int node) const {
  static const std::string ground_name = "gnd";
  if (node == ground) return ground_name;
  check_node(node);
  return names_[static_cast<std::size_t>(node) - 1];
}

void Circuit::check_node(int node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= n_nodes())
    throw std::invalid_argument("Circuit: unknown node " + std::to_string(node));
}

void Circuit::add_resistor(int a, int b, double ohms) {
  check_node(a);
  check_node(b);
  if (!(ohms > 0.0)) throw std::invalid_argument("Circuit: resistance must be > 0");
  resistors_.push_back({a, b, ohms});
}

void Circuit::add_capacitor(int a, int b, double farads) {
  check_node(a);
  check_node(b);
  if (!(farads >= 0.0)) throw std::invalid_argument("Circuit: capacitance must be >= 0");
  capacitors_.push_back({a, b, farads});
}

int Circuit::add_vsource(int p, int n, double dc, double ac) {
  return add_vsource(p, n, dc, ac, Waveform{});
}

int Circuit::add_vsource(int p, int n, double dc, double ac, Waveform wave) {
  check_node(p);
  check_node(n);
  validate_waveform(wave);
  vsources_.push_back({p, n, dc, ac, std::move(wave)});
  return static_cast<int>(vsources_.size()) - 1;
}

void Circuit::add_isource(int p, int n, double dc) {
  check_node(p);
  check_node(n);
  isources_.push_back({p, n, dc});
}

void Circuit::add_vccs(int p, int n, int cp, int cn, double gm) {
  check_node(p);
  check_node(n);
  check_node(cp);
  check_node(cn);
  vccs_.push_back({p, n, cp, cn, gm});
}

void Circuit::add_diode(const Diode& d) {
  check_node(d.a);
  check_node(d.c);
  if (!(d.is_sat > 0.0) || !(d.area > 0.0))
    throw std::invalid_argument("Circuit: diode is/area must be > 0");
  diodes_.push_back(d);
}

int Circuit::add_mosfet(int d, int g, int s, double w, double l,
                        const MosModel& model) {
  check_node(d);
  check_node(g);
  check_node(s);
  if (!(w > 0.0) || !(l > 0.0))
    throw std::invalid_argument("Circuit: mosfet W and L must be > 0");
  // The subthreshold slope factor sets the overdrive smoothing scale
  // 2 n vt that both the analytic model and the device-table normalization
  // divide by; reject non-positive values here with a clear message rather
  // than letting a bad model card surface as NaNs mid-Newton.
  if (!(model.subthreshold_n > 0.0))
    throw std::invalid_argument(
        "Circuit: mosfet model subthreshold_n must be > 0");
  mosfets_.push_back({d, g, s, w, l, model});
  return static_cast<int>(mosfets_.size()) - 1;
}

}  // namespace kato::sim

#pragma once
// DC operating-point analysis: Newton-Raphson on the MNA equations with
// voltage-step damping and gmin continuation for robustness across the whole
// sizing box (badly-sized candidates must still converge or fail cleanly —
// the BO drivers treat non-convergence as an infeasible design).

#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "obs/obs.hpp"
#include "sim/circuit.hpp"
#include "sim/mna.hpp"

namespace kato::sim {

struct DcOptions {
  int max_iterations = 200;
  double v_tol = 1e-9;        ///< convergence on max |dV|
  double max_step = 0.5;      ///< damping: max voltage change per iteration [V]
  double temp = 300.0;        ///< simulation temperature [K]
  /// gmin continuation ladder: solve with each gmin in order, warm-starting.
  /// The dense ladder matters: high-loop-gain circuits (the bandgap's
  /// cascoded regulation loop) fail to track coarser continuation.
  std::vector<double> gmin_ladder{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7,
                                  1e-8, 1e-9, 1e-10, 1e-11, 1e-12};
  /// When non-empty (index-parallel to ckt.vsources()), replaces each
  /// source's DC value in the branch equations — the transient engine uses
  /// this to bias the circuit at the waveform's t = 0 values.
  std::vector<double> vsource_override;
  /// Linear-solve path (dense vs sparse with symbolic reuse); `automatic`
  /// switches on system size, KATO_SPARSE overrides for A/B runs.
  MnaSolver solver = MnaSolver::automatic;
  /// Device-model path for the Newton loop (precomputed-table vs analytic
  /// MOSFET evaluation); `automatic` resolves to the table path,
  /// KATO_DEVICE_TABLE overrides for A/B runs.  The reported
  /// DcResult::mosfet_op is always the analytic reference model evaluated
  /// once at the converged operating point (it feeds the AC linearization
  /// and carries the exact saturation flag).
  DeviceEval device_eval = DeviceEval::automatic;
};

/// Per-rung accounting of the gmin continuation walk (diagnostics; the
/// failure reason names the rung and iteration budget from these).
struct DcRungStats {
  double gmin;
  std::uint32_t newton_iters;
  std::uint32_t damping_clamps;
  bool converged;
};

struct DcResult {
  bool converged = false;
  /// Failure description when !converged, with the continuation context
  /// baked in ("gmin rung 3/11, newton 25/25: Newton did not converge in 25
  /// iterations at gmin=0.0001"); empty on success.  Surfaced through
  /// NetlistCircuit infeasibility reporting.
  std::string reason;
  la::Vector node_voltage;          ///< index by node id (entry 0 = ground = 0)
  std::vector<double> vsource_current;  ///< branch current per voltage source
  std::vector<MosOp> mosfet_op;     ///< operating point per MOSFET
  std::vector<double> diode_gd;     ///< small-signal conductance per diode
  /// Solver-work counters for this solve (Newton iterations, LU
  /// first/refactor split, device-table cache hits, ...).
  obs::SimStats stats;
  /// One entry per gmin rung walked, in ladder order.
  std::vector<DcRungStats> rung_stats;

  double v(int node) const { return node_voltage[static_cast<std::size_t>(node)]; }
};

/// Solve the DC operating point.  `initial` (optional) warm-starts the node
/// voltages (used by temperature sweeps).
DcResult solve_dc(const Circuit& ckt, const DcOptions& opts = {},
                  const la::Vector* initial = nullptr);

}  // namespace kato::sim

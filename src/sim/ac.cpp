#include "sim/ac.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace kato::sim {

namespace {
constexpr double k_two_pi = 6.283185307179586;

using cd = std::complex<double>;

/// Emit every frequency-independent (conductance) entry of the linearized
/// MNA system as emit(row, col, value); ground-involving entries are
/// skipped.  Shared by the dense matrix fill and the sparse pattern/base
/// construction so both solve paths stamp identical values.
template <typename Emit>
void for_each_conductance(const Circuit& ckt, const DcResult& op, Emit&& emit) {
  const std::size_t n = ckt.n_nodes() - 1;
  auto idx = [](int node) { return static_cast<std::size_t>(node) - 1; };
  auto stamp = [&](int a, int b, double val) {
    if (a != 0 && b != 0) emit(idx(a), idx(b), val);
  };
  auto stamp_pair = [&](int a, int b, double val) {
    stamp(a, a, val);
    stamp(b, b, val);
    stamp(a, b, -val);
    stamp(b, a, -val);
  };

  for (const auto& r : ckt.resistors()) stamp_pair(r.a, r.b, 1.0 / r.r);
  for (const auto& c : ckt.vccs()) {
    stamp(c.p, c.cp, c.gm);
    stamp(c.p, c.cn, -c.gm);
    stamp(c.n, c.cp, -c.gm);
    stamp(c.n, c.cn, c.gm);
  }
  for (std::size_t i = 0; i < ckt.diodes().size(); ++i) {
    const auto& d = ckt.diodes()[i];
    stamp_pair(d.a, d.c, op.diode_gd[i]);
  }
  for (std::size_t i = 0; i < ckt.mosfets().size(); ++i) {
    const auto& mos = ckt.mosfets()[i];
    const auto& mop = op.mosfet_op[i];
    // gm: current into drain controlled by vgs.
    stamp(mos.d, mos.g, mop.gm);
    stamp(mos.d, mos.s, -mop.gm);
    stamp(mos.s, mos.g, -mop.gm);
    stamp(mos.s, mos.s, mop.gm);
    // gds between drain and source.
    stamp_pair(mos.d, mos.s, mop.gds);
  }
  // Voltage-source branch equations.
  const auto& vs = ckt.vsources();
  for (std::size_t k = 0; k < vs.size(); ++k) {
    const std::size_t bi = n + k;
    if (vs[k].p != 0) {
      emit(idx(vs[k].p), bi, 1.0);
      emit(bi, idx(vs[k].p), 1.0);
    }
    if (vs[k].n != 0) {
      emit(idx(vs[k].n), bi, -1.0);
      emit(bi, idx(vs[k].n), -1.0);
    }
  }
}

/// Four value-array slots of one capacitor's stamp (k_sparse_npos = ground).
struct CapSlots {
  std::size_t aa, bb, ab, ba;
  double c;
};

}  // namespace

std::vector<CapElement> linear_caps(const Circuit& ckt) {
  std::vector<CapElement> caps;
  for (const auto& c : ckt.capacitors()) caps.push_back({c.a, c.b, c.c});
  for (const auto& mos : ckt.mosfets()) {
    const MosCaps mc = mosfet_caps(mos.model, mos.w, mos.l);
    caps.push_back({mos.g, mos.s, mc.cgs});
    caps.push_back({mos.g, mos.d, mc.cgd});
    caps.push_back({mos.d, 0, mc.cdb});
  }
  return caps;
}

std::vector<double> log_freq_grid(double f_lo, double f_hi, int per_decade) {
  if (!(f_lo > 0.0) || !(f_hi > f_lo) || per_decade < 1)
    throw std::invalid_argument("log_freq_grid: bad range");
  const double e_lo = std::log10(f_lo);
  const double e_hi = std::log10(f_hi);
  const double step = 1.0 / per_decade;
  // Integer-indexed exponents: i * step accumulates no floating-point error,
  // so the point count is a pure function of the range (pinned in tests) —
  // the historical `e += step` loop could gain or drop the endpoint.
  const auto count =
      static_cast<std::size_t>(std::floor((e_hi - e_lo) / step + 1e-9)) + 1;
  std::vector<double> freqs(count);
  for (std::size_t i = 0; i < count; ++i)
    freqs[i] = std::pow(10.0, e_lo + static_cast<double>(i) * step);
  return freqs;
}

AcSweep solve_ac(const Circuit& ckt, const DcResult& op,
                 const std::vector<double>& freqs, MnaSolver solver) {
  KATO_OBS_SPAN("ac_sweep");
  KATO_OBS_STAGE(ac);
  AcSweep sweep;
  sweep.freq = freqs;
  if (!op.converged) return sweep;

  const std::size_t n = ckt.n_nodes() - 1;
  const std::size_t size = ckt.mna_size();
  const auto caps = linear_caps(ckt);

  la::CVector rhs_template(size, cd(0.0, 0.0));
  const auto& vs = ckt.vsources();
  for (std::size_t k = 0; k < vs.size(); ++k)
    rhs_template[n + k] = cd(vs[k].ac, 0.0);

  auto idx = [](int node) { return static_cast<std::size_t>(node) - 1; };
  auto emit_nodes = [&](const la::CVector& x) {
    la::CVector nodes(ckt.n_nodes(), cd(0.0, 0.0));
    for (std::size_t i = 0; i < n; ++i) nodes[i + 1] = x[i];
    sweep.node_voltage.push_back(std::move(nodes));
  };
  sweep.node_voltage.reserve(freqs.size());

  if (resolve_mna_solver(solver, size) == MnaSolver::sparse) {
    // Pattern + symbolic analysis once for the whole sweep: conductances
    // are baked into a base value array, each frequency point only rewrites
    // the jwC entries and runs a numeric refactorization.
    std::vector<la::Coord> coords;
    for_each_conductance(ckt, op, [&](std::size_t r, std::size_t c, double) {
      coords.push_back({r, c});
    });
    for (const auto& c : caps) {
      if (c.a != 0) coords.push_back({idx(c.a), idx(c.a)});
      if (c.b != 0) coords.push_back({idx(c.b), idx(c.b)});
      if (c.a != 0 && c.b != 0) {
        coords.push_back({idx(c.a), idx(c.b)});
        coords.push_back({idx(c.b), idx(c.a)});
      }
    }
    const la::SparsePattern pattern(size, coords);
    std::vector<cd> base(pattern.nnz(), cd(0.0, 0.0));
    for_each_conductance(ckt, op, [&](std::size_t r, std::size_t c, double v) {
      base[pattern.slot(r, c)] += cd(v, 0.0);
    });
    std::vector<CapSlots> cap_slots;
    cap_slots.reserve(caps.size());
    for (const auto& c : caps) {
      CapSlots cs{la::k_sparse_npos, la::k_sparse_npos, la::k_sparse_npos,
                  la::k_sparse_npos, c.c};
      if (c.a != 0) cs.aa = pattern.slot(idx(c.a), idx(c.a));
      if (c.b != 0) cs.bb = pattern.slot(idx(c.b), idx(c.b));
      if (c.a != 0 && c.b != 0) {
        cs.ab = pattern.slot(idx(c.a), idx(c.b));
        cs.ba = pattern.slot(idx(c.b), idx(c.a));
      }
      cap_slots.push_back(cs);
    }

    la::CSparseLu lu;
    lu.analyze(pattern);
    std::vector<cd> vals;
    la::CVector x;
    for (double f : freqs) {
      vals = base;
      const double w = k_two_pi * f;
      for (const auto& cs : cap_slots) {
        const cd jwc(0.0, w * cs.c);
        if (cs.aa != la::k_sparse_npos) vals[cs.aa] += jwc;
        if (cs.bb != la::k_sparse_npos) vals[cs.bb] += jwc;
        if (cs.ab != la::k_sparse_npos) vals[cs.ab] -= jwc;
        if (cs.ba != la::k_sparse_npos) vals[cs.ba] -= jwc;
      }
      ++sweep.stats.ac_points;
      const bool first_factor = !lu.factored();
      if (!lu.factor(vals)) return sweep;  // ok stays false
      if (first_factor) {
        ++sweep.stats.lu_first_factors;
      } else {
        ++sweep.stats.lu_refactors;
        ++sweep.stats.ac_refactors;
      }
      lu.solve(rhs_template, x);
      for (const auto& v : x)
        if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) return sweep;
      emit_nodes(x);
    }
    sweep.ok = true;
    return sweep;
  }

  la::CMatrix g(size, size);
  for_each_conductance(ckt, op, [&](std::size_t r, std::size_t c, double v) {
    g(r, c) += cd(v, 0.0);
  });

  // One factorization workspace across the sweep: y/b/x keep their
  // allocations, each point refills them in place.
  la::CMatrix y;
  la::CVector b;
  la::CVector x;
  for (double f : freqs) {
    y = g;
    const double w = k_two_pi * f;
    for (const auto& c : caps) {
      const cd jwc(0.0, w * c.c);
      if (c.a != 0) y(idx(c.a), idx(c.a)) += jwc;
      if (c.b != 0) y(idx(c.b), idx(c.b)) += jwc;
      if (c.a != 0 && c.b != 0) {
        y(idx(c.a), idx(c.b)) -= jwc;
        y(idx(c.b), idx(c.a)) -= jwc;
      }
    }
    b = rhs_template;
    ++sweep.stats.ac_points;
    if (!la::lu_solve_complex_into(y, b, x)) return sweep;  // ok stays false
    // Dense path factors from scratch each point; count every post-first
    // factorization as a refactor so the first/rest split matches sparse.
    ++(sweep.stats.lu_first_factors == 0 ? sweep.stats.lu_first_factors
                                         : sweep.stats.lu_refactors);
    emit_nodes(x);
  }
  sweep.ok = true;
  return sweep;
}

double dc_gain_db(const AcSweep& sweep, int out_node) {
  if (!sweep.ok || sweep.freq.empty()) return -300.0;
  const double mag = std::abs(sweep.v(0, out_node));
  return 20.0 * std::log10(std::max(mag, 1e-15));
}

double unity_gain_freq(const AcSweep& sweep, int out_node) {
  if (!sweep.ok) return 0.0;
  for (std::size_t i = 1; i < sweep.freq.size(); ++i) {
    const double m0 = std::abs(sweep.v(i - 1, out_node));
    const double m1 = std::abs(sweep.v(i, out_node));
    if (m0 >= 1.0 && m1 < 1.0) {
      // Log-log interpolation of the crossing.
      const double l0 = std::log10(std::max(m0, 1e-15));
      const double l1 = std::log10(std::max(m1, 1e-15));
      const double t = l0 / (l0 - l1);
      return std::pow(10.0, std::log10(sweep.freq[i - 1]) +
                                t * (std::log10(sweep.freq[i]) -
                                     std::log10(sweep.freq[i - 1])));
    }
  }
  return 0.0;
}

double phase_margin_deg(const AcSweep& sweep, int out_node) {
  if (!sweep.ok) return 0.0;
  // Unwrap the phase starting from the DC point; the DC phase of a
  // positive-gain amplifier is ~0 (or 180 for inverting — unwrapping from
  // the actual start handles both).
  std::vector<double> phase(sweep.freq.size());
  double prev = std::arg(sweep.v(0, out_node));
  phase[0] = prev;
  for (std::size_t i = 1; i < phase.size(); ++i) {
    double p = std::arg(sweep.v(i, out_node));
    while (p - prev > M_PI) p -= 2.0 * M_PI;
    while (p - prev < -M_PI) p += 2.0 * M_PI;
    phase[i] = p;
    prev = p;
  }
  // Snap the reference to the nearest multiple of pi so an inverting output
  // (DC phase ~180) and small residual phase at the first grid point do not
  // corrupt the margin.
  const double ref = std::round(phase[0] / M_PI) * M_PI;
  for (std::size_t i = 1; i < sweep.freq.size(); ++i) {
    const double m0 = std::abs(sweep.v(i - 1, out_node));
    const double m1 = std::abs(sweep.v(i, out_node));
    if (m0 >= 1.0 && m1 < 1.0) {
      const double l0 = std::log10(std::max(m0, 1e-15));
      const double l1 = std::log10(std::max(m1, 1e-15));
      const double t = l0 / (l0 - l1);
      const double ph = phase[i - 1] + t * (phase[i] - phase[i - 1]);
      const double lag = (ph - ref) * 180.0 / M_PI;  // negative for stable amps
      return 180.0 + lag;
    }
  }
  return 0.0;
}

double stable_phase_margin_deg(const AcSweep& sweep, int out_node) {
  double pm = std::clamp(phase_margin_deg(sweep, out_node), 0.0, 180.0);
  if (pm >= 150.0) pm = 0.0;  // feedforward crossing: unstable in closed loop
  return pm;
}

double gain_db_at(const AcSweep& sweep, int out_node, double f) {
  if (!sweep.ok || sweep.freq.empty()) return -300.0;
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sweep.freq.size(); ++i) {
    const double d = std::abs(std::log10(sweep.freq[i]) - std::log10(f));
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  const double mag = std::abs(sweep.v(best, out_node));
  return 20.0 * std::log10(std::max(mag, 1e-15));
}

}  // namespace kato::sim

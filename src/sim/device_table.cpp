#include "sim/device_table.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace kato::sim {

DeviceEval resolve_device_eval(DeviceEval requested) {
  if (const char* env = std::getenv("KATO_DEVICE_TABLE")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "analytic") == 0)
      return DeviceEval::analytic;
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "table") == 0)
      return DeviceEval::table;
    // Anything else ("", "auto") falls through to the request.
  }
  if (requested != DeviceEval::automatic) return requested;
  return DeviceEval::table;
}

namespace {
// Grid bounds in overdrive volts.  [-4, +4] covers every reachable bias of
// the shipped PDKs (|vov| <= vdd + vth with margin); outside, the exact
// analytic tail takes over, so the bounds trade memory against how often
// the cold branch runs, not against accuracy.
constexpr double k_vov_lo = -4.0;
constexpr double k_vov_hi = 4.0;
// Knot spacing as a fraction of nvt = n kT/q: the cubic-Hermite relative
// error scales as (h / 2 nvt)^4 / 384, so nvt/8 gives ~1e-8 on veff and
// keeps ids/gm/gds within 1e-4 of analytic after the worst-case
// triode/saturation boundary amplification (see device_table_test).
constexpr double k_step_per_nvt = 1.0 / 8.0;
}  // namespace

DeviceTable::DeviceTable(double subthreshold_n, double temp)
    : n_(subthreshold_n), temp_(temp) {
  if (!(subthreshold_n > 0.0) || !(temp > 0.0))
    throw std::invalid_argument(
        "DeviceTable: subthreshold_n and temp must be > 0");
  const double nvt = subthreshold_n * thermal_voltage(temp);
  nvt2_ = 2.0 * nvt;
  lo_ = k_vov_lo;
  hi_ = k_vov_hi;
  const auto cells = static_cast<std::size_t>(
      std::ceil((hi_ - lo_) / (nvt * k_step_per_nvt)));
  step_ = (hi_ - lo_) / static_cast<double>(cells);
  inv_step_ = 1.0 / step_;
  cells_d_ = static_cast<double>(cells);
  // Knot data (values + step-scaled slopes), then each cell's two Hermite
  // cubics expanded to power basis so the lookup is pure Horner.  For knot
  // pair (y0, y1) with scaled slopes (s0, s1) the coefficients are
  //   a0 = y0, a1 = s0, a2 = 3(y1-y0) - 2 s0 - s1, a3 = 2(y0-y1) + s0 + s1;
  // a0 is the raw knot value, so evaluation at u = 0 reproduces the knot
  // exactly (the same interpolant as the basis form, re-rounded once).
  std::vector<double> kn(4 * (cells + 1));
  for (std::size_t i = 0; i <= cells; ++i) {
    const double vov = lo_ + step_ * static_cast<double>(i);
    const double x = vov / nvt2_;
    const double lg = mos_logistic(x);
    double* k = &kn[4 * i];
    k[0] = nvt2_ * mos_softplus(x);  // veff
    k[1] = lg * step_;               // veff' = logistic, pre-scaled by h
    k[2] = lg;                       // dveff (= logistic)
    k[3] = lg * (1.0 - lg) / nvt2_ * step_;  // logistic', pre-scaled by h
  }
  k_.resize(8 * cells);
  for (std::size_t i = 0; i < cells; ++i) {
    const double* k0 = &kn[4 * i];
    const double* k1 = &kn[4 * (i + 1)];
    double* cf = &k_[8 * i];
    for (int q = 0; q < 2; ++q) {
      const double y0 = k0[2 * q];
      const double s0 = k0[2 * q + 1];
      const double y1 = k1[2 * q];
      const double s1 = k1[2 * q + 1];
      cf[4 * q + 0] = y0;
      cf[4 * q + 1] = s0;
      cf[4 * q + 2] = 3.0 * (y1 - y0) - 2.0 * s0 - s1;
      cf[4 * q + 3] = 2.0 * (y0 - y1) + s0 + s1;
    }
  }
}

void DeviceTable::tail_at(double vov, double& veff, double& dveff) const {
  const double x = vov / nvt2_;
  veff = nvt2_ * mos_softplus(x);
  dveff = mos_logistic(x);
}

namespace {
std::mutex g_table_mutex;
std::map<std::pair<double, double>, std::shared_ptr<const DeviceTable>>&
table_cache() {
  static std::map<std::pair<double, double>,
                  std::shared_ptr<const DeviceTable>>
      cache;
  return cache;
}
}  // namespace

std::shared_ptr<const DeviceTable> device_table_for(double subthreshold_n,
                                                    double temp, bool* hit) {
  std::lock_guard<std::mutex> lock(g_table_mutex);
  auto& slot = table_cache()[{subthreshold_n, temp}];
  if (hit != nullptr) *hit = slot != nullptr;
  if (!slot) slot = std::make_shared<const DeviceTable>(subthreshold_n, temp);
  return slot;
}

std::size_t device_table_cache_size() {
  std::lock_guard<std::mutex> lock(g_table_mutex);
  return table_cache().size();
}

}  // namespace kato::sim

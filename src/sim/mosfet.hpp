#pragma once
// Level-1-style MOSFET model with EKV-like smoothing.
//
// The square law is augmented with (a) a softplus-smoothed overdrive so the
// device transitions continuously from subthreshold (exponential) to strong
// inversion — this keeps DC Newton iterations differentiable everywhere —
// and (b) channel-length modulation lambda = lambda_coef / L, which captures
// the first-order sizing trade-off the paper's circuits optimize over
// (longer L -> smaller gds -> more gain; wider W -> more gm and more
// capacitance).  Temperature enters through Vt = kT/q, mobility scaling
// (T/300)^-1.5 and a -2 mV/K threshold drift, which is what the bandgap
// experiment exercises.

namespace kato::sim {

struct MosModel {
  bool nmos = true;
  double vth0 = 0.5;          ///< zero-bias threshold [V]
  double kp = 200e-6;         ///< mu Cox [A/V^2]
  double lambda_coef = 0.05e-6;  ///< channel-length modulation [V^-1 * m]
  double cox = 8e-3;          ///< gate capacitance per area [F/m^2]
  double cgdo = 0.3e-9;       ///< gate-drain overlap cap per width [F/m]
  double cj_w = 0.8e-9;       ///< drain junction cap per width [F/m]
  double subthreshold_n = 1.4;  ///< subthreshold slope factor
};

/// Small-signal operating point of one device.
struct MosOp {
  double ids = 0.0;  ///< drain current, positive into the drain (NMOS sense)
  double gm = 0.0;   ///< d ids / d vgs
  double gds = 0.0;  ///< d ids / d vds
  bool saturated = false;
};

/// Evaluate drain current and conductances.  Voltages are the *device*
/// terminal voltages (vgs, vds as seen at the nodes); PMOS and reversed-vds
/// operation are handled internally.  temp in Kelvin.
MosOp eval_mosfet(const MosModel& m, double w, double l, double vgs,
                  double vds, double temp = 300.0);

/// Gate-source / gate-drain / drain-bulk small-signal capacitances used by
/// the AC analysis (saturation-region approximations).
struct MosCaps {
  double cgs = 0.0;
  double cgd = 0.0;
  double cdb = 0.0;
};
MosCaps mosfet_caps(const MosModel& m, double w, double l);

/// Thermal voltage kT/q.
double thermal_voltage(double temp);

}  // namespace kato::sim

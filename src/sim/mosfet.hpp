#pragma once
// Level-1-style MOSFET model with EKV-like smoothing.
//
// The square law is augmented with (a) a softplus-smoothed overdrive so the
// device transitions continuously from subthreshold (exponential) to strong
// inversion — this keeps DC Newton iterations differentiable everywhere —
// and (b) channel-length modulation lambda = lambda_coef / L, which captures
// the first-order sizing trade-off the paper's circuits optimize over
// (longer L -> smaller gds -> more gain; wider W -> more gm and more
// capacitance).  Temperature enters through Vt = kT/q, mobility scaling
// (T/300)^-1.5 and a -2 mV/K threshold drift, which is what the bandgap
// experiment exercises.
//
// Two evaluation entry points share the model:
//
//   * eval_mosfet — the historical per-call form (model + W/L + temp every
//     call).  This is the pinned reference: its arithmetic is frozen, and
//     the hoisted/table paths below are tested bit-identical against it.
//   * mos_precompute + eval_mosfet_pre — the hot-path form: the
//     temperature-dependent quantities (vth(T), kp(T), 2 n vt, lambda) are
//     hoisted once per (device, temp) into a MosPre, mirroring the
//     assembler's DiodePre, so the per-Newton evaluation does no pow/branch
//     work that the iterate can't change.  Bit-identical to eval_mosfet.
//
// mos_eval_normalized is the shared skeleton: it folds PMOS mirroring and
// reverse-vds drain/source swap into a normalized forward evaluation whose
// only transcendental content — veff(vov) and its derivative — is supplied
// by the caller (analytic softplus/logistic, or the precomputed
// DeviceTable; see sim/device_table.hpp).

#include <algorithm>
#include <cmath>

namespace kato::sim {

struct MosModel {
  bool nmos = true;
  double vth0 = 0.5;          ///< zero-bias threshold [V]
  double kp = 200e-6;         ///< mu Cox [A/V^2]
  double lambda_coef = 0.05e-6;  ///< channel-length modulation [V^-1 * m]
  double cox = 8e-3;          ///< gate capacitance per area [F/m^2]
  double cgdo = 0.3e-9;       ///< gate-drain overlap cap per width [F/m]
  double cj_w = 0.8e-9;       ///< drain junction cap per width [F/m]
  double subthreshold_n = 1.4;  ///< subthreshold slope factor
};

/// Small-signal operating point of one device.
struct MosOp {
  double ids = 0.0;  ///< drain current, positive into the drain (NMOS sense)
  double gm = 0.0;   ///< d ids / d vgs
  double gds = 0.0;  ///< d ids / d vds
  bool saturated = false;
};

/// Evaluate drain current and conductances.  Voltages are the *device*
/// terminal voltages (vgs, vds as seen at the nodes); PMOS and reversed-vds
/// operation are handled internally.  temp in Kelvin.
MosOp eval_mosfet(const MosModel& m, double w, double l, double vgs,
                  double vds, double temp = 300.0);

/// Numerically safe softplus / logistic.  Shared by the analytic model,
/// the hoisted hot path and the device-table builder/tails; the bodies
/// match the file-local versions the pinned eval_mosfet reference uses.
inline double mos_softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}
inline double mos_logistic(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return std::exp(x);
  return 1.0 / (1.0 + std::exp(-x));
}

/// Per-device quantities that depend only on (model, W, L, temp) — never on
/// the Newton iterate.  Hoisted once per assembler (mirroring DiodePre) so
/// the per-iteration device loop touches five doubles per device.
struct MosPre {
  double sign;    ///< +1 NMOS, -1 PMOS (mirrors terminal voltages/current)
  double vth;     ///< vth0 - 2 mV/K * (T - 300)
  double nvt2;    ///< 2 * subthreshold_n * kT/q: overdrive smoothing scale
  double beta;    ///< kp * (T/300)^-1.5 * W / L
  double lambda;  ///< lambda_coef / L
};

/// Hoist the temperature/geometry terms of one device.
MosPre mos_precompute(const MosModel& m, double w, double l, double temp);

/// Analytic evaluation from a MosPre.  Bit-identical to eval_mosfet at the
/// same (model, W, L, temp) — pinned by device_table_test.
MosOp eval_mosfet_pre(const MosPre& p, double vgs, double vds);

/// Shared evaluation skeleton: normalize PMOS/reverse-vds onto a forward
/// NMOS-sense evaluation, obtain veff/dveff from `veff_fn(vov, veff,
/// dveff)`, apply the polynomial triode/saturation/CLM expressions of the
/// pinned reference (identical operations in identical order), then map the
/// result back.  Negations are exact in IEEE arithmetic, so the folded
/// normalization reproduces the reference's nested-call results bitwise.
template <typename VeffFn>
inline MosOp mos_eval_normalized(const MosPre& p, double vgs, double vds,
                                 VeffFn&& veff_fn) {
  const bool pmos = p.sign < 0.0;
  const double u_gs = pmos ? -vgs : vgs;
  const double u_ds = pmos ? -vds : vds;
  // Reference: forward when vds >= 0, else drain/source swap.
  const bool rev = !(u_ds >= 0.0);
  const double a_gs = rev ? u_gs - u_ds : u_gs;
  const double a_ds = rev ? -u_ds : u_ds;

  double veff;
  double dveff;
  veff_fn(a_gs - p.vth, veff, dveff);

  MosOp op;
  const double clm = 1.0 + p.lambda * a_ds;
  if (a_ds >= veff) {
    // Saturation.
    op.ids = 0.5 * p.beta * veff * veff * clm;
    op.gm = p.beta * veff * dveff * clm;
    op.gds = 0.5 * p.beta * veff * veff * p.lambda;
    op.saturated = true;
  } else {
    // Triode.
    op.ids = p.beta * (veff - 0.5 * a_ds) * a_ds * clm;
    op.gm = p.beta * a_ds * dveff * clm;
    op.gds =
        p.beta * ((veff - a_ds) * clm + (veff - 0.5 * a_ds) * a_ds * p.lambda);
    op.saturated = false;
  }
  // Floor conductances to keep the Newton Jacobian nonsingular when off.
  op.gds = std::max(op.gds, 1e-12);
  op.gm = std::max(op.gm, 0.0);

  if (rev) {
    // ids(vgs, vds) = -ids'(vgs - vds, -vds):
    //   d ids / d vgs = -gm', d ids / d vds = gm' + gds'.
    const double gm_f = op.gm;
    const double gds_f = op.gds;
    op.ids = -op.ids;
    op.gm = -gm_f;
    op.gds = gm_f + gds_f;
  }
  if (pmos) op.ids = -op.ids;
  return op;
}

/// Gate-source / gate-drain / drain-bulk small-signal capacitances used by
/// the AC analysis (saturation-region approximations).
struct MosCaps {
  double cgs = 0.0;
  double cgd = 0.0;
  double cdb = 0.0;
};
MosCaps mosfet_caps(const MosModel& m, double w, double l);

/// Thermal voltage kT/q.
double thermal_voltage(double temp);

}  // namespace kato::sim

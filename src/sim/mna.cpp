#include "sim/mna.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/lu.hpp"

namespace kato::sim {

std::string fmt_double(double v) {
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

namespace {

struct DiodeEval {
  double i;
  double g;
};

/// Diode current with SPICE-style saturation-current temperature scaling and
/// exponent limiting for Newton robustness.
DiodeEval eval_diode(const Diode& d, double v, double temp) {
  const double vt = thermal_voltage(temp);
  const double nvt = d.ideality * vt;
  const double is_t = d.area * d.is_sat *
                      std::pow(temp / 300.0, d.xti / d.ideality) *
                      std::exp((temp / 300.0 - 1.0) * d.eg / nvt);
  const double z = v / nvt;
  constexpr double z_max = 40.0;
  DiodeEval e;
  if (z > z_max) {
    const double e_max = std::exp(z_max);
    e.i = is_t * (e_max * (1.0 + z - z_max) - 1.0);
    e.g = is_t * e_max / nvt;
  } else {
    const double ez = std::exp(z);
    e.i = is_t * (ez - 1.0);
    e.g = is_t * ez / nvt + 1e-12;
  }
  return e;
}

}  // namespace

bool MnaAssembler::assemble(const la::Vector& x, la::Matrix& jac,
                            la::Vector& res) const {
  // Reuse the caller's storage across Newton iterations (and, via a
  // caller-held workspace, across timesteps): this sits on the transient
  // per-timestep hot path tracked by abl_tran_step_ms.
  if (jac.rows() != size_ || jac.cols() != size_)
    jac = la::Matrix(size_, size_);
  else
    std::fill(jac.data().begin(), jac.data().end(), 0.0);
  res.assign(size_, 0.0);
  auto v = [&](int node) {
    return node == 0 ? 0.0 : x[static_cast<std::size_t>(node) - 1];
  };
  auto idx = [](int node) { return static_cast<std::size_t>(node) - 1; };
  auto kcl = [&](int node, double current) {
    if (node != 0) res[idx(node)] += current;
  };
  auto stamp = [&](int node, int wrt, double g) {
    if (node != 0 && wrt != 0) jac(idx(node), idx(wrt)) += g;
  };

  // gmin from every node to ground.
  for (std::size_t i = 0; i < n_; ++i) {
    res[i] += gmin_ * x[i];
    jac(i, i) += gmin_;
  }

  for (const auto& r : ckt_.resistors()) {
    const double g = 1.0 / r.r;
    const double i = g * (v(r.a) - v(r.b));
    kcl(r.a, i);
    kcl(r.b, -i);
    stamp(r.a, r.a, g);
    stamp(r.a, r.b, -g);
    stamp(r.b, r.a, -g);
    stamp(r.b, r.b, g);
  }
  for (const auto& s : ckt_.isources()) {
    kcl(s.p, s.dc);
    kcl(s.n, -s.dc);
  }
  for (const auto& c : ckt_.vccs()) {
    const double i = c.gm * (v(c.cp) - v(c.cn));
    kcl(c.p, i);
    kcl(c.n, -i);
    stamp(c.p, c.cp, c.gm);
    stamp(c.p, c.cn, -c.gm);
    stamp(c.n, c.cp, -c.gm);
    stamp(c.n, c.cn, c.gm);
  }
  for (const auto& d : ckt_.diodes()) {
    const auto e = eval_diode(d, v(d.a) - v(d.c), temp_);
    kcl(d.a, e.i);
    kcl(d.c, -e.i);
    stamp(d.a, d.a, e.g);
    stamp(d.a, d.c, -e.g);
    stamp(d.c, d.a, -e.g);
    stamp(d.c, d.c, e.g);
  }
  for (const auto& mos : ckt_.mosfets()) {
    const MosOp op = eval_mosfet(mos.model, mos.w, mos.l, v(mos.g) - v(mos.s),
                                 v(mos.d) - v(mos.s), temp_);
    kcl(mos.d, op.ids);
    kcl(mos.s, -op.ids);
    stamp(mos.d, mos.g, op.gm);
    stamp(mos.d, mos.d, op.gds);
    stamp(mos.d, mos.s, -(op.gm + op.gds));
    stamp(mos.s, mos.g, -op.gm);
    stamp(mos.s, mos.d, -op.gds);
    stamp(mos.s, mos.s, op.gm + op.gds);
  }
  // Companion stamps (transient integration rule for capacitors).
  if (companions_ != nullptr) {
    for (const auto& c : *companions_) {
      const double i = c.geq * (v(c.a) - v(c.b)) + c.ieq;
      kcl(c.a, i);
      kcl(c.b, -i);
      stamp(c.a, c.a, c.geq);
      stamp(c.a, c.b, -c.geq);
      stamp(c.b, c.a, -c.geq);
      stamp(c.b, c.b, c.geq);
    }
  }
  // Voltage sources: branch current unknowns.
  const auto& vs = ckt_.vsources();
  for (std::size_t k = 0; k < vs.size(); ++k) {
    const std::size_t bi = n_ + k;
    const double ib = x[bi];
    const double value = vsrc_values_ != nullptr ? (*vsrc_values_)[k] : vs[k].dc;
    kcl(vs[k].p, ib);
    kcl(vs[k].n, -ib);
    if (vs[k].p != 0) jac(idx(vs[k].p), bi) += 1.0;
    if (vs[k].n != 0) jac(idx(vs[k].n), bi) -= 1.0;
    res[bi] = v(vs[k].p) - v(vs[k].n) - value;
    if (vs[k].p != 0) jac(bi, idx(vs[k].p)) += 1.0;
    if (vs[k].n != 0) jac(bi, idx(vs[k].n)) -= 1.0;
  }
  for (double r : res)
    if (!std::isfinite(r)) return false;
  return true;
}

bool MnaAssembler::newton(la::Vector& x, const NewtonOptions& opts,
                          std::string* reason) const {
  la::Matrix& jac = jac_ws_;
  la::Vector& res = res_ws_;
  for (int it = 0; it < opts.max_iterations; ++it) {
    if (!assemble(x, jac, res)) {
      if (reason) *reason = "non-finite device currents in the MNA residual";
      return false;
    }
    for (auto& r : res) r = -r;
    auto step = la::lu_solve(jac, res);
    if (!step) {
      if (reason) *reason = "singular MNA Jacobian";
      return false;
    }
    double max_dv = 0.0;
    for (std::size_t i = 0; i < size_; ++i) {
      double dv = (*step)[i];
      if (i < n_) dv = std::clamp(dv, -opts.max_step, opts.max_step);
      x[i] += dv;
      if (i < n_) max_dv = std::max(max_dv, std::abs(dv));
    }
    if (max_dv < opts.v_tol) return true;
  }
  if (reason)
    *reason = "Newton did not converge in " +
              std::to_string(opts.max_iterations) + " iterations";
  return false;
}

}  // namespace kato::sim

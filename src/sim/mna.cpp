#include "sim/mna.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "linalg/lu.hpp"
#include "util/fault.hpp"

namespace kato::sim {

std::string fmt_double(double v) {
  // Matches the historical std::ostringstream rendering ("%g" with 6
  // significant digits) without constructing a stream per call.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

MnaSolver resolve_mna_solver(MnaSolver requested, std::size_t size) {
  if (const char* env = std::getenv("KATO_SPARSE")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "dense") == 0)
      return MnaSolver::dense;
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "sparse") == 0)
      return MnaSolver::sparse;
    // Anything else ("", "auto") falls through to the request.
  }
  if (requested != MnaSolver::automatic) return requested;
  return size >= k_mna_sparse_crossover ? MnaSolver::sparse : MnaSolver::dense;
}

namespace {

struct DiodeEval {
  double i;
  double g;
};

/// Diode current with exponent limiting for Newton robustness.  The
/// temperature-dependent saturation-current term arrives precomputed (it
/// never changes across iterations of one analysis).
DiodeEval eval_diode(double nvt, double is_t, double v) {
  const double z = v / nvt;
  constexpr double z_max = 40.0;
  DiodeEval e;
  if (z > z_max) {
    const double e_max = std::exp(z_max);
    e.i = is_t * (e_max * (1.0 + z - z_max) - 1.0);
    e.g = is_t * e_max / nvt;
  } else {
    const double ez = std::exp(z);
    e.i = is_t * (ez - 1.0);
    e.g = is_t * ez / nvt + 1e-12;
  }
  return e;
}

/// Enumerate every Jacobian stamp destination in the canonical order
/// assemble_values consumes them.  `emit(row, col)` receives
/// la::k_sparse_npos coordinates for ground-involving stamps so the slot
/// sequence stays positionally aligned with the value adds.
template <typename Emit>
void for_each_stamp(const Circuit& ckt, std::size_t n,
                    const std::vector<CompanionStamp>* companions,
                    Emit&& emit) {
  constexpr std::size_t npos = la::k_sparse_npos;
  auto idx = [](int node) {
    return node == 0 ? npos : static_cast<std::size_t>(node) - 1;
  };
  auto pair4 = [&](int a, int b) {
    const std::size_t ia = idx(a);
    const std::size_t ib = idx(b);
    emit(ia, ia);
    emit(ia, ib);
    emit(ib, ia);
    emit(ib, ib);
  };
  for (std::size_t i = 0; i < n; ++i) emit(i, i);  // gmin diagonal
  for (const auto& r : ckt.resistors()) pair4(r.a, r.b);
  for (const auto& c : ckt.vccs()) {
    emit(idx(c.p), idx(c.cp));
    emit(idx(c.p), idx(c.cn));
    emit(idx(c.n), idx(c.cp));
    emit(idx(c.n), idx(c.cn));
  }
  for (const auto& d : ckt.diodes()) pair4(d.a, d.c);
  for (const auto& m : ckt.mosfets()) {
    emit(idx(m.d), idx(m.g));
    emit(idx(m.d), idx(m.d));
    emit(idx(m.d), idx(m.s));
    emit(idx(m.s), idx(m.g));
    emit(idx(m.s), idx(m.d));
    emit(idx(m.s), idx(m.s));
  }
  if (companions != nullptr)
    for (const auto& c : *companions) pair4(c.a, c.b);
  const auto& vs = ckt.vsources();
  for (std::size_t k = 0; k < vs.size(); ++k) {
    const std::size_t bi = n + k;
    emit(idx(vs[k].p), bi);
    emit(idx(vs[k].n), bi);
    emit(bi, idx(vs[k].p));
    emit(bi, idx(vs[k].n));
  }
}

}  // namespace

MnaAssembler::MnaAssembler(const Circuit& ckt, const MnaOptions& opts)
    : ckt_(ckt), gmin_(opts.gmin), temp_(opts.temp), n_(ckt.n_nodes() - 1),
      size_(ckt.mna_size()),
      solver_(resolve_mna_solver(opts.solver, ckt.mna_size())),
      device_(resolve_device_eval(opts.device_eval)) {
  diode_pre_.reserve(ckt_.diodes().size());
  const double vt = thermal_voltage(temp_);
  for (const auto& d : ckt_.diodes()) {
    const double nvt = d.ideality * vt;
    const double is_t = d.area * d.is_sat *
                        std::pow(temp_ / 300.0, d.xti / d.ideality) *
                        std::exp((temp_ / 300.0 - 1.0) * d.eg / nvt);
    diode_pre_.push_back({nvt, is_t});
  }

  // Hoist the MOSFET temperature/geometry terms into SoA arrays (the
  // per-Newton loop in assemble_values never touches MosInstance again).
  const auto& mosfets = ckt_.mosfets();
  mos_sign_.reserve(mosfets.size());
  mos_vth_.reserve(mosfets.size());
  mos_nvt2_.reserve(mosfets.size());
  mos_beta_.reserve(mosfets.size());
  mos_lambda_.reserve(mosfets.size());
  mos_d_.reserve(mosfets.size());
  mos_g_.reserve(mosfets.size());
  mos_s_.reserve(mosfets.size());
  mos_tab_.reserve(mosfets.size());
  auto row = [](int node) { return node == 0 ? -1 : node - 1; };
  for (const auto& mos : mosfets) {
    const MosPre p = mos_precompute(mos.model, mos.w, mos.l, temp_);
    mos_sign_.push_back(p.sign);
    mos_vth_.push_back(p.vth);
    mos_nvt2_.push_back(p.nvt2);
    mos_beta_.push_back(p.beta);
    mos_lambda_.push_back(p.lambda);
    mos_d_.push_back(row(mos.d));
    mos_g_.push_back(row(mos.g));
    mos_s_.push_back(row(mos.s));
    if (device_ == DeviceEval::table) {
      // Shared process-wide cache: repeated keys are pointer lookups, so
      // per-device fetching keeps mixed-model decks correct for free.
      bool hit = false;
      table_refs_.push_back(
          device_table_for(mos.model.subthreshold_n, temp_, &hit));
      mos_tab_.push_back(table_refs_.back().get());
      ++(hit ? stats_.device_table_hits : stats_.device_table_misses);
    } else {
      mos_tab_.push_back(nullptr);
    }
  }
}

MnaAssembler::MnaAssembler(const Circuit& ckt, double gmin, double temp,
                           MnaSolver solver)
    : MnaAssembler(ckt, MnaOptions{gmin, temp, solver,
                                   DeviceEval::automatic}) {}

void MnaAssembler::ensure_dense_plan() const {
  if (dense_ready_) return;
  dense_slots_.clear();
  for_each_stamp(ckt_, n_, companions_, [&](std::size_t r, std::size_t c) {
    dense_slots_.push_back(r == la::k_sparse_npos || c == la::k_sparse_npos
                               ? la::k_sparse_npos
                               : r * size_ + c);
  });
  dense_ready_ = true;
}

void MnaAssembler::ensure_sparse_plan() const {
  if (sparse_ready_) return;
  std::vector<la::Coord> coords;
  for_each_stamp(ckt_, n_, companions_, [&](std::size_t r, std::size_t c) {
    if (r != la::k_sparse_npos && c != la::k_sparse_npos)
      coords.push_back({r, c});
  });
  const la::SparsePattern pattern(size_, coords);
  sparse_slots_.clear();
  for_each_stamp(ckt_, n_, companions_, [&](std::size_t r, std::size_t c) {
    sparse_slots_.push_back(r == la::k_sparse_npos || c == la::k_sparse_npos
                                ? la::k_sparse_npos
                                : pattern.slot(r, c));
  });
  lu_.analyze(pattern);
  values_.assign(pattern.nnz(), 0.0);
  sparse_ready_ = true;
}

bool MnaAssembler::assemble_values(const la::Vector& x, double* vals,
                                   la::Vector& res,
                                   const std::vector<std::size_t>& slots) const {
  res.assign(size_, 0.0);
  auto v = [&](int node) {
    return node == 0 ? 0.0 : x[static_cast<std::size_t>(node) - 1];
  };
  auto idx = [](int node) { return static_cast<std::size_t>(node) - 1; };
  auto kcl = [&](int node, double current) {
    if (node != 0) res[idx(node)] += current;
  };
  // Stamps are consumed strictly in the canonical for_each_stamp order;
  // both walks iterate the device lists identically, so `s` stays aligned.
  std::size_t s = 0;
  auto add = [&](double g) {
    const std::size_t t = slots[s++];
    if (t != la::k_sparse_npos) vals[t] += g;
  };

  // gmin from every node to ground.
  for (std::size_t i = 0; i < n_; ++i) {
    res[i] += gmin_ * x[i];
    add(gmin_);
  }

  for (const auto& r : ckt_.resistors()) {
    const double g = 1.0 / r.r;
    const double i = g * (v(r.a) - v(r.b));
    kcl(r.a, i);
    kcl(r.b, -i);
    add(g);
    add(-g);
    add(-g);
    add(g);
  }
  for (const auto& src : ckt_.isources()) {
    kcl(src.p, src.dc);
    kcl(src.n, -src.dc);
  }
  for (const auto& c : ckt_.vccs()) {
    const double i = c.gm * (v(c.cp) - v(c.cn));
    kcl(c.p, i);
    kcl(c.n, -i);
    add(c.gm);
    add(-c.gm);
    add(-c.gm);
    add(c.gm);
  }
  for (std::size_t di = 0; di < ckt_.diodes().size(); ++di) {
    const auto& d = ckt_.diodes()[di];
    const auto e =
        eval_diode(diode_pre_[di].nvt, diode_pre_[di].is_t, v(d.a) - v(d.c));
    kcl(d.a, e.i);
    kcl(d.c, -e.i);
    add(e.g);
    add(-e.g);
    add(-e.g);
    add(e.g);
  }
  // MOSFETs: flat SoA loop over the hoisted per-device state.  One branch
  // on the resolved device path (table vs analytic) is hoisted out of the
  // loop; the analytic arm reproduces the historical eval_mosfet stamps
  // bit-for-bit (pinned by tests), the table arm replaces the softplus /
  // logistic transcendentals with the shared C1 table lookup.
  {
    const std::size_t n_mos = mos_beta_.size();
    auto vrow = [&](int r) {
      return r < 0 ? 0.0 : x[static_cast<std::size_t>(r)];
    };
    auto kcl_row = [&](int r, double current) {
      if (r >= 0) res[static_cast<std::size_t>(r)] += current;
    };
    auto stamp = [&](int d, int s, const MosOp& op) {
      kcl_row(d, op.ids);
      kcl_row(s, -op.ids);
      add(op.gm);
      add(op.gds);
      add(-(op.gm + op.gds));
      add(-op.gm);
      add(-op.gds);
      add(op.gm + op.gds);
    };
    if (device_ == DeviceEval::table) {
      for (std::size_t i = 0; i < n_mos; ++i) {
        const MosPre p{mos_sign_[i], mos_vth_[i], mos_nvt2_[i], mos_beta_[i],
                       mos_lambda_[i]};
        const double vs = vrow(mos_s_[i]);
        const MosOp op = eval_mosfet_table(*mos_tab_[i], p,
                                           vrow(mos_g_[i]) - vs,
                                           vrow(mos_d_[i]) - vs);
        stamp(mos_d_[i], mos_s_[i], op);
      }
    } else {
      for (std::size_t i = 0; i < n_mos; ++i) {
        const MosPre p{mos_sign_[i], mos_vth_[i], mos_nvt2_[i], mos_beta_[i],
                       mos_lambda_[i]};
        const double vs = vrow(mos_s_[i]);
        const MosOp op =
            eval_mosfet_pre(p, vrow(mos_g_[i]) - vs, vrow(mos_d_[i]) - vs);
        stamp(mos_d_[i], mos_s_[i], op);
      }
    }
  }
  // Companion stamps (transient integration rule for capacitors).
  if (companions_ != nullptr) {
    for (const auto& c : *companions_) {
      const double i = c.geq * (v(c.a) - v(c.b)) + c.ieq;
      kcl(c.a, i);
      kcl(c.b, -i);
      add(c.geq);
      add(-c.geq);
      add(-c.geq);
      add(c.geq);
    }
  }
  // Voltage sources: branch current unknowns.
  const auto& vs = ckt_.vsources();
  for (std::size_t k = 0; k < vs.size(); ++k) {
    const std::size_t bi = n_ + k;
    const double ib = x[bi];
    const double value = vsrc_values_ != nullptr ? (*vsrc_values_)[k] : vs[k].dc;
    kcl(vs[k].p, ib);
    kcl(vs[k].n, -ib);
    add(1.0);
    add(-1.0);
    res[bi] = v(vs[k].p) - v(vs[k].n) - value;
    add(1.0);
    add(-1.0);
  }
  // The two walks (for_each_stamp emitting slots, this one consuming them)
  // are hand-aligned; a divergence must fail loudly, not corrupt stamps.
  if (s != slots.size())
    throw std::logic_error(
        "MnaAssembler: stamp walk consumed " + std::to_string(s) +
        " slots but the plan has " + std::to_string(slots.size()) +
        " (for_each_stamp and assemble_values diverged)");
  for (double r : res)
    if (!std::isfinite(r)) return false;
  return true;
}

bool MnaAssembler::assemble(const la::Vector& x, la::Matrix& jac,
                            la::Vector& res) const {
  ensure_dense_plan();
  // Reuse the caller's storage across Newton iterations (and, via a
  // caller-held workspace, across timesteps): this sits on the transient
  // per-timestep hot path tracked by abl_tran_step_ms.
  if (jac.rows() != size_ || jac.cols() != size_)
    jac = la::Matrix(size_, size_);
  else
    std::fill(jac.data().begin(), jac.data().end(), 0.0);
  return assemble_values(x, jac.data().data(), res, dense_slots_);
}

bool MnaAssembler::newton_dense(la::Vector& x, const NewtonOptions& opts,
                                std::string* reason) const {
  la::Matrix& jac = jac_ws_;
  la::Vector& res = res_ws_;
  ++stats_.newton_solves;
  for (int it = 0; it < opts.max_iterations; ++it) {
    // Cooperative deadline poll, amortized: a clock read per sub-microsecond
    // iteration would cost real time, one per 16 catches runaways just fine —
    // and polling at 15/31/... keeps quickly-converging solves (the common
    // case: a handful of iterations per timestep) entirely clock-free.
    if ((it & 15) == 15 && util::deadline_exceeded()) {
      if (reason) *reason = "deadline exceeded (KATO_EVAL_DEADLINE_MS)";
      return false;
    }
    ++stats_.newton_iters;
    if (!assemble(x, jac, res)) {
      if (reason) *reason = "non-finite device currents in the MNA residual";
      return false;
    }
    for (auto& r : res) r = -r;
    // In-place: jac/res are re-filled next iteration anyway, so the
    // historical pass-by-value copies bought nothing.
    if (!la::lu_solve_into(jac, res, step_ws_)) {
      if (reason) *reason = "singular MNA Jacobian";
      return false;
    }
    // The dense path factors from scratch every iteration; counting the
    // first as "first factor" keeps the first/refactor split meaningful
    // across both solver paths (an assembler uses exactly one).
    ++(stats_.lu_first_factors == 0 ? stats_.lu_first_factors
                                    : stats_.lu_refactors);
    double max_dv = 0.0;
    bool clamped = false;
    for (std::size_t i = 0; i < size_; ++i) {
      double dv = step_ws_[i];
      if (i < n_) {
        const double raw = dv;
        dv = std::clamp(dv, -opts.max_step, opts.max_step);
        clamped |= dv != raw;
      }
      x[i] += dv;
      if (i < n_) max_dv = std::max(max_dv, std::abs(dv));
    }
    if (clamped) ++stats_.damping_clamps;
    if (max_dv < opts.v_tol) return true;
  }
  if (reason)
    *reason = "Newton did not converge in " +
              std::to_string(opts.max_iterations) + " iterations";
  return false;
}

bool MnaAssembler::newton_sparse(la::Vector& x, const NewtonOptions& opts,
                                 std::string* reason) const {
  ensure_sparse_plan();
  la::Vector& res = res_ws_;
  ++stats_.newton_solves;
  for (int it = 0; it < opts.max_iterations; ++it) {
    if ((it & 15) == 15 && util::deadline_exceeded()) {
      if (reason) *reason = "deadline exceeded (KATO_EVAL_DEADLINE_MS)";
      return false;
    }
    ++stats_.newton_iters;
    std::fill(values_.begin(), values_.end(), 0.0);
    if (!assemble_values(x, values_.data(), res, sparse_slots_)) {
      if (reason) *reason = "non-finite device currents in the MNA residual";
      return false;
    }
    for (auto& r : res) r = -r;
    // First iteration of the assembler's life pivots and records the
    // symbolic structure; every later call here — across iterations, gmin
    // rungs and timesteps — is an in-place numeric refactorization.  A
    // pivot-pass delta on a refactor means the recorded pivot order went
    // stale and the factorization fell back to a fresh pivoting pass.
    const bool first_factor = !lu_.factored();
    const std::size_t pivots_before = lu_.pivot_passes();
    if (!lu_.factor(values_)) {
      if (reason) *reason = "singular MNA Jacobian";
      return false;
    }
    if (first_factor) {
      ++stats_.lu_first_factors;
    } else {
      ++stats_.lu_refactors;
      stats_.lu_pivot_fallbacks += lu_.pivot_passes() - pivots_before;
    }
    lu_.solve(res, step_ws_);
    // Match the dense path's contract: a non-finite step leaves x untouched
    // (the dense LU reports those as singular before applying anything).
    for (double dv : step_ws_)
      if (!std::isfinite(dv)) {
        if (reason) *reason = "singular MNA Jacobian";
        return false;
      }
    double max_dv = 0.0;
    bool clamped = false;
    for (std::size_t i = 0; i < size_; ++i) {
      double dv = step_ws_[i];
      if (i < n_) {
        const double raw = dv;
        dv = std::clamp(dv, -opts.max_step, opts.max_step);
        clamped |= dv != raw;
      }
      x[i] += dv;
      if (i < n_) max_dv = std::max(max_dv, std::abs(dv));
    }
    if (clamped) ++stats_.damping_clamps;
    if (max_dv < opts.v_tol) return true;
  }
  if (reason)
    *reason = "Newton did not converge in " +
              std::to_string(opts.max_iterations) + " iterations";
  return false;
}

bool MnaAssembler::newton(la::Vector& x, const NewtonOptions& opts,
                          std::string* reason) const {
  return solver_ == MnaSolver::sparse ? newton_sparse(x, opts, reason)
                                      : newton_dense(x, opts, reason);
}

}  // namespace kato::sim

#pragma once
// AC small-signal analysis: the circuit is linearized at a DC operating point
// (MOSFETs become gm/gds + gate caps, diodes become gd) and the complex MNA
// system (G + jwC) x = b is solved per frequency point.  Voltage sources with
// a nonzero `ac` field form the stimulus; everything else is quiet.
//
// The linearization consumes DcResult::mosfet_op, which solve_dc always
// fills from the analytic reference model at the converged voltages —
// regardless of whether the Newton loop ran the table or the analytic
// device path (sim::DeviceEval) — so the AC stamps themselves never carry
// interpolation error; only the operating point the table path converged to
// can differ, within the table's accuracy bound.

#include <complex>
#include <vector>

#include "linalg/lu.hpp"
#include "obs/obs.hpp"
#include "sim/circuit.hpp"
#include "sim/dc.hpp"

namespace kato::sim {

struct AcSweep {
  std::vector<double> freq;                ///< Hz
  std::vector<la::CVector> node_voltage;   ///< per frequency, indexed by node
  bool ok = false;
  /// Solver-work counters for the sweep: points solved, complex-LU
  /// first-factor vs per-point refactor split (ac_refactors counts the
  /// sparse path's numeric refactorizations reusing the symbolic analysis).
  obs::SimStats stats;

  std::complex<double> v(std::size_t fi, int node) const {
    return node == 0 ? std::complex<double>(0.0, 0.0)
                     : node_voltage[fi][static_cast<std::size_t>(node)];
  }
};

/// Logarithmic frequency grid [f_lo, f_hi] with `per_decade` points/decade.
std::vector<double> log_freq_grid(double f_lo, double f_hi, int per_decade);

/// One linear capacitor between two nodes (either may be ground).
struct CapElement {
  int a;
  int b;
  double c;
};

/// Every linear capacitance in the circuit: explicit capacitors plus the
/// MOSFET parasitics (cgs/cgd/cdb) — the dynamic element set shared by the
/// AC and transient analyses, so both see identical circuit dynamics.
std::vector<CapElement> linear_caps(const Circuit& ckt);

/// Run the sweep.  `op` must come from a converged solve_dc on `ckt`.
/// One factorization workspace is kept across the whole sweep: the dense
/// path reuses its matrix/rhs buffers per frequency point, the sparse path
/// (chosen by `solver`/system size, see sim::MnaSolver) additionally reuses
/// the symbolic factorization — only the jwC entries change per point.
AcSweep solve_ac(const Circuit& ckt, const DcResult& op,
                 const std::vector<double>& freqs,
                 MnaSolver solver = MnaSolver::automatic);

// --- Transfer-function metric extraction (used for gain/GBW/PM/PSRR) ------

/// |H| in dB at the lowest frequency point.
double dc_gain_db(const AcSweep& sweep, int out_node);

/// Unity-gain frequency of |H(f)| = 1 (log-interpolated), or 0 when the
/// magnitude never crosses unity.
double unity_gain_freq(const AcSweep& sweep, int out_node);

/// Phase margin in degrees: 180 minus the unwrapped phase lag accumulated
/// between DC and the unity-gain crossing.  The sweep must start below the
/// dominant pole so the first grid point carries the DC phase; that
/// reference is snapped to the nearest multiple of 180 degrees, making the
/// result independent of output polarity.  Returns 0 when |H| never crosses
/// unity.
double phase_margin_deg(const AcSweep& sweep, int out_node);

/// |H| in dB at frequency f (nearest grid point).
double gain_db_at(const AcSweep& sweep, int out_node, double f);

/// Phase margin with the closed-loop stability screen shared by the OpAmp
/// benchmarks and the netlist `pm()` measure: the raw margin is clamped to
/// [0, 180] degrees, and a margin >= 150 degrees means the unity crossing
/// happens through the compensation-cap feedforward path rather than the
/// amplifying path — the open-loop PM measurement is meaningless there, and
/// such designs ring in closed loop, so they report 0 (unstable).
double stable_phase_margin_deg(const AcSweep& sweep, int out_node);

}  // namespace kato::sim

#include "sim/transient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "sim/ac.hpp"
#include "util/fault.hpp"

namespace kato::sim {

namespace {

constexpr double k_swing_eps = 1e-12;  ///< below this, "no transition"

/// Waveform discontinuities / slope breaks in (0, tstop): the step control
/// lands on them exactly and restarts with backward Euler afterwards.
void waveform_breakpoints(const Waveform& w, double tstop,
                          std::vector<double>& out) {
  auto add = [&](double t) {
    if (t > 0.0 && t < tstop) out.push_back(t);
  };
  switch (w.kind) {
    case Waveform::Kind::none:
      return;
    case Waveform::Kind::pulse:
      for (double base = w.td; base < tstop; base += w.period) {
        add(base);
        add(base + w.tr);
        add(base + w.tr + w.pw);
        add(base + w.tr + w.pw + w.tf);
        // One pulse (period == 0), or a cap against degenerate decks with
        // millions of periods — later corners are left to the LTE control.
        if (w.period <= 0.0 || out.size() > 65536) break;
      }
      return;
    case Waveform::Kind::sine:
      add(w.td);
      return;
    case Waveform::Kind::pwl:
      for (double t : w.t) add(t);
      return;
  }
}

/// Lagrange extrapolation of the node-voltage part of the MNA vector
/// through the accepted history points, evaluated at time t.
la::Vector predict(const std::vector<double>& ts,
                   const std::vector<la::Vector>& xs, double t) {
  const std::size_t m = ts.size();
  la::Vector p(xs[0].size(), 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double w = 1.0;
    for (std::size_t j = 0; j < m; ++j)
      if (j != i) w *= (t - ts[j]) / (ts[i] - ts[j]);
    for (std::size_t k = 0; k < p.size(); ++k) p[k] += w * xs[i][k];
  }
  return p;
}

}  // namespace

TranResult solve_tran(const Circuit& ckt, const TranOptions& opts,
                      const DcResult* op0) {
  TranResult out;
  if (!(opts.tstop > 0.0)) {
    out.reason = "tstop must be > 0";
    return out;
  }
  KATO_OBS_SPAN("tran_solve");
  KATO_OBS_STAGE(tran);
  double tstep = opts.tstep > 0.0 ? opts.tstep : opts.tstop / 1000.0;
  tstep = std::min(tstep, opts.tstop);
  const double dtmax =
      opts.fixed_step ? tstep
                      : std::min(opts.dtmax > 0.0 ? opts.dtmax : opts.tstop / 50.0,
                                 opts.tstop);
  double hmin = opts.tstop * 1e-12;  // recovery may cut this floor once

  const std::size_t n = ckt.n_nodes() - 1;
  const std::size_t nv = ckt.vsources().size();
  const std::size_t size = ckt.mna_size();

  std::vector<double> src(nv, 0.0);
  auto eval_sources = [&](double t) {
    for (std::size_t k = 0; k < nv; ++k)
      src[k] = waveform_value(ckt.vsources()[k].wave, ckt.vsources()[k].dc, t);
  };

  // --- t = 0 operating point ---------------------------------------------
  eval_sources(0.0);
  bool reuse = op0 != nullptr && op0->converged &&
               op0->node_voltage.size() == ckt.n_nodes() &&
               op0->vsource_current.size() == nv;
  if (reuse)
    for (std::size_t k = 0; k < nv; ++k)
      if (src[k] != ckt.vsources()[k].dc) reuse = false;

  la::Vector x(size, 0.0);
  if (reuse) {
    for (std::size_t i = 0; i < n; ++i) x[i] = op0->node_voltage[i + 1];
    for (std::size_t k = 0; k < nv; ++k) x[n + k] = op0->vsource_current[k];
  } else {
    DcOptions dc = opts.dc;
    dc.temp = opts.temp;
    dc.solver = opts.solver;
    dc.device_eval = opts.device_eval;
    dc.vsource_override = src;
    const la::Vector* warm =
        op0 != nullptr && op0->node_voltage.size() == ckt.n_nodes()
            ? &op0->node_voltage
            : nullptr;
    const DcResult op = solve_dc(ckt, dc, warm);
    out.stats.merge(op.stats);
    if (!op.converged) {
      out.reason = "t=0 operating point failed: " +
                   (op.reason.empty() ? "did not converge" : op.reason);
      return out;
    }
    for (std::size_t i = 0; i < n; ++i) x[i] = op.node_voltage[i + 1];
    for (std::size_t k = 0; k < nv; ++k) x[n + k] = op.vsource_current[k];
  }
  for (const auto& [node, vic] : opts.initial_conditions) {
    if (node <= 0 || static_cast<std::size_t>(node) >= ckt.n_nodes()) {
      out.reason = "initial condition on unknown node " + std::to_string(node);
      return out;
    }
    x[static_cast<std::size_t>(node) - 1] = vic;
  }

  // --- capacitor states (explicit + MOSFET parasitics) --------------------
  const auto caps = linear_caps(ckt);
  auto vat = [&](const la::Vector& xx, int node) {
    return node == 0 ? 0.0 : xx[static_cast<std::size_t>(node) - 1];
  };
  std::vector<double> cap_v(caps.size());
  std::vector<double> cap_i(caps.size(), 0.0);  // i_C = 0 at the DC point
  for (std::size_t i = 0; i < caps.size(); ++i)
    cap_v[i] = vat(x, caps[i].a) - vat(x, caps[i].b);

  // --- waveform breakpoints ----------------------------------------------
  std::vector<double> breaks;
  for (const auto& vs : ckt.vsources())
    waveform_breakpoints(vs.wave, opts.tstop, breaks);
  std::sort(breaks.begin(), breaks.end());

  auto record = [&](double t) {
    out.time.push_back(t);
    la::Vector nodes(ckt.n_nodes(), 0.0);
    for (std::size_t i = 0; i < n; ++i) nodes[i + 1] = x[i];
    out.node_voltage.push_back(std::move(nodes));
    std::vector<double> ivs(nv);
    for (std::size_t k = 0; k < nv; ++k) ivs[k] = x[n + k];
    out.vsource_current.push_back(std::move(ivs));
  };
  record(0.0);

  // One assembler for every timestep: on the sparse path the stamp plan and
  // the symbolic factorization are computed at the first Newton iteration
  // and reused across the entire run (companion/source values change, the
  // pattern never does).
  // (unique_ptr so the device-eval recovery fallback below can rebuild it —
  // the reference member makes MnaAssembler itself non-assignable).
  auto assembler = std::make_unique<MnaAssembler>(
      ckt, MnaOptions{/*gmin=*/1e-12, opts.temp, opts.solver,
                      opts.device_eval});
  std::vector<CompanionStamp> comps(caps.size());
  assembler->set_companions(&comps);
  assembler->set_vsource_values(&src);

  // Predictor history: up to 3 most recent accepted points.
  std::vector<double> hist_t;
  std::vector<la::Vector> hist_x;
  auto push_history = [&](double t) {
    if (hist_t.size() == 3) {
      hist_t.erase(hist_t.begin());
      hist_x.erase(hist_x.begin());
    }
    hist_t.push_back(t);
    hist_x.push_back(x);
  };
  push_history(0.0);

  double t = 0.0;
  double h = std::min(tstep, dtmax);
  bool be_next = true;  // backward-Euler startup
  std::size_t next_break = 0;
  double grid_next = tstep;  // fixed_step: next nominal k*tstep point
  int rejects = 0;
  constexpr std::size_t max_points = 2000000;

  // Per-timestep tracing records one clock read per step into a cache-hot
  // local mark vector (the boundary doubles as the end of a step and the
  // start of the next) and hands the whole chain to the trace buffer in one
  // bulk call when the solve exits — the loop body is ~1.5 us on the
  // benchmark decks, and emitting events one at a time from inside it blew
  // the <=1.05 traced-eval bench gate on cold buffer lines alone.
  auto merge_stats = [&] { out.stats.merge(assembler->stats()); };
  const bool trace_steps = obs::trace_enabled();
  std::vector<obs::SpanMark> step_marks;
  if (trace_steps) step_marks.reserve(512);
  const std::uint64_t steps_t0 = trace_steps ? obs::trace_now_ns() : 0;
  struct StepFlush {
    bool on;
    std::uint64_t t0;
    const std::vector<obs::SpanMark>& marks;
    ~StepFlush() {
      if (on) obs::emit_spans(marks.data(), marks.size(), t0);
    }
  } step_flush{trace_steps, steps_t0, step_marks};
  auto tick = [&](const char* name) {
    if (trace_steps) step_marks.push_back({name, obs::trace_now_ns()});
  };

  int floor_cuts = 0;  // step-floor recovery fires at most once per run
  std::uint64_t steps_polled = 0;

  while (t < opts.tstop * (1.0 - 1e-12)) {
    // Amortized over 8 steps: sub-us timesteps make a per-step clock read
    // measurable against the <= 1.05 idle-overhead gate, and millisecond
    // deadline budgets cannot notice an 8-step polling granularity.
    if ((steps_polled++ & 7) == 0 && util::deadline_exceeded()) {
      ++out.stats.deadline_kills;
      out.reason =
          "deadline exceeded (KATO_EVAL_DEADLINE_MS) at t=" + fmt_double(t);
      merge_stats();
      return out;
    }
    if (out.time.size() >= max_points) {
      out.reason = "more than " + std::to_string(max_points) +
                   " timesteps before tstop (step control collapsed)";
      merge_stats();
      return out;
    }
    double h_try = std::min({h, dtmax, opts.tstop - t});
    bool at_break = false;
    if (!opts.fixed_step) {
      while (next_break < breaks.size() && breaks[next_break] <= t + hmin)
        ++next_break;
      if (next_break < breaks.size() &&
          t + h_try > breaks[next_break] - hmin) {
        h_try = breaks[next_break] - t;
        at_break = true;
      }
    } else {
      // Land every step on the nominal grid, so a Newton-failure recovery
      // sub-step (below) re-aligns instead of de-phasing all later points.
      while (grid_next <= t + hmin) grid_next += tstep;
      if (t + h_try > grid_next - hmin)
        h_try = std::min(grid_next, opts.tstop) - t;
    }

    const bool use_be = opts.backward_euler || be_next;
    for (std::size_t i = 0; i < caps.size(); ++i) {
      const double geq = (use_be ? 1.0 : 2.0) * caps[i].c / h_try;
      const double ieq =
          use_be ? -geq * cap_v[i] : -geq * cap_v[i] - cap_i[i];
      comps[i] = {caps[i].a, caps[i].b, geq, ieq};
    }
    eval_sources(t + h_try);

    la::Vector x_new = x;
    std::string why;
    // tran:nan_device stands in for a table model returning NaN mid-run:
    // the step is rejected exactly as if Newton had seen the NaN, driving
    // the recovery ladder below (step-floor cut, then the analytic
    // device-eval rebuild, which as a side effect disarms this site).
    const bool inject_nan =
        assembler->device_eval() == DeviceEval::table &&
        util::fault_fires(util::FaultSite::tran_nan_device);
    if (inject_nan || !assembler->newton(x_new, opts.newton, &why)) {
      if (inject_nan) why = "injected fault tran:nan_device";
      if (util::deadline_exceeded()) {
        ++out.stats.deadline_kills;
        out.reason = "deadline exceeded (KATO_EVAL_DEADLINE_MS) at t=" +
                     fmt_double(t + h_try);
        merge_stats();
        return out;
      }
      h = h_try * 0.25;
      be_next = true;
      ++out.stats.tran_newton_rejects;
      if (h < hmin || ++rejects > 100) {
        if (util::recovery_enabled() && floor_cuts == 0) {
          // Recovery stage 1: cut the step floor three decades and restart
          // the integrator (BE + fresh history) from the last accepted
          // point — stiff corners often yield to a much smaller h.
          hmin *= 1e-3;
          ++floor_cuts;
          ++out.stats.tran_stepfloor_restarts;
          rejects = 0;
          h = std::min(tstep, dtmax);
          be_next = true;
          hist_t.clear();
          hist_x.clear();
          push_history(t);
          tick("tran_step_rejected");
          continue;
        }
        if (util::recovery_enabled() &&
            assembler->device_eval() == DeviceEval::table) {
          // Recovery stage 2: rebuild the assembler on the analytic device
          // path.  Table interpolation error near a sharp region boundary
          // can wedge Newton where the exact model converges; the rebuild
          // re-plans stamps and symbolic factorization from scratch.
          out.stats.merge(assembler->stats());
          assembler = std::make_unique<MnaAssembler>(
              ckt, MnaOptions{/*gmin=*/1e-12, opts.temp, opts.solver,
                              DeviceEval::analytic});
          assembler->set_companions(&comps);
          assembler->set_vsource_values(&src);
          ++out.stats.tran_device_fallbacks;
          floor_cuts = 0;  // the analytic path gets its own floor cut
          rejects = 0;
          h = std::min(tstep, dtmax);
          be_next = true;
          hist_t.clear();
          hist_x.clear();
          push_history(t);
          tick("tran_step_rejected");
          continue;
        }
        out.reason = "Newton failed at t=" + fmt_double(t + h_try) + " (step " +
                     std::to_string(out.time.size()) + ", " +
                     std::to_string(rejects) + " rejects): " + why;
        merge_stats();
        return out;
      }
      tick("tran_step_rejected");
      continue;
    }

    // LTE control: predictor-corrector difference against reltol/abstol.
    double grow = 2.0;
    if (!opts.fixed_step && hist_t.size() >= 2) {
      const la::Vector x_pred = predict(hist_t, hist_x, t + h_try);
      double ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        const double err = std::abs(x_new[i] - x_pred[i]);
        if (err <= 0.0) continue;
        const double tol = opts.reltol * std::max(std::abs(x_new[i]),
                                                  std::abs(x_pred[i])) +
                           opts.abstol;
        ratio = std::min(ratio, tol / err);
      }
      const double order_exp = use_be ? 0.5 : 1.0 / 3.0;
      if (ratio < 1.0 && h_try > 4.0 * hmin) {
        h = h_try * std::max(0.1, 0.9 * std::pow(ratio, order_exp));
        ++out.stats.tran_steps_rejected;
        if (++rejects > 100) {
          out.reason = "LTE step control stalled at t=" + fmt_double(t) +
                       " (step " + std::to_string(out.time.size()) + ", " +
                       std::to_string(rejects) + " rejects)";
          merge_stats();
          return out;
        }
        tick("tran_step_rejected");
        continue;
      }
      grow = std::clamp(0.9 * std::pow(ratio, order_exp), 0.3, 2.0);
    }

    // Accept: update capacitor companion states from this step's rule.
    for (std::size_t i = 0; i < caps.size(); ++i) {
      const double vc = vat(x_new, caps[i].a) - vat(x_new, caps[i].b);
      cap_i[i] = comps[i].geq * vc + comps[i].ieq;
      cap_v[i] = vc;
    }
    x = std::move(x_new);
    t += h_try;
    record(t);
    ++out.stats.tran_steps_accepted;
    if (use_be) ++out.stats.tran_be_steps;
    tick("tran_step");
    rejects = 0;
    if (at_break) {
      // Discontinuity: restart the integrator (BE + fresh history) so the
      // trapezoidal rule does not ring across the corner.
      hist_t.clear();
      hist_x.clear();
      push_history(t);
      be_next = true;
      h = std::min(tstep, dtmax);
    } else {
      push_history(t);
      be_next = false;
      h = opts.fixed_step ? tstep : h_try * grow;
    }
  }

  merge_stats();
  out.ok = true;
  return out;
}

// --- Measure library -------------------------------------------------------

namespace {

/// First time v(node) crosses `level` moving in direction `dir` (+1 rising,
/// -1 falling) at or after `t_from`; NaN when it never does.
double first_crossing(const TranResult& r, int node, double level, int dir,
                      double t_from) {
  for (std::size_t i = 1; i < r.time.size(); ++i) {
    if (r.time[i] < t_from) continue;
    const double v0 = r.v(i - 1, node);
    const double v1 = r.v(i, node);
    const bool hit = dir > 0 ? (v0 < level && v1 >= level)
                             : (v0 > level && v1 <= level);
    if (!hit) continue;
    const double tc =
        r.time[i - 1] + (level - v0) / (v1 - v0) * (r.time[i] - r.time[i - 1]);
    if (tc >= t_from) return tc;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

/// 50% crossing of a node's own initial->final transition; NaN when the
/// node has no swing or never crosses.
double half_swing_crossing(const TranResult& r, int node) {
  const double v0 = r.v(0, node);
  const double vf = r.v(r.n_points() - 1, node);
  const double swing = vf - v0;
  if (std::abs(swing) < k_swing_eps)
    return std::numeric_limits<double>::quiet_NaN();
  return first_crossing(r, node, v0 + 0.5 * swing, swing > 0.0 ? +1 : -1,
                        r.time.front());
}

}  // namespace

double tran_value_at(const TranResult& res, int node, double t) {
  if (res.time.empty()) return 0.0;
  if (t <= res.time.front()) return res.v(0, node);
  if (t >= res.time.back()) return res.v(res.n_points() - 1, node);
  std::size_t i = 1;
  while (res.time[i] < t) ++i;
  const double f = (t - res.time[i - 1]) / (res.time[i] - res.time[i - 1]);
  return res.v(i - 1, node) + f * (res.v(i, node) - res.v(i - 1, node));
}

double tran_vmax(const TranResult& res, int node) {
  double m = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < res.n_points(); ++i)
    m = std::max(m, res.v(i, node));
  return m;
}

double tran_vmin(const TranResult& res, int node) {
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < res.n_points(); ++i)
    m = std::min(m, res.v(i, node));
  return m;
}

double tran_slew_rate(const TranResult& res, int node) {
  if (res.n_points() < 2) return 0.0;
  const double v0 = res.v(0, node);
  const double vf = res.v(res.n_points() - 1, node);
  const double swing = vf - v0;
  if (std::abs(swing) < k_swing_eps) return 0.0;
  const int dir = swing > 0.0 ? +1 : -1;
  const double t10 =
      first_crossing(res, node, v0 + 0.1 * swing, dir, res.time.front());
  if (std::isnan(t10)) return 0.0;
  const double t90 = first_crossing(res, node, v0 + 0.9 * swing, dir, t10);
  if (std::isnan(t90) || !(t90 > t10)) return 0.0;
  return 0.8 * std::abs(swing) / (t90 - t10);
}

double tran_settling_time(const TranResult& res, int node, double tol_frac) {
  if (res.n_points() < 2) return 0.0;
  const double v0 = res.v(0, node);
  const double vf = res.v(res.n_points() - 1, node);
  const double swing = vf - v0;
  if (std::abs(swing) < k_swing_eps) return 0.0;
  const double band = std::abs(tol_frac) * std::abs(swing);
  // Last excursion outside the band around the final value.  The final
  // sample is the band's center, so last_out < n_points() - 1 always and
  // the interpolation below is well-defined.
  std::size_t last_out = res.n_points();  // sentinel: never out
  for (std::size_t i = res.n_points(); i-- > 0;) {
    if (std::abs(res.v(i, node) - vf) > band) {
      last_out = i;
      break;
    }
  }
  if (last_out == res.n_points()) return 0.0;
  // Interpolate the re-entry into the band between last_out and last_out+1.
  const double va = res.v(last_out, node);
  const double vb = res.v(last_out + 1, node);
  const double edge = vf + (va > vf ? band : -band);
  const double f = vb == va ? 1.0 : (edge - va) / (vb - va);
  return res.time[last_out] +
         f * (res.time[last_out + 1] - res.time[last_out]);
}

double tran_overshoot(const TranResult& res, int node) {
  if (res.n_points() < 2) return 0.0;
  const double v0 = res.v(0, node);
  const double vf = res.v(res.n_points() - 1, node);
  const double swing = vf - v0;
  if (std::abs(swing) < k_swing_eps) return 0.0;
  const double peak = swing > 0.0 ? tran_vmax(res, node) - vf
                                  : vf - tran_vmin(res, node);
  return std::max(0.0, peak / std::abs(swing));
}

double tran_prop_delay(const TranResult& res, int in_node, int out_node) {
  if (res.n_points() < 2) return 0.0;
  const double window = res.time.back() - res.time.front();
  const double t_in = half_swing_crossing(res, in_node);
  const double t_out = half_swing_crossing(res, out_node);
  // Missing crossing: return 2x the window — finite (GP-safe) yet strictly
  // larger than any genuine delay, so worst-case aggregation over corners
  // ranks the failure as worst and callers can tell it apart from a real
  // measurement (which is always < window).
  if (std::isnan(t_in) || std::isnan(t_out)) return 2.0 * window;
  // An output crossing ahead of the input's (shoot-through, asymmetric
  // swings) is reported as zero delay, never negative.
  return std::max(0.0, t_out - t_in);
}

double tran_avg_power(const TranResult& res, const Circuit& ckt,
                      std::size_t vsource_index) {
  if (res.n_points() == 0) return 0.0;
  const auto& vs = ckt.vsources()[vsource_index];
  auto power = [&](std::size_t i) {
    const double v = res.v(i, vs.p) - res.v(i, vs.n);
    // Branch current is positive p -> n through the source; a source
    // delivering power pushes current out of p, i.e. negative branch current.
    return v * -res.vsource_current[i][vsource_index];
  };
  if (res.n_points() == 1) return power(0);
  double acc = 0.0;
  for (std::size_t i = 1; i < res.n_points(); ++i)
    acc += 0.5 * (power(i) + power(i - 1)) * (res.time[i] - res.time[i - 1]);
  return acc / (res.time.back() - res.time.front());
}

}  // namespace kato::sim

#pragma once
// Shared MNA Newton assembler used by the DC and transient solvers.
//
// The assembler stamps the nonlinear device equations (resistors, sources,
// VCCS, diodes, MOSFETs, voltage-source branch rows) exactly as the DC
// operating-point analysis always has; the transient solver layers two
// extensions on top of the same path:
//
//   * companion stamps — linear Norton equivalents (geq, ieq) produced by
//     the integration rule for each capacitor at the current timestep;
//   * voltage-source value overrides — the waveform value at the timestep
//     replaces the DC value in the branch equation (quiet sources keep dc).
//
// Keeping one assembler guarantees a transient run linearizes the devices
// with the same code (and therefore bit-identical arithmetic) as the DC
// solve that seeds it.

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "sim/circuit.hpp"

namespace kato::sim {

/// Linear companion element: current geq * (v(a) - v(b)) + ieq flowing
/// a -> b (either node may be ground).
struct CompanionStamp {
  int a;
  int b;
  double geq;
  double ieq;
};

/// Compact double-to-string rendering ("1e-12", "0.5") for solver failure
/// reasons — shared by the DC and transient diagnostics.
std::string fmt_double(double v);

/// Newton-iteration knobs shared by DC and transient (see DcOptions for the
/// recommended DC values).
struct NewtonOptions {
  int max_iterations = 200;
  double v_tol = 1e-9;    ///< convergence on max |dV|
  double max_step = 0.5;  ///< damping: max voltage change per iteration [V]
};

class MnaAssembler {
 public:
  MnaAssembler(const Circuit& ckt, double gmin, double temp)
      : ckt_(ckt), gmin_(gmin), temp_(temp), n_(ckt.n_nodes() - 1),
        size_(ckt.mna_size()) {}

  /// Override the voltage-source values (index-parallel to ckt.vsources());
  /// nullptr restores the DC values.  The pointee must outlive the calls.
  void set_vsource_values(const std::vector<double>* values) {
    vsrc_values_ = values;
  }

  /// Attach companion stamps (transient integration rule); nullptr detaches.
  void set_companions(const std::vector<CompanionStamp>* companions) {
    companions_ = companions;
  }

  /// Build Jacobian and residual at x; returns false on non-finite values.
  bool assemble(const la::Vector& x, la::Matrix& jac, la::Vector& res) const;

  /// Damped Newton iteration from the given start; returns the converged
  /// flag.  On failure `reason` (when non-null) receives a description.
  bool newton(la::Vector& x, const NewtonOptions& opts,
              std::string* reason = nullptr) const;

 private:
  const Circuit& ckt_;
  double gmin_;
  double temp_;
  std::size_t n_;
  std::size_t size_;
  const std::vector<double>* vsrc_values_ = nullptr;
  const std::vector<CompanionStamp>* companions_ = nullptr;
  /// Newton scratch, reused across iterations and timesteps (one assembler
  /// lives for a whole transient run; not thread-safe, like the class).
  mutable la::Matrix jac_ws_;
  mutable la::Vector res_ws_;
};

}  // namespace kato::sim

#pragma once
// Shared MNA Newton assembler used by the DC and transient solvers.
//
// The assembler stamps the nonlinear device equations (resistors, sources,
// VCCS, diodes, MOSFETs, voltage-source branch rows) exactly as the DC
// operating-point analysis always has; the transient solver layers two
// extensions on top of the same path:
//
//   * companion stamps — linear Norton equivalents (geq, ieq) produced by
//     the integration rule for each capacitor at the current timestep;
//   * voltage-source value overrides — the waveform value at the timestep
//     replaces the DC value in the branch equation (quiet sources keep dc).
//
// Keeping one assembler guarantees a transient run linearizes the devices
// with the same code (and therefore bit-identical arithmetic) as the DC
// solve that seeds it.
//
// Linear solves route through one of two paths, chosen per system:
//
//   dense    in-place LU on a persistent workspace (la::lu_solve_into) —
//            best for the small hand-written benchmark circuits;
//   sparse   CSC + symbolic-factorization reuse (la::SparseLu).  The stamp
//            destinations of every device are resolved once per topology
//            into flat value-array slots, so each Newton iteration is a
//            value fill plus an in-place numeric refactorization with the
//            recorded pivot sequence — zero allocation, and the symbolic
//            analysis is shared across all iterations, gmin rungs and
//            transient timesteps an assembler lives through.
//
// MnaSolver::automatic switches on system size (k_mna_sparse_crossover);
// the KATO_SPARSE environment variable (0/dense, 1/sparse) overrides both
// for A/B comparisons.
//
// Device evaluation routes the same way (MnaOptions::device_eval /
// KATO_DEVICE_TABLE): the per-device temperature/geometry terms are hoisted
// once into structure-of-arrays state at construction, and the per-Newton
// MOSFET loop either runs the analytic model from that state
// (bit-identical to the historical per-call eval_mosfet path) or the
// precomputed-table model (sim/device_table.hpp), writing straight into
// the resolved stamp slots either way.

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "obs/obs.hpp"
#include "sim/circuit.hpp"
#include "sim/device_table.hpp"

namespace kato::sim {

/// Linear companion element: current geq * (v(a) - v(b)) + ieq flowing
/// a -> b (either node may be ground).
struct CompanionStamp {
  int a;
  int b;
  double geq;
  double ieq;
};

/// Compact double-to-string rendering ("1e-12", "0.5") for solver failure
/// reasons — shared by the DC and transient diagnostics.
std::string fmt_double(double v);

/// Linear-solve path selection for the MNA analyses.
enum class MnaSolver { automatic, dense, sparse };

/// Size at which MnaSolver::automatic switches to the sparse path.  Dense
/// O(n^3) with an O(n^2) zero-fill per iteration wins below it; measured on
/// the shipped decks the crossover sits around a few dozen unknowns (see
/// bench/micro_perf abl_sparse_lu).
inline constexpr std::size_t k_mna_sparse_crossover = 48;

/// Resolve `requested` for a system of `size` unknowns: the KATO_SPARSE
/// environment variable ("0"/"dense", "1"/"sparse") wins, then an explicit
/// request, then the automatic size crossover.
MnaSolver resolve_mna_solver(MnaSolver requested, std::size_t size);

/// Newton-iteration knobs shared by DC and transient (see DcOptions for the
/// recommended DC values).
struct NewtonOptions {
  int max_iterations = 200;
  double v_tol = 1e-9;    ///< convergence on max |dV|
  double max_step = 0.5;  ///< damping: max voltage change per iteration [V]
};

/// Assembler construction knobs (DC and transient build these from their
/// own option structs).
struct MnaOptions {
  double gmin = 1e-12;
  double temp = 300.0;  ///< simulation temperature [K]
  MnaSolver solver = MnaSolver::automatic;
  /// Device-model path; KATO_DEVICE_TABLE overrides (see
  /// resolve_device_eval).
  DeviceEval device_eval = DeviceEval::automatic;
};

class MnaAssembler {
 public:
  MnaAssembler(const Circuit& ckt, const MnaOptions& opts);
  /// Historical signature; device_eval defaults to automatic.
  MnaAssembler(const Circuit& ckt, double gmin, double temp,
               MnaSolver solver = MnaSolver::automatic);

  /// Change the gmin continuation value.  Cheap: the stamp plan and the
  /// symbolic factorization survive (only values change), which is what
  /// lets the DC solver walk the whole gmin ladder on one assembler.
  void set_gmin(double gmin) { gmin_ = gmin; }

  /// Override the voltage-source values (index-parallel to ckt.vsources());
  /// nullptr restores the DC values.  The pointee must outlive the calls.
  void set_vsource_values(const std::vector<double>* values) {
    vsrc_values_ = values;
  }

  /// Attach companion stamps (transient integration rule); nullptr detaches.
  /// Node indices inside the stamps are part of the precomputed pattern:
  /// changing the *values* per timestep is free, attaching a different
  /// stamp list rebuilds the plan.
  void set_companions(const std::vector<CompanionStamp>* companions) {
    if (companions_ != companions) invalidate_plans();
    companions_ = companions;
  }

  /// Build Jacobian and residual at x; returns false on non-finite values.
  /// Always dense (this is the reference/A-B path and the linearization
  /// inspection hook for tests).
  bool assemble(const la::Vector& x, la::Matrix& jac, la::Vector& res) const;

  /// Damped Newton iteration from the given start; returns the converged
  /// flag.  On failure `reason` (when non-null) receives a description.
  bool newton(la::Vector& x, const NewtonOptions& opts,
              std::string* reason = nullptr) const;

  /// The resolved solve path this assembler uses.
  MnaSolver solver() const { return solver_; }

  /// The resolved device-model path this assembler uses.
  DeviceEval device_eval() const { return device_; }

  /// Counters accumulated over this assembler's lifetime: Newton iterations
  /// and damping clamps, linear-solve first-factor/refactor/pivot-fallback
  /// splits, device-table cache hits at construction.  The analyses diff
  /// snapshots of this around each newton() call to attribute work per gmin
  /// rung / timestep; pure observation, never fed back into the arithmetic.
  const obs::SimStats& stats() const { return stats_; }

 private:
  struct DiodePre {
    double nvt;   ///< ideality * thermal voltage
    double is_t;  ///< temperature-scaled saturation current
  };

  void invalidate_plans() {
    dense_ready_ = false;
    sparse_ready_ = false;
  }
  void ensure_dense_plan() const;
  void ensure_sparse_plan() const;
  /// Shared device-evaluation core: accumulates stamps through `slots`
  /// (one entry per stamp in canonical order; k_sparse_npos = ground, skip)
  /// into the flat value array `vals` and fills the residual.  Returns
  /// false on non-finite residual entries.
  bool assemble_values(const la::Vector& x, double* vals, la::Vector& res,
                       const std::vector<std::size_t>& slots) const;
  bool newton_dense(la::Vector& x, const NewtonOptions& opts,
                    std::string* reason) const;
  bool newton_sparse(la::Vector& x, const NewtonOptions& opts,
                     std::string* reason) const;

  const Circuit& ckt_;
  double gmin_;
  double temp_;
  std::size_t n_;
  std::size_t size_;
  MnaSolver solver_;
  const std::vector<double>* vsrc_values_ = nullptr;
  const std::vector<CompanionStamp>* companions_ = nullptr;
  /// Per-diode temperature terms, hoisted out of the Newton loop (they
  /// depend on temp only, never on the iterate).
  std::vector<DiodePre> diode_pre_;
  // Structure-of-arrays MOSFET state, hoisted at construction: the
  // temperature/geometry terms of MosPre plus resolved MNA row indices per
  // terminal (-1 = ground).  The per-Newton device loop walks these flat
  // arrays — no MosModel indirection, no per-call pow/temperature work —
  // and stamps through the canonical slot plan.
  DeviceEval device_;
  std::vector<double> mos_sign_;
  std::vector<double> mos_vth_;
  std::vector<double> mos_nvt2_;
  std::vector<double> mos_beta_;
  std::vector<double> mos_lambda_;
  std::vector<int> mos_d_;
  std::vector<int> mos_g_;
  std::vector<int> mos_s_;
  /// Per-device table pointer (model cards may override subthreshold_n, so
  /// devices of one circuit can map to different keys); null on the
  /// analytic path.  table_refs_ keeps the shared cache entries alive.
  std::vector<const DeviceTable*> mos_tab_;
  std::vector<std::shared_ptr<const DeviceTable>> table_refs_;
  // Stamp plans: slot per stamp in canonical order, resolved lazily once
  // per topology.  Dense slots index the row-major Jacobian, sparse slots
  // the CSC value array.  All solver state is per-assembler scratch,
  // reused across iterations and timesteps (one assembler lives for a
  // whole analysis; not thread-safe, like the class).
  mutable bool dense_ready_ = false;
  mutable bool sparse_ready_ = false;
  mutable std::vector<std::size_t> dense_slots_;
  mutable std::vector<std::size_t> sparse_slots_;
  mutable la::SparseLu lu_;
  mutable std::vector<double> values_;
  mutable la::Matrix jac_ws_;
  mutable la::Vector res_ws_;
  mutable la::Vector step_ws_;
  /// Lifetime counters (see stats()); mutable like the solver workspaces —
  /// newton() is logically const and the counters observe, not configure.
  mutable obs::SimStats stats_;
};

}  // namespace kato::sim

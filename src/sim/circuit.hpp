#pragma once
// Circuit netlist container for the MNA solvers.
//
// Node 0 is ground.  The MNA unknown vector is [v_1 .. v_{N-1}, i_V1 ..] —
// node voltages plus one branch current per voltage source.

#include <cstddef>
#include <string>
#include <vector>

#include "sim/mosfet.hpp"

namespace kato::sim {

struct Resistor {
  int a;
  int b;
  double r;
};

struct Capacitor {
  int a;
  int b;
  double c;
};

/// Time-varying stimulus attached to a voltage source (transient analysis).
/// `none` keeps the source at its DC value for all time — quiet supplies are
/// untouched by the transient engine.
struct Waveform {
  enum class Kind { none, pulse, pwl, sine };
  Kind kind = Kind::none;
  /// pulse(v1 v2 td tr tf pw per): v1 until td, rise tr to v2, hold pw,
  /// fall tf back to v1; per = 0 means a single pulse, otherwise repeat.
  double v1 = 0.0;
  double v2 = 0.0;
  double td = 0.0;  ///< delay [s] (also the sine start delay)
  double tr = 0.0;
  double tf = 0.0;
  double pw = 0.0;
  double period = 0.0;
  /// sine(vo va freq [td theta]): vo + va e^{-(t-td) theta} sin(2π f (t-td)).
  double vo = 0.0;
  double va = 0.0;
  double freq = 0.0;
  double theta = 0.0;
  /// pwl(t1 v1 t2 v2 ...): linear interpolation, clamped outside [t1, tn].
  std::vector<double> t;
  std::vector<double> v;
};

/// Waveform value at time `time`; `dc` is returned for Kind::none.
double waveform_value(const Waveform& w, double dc, double time);

struct VSource {
  int p;
  int n;
  double dc;
  double ac;  ///< AC stimulus magnitude (0 for quiet supplies)
  Waveform wave;  ///< transient stimulus (Kind::none = constant at dc)
};

/// DC current flowing out of node p, through the source, into node n.
struct ISource {
  int p;
  int n;
  double dc;
};

/// Voltage-controlled current source: i = gm (v_cp - v_cn) from p to n.
struct Vccs {
  int p;
  int n;
  int cp;
  int cn;
  double gm;
};

/// Junction diode (also used diode-connected-BJT style in the bandgap):
/// i = area * is * (exp(v / (n vt)) - 1), with saturation-current temperature
/// scaling is(T) = is (T/300)^xti exp(eg/vt(300) - eg/vt(T)).
struct Diode {
  int a;  ///< anode
  int c;  ///< cathode
  double is_sat = 1e-16;
  double ideality = 1.0;
  double area = 1.0;
  double xti = 3.0;
  double eg = 1.12;
};

struct MosInstance {
  int d;
  int g;
  int s;
  double w;
  double l;
  MosModel model;
};

class Circuit {
 public:
  Circuit() = default;

  static constexpr int ground = 0;

  /// Allocate a new node; `name` is for diagnostics only.
  int new_node(std::string name = "");

  std::size_t n_nodes() const { return names_.size() + 1; }  ///< incl. ground
  const std::string& node_name(int node) const;

  void add_resistor(int a, int b, double ohms);
  void add_capacitor(int a, int b, double farads);
  /// Returns the voltage-source index (for reading its branch current).
  int add_vsource(int p, int n, double dc, double ac = 0.0);
  /// Voltage source with a transient waveform; `dc` remains the value used
  /// by the DC and AC analyses.  Throws std::invalid_argument on malformed
  /// waveform parameters (see validate_waveform).
  int add_vsource(int p, int n, double dc, double ac, Waveform wave);
  void add_isource(int p, int n, double dc);
  void add_vccs(int p, int n, int cp, int cn, double gm);
  void add_diode(const Diode& d);
  /// Returns the MOSFET index (for reading its operating point).
  int add_mosfet(int d, int g, int s, double w, double l, const MosModel& model);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<ISource>& isources() const { return isources_; }
  const std::vector<Vccs>& vccs() const { return vccs_; }
  const std::vector<Diode>& diodes() const { return diodes_; }
  const std::vector<MosInstance>& mosfets() const { return mosfets_; }
  /// Mutable device access for post-elaboration perturbation (Monte Carlo
  /// mismatch).  Node wiring must not be changed through this reference.
  std::vector<MosInstance>& mosfets() { return mosfets_; }

  /// Size of the MNA system: (n_nodes - 1) + n_vsources.
  std::size_t mna_size() const { return n_nodes() - 1 + vsources_.size(); }

 private:
  void check_node(int node) const;

  std::vector<std::string> names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VSource> vsources_;
  std::vector<ISource> isources_;
  std::vector<Vccs> vccs_;
  std::vector<Diode> diodes_;
  std::vector<MosInstance> mosfets_;
};

}  // namespace kato::sim

#include "sim/mosfet.hpp"

#include <algorithm>
#include <cmath>

namespace kato::sim {

namespace {
constexpr double k_boltzmann_over_q = 8.617333262e-5;  // V/K

/// Numerically safe softplus.
double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}
double logistic(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return std::exp(x);
  return 1.0 / (1.0 + std::exp(-x));
}

/// NMOS-sense evaluation with vds >= 0 guaranteed by the caller.
MosOp eval_forward(const MosModel& m, double w, double l, double vgs,
                   double vds, double temp) {
  const double vt = thermal_voltage(temp);
  const double nvt = m.subthreshold_n * vt;
  const double vth = m.vth0 - 2e-3 * (temp - 300.0);
  const double kp_t = m.kp * std::pow(temp / 300.0, -1.5);
  const double beta = kp_t * w / l;
  const double lambda = m.lambda_coef / l;

  // Smoothed effective overdrive: veff -> vov in strong inversion,
  // veff -> 2 n vt exp(vov / 2 n vt) in subthreshold.
  const double vov = vgs - vth;
  const double veff = 2.0 * nvt * softplus(vov / (2.0 * nvt));
  const double dveff_dvgs = logistic(vov / (2.0 * nvt));

  MosOp op;
  const double clm = 1.0 + lambda * vds;
  if (vds >= veff) {
    // Saturation.
    op.ids = 0.5 * beta * veff * veff * clm;
    op.gm = beta * veff * dveff_dvgs * clm;
    op.gds = 0.5 * beta * veff * veff * lambda;
    op.saturated = true;
  } else {
    // Triode.
    op.ids = beta * (veff - 0.5 * vds) * vds * clm;
    op.gm = beta * vds * dveff_dvgs * clm;
    op.gds = beta * ((veff - vds) * clm + (veff - 0.5 * vds) * vds * lambda);
    op.saturated = false;
  }
  // Floor conductances to keep the Newton Jacobian nonsingular when off.
  op.gds = std::max(op.gds, 1e-12);
  op.gm = std::max(op.gm, 0.0);
  return op;
}

}  // namespace

double thermal_voltage(double temp) { return k_boltzmann_over_q * temp; }

MosOp eval_mosfet(const MosModel& m, double w, double l, double vgs,
                  double vds, double temp) {
  // PMOS: evaluate the mirrored NMOS (vsg, vsd) and flip the current sign.
  if (!m.nmos) {
    MosOp op = eval_mosfet(MosModel{true, m.vth0, m.kp, m.lambda_coef, m.cox,
                                    m.cgdo, m.cj_w, m.subthreshold_n},
                           w, l, -vgs, -vds, temp);
    op.ids = -op.ids;
    return op;
  }
  if (vds >= 0.0) return eval_forward(m, w, l, vgs, vds, temp);
  // Drain/source swap for reverse operation: vgs' = vgd = vgs - vds.
  MosOp op = eval_forward(m, w, l, vgs - vds, -vds, temp);
  op.ids = -op.ids;
  // gm/gds transform back to (vgs, vds) sensitivities:
  //   ids(vgs, vds) = -ids'(vgs - vds, -vds)
  //   d ids/d vgs = -gm'
  //   d ids/d vds = gm' + gds'
  const double gm_p = op.gm;
  const double gds_p = op.gds;
  op.gm = -gm_p;
  op.gds = gm_p + gds_p;
  return op;
}

MosPre mos_precompute(const MosModel& m, double w, double l, double temp) {
  // Expression forms (and therefore rounding) match eval_forward exactly;
  // eval_mosfet_pre is pinned bit-identical to eval_mosfet by tests.
  const double vt = thermal_voltage(temp);
  const double nvt = m.subthreshold_n * vt;
  MosPre p;
  p.sign = m.nmos ? 1.0 : -1.0;
  p.vth = m.vth0 - 2e-3 * (temp - 300.0);
  p.nvt2 = 2.0 * nvt;
  const double kp_t = m.kp * std::pow(temp / 300.0, -1.5);
  p.beta = kp_t * w / l;
  p.lambda = m.lambda_coef / l;
  return p;
}

MosOp eval_mosfet_pre(const MosPre& p, double vgs, double vds) {
  return mos_eval_normalized(
      p, vgs, vds, [&p](double vov, double& veff, double& dveff) {
        const double x = vov / p.nvt2;
        veff = p.nvt2 * mos_softplus(x);
        dveff = mos_logistic(x);
      });
}

MosCaps mosfet_caps(const MosModel& m, double w, double l) {
  MosCaps c;
  c.cgs = (2.0 / 3.0) * w * l * m.cox + m.cgdo * w;
  c.cgd = m.cgdo * w;
  c.cdb = m.cj_w * w;
  return c;
}

}  // namespace kato::sim

#include "sim/dc.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"

namespace kato::sim {

namespace {

struct DiodeEval {
  double i;
  double g;
};

/// Diode current with SPICE-style saturation-current temperature scaling and
/// exponent limiting for Newton robustness.
DiodeEval eval_diode(const Diode& d, double v, double temp) {
  const double vt = thermal_voltage(temp);
  const double nvt = d.ideality * vt;
  const double is_t = d.area * d.is_sat *
                      std::pow(temp / 300.0, d.xti / d.ideality) *
                      std::exp((temp / 300.0 - 1.0) * d.eg / nvt);
  const double z = v / nvt;
  constexpr double z_max = 40.0;
  DiodeEval e;
  if (z > z_max) {
    const double e_max = std::exp(z_max);
    e.i = is_t * (e_max * (1.0 + z - z_max) - 1.0);
    e.g = is_t * e_max / nvt;
  } else {
    const double ez = std::exp(z);
    e.i = is_t * (ez - 1.0);
    e.g = is_t * ez / nvt + 1e-12;
  }
  return e;
}

class MnaAssembler {
 public:
  MnaAssembler(const Circuit& ckt, double gmin, double temp)
      : ckt_(ckt), gmin_(gmin), temp_(temp), n_(ckt.n_nodes() - 1),
        size_(ckt.mna_size()) {}

  /// Build Jacobian and residual at x; returns false on non-finite values.
  bool assemble(const la::Vector& x, la::Matrix& jac, la::Vector& res) const {
    jac = la::Matrix(size_, size_);
    res.assign(size_, 0.0);
    auto v = [&](int node) {
      return node == 0 ? 0.0 : x[static_cast<std::size_t>(node) - 1];
    };
    auto idx = [](int node) { return static_cast<std::size_t>(node) - 1; };
    auto kcl = [&](int node, double current) {
      if (node != 0) res[idx(node)] += current;
    };
    auto stamp = [&](int node, int wrt, double g) {
      if (node != 0 && wrt != 0) jac(idx(node), idx(wrt)) += g;
    };

    // gmin from every node to ground.
    for (std::size_t i = 0; i < n_; ++i) {
      res[i] += gmin_ * x[i];
      jac(i, i) += gmin_;
    }

    for (const auto& r : ckt_.resistors()) {
      const double g = 1.0 / r.r;
      const double i = g * (v(r.a) - v(r.b));
      kcl(r.a, i);
      kcl(r.b, -i);
      stamp(r.a, r.a, g);
      stamp(r.a, r.b, -g);
      stamp(r.b, r.a, -g);
      stamp(r.b, r.b, g);
    }
    for (const auto& s : ckt_.isources()) {
      kcl(s.p, s.dc);
      kcl(s.n, -s.dc);
    }
    for (const auto& c : ckt_.vccs()) {
      const double i = c.gm * (v(c.cp) - v(c.cn));
      kcl(c.p, i);
      kcl(c.n, -i);
      stamp(c.p, c.cp, c.gm);
      stamp(c.p, c.cn, -c.gm);
      stamp(c.n, c.cp, -c.gm);
      stamp(c.n, c.cn, c.gm);
    }
    for (const auto& d : ckt_.diodes()) {
      const auto e = eval_diode(d, v(d.a) - v(d.c), temp_);
      kcl(d.a, e.i);
      kcl(d.c, -e.i);
      stamp(d.a, d.a, e.g);
      stamp(d.a, d.c, -e.g);
      stamp(d.c, d.a, -e.g);
      stamp(d.c, d.c, e.g);
    }
    for (const auto& mos : ckt_.mosfets()) {
      const MosOp op = eval_mosfet(mos.model, mos.w, mos.l, v(mos.g) - v(mos.s),
                                   v(mos.d) - v(mos.s), temp_);
      kcl(mos.d, op.ids);
      kcl(mos.s, -op.ids);
      stamp(mos.d, mos.g, op.gm);
      stamp(mos.d, mos.d, op.gds);
      stamp(mos.d, mos.s, -(op.gm + op.gds));
      stamp(mos.s, mos.g, -op.gm);
      stamp(mos.s, mos.d, -op.gds);
      stamp(mos.s, mos.s, op.gm + op.gds);
    }
    // Voltage sources: branch current unknowns.
    const auto& vs = ckt_.vsources();
    for (std::size_t k = 0; k < vs.size(); ++k) {
      const std::size_t bi = n_ + k;
      const double ib = x[bi];
      kcl(vs[k].p, ib);
      kcl(vs[k].n, -ib);
      if (vs[k].p != 0) jac(idx(vs[k].p), bi) += 1.0;
      if (vs[k].n != 0) jac(idx(vs[k].n), bi) -= 1.0;
      res[bi] = v(vs[k].p) - v(vs[k].n) - vs[k].dc;
      if (vs[k].p != 0) jac(bi, idx(vs[k].p)) += 1.0;
      if (vs[k].n != 0) jac(bi, idx(vs[k].n)) -= 1.0;
    }
    for (double r : res)
      if (!std::isfinite(r)) return false;
    return true;
  }

  /// Newton iteration from the given start; returns converged flag.
  bool newton(la::Vector& x, const DcOptions& opts) const {
    la::Matrix jac;
    la::Vector res;
    for (int it = 0; it < opts.max_iterations; ++it) {
      if (!assemble(x, jac, res)) return false;
      for (auto& r : res) r = -r;
      auto step = la::lu_solve(jac, res);
      if (!step) return false;
      double max_dv = 0.0;
      for (std::size_t i = 0; i < size_; ++i) {
        double dv = (*step)[i];
        if (i < n_) dv = std::clamp(dv, -opts.max_step, opts.max_step);
        x[i] += dv;
        if (i < n_) max_dv = std::max(max_dv, std::abs(dv));
      }
      if (max_dv < opts.v_tol) return true;
    }
    return false;
  }

 private:
  const Circuit& ckt_;
  double gmin_;
  double temp_;
  std::size_t n_;
  std::size_t size_;
};

}  // namespace

DcResult solve_dc(const Circuit& ckt, const DcOptions& opts,
                  const la::Vector* initial) {
  const std::size_t n = ckt.n_nodes() - 1;
  la::Vector x(ckt.mna_size(), 0.0);
  if (initial && initial->size() == ckt.n_nodes())
    for (std::size_t i = 0; i < n; ++i) x[i] = (*initial)[i + 1];

  bool converged = false;
  for (double gmin : opts.gmin_ladder) {
    MnaAssembler assembler(ckt, gmin, opts.temp);
    converged = assembler.newton(x, opts);
    if (!converged && gmin == opts.gmin_ladder.front()) {
      // A cold start that fails at the loosest gmin rarely recovers; restart
      // from zero once in case the warm start was pathological.
      x.assign(ckt.mna_size(), 0.0);
      converged = assembler.newton(x, opts);
    }
  }

  DcResult result;
  result.converged = converged;
  result.node_voltage.assign(ckt.n_nodes(), 0.0);
  for (std::size_t i = 0; i < n; ++i) result.node_voltage[i + 1] = x[i];
  result.vsource_current.resize(ckt.vsources().size());
  for (std::size_t k = 0; k < ckt.vsources().size(); ++k)
    result.vsource_current[k] = x[n + k];

  // Sanity: a "converged" solution with wild voltages is treated as failure.
  for (double v : result.node_voltage)
    if (!std::isfinite(v) || std::abs(v) > 1e3) result.converged = false;

  result.mosfet_op.reserve(ckt.mosfets().size());
  for (const auto& mos : ckt.mosfets()) {
    result.mosfet_op.push_back(eval_mosfet(
        mos.model, mos.w, mos.l,
        result.v(mos.g) - result.v(mos.s), result.v(mos.d) - result.v(mos.s),
        opts.temp));
  }
  result.diode_gd.reserve(ckt.diodes().size());
  for (const auto& d : ckt.diodes()) {
    const double vt = thermal_voltage(opts.temp);
    const double nvt = d.ideality * vt;
    const double is_t = d.area * d.is_sat *
                        std::pow(opts.temp / 300.0, d.xti / d.ideality) *
                        std::exp((opts.temp / 300.0 - 1.0) * d.eg / nvt);
    const double z = std::min((result.v(d.a) - result.v(d.c)) / nvt, 40.0);
    result.diode_gd.push_back(is_t * std::exp(z) / nvt + 1e-12);
  }
  return result;
}

}  // namespace kato::sim

#include "sim/dc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/mna.hpp"
#include "util/fault.hpp"

namespace kato::sim {

DcResult solve_dc(const Circuit& ckt, const DcOptions& opts,
                  const la::Vector* initial) {
  const std::size_t n = ckt.n_nodes() - 1;
  la::Vector x(ckt.mna_size(), 0.0);
  if (initial && initial->size() == ckt.n_nodes())
    for (std::size_t i = 0; i < n; ++i) x[i] = (*initial)[i + 1];

  const NewtonOptions newton{opts.max_iterations, opts.v_tol, opts.max_step};
  const bool override_sources = !opts.vsource_override.empty();
  if (override_sources &&
      opts.vsource_override.size() != ckt.vsources().size())
    throw std::invalid_argument(
        "solve_dc: vsource_override has " +
        std::to_string(opts.vsource_override.size()) + " value(s) but the "
        "circuit has " + std::to_string(ckt.vsources().size()) + " source(s)");

  DcResult result;
  bool converged = false;
  std::string why;
  // One assembler for the whole ladder: the stamp plan and (on the sparse
  // path) the symbolic factorization are computed once and reused across
  // every gmin rung — set_gmin only changes values.
  KATO_OBS_SPAN("dc_solve");
  KATO_OBS_STAGE(dc);
  MnaAssembler assembler(
      ckt, MnaOptions{opts.gmin_ladder.empty() ? 1e-12
                                               : opts.gmin_ladder.front(),
                      opts.temp, opts.solver, opts.device_eval});
  if (override_sources) assembler.set_vsource_values(&opts.vsource_override);
  result.rung_stats.reserve(opts.gmin_ladder.size());
  std::size_t restarts = 0;
  std::size_t rungs_walked = 0;
  // dc:singular pretends the system is unsolvable at every gmin rung and
  // every homotopy source step, so the pseudo-transient fallback is the
  // only path to an operating point — the one deterministic way to force
  // the bottom of the recovery ladder on a healthy circuit.
  const bool inject_singular = util::fault_fires(util::FaultSite::dc_singular);
  // A budget that is already spent kills the solve before any rung runs:
  // the in-loop polls are amortized (a fast-converging Newton may finish
  // without ever reading the clock), so this is the one guaranteed check.
  bool deadline_killed = util::deadline_exceeded();
  if (!inject_singular && !deadline_killed)
  for (std::size_t r = 0; r < opts.gmin_ladder.size(); ++r) {
    const double gmin = opts.gmin_ladder[r];
    ++rungs_walked;
    assembler.set_gmin(gmin);
    const obs::SimStats before = assembler.stats();
    obs::SimStats attempt = before;  // start of the rung's final attempt
    {
      KATO_OBS_SPAN("newton");
      converged = assembler.newton(x, newton, &why);
      if (!converged && r == 0) {
        // A cold start that fails at the loosest gmin rarely recovers;
        // restart from zero once in case the warm start was pathological.
        attempt = assembler.stats();
        x.assign(ckt.mna_size(), 0.0);
        converged = assembler.newton(x, newton, &why);
        ++restarts;
      }
    }
    const obs::SimStats& after = assembler.stats();
    // rung_stats carries the whole rung's work (restart included); the
    // failure reason reports the final attempt against the per-solve budget.
    result.rung_stats.push_back(
        {gmin,
         static_cast<std::uint32_t>(after.newton_iters - before.newton_iters),
         static_cast<std::uint32_t>(after.damping_clamps -
                                    before.damping_clamps),
         converged});
    if (!converged)
      result.reason = "gmin rung " + std::to_string(r + 1) + "/" +
                      std::to_string(opts.gmin_ladder.size()) + ", newton " +
                      std::to_string(after.newton_iters -
                                     attempt.newton_iters) +
                      "/" + std::to_string(opts.max_iterations) + ": " + why +
                      " at gmin=" + fmt_double(gmin);
    if (!converged && util::deadline_exceeded()) {
      deadline_killed = true;
      break;
    }
  }
  if (inject_singular)
    result.reason = "injected fault dc:singular (gmin ladder and source "
                    "stepping forced unsolvable)";

  // Recovery ladder: the gmin continuation failed (or never ran), so
  // escalate — source-stepping homotopy first, pseudo-transient last.
  const double gmin_final =
      opts.gmin_ladder.empty() ? 1e-12 : opts.gmin_ladder.back();
  std::uint64_t homotopy_escalations = 0;
  std::uint64_t pseudo_transients = 0;
  if (!converged && !deadline_killed && util::recovery_enabled()) {
    if (!inject_singular) {
      // Stage 1: source-stepping homotopy.  All vsources ramp together
      // from 0 (where the circuit is trivially solvable) to their target
      // values, reusing the one assembler — set_vsource_values is a value
      // rewrite, the stamp plan and symbolic factorization survive.
      ++homotopy_escalations;
      assembler.set_gmin(gmin_final);
      std::vector<double> base(ckt.vsources().size());
      for (std::size_t k = 0; k < base.size(); ++k)
        base[k] = override_sources ? opts.vsource_override[k]
                                   : ckt.vsources()[k].dc;
      std::vector<double> ramped(base.size(), 0.0);
      assembler.set_vsource_values(&ramped);
      la::Vector xh(ckt.mna_size(), 0.0);
      double alpha = 0.0;
      double step = 0.1;
      std::string hwhy;
      while (alpha < 1.0) {
        if (util::deadline_exceeded()) {
          deadline_killed = true;
          break;
        }
        const double next = std::min(1.0, alpha + step);
        for (std::size_t k = 0; k < base.size(); ++k)
          ramped[k] = next * base[k];
        la::Vector x_try = xh;
        if (assembler.newton(x_try, newton, &hwhy)) {
          xh = std::move(x_try);
          alpha = next;
          step = std::min(step * 1.7, 0.25);
        } else {
          step *= 0.5;
          if (step < 1e-3) break;  // wedged: hand over to pseudo-transient
        }
      }
      assembler.set_vsource_values(override_sources ? &opts.vsource_override
                                                    : nullptr);
      if (alpha >= 1.0) {
        x = std::move(xh);
        converged = true;
      }
    }
    if (!converged && !deadline_killed) {
      // Stage 2: pseudo-transient continuation.  An artificial capacitor
      // from every node to ground turns the DC problem into a heavily
      // damped transient; backward-Euler steps with a growing h anneal the
      // damping away (geq = C/h -> 0), then a companion-free Newton
      // polishes the settled point at the final gmin.
      ++pseudo_transients;
      assembler.set_gmin(gmin_final);
      constexpr double k_cap = 1e-6;
      std::vector<CompanionStamp> comps(n);
      la::Vector xp(ckt.mna_size(), 0.0);
      double h = 1e-6;
      std::string pwhy;
      assembler.set_companions(&comps);
      bool settled = false;
      for (int it = 0; it < 400 && !settled; ++it) {
        if (util::deadline_exceeded()) {
          deadline_killed = true;
          break;
        }
        const double geq = k_cap / h;
        for (std::size_t i = 0; i < n; ++i)
          comps[i] = {static_cast<int>(i) + 1, 0, geq, -geq * xp[i]};
        la::Vector x_try = xp;
        if (assembler.newton(x_try, newton, &pwhy)) {
          double dv = 0.0;
          for (std::size_t i = 0; i < n; ++i)
            dv = std::max(dv, std::abs(x_try[i] - xp[i]));
          xp = std::move(x_try);
          if (h > 1e6 || (dv < 1e-9 && h > 1.0)) settled = true;
          h *= 4.0;
        } else {
          h *= 0.125;
          if (h < 1e-18) break;  // damping maxed out and still failing
        }
      }
      assembler.set_companions(nullptr);
      if (settled) {
        x = xp;
        converged = assembler.newton(x, newton, &pwhy);
        if (!converged) {
          // Keep the settled pseudo-transient point for the reports even
          // though the polish failed; the failure reason explains why.
          x = std::move(xp);
          result.reason = "pseudo-transient settled but final newton "
                          "failed: " + pwhy;
        }
      }
    }
  }

  result.converged = converged;
  if (converged) result.reason.clear();
  if (deadline_killed && result.reason.empty())
    result.reason = "deadline exceeded (KATO_EVAL_DEADLINE_MS) during dc "
                    "recovery";
  result.stats = assembler.stats();
  result.stats.gmin_rungs = rungs_walked;
  result.stats.dc_restarts = restarts;
  result.stats.dc_homotopy_escalations = homotopy_escalations;
  result.stats.dc_pseudo_transients = pseudo_transients;
  if (deadline_killed) result.stats.deadline_kills = 1;

  result.node_voltage.assign(ckt.n_nodes(), 0.0);
  for (std::size_t i = 0; i < n; ++i) result.node_voltage[i + 1] = x[i];
  result.vsource_current.resize(ckt.vsources().size());
  for (std::size_t k = 0; k < ckt.vsources().size(); ++k)
    result.vsource_current[k] = x[n + k];

  // Sanity: a "converged" solution with wild voltages is treated as failure.
  for (double v : result.node_voltage) {
    if (!std::isfinite(v) || std::abs(v) > 1e3) {
      result.converged = false;
      if (result.reason.empty())
        result.reason = "operating point out of range (node voltage not "
                        "finite or |v| > 1 kV)";
    }
  }

  // Operating-point report: always the analytic reference model (exact
  // saturation flag; feeds the AC linearization) — one evaluation per
  // device per solve, off the Newton hot path.
  result.mosfet_op.reserve(ckt.mosfets().size());
  for (const auto& mos : ckt.mosfets()) {
    result.mosfet_op.push_back(eval_mosfet(
        mos.model, mos.w, mos.l,
        result.v(mos.g) - result.v(mos.s), result.v(mos.d) - result.v(mos.s),
        opts.temp));
  }
  result.diode_gd.reserve(ckt.diodes().size());
  for (const auto& d : ckt.diodes()) {
    const double vt = thermal_voltage(opts.temp);
    const double nvt = d.ideality * vt;
    const double is_t = d.area * d.is_sat *
                        std::pow(opts.temp / 300.0, d.xti / d.ideality) *
                        std::exp((opts.temp / 300.0 - 1.0) * d.eg / nvt);
    const double z = std::min((result.v(d.a) - result.v(d.c)) / nvt, 40.0);
    result.diode_gd.push_back(is_t * std::exp(z) / nvt + 1e-12);
  }
  return result;
}

}  // namespace kato::sim

#include "sim/dc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/mna.hpp"

namespace kato::sim {

DcResult solve_dc(const Circuit& ckt, const DcOptions& opts,
                  const la::Vector* initial) {
  const std::size_t n = ckt.n_nodes() - 1;
  la::Vector x(ckt.mna_size(), 0.0);
  if (initial && initial->size() == ckt.n_nodes())
    for (std::size_t i = 0; i < n; ++i) x[i] = (*initial)[i + 1];

  const NewtonOptions newton{opts.max_iterations, opts.v_tol, opts.max_step};
  const bool override_sources = !opts.vsource_override.empty();
  if (override_sources &&
      opts.vsource_override.size() != ckt.vsources().size())
    throw std::invalid_argument(
        "solve_dc: vsource_override has " +
        std::to_string(opts.vsource_override.size()) + " value(s) but the "
        "circuit has " + std::to_string(ckt.vsources().size()) + " source(s)");

  DcResult result;
  bool converged = false;
  std::string why;
  // One assembler for the whole ladder: the stamp plan and (on the sparse
  // path) the symbolic factorization are computed once and reused across
  // every gmin rung — set_gmin only changes values.
  KATO_OBS_SPAN("dc_solve");
  KATO_OBS_STAGE(dc);
  MnaAssembler assembler(
      ckt, MnaOptions{opts.gmin_ladder.empty() ? 1e-12
                                               : opts.gmin_ladder.front(),
                      opts.temp, opts.solver, opts.device_eval});
  if (override_sources) assembler.set_vsource_values(&opts.vsource_override);
  result.rung_stats.reserve(opts.gmin_ladder.size());
  std::size_t restarts = 0;
  for (std::size_t r = 0; r < opts.gmin_ladder.size(); ++r) {
    const double gmin = opts.gmin_ladder[r];
    assembler.set_gmin(gmin);
    const obs::SimStats before = assembler.stats();
    obs::SimStats attempt = before;  // start of the rung's final attempt
    {
      KATO_OBS_SPAN("newton");
      converged = assembler.newton(x, newton, &why);
      if (!converged && r == 0) {
        // A cold start that fails at the loosest gmin rarely recovers;
        // restart from zero once in case the warm start was pathological.
        attempt = assembler.stats();
        x.assign(ckt.mna_size(), 0.0);
        converged = assembler.newton(x, newton, &why);
        ++restarts;
      }
    }
    const obs::SimStats& after = assembler.stats();
    // rung_stats carries the whole rung's work (restart included); the
    // failure reason reports the final attempt against the per-solve budget.
    result.rung_stats.push_back(
        {gmin,
         static_cast<std::uint32_t>(after.newton_iters - before.newton_iters),
         static_cast<std::uint32_t>(after.damping_clamps -
                                    before.damping_clamps),
         converged});
    if (!converged)
      result.reason = "gmin rung " + std::to_string(r + 1) + "/" +
                      std::to_string(opts.gmin_ladder.size()) + ", newton " +
                      std::to_string(after.newton_iters -
                                     attempt.newton_iters) +
                      "/" + std::to_string(opts.max_iterations) + ": " + why +
                      " at gmin=" + fmt_double(gmin);
  }
  result.converged = converged;
  if (converged) result.reason.clear();
  result.stats = assembler.stats();
  result.stats.gmin_rungs = opts.gmin_ladder.size();
  result.stats.dc_restarts = restarts;

  result.node_voltage.assign(ckt.n_nodes(), 0.0);
  for (std::size_t i = 0; i < n; ++i) result.node_voltage[i + 1] = x[i];
  result.vsource_current.resize(ckt.vsources().size());
  for (std::size_t k = 0; k < ckt.vsources().size(); ++k)
    result.vsource_current[k] = x[n + k];

  // Sanity: a "converged" solution with wild voltages is treated as failure.
  for (double v : result.node_voltage) {
    if (!std::isfinite(v) || std::abs(v) > 1e3) {
      result.converged = false;
      if (result.reason.empty())
        result.reason = "operating point out of range (node voltage not "
                        "finite or |v| > 1 kV)";
    }
  }

  // Operating-point report: always the analytic reference model (exact
  // saturation flag; feeds the AC linearization) — one evaluation per
  // device per solve, off the Newton hot path.
  result.mosfet_op.reserve(ckt.mosfets().size());
  for (const auto& mos : ckt.mosfets()) {
    result.mosfet_op.push_back(eval_mosfet(
        mos.model, mos.w, mos.l,
        result.v(mos.g) - result.v(mos.s), result.v(mos.d) - result.v(mos.s),
        opts.temp));
  }
  result.diode_gd.reserve(ckt.diodes().size());
  for (const auto& d : ckt.diodes()) {
    const double vt = thermal_voltage(opts.temp);
    const double nvt = d.ideality * vt;
    const double is_t = d.area * d.is_sat *
                        std::pow(opts.temp / 300.0, d.xti / d.ideality) *
                        std::exp((opts.temp / 300.0 - 1.0) * d.eg / nvt);
    const double z = std::min((result.v(d.a) - result.v(d.c)) / nvt, 40.0);
    result.diode_gd.push_back(is_t * std::exp(z) / nvt + 1e-12);
  }
  return result;
}

}  // namespace kato::sim

#pragma once
// Table-based MOSFET evaluation for the MNA hot path.
//
// Every Newton iteration of every DC / transient solve evaluates every
// MOSFET, and each analytic evaluation pays two transcendentals (log1p/exp
// inside the softplus-smoothed overdrive and its logistic derivative).  The
// corner x MC fan-out multiplies the number of such solves per candidate by
// up to 24x, so the device model is the dominant scalar work between linear
// solves.
//
// The level-1 EKV-smoothed model factorizes exactly: vds enters the drain
// current polynomially (triode (veff - vds/2)*vds, saturation veff^2/2, CLM
// 1 + lambda*vds), so the only transcendental content is one-dimensional in
// the overdrive vov = vgs - vth.  DeviceTable therefore tabulates the
// smoothed overdrive
//
//     veff(vov)  = 2 n vt * softplus(vov / 2 n vt)
//     dveff(vov) = logistic(vov / 2 n vt)          (= d veff / d vgs)
//
// on a uniform vov grid with C1 cubic-Hermite interpolation (exact values
// AND exact slopes at every knot), and the polynomial part — triode/sat
// split, CLM, W/L scaling through beta = kp_t W / L and lambda =
// lambda_coef / L — is applied analytically per device.  One table with a
// few thousand knots therefore serves:
//
//   * every W/L in the sizing box (scaling is outside the table),
//   * both polarities (PMOS mirrors onto the same normalized curve),
//   * every Monte-Carlo vth0/kp mismatch sample (both shift/scale outside
//     the table),
//   * every gmin rung, Newton iteration, timestep, corner and candidate at
//     the same temperature.
//
// Tables are keyed by (subthreshold_n, temp) only — the two quantities that
// set the smoothing scale 2 n vt — and cached process-wide behind a mutex,
// so all assemblers, threads and fan-outs share one build per key.
//
// Accuracy: with step h = nvt/8 the cubic-Hermite relative error on veff is
// ~(h / 2 n vt)^4 / 384 ~ 1e-8; the worst-case amplification through the
// triode/saturation boundary keeps ids/gm/gds within 1e-4 relative of the
// analytic model over the PDK bias boxes (pinned by device_table_test).
// Outside the grid ([-4 V, +4 V] of overdrive) the exact analytic
// expressions take over, so clamping never degrades robustness.
//
// Routing mirrors the KATO_SPARSE precedent: MnaOptions::device_eval
// requests a path, the KATO_DEVICE_TABLE environment variable ("0" /
// "analytic", "1" / "table") overrides it for A/B runs, and `automatic`
// resolves to the table path.  KATO_DEVICE_TABLE=0 is bit-identical to the
// historical analytic behavior (pinned by tests).

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/mosfet.hpp"

namespace kato::sim {

/// Device-model evaluation path for the MNA assembler.
enum class DeviceEval { automatic, analytic, table };

/// Resolve `requested`: the KATO_DEVICE_TABLE environment variable
/// ("0"/"analytic", "1"/"table") wins, then an explicit request, then
/// `automatic` picks the table path (the analytic path stays available as
/// the pinned reference).
DeviceEval resolve_device_eval(DeviceEval requested);

/// Precomputed veff/dveff curve for one (subthreshold_n, temp) key.
/// Immutable after construction; shared across threads freely.
class DeviceTable {
 public:
  DeviceTable(double subthreshold_n, double temp);

  /// Interpolated smoothed overdrive and its vgs-derivative at `vov`.
  /// Inside the grid: the cell's C1 cubic-Hermite interpolant, pre-expanded
  /// to power basis at build time so the hot path is two 3-term Horner
  /// chains over one cache line of coefficients — no basis-polynomial
  /// arithmetic, no transcendentals.  Outside: the exact analytic
  /// expressions.
  void veff_at(double vov, double& veff, double& dveff) const {
    const double t = (vov - lo_) * inv_step_;
    // NaN vov fails the first comparison and takes the analytic tail,
    // which propagates the NaN exactly like the analytic path does.
    if (!(t >= 0.0) || t >= cells_d_) {
      tail_at(vov, veff, dveff);
      return;
    }
    // Signed cast: t is in [0, cells) here, and double->signed converts in
    // one instruction where double->unsigned needs a compare-and-branch.
    const long c = static_cast<long>(t);
    const double u = t - static_cast<double>(c);
    // Cell layout (8 doubles): a0..a3 (veff in u), b0..b3 (dveff in u).
    // Estrin split (a0 + a1 u) + (a2 + a3 u) u^2: both halves and u^2 are
    // independent, so the chains overlap even without FMA hardware.
    const double* cf = &k_[8 * c];
    const double u2 = u * u;
    veff = (cf[0] + cf[1] * u) + (cf[2] + cf[3] * u) * u2;
    dveff = (cf[4] + cf[5] * u) + (cf[6] + cf[7] * u) * u2;
  }

  double subthreshold_n() const { return n_; }
  double temp() const { return temp_; }
  double nvt2() const { return nvt2_; }
  double vov_min() const { return lo_; }
  double vov_max() const { return hi_; }
  double step() const { return step_; }
  std::size_t n_knots() const { return k_.size() / 8 + 1; }

 private:
  /// Exact analytic evaluation for out-of-grid overdrives (cold path).
  void tail_at(double vov, double& veff, double& dveff) const;

  double n_;
  double temp_;
  double nvt2_;
  double lo_;
  double hi_;
  double step_;
  double inv_step_;
  double cells_d_;  ///< (double)(n_knots - 1), for the range check
  std::vector<double> k_;
};

/// Process-wide table cache: one build per (subthreshold_n, temp) key,
/// shared by every assembler/thread/corner/candidate.  A deck touches only
/// a handful of keys (its corner temperatures x its model-card slope
/// factors), each ~1.8k cells * 64 B, so the cache stays small for the
/// life of the process.  `hit` (optional) reports whether the key was
/// already cached — the assembler feeds this into its SimStats counters.
std::shared_ptr<const DeviceTable> device_table_for(double subthreshold_n,
                                                    double temp,
                                                    bool* hit = nullptr);

/// Number of distinct keys currently cached (tests/diagnostics).
std::size_t device_table_cache_size();

/// Table-path device evaluation: normalized NMOS/PMOS + reverse-vds
/// handling from mosfet.hpp with the transcendental core replaced by the
/// table lookup.  Inline: this is the per-device body of the assembler's
/// SoA loop.
inline MosOp eval_mosfet_table(const DeviceTable& t, const MosPre& p,
                               double vgs, double vds) {
  return mos_eval_normalized(
      p, vgs, vds, [&t](double vov, double& veff, double& dveff) {
        t.veff_at(vov, veff, dveff);
      });
}

}  // namespace kato::sim

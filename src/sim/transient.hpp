#pragma once
// Nonlinear time-domain (transient) analysis over the MNA circuit.
//
// Capacitors (explicit plus MOSFET parasitics — the same `linear_caps` set
// the AC analysis uses) become Norton companion models: trapezoidal by
// default, with backward-Euler for the first step after t = 0 / any
// waveform breakpoint / a Newton failure (the classic startup-and-fallback
// discipline that keeps the A-stable trapezoidal rule from ringing across
// discontinuities).  Each timestep runs the damped Newton iteration of the
// DC solver (shared sim::MnaAssembler) with the waveform value of every
// voltage source evaluated at the new time; quiet sources stay at their DC
// value.
//
// Step control is LTE-based: the solution is predicted by polynomial
// extrapolation through the last accepted points and the predictor-
// corrector difference is compared against reltol/abstol; rejected steps
// shrink, accepted steps may grow, and waveform breakpoints (pulse corners,
// PWL knots, sine start) are always landed on exactly.  `fixed_step` runs
// the uniform k*tstep grid with no LTE rejection — the mode the
// integrator-order golden tests use; a Newton failure still subdivides the
// step, then the next step re-aligns to the nominal grid.  Everything is deterministic double arithmetic: a transient
// run is a pure function of (circuit, options), independent of KATO_THREADS.

#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "sim/circuit.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"

namespace kato::sim {

struct TranOptions {
  double tstop = 0.0;   ///< end time [s] (required, > 0)
  double tstep = 0.0;   ///< initial/suggested step; 0 -> tstop / 1000
  double dtmax = 0.0;   ///< adaptive step ceiling; 0 -> tstop / 50
  bool fixed_step = false;      ///< uniform tstep grid, no LTE control
  bool backward_euler = false;  ///< force backward Euler for every step
  double reltol = 1e-4;  ///< LTE control: relative part of the tolerance
  double abstol = 1e-6;  ///< LTE control: absolute part [V]
  double temp = 300.0;   ///< simulation temperature [K]
  /// Linear-solve path for every timestep (and the internal t = 0 solve);
  /// see sim::MnaSolver — `automatic` switches on system size.
  MnaSolver solver = MnaSolver::automatic;
  /// Device-model path for every timestep's Newton loop (and the internal
  /// t = 0 solve): precomputed-table vs analytic MOSFET evaluation, with
  /// the (subthreshold_n, temp)-keyed tables shared across all timesteps;
  /// KATO_DEVICE_TABLE overrides for A/B runs.
  DeviceEval device_eval = DeviceEval::automatic;
  NewtonOptions newton{50, 1e-9, 0.5};  ///< per-timestep Newton knobs
  DcOptions dc;  ///< options for the internal t = 0 operating-point solve
  /// Initial-condition overrides (node -> volts), applied after the t = 0
  /// operating point: the node starts the integration at the given voltage
  /// (the netlist `.ic v(node)=value` card).  Branch currents keep their
  /// operating-point values at t = 0 — the first Newton step resolves them
  /// against the overridden voltages, so with ICs the t = 0 sample is
  /// approximate for source-current measures (avg_power).
  std::vector<std::pair<int, double>> initial_conditions;
};

struct TranResult {
  bool ok = false;
  std::string reason;  ///< failure description when !ok
  std::vector<double> time;                ///< accepted time points (t=0 first)
  std::vector<la::Vector> node_voltage;    ///< per point, indexed by node
  std::vector<std::vector<double>> vsource_current;  ///< per point, per source
  /// Solver-work counters for the whole run: the per-timestep Newton/LU
  /// work plus step control (accepted / LTE-rejected / BE / Newton-retry
  /// counts) plus the internal t = 0 operating point when one was solved.
  obs::SimStats stats;

  std::size_t n_points() const { return time.size(); }
  double v(std::size_t ti, int node) const {
    return node_voltage[ti][static_cast<std::size_t>(node)];
  }
};

/// Run the transient analysis.  The initial state is the DC operating point
/// with every waveform source held at its t = 0 value; when `op0` (a
/// converged DC solve of the same circuit) is supplied and the t = 0 values
/// equal the DC values it is reused directly, otherwise it only warm-starts
/// the internal solve.  Initial-condition overrides are applied on top.
TranResult solve_tran(const Circuit& ckt, const TranOptions& opts,
                      const DcResult* op0 = nullptr);

// --- Transient measure library --------------------------------------------
//
// All measures operate on the stored time points with linear interpolation
// between them.  "Swing" below means v_final - v_initial where v_initial is
// the value at time.front() and v_final the value at time.back(); measures
// that need a swing return 0 when |swing| < 1e-12 V.

/// Node voltage at time t (linear interpolation, clamped to the window).
double tran_value_at(const TranResult& res, int node, double t);

/// Largest / smallest node voltage over the run.
double tran_vmax(const TranResult& res, int node);
double tran_vmin(const TranResult& res, int node);

/// 10%-90% slew rate of the initial->final transition [V/s]: 0.8 * |swing|
/// over the time between the first 10% and the following 90% crossing.
/// Returns 0 when the node never completes the transition.
double tran_slew_rate(const TranResult& res, int node);

/// Time after which the node stays within tol_frac * |swing| of its final
/// value for the rest of the run [s]; 0 when it never leaves the band.
double tran_settling_time(const TranResult& res, int node, double tol_frac);

/// Peak excursion beyond the final value, as a fraction of |swing|
/// (0 when the response never overshoots).
double tran_overshoot(const TranResult& res, int node);

/// Delay from the input's 50% crossing of its own swing to the output's
/// 50% crossing [s], clamped at 0 (an output crossing before the input
/// reads as zero delay, never negative).  When either side never crosses,
/// returns 2x the window length — a finite sentinel strictly larger than
/// any genuine delay, so a spec on it fails cleanly and distinguishably.
double tran_prop_delay(const TranResult& res, int in_node, int out_node);

/// Time-average power delivered by voltage source `vsource_index` [W]:
/// mean of (v_p - v_n) * (-i_branch) over the run (trapezoidal in time).
double tran_avg_power(const TranResult& res, const Circuit& ckt,
                      std::size_t vsource_index);

}  // namespace kato::sim

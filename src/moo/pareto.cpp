#include "moo/pareto.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace kato::moo {

bool dominates(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("dominates: objective count mismatch");
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<std::vector<double>>& f) {
  const std::size_t n = f.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts(1);

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (dominates(f[p], f[q]))
        dominated_by[p].push_back(q);
      else if (dominates(f[q], f[p]))
        ++domination_count[p];
    }
    if (domination_count[p] == 0) fronts[0].push_back(p);
  }

  std::size_t i = 0;
  while (!fronts[i].empty()) {
    std::vector<std::size_t> next;
    for (std::size_t p : fronts[i]) {
      for (std::size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) next.push_back(q);
      }
    }
    ++i;
    fronts.push_back(std::move(next));
  }
  fronts.pop_back();  // last front is empty
  return fronts;
}

std::vector<double> crowding_distance(const std::vector<std::vector<double>>& f,
                                      const std::vector<std::size_t>& front) {
  const std::size_t n = front.size();
  std::vector<double> dist(n, 0.0);
  if (n == 0) return dist;
  const std::size_t n_obj = f[front[0]].size();
  std::vector<std::size_t> order(n);
  for (std::size_t m = 0; m < n_obj; ++m) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return f[front[a]][m] < f[front[b]][m];
    });
    dist[order.front()] = std::numeric_limits<double>::infinity();
    dist[order.back()] = std::numeric_limits<double>::infinity();
    const double span = f[front[order.back()]][m] - f[front[order.front()]][m];
    if (span <= 0.0) continue;
    for (std::size_t i = 1; i + 1 < n; ++i)
      dist[order[i]] +=
          (f[front[order[i + 1]]][m] - f[front[order[i - 1]]][m]) / span;
  }
  return dist;
}

std::vector<std::size_t> pareto_front(const std::vector<std::vector<double>>& f) {
  if (f.empty()) return {};
  return non_dominated_sort(f).front();
}

double hypervolume_2d(std::vector<std::vector<double>> pts,
                      const std::vector<double>& ref) {
  if (ref.size() != 2) throw std::invalid_argument("hypervolume_2d: ref dim != 2");
  // Keep points strictly inside the reference box.
  std::erase_if(pts, [&](const std::vector<double>& p) {
    return p.size() != 2 || p[0] >= ref[0] || p[1] >= ref[1];
  });
  if (pts.empty()) return 0.0;
  std::sort(pts.begin(), pts.end());  // ascending f0
  double hv = 0.0;
  double prev_f1 = ref[1];
  // Sweep left to right, only counting the staircase of non-dominated points.
  for (const auto& p : pts) {
    if (p[1] < prev_f1) {
      hv += (ref[0] - p[0]) * (prev_f1 - p[1]);
      prev_f1 = p[1];
    }
  }
  return hv;
}

}  // namespace kato::moo

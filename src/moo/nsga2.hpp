#pragma once
// NSGA-II multi-objective genetic search (Deb et al. 2002).
//
// MACE (paper Sec. 3.3) proposes BO batch candidates from the Pareto front of
// several acquisition functions; this NSGA-II is the Pareto-front searcher.
// Genes live in the unit hypercube; objectives are minimized.

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace kato::moo {

struct Nsga2Options {
  std::size_t population = 48;
  std::size_t generations = 30;
  double crossover_prob = 0.9;
  double eta_crossover = 15.0;  ///< SBX distribution index
  double eta_mutation = 20.0;   ///< polynomial-mutation distribution index
  double mutation_prob = -1.0;  ///< per-gene probability (< 0 means 1/dim)
};

/// Maps a unit-cube point to the objective vector to be minimized.
using ObjectiveFn =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// Maps a whole generation of unit-cube points to their objective vectors.
/// Candidate generation draws from the RNG; evaluation never does — so the
/// search trajectory is identical whether objectives are computed one at a
/// time or as a batch, and batch evaluators are free to vectorize or
/// thread-parallelize internally (MACE runs the surrogate posterior over the
/// whole population at once).
using BatchObjectiveFn = std::function<std::vector<std::vector<double>>(
    const std::vector<std::vector<double>>&)>;

struct ParetoSet {
  std::vector<std::vector<double>> x;  ///< non-dominated designs
  std::vector<std::vector<double>> f;  ///< their objective vectors
};

/// Run NSGA-II and return the final non-dominated set.  `seeds` (optional)
/// injects known-good designs into the initial population — MACE seeds the
/// acquisition search with the incumbent best designs.
ParetoSet nsga2(const ObjectiveFn& fn, std::size_t dim, std::size_t n_obj,
                const Nsga2Options& opts, util::Rng& rng,
                const std::vector<std::vector<double>>& seeds = {});

/// Batched-evaluation variant: one BatchObjectiveFn call per generation.
ParetoSet nsga2_batch(const BatchObjectiveFn& fn, std::size_t dim,
                      std::size_t n_obj, const Nsga2Options& opts,
                      util::Rng& rng,
                      const std::vector<std::vector<double>>& seeds = {});

}  // namespace kato::moo

#include "moo/nsga2.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "moo/pareto.hpp"

namespace kato::moo {

namespace {

struct Member {
  std::vector<double> x;
  std::vector<double> f;
  std::size_t rank = 0;
  double crowding = 0.0;
};

/// Binary tournament on (rank, crowding).
const Member& tournament(const std::vector<Member>& pop, util::Rng& rng) {
  const auto& a = pop[static_cast<std::size_t>(rng.randint(0, static_cast<int>(pop.size()) - 1))];
  const auto& b = pop[static_cast<std::size_t>(rng.randint(0, static_cast<int>(pop.size()) - 1))];
  if (a.rank != b.rank) return a.rank < b.rank ? a : b;
  return a.crowding > b.crowding ? a : b;
}

/// Simulated binary crossover on one gene pair, clipped to [0,1].
void sbx_gene(double& c1, double& c2, double eta, util::Rng& rng) {
  const double u = rng.uniform();
  const double beta = u <= 0.5 ? std::pow(2.0 * u, 1.0 / (eta + 1.0))
                               : std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
  const double p1 = c1;
  const double p2 = c2;
  c1 = 0.5 * ((1.0 + beta) * p1 + (1.0 - beta) * p2);
  c2 = 0.5 * ((1.0 - beta) * p1 + (1.0 + beta) * p2);
  c1 = std::clamp(c1, 0.0, 1.0);
  c2 = std::clamp(c2, 0.0, 1.0);
}

/// Polynomial mutation of one gene, clipped to [0,1].
void poly_mutate_gene(double& g, double eta, util::Rng& rng) {
  const double u = rng.uniform();
  double delta;
  if (u < 0.5)
    delta = std::pow(2.0 * u, 1.0 / (eta + 1.0)) - 1.0;
  else
    delta = 1.0 - std::pow(2.0 * (1.0 - u), 1.0 / (eta + 1.0));
  g = std::clamp(g + delta, 0.0, 1.0);
}

void assign_rank_and_crowding(std::vector<Member>& pop) {
  std::vector<std::vector<double>> f;
  f.reserve(pop.size());
  for (const auto& m : pop) f.push_back(m.f);
  const auto fronts = non_dominated_sort(f);
  for (std::size_t r = 0; r < fronts.size(); ++r) {
    const auto crowd = crowding_distance(f, fronts[r]);
    for (std::size_t i = 0; i < fronts[r].size(); ++i) {
      pop[fronts[r][i]].rank = r;
      pop[fronts[r][i]].crowding = crowd[i];
    }
  }
}

}  // namespace

ParetoSet nsga2_batch(const BatchObjectiveFn& fn, std::size_t dim,
                      std::size_t n_obj, const Nsga2Options& opts,
                      util::Rng& rng,
                      const std::vector<std::vector<double>>& seeds) {
  if (dim == 0) throw std::invalid_argument("nsga2: dim must be > 0");
  if (opts.population < 4) throw std::invalid_argument("nsga2: population too small");
  const double pm = opts.mutation_prob > 0.0
                        ? opts.mutation_prob
                        : 1.0 / static_cast<double>(dim);

  // Candidate genes are always drawn first (consuming the RNG in the same
  // order as the historical per-point implementation); objectives are then
  // filled in with a single batch call.
  auto evaluate_all = [&](std::vector<Member>& members) {
    std::vector<std::vector<double>> xs;
    xs.reserve(members.size());
    for (const auto& m : members) xs.push_back(m.x);
    auto fs = fn(xs);
    if (fs.size() != members.size())
      throw std::invalid_argument("nsga2: batch result count mismatch");
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (fs[i].size() != n_obj)
        throw std::invalid_argument("nsga2: objective count mismatch");
      members[i].f = std::move(fs[i]);
    }
  };

  // Initial population: injected seeds first, uniform random for the rest.
  std::vector<Member> pop(opts.population);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    if (i < seeds.size() && seeds[i].size() == dim)
      pop[i].x = seeds[i];
    else
      pop[i].x = rng.uniform_vec(dim);
  }
  evaluate_all(pop);
  assign_rank_and_crowding(pop);

  for (std::size_t gen = 0; gen < opts.generations; ++gen) {
    // Variation: tournament -> SBX -> polynomial mutation.
    std::vector<Member> offspring;
    offspring.reserve(opts.population);
    while (offspring.size() < opts.population) {
      Member c1;
      Member c2;
      c1.x = tournament(pop, rng).x;
      c2.x = tournament(pop, rng).x;
      if (rng.uniform() < opts.crossover_prob) {
        for (std::size_t g = 0; g < dim; ++g)
          if (rng.uniform() < 0.5) sbx_gene(c1.x[g], c2.x[g], opts.eta_crossover, rng);
      }
      for (std::size_t g = 0; g < dim; ++g) {
        if (rng.uniform() < pm) poly_mutate_gene(c1.x[g], opts.eta_mutation, rng);
        if (rng.uniform() < pm) poly_mutate_gene(c2.x[g], opts.eta_mutation, rng);
      }
      offspring.push_back(std::move(c1));
      if (offspring.size() < opts.population) offspring.push_back(std::move(c2));
    }
    evaluate_all(offspring);

    // Environmental selection on the combined population.
    std::vector<Member> combined;
    combined.reserve(pop.size() + offspring.size());
    std::move(pop.begin(), pop.end(), std::back_inserter(combined));
    std::move(offspring.begin(), offspring.end(), std::back_inserter(combined));
    assign_rank_and_crowding(combined);

    std::vector<std::size_t> order(combined.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (combined[a].rank != combined[b].rank)
        return combined[a].rank < combined[b].rank;
      return combined[a].crowding > combined[b].crowding;
    });
    pop.clear();
    for (std::size_t i = 0; i < opts.population; ++i)
      pop.push_back(std::move(combined[order[i]]));
    assign_rank_and_crowding(pop);
  }

  ParetoSet result;
  for (const auto& m : pop) {
    if (m.rank == 0) {
      result.x.push_back(m.x);
      result.f.push_back(m.f);
    }
  }
  return result;
}

ParetoSet nsga2(const ObjectiveFn& fn, std::size_t dim, std::size_t n_obj,
                const Nsga2Options& opts, util::Rng& rng,
                const std::vector<std::vector<double>>& seeds) {
  auto batch = [&fn](const std::vector<std::vector<double>>& xs) {
    std::vector<std::vector<double>> out;
    out.reserve(xs.size());
    for (const auto& x : xs) out.push_back(fn(x));
    return out;
  };
  return nsga2_batch(batch, dim, n_obj, opts, rng, seeds);
}

}  // namespace kato::moo

#pragma once
// Pareto-dominance utilities shared by NSGA-II and the MACE batch selection.
// Convention throughout: objectives are MINIMIZED.

#include <cstddef>
#include <span>
#include <vector>

namespace kato::moo {

/// True iff a dominates b: a is no worse in every objective and strictly
/// better in at least one (minimization).
bool dominates(std::span<const double> a, std::span<const double> b);

/// Fast non-dominated sort (Deb et al. 2002).  Returns fronts of indices into
/// `f`, front 0 being the non-dominated set.
std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<std::vector<double>>& f);

/// Crowding distance of each member of `front` (indices into `f`); boundary
/// points get +infinity.
std::vector<double> crowding_distance(const std::vector<std::vector<double>>& f,
                                      const std::vector<std::size_t>& front);

/// Indices of the non-dominated subset of `f`.
std::vector<std::size_t> pareto_front(const std::vector<std::vector<double>>& f);

/// Hypervolume dominated by a 2-D point set relative to `ref` (minimization;
/// points outside the reference box are clipped away).
double hypervolume_2d(std::vector<std::vector<double>> pts,
                      const std::vector<double>& ref);

}  // namespace kato::moo

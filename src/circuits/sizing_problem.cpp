#include "circuits/sizing_problem.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace kato::ckt {

void DesignSpace::add(const std::string& name, double lo_v, double hi_v,
                      bool log_v) {
  // Fail loudly here: a bad range would otherwise surface only as NaN/inf
  // physical values deep inside a sizing run.
  const std::string what = "DesignSpace::add('" + name + "'): ";
  if (!std::isfinite(lo_v) || !std::isfinite(hi_v))
    throw std::invalid_argument(what + "non-finite range [" +
                                std::to_string(lo_v) + ", " +
                                std::to_string(hi_v) + "]");
  if (!(hi_v > lo_v))
    throw std::invalid_argument(what + "need lo < hi, got [" +
                                std::to_string(lo_v) + ", " +
                                std::to_string(hi_v) + "]");
  if (log_v && !(lo_v > 0.0))
    throw std::invalid_argument(what + "log-scale variable needs lo > 0, got " +
                                std::to_string(lo_v));
  for (const auto& existing : names)
    if (existing == name)
      throw std::invalid_argument(what + "duplicate variable name");
  names.push_back(name);
  lo.push_back(lo_v);
  hi.push_back(hi_v);
  log_scale.push_back(log_v);
}

std::vector<double> DesignSpace::to_physical(const std::vector<double>& unit) const {
  if (unit.size() != dim())
    throw std::invalid_argument("DesignSpace::to_physical: dim mismatch");
  std::vector<double> x(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    const double u = std::clamp(unit[i], 0.0, 1.0);
    if (log_scale[i])
      x[i] = lo[i] * std::pow(hi[i] / lo[i], u);
    else
      x[i] = lo[i] + u * (hi[i] - lo[i]);
  }
  return x;
}

std::vector<std::optional<std::vector<double>>> SizingCircuit::evaluate_batch(
    const std::vector<std::vector<double>>& xs) const {
  std::vector<std::optional<std::vector<double>>> out;
  out.reserve(xs.size());
  for (const auto& x : xs) out.push_back(evaluate(x));
  return out;
}

bool SizingCircuit::feasible(const std::vector<double>& metrics) const {
  const auto& specs = constraints();
  if (metrics.size() != 1 + specs.size())
    throw std::invalid_argument("SizingCircuit::feasible: metric count mismatch");
  for (std::size_t i = 0; i < specs.size(); ++i)
    if (!specs[i].satisfied(metrics[1 + i])) return false;
  return true;
}

FomNormalization calibrate_fom(const SizingCircuit& circuit, std::size_t n,
                               util::Rng& rng) {
  const std::size_t m = circuit.n_metrics();
  FomNormalization norm;
  norm.f_min.assign(m, std::numeric_limits<double>::infinity());
  norm.f_max.assign(m, -std::numeric_limits<double>::infinity());
  norm.bound.assign(m, 0.0);
  norm.weight.assign(m, 1.0);

  // Draw the whole DOE first (same RNG stream as the historical one-by-one
  // loop), then evaluate as one batch — thread-parallel for circuits that
  // override evaluate_batch.
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    points.push_back(rng.uniform_vec(circuit.dim()));
  const auto results = circuit.evaluate_batch(points);

  std::size_t got = 0;
  for (const auto& metrics : results) {
    if (!metrics) continue;
    ++got;
    for (std::size_t j = 0; j < m; ++j) {
      norm.f_min[j] = std::min(norm.f_min[j], (*metrics)[j]);
      norm.f_max[j] = std::max(norm.f_max[j], (*metrics)[j]);
    }
  }
  if (got < 3)
    throw std::runtime_error("calibrate_fom: too few successful simulations");
  for (std::size_t j = 0; j < m; ++j)
    if (!(norm.f_max[j] > norm.f_min[j])) norm.f_max[j] = norm.f_min[j] + 1.0;

  // Objective (index 0) is minimized and has no bound: clip at f_max.
  norm.weight[0] = -1.0;
  norm.bound[0] = norm.f_max[0];
  const auto& specs = circuit.constraints();
  for (std::size_t c = 0; c < specs.size(); ++c) {
    norm.weight[1 + c] = specs[c].is_lower_bound ? 1.0 : -1.0;
    norm.bound[1 + c] = specs[c].bound;
  }
  return norm;
}

double fom_value(const FomNormalization& norm, const std::vector<double>& metrics) {
  if (metrics.size() != norm.weight.size())
    throw std::invalid_argument("fom_value: metric count mismatch");
  double fom = 0.0;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    // Eq. 2: w_i * (min(f_i, f_bound) - f_min) / (f_max - f_min).
    // For metrics that are minimized (w = -1) the clip keeps values from
    // rewarding overshoot below the bound; mirror the clip accordingly.
    const double span = norm.f_max[i] - norm.f_min[i];
    double clipped;
    if (norm.weight[i] > 0.0)
      clipped = std::min(metrics[i], norm.bound[i]);
    else
      clipped = std::max(metrics[i], i == 0 ? norm.f_min[i] : norm.bound[i]);
    fom += norm.weight[i] * (clipped - norm.f_min[i]) / span;
  }
  return fom;
}

}  // namespace kato::ckt

#include "circuits/buffer.hpp"

#include "sim/dc.hpp"
#include "sim/transient.hpp"

namespace kato::ckt {

namespace {

// Step-stimulus timing shared with circuits/netlists/buffer_tran.cir (the
// deck must use the same literals for the golden-equivalence test).
constexpr double k_td = 0.2e-6;    ///< step delay [s]
constexpr double k_tedge = 10e-9;  ///< rise/fall time [s]
constexpr double k_tstop = 3e-6;
constexpr double k_tstep = 3e-9;
constexpr double k_settle_frac = 0.02;  ///< 2% settling band

}  // namespace

StepBuffer::StepBuffer(const Pdk& pdk) : pdk_(pdk) {
  space_.add("L1", pdk.lmin, pdk.lmax);
  space_.add("W1", 20.0 * pdk.lmin, 2000.0 * pdk.lmin);
  space_.add("L2", pdk.lmin, pdk.lmax);
  space_.add("W2", 20.0 * pdk.lmin, 2000.0 * pdk.lmin);
  const double cap_scale = pdk.vdd / 1.8;  // smaller nodes use smaller caps
  space_.add("Cc", 0.3e-12 * cap_scale, 10e-12 * cap_scale);
  space_.add("Rz", 100.0, 50e3);
  space_.add("I1", 2e-6, 300e-6);
  space_.add("I2", 2e-6, 500e-6);

  const bool node180 = pdk.name == "180nm";
  specs_ = {
      {"Slew", "V/us", node180 ? 2.0 : 1.5, true},
      {"Tsettle", "us", node180 ? 1.0 : 1.2, false},
      {"Overshoot", "%", 5.0, false},
  };
}

std::optional<std::vector<double>> StepBuffer::evaluate(
    const std::vector<double>& unit_x) const {
  const auto p = space_.to_physical(unit_x);
  const double l1 = p[0], w1 = p[1], l2 = p[2], w2 = p[3];
  const double cc = p[4], rz = p[5], i1 = p[6], i2 = p[7];

  // Node creation and per-type device order mirror the deck card order of
  // circuits/netlists/buffer_tran.cir (first-appearance node numbering).
  sim::Circuit ckt;
  const int vdd = ckt.new_node("vdd");
  const int inp = ckt.new_node("inp");
  const int ns = ckt.new_node("ns");
  const int n1 = ckt.new_node("n1");
  const int out = ckt.new_node("out");
  const int n2 = ckt.new_node("n2");
  const int bp = ckt.new_node("bp");
  const int nc = ckt.new_node("nc");

  const int vdd_src = ckt.add_vsource(vdd, sim::Circuit::ground, pdk_.vdd);
  const double vlo = 0.35 * pdk_.vdd;  // PMOS-pair common mode
  const double vhi = 0.5 * pdk_.vdd;
  sim::Waveform step;
  step.kind = sim::Waveform::Kind::pulse;
  step.v1 = vlo;
  step.v2 = vhi;
  step.td = k_td;
  step.tr = k_tedge;
  step.tf = k_tedge;
  step.pw = 1.0;  // effectively a single rising edge within tstop
  step.period = 0.0;
  ckt.add_vsource(inp, sim::Circuit::ground, vlo, 0.0, step);

  // First stage: ideal tail from VDD, PMOS pair, NMOS mirror load; the
  // inverting input is the output (unity-gain feedback).
  ckt.add_isource(vdd, ns, i1);
  ckt.add_mosfet(n1, out, ns, w1, l1, pdk_.pmos);
  ckt.add_mosfet(n2, inp, ns, w1, l1, pdk_.pmos);
  ckt.add_mosfet(n1, n1, sim::Circuit::ground, w1, l1, pdk_.nmos);
  ckt.add_mosfet(n2, n1, sim::Circuit::ground, w1, l1, pdk_.nmos);

  // Second stage: NMOS common source with PMOS mirror load carrying I2.
  ckt.add_isource(bp, sim::Circuit::ground, i2);
  ckt.add_resistor(n2, nc, rz);
  ckt.add_mosfet(out, n2, sim::Circuit::ground, w2, l2, pdk_.nmos);
  ckt.add_mosfet(bp, bp, vdd, 2.0 * w2, l2, pdk_.pmos);
  ckt.add_mosfet(out, bp, vdd, 2.0 * w2, l2, pdk_.pmos);

  // Miller compensation Rz + Cc, fixed load capacitance.
  ckt.add_capacitor(nc, out, cc);
  ckt.add_capacitor(out, sim::Circuit::ground,
                    pdk_.name == "180nm" ? 3e-12 : 1e-12);

  const auto op = sim::solve_dc(ckt);
  if (!op.converged) return std::nullopt;

  sim::TranOptions topts;
  topts.tstep = k_tstep;
  topts.tstop = k_tstop;
  const auto tran = sim::solve_tran(ckt, topts, &op);
  if (!tran.ok) return std::nullopt;

  const double power =
      sim::tran_avg_power(tran, ckt, static_cast<std::size_t>(vdd_src));
  if (!(power > 0.0)) return std::nullopt;  // supply must deliver power
  const double slew = sim::tran_slew_rate(tran, out);
  const double tsettle = sim::tran_settling_time(tran, out, k_settle_frac);
  const double overshoot = sim::tran_overshoot(tran, out);
  return std::vector<double>{power * 1e6, slew / 1e6, tsettle * 1e6,
                             overshoot * 100.0};
}

std::vector<double> StepBuffer::expert_design() const {
  // Feasible, deliberately conservative sizings (the "Human Expert" rows) —
  // comfortable margins on slew/settling/overshoot, generous currents.
  if (pdk_.name == "180nm")
    return {0.4537, 0.0732, 0.1869, 0.7354, 0.3845, 0.3617, 0.2721, 0.7390};
  return {0.0491, 0.1074, 0.3264, 0.9743, 0.4486, 0.2455, 0.2624, 0.7001};
}

}  // namespace kato::ckt

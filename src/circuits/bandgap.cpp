#include "circuits/bandgap.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/ac.hpp"
#include "sim/dc.hpp"

namespace kato::ckt {

namespace {

struct BandgapCircuit {
  sim::Circuit ckt;
  int vref = 0;
  int vdd_src = 0;
};

BandgapCircuit build(const Pdk& pdk, const std::vector<double>& p) {
  const double l_amp = p[0], w_amp = p[1], w_mir = p[2], l_mir = p[3];
  const double r1 = p[4], r2 = p[5], ib = p[6];

  BandgapCircuit bg;
  auto& ckt = bg.ckt;
  const int vdd = ckt.new_node("vdd");
  const int pg = ckt.new_node("pg");    // mirror gate = amp output
  const int x1 = ckt.new_node("x1");    // D1 branch
  const int x2 = ckt.new_node("x2");    // R1 + D2 branch
  const int xd2 = ckt.new_node("xd2");
  const int vref = ckt.new_node("vref");
  const int xd3 = ckt.new_node("xd3");
  const int y1 = ckt.new_node("y1");    // amp mirror diode
  const int na = ckt.new_node("na");    // amp tail

  // The supply carries the AC stimulus for the PSRR measurement.
  bg.vdd_src = ckt.add_vsource(vdd, sim::Circuit::ground, pdk.vdd, 1.0);
  bg.vref = vref;

  // Three matched cascoded mirror branches.  The cascode devices shield the
  // branch outputs from supply ripple (the plain mirror caps PSRR near
  // 30 dB, below the 50 dB spec no matter the sizing); their gates hang off
  // x1, which the regulation loop holds quiet.
  const int c1n = ckt.new_node("c1");
  const int c2n = ckt.new_node("c2");
  const int c3n = ckt.new_node("c3");
  ckt.add_mosfet(c1n, pg, vdd, w_mir, l_mir, pdk.pmos);
  ckt.add_mosfet(c2n, pg, vdd, w_mir, l_mir, pdk.pmos);
  ckt.add_mosfet(c3n, pg, vdd, w_mir, l_mir, pdk.pmos);
  ckt.add_mosfet(x1, x1, c1n, w_mir, l_mir, pdk.pmos);
  ckt.add_mosfet(x2, x1, c2n, w_mir, l_mir, pdk.pmos);
  ckt.add_mosfet(vref, x1, c3n, w_mir, l_mir, pdk.pmos);

  sim::Diode d1;
  d1.a = x1;
  d1.c = sim::Circuit::ground;
  d1.is_sat = 1e-16;
  ckt.add_diode(d1);

  ckt.add_resistor(x2, xd2, r1);
  sim::Diode d2 = d1;
  d2.a = xd2;
  d2.area = 8.0;  // PTAT: dVbe = vt ln(8)
  ckt.add_diode(d2);

  ckt.add_resistor(vref, xd3, r2);
  sim::Diode d3 = d1;
  d3.a = xd3;
  ckt.add_diode(d3);

  // Error amplifier: 5T OTA.  x2 (high-impedance branch) goes to the
  // diode-side input so the regulation loop is negative feedback.
  ckt.add_isource(na, sim::Circuit::ground, ib);
  ckt.add_mosfet(y1, x2, na, w_amp, l_amp, pdk.nmos);
  ckt.add_mosfet(pg, x1, na, w_amp, l_amp, pdk.nmos);
  ckt.add_mosfet(y1, y1, vdd, 2.0 * w_amp, l_amp, pdk.pmos);
  ckt.add_mosfet(pg, y1, vdd, 2.0 * w_amp, l_amp, pdk.pmos);

  // Startup: bleed the mirror gate low so the all-off state is not an
  // equilibrium; compensation cap stabilizes the regulation loop.
  ckt.add_resistor(pg, sim::Circuit::ground, 20e6);
  ckt.add_capacitor(pg, sim::Circuit::ground, 2e-12);
  return bg;
}

}  // namespace

BandgapReference::BandgapReference(const Pdk& pdk) : pdk_(pdk) {
  space_.add("Lamp", pdk.lmin, pdk.lmax);
  space_.add("Wamp", 10.0 * pdk.lmin, 500.0 * pdk.lmin);
  space_.add("Wmir", 10.0 * pdk.lmin, 800.0 * pdk.lmin);
  space_.add("Lmir", pdk.lmin, pdk.lmax);
  space_.add("R1", 20e3, 400e3);
  space_.add("R2", 50e3, 1.5e6);
  space_.add("Ib", 0.1e-6, 3e-6);

  specs_ = {
      {"Itotal", "uA", 6.0, false},   // minimize-style upper bound
      {"PSRR", "dB", 50.0, true},
  };
}

std::optional<std::vector<double>> BandgapReference::evaluate(
    const std::vector<double>& unit_x) const {
  const auto p = space_.to_physical(unit_x);
  auto bg = build(pdk_, p);

  // Nominal-temperature operating point: current + PSRR.
  sim::DcOptions opts;
  opts.temp = 300.0;
  const auto op = sim::solve_dc(bg.ckt, opts);
  if (!op.converged) return std::nullopt;
  const double vref_nom = op.v(bg.vref);
  // A collapsed reference (diode chain off) is not a usable design.
  if (vref_nom < 0.3 || vref_nom > pdk_.vdd - 0.05) return std::nullopt;
  const double i_total =
      -op.vsource_current[static_cast<std::size_t>(bg.vdd_src)];
  if (!(i_total > 0.0)) return std::nullopt;

  const auto sweep = sim::solve_ac(bg.ckt, op, sim::log_freq_grid(1.0, 1e6, 6));
  if (!sweep.ok) return std::nullopt;
  const double ripple_db = sim::gain_db_at(sweep, bg.vref, 100.0);
  const double psrr_db = -ripple_db;  // rejection, larger is better

  // Temperature sweep for TC, warm-starting each point from the previous.
  const std::vector<double> temps{253.0, 273.0, 300.0, 323.0, 348.0, 373.0};
  double v_min = vref_nom;
  double v_max = vref_nom;
  la::Vector warm = op.node_voltage;
  for (double t : temps) {
    sim::DcOptions topts;
    topts.temp = t;
    const auto tr = sim::solve_dc(bg.ckt, topts, &warm);
    if (!tr.converged) return std::nullopt;
    warm = tr.node_voltage;
    v_min = std::min(v_min, tr.v(bg.vref));
    v_max = std::max(v_max, tr.v(bg.vref));
  }
  const double t_span = temps.back() - temps.front();
  const double tc_ppm = (v_max - v_min) / (vref_nom * t_span) * 1e6;

  return std::vector<double>{tc_ppm, i_total * 1e6, psrr_db};
}

std::vector<double> BandgapReference::expert_design() const {
  // Feasible reference sizing (PSRR just above spec, low current, untuned
  // TC) — the "Human Expert" row of Table 1.
  return {0.6274, 0.2036, 0.7308, 0.3681, 0.8830, 0.3853, 0.8515};
}

}  // namespace kato::ckt

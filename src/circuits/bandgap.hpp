#pragma once
// Bandgap reference (paper Fig. 3c, Eq. 17).
//
// Implementation: a PTAT/CTAT bandgap core with a real 5-transistor OTA as
// the error amplifier (the paper's schematic is a larger industrial cell;
// this core preserves the same design trade-offs — see DESIGN.md):
//   * three matched PMOS mirror branches from VDD (two core, one output),
//   * branch 1: diode D1 (area 1); branch 2: R1 in series with D2 (area 8),
//   * the OTA drives the mirror gate so V(x1) = V(x2), making the branch
//     current PTAT: I = dVbe / R1,
//   * output branch: Vref = Vbe3 + (R2/R1) dVbe — the classic first-order
//     temperature cancellation that the TC objective asks the optimizer to
//     null by picking R2/R1,
//   * a large startup resistor on the mirror gate removes the degenerate
//     all-off operating point.
//
// Metrics: [TC(ppm/C), Itotal(uA), PSRR(dB @100Hz)], objective = TC,
// constraints Itotal < 6 uA and PSRR > 50 dB (Eq. 17).  TC is measured with
// a DC temperature sweep (-20C .. 100C); PSRR from an AC sweep with the
// supply as stimulus.

#include "circuits/pdk.hpp"
#include "circuits/sizing_problem.hpp"

namespace kato::ckt {

class BandgapReference final : public SizingCircuit {
 public:
  explicit BandgapReference(const Pdk& pdk);

  std::string name() const override { return "bandgap-" + pdk_.name; }
  const DesignSpace& space() const override { return space_; }
  std::string objective_name() const override { return "TC(ppm/C)"; }
  const std::vector<MetricSpec>& constraints() const override { return specs_; }
  std::optional<std::vector<double>> evaluate(
      const std::vector<double>& unit_x) const override;
  std::vector<double> expert_design() const override;

 private:
  Pdk pdk_;
  DesignSpace space_;
  std::vector<MetricSpec> specs_;
};

}  // namespace kato::ckt

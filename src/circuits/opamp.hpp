#pragma once
// The paper's operational-amplifier benchmarks (Fig. 3a, 3b) and the small
// second-stage amplifier used for the Fig. 1 kernel assessment.
//
// Two-stage OpAmp (Miller OTA): PMOS differential pair with ideal tail
// current, NMOS current-mirror load, NMOS common-source second stage with a
// real PMOS mirror load, RC (Rz + Cc) Miller compensation, fixed load cap.
// Design variables: L1, W1 (first stage), L2, W2 (second stage), Cc, Rz,
// I1, I2 — the variable families named in Sec. 4 (Eq. 15).
//
// Three-stage OpAmp: NMOS input pair, PMOS common-source middle stage, NMOS
// common-source output stage, nested-Miller compensation (C0 outer, C1
// inner).  Ten design variables (Eq. 16's families plus per-stage geometry),
// deliberately a different dimensionality from the two-stage amp so the
// topology-transfer experiments exercise the KAT encoder across spaces.
//
// Metrics vector (both amps): [Itotal(uA), Gain(dB), PM(deg), GBW(MHz)],
// objective = Itotal.

#include <memory>

#include "circuits/pdk.hpp"
#include "circuits/sizing_problem.hpp"

namespace kato::ckt {

class TwoStageOpAmp final : public SizingCircuit {
 public:
  explicit TwoStageOpAmp(const Pdk& pdk);

  std::string name() const override { return "two-stage-opamp-" + pdk_.name; }
  const DesignSpace& space() const override { return space_; }
  std::string objective_name() const override { return "Itotal(uA)"; }
  const std::vector<MetricSpec>& constraints() const override { return specs_; }
  std::optional<std::vector<double>> evaluate(
      const std::vector<double>& unit_x) const override;
  std::vector<double> expert_design() const override;

 private:
  Pdk pdk_;
  DesignSpace space_;
  std::vector<MetricSpec> specs_;
};

class ThreeStageOpAmp final : public SizingCircuit {
 public:
  explicit ThreeStageOpAmp(const Pdk& pdk);

  std::string name() const override { return "three-stage-opamp-" + pdk_.name; }
  const DesignSpace& space() const override { return space_; }
  std::string objective_name() const override { return "Itotal(uA)"; }
  const std::vector<MetricSpec>& constraints() const override { return specs_; }
  std::optional<std::vector<double>> evaluate(
      const std::vector<double>& unit_x) const override;
  std::vector<double> expert_design() const override;

 private:
  Pdk pdk_;
  DesignSpace space_;
  std::vector<MetricSpec> specs_;
};

/// Single common-source gain stage (the "second-stage amplification circuit"
/// of Fig. 1's kernel assessment): 4 design variables, single gain metric —
/// a clean regression target for comparing kernels.
class SecondStageAmp final : public SizingCircuit {
 public:
  explicit SecondStageAmp(const Pdk& pdk);

  std::string name() const override { return "second-stage-amp-" + pdk_.name; }
  const DesignSpace& space() const override { return space_; }
  std::string objective_name() const override { return "Gain(dB)"; }
  const std::vector<MetricSpec>& constraints() const override { return specs_; }
  std::optional<std::vector<double>> evaluate(
      const std::vector<double>& unit_x) const override;
  std::vector<double> expert_design() const override;

 private:
  Pdk pdk_;
  DesignSpace space_;
  std::vector<MetricSpec> specs_;  // empty: pure regression target
};

}  // namespace kato::ckt

#pragma once
// Sizing-problem abstraction consumed by the BO drivers.
//
// A SizingCircuit maps a unit-box design vector to a metric vector
//   metrics[0]   — the objective (always MINIMIZED)
//   metrics[1..] — constrained quantities, one per MetricSpec
// and reports simulation failure via nullopt (non-convergent DC, degenerate
// AC) — the drivers treat failures as infeasible.
//
// Also implements the FOM of Eq. (2): each metric is normalized by min/max
// values calibrated from random samples, clipped at its bound, and combined
// with +-1 weights.

#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace kato::ckt {

/// Box design space with per-variable linear or log interpolation.
struct DesignSpace {
  std::vector<std::string> names;
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<bool> log_scale;

  std::size_t dim() const { return names.size(); }
  /// Map a unit-box point to physical values.
  std::vector<double> to_physical(const std::vector<double>& unit) const;

  void add(const std::string& name, double lo_v, double hi_v, bool log_v = true);
};

/// Constraint on one metric: value >= bound (lower) or value <= bound (upper).
struct MetricSpec {
  std::string name;
  std::string unit;
  double bound = 0.0;
  bool is_lower_bound = true;

  bool satisfied(double value) const {
    return is_lower_bound ? value >= bound : value <= bound;
  }
  /// Violation as a positive number (0 when satisfied).
  double violation(double value) const {
    return is_lower_bound ? std::max(0.0, bound - value)
                          : std::max(0.0, value - bound);
  }
};

class SizingCircuit {
 public:
  virtual ~SizingCircuit() = default;

  virtual std::string name() const = 0;
  virtual const DesignSpace& space() const = 0;
  /// Objective metadata (name/unit of metrics[0], always minimized).
  virtual std::string objective_name() const = 0;
  /// Specs for metrics[1..].
  virtual const std::vector<MetricSpec>& constraints() const = 0;

  /// Simulate at a unit-box point.  nullopt = simulation failure.
  virtual std::optional<std::vector<double>> evaluate(
      const std::vector<double>& unit_x) const = 0;

  /// Simulate a batch of candidates; result[i] equals evaluate(xs[i]).
  /// The base implementation is the serial loop.  Overrides may evaluate
  /// thread-parallel (see NetlistCircuit) but must stay bit-identical to
  /// the serial loop at any KATO_THREADS — the BO drivers and the DOE
  /// stages rely on that for seed reproducibility.
  virtual std::vector<std::optional<std::vector<double>>> evaluate_batch(
      const std::vector<std::vector<double>>& xs) const;

  /// A hand-tuned feasible reference sizing (the "Human Expert" rows of
  /// Tables 1-2), in unit-box coordinates.
  virtual std::vector<double> expert_design() const = 0;

  std::size_t dim() const { return space().dim(); }
  std::size_t n_metrics() const { return 1 + constraints().size(); }

  /// True iff all constraint entries of a metric vector meet their specs.
  bool feasible(const std::vector<double>& metrics) const;
};

/// FOM normalization constants (Eq. 2), calibrated from random samples.
struct FomNormalization {
  std::vector<double> f_min;   ///< per metric (objective first)
  std::vector<double> f_max;
  std::vector<double> bound;   ///< f^bound_i (objective: unbounded)
  std::vector<double> weight;  ///< +1 maximize / -1 minimize
};

/// Sample `n` random designs (skipping failures) and derive Eq. 2 constants.
/// The objective gets weight -1 (minimized, no bound); each constraint gets
/// weight +-1 by its direction and its spec value as f^bound.
FomNormalization calibrate_fom(const SizingCircuit& circuit, std::size_t n,
                               util::Rng& rng);

/// Eq. 2 value for one metric vector (higher is better).
double fom_value(const FomNormalization& norm, const std::vector<double>& metrics);

}  // namespace kato::ckt

#pragma once
// Unity-gain step-response buffer: the built-in transient workload.
//
// The two-stage Miller OTA of `TwoStageOpAmp` wired as a voltage follower
// (output fed back to the inverting input) and driven by a pulse step at the
// non-inverting input.  All specs are large-signal/time-domain — the
// behaviors DC/AC small-signal analysis cannot express:
//
//   metrics[0]  Power(uW)      time-average supply power (minimized)
//   metrics[1]  Slew(V/us)     10%-90% output slew rate        >= bound
//   metrics[2]  Tsettle(us)    2%-band settling time           <= bound
//   metrics[3]  Overshoot(%)   peak excursion past final value <= bound
//
// Same eight design variables as the two-stage OpAmp (L1 W1 L2 W2 Cc Rz I1
// I2), so node-transfer experiments (180nm <-> 40nm) run unchanged and
// topology-transfer pairs it with the AC-domain amps.  The netlist twin is
// `circuits/netlists/buffer_tran.cir` — card order mirrors the construction
// order here, so deck and built-in produce bit-close metrics (pinned by
// tests/tran_test.cpp TranGolden).

#include "circuits/pdk.hpp"
#include "circuits/sizing_problem.hpp"

namespace kato::ckt {

class StepBuffer final : public SizingCircuit {
 public:
  explicit StepBuffer(const Pdk& pdk);

  std::string name() const override { return "step-buffer-" + pdk_.name; }
  const DesignSpace& space() const override { return space_; }
  std::string objective_name() const override { return "Power(uW)"; }
  const std::vector<MetricSpec>& constraints() const override { return specs_; }
  std::optional<std::vector<double>> evaluate(
      const std::vector<double>& unit_x) const override;
  std::vector<double> expert_design() const override;

 private:
  Pdk pdk_;
  DesignSpace space_;
  std::vector<MetricSpec> specs_;
};

}  // namespace kato::ckt

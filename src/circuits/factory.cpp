#include "circuits/factory.hpp"

#include <stdexcept>

namespace kato::ckt {

std::unique_ptr<SizingCircuit> make_circuit(const std::string& kind,
                                            const std::string& node) {
  const Pdk& pdk = pdk_by_name(node);
  if (kind == "opamp2") return std::make_unique<TwoStageOpAmp>(pdk);
  if (kind == "opamp3") return std::make_unique<ThreeStageOpAmp>(pdk);
  if (kind == "bandgap") return std::make_unique<BandgapReference>(pdk);
  if (kind == "stage2") return std::make_unique<SecondStageAmp>(pdk);
  throw std::invalid_argument("make_circuit: unknown kind " + kind);
}

}  // namespace kato::ckt

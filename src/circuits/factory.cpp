#include "circuits/factory.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "netlist/netlist_circuit.hpp"

namespace kato::ckt {

namespace {

/// Resolve a "netlist:" deck path: as given, then under KATO_NETLIST_DIR.
std::string resolve_deck_path(const std::string& path) {
  if (std::ifstream(path).good()) return path;
  if (const char* dir = std::getenv("KATO_NETLIST_DIR")) {
    const std::string joined = std::string(dir) + "/" + path;
    if (std::ifstream(joined).good()) return joined;
    throw std::invalid_argument("make_circuit: netlist deck '" + path +
                                "' not found (also tried '" + joined + "')");
  }
  throw std::invalid_argument(
      "make_circuit: netlist deck '" + path +
      "' not found (set KATO_NETLIST_DIR to add a search root)");
}

}  // namespace

std::unique_ptr<SizingCircuit> make_circuit(const std::string& kind,
                                            const std::string& node) {
  const Pdk& pdk = pdk_by_name(node);
  if (kind == "opamp2") return std::make_unique<TwoStageOpAmp>(pdk);
  if (kind == "opamp3") return std::make_unique<ThreeStageOpAmp>(pdk);
  if (kind == "bandgap") return std::make_unique<BandgapReference>(pdk);
  if (kind == "stage2") return std::make_unique<SecondStageAmp>(pdk);
  if (kind == "buffer") return std::make_unique<StepBuffer>(pdk);
  if (kind.rfind("netlist:", 0) == 0)
    return NetlistCircuit::from_file(resolve_deck_path(kind.substr(8)), pdk);
  throw std::invalid_argument(
      "make_circuit: unknown kind '" + kind +
      "'; registered kinds: opamp2, opamp3, bandgap, stage2, buffer, "
      "netlist:<deck.cir>");
}

}  // namespace kato::ckt

#pragma once
// Convenience factory for the evaluation circuits.

#include <memory>
#include <string>

#include "circuits/bandgap.hpp"
#include "circuits/buffer.hpp"
#include "circuits/opamp.hpp"

namespace kato::ckt {

/// Build a sizing circuit.
///
/// kind:
///   "opamp2" | "opamp3" | "bandgap" | "stage2"   — the hand-written
///       benchmark topologies;
///   "buffer"                                     — the unity-gain
///       step-response buffer (time-domain slew/settling specs);
///   "netlist:<path.cir>"                         — any SPICE-subset deck,
///       elaborated through the netlist front-end.  A relative path is
///       tried as-is, then against the KATO_NETLIST_DIR environment
///       variable.
/// node: "180nm" | "40nm".
///
/// Unknown kinds/nodes throw std::invalid_argument listing what is
/// registered; bad decks throw net::NetlistError with file/line.
std::unique_ptr<SizingCircuit> make_circuit(const std::string& kind,
                                            const std::string& node);

}  // namespace kato::ckt

#pragma once
// Convenience factory for the evaluation circuits.

#include <memory>
#include <string>

#include "circuits/bandgap.hpp"
#include "circuits/opamp.hpp"

namespace kato::ckt {

/// kind in {"opamp2", "opamp3", "bandgap", "stage2"}, node in {"180nm", "40nm"}.
std::unique_ptr<SizingCircuit> make_circuit(const std::string& kind,
                                            const std::string& node);

}  // namespace kato::ckt

#include "circuits/pdk.hpp"

#include <stdexcept>

namespace kato::ckt {

namespace {

Pdk make_180nm() {
  Pdk p;
  p.name = "180nm";
  p.vdd = 1.8;
  p.lmin = 0.18e-6;
  p.lmax = 2.0e-6;

  p.nmos.nmos = true;
  p.nmos.vth0 = 0.50;
  p.nmos.kp = 170e-6;
  p.nmos.lambda_coef = 0.06e-6;
  p.nmos.cox = 8.5e-3;
  p.nmos.cgdo = 0.35e-9;
  p.nmos.cj_w = 0.9e-9;
  p.nmos.subthreshold_n = 1.45;

  p.pmos = p.nmos;
  p.pmos.nmos = false;
  p.pmos.kp = 60e-6;
  p.pmos.lambda_coef = 0.08e-6;
  return p;
}

Pdk make_40nm() {
  Pdk p;
  p.name = "40nm";
  p.vdd = 1.1;
  p.lmin = 0.04e-6;
  p.lmax = 0.5e-6;

  p.nmos.nmos = true;
  p.nmos.vth0 = 0.35;
  p.nmos.kp = 380e-6;
  p.nmos.lambda_coef = 0.025e-6;  // short channel: worse lambda per length
  p.nmos.cox = 12e-3;
  p.nmos.cgdo = 0.25e-9;
  p.nmos.cj_w = 0.5e-9;
  p.nmos.subthreshold_n = 1.35;

  p.pmos = p.nmos;
  p.pmos.nmos = false;
  p.pmos.kp = 150e-6;
  p.pmos.lambda_coef = 0.035e-6;
  return p;
}

}  // namespace

const Pdk& pdk_180nm() {
  static const Pdk pdk = make_180nm();
  return pdk;
}

const Pdk& pdk_40nm() {
  static const Pdk pdk = make_40nm();
  return pdk;
}

const Pdk& pdk_by_name(const std::string& name) {
  if (name == "180nm") return pdk_180nm();
  if (name == "40nm") return pdk_40nm();
  throw std::invalid_argument("pdk_by_name: unknown PDK '" + name +
                              "'; registered nodes: 180nm, 40nm");
}

}  // namespace kato::ckt

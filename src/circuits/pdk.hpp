#pragma once
// Process design kits for the two technology nodes used in the paper's
// evaluation (180nm and 40nm).
//
// These are representative "level-1" device cards, not foundry data: supply,
// threshold, transconductance, channel-length modulation and capacitance
// values are set to textbook-typical numbers for each node so that the
// sizing trade-offs (gain vs. current, bandwidth vs. stability, node-to-node
// shifts in optimal sizing) have the right shape and direction.  See
// DESIGN.md ("Reproduction substitutions").

#include <string>

#include "sim/mosfet.hpp"

namespace kato::ckt {

struct Pdk {
  std::string name;
  double vdd;        ///< nominal supply [V]
  double lmin;       ///< minimum channel length [m]
  double lmax;       ///< maximum usable channel length [m]
  sim::MosModel nmos;
  sim::MosModel pmos;
};

/// 1.8 V, Vth ~0.5/-0.5, kp 170/60 uA/V^2.
const Pdk& pdk_180nm();
/// 1.1 V, Vth ~0.35/-0.35, kp 380/150 uA/V^2, much smaller parasitics.
const Pdk& pdk_40nm();

/// Lookup by name ("180nm" / "40nm").
const Pdk& pdk_by_name(const std::string& name);

}  // namespace kato::ckt

#include "circuits/opamp.hpp"

#include <algorithm>
#include <cmath>

#include "sim/ac.hpp"
#include "sim/dc.hpp"

namespace kato::ckt {

namespace {

/// Shared AC measurement: differential stimulus already wired into the
/// circuit; extracts [Itotal(uA), Gain(dB), PM(deg), GBW(MHz)].
std::optional<std::vector<double>> measure_opamp(const sim::Circuit& ckt,
                                                 int out_node,
                                                 int vdd_source_index) {
  const auto op = sim::solve_dc(ckt);
  if (!op.converged) return std::nullopt;
  // Branch current convention: positive flows p -> n through the source, so
  // a supply delivering current has a negative branch current.
  const double i_total = -op.vsource_current[static_cast<std::size_t>(vdd_source_index)];
  if (!(i_total > 0.0)) return std::nullopt;  // supply must deliver current

  const auto sweep = sim::solve_ac(ckt, op, sim::log_freq_grid(1.0, 20e9, 12));
  if (!sweep.ok) return std::nullopt;

  const double gain_db = sim::dc_gain_db(sweep, out_node);
  const double gbw = sim::unity_gain_freq(sweep, out_node);
  const double pm = sim::stable_phase_margin_deg(sweep, out_node);
  return std::vector<double>{i_total * 1e6, gain_db, pm, gbw / 1e6};
}

}  // namespace

// ---------------------------------------------------------------------------
// Two-stage OpAmp.

TwoStageOpAmp::TwoStageOpAmp(const Pdk& pdk) : pdk_(pdk) {
  space_.add("L1", pdk.lmin, pdk.lmax);
  space_.add("W1", 20.0 * pdk.lmin, 2000.0 * pdk.lmin);
  space_.add("L2", pdk.lmin, pdk.lmax);
  space_.add("W2", 20.0 * pdk.lmin, 2000.0 * pdk.lmin);
  const double cap_scale = pdk.vdd / 1.8;  // smaller nodes use smaller caps
  space_.add("Cc", 0.3e-12 * cap_scale, 10e-12 * cap_scale);
  space_.add("Rz", 100.0, 50e3);
  space_.add("I1", 2e-6, 300e-6);
  space_.add("I2", 2e-6, 500e-6);

  const bool node180 = pdk.name == "180nm";
  specs_ = {
      {"Gain", "dB", node180 ? 60.0 : 50.0, true},
      {"PM", "deg", 60.0, true},
      {"GBW", "MHz", 4.0, true},
  };
}

std::optional<std::vector<double>> TwoStageOpAmp::evaluate(
    const std::vector<double>& unit_x) const {
  const auto p = space_.to_physical(unit_x);
  const double l1 = p[0], w1 = p[1], l2 = p[2], w2 = p[3];
  const double cc = p[4], rz = p[5], i1 = p[6], i2 = p[7];

  sim::Circuit ckt;
  const int vdd = ckt.new_node("vdd");
  const int inp = ckt.new_node("inp");
  const int inn = ckt.new_node("inn");
  const int ns = ckt.new_node("ns");    // diff-pair common source
  const int n1 = ckt.new_node("n1");    // mirror diode
  const int n2 = ckt.new_node("n2");    // first-stage output
  const int bp = ckt.new_node("bp");    // second-stage PMOS bias
  const int nc = ckt.new_node("nc");    // compensation midpoint
  const int out = ckt.new_node("out");

  const int vdd_src = ckt.add_vsource(vdd, sim::Circuit::ground, pdk_.vdd);
  const double vcm = 0.35 * pdk_.vdd;  // PMOS-pair common mode
  ckt.add_vsource(inp, sim::Circuit::ground, vcm, +0.5);
  ckt.add_vsource(inn, sim::Circuit::ground, vcm, -0.5);

  // First stage: ideal tail from VDD, PMOS pair, NMOS mirror load.
  ckt.add_isource(vdd, ns, i1);
  ckt.add_mosfet(n1, inn, ns, w1, l1, pdk_.pmos);
  ckt.add_mosfet(n2, inp, ns, w1, l1, pdk_.pmos);
  ckt.add_mosfet(n1, n1, sim::Circuit::ground, w1, l1, pdk_.nmos);
  ckt.add_mosfet(n2, n1, sim::Circuit::ground, w1, l1, pdk_.nmos);

  // Second stage: NMOS common source with PMOS mirror load carrying I2.
  ckt.add_mosfet(out, n2, sim::Circuit::ground, w2, l2, pdk_.nmos);
  ckt.add_isource(bp, sim::Circuit::ground, i2);  // pulls I2 through the diode
  ckt.add_mosfet(bp, bp, vdd, 2.0 * w2, l2, pdk_.pmos);
  ckt.add_mosfet(out, bp, vdd, 2.0 * w2, l2, pdk_.pmos);

  // Miller compensation Rz + Cc, fixed load capacitance.
  ckt.add_resistor(n2, nc, rz);
  ckt.add_capacitor(nc, out, cc);
  ckt.add_capacitor(out, sim::Circuit::ground, pdk_.name == "180nm" ? 3e-12 : 1e-12);

  return measure_opamp(ckt, out, vdd_src);
}

std::vector<double> TwoStageOpAmp::expert_design() const {
  // Feasible but deliberately conservative sizings (comfortable margins on
  // every spec, generous currents) — the role the "Human Expert" rows play
  // in the paper's Tables 1-2.  Unit-box coordinates.
  if (pdk_.name == "180nm")
    return {0.4537, 0.0732, 0.1869, 0.7354, 0.3845, 0.3617, 0.2721, 0.7390};
  return {0.0491, 0.1074, 0.3264, 0.9743, 0.4486, 0.2455, 0.2624, 0.7001};
}

// ---------------------------------------------------------------------------
// Three-stage OpAmp.

ThreeStageOpAmp::ThreeStageOpAmp(const Pdk& pdk) : pdk_(pdk) {
  space_.add("L1", pdk.lmin, pdk.lmax);
  space_.add("W1", 20.0 * pdk.lmin, 2000.0 * pdk.lmin);
  space_.add("L2", pdk.lmin, pdk.lmax);
  space_.add("W2", 20.0 * pdk.lmin, 2000.0 * pdk.lmin);
  space_.add("L3", pdk.lmin, pdk.lmax);
  space_.add("W3", 20.0 * pdk.lmin, 2000.0 * pdk.lmin);
  const double cap_scale = pdk.vdd / 1.8;
  space_.add("C0", 0.3e-12 * cap_scale, 8e-12 * cap_scale);
  space_.add("C1", 0.1e-12 * cap_scale, 4e-12 * cap_scale);
  space_.add("I1", 1e-6, 150e-6);
  space_.add("I2", 1e-6, 200e-6);  // stage-2 bleed current

  const bool node180 = pdk.name == "180nm";
  specs_ = {
      {"Gain", "dB", node180 ? 80.0 : 70.0, true},
      {"PM", "deg", 60.0, true},
      {"GBW", "MHz", 2.0, true},
  };
}

std::optional<std::vector<double>> ThreeStageOpAmp::evaluate(
    const std::vector<double>& unit_x) const {
  const auto p = space_.to_physical(unit_x);
  const double l1 = p[0], w1 = p[1], l2 = p[2], w2 = p[3], l3 = p[4], w3 = p[5];
  const double c0 = p[6], c1 = p[7], i1 = p[8], i2 = p[9];

  // Two-pass biasing (see the class comment in the header): pass 1 solves a
  // replica with diode-connected stage loads to extract the load gate
  // voltages; pass 2 runs the real amplifier with those biases fixed, so the
  // high-impedance nodes sit mid-range instead of railing, exactly as a
  // mirror-distributed bias network would arrange in silicon.
  double vb2 = 0.0;  // stage-2 PMOS load gate
  double vb3 = 0.0;  // stage-3 PMOS load gate
  int vdd_src = -1;
  int out_node = -1;

  auto build = [&](bool bias_pass) {
    sim::Circuit ckt;
    const int vdd = ckt.new_node("vdd");
    const int inp = ckt.new_node("inp");
    const int inn = ckt.new_node("inn");
    const int ns = ckt.new_node("ns");
    const int m1 = ckt.new_node("m1");
    const int o1 = ckt.new_node("o1");
    const int x2 = ckt.new_node("x2");
    const int o2 = ckt.new_node("o2");
    const int out = ckt.new_node("out");
    out_node = out;

    vdd_src = ckt.add_vsource(vdd, sim::Circuit::ground, pdk_.vdd);
    const double vcm = 0.6 * pdk_.vdd;
    ckt.add_vsource(inp, sim::Circuit::ground, vcm, +0.5);
    ckt.add_vsource(inn, sim::Circuit::ground, vcm, -0.5);

    // Stage 1: NMOS pair, ideal tail, PMOS mirror load.
    ckt.add_isource(ns, sim::Circuit::ground, i1);
    ckt.add_mosfet(m1, inn, ns, w1, l1, pdk_.nmos);
    ckt.add_mosfet(o1, inp, ns, w1, l1, pdk_.nmos);
    ckt.add_mosfet(m1, m1, vdd, w1, l1, pdk_.pmos);
    ckt.add_mosfet(o1, m1, vdd, w1, l1, pdk_.pmos);

    // Stage 2 (non-inverting, required for negative feedback through the
    // outer nested-Miller cap): PMOS CS into an NMOS diode, mirrored to o2.
    ckt.add_mosfet(x2, o1, vdd, w2, l2, pdk_.pmos);
    ckt.add_isource(vdd, x2, i2);  // bleed raises the stage-2 bias current
    ckt.add_mosfet(x2, x2, sim::Circuit::ground, w2, l2, pdk_.nmos);
    ckt.add_mosfet(o2, x2, sim::Circuit::ground, w2, l2, pdk_.nmos);
    if (bias_pass) {
      ckt.add_mosfet(o2, o2, vdd, w2, l2, pdk_.pmos);  // diode-connected load
    } else {
      const int b2 = ckt.new_node("b2");
      ckt.add_vsource(b2, sim::Circuit::ground, vb2);
      ckt.add_mosfet(o2, b2, vdd, w2, l2, pdk_.pmos);
    }

    // Stage 3: PMOS common source (inverting, like an NMOS CS, so the nested
    // Miller polarities are unchanged).  Its gate sits one PMOS Vgs below
    // VDD (set by stage 2's load family), so its current scales with the
    // stage-2 current and the W3/L3 ratio instead of running away.
    ckt.add_mosfet(out, o2, vdd, w3, l3, pdk_.pmos);
    if (bias_pass) {
      ckt.add_mosfet(out, out, sim::Circuit::ground, w3, l3, pdk_.nmos);
    } else {
      const int b3 = ckt.new_node("b3");
      ckt.add_vsource(b3, sim::Circuit::ground, vb3);
      ckt.add_mosfet(out, b3, sim::Circuit::ground, w3, l3, pdk_.nmos);
    }

    // Nested Miller: C0 outer (out -> o1), C1 inner (out -> o2); fixed load.
    ckt.add_capacitor(out, o1, c0);
    ckt.add_capacitor(out, o2, c1);
    ckt.add_capacitor(out, sim::Circuit::ground,
                      pdk_.name == "180nm" ? 40e-12 : 15e-12);
    struct Nodes {
      sim::Circuit ckt;
      int o2;
      int out;
    };
    return Nodes{std::move(ckt), o2, out};
  };

  auto bias = build(true);
  const auto bias_op = sim::solve_dc(bias.ckt);
  if (!bias_op.converged) return std::nullopt;
  vb2 = bias_op.v(bias.o2);   // diode-connected: gate == drain
  vb3 = bias_op.v(bias.out);

  auto main = build(false);
  return measure_opamp(main.ckt, out_node, vdd_src);
}

std::vector<double> ThreeStageOpAmp::expert_design() const {
  // See TwoStageOpAmp::expert_design for the role these play.
  if (pdk_.name == "180nm")
    return {0.5182, 0.0623, 0.0123, 0.4530, 0.2462,
            0.6221, 0.5673, 0.4080, 0.5463, 0.8238};
  return {0.2807, 0.2408, 0.2033, 0.5307, 0.5620,
          0.7956, 0.7065, 0.5660, 0.7865, 0.7728};
}

// ---------------------------------------------------------------------------
// Second-stage amplifier (Fig. 1 kernel-assessment target).

SecondStageAmp::SecondStageAmp(const Pdk& pdk) : pdk_(pdk) {
  space_.add("L", pdk.lmin, pdk.lmax);
  space_.add("W", 20.0 * pdk.lmin, 2000.0 * pdk.lmin);
  space_.add("Ib", 2e-6, 300e-6);
  space_.add("Rl", 5e3, 500e3);
}

std::optional<std::vector<double>> SecondStageAmp::evaluate(
    const std::vector<double>& unit_x) const {
  const auto p = space_.to_physical(unit_x);
  const double l = p[0], w = p[1], ib = p[2], rl = p[3];

  sim::Circuit ckt;
  const int vdd = ckt.new_node("vdd");
  const int in = ckt.new_node("in");
  const int bp = ckt.new_node("bp");
  const int out = ckt.new_node("out");
  ckt.add_vsource(vdd, sim::Circuit::ground, pdk_.vdd);

  // Bias the gate through a diode-connected replica so the stage sits near
  // its operating point for any sizing (self-biased common-source stage).
  const int bg = ckt.new_node("bg");
  ckt.add_isource(vdd, bg, ib);
  ckt.add_mosfet(bg, bg, sim::Circuit::ground, w, l, pdk_.nmos);
  ckt.add_vsource(in, bg, 0.0, 1.0);  // AC stimulus rides on the bias

  ckt.add_mosfet(out, in, sim::Circuit::ground, w, l, pdk_.nmos);
  ckt.add_isource(bp, sim::Circuit::ground, ib);
  ckt.add_mosfet(bp, bp, vdd, 2.0 * w, l, pdk_.pmos);
  ckt.add_mosfet(out, bp, vdd, 2.0 * w, l, pdk_.pmos);
  ckt.add_resistor(out, sim::Circuit::ground, rl);
  ckt.add_capacitor(out, sim::Circuit::ground, 1e-12);

  const auto op = sim::solve_dc(ckt);
  if (!op.converged) return std::nullopt;
  const auto sweep = sim::solve_ac(ckt, op, sim::log_freq_grid(10.0, 1e3, 4));
  if (!sweep.ok) return std::nullopt;
  return std::vector<double>{sim::dc_gain_db(sweep, out)};
}

std::vector<double> SecondStageAmp::expert_design() const {
  return {0.6, 0.5, 0.5, 0.5};
}

}  // namespace kato::ckt

#pragma once
// Source locations and diagnostics for the netlist front-end.
//
// Every token, card and expression carries the file/line/column it came
// from; NetlistError renders "file:line:col: message" so a bad deck points
// straight at the offending card.

#include <stdexcept>
#include <string>

namespace kato::net {

struct SourceLoc {
  std::string file;
  int line = 0;  ///< 1-based; 0 = no location (file-level errors)
  int col = 0;   ///< 1-based

  std::string to_string() const {
    if (line == 0) return file;
    return file + ":" + std::to_string(line) + ":" + std::to_string(col);
  }
};

/// Parse/elaboration diagnostic carrying the source location.
class NetlistError : public std::runtime_error {
 public:
  NetlistError(SourceLoc loc, const std::string& message)
      : std::runtime_error(loc.to_string() + ": " + message), loc_(std::move(loc)) {}

  const SourceLoc& where() const { return loc_; }
  int line() const { return loc_.line; }
  int col() const { return loc_.col; }
  const std::string& file() const { return loc_.file; }

 private:
  SourceLoc loc_;
};

}  // namespace kato::net

#pragma once
// NetlistCircuit: a SizingCircuit backed by a parsed SPICE-subset deck.
//
// The deck's `.var` lines become the DesignSpace, `.spec` lines the
// objective and MetricSpec constraints.  Each evaluate() binds the unit-box
// point to the sizing variables, re-elaborates the deck into a fresh
// sim::Circuit, runs DC (then AC and/or TRAN when any measure needs them)
// and computes the metric vector from the measure expressions:
//
//   isupply(vname)   current delivered by voltage source vname (positive =
//                    sourcing); a non-positive value marks the design as a
//                    simulation failure (the supply must deliver current)
//   ivsrc(vname)     raw branch current (p -> n) of source vname
//   vdc(node)        DC node voltage [V]
//   gain_db(node)    |H| in dB at the lowest AC frequency
//   ugf(node)        unity-gain frequency [Hz] (0 when never crossing)
//   pm(node)         phase margin [deg] with the closed-loop stability
//                    screen (sim::stable_phase_margin_deg)
//   gain_db_at(node, f)  |H| in dB at the grid point nearest f
//
// Transient measures (require a `.tran` line; see sim/transient.hpp for the
// exact definitions):
//
//   slew_rate(node)            10%-90% slew of the initial->final swing [V/s]
//   settling_time(node, frac)  time to stay within frac * |swing| of the
//                              final value [s]
//   overshoot(node)            peak excursion past the final value / |swing|
//   prop_delay(in, out)        50%-crossing delay between two nodes [s]
//   avg_power(vname)           time-average power delivered by the source
//                              [W]; non-positive marks a simulation failure
//   value_at(node, t)          node voltage at time t [V] (linear interp)
//   vmax(node) / vmin(node)    extreme node voltage over the run [V]
//
// Construction validates the whole pipeline eagerly — a trial elaboration
// at the mid-box point plus a walk of every measure expression — so decks
// with undefined params, dangling nodes, cyclic subckts, unknown measure
// names, AC measures without an `.ac` line or transient measures without a
// `.tran` line fail at load time with file/line diagnostics, not
// mid-optimization.
//
// Robust evaluation (.corner / .mc): each candidate expands into
// n_corners() x n_mc_samples() independent simulations.  A `.corner` card
// re-derives the constant table (vdd scaled by vdd_scale, every .param
// re-evaluated against the overridden builtins, explicit overrides taking
// precedence) and may override the temperature; `.mc K` perturbs every
// MOSFET's vth0/kp with per-sample deterministic draws (see
// apply_mos_mismatch).  Metrics aggregate per measure: first the adverse
// order-statistic quantile over the K mismatch samples within each corner
// (quantile=1 -> worst sample), then the worst over corners — "worst" is
// max for the objective and <=-bound constraints, min for >=-bound
// constraints.  Any failing condition fails the candidate, and
// evaluate_detailed() names the corner/sample that failed.

#include <map>
#include <memory>

#include "circuits/pdk.hpp"
#include "circuits/sizing_problem.hpp"
#include "netlist/elaborate.hpp"
#include "obs/obs.hpp"
#include "sim/device_table.hpp"

namespace kato::ckt {

class NetlistCircuit final : public SizingCircuit {
 public:
  NetlistCircuit(net::Deck deck, const Pdk& pdk);

  /// Parse `path` and bind it to `pdk`.  Throws std::invalid_argument when
  /// the file is unreadable, NetlistError on deck problems.
  static std::unique_ptr<NetlistCircuit> from_file(const std::string& path,
                                                   const Pdk& pdk);

  std::string name() const override {
    return "netlist-" + deck_.title + "-" + pdk_.name;
  }
  const DesignSpace& space() const override { return space_; }
  std::string objective_name() const override {
    return objective_.unit.empty() ? objective_.name
                                   : objective_.name + "(" + objective_.unit + ")";
  }
  const std::vector<MetricSpec>& constraints() const override { return specs_; }
  std::optional<std::vector<double>> evaluate(
      const std::vector<double>& unit_x) const override;
  /// Thread-parallel batch evaluation on the util/parallel pool: each
  /// candidate slot elaborates and simulates independently (the deck, PDK
  /// and parameter tables are read-only), so results are bit-identical to
  /// the serial loop at any KATO_THREADS.
  std::vector<std::optional<std::vector<double>>> evaluate_batch(
      const std::vector<std::vector<double>>& xs) const override;
  std::vector<double> expert_design() const override { return expert_; }

  /// evaluate() plus a human-readable failure reason: when `metrics` is
  /// empty, `failure` says which stage rejected the candidate (DC
  /// non-convergence carries the sim::DcResult reason, transient failures
  /// the sim::TranResult reason, measure guards the offending measure).
  struct EvalOutcome {
    std::optional<std::vector<double>> metrics;
    std::string failure;
    /// Solver-work counters summed over every analysis this evaluation ran
    /// (DC + AC + TRAN, and across every corner/MC condition when the deck
    /// fans out).  Also folded into the process-wide obs registry — one
    /// record per simulated condition — for the KATO_STATS exit dump.
    obs::SimStats stats;
  };
  EvalOutcome evaluate_detailed(const std::vector<double>& unit_x) const;

  /// Robust-evaluation fan-out shape.  Decks without .corner/.mc report a
  /// single nominal corner and one sample.
  std::size_t n_corners() const { return corners_.size(); }
  std::size_t n_mc_samples() const { return mc_samples_; }
  /// Corner display name (original spelling; "nominal" when the deck has
  /// no .corner cards).
  const std::string& corner_name(std::size_t corner) const {
    return corners_[corner].raw;
  }
  double mc_quantile() const { return mc_quantile_; }

  /// One (corner, mismatch sample) condition of the fan-out, un-aggregated
  /// — the building block golden tests hand-aggregate from.  `corner` <
  /// n_corners(), `sample` < n_mc_samples().
  EvalOutcome evaluate_single(const std::vector<double>& unit_x,
                              std::size_t corner, std::size_t sample) const;

  const net::Deck& deck() const { return deck_; }

  /// Device-model path for every DC/transient solve this circuit issues
  /// (table vs analytic MOSFET evaluation; sim::DeviceEval::automatic
  /// resolves to the table path, KATO_DEVICE_TABLE overrides).  Lets tests
  /// and benches A/B the two paths without touching the environment.
  void set_device_eval(sim::DeviceEval eval) { device_eval_ = eval; }
  sim::DeviceEval device_eval() const { return device_eval_; }

  /// Elaborate at a unit-box point without simulating (benchmarks, tests).
  net::Elaboration elaborate(const std::vector<double>& unit_x) const;

 private:
  /// Resolved .corner card: the re-derived constant table plus the optional
  /// temperature override.
  struct CornerSetup {
    std::string name;  ///< lowercased
    std::string raw;   ///< display name (failure reports)
    std::optional<double> temp;
    std::map<std::string, double> consts;  ///< corner .param values + builtins
  };

  std::map<std::string, double> bind_vars(const std::vector<double>& unit_x) const;
  /// True when metric index m (0 = objective) is better when smaller, i.e.
  /// its worst case over conditions is the maximum.
  bool smaller_better(std::size_t m) const {
    return m == 0 || !specs_[m - 1].is_lower_bound;
  }
  /// Worst-over-corners of the per-corner adverse MC quantile.  `conds` is
  /// the row-major [corner][sample] metric matrix; any missing entry
  /// (failed condition) yields nullopt.
  std::optional<std::vector<double>> aggregate(
      const std::vector<std::optional<std::vector<double>>>& conds) const;

  net::Deck deck_;
  Pdk pdk_;
  std::map<std::string, double> consts_;  ///< .param values + PDK builtins
  DesignSpace space_;
  net::SpecDef objective_;
  std::vector<MetricSpec> specs_;            ///< metrics[1..]
  std::vector<net::ExprPtr> spec_measures_;  ///< parallel to specs_
  std::vector<double> expert_;
  bool needs_ac_ = false;
  bool needs_tran_ = false;

  sim::DeviceEval device_eval_ = sim::DeviceEval::automatic;
  std::vector<CornerSetup> corners_;  ///< always >= 1 (nominal fallback)
  bool has_corner_cards_ = false;
  std::size_t mc_samples_ = 1;
  double vth_sigma_ = 0.0;
  double beta_sigma_ = 0.0;
  double mc_quantile_ = 1.0;  ///< adverse order-statistic rank fraction
};

}  // namespace kato::ckt

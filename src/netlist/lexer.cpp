#include "netlist/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace kato::net {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }

/// SPICE magnitude suffixes as powers of ten.  Longest match first ("meg"
/// before "m").  All are powers of ten, so the value can be formed by
/// appending the exponent to the digit string (exactness — see header).
const char* suffix_exponent(const std::string& letters, std::size_t& len) {
  if (letters.rfind("meg", 0) == 0) { len = 3; return "e6"; }
  switch (letters.empty() ? '\0' : letters[0]) {
    case 't': len = 1; return "e12";
    case 'g': len = 1; return "e9";
    case 'k': len = 1; return "e3";
    case 'm': len = 1; return "e-3";
    case 'u': len = 1; return "e-6";
    case 'n': len = 1; return "e-9";
    case 'p': len = 1; return "e-12";
    case 'f': len = 1; return "e-15";
    default: len = 0; return nullptr;
  }
}

struct Cursor {
  const std::string& src;
  const std::string& file;
  std::size_t pos = 0;
  int line = 1;
  int col = 1;

  bool done() const { return pos >= src.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos + ahead < src.size() ? src[pos + ahead] : '\0';
  }
  char advance() {
    const char c = src[pos++];
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    return c;
  }
  SourceLoc loc() const { return {file, line, col}; }
};

}  // namespace

std::vector<Token> tokenize(const std::string& text, const std::string& filename) {
  std::vector<Token> out;
  Cursor cur{text, filename};
  bool line_has_tokens = false;

  auto emit_eol = [&](const SourceLoc& loc) {
    if (line_has_tokens) out.push_back({TokKind::eol, "", "", 0.0, loc});
    line_has_tokens = false;
  };

  while (!cur.done()) {
    const char c = cur.peek();
    const SourceLoc loc = cur.loc();

    if (c == '\n') {
      cur.advance();
      // Peek ahead past blank and comment lines: a '+' opening the next
      // non-comment line is a continuation — suppress the eol so the
      // logical line keeps going.
      std::size_t look = cur.pos;
      for (;;) {
        while (look < text.size() &&
               (text[look] == ' ' || text[look] == '\t' || text[look] == '\r'))
          ++look;
        if (look < text.size() && text[look] == '*') {
          while (look < text.size() && text[look] != '\n') ++look;
          if (look < text.size()) ++look;  // past the comment's newline
          continue;
        }
        break;
      }
      if (look < text.size() && text[look] == '+' && line_has_tokens) {
        // Consume up to and including the '+'.
        while (cur.pos <= look) cur.advance();
        continue;
      }
      emit_eol(loc);
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      cur.advance();
      continue;
    }
    if (c == ';') {  // inline comment
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '*' && !line_has_tokens) {  // full-line comment
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }

    // Number: digit, or '.' followed by a digit.
    if (digit(c) || (c == '.' && digit(cur.peek(1)))) {
      std::string core;
      std::string raw;
      auto take = [&] {
        raw.push_back(cur.peek());
        core.push_back(lower(cur.peek()));
        cur.advance();
      };
      while (digit(cur.peek()) || cur.peek() == '.') take();
      if (lower(cur.peek()) == 'e' &&
          (digit(cur.peek(1)) ||
           ((cur.peek(1) == '+' || cur.peek(1) == '-') && digit(cur.peek(2))))) {
        take();  // e
        if (cur.peek() == '+' || cur.peek() == '-') take();
        while (digit(cur.peek())) take();
      } else if (ident_start(cur.peek())) {
        // Magnitude suffix and/or trailing unit letters (10k, 0.3p, 10pF).
        std::string letters;
        std::string letters_raw;
        while (ident_char(cur.peek())) {
          letters_raw.push_back(cur.peek());
          letters.push_back(lower(cur.peek()));
          cur.advance();
        }
        std::size_t len = 0;
        if (const char* exp = suffix_exponent(letters, len)) core += exp;
        // Anything after the suffix is a unit annotation; ignored.
        raw += letters_raw;
      }
      char* end = nullptr;
      const double value = std::strtod(core.c_str(), &end);
      if (end == nullptr || *end != '\0')
        throw NetlistError(loc, "malformed number '" + raw + "'");
      out.push_back({TokKind::number, core, raw, value, loc});
      line_has_tokens = true;
      continue;
    }

    // Identifier or directive (".param").
    if (ident_start(c) || (c == '.' && ident_start(cur.peek(1)))) {
      std::string low;
      std::string raw;
      if (c == '.') {
        raw.push_back('.');
        low.push_back('.');
        cur.advance();
      }
      while (ident_char(cur.peek())) {
        raw.push_back(cur.peek());
        low.push_back(lower(cur.peek()));
        cur.advance();
      }
      out.push_back({TokKind::ident, low, raw, 0.0, loc});
      line_has_tokens = true;
      continue;
    }

    // Punctuation.
    switch (c) {
      case '(': case ')': case '{': case '}': case '\'':
      case '=': case ',': case '+': case '-': case '*': case '/':
      case '%': {
        cur.advance();
        out.push_back({TokKind::punct, std::string(1, c), std::string(1, c), 0.0, loc});
        line_has_tokens = true;
        continue;
      }
      case '<': case '>': {
        cur.advance();
        std::string p(1, c);
        if (cur.peek() == '=') {
          cur.advance();
          p.push_back('=');
        }
        out.push_back({TokKind::punct, p, p, 0.0, loc});
        line_has_tokens = true;
        continue;
      }
      default:
        throw NetlistError(loc, std::string("unexpected character '") + c + "'");
    }
  }
  emit_eol(cur.loc());
  out.push_back({TokKind::eof, "", "", 0.0, cur.loc()});
  return out;
}

}  // namespace kato::net

#include "netlist/elaborate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.hpp"
#include "sim/ac.hpp"
#include "util/rng.hpp"

namespace kato::net {

std::map<std::string, double> pdk_builtins(const ckt::Pdk& pdk) {
  return {
      {"vdd", pdk.vdd},
      {"lmin", pdk.lmin},
      {"lmax", pdk.lmax},
      {"is180", pdk.name == "180nm" ? 1.0 : 0.0},
  };
}

namespace {

sim::MosModel apply_model_overrides(sim::MosModel base, const ModelDef& def,
                                    const Scope& scope) {
  for (const auto& [key, expr] : def.overrides) {
    const double v = eval_expr(*expr, scope);
    if (key == "vth0")
      base.vth0 = v;
    else if (key == "kp")
      base.kp = v;
    else if (key == "lambda")
      base.lambda_coef = v;
    else if (key == "cox")
      base.cox = v;
    else if (key == "cgdo")
      base.cgdo = v;
    else if (key == "cj")
      base.cj_w = v;
    else if (key == "n")
      base.subthreshold_n = v;
    else
      throw NetlistError(expr->loc, "unknown .model parameter '" + key +
                                        "' (vth0 kp lambda cox cgdo cj n)");
  }
  return base;
}

sim::Diode apply_diode_overrides(sim::Diode base, const ModelDef& def,
                                 const Scope& scope) {
  for (const auto& [key, expr] : def.overrides) {
    const double v = eval_expr(*expr, scope);
    if (key == "is")
      base.is_sat = v;
    else if (key == "n")
      base.ideality = v;
    else if (key == "area")
      base.area = v;
    else if (key == "xti")
      base.xti = v;
    else if (key == "eg")
      base.eg = v;
    else
      throw NetlistError(expr->loc, "unknown diode .model parameter '" + key +
                                        "' (is n area xti eg)");
  }
  return base;
}

class Elaborator {
 public:
  Elaborator(const Deck& deck, const ckt::Pdk& pdk, const Scope& bindings)
      : deck_(deck), bindings_(bindings) {
    models_.emplace("nmos", pdk.nmos);
    models_.emplace("pmos", pdk.pmos);
    for (const auto& def : deck.models) {
      if (def.name == "nmos" || def.name == "pmos")
        throw NetlistError(def.loc, "model name '" + def.name +
                                        "' shadows the builtin PDK model");
      if (def.diode)
        diode_models_.emplace(def.name,
                              apply_diode_overrides(sim::Diode{}, def, bindings));
      else
        models_.emplace(def.name,
                        apply_model_overrides(def.nmos ? pdk.nmos : pdk.pmos,
                                              def, bindings));
    }
  }

  Elaboration run() {
    flatten(deck_.cards, /*prefix=*/"",
            /*ports=*/{}, /*locals=*/nullptr, /*stack=*/{});
    structural_lint();

    if (deck_.ac.present) {
      const double per_decade = eval_expr(*deck_.ac.per_decade, bindings_);
      const double f_lo = eval_expr(*deck_.ac.f_lo, bindings_);
      const double f_hi = eval_expr(*deck_.ac.f_hi, bindings_);
      if (!(per_decade >= 1.0) || !(f_lo > 0.0) || !(f_hi > f_lo))
        throw NetlistError(deck_.ac.loc,
                           ".ac needs pts/decade >= 1 and 0 < f_lo < f_hi");
      out_.freqs =
          sim::log_freq_grid(f_lo, f_hi, static_cast<int>(per_decade));
    }
    if (deck_.tran.present) {
      out_.tran.present = true;
      out_.tran.tstep = eval_expr(*deck_.tran.tstep, bindings_);
      out_.tran.tstop = eval_expr(*deck_.tran.tstop, bindings_);
      if (!(out_.tran.tstep > 0.0) || !(out_.tran.tstop >= out_.tran.tstep))
        throw NetlistError(deck_.tran.loc,
                           ".tran needs 0 < tstep <= tstop");
      out_.tran.fixed_step = deck_.tran.fixed_step;
      out_.tran.backward_euler = deck_.tran.backward_euler;
    }
    for (const auto& ic : deck_.ics) {
      if (!deck_.tran.present)
        throw NetlistError(ic.loc, ".ic without a .tran line");
      if (ic.node == "0" || ic.node == "gnd")
        throw NetlistError(ic.loc, "cannot set an initial condition on ground");
      const auto it = out_.nodes.find(ic.node);
      if (it == out_.nodes.end())
        throw NetlistError(ic.loc, "unknown node '" + ic.node + "' in .ic");
      out_.tran.ics.emplace_back(it->second, eval_expr(*ic.value, bindings_));
    }
    if (deck_.temperature != nullptr) {
      out_.temperature = eval_expr(*deck_.temperature, bindings_);
      if (!(out_.temperature > 0.0))
        throw NetlistError(deck_.temperature->loc,
                           ".temp must be a positive Kelvin temperature");
    }
    return std::move(out_);
  }

 private:
  /// Build the sim::Waveform for a V card (Kind::none when quiet).
  sim::Waveform build_waveform(const DeviceCard& card, const Scope& env) {
    sim::Waveform w;
    if (card.wave.empty()) return w;
    auto arg = [&](std::size_t i) { return eval_expr(*card.wave_args[i], env); };
    const std::size_t n_args = card.wave_args.size();
    if (card.wave == "pulse") {
      if (n_args != 7)
        throw NetlistError(card.wave_loc,
                           "pulse needs 7 arguments (v1 v2 td tr tf pw per), got " +
                               std::to_string(n_args));
      w.kind = sim::Waveform::Kind::pulse;
      w.v1 = arg(0);
      w.v2 = arg(1);
      w.td = arg(2);
      w.tr = arg(3);
      w.tf = arg(4);
      w.pw = arg(5);
      w.period = arg(6);
    } else if (card.wave == "sin") {
      if (n_args < 3 || n_args > 5)
        throw NetlistError(card.wave_loc,
                           "sin needs 3 to 5 arguments (vo va freq [td theta]), got " +
                               std::to_string(n_args));
      w.kind = sim::Waveform::Kind::sine;
      w.vo = arg(0);
      w.va = arg(1);
      w.freq = arg(2);
      w.td = n_args > 3 ? arg(3) : 0.0;
      w.theta = n_args > 4 ? arg(4) : 0.0;
    } else {  // pwl — the parser only admits pulse/pwl/sin
      if (n_args < 4 || n_args % 2 != 0)
        throw NetlistError(card.wave_loc,
                           "pwl needs an even number (>= 4) of arguments "
                           "(t1 v1 t2 v2 ...), got " +
                               std::to_string(n_args));
      w.kind = sim::Waveform::Kind::pwl;
      for (std::size_t i = 0; i < n_args; i += 2) {
        w.t.push_back(arg(i));
        w.v.push_back(arg(i + 1));
      }
    }
    return w;
  }

  /// Resolve a node name within one instantiation scope.  Ports map to
  /// parent nodes; "0"/"gnd" are global ground; anything else is a local
  /// node, flat-named with the instance prefix.
  int resolve_node(const std::string& name, const std::string& prefix,
                   const std::map<std::string, int>& ports,
                   const SourceLoc& loc) {
    if (name == "0" || name == "gnd") {
      grounded_ = true;
      return sim::Circuit::ground;
    }
    if (auto it = ports.find(name); it != ports.end()) return it->second;
    const std::string flat = prefix + name;
    if (auto it = out_.nodes.find(flat); it != out_.nodes.end())
      return it->second;
    const int node = out_.circuit.new_node(flat);
    out_.nodes.emplace(flat, node);
    touches_.resize(static_cast<std::size_t>(node) + 1, 0);
    node_loc_.resize(static_cast<std::size_t>(node) + 1);
    node_loc_[static_cast<std::size_t>(node)] = loc;
    return node;
  }

  void touch(int node) {
    if (node != sim::Circuit::ground)
      ++touches_[static_cast<std::size_t>(node)];
  }

  void flatten(const std::vector<DeviceCard>& cards, const std::string& prefix,
               const std::map<std::string, int>& ports, const Scope* locals,
               std::vector<std::string> stack) {
    const Scope& env = locals != nullptr ? *locals : bindings_;
    for (const auto& card : cards) {
      std::vector<int> n;
      n.reserve(card.nodes.size());
      for (const auto& name : card.nodes)
        n.push_back(resolve_node(name, prefix, ports, card.loc));
      // X-card port connections are wiring, not device terminals: the
      // recursion below counts the real terminals behind each port, so a
      // node wired only into a subckt that barely uses it still lints.
      if (card.kind != DeviceCard::Kind::subckt)
        for (int node : n) touch(node);

      switch (card.kind) {
        case DeviceCard::Kind::resistor:
          out_.circuit.add_resistor(n[0], n[1], eval_expr(*card.value, env));
          break;
        case DeviceCard::Kind::capacitor:
          out_.circuit.add_capacitor(n[0], n[1], eval_expr(*card.value, env));
          break;
        case DeviceCard::Kind::vsource: {
          const sim::Waveform wave = build_waveform(card, env);
          // Omitted DC value with a waveform: the operating point sits at
          // the waveform's t = 0 value (classic SPICE behavior).
          const double dc = card.value != nullptr
                                ? eval_expr(*card.value, env)
                                : sim::waveform_value(wave, 0.0, 0.0);
          const double ac = card.ac != nullptr ? eval_expr(*card.ac, env) : 0.0;
          int index = 0;
          try {
            index = out_.circuit.add_vsource(n[0], n[1], dc, ac, wave);
          } catch (const std::invalid_argument& err) {
            throw NetlistError(card.wave_loc, err.what());
          }
          out_.vsources.emplace(prefix + card.name,
                                static_cast<std::size_t>(index));
          break;
        }
        case DeviceCard::Kind::isource:
          out_.circuit.add_isource(n[0], n[1], eval_expr(*card.value, env));
          break;
        case DeviceCard::Kind::mosfet: {
          const auto model = models_.find(card.model);
          if (model == models_.end())
            throw NetlistError(card.loc, "unknown MOSFET model '" + card.model +
                                             "' (declare it with .model)");
          const double w = eval_expr(*card.param("w"), env);
          const double l = eval_expr(*card.param("l"), env);
          if (!(w > 0.0) || !(l > 0.0))
            throw NetlistError(card.loc, "MOSFET w/l must be positive");
          out_.circuit.add_mosfet(n[0], n[1], n[2], w, l, model->second);
          break;
        }
        case DeviceCard::Kind::diode: {
          sim::Diode d;
          if (!card.model.empty()) {
            const auto it = diode_models_.find(card.model);
            if (it == diode_models_.end())
              throw NetlistError(card.loc, "unknown diode model '" +
                                               card.model +
                                               "' (declare it with '.model " +
                                               card.model + " d ...')");
            d = it->second;
          }
          d.a = n[0];
          d.c = n[1];
          if (const auto area = card.param("area"))
            d.area = eval_expr(*area, env);
          out_.circuit.add_diode(d);
          break;
        }
        case DeviceCard::Kind::vccs:
          out_.circuit.add_vccs(n[0], n[1], n[2], n[3],
                                eval_expr(*card.value, env));
          break;
        case DeviceCard::Kind::subckt: {
          const auto sub = deck_.subckts.find(card.model);
          if (sub == deck_.subckts.end())
            throw NetlistError(card.loc, "unknown subckt '" + card.model + "'");
          const Subckt& def = sub->second;
          for (const auto& seen : stack)
            if (seen == def.name)
              throw NetlistError(card.loc, "cyclic subckt instantiation: '" +
                                               def.name + "' instantiates itself");
          if (card.nodes.size() != def.ports.size())
            throw NetlistError(card.loc,
                               "subckt '" + def.name + "' has " +
                                   std::to_string(def.ports.size()) +
                                   " port(s), instance connects " +
                                   std::to_string(card.nodes.size()));
          std::map<std::string, int> sub_ports;
          for (std::size_t i = 0; i < def.ports.size(); ++i)
            sub_ports.emplace(def.ports[i], n[i]);
          // Instance parameters: defaults overridden by the X card, both
          // evaluated in the PARENT scope.
          std::map<std::string, double> sub_params;
          for (const auto& [key, expr] : def.defaults)
            sub_params[key] = eval_expr(*expr, env);
          for (const auto& [key, expr] : card.params) {
            if (sub_params.count(key) == 0)
              throw NetlistError(expr->loc,
                                 "subckt '" + def.name +
                                     "' has no parameter '" + key + "'");
            sub_params[key] = eval_expr(*expr, env);
          }
          Scope sub_scope{&sub_params, &bindings_};
          stack.push_back(def.name);
          flatten(def.cards, prefix + card.name + ".", sub_ports, &sub_scope,
                  stack);
          stack.pop_back();
          break;
        }
      }
    }
  }

  void structural_lint() const {
    if (!grounded_)
      throw NetlistError({deck_.file, 0, 0},
                         "netlist has no ground connection (node '0' or 'gnd')");
    for (std::size_t node = 1; node < touches_.size(); ++node) {
      if (touches_[node] < 2)
        throw NetlistError(node_loc_[node],
                           "dangling node '" + out_.circuit.node_name(
                                                   static_cast<int>(node)) +
                               "' (connected to only one device terminal)");
    }
  }

  const Deck& deck_;
  const Scope& bindings_;
  Elaboration out_;
  std::unordered_map<std::string, sim::MosModel> models_;
  std::unordered_map<std::string, sim::Diode> diode_models_;
  std::vector<int> touches_;        ///< per-node terminal count
  std::vector<SourceLoc> node_loc_; ///< per-node first-use location
  bool grounded_ = false;
};

}  // namespace

Elaboration elaborate(const Deck& deck, const ckt::Pdk& pdk, const Scope& bindings) {
  KATO_OBS_SPAN("elaborate");
  return Elaborator(deck, pdk, bindings).run();
}

void apply_mos_mismatch(sim::Circuit& ckt, std::size_t sample,
                        double vth_sigma, double beta_sigma) {
  // One stream per sample, salted so sample 0 does not collide with other
  // seed-0 consumers.  Both normals are always consumed so that setting one
  // sigma to zero leaves the other sigma's draws unchanged.
  util::Rng rng(0x6d634d49534dULL + static_cast<std::uint64_t>(sample));
  for (sim::MosInstance& m : ckt.mosfets()) {
    const double zv = rng.normal();
    const double zb = rng.normal();
    m.model.vth0 += vth_sigma * zv;
    m.model.kp *= std::max(0.05, 1.0 + beta_sigma * zb);
  }
}

}  // namespace kato::net

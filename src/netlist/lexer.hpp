#pragma once
// Tokenizer for the SPICE-subset netlist grammar.
//
// Input conventions (classic SPICE):
//   * a line whose first non-blank character is '*' is a comment;
//   * ';' starts an inline comment running to end of line;
//   * a line starting with '+' continues the previous logical line;
//   * everything is case-insensitive — `text` is lowercased, `raw` keeps the
//     original spelling for display (titles, metric names, units).
//
// Numbers accept SPICE magnitude suffixes (t g meg k m u n p f).  The suffix
// is applied by appending the equivalent power-of-ten exponent to the digit
// string before strtod, so `0.3p` parses to exactly the same double as
// `0.3e-12` — this keeps netlist-elaborated circuits bit-identical to
// hand-written C++ that uses e-notation literals.  Trailing unit letters
// after the suffix (`10pF`) are ignored, as in SPICE.

#include <string>
#include <vector>

#include "netlist/diag.hpp"

namespace kato::net {

enum class TokKind {
  ident,   ///< names, directives (".param"), device/node names
  number,  ///< numeric literal (value holds the parsed double)
  punct,   ///< ( ) { } ' = , + - * / % < > >= <=
  eol,     ///< end of a logical line
  eof,
};

struct Token {
  TokKind kind = TokKind::eof;
  std::string text;   ///< lowercased
  std::string raw;    ///< original spelling
  double value = 0.0;  ///< numbers only
  SourceLoc loc;

  bool is(TokKind k) const { return kind == k; }
  bool is_punct(const char* p) const {
    return kind == TokKind::punct && text == p;
  }
};

/// Tokenize a whole deck.  Comment lines vanish; continuation lines are
/// folded into their logical line (no eol emitted between them).  The stream
/// always ends with one eof token.  Throws NetlistError on bad characters or
/// malformed numbers.
std::vector<Token> tokenize(const std::string& text, const std::string& filename);

}  // namespace kato::net

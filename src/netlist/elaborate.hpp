#pragma once
// Elaboration: flatten a parsed Deck into a sim::Circuit.
//
// Hierarchy is expanded depth-first: `X` instances map their connection
// nodes onto the subckt ports and prefix internal nodes with the instance
// path ("x1.mid"), so flat node names stay unique and diagnosable.  Node
// indices are assigned in order of first appearance, which makes the MNA
// system — and therefore the simulated metrics — a deterministic function
// of card order alone.
//
// Elaboration is cheap by design (expression walks plus vector pushes, no
// allocation-heavy passes) because the sizing loop re-elaborates the deck
// once per candidate; `bench/micro_perf` tracks the latency (abl_netlist).
//
// Structural lint performed here, each reported with the card's file/line:
//   - unknown model / subckt names, wrong port counts;
//   - cyclic .subckt instantiation;
//   - dangling nodes (touched by fewer than two device terminals);
//   - no ground connection anywhere in the flattened circuit.

#include <map>
#include <string>
#include <vector>

#include "circuits/pdk.hpp"
#include "netlist/parser.hpp"
#include "sim/circuit.hpp"

namespace kato::net {

/// Transient run parameters resolved from `.tran` / `.ic` cards.
struct TranSetup {
  bool present = false;
  double tstep = 0.0;
  double tstop = 0.0;
  bool fixed_step = false;
  bool backward_euler = false;
  std::vector<std::pair<int, double>> ics;  ///< node index -> initial volts
};

struct Elaboration {
  sim::Circuit circuit;
  std::map<std::string, int> nodes;             ///< flat node name -> index
  std::map<std::string, std::size_t> vsources;  ///< flat card name -> index
  std::vector<double> freqs;  ///< AC grid from .ac; empty when absent
  TranSetup tran;             ///< transient setup; present iff the deck has .tran
  double temperature = 300.0;
};

/// PDK-derived builtin parameters available to every deck expression:
/// vdd, lmin, lmax, is180 (1 when pdk.name == "180nm", else 0).
std::map<std::string, double> pdk_builtins(const ckt::Pdk& pdk);

/// Apply the `.mc` mismatch draws for sample index `sample` to every MOSFET
/// of an elaborated circuit: vth0 += vth_sigma * z1 and kp *= 1 + beta_sigma
/// * z2 (floored at 5% of nominal), with z1/z2 standard-normal draws from a
/// stream seeded by the sample index alone.  Devices are perturbed in
/// elaboration (deck) order and both draws are consumed even when a sigma is
/// zero, so sample k's perturbation is a deterministic function of (k,
/// device order) — independent of the candidate point, the corner, the
/// thread count and any other sample.
void apply_mos_mismatch(sim::Circuit& ckt, std::size_t sample,
                        double vth_sigma, double beta_sigma);

/// Flatten `deck` against `pdk`.  `bindings` resolves identifiers in device
/// expressions: .param constants, sizing-variable values and builtins
/// (chain further frames via Scope::parent).  Throws NetlistError on any
/// structural or expression error.
Elaboration elaborate(const Deck& deck, const ckt::Pdk& pdk, const Scope& bindings);

}  // namespace kato::net

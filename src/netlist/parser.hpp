#pragma once
// Parser for the SPICE-subset netlist grammar, producing an AST (`Deck`)
// that the elaborator re-walks once per sizing candidate.
//
// Supported cards (names are case-insensitive; see README "Netlist
// front-end" for the full grammar):
//
//   R<name> a b <value>                       resistor [ohm]
//   C<name> a b <value>                       capacitor [F]
//   V<name> p n [dc] <value> [ac <value>] [<waveform>]  voltage source
//   I<name> p n <value>                       current source (p -> n)
//   M<name> d g s [b] <model> w=<v> l=<v>     MOSFET (bulk accepted, ignored)
//   D<name> a c [<model>] [area=<v>]          junction diode
//   G<name> p n cp cn <value>                 VCCS: i = gm (v_cp - v_cn)
//   X<name> n1 .. nk <subckt> [p=<v> ...]     subcircuit instance
//
// Directives:
//   .title <word>
//   .param <name> = <expr>                    constant (params/builtins only)
//   .var <name> <lo> <hi> [log|lin]           sizing variable -> DesignSpace
//   .model <name> nmos|pmos [key=<v> ...]     MOSFET model (base = PDK card)
//   .model <name> d [is|n|area|xti|eg=<v>]    junction-diode model
//   .subckt <name> <ports...> [p=<default> ...]  ...  .ends
//   .ac dec <pts/decade> <f_lo> <f_hi>
//   .tran <tstep> <tstop> [fixed] [be]
//   .ic v(<node>)=<value> ...
//   .temp <kelvin>
//   .spec objective <Name> <Unit> = <measure expr>
//   .spec <Name> <Unit> >=|<= <bound> = <measure expr>
//   .corner <name> [temp=<v>] [vdd_scale=<v>] [<param>=<v> ...]
//   .mc <K> [vth_sigma=<v>] [beta_sigma=<v>] [quantile=<v>]
//   .expert <pdk-name|*> <u1> ... <uD>        unit-box reference sizing
//   .end                                      (optional)
//
// <value> is a bare (optionally signed) number, a parameter name, or an
// arithmetic expression in braces/quotes: {2*w1} or '2*w1'.  Expressions
// support + - * / ( ), SI-suffixed numbers, identifiers (.param constants,
// .var sizing variables, subckt parameters, PDK builtins vdd/lmin/lmax/
// is180) and the functions sqrt, abs, exp, log, pow, min, max,
// cond(c,a,b).  Measure expressions (right of '=' in .spec) additionally
// call isupply/ivsrc/vdc/gain_db/ugf/pm/gain_db_at and the transient
// measures slew_rate/settling_time/overshoot/prop_delay/avg_power/vmax/vmin
// — see netlist_circuit.hpp.
//
// <waveform> on a V card is `pulse(v1 v2 td tr tf pw per)`,
// `pwl(t1 v1 t2 v2 ...)` or `sin(vo va freq [td theta])`; arguments are
// values separated by spaces or commas.  When the DC value is omitted the
// source's operating-point value is the waveform at t = 0.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "netlist/diag.hpp"

namespace kato::net {

// --- Expressions -----------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind { number, ident, call, binary, negate };
  Kind kind = Kind::number;
  double number = 0.0;
  std::string name;  ///< ident/call: lowercased name; binary: "+-*/"
  std::string raw;   ///< ident: original spelling (display)
  std::vector<ExprPtr> args;  ///< call args, binary [lhs, rhs], negate [x]
  SourceLoc loc;
};

/// Identifier-resolution environment: a chain of name->value frames.
struct Scope {
  const std::map<std::string, double>* values = nullptr;
  const Scope* parent = nullptr;

  std::optional<double> lookup(const std::string& name) const {
    for (const Scope* s = this; s != nullptr; s = s->parent)
      if (s->values != nullptr)
        if (auto it = s->values->find(name); it != s->values->end())
          return it->second;
    return std::nullopt;
  }
};

/// Evaluate an expression.  Math functions are built in; any other call is
/// forwarded to `call_hook` (nullptr -> error: measure functions are only
/// valid in .spec lines).  Unknown identifiers throw NetlistError at the
/// identifier's location.
class MeasureHook {
 public:
  virtual ~MeasureHook() = default;
  virtual double call(const Expr& call_site) const = 0;
};
double eval_expr(const Expr& e, const Scope& scope,
                 const MeasureHook* hook = nullptr);

// --- Cards -----------------------------------------------------------------

struct DeviceCard {
  enum class Kind { resistor, capacitor, vsource, isource, mosfet, diode, vccs, subckt };
  Kind kind = Kind::resistor;
  std::string name;                 ///< full card name ("m1"), lowercased
  std::vector<std::string> nodes;   ///< connection nodes, lowercased
  ExprPtr value;                    ///< R/C/I value, V dc; null otherwise
  ExprPtr ac;                       ///< V only; null when quiet
  std::string wave;                 ///< V only: "pulse"/"pwl"/"sin", empty = none
  std::vector<ExprPtr> wave_args;   ///< waveform arguments, in card order
  SourceLoc wave_loc;               ///< anchor for waveform diagnostics
  std::string model;                ///< M/D model, X subckt name
  std::vector<std::pair<std::string, ExprPtr>> params;  ///< w=/l=/overrides
  SourceLoc loc;

  /// Find a name=value parameter (lowercased key); null when absent.
  ExprPtr param(const std::string& key) const {
    for (const auto& [k, v] : params)
      if (k == key) return v;
    return nullptr;
  }
};

struct ParamDef {
  std::string name;
  ExprPtr value;
  SourceLoc loc;
};

struct VarDef {
  std::string name;  ///< lowercased (expression matching)
  std::string raw;   ///< original spelling (DesignSpace display)
  ExprPtr lo;
  ExprPtr hi;
  bool log_scale = true;
  SourceLoc loc;
};

struct ModelDef {
  std::string name;
  bool nmos = true;   ///< MOSFET polarity (meaningless when diode)
  bool diode = false;  ///< ".model <name> d": junction-diode model
  std::vector<std::pair<std::string, ExprPtr>> overrides;
  SourceLoc loc;
};

struct SpecDef {
  bool is_objective = false;
  std::string name;  ///< display name, original spelling
  std::string unit;  ///< display unit, original spelling
  bool is_lower_bound = true;
  ExprPtr bound;    ///< null for the objective
  ExprPtr measure;
  SourceLoc loc;
};

struct AcDef {
  bool present = false;
  ExprPtr per_decade;
  ExprPtr f_lo;
  ExprPtr f_hi;
  SourceLoc loc;
};

struct TranDef {
  bool present = false;
  ExprPtr tstep;
  ExprPtr tstop;
  bool fixed_step = false;     ///< `fixed`: uniform grid, no LTE control
  bool backward_euler = false; ///< `be`: force backward Euler throughout
  SourceLoc loc;
};

/// One `v(<node>)=<value>` entry of an `.ic` card.
struct IcDef {
  std::string node;  ///< lowercased node name
  ExprPtr value;
  SourceLoc loc;
};

struct ExpertDef {
  std::string filter;  ///< lowercased PDK name, or "*"
  std::vector<double> unit_x;
  SourceLoc loc;
};

/// One `.corner` card: a named process/voltage/temperature set.  `params`
/// carries the raw key=value list; `temp` and `vdd_scale` are special keys,
/// every other key must override an existing `.param` or PDK builtin
/// (validated by NetlistCircuit at load time).
struct CornerDef {
  std::string name;  ///< lowercased
  std::string raw;   ///< original spelling (diagnostics, failure reports)
  std::vector<std::pair<std::string, ExprPtr>> params;
  SourceLoc loc;
};

/// The `.mc` card: K per-device mismatch draws.  Keys vth_sigma (absolute
/// threshold shift, V), beta_sigma (relative kp spread) and quantile
/// (yield fraction for MC aggregation) are validated by NetlistCircuit.
struct McDef {
  bool present = false;
  ExprPtr samples;
  std::vector<std::pair<std::string, ExprPtr>> params;
  SourceLoc loc;
};

struct Subckt {
  std::string name;
  std::vector<std::string> ports;
  std::vector<std::pair<std::string, ExprPtr>> defaults;
  std::vector<DeviceCard> cards;
  SourceLoc loc;
};

struct Deck {
  std::string file;
  std::string title;  ///< .title, else the file stem
  std::vector<ParamDef> params;
  std::vector<VarDef> vars;
  std::vector<ModelDef> models;
  std::vector<SpecDef> specs;
  std::vector<ExpertDef> experts;
  std::vector<CornerDef> corners;
  McDef mc;
  AcDef ac;
  TranDef tran;
  std::vector<IcDef> ics;
  ExprPtr temperature;  ///< .temp [K]; null -> 300
  std::vector<DeviceCard> cards;
  std::map<std::string, Subckt> subckts;
};

/// Parse a deck from text.  `filename` feeds diagnostics and the default
/// title.  Throws NetlistError on any syntax error.
Deck parse_netlist(const std::string& text, const std::string& filename);

/// Read and parse a file.  Throws std::invalid_argument when unreadable.
Deck parse_netlist_file(const std::string& path);

}  // namespace kato::net

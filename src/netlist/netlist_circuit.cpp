#include "netlist/netlist_circuit.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <set>
#include <stdexcept>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/transient.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace kato::ckt {

namespace {

/// Thrown by measure guards (isupply/avg_power <= 0) to report the
/// candidate as a failed simulation; evaluate() converts it to nullopt.
struct SimFailure : std::exception {
  explicit SimFailure(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }
  std::string what_;
};

struct MeasureInfo {
  std::size_t n_args;
  bool needs_ac;
  bool needs_tran;
  bool vsource_arg;     ///< arg 0 names a voltage source instead of a node
  bool second_node_arg; ///< arg 1 also names a node (prop_delay)
};

const std::map<std::string, MeasureInfo>& measure_table() {
  static const std::map<std::string, MeasureInfo> table = {
      {"isupply", {1, false, false, true, false}},
      {"ivsrc", {1, false, false, true, false}},
      {"vdc", {1, false, false, false, false}},
      {"gain_db", {1, true, false, false, false}},
      {"ugf", {1, true, false, false, false}},
      {"pm", {1, true, false, false, false}},
      {"gain_db_at", {2, true, false, false, false}},
      {"slew_rate", {1, false, true, false, false}},
      {"settling_time", {2, false, true, false, false}},
      {"overshoot", {1, false, true, false, false}},
      {"prop_delay", {2, false, true, false, true}},
      {"avg_power", {1, false, true, true, false}},
      {"value_at", {2, false, true, false, false}},
      {"vmax", {1, false, true, false, false}},
      {"vmin", {1, false, true, false, false}},
  };
  return table;
}

const MeasureInfo* measure_info(const std::string& name) {
  const auto& table = measure_table();
  const auto it = table.find(name);
  return it == table.end() ? nullptr : &it->second;
}

/// "isupply ivsrc vdc ..." — the supported set, for diagnostics.
std::string supported_measures() {
  std::string out;
  for (const auto& entry : measure_table()) {
    if (!out.empty()) out += ' ';
    out += entry.first;
  }
  return out;
}

bool is_math_fn(const std::string& name) {
  static const std::set<std::string> fns = {"sqrt", "abs", "exp", "log",
                                            "pow",  "min", "max", "cond"};
  return fns.count(name) != 0;
}

/// Resolve a measure's argument `arg` against the elaborated circuit.
/// Numeric node names ("0", "1a") parse as number expressions; their name
/// field carries the raw spelling, so both kinds resolve here.
template <typename Map>
typename Map::mapped_type resolve_target(const net::Expr& call, const Map& map,
                                         const char* what,
                                         std::size_t arg = 0) {
  static const char* const positions[] = {"first", "second"};
  const bool named =
      call.args.size() > arg &&
      (call.args[arg]->kind == net::Expr::Kind::ident ||
       (call.args[arg]->kind == net::Expr::Kind::number &&
        !call.args[arg]->name.empty()));
  if (!named)
    throw net::NetlistError(call.loc, "'" + call.name + "' expects a " + what +
                                          " name as its " +
                                          positions[arg == 0 ? 0 : 1] +
                                          " argument");
  const auto it = map.find(call.args[arg]->name);
  if (it == map.end())
    throw net::NetlistError(call.args[arg]->loc,
                            std::string("unknown ") + what + " '" +
                                call.args[arg]->raw + "' in measure");
  return it->second;
}

/// Analyses a deck's measure expressions require, with the call site that
/// first demanded each (anchor for the missing-.ac / missing-.tran
/// diagnostics).
struct MeasureNeeds {
  bool ac = false;
  net::SourceLoc ac_loc;
  bool tran = false;
  net::SourceLoc tran_loc;
};

/// Compile-time-style validation of a measure expression: known functions,
/// right arity, arguments naming real nodes / voltage sources.  Flags
/// which analyses (AC sweep, transient run) are needed.
void validate_measure(const net::Expr& e, const net::Elaboration& elab,
                      const net::Scope& scope, MeasureNeeds& needs) {
  switch (e.kind) {
    case net::Expr::Kind::number:
      return;
    case net::Expr::Kind::ident:
      net::eval_expr(e, scope);  // throws on undefined names
      return;
    case net::Expr::Kind::negate:
    case net::Expr::Kind::binary:
      for (const auto& a : e.args) validate_measure(*a, elab, scope, needs);
      return;
    case net::Expr::Kind::call: {
      if (const MeasureInfo* info = measure_info(e.name)) {
        if (e.args.size() != info->n_args)
          throw net::NetlistError(e.loc, "'" + e.name + "' expects " +
                                             std::to_string(info->n_args) +
                                             " argument(s)");
        if (info->vsource_arg)
          resolve_target(e, elab.vsources, "voltage source");
        else
          resolve_target(e, elab.nodes, "node");
        if (info->needs_ac && !needs.ac) {
          needs.ac = true;
          needs.ac_loc = e.loc;
        }
        if (info->needs_tran && !needs.tran) {
          needs.tran = true;
          needs.tran_loc = e.loc;
        }
        if (info->second_node_arg) {
          resolve_target(e, elab.nodes, "node", 1);
          return;  // both arguments are names, nothing left to walk
        }
        for (std::size_t i = 1; i < e.args.size(); ++i)
          validate_measure(*e.args[i], elab, scope, needs);
        return;
      }
      if (is_math_fn(e.name)) {
        for (const auto& a : e.args) validate_measure(*a, elab, scope, needs);
        return;
      }
      throw net::NetlistError(e.loc, "unknown measure function '" + e.name +
                                         "' (supported: " +
                                         supported_measures() + ")");
    }
  }
}

/// Measure-function evaluation against one simulated candidate.
class SimMeasure final : public net::MeasureHook {
 public:
  SimMeasure(const net::Elaboration& elab, const sim::DcResult& op,
             const sim::AcSweep* sweep, const sim::TranResult* tran,
             const net::Scope& scope)
      : elab_(elab), op_(op), sweep_(sweep), tran_(tran), scope_(scope) {}

  double call(const net::Expr& e) const override {
    if (e.name == "isupply") {
      // Branch current is positive p -> n through the source, so a supply
      // delivering current has a negative branch current; flip the sign and
      // require delivery (matches the hand-written OpAmp benchmarks).
      const double i = -op_.vsource_current[resolve_target(e, elab_.vsources,
                                                           "voltage source")];
      if (!(i > 0.0)) throw SimFailure("isupply(" + e.args[0]->raw +
                                       ") <= 0: supply delivers no current");
      return i;
    }
    if (e.name == "ivsrc")
      return op_.vsource_current[resolve_target(e, elab_.vsources,
                                                "voltage source")];
    if (e.name == "avg_power") {
      // Same delivery guard as isupply: a supply that absorbs (or passes
      // no) average power marks the candidate as a failed simulation.
      const double p = sim::tran_avg_power(
          *tran_, elab_.circuit,
          resolve_target(e, elab_.vsources, "voltage source"));
      if (!(p > 0.0)) throw SimFailure("avg_power(" + e.args[0]->raw +
                                       ") <= 0: supply delivers no power");
      return p;
    }
    if (e.name == "vdc")
      return op_.v(resolve_target(e, elab_.nodes, "node"));
    const int node = resolve_target(e, elab_.nodes, "node");
    if (e.name == "gain_db") return sim::dc_gain_db(*sweep_, node);
    if (e.name == "ugf") return sim::unity_gain_freq(*sweep_, node);
    if (e.name == "pm") return sim::stable_phase_margin_deg(*sweep_, node);
    if (e.name == "gain_db_at")
      return sim::gain_db_at(*sweep_, node,
                             net::eval_expr(*e.args[1], scope_, this));
    if (e.name == "slew_rate") return sim::tran_slew_rate(*tran_, node);
    if (e.name == "settling_time")
      return sim::tran_settling_time(*tran_, node,
                                     net::eval_expr(*e.args[1], scope_, this));
    if (e.name == "overshoot") return sim::tran_overshoot(*tran_, node);
    if (e.name == "prop_delay")
      return sim::tran_prop_delay(*tran_, node,
                                  resolve_target(e, elab_.nodes, "node", 1));
    if (e.name == "value_at")
      return sim::tran_value_at(*tran_, node,
                                net::eval_expr(*e.args[1], scope_, this));
    if (e.name == "vmax") return sim::tran_vmax(*tran_, node);
    // vmin — validated at construction, the only remaining case.
    return sim::tran_vmin(*tran_, node);
  }

 private:
  const net::Elaboration& elab_;
  const sim::DcResult& op_;
  const sim::AcSweep* sweep_;
  const sim::TranResult* tran_;
  const net::Scope& scope_;
};

}  // namespace

NetlistCircuit::NetlistCircuit(net::Deck deck, const Pdk& pdk)
    : deck_(std::move(deck)), pdk_(pdk) {
  consts_ = net::pdk_builtins(pdk_);
  const net::Scope const_scope{&consts_, nullptr};

  for (const auto& p : deck_.params) {
    if (consts_.count(p.name) != 0)
      throw net::NetlistError(p.loc, ".param '" + p.name +
                                         "' redefines a builtin parameter");
    consts_[p.name] = net::eval_expr(*p.value, const_scope);
  }

  for (const auto& v : deck_.vars) {
    if (consts_.count(v.name) != 0)
      throw net::NetlistError(v.loc, "sizing variable '" + v.raw +
                                         "' collides with a parameter");
    const double lo = net::eval_expr(*v.lo, const_scope);
    const double hi = net::eval_expr(*v.hi, const_scope);
    try {
      space_.add(v.raw, lo, hi, v.log_scale);
    } catch (const std::invalid_argument& err) {
      throw net::NetlistError(v.loc, err.what());
    }
  }
  if (space_.dim() == 0)
    throw net::NetlistError({deck_.file, 0, 0},
                            "deck declares no .var sizing variables");

  bool have_objective = false;
  for (const auto& spec : deck_.specs) {
    if (spec.is_objective) {
      objective_ = spec;
      have_objective = true;
    } else {
      const double bound = net::eval_expr(*spec.bound, const_scope);
      specs_.push_back({spec.name, spec.unit, bound, spec.is_lower_bound});
      spec_measures_.push_back(spec.measure);
    }
  }
  if (!have_objective)
    throw net::NetlistError({deck_.file, 0, 0},
                            "deck declares no '.spec objective' line");

  expert_.assign(space_.dim(), 0.5);
  bool exact_expert = false;
  for (const auto& e : deck_.experts) {
    const bool exact = e.filter == pdk_.name;
    if (!exact && e.filter != "*") continue;
    if (e.unit_x.size() != space_.dim())
      throw net::NetlistError(e.loc, ".expert has " +
                                         std::to_string(e.unit_x.size()) +
                                         " value(s) but the deck declares " +
                                         std::to_string(space_.dim()) +
                                         " sizing variables");
    if (exact || !exact_expert) expert_ = e.unit_x;
    exact_expert = exact_expert || exact;
  }

  // Resolve .corner cards into per-corner constant tables.  Override
  // expressions are evaluated against the *nominal* table; the corner table
  // then starts from the (possibly vdd-scaled / overridden) builtins and
  // re-derives every .param in deck order, so parameters defined in terms
  // of vdd track the supply spread.  Explicit .param overrides win over the
  // re-derivation.
  has_corner_cards_ = !deck_.corners.empty();
  if (!has_corner_cards_) {
    corners_.push_back({"nominal", "nominal", std::nullopt, consts_});
  } else {
    for (const auto& c : deck_.corners) {
      CornerSetup setup;
      setup.name = c.name;
      setup.raw = c.raw;
      std::map<std::string, double> builtins = net::pdk_builtins(pdk_);
      std::map<std::string, double> overrides;
      for (const auto& [key, expr] : c.params) {
        const double val = net::eval_expr(*expr, const_scope);
        if (key == "temp") {
          if (!(val > 0.0))
            throw net::NetlistError(c.loc, ".corner '" + c.raw +
                                               "': temp must be > 0 (kelvin)");
          setup.temp = val;
        } else if (key == "vdd_scale") {
          if (!(val > 0.0))
            throw net::NetlistError(c.loc, ".corner '" + c.raw +
                                               "': vdd_scale must be > 0");
          builtins["vdd"] *= val;
        } else if (builtins.count(key) != 0) {
          builtins[key] = val;
        } else if (std::any_of(deck_.params.begin(), deck_.params.end(),
                               [&](const net::ParamDef& p) {
                                 return p.name == key;
                               })) {
          overrides[key] = val;
        } else {
          throw net::NetlistError(c.loc, ".corner '" + c.raw +
                                             "' overrides unknown parameter '" +
                                             key +
                                             "' (no such .param or builtin)");
        }
      }
      setup.consts = std::move(builtins);
      const net::Scope corner_scope{&setup.consts, nullptr};
      for (const auto& p : deck_.params) {
        const auto ov = overrides.find(p.name);
        setup.consts[p.name] = ov != overrides.end()
                                   ? ov->second
                                   : net::eval_expr(*p.value, corner_scope);
      }
      corners_.push_back(std::move(setup));
    }
  }

  if (deck_.mc.present) {
    const double k = net::eval_expr(*deck_.mc.samples, const_scope);
    if (!(k >= 1.0) || k > 4096.0 || k != std::floor(k))
      throw net::NetlistError(deck_.mc.loc,
                              ".mc sample count must be an integer in "
                              "[1, 4096]");
    mc_samples_ = static_cast<std::size_t>(k);
    for (const auto& [key, expr] : deck_.mc.params) {
      const double val = net::eval_expr(*expr, const_scope);
      if (key == "vth_sigma") {
        if (!(val >= 0.0))
          throw net::NetlistError(deck_.mc.loc, ".mc vth_sigma must be >= 0");
        vth_sigma_ = val;
      } else if (key == "beta_sigma") {
        if (!(val >= 0.0))
          throw net::NetlistError(deck_.mc.loc, ".mc beta_sigma must be >= 0");
        beta_sigma_ = val;
      } else if (key == "quantile") {
        if (!(val > 0.0 && val <= 1.0))
          throw net::NetlistError(deck_.mc.loc,
                                  ".mc quantile must be in (0, 1]");
        mc_quantile_ = val;
      } else {
        throw net::NetlistError(deck_.mc.loc,
                                ".mc: unknown key '" + key +
                                    "' (supported: vth_sigma beta_sigma "
                                    "quantile)");
      }
    }
  }

  // Trial elaboration at the expert/mid-box point: surfaces structural
  // problems (dangling nodes, cyclic subckts, unknown models) and
  // expression errors at load time.
  const net::Elaboration trial = elaborate(expert_);
  const auto trial_vars = bind_vars(expert_);
  const net::Scope trial_scope{&trial_vars, &const_scope};
  MeasureNeeds needs;
  validate_measure(*objective_.measure, trial, trial_scope, needs);
  for (const auto& m : spec_measures_)
    validate_measure(*m, trial, trial_scope, needs);
  needs_ac_ = needs.ac;
  needs_tran_ = needs.tran;
  if (needs_ac_ && !deck_.ac.present)
    throw net::NetlistError(needs.ac_loc,
                            "AC measure used but the deck has no "
                            "'.ac dec <pts> <f_lo> <f_hi>' line");
  if (needs_tran_ && !deck_.tran.present)
    throw net::NetlistError(needs.tran_loc,
                            "transient measure used but the deck has no "
                            "'.tran <tstep> <tstop>' line");
}

std::unique_ptr<NetlistCircuit> NetlistCircuit::from_file(const std::string& path,
                                                          const Pdk& pdk) {
  return std::make_unique<NetlistCircuit>(net::parse_netlist_file(path), pdk);
}

std::map<std::string, double> NetlistCircuit::bind_vars(
    const std::vector<double>& unit_x) const {
  const auto physical = space_.to_physical(unit_x);
  std::map<std::string, double> vars;
  for (std::size_t i = 0; i < deck_.vars.size(); ++i)
    vars.emplace(deck_.vars[i].name, physical[i]);
  return vars;
}

net::Elaboration NetlistCircuit::elaborate(
    const std::vector<double>& unit_x) const {
  const auto vars = bind_vars(unit_x);
  const net::Scope const_scope{&consts_, nullptr};
  const net::Scope env{&vars, &const_scope};
  return net::elaborate(deck_, pdk_, env);
}

std::optional<std::vector<double>> NetlistCircuit::evaluate(
    const std::vector<double>& unit_x) const {
  return evaluate_detailed(unit_x).metrics;
}

std::vector<std::optional<std::vector<double>>> NetlistCircuit::evaluate_batch(
    const std::vector<std::vector<double>>& xs) const {
  KATO_OBS_SPAN("evaluate_batch");
  const std::size_t fan = corners_.size() * mc_samples_;
  if (fan == 1) {
    std::vector<std::optional<std::vector<double>>> out(xs.size());
    // Each candidate slot is a pure function of its unit-box point: the
    // worker elaborates a private sim::Circuit (with its own assembler,
    // pattern and factorization workspaces) and writes only its own slot, so
    // any chunking of [0, n) yields bit-identical results.
    // A candidate whose evaluation throws (evaluate_single converts most
    // exceptions to failure outcomes already; this is the backstop for
    // anything escaping earlier, e.g. elaboration) loses only its own slot
    // — parallel_for would otherwise rethrow and kill the whole batch.
    util::parallel_for(xs.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        try {
          out[i] = evaluate_detailed(xs[i]).metrics;
        } catch (...) {
          out[i] = std::nullopt;
        }
      }
    });
    return out;
  }
  // Corner/MC fan-out: flatten candidates x conditions into one slot list
  // so even a small batch fills the pool.  Slot s is a pure function of
  // (candidate s/fan, corner, sample) and writes only its own entry, so any
  // chunking stays bit-identical; aggregation runs serially afterwards and
  // matches the serial evaluate_detailed() loop exactly.
  std::vector<std::optional<std::vector<double>>> conds(xs.size() * fan);
  util::parallel_for(conds.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      const std::size_t i = s / fan;
      const std::size_t c = (s % fan) / mc_samples_;
      const std::size_t k = s % mc_samples_;
      try {
        conds[s] = evaluate_single(xs[i], c, k).metrics;
      } catch (...) {
        conds[s] = std::nullopt;  // same backstop as the fan == 1 path
      }
    }
  });
  std::vector<std::optional<std::vector<double>>> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::vector<std::optional<std::vector<double>>> sub(
        conds.begin() + static_cast<std::ptrdiff_t>(i * fan),
        conds.begin() + static_cast<std::ptrdiff_t>((i + 1) * fan));
    out[i] = aggregate(sub);
  }
  return out;
}

NetlistCircuit::EvalOutcome NetlistCircuit::evaluate_detailed(
    const std::vector<double>& unit_x) const {
  if (!has_corner_cards_ && !deck_.mc.present)
    return evaluate_single(unit_x, 0, 0);

  std::vector<std::optional<std::vector<double>>> conds;
  conds.reserve(corners_.size() * mc_samples_);
  EvalOutcome out;  // accumulates stats across every condition simulated
  for (std::size_t c = 0; c < corners_.size(); ++c) {
    for (std::size_t k = 0; k < mc_samples_; ++k) {
      EvalOutcome one = evaluate_single(unit_x, c, k);
      out.stats.merge(one.stats);
      if (!one.metrics) {
        std::string where;
        if (has_corner_cards_) where += "corner '" + corners_[c].raw + "'";
        if (deck_.mc.present) {
          if (!where.empty()) where += ", ";
          where += "mc sample " + std::to_string(k);
        }
        out.failure = where + ": " + one.failure;
        return out;
      }
      conds.push_back(std::move(one.metrics));
    }
  }
  out.metrics = aggregate(conds);
  return out;
}

std::optional<std::vector<double>> NetlistCircuit::aggregate(
    const std::vector<std::optional<std::vector<double>>>& conds) const {
  for (const auto& c : conds)
    if (!c) return std::nullopt;
  const std::size_t n_metrics = 1 + specs_.size();
  const std::size_t k = mc_samples_;
  // Adverse order statistic: rank r = ceil(q K) counted from the adverse
  // end, no interpolation — with q = 1 this is the worst sample, with
  // q = 0.875 and K = 8 the second-worst.  Exactness keeps golden tests
  // hand-computable and the aggregate bit-identical across eval paths.
  const std::size_t rank = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(mc_quantile_ * static_cast<double>(k))),
      1, k);
  std::vector<double> out(n_metrics);
  std::vector<double> samples(k);
  for (std::size_t m = 0; m < n_metrics; ++m) {
    const bool smaller = smaller_better(m);
    double worst = 0.0;
    for (std::size_t c = 0; c < corners_.size(); ++c) {
      for (std::size_t s = 0; s < k; ++s)
        samples[s] = (*conds[c * k + s])[m];
      std::sort(samples.begin(), samples.end());
      const double q = smaller ? samples[rank - 1] : samples[k - rank];
      worst = c == 0 ? q : (smaller ? std::max(worst, q) : std::min(worst, q));
    }
    out[m] = worst;
  }
  return out;
}

NetlistCircuit::EvalOutcome NetlistCircuit::evaluate_single(
    const std::vector<double>& unit_x, std::size_t corner,
    std::size_t sample) const {
  KATO_OBS_SPAN("evaluate_single");
  KATO_OBS_STAGE(eval);
  EvalOutcome out;
  // Single registry capture point for the whole stack: every public eval
  // path (evaluate / evaluate_detailed / evaluate_batch) funnels through
  // here, so the process-wide counters see exactly one record per simulated
  // condition — including early failure returns and SimFailure unwinds.
  struct Recorder {
    const EvalOutcome& out;
    ~Recorder() {
      obs::record_sim(out.stats);
      obs::bo_count(obs::BoCounter::evals);
      if (!out.metrics) obs::bo_count(obs::BoCounter::eval_failures);
    }
  } recorder{out};

  // Per-candidate wall-clock budget: armed for this thread only; the Newton
  // and timestep loops poll it cooperatively and bail with a tagged reason.
  const util::EvalDeadline deadline_guard(util::eval_deadline_ms());
  try {
    if (util::fault_fires(util::FaultSite::eval_slow)) {
      // Stall just past the armed budget so the deadline machinery — not
      // the sleep itself — decides this candidate's fate.
      const std::uint64_t budget = util::eval_deadline_ms();
      util::fault_sleep_ms(budget > 0 ? budget + 5 : 10);
    }
    if (util::fault_fires(util::FaultSite::eval_throw))
      throw std::runtime_error("injected fault eval:throw");

    const auto vars = bind_vars(unit_x);
    const CornerSetup& cs = corners_[corner];
    const net::Scope const_scope{&cs.consts, nullptr};
    const net::Scope env{&vars, &const_scope};
    net::Elaboration elab = net::elaborate(deck_, pdk_, env);
    if (deck_.mc.present)
      net::apply_mos_mismatch(elab.circuit, sample, vth_sigma_, beta_sigma_);
    const double temperature = cs.temp.value_or(elab.temperature);

    sim::DcOptions dc_opts;
    dc_opts.temp = temperature;
    dc_opts.device_eval = device_eval_;
    const auto op = sim::solve_dc(elab.circuit, dc_opts);
    out.stats.merge(op.stats);
    if (!op.converged) {
      obs::bo_count(obs::BoCounter::fail_dc);
      out.failure = "DC operating point failed: " +
                    (op.reason.empty() ? "did not converge" : op.reason);
      return out;
    }

    sim::AcSweep sweep;
    if (needs_ac_) {
      sweep = sim::solve_ac(elab.circuit, op, elab.freqs);
      out.stats.merge(sweep.stats);
      if (!sweep.ok) {
        obs::bo_count(obs::BoCounter::fail_ac);
        out.failure = "AC sweep failed (singular linearized system) after " +
                      std::to_string(sweep.stats.ac_points) + "/" +
                      std::to_string(elab.freqs.size()) + " frequency points";
        return out;
      }
    }

    sim::TranResult tran;
    if (needs_tran_) {
      sim::TranOptions topts;
      topts.tstep = elab.tran.tstep;
      topts.tstop = elab.tran.tstop;
      topts.fixed_step = elab.tran.fixed_step;
      topts.backward_euler = elab.tran.backward_euler;
      topts.temp = temperature;
      topts.device_eval = device_eval_;
      topts.initial_conditions = elab.tran.ics;
      tran = sim::solve_tran(elab.circuit, topts, &op);
      out.stats.merge(tran.stats);
      if (!tran.ok) {
        obs::bo_count(obs::BoCounter::fail_tran);
        out.failure = "transient analysis failed: " + tran.reason;
        return out;
      }
    }

    KATO_OBS_SPAN("measures");
    const SimMeasure hook(elab, op, needs_ac_ ? &sweep : nullptr,
                          needs_tran_ ? &tran : nullptr, env);
    try {
      std::vector<double> metrics;
      metrics.reserve(1 + specs_.size());
      metrics.push_back(net::eval_expr(*objective_.measure, env, &hook));
      for (const auto& m : spec_measures_)
        metrics.push_back(net::eval_expr(*m, env, &hook));
      out.metrics = std::move(metrics);
    } catch (const SimFailure& failure) {
      obs::bo_count(obs::BoCounter::fail_measure);
      out.failure = failure.what();
    }
    return out;
  } catch (const std::exception& e) {
    // Anything thrown past the stage handlers above (elaboration errors,
    // injected eval:throw, allocation failures in a pathological deck)
    // becomes a per-candidate failure outcome instead of escaping into —
    // and killing — a batch evaluation.
    out.metrics.reset();
    out.failure = e.what();
    return out;
  }
}

}  // namespace kato::ckt

#include "netlist/netlist_circuit.hpp"

#include <algorithm>
#include <exception>
#include <set>

#include "sim/ac.hpp"
#include "sim/dc.hpp"

namespace kato::ckt {

namespace {

/// Thrown by measure functions (isupply <= 0) to report the candidate as a
/// failed simulation; evaluate() converts it to nullopt.
struct SimFailure : std::exception {
  const char* what() const noexcept override {
    return "netlist measure reported simulation failure";
  }
};

struct MeasureInfo {
  std::size_t n_args;
  bool needs_ac;
  bool vsource_arg;  ///< arg 0 names a voltage source instead of a node
};

const MeasureInfo* measure_info(const std::string& name) {
  static const std::map<std::string, MeasureInfo> table = {
      {"isupply", {1, false, true}},  {"ivsrc", {1, false, true}},
      {"vdc", {1, false, false}},     {"gain_db", {1, true, false}},
      {"ugf", {1, true, false}},      {"pm", {1, true, false}},
      {"gain_db_at", {2, true, false}},
  };
  const auto it = table.find(name);
  return it == table.end() ? nullptr : &it->second;
}

bool is_math_fn(const std::string& name) {
  static const std::set<std::string> fns = {"sqrt", "abs", "exp", "log",
                                            "pow",  "min", "max", "cond"};
  return fns.count(name) != 0;
}

/// Resolve a measure's first argument against the elaborated circuit.
/// Numeric node names ("0", "1a") parse as number expressions; their name
/// field carries the raw spelling, so both kinds resolve here.
template <typename Map>
typename Map::mapped_type resolve_target(const net::Expr& call, const Map& map,
                                         const char* what) {
  const bool named =
      !call.args.empty() &&
      (call.args[0]->kind == net::Expr::Kind::ident ||
       (call.args[0]->kind == net::Expr::Kind::number &&
        !call.args[0]->name.empty()));
  if (!named)
    throw net::NetlistError(call.loc, "'" + call.name + "' expects a " + what +
                                          " name as its first argument");
  const auto it = map.find(call.args[0]->name);
  if (it == map.end())
    throw net::NetlistError(call.args[0]->loc,
                            std::string("unknown ") + what + " '" +
                                call.args[0]->raw + "' in measure");
  return it->second;
}

/// Compile-time-style validation of a measure expression: known functions,
/// right arity, arguments naming real nodes / voltage sources.  Flags
/// whether an AC sweep is needed.
void validate_measure(const net::Expr& e, const net::Elaboration& elab,
                      const net::Scope& scope, bool& needs_ac,
                      net::SourceLoc& ac_loc) {
  switch (e.kind) {
    case net::Expr::Kind::number:
      return;
    case net::Expr::Kind::ident:
      net::eval_expr(e, scope);  // throws on undefined names
      return;
    case net::Expr::Kind::negate:
    case net::Expr::Kind::binary:
      for (const auto& a : e.args)
        validate_measure(*a, elab, scope, needs_ac, ac_loc);
      return;
    case net::Expr::Kind::call: {
      if (const MeasureInfo* info = measure_info(e.name)) {
        if (e.args.size() != info->n_args)
          throw net::NetlistError(e.loc, "'" + e.name + "' expects " +
                                             std::to_string(info->n_args) +
                                             " argument(s)");
        if (info->vsource_arg)
          resolve_target(e, elab.vsources, "voltage source");
        else
          resolve_target(e, elab.nodes, "node");
        if (info->needs_ac && !needs_ac) {
          needs_ac = true;
          ac_loc = e.loc;  // anchor the missing-.ac diagnostic here
        }
        for (std::size_t i = 1; i < e.args.size(); ++i)
          validate_measure(*e.args[i], elab, scope, needs_ac, ac_loc);
        return;
      }
      if (is_math_fn(e.name)) {
        for (const auto& a : e.args)
          validate_measure(*a, elab, scope, needs_ac, ac_loc);
        return;
      }
      throw net::NetlistError(e.loc, "unknown measure function '" + e.name + "'");
    }
  }
}

/// Measure-function evaluation against one simulated candidate.
class SimMeasure final : public net::MeasureHook {
 public:
  SimMeasure(const net::Elaboration& elab, const sim::DcResult& op,
             const sim::AcSweep* sweep, const net::Scope& scope)
      : elab_(elab), op_(op), sweep_(sweep), scope_(scope) {}

  double call(const net::Expr& e) const override {
    if (e.name == "isupply") {
      // Branch current is positive p -> n through the source, so a supply
      // delivering current has a negative branch current; flip the sign and
      // require delivery (matches the hand-written OpAmp benchmarks).
      const double i = -op_.vsource_current[resolve_target(e, elab_.vsources,
                                                           "voltage source")];
      if (!(i > 0.0)) throw SimFailure{};
      return i;
    }
    if (e.name == "ivsrc")
      return op_.vsource_current[resolve_target(e, elab_.vsources,
                                                "voltage source")];
    if (e.name == "vdc")
      return op_.v(resolve_target(e, elab_.nodes, "node"));
    const int node = resolve_target(e, elab_.nodes, "node");
    if (e.name == "gain_db") return sim::dc_gain_db(*sweep_, node);
    if (e.name == "ugf") return sim::unity_gain_freq(*sweep_, node);
    if (e.name == "pm") return sim::stable_phase_margin_deg(*sweep_, node);
    // gain_db_at — validated at construction, the only remaining case.
    return sim::gain_db_at(*sweep_, node,
                           net::eval_expr(*e.args[1], scope_, this));
  }

 private:
  const net::Elaboration& elab_;
  const sim::DcResult& op_;
  const sim::AcSweep* sweep_;
  const net::Scope& scope_;
};

}  // namespace

NetlistCircuit::NetlistCircuit(net::Deck deck, const Pdk& pdk)
    : deck_(std::move(deck)), pdk_(pdk) {
  consts_ = net::pdk_builtins(pdk_);
  const net::Scope const_scope{&consts_, nullptr};

  for (const auto& p : deck_.params) {
    if (consts_.count(p.name) != 0)
      throw net::NetlistError(p.loc, ".param '" + p.name +
                                         "' redefines a builtin parameter");
    consts_[p.name] = net::eval_expr(*p.value, const_scope);
  }

  for (const auto& v : deck_.vars) {
    if (consts_.count(v.name) != 0)
      throw net::NetlistError(v.loc, "sizing variable '" + v.raw +
                                         "' collides with a parameter");
    const double lo = net::eval_expr(*v.lo, const_scope);
    const double hi = net::eval_expr(*v.hi, const_scope);
    try {
      space_.add(v.raw, lo, hi, v.log_scale);
    } catch (const std::invalid_argument& err) {
      throw net::NetlistError(v.loc, err.what());
    }
  }
  if (space_.dim() == 0)
    throw net::NetlistError({deck_.file, 0, 0},
                            "deck declares no .var sizing variables");

  bool have_objective = false;
  for (const auto& spec : deck_.specs) {
    if (spec.is_objective) {
      objective_ = spec;
      have_objective = true;
    } else {
      const double bound = net::eval_expr(*spec.bound, const_scope);
      specs_.push_back({spec.name, spec.unit, bound, spec.is_lower_bound});
      spec_measures_.push_back(spec.measure);
    }
  }
  if (!have_objective)
    throw net::NetlistError({deck_.file, 0, 0},
                            "deck declares no '.spec objective' line");

  expert_.assign(space_.dim(), 0.5);
  bool exact_expert = false;
  for (const auto& e : deck_.experts) {
    const bool exact = e.filter == pdk_.name;
    if (!exact && e.filter != "*") continue;
    if (e.unit_x.size() != space_.dim())
      throw net::NetlistError(e.loc, ".expert has " +
                                         std::to_string(e.unit_x.size()) +
                                         " value(s) but the deck declares " +
                                         std::to_string(space_.dim()) +
                                         " sizing variables");
    if (exact || !exact_expert) expert_ = e.unit_x;
    exact_expert = exact_expert || exact;
  }

  // Trial elaboration at the expert/mid-box point: surfaces structural
  // problems (dangling nodes, cyclic subckts, unknown models) and
  // expression errors at load time.
  const net::Elaboration trial = elaborate(expert_);
  const auto trial_vars = bind_vars(expert_);
  const net::Scope trial_scope{&trial_vars, &const_scope};
  net::SourceLoc ac_loc;  // first AC measure call site
  validate_measure(*objective_.measure, trial, trial_scope, needs_ac_, ac_loc);
  for (const auto& m : spec_measures_)
    validate_measure(*m, trial, trial_scope, needs_ac_, ac_loc);
  if (needs_ac_ && !deck_.ac.present)
    throw net::NetlistError(ac_loc,
                            "AC measure used but the deck has no "
                            "'.ac dec <pts> <f_lo> <f_hi>' line");
}

std::unique_ptr<NetlistCircuit> NetlistCircuit::from_file(const std::string& path,
                                                          const Pdk& pdk) {
  return std::make_unique<NetlistCircuit>(net::parse_netlist_file(path), pdk);
}

std::map<std::string, double> NetlistCircuit::bind_vars(
    const std::vector<double>& unit_x) const {
  const auto physical = space_.to_physical(unit_x);
  std::map<std::string, double> vars;
  for (std::size_t i = 0; i < deck_.vars.size(); ++i)
    vars.emplace(deck_.vars[i].name, physical[i]);
  return vars;
}

net::Elaboration NetlistCircuit::elaborate(
    const std::vector<double>& unit_x) const {
  const auto vars = bind_vars(unit_x);
  const net::Scope const_scope{&consts_, nullptr};
  const net::Scope env{&vars, &const_scope};
  return net::elaborate(deck_, pdk_, env);
}

std::optional<std::vector<double>> NetlistCircuit::evaluate(
    const std::vector<double>& unit_x) const {
  const auto vars = bind_vars(unit_x);
  const net::Scope const_scope{&consts_, nullptr};
  const net::Scope env{&vars, &const_scope};
  const net::Elaboration elab = net::elaborate(deck_, pdk_, env);

  sim::DcOptions dc_opts;
  dc_opts.temp = elab.temperature;
  const auto op = sim::solve_dc(elab.circuit, dc_opts);
  if (!op.converged) return std::nullopt;

  sim::AcSweep sweep;
  if (needs_ac_) {
    sweep = sim::solve_ac(elab.circuit, op, elab.freqs);
    if (!sweep.ok) return std::nullopt;
  }

  const SimMeasure hook(elab, op, needs_ac_ ? &sweep : nullptr, env);
  try {
    std::vector<double> metrics;
    metrics.reserve(1 + specs_.size());
    metrics.push_back(net::eval_expr(*objective_.measure, env, &hook));
    for (const auto& m : spec_measures_)
      metrics.push_back(net::eval_expr(*m, env, &hook));
    return metrics;
  } catch (const SimFailure&) {
    return std::nullopt;
  }
}

}  // namespace kato::ckt

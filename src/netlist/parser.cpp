#include "netlist/parser.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "netlist/lexer.hpp"
#include "obs/obs.hpp"

namespace kato::net {

namespace {

ExprPtr make_number(double v, SourceLoc loc) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::number;
  e->number = v;
  e->loc = std::move(loc);
  return e;
}

/// A token used as a *name* (node, model, subckt).  Identifiers are already
/// lowercased; numeric tokens (nodes like "0", "1a", "10k") must use the
/// raw spelling, lowercased — the numeric text would have SI suffixes
/// expanded and trailing letters dropped, silently renaming the node.
std::string name_text(const Token& t) {
  if (t.kind != TokKind::number) return t.text;
  std::string name = t.raw;
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return name;
}

// --- Token stream ----------------------------------------------------------

class Stream {
 public:
  explicit Stream(std::vector<Token> toks) : toks_(std::move(toks)) {}

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  const Token& next() {
    const Token& t = toks_[pos_];
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }
  bool at_line_end() const {
    return peek().kind == TokKind::eol || peek().kind == TokKind::eof;
  }
  /// Consume the end of the current logical line.
  void expect_eol(const char* after) {
    if (!at_line_end())
      throw NetlistError(peek().loc, std::string("unexpected '") + peek().raw +
                                         "' after " + after);
    if (peek().kind == TokKind::eol) next();
  }
  void skip_to_eol() {
    while (!at_line_end()) next();
    if (peek().kind == TokKind::eol) next();
  }

 private:
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

// --- Expression parsing ----------------------------------------------------

ExprPtr parse_expr(Stream& s);

ExprPtr parse_primary(Stream& s) {
  const Token& t = s.peek();
  if (t.kind == TokKind::number) {
    s.next();
    auto num = std::make_shared<Expr>();
    num->kind = Expr::Kind::number;
    num->number = t.value;
    // Keep the raw spelling: a numeric token can also be a node name in a
    // measure call (vdc(1a)), resolved via name/raw rather than the value.
    num->name = name_text(t);
    num->raw = t.raw;
    num->loc = t.loc;
    return num;
  }
  if (t.kind == TokKind::ident) {
    s.next();
    if (s.peek().is_punct("(")) {
      s.next();
      auto call = std::make_shared<Expr>();
      call->kind = Expr::Kind::call;
      call->name = t.text;
      call->raw = t.raw;
      call->loc = t.loc;
      if (!s.peek().is_punct(")")) {
        call->args.push_back(parse_expr(s));
        while (s.peek().is_punct(",")) {
          s.next();
          call->args.push_back(parse_expr(s));
        }
      }
      if (!s.peek().is_punct(")"))
        throw NetlistError(s.peek().loc, "expected ')' in call to '" + t.text + "'");
      s.next();
      return call;
    }
    auto id = std::make_shared<Expr>();
    id->kind = Expr::Kind::ident;
    id->name = t.text;
    id->raw = t.raw;
    id->loc = t.loc;
    return id;
  }
  if (t.is_punct("(")) {
    s.next();
    auto inner = parse_expr(s);
    if (!s.peek().is_punct(")"))
      throw NetlistError(s.peek().loc, "expected ')'");
    s.next();
    return inner;
  }
  throw NetlistError(t.loc, "expected a number, name or '(' in expression, got '" +
                                (t.raw.empty() ? "end of line" : t.raw) + "'");
}

ExprPtr parse_unary(Stream& s) {
  if (s.peek().is_punct("-")) {
    const SourceLoc loc = s.peek().loc;
    s.next();
    auto neg = std::make_shared<Expr>();
    neg->kind = Expr::Kind::negate;
    neg->args.push_back(parse_unary(s));
    neg->loc = loc;
    return neg;
  }
  if (s.peek().is_punct("+")) {
    s.next();
    return parse_unary(s);
  }
  return parse_primary(s);
}

ExprPtr parse_term(Stream& s) {
  auto lhs = parse_unary(s);
  while (s.peek().is_punct("*") || s.peek().is_punct("/")) {
    const Token& op = s.next();
    auto bin = std::make_shared<Expr>();
    bin->kind = Expr::Kind::binary;
    bin->name = op.text;
    bin->loc = op.loc;
    bin->args.push_back(lhs);
    bin->args.push_back(parse_unary(s));
    lhs = bin;
  }
  return lhs;
}

ExprPtr parse_expr(Stream& s) {
  auto lhs = parse_term(s);
  while (s.peek().is_punct("+") || s.peek().is_punct("-")) {
    const Token& op = s.next();
    auto bin = std::make_shared<Expr>();
    bin->kind = Expr::Kind::binary;
    bin->name = op.text;
    bin->loc = op.loc;
    bin->args.push_back(lhs);
    bin->args.push_back(parse_term(s));
    lhs = bin;
  }
  return lhs;
}

/// A card value: bare (signed) number, bare identifier, or a braced/quoted
/// expression ({...} or '...').
ExprPtr parse_value(Stream& s) {
  const Token& t = s.peek();
  if (t.is_punct("{") || t.is_punct("'")) {
    const std::string close = t.text == "{" ? "}" : "'";
    s.next();
    auto inner = parse_expr(s);
    if (!s.peek().is_punct(close.c_str()))
      throw NetlistError(s.peek().loc, "expected '" + close + "' closing expression");
    s.next();
    return inner;
  }
  if (t.is_punct("-") || t.is_punct("+")) {
    const bool negate = t.text == "-";
    const SourceLoc loc = t.loc;
    s.next();
    const Token& num = s.peek();
    if (num.kind != TokKind::number)
      throw NetlistError(num.loc, "expected a number after sign");
    s.next();
    return make_number(negate ? -num.value : num.value, loc);
  }
  if (t.kind == TokKind::number) {
    s.next();
    return make_number(t.value, t.loc);
  }
  if (t.kind == TokKind::ident) {
    s.next();
    auto id = std::make_shared<Expr>();
    id->kind = Expr::Kind::ident;
    id->name = t.text;
    id->raw = t.raw;
    id->loc = t.loc;
    return id;
  }
  throw NetlistError(t.loc, "expected a value (number, name or {expr}), got '" +
                                (t.raw.empty() ? "end of line" : t.raw) + "'");
}

// --- Card parsing ----------------------------------------------------------

/// A "plain" (positional) argument: an identifier or number not followed by
/// '=' — node names, model names, subckt names.
bool at_plain_arg(const Stream& s) {
  const Token& t = s.peek();
  if (t.kind != TokKind::ident && t.kind != TokKind::number) return false;
  return !s.peek(1).is_punct("=");
}

std::string take_name_arg(Stream& s, const char* what) {
  const Token& t = s.peek();
  if (t.kind != TokKind::ident && t.kind != TokKind::number)
    throw NetlistError(t.loc, std::string("expected ") + what + ", got '" +
                                  (t.raw.empty() ? "end of line" : t.raw) + "'");
  s.next();
  return name_text(t);
}

std::vector<std::pair<std::string, ExprPtr>> parse_kv_pairs(Stream& s) {
  std::vector<std::pair<std::string, ExprPtr>> pairs;
  while (!s.at_line_end()) {
    const Token& key = s.peek();
    if (key.kind != TokKind::ident || !s.peek(1).is_punct("="))
      throw NetlistError(key.loc, "expected name=value, got '" + key.raw + "'");
    s.next();
    s.next();  // '='
    pairs.emplace_back(key.text, parse_value(s));
  }
  return pairs;
}

class Parser {
 public:
  Parser(std::vector<Token> toks, std::string filename)
      : s_(std::move(toks)), file_(std::move(filename)) {}

  Deck run() {
    deck_.file = file_;
    deck_.title = default_title(file_);
    while (s_.peek().kind != TokKind::eof) {
      if (s_.peek().kind == TokKind::eol) {
        s_.next();
        continue;
      }
      const Token& t = s_.peek();
      if (t.kind != TokKind::ident)
        throw NetlistError(t.loc, "expected a card or directive, got '" + t.raw + "'");
      if (t.text[0] == '.') {
        if (t.text == ".end") return deck_;
        parse_directive();
      } else {
        deck_.cards.push_back(parse_device(top_names_));
      }
    }
    return deck_;
  }

 private:
  static std::string default_title(const std::string& path) {
    const std::size_t slash = path.find_last_of("/\\");
    std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
    return stem;
  }

  void check_unique(std::unordered_set<std::string>& seen, const std::string& name,
                    const char* what, const SourceLoc& loc) {
    if (!seen.insert(name).second)
      throw NetlistError(loc, std::string("duplicate ") + what + " '" + name + "'");
  }

  DeviceCard parse_device(std::unordered_set<std::string>& scope_names) {
    const Token& head = s_.next();
    DeviceCard card;
    card.name = head.text;
    card.loc = head.loc;
    check_unique(scope_names, card.name, "device", card.loc);

    switch (head.text[0]) {
      case 'r':
      case 'c': {
        card.kind = head.text[0] == 'r' ? DeviceCard::Kind::resistor
                                        : DeviceCard::Kind::capacitor;
        card.nodes.push_back(take_name_arg(s_, "a node name"));
        card.nodes.push_back(take_name_arg(s_, "a node name"));
        card.value = parse_value(s_);
        break;
      }
      case 'v': {
        card.kind = DeviceCard::Kind::vsource;
        card.nodes.push_back(take_name_arg(s_, "a node name"));
        card.nodes.push_back(take_name_arg(s_, "a node name"));
        if (s_.peek().kind == TokKind::ident && s_.peek().text == "dc") s_.next();
        // The DC value may be omitted when a waveform follows (the
        // operating point then uses the waveform's t = 0 value).
        if (!at_waveform(s_)) card.value = parse_value(s_);
        if (s_.peek().kind == TokKind::ident && s_.peek().text == "ac") {
          s_.next();
          card.ac = parse_value(s_);
        }
        if (at_waveform(s_)) parse_waveform(card);
        break;
      }
      case 'i': {
        card.kind = DeviceCard::Kind::isource;
        card.nodes.push_back(take_name_arg(s_, "a node name"));
        card.nodes.push_back(take_name_arg(s_, "a node name"));
        if (s_.peek().kind == TokKind::ident && s_.peek().text == "dc") s_.next();
        card.value = parse_value(s_);
        break;
      }
      case 'm': {
        card.kind = DeviceCard::Kind::mosfet;
        std::vector<std::string> plain;
        while (at_plain_arg(s_)) plain.push_back(name_text(s_.next()));
        if (plain.size() != 4 && plain.size() != 5)
          throw NetlistError(card.loc,
                             "MOSFET card needs 'd g s [b] model', got " +
                                 std::to_string(plain.size()) + " positional args");
        card.model = plain.back();
        plain.pop_back();
        if (plain.size() == 4) plain.pop_back();  // bulk: accepted, ignored
        card.nodes = std::move(plain);
        card.params = parse_kv_pairs(s_);
        if (!card.param("w") || !card.param("l"))
          throw NetlistError(card.loc, "MOSFET card needs w= and l= parameters");
        break;
      }
      case 'd': {
        card.kind = DeviceCard::Kind::diode;
        card.nodes.push_back(take_name_arg(s_, "a node name"));
        card.nodes.push_back(take_name_arg(s_, "a node name"));
        if (at_plain_arg(s_)) card.model = s_.next().text;
        card.params = parse_kv_pairs(s_);
        break;
      }
      case 'g': {
        card.kind = DeviceCard::Kind::vccs;
        for (int i = 0; i < 4; ++i)
          card.nodes.push_back(take_name_arg(s_, "a node name"));
        card.value = parse_value(s_);
        break;
      }
      case 'x': {
        card.kind = DeviceCard::Kind::subckt;
        std::vector<std::string> plain;
        while (at_plain_arg(s_)) plain.push_back(name_text(s_.next()));
        if (plain.size() < 2)
          throw NetlistError(card.loc,
                             "subcircuit instance needs nodes and a subckt name");
        card.model = plain.back();
        plain.pop_back();
        card.nodes = std::move(plain);
        card.params = parse_kv_pairs(s_);
        break;
      }
      default:
        throw NetlistError(card.loc,
                           "unrecognized card '" + head.raw +
                               "' (expected R/C/V/I/M/D/G/X or a directive)");
    }
    s_.expect_eol(("'" + head.text + "' card").c_str());
    return card;
  }

  /// Is the next token a waveform keyword opening its argument list?
  bool at_waveform(const Stream& s) const {
    const Token& t = s.peek();
    if (t.kind != TokKind::ident) return false;
    if (t.text != "pulse" && t.text != "pwl" && t.text != "sin") return false;
    return s.peek(1).is_punct("(");
  }

  /// `pulse(...)` / `pwl(...)` / `sin(...)`: values separated by spaces or
  /// commas (classic SPICE accepts both inside waveform parentheses).
  void parse_waveform(DeviceCard& card) {
    const Token& head = s_.next();
    card.wave = head.text;
    card.wave_loc = head.loc;
    s_.next();  // '('
    while (!s_.peek().is_punct(")")) {
      if (s_.peek().is_punct(",")) {
        s_.next();
        continue;
      }
      if (s_.at_line_end())
        throw NetlistError(s_.peek().loc,
                           "expected ')' closing " + card.wave + "(...)");
      card.wave_args.push_back(parse_value(s_));
    }
    s_.next();  // ')'
  }

  void parse_directive() {
    const Token& head = s_.next();
    const std::string& d = head.text;

    if (d == ".title") {
      deck_.title = s_.next().raw;
      s_.expect_eol(".title");
    } else if (d == ".param") {
      ParamDef def;
      def.loc = head.loc;
      def.name = take_name_arg(s_, "a parameter name");
      check_unique(param_names_, def.name, "parameter", def.loc);
      if (!s_.peek().is_punct("="))
        throw NetlistError(s_.peek().loc, "expected '=' in .param");
      s_.next();
      def.value = s_.peek().is_punct("{") || s_.peek().is_punct("'")
                      ? parse_value(s_)
                      : parse_expr(s_);
      s_.expect_eol(".param");
      deck_.params.push_back(std::move(def));
    } else if (d == ".var") {
      VarDef def;
      def.loc = head.loc;
      const Token& name = s_.peek();
      def.name = take_name_arg(s_, "a variable name");
      def.raw = name.raw;
      check_unique(var_names_, def.name, "sizing variable", def.loc);
      def.lo = parse_value(s_);
      def.hi = parse_value(s_);
      if (!s_.at_line_end()) {
        const Token& scale = s_.next();
        if (scale.text == "log")
          def.log_scale = true;
        else if (scale.text == "lin")
          def.log_scale = false;
        else
          throw NetlistError(scale.loc, "expected 'log' or 'lin', got '" +
                                            scale.raw + "'");
      }
      s_.expect_eol(".var");
      deck_.vars.push_back(std::move(def));
    } else if (d == ".model") {
      ModelDef def;
      def.loc = head.loc;
      def.name = take_name_arg(s_, "a model name");
      check_unique(model_names_, def.name, "model", def.loc);
      const Token& pol = s_.peek();
      const std::string polarity = take_name_arg(s_, "'nmos', 'pmos' or 'd'");
      if (polarity == "nmos")
        def.nmos = true;
      else if (polarity == "pmos")
        def.nmos = false;
      else if (polarity == "d")
        def.diode = true;
      else
        throw NetlistError(pol.loc,
                           "model kind must be 'nmos', 'pmos' or 'd'");
      def.overrides = parse_kv_pairs(s_);
      s_.expect_eol(".model");
      deck_.models.push_back(std::move(def));
    } else if (d == ".subckt") {
      Subckt sub;
      sub.loc = head.loc;
      sub.name = take_name_arg(s_, "a subckt name");
      if (deck_.subckts.count(sub.name) != 0)
        throw NetlistError(sub.loc, "duplicate subckt '" + sub.name + "'");
      while (at_plain_arg(s_)) sub.ports.push_back(name_text(s_.next()));
      if (sub.ports.empty())
        throw NetlistError(sub.loc, "subckt '" + sub.name + "' has no ports");
      sub.defaults = parse_kv_pairs(s_);
      s_.expect_eol(".subckt");
      std::unordered_set<std::string> local_names;
      for (;;) {
        while (s_.peek().kind == TokKind::eol) s_.next();
        const Token& t = s_.peek();
        if (t.kind == TokKind::eof)
          throw NetlistError(sub.loc, "subckt '" + sub.name + "' missing .ends");
        if (t.kind == TokKind::ident && t.text == ".ends") {
          s_.next();
          s_.skip_to_eol();
          break;
        }
        if (t.kind == TokKind::ident && t.text[0] == '.')
          throw NetlistError(t.loc, "directive '" + t.raw +
                                        "' not allowed inside .subckt");
        sub.cards.push_back(parse_device(local_names));
      }
      deck_.subckts.emplace(sub.name, std::move(sub));
    } else if (d == ".ends") {
      throw NetlistError(head.loc, ".ends without matching .subckt");
    } else if (d == ".ac") {
      const Token& mode = s_.peek();
      if (take_name_arg(s_, "'dec'") != "dec")
        throw NetlistError(mode.loc, "only '.ac dec <pts> <f_lo> <f_hi>' is supported");
      deck_.ac.present = true;
      deck_.ac.loc = head.loc;
      deck_.ac.per_decade = parse_value(s_);
      deck_.ac.f_lo = parse_value(s_);
      deck_.ac.f_hi = parse_value(s_);
      s_.expect_eol(".ac");
    } else if (d == ".tran") {
      if (deck_.tran.present)
        throw NetlistError(head.loc, "duplicate .tran directive");
      deck_.tran.present = true;
      deck_.tran.loc = head.loc;
      deck_.tran.tstep = parse_value(s_);
      deck_.tran.tstop = parse_value(s_);
      while (!s_.at_line_end()) {
        const Token& flag = s_.next();
        if (flag.kind == TokKind::ident && flag.text == "fixed")
          deck_.tran.fixed_step = true;
        else if (flag.kind == TokKind::ident && flag.text == "be")
          deck_.tran.backward_euler = true;
        else
          throw NetlistError(flag.loc, "unknown .tran option '" + flag.raw +
                                           "' (supported: fixed, be)");
      }
      s_.expect_eol(".tran");
    } else if (d == ".ic") {
      do {
        IcDef ic;
        const Token& v = s_.peek();
        ic.loc = v.loc;
        if (v.kind != TokKind::ident || v.text != "v" ||
            !s_.peek(1).is_punct("("))
          throw NetlistError(v.loc, "expected v(<node>)=<value> in .ic");
        s_.next();
        s_.next();  // '('
        ic.node = take_name_arg(s_, "a node name");
        if (!s_.peek().is_punct(")"))
          throw NetlistError(s_.peek().loc, "expected ')' in .ic");
        s_.next();
        if (!s_.peek().is_punct("="))
          throw NetlistError(s_.peek().loc, "expected '=' in .ic");
        s_.next();
        ic.value = parse_value(s_);
        deck_.ics.push_back(std::move(ic));
      } while (!s_.at_line_end());
      s_.expect_eol(".ic");
    } else if (d == ".temp") {
      deck_.temperature = parse_value(s_);
      s_.expect_eol(".temp");
    } else if (d == ".spec") {
      deck_.specs.push_back(parse_spec(head.loc));
    } else if (d == ".corner") {
      CornerDef def;
      def.loc = head.loc;
      const Token& name = s_.peek();
      def.name = take_name_arg(s_, "a corner name");
      def.raw = name.raw;
      check_unique(corner_names_, def.name, "corner", def.loc);
      def.params = parse_kv_pairs(s_);
      s_.expect_eol(".corner");
      deck_.corners.push_back(std::move(def));
    } else if (d == ".mc") {
      if (deck_.mc.present)
        throw NetlistError(head.loc, "duplicate .mc directive");
      deck_.mc.present = true;
      deck_.mc.loc = head.loc;
      deck_.mc.samples = parse_value(s_);
      deck_.mc.params = parse_kv_pairs(s_);
      s_.expect_eol(".mc");
    } else if (d == ".expert") {
      ExpertDef def;
      def.loc = head.loc;
      const Token& filter = s_.peek();
      if (filter.is_punct("*")) {
        def.filter = "*";
        s_.next();
      } else if (filter.kind == TokKind::ident || filter.kind == TokKind::number) {
        // PDK names like "180nm" lex as a suffixed number; the raw text is
        // the filter.
        std::string f = filter.raw;
        std::transform(f.begin(), f.end(), f.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        def.filter = f;
        s_.next();
      } else {
        throw NetlistError(filter.loc, ".expert needs a PDK-name filter or '*'");
      }
      while (!s_.at_line_end()) {
        const Token& t = s_.peek();
        bool neg = false;
        if (t.is_punct("-")) {
          neg = true;
          s_.next();
        }
        const Token& num = s_.peek();
        if (num.kind != TokKind::number)
          throw NetlistError(num.loc, ".expert values must be numbers");
        s_.next();
        def.unit_x.push_back(neg ? -num.value : num.value);
      }
      s_.expect_eol(".expert");
      deck_.experts.push_back(std::move(def));
    } else {
      throw NetlistError(head.loc,
                         "unknown directive '" + head.raw +
                             "' (supported: .title .param .var .model "
                             ".subckt/.ends .ac .tran .ic .temp .spec "
                             ".corner .mc .expert .end)");
    }
  }

  /// Spec display unit: raw tokens concatenated up to the '='/'>='/'<='
  /// delimiter, so compound units ("V/us", "%") survive tokenization.
  std::string parse_spec_unit() {
    std::string unit;
    while (!s_.at_line_end() && !s_.peek().is_punct("=") &&
           !s_.peek().is_punct(">=") && !s_.peek().is_punct("<="))
      unit += s_.next().raw;
    return unit;
  }

  SpecDef parse_spec(const SourceLoc& loc) {
    SpecDef spec;
    spec.loc = loc;
    const Token& first = s_.peek();
    if (first.kind == TokKind::ident && first.text == "objective") {
      s_.next();
      spec.is_objective = true;
      for (const auto& existing : deck_.specs)
        if (existing.is_objective)
          throw NetlistError(loc, "duplicate .spec objective");
      spec.name = s_.next().raw;
      spec.unit = parse_spec_unit();
      if (!s_.peek().is_punct("="))
        throw NetlistError(s_.peek().loc,
                           "expected '= <measure expr>' in .spec objective");
      s_.next();
      spec.measure = parse_expr(s_);
      s_.expect_eol(".spec");
      return spec;
    }
    spec.name = s_.next().raw;
    spec.unit = parse_spec_unit();
    const Token& dir = s_.peek();
    if (dir.is_punct(">="))
      spec.is_lower_bound = true;
    else if (dir.is_punct("<="))
      spec.is_lower_bound = false;
    else
      throw NetlistError(dir.loc, "expected '>=' or '<=' in .spec constraint");
    s_.next();
    spec.bound = parse_value(s_);
    if (!s_.peek().is_punct("="))
      throw NetlistError(s_.peek().loc, "expected '= <measure expr>' in .spec");
    s_.next();
    spec.measure = parse_expr(s_);
    s_.expect_eol(".spec");
    return spec;
  }

  Stream s_;
  std::string file_;
  Deck deck_;
  std::unordered_set<std::string> top_names_;
  std::unordered_set<std::string> param_names_;
  std::unordered_set<std::string> var_names_;
  std::unordered_set<std::string> model_names_;
  std::unordered_set<std::string> corner_names_;
};

}  // namespace

// --- Expression evaluation -------------------------------------------------

double eval_expr(const Expr& e, const Scope& scope, const MeasureHook* hook) {
  switch (e.kind) {
    case Expr::Kind::number:
      return e.number;
    case Expr::Kind::ident: {
      if (auto v = scope.lookup(e.name)) return *v;
      throw NetlistError(e.loc, "undefined parameter or variable '" + e.raw + "'");
    }
    case Expr::Kind::negate:
      return -eval_expr(*e.args[0], scope, hook);
    case Expr::Kind::binary: {
      const double a = eval_expr(*e.args[0], scope, hook);
      const double b = eval_expr(*e.args[1], scope, hook);
      switch (e.name[0]) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        default: return a / b;
      }
    }
    case Expr::Kind::call: {
      auto arity = [&](std::size_t n) {
        if (e.args.size() != n)
          throw NetlistError(e.loc, "'" + e.name + "' expects " +
                                        std::to_string(n) + " argument(s), got " +
                                        std::to_string(e.args.size()));
      };
      auto arg = [&](std::size_t i) { return eval_expr(*e.args[i], scope, hook); };
      if (e.name == "sqrt") { arity(1); return std::sqrt(arg(0)); }
      if (e.name == "abs") { arity(1); return std::abs(arg(0)); }
      if (e.name == "exp") { arity(1); return std::exp(arg(0)); }
      if (e.name == "log") { arity(1); return std::log(arg(0)); }
      if (e.name == "pow") { arity(2); return std::pow(arg(0), arg(1)); }
      if (e.name == "min") { arity(2); return std::min(arg(0), arg(1)); }
      if (e.name == "max") { arity(2); return std::max(arg(0), arg(1)); }
      if (e.name == "cond") { arity(3); return arg(0) != 0.0 ? arg(1) : arg(2); }
      if (hook != nullptr) return hook->call(e);
      throw NetlistError(e.loc,
                         "unknown function '" + e.name +
                             "' (measure functions are only valid in .spec lines)");
    }
  }
  throw NetlistError(e.loc, "internal: bad expression node");
}

// --- Entry points ----------------------------------------------------------

Deck parse_netlist(const std::string& text, const std::string& filename) {
  KATO_OBS_SPAN("parse");
  return Parser(tokenize(text, filename), filename).run();
}

Deck parse_netlist_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::invalid_argument("parse_netlist_file: cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_netlist(ss.str(), path);
}

}  // namespace kato::net

#pragma once
// Run journal: KATO_RUN_LOG=<path|-> streams one self-contained JSON object
// per line (JSONL) describing each optimization run — a `run_begin` record
// with the circuit/node/seed/config, one record per BO iteration (proposals,
// acquisition values, eval wall-time, feasibility, best-so-far objective and
// constraint-violation vector, GP refit hyperparameters/NLL, warm-start
// hits) and a `run_end` summary carrying the full regret curve.  The events
// are emitted by bo/drivers and core/experiment; tools/kato_report.py turns
// one or two journals into Markdown convergence/latency reports.
//
// Writer contract: journal_write appends exactly one line under a mutex and
// flushes before releasing it, so concurrent runs (the experiment harness
// fans seeds across the pool) interleave whole lines, never fragments, and
// a killed process leaves a parseable prefix.  Every event carries a
// process-unique `run` id so interleaved runs can be demultiplexed.
//
// Like the counters and histograms, journaling is value-free: emitters only
// read optimizer state, so a seeded run is bit-identical with KATO_RUN_LOG
// on vs. off (pinned by obs_test).  KATO_RUN_LOG follows the KATO_SEEDS
// full-string discipline via sink_from_env: unset disables silently, a
// set-but-unusable value disables with a one-line stderr warning.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kato::obs {

namespace detail {
extern std::atomic<bool> g_journal_on;
}

/// One relaxed load; the only cost journaling adds when disabled.  Emitters
/// gate all event construction on this, so with the journal off the BO loop
/// never even formats a string.
inline bool journal_enabled() {
  return detail::g_journal_on.load(std::memory_order_acquire);
}

/// Open a journal session writing to `path` ("-" for stdout; files are
/// truncated).  Called by startup for KATO_RUN_LOG and by tests directly.
/// An unopenable path warns on stderr and leaves journaling disabled.
void journal_begin(const std::string& path);

/// Flush and close the session; returns the number of lines written (0 when
/// no session was open).  Safe to call redundantly.
std::size_t journal_end();

/// Append one pre-formatted JSON object as a single line (a trailing '\n'
/// is added) and flush.  Line-atomic under the writer mutex.  No-op when
/// disabled — but call sites should test journal_enabled() first and skip
/// building the line at all.
void journal_write(std::string_view line);

/// Process-unique id for one optimization run; stamped into every event the
/// run emits so concurrent runs can share one journal file.
std::uint64_t journal_next_run_id();

// --- JSON formatting helpers -----------------------------------------------
// Minimal builders for flat-ish event objects.  Numbers use %.17g (shortest
// round-trip for doubles); non-finite values — trace entries are +inf until
// the first feasible point — become JSON null, which json.load accepts and
// IEEE JSON emitters cannot represent any other way.

/// Escape for inclusion inside a JSON string literal (quotes not included).
std::string json_escape(std::string_view s);

/// "%.17g" for finite doubles, "null" otherwise.
std::string json_num(double v);

/// "[a,b,...]" via json_num.
std::string json_array(const std::vector<double>& v);

/// Incremental JSON object builder:
///   JsonObj o; o.str("event","run_begin").num("seed",5); journal_write(o.take());
class JsonObj {
 public:
  JsonObj() : s_("{") {}

  JsonObj& str(std::string_view key, std::string_view value) {
    return raw(key, '"' + json_escape(value) + '"');
  }
  JsonObj& num(std::string_view key, double value) {
    return raw(key, json_num(value));
  }
  JsonObj& uint(std::string_view key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObj& boolean(std::string_view key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  /// Pre-serialized value (an array or nested object).
  JsonObj& raw(std::string_view key, std::string_view value) {
    if (s_.size() > 1) s_ += ',';
    s_ += '"';
    s_ += json_escape(key);
    s_ += "\":";
    s_ += value;
    return *this;
  }

  /// Close the object and surrender the string (builder is spent).
  std::string take() {
    s_ += '}';
    return std::move(s_);
  }

 private:
  std::string s_;
};

}  // namespace kato::obs

#include "obs/journal.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>

namespace kato::obs {

namespace detail {
std::atomic<bool> g_journal_on{false};
}  // namespace detail

namespace {

/// Writer state, leaked like the registry so late emitters during static
/// teardown never touch a destroyed stream.
struct JournalState {
  std::mutex mu;
  std::ofstream file;
  std::ostream* os = nullptr;  ///< &file or &std::cout; null when closed
  std::size_t lines = 0;
};

JournalState* journal_state() {
  static JournalState* s = new JournalState;
  return s;
}

}  // namespace

void journal_begin(const std::string& path) {
  JournalState* s = journal_state();
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->os != nullptr) {  // end the previous session first
    s->os->flush();
    if (s->file.is_open()) s->file.close();
    s->os = nullptr;
  }
  s->lines = 0;
  if (path == "-") {
    s->os = &std::cout;
  } else {
    // Open (and truncate) eagerly so a run killed before its first event
    // still leaves a well-defined — empty — journal, and so a bad path
    // fails loudly at startup instead of at the first iteration.
    s->file.open(path, std::ios::trunc);
    if (!s->file) {
      std::fprintf(stderr,
                   "KATO_RUN_LOG: cannot write '%s'; journal disabled\n",
                   path.c_str());
      return;
    }
    s->os = &s->file;
  }
  // Release pairs with journal_enabled()'s acquire: an emitter that sees
  // the flag also sees the open stream.
  detail::g_journal_on.store(true, std::memory_order_release);
}

std::size_t journal_end() {
  JournalState* s = journal_state();
  detail::g_journal_on.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->os == nullptr) return 0;
  s->os->flush();
  if (s->file.is_open()) s->file.close();
  s->os = nullptr;
  return s->lines;
}

void journal_write(std::string_view line) {
  if (!journal_enabled()) return;
  JournalState* s = journal_state();
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->os == nullptr) return;  // lost a race with journal_end
  s->os->write(line.data(), static_cast<std::streamsize>(line.size()));
  s->os->put('\n');
  // Flush inside the lock: the line is durably on its way before the next
  // writer runs, so a kill at any instant truncates at a line boundary of
  // the stream buffer, never mid-interleave.
  s->os->flush();
  s->lines += 1;
}

std::uint64_t journal_next_run_id() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_array(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    out += json_num(v[i]);
  }
  out += ']';
  return out;
}

}  // namespace kato::obs

#include "obs/obs.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/journal.hpp"

namespace kato::obs {

namespace {

/// Registry field table: keeps SimStats members, their JSON names and the
/// atomic totals in one place so merge/dump/lookup cannot drift apart.
struct SimField {
  const char* name;
  std::uint64_t SimStats::*member;
};

constexpr SimField k_sim_fields[] = {
    {"newton_solves", &SimStats::newton_solves},
    {"newton_iters", &SimStats::newton_iters},
    {"damping_clamps", &SimStats::damping_clamps},
    {"gmin_rungs", &SimStats::gmin_rungs},
    {"dc_restarts", &SimStats::dc_restarts},
    {"dc_homotopy_escalations", &SimStats::dc_homotopy_escalations},
    {"dc_pseudo_transients", &SimStats::dc_pseudo_transients},
    {"lu_first_factors", &SimStats::lu_first_factors},
    {"lu_refactors", &SimStats::lu_refactors},
    {"lu_pivot_fallbacks", &SimStats::lu_pivot_fallbacks},
    {"ac_points", &SimStats::ac_points},
    {"ac_refactors", &SimStats::ac_refactors},
    {"tran_steps_accepted", &SimStats::tran_steps_accepted},
    {"tran_steps_rejected", &SimStats::tran_steps_rejected},
    {"tran_be_steps", &SimStats::tran_be_steps},
    {"tran_newton_rejects", &SimStats::tran_newton_rejects},
    {"tran_stepfloor_restarts", &SimStats::tran_stepfloor_restarts},
    {"tran_device_fallbacks", &SimStats::tran_device_fallbacks},
    {"deadline_kills", &SimStats::deadline_kills},
    {"device_table_hits", &SimStats::device_table_hits},
    {"device_table_misses", &SimStats::device_table_misses},
};
constexpr std::size_t k_n_sim = sizeof(k_sim_fields) / sizeof(k_sim_fields[0]);

constexpr const char* k_bo_names[] = {
    "gp_fits",   "gp_fit_iters", "gp_warm_starts",    "proposal_batches",
    "proposals", "evals",        "eval_failures",     "fail_dc",
    "fail_ac",   "fail_tran",    "fail_measure",      "gp_jitter_retries",
    "faults_injected",
};
constexpr std::size_t k_n_bo = static_cast<std::size_t>(BoCounter::count_);
static_assert(sizeof(k_bo_names) / sizeof(k_bo_names[0]) == k_n_bo);

/// Process-wide counter registry.  Leaked (never destroyed) so per-thread
/// buffer destructors and late increments can touch it at any point of
/// static teardown without ordering hazards.
struct Registry {
  std::atomic<std::uint64_t> sim[k_n_sim] = {};
  std::atomic<std::uint64_t> bo[k_n_bo] = {};
  std::optional<std::string> sink;  ///< parsed KATO_STATS, set at startup
};

Registry* registry() {
  static Registry* r = new Registry;
  return r;
}

// --- Histogram state -------------------------------------------------------

constexpr std::size_t k_n_stages = static_cast<std::size_t>(Stage::count_);
constexpr const char* k_stage_names[k_n_stages] = {
    "dc", "ac", "tran", "eval", "gp_fit", "acquisition",
};

/// 2^(i/12) for i in 0..11: the geometric sub-bucket boundaries inside one
/// octave, written out as literals so bucketing never calls libm (exp2/log2
/// may differ across libm builds; constants plus IEEE compares cannot).
constexpr double k_sub_bounds[k_hist_sub] = {
    1.0,
    1.0594630943592953,
    1.122462048309373,
    1.189207115002721,
    1.2599210498948732,
    1.3348398541700344,
    1.4142135623730951,
    1.4983070768766815,
    1.5874010519681994,
    1.681792830507429,
    1.7817974362806785,
    1.8877486253633868,
};

struct HistShard;

/// Shared histogram state, leaked like the registry.  `retired` holds the
/// totals of shards whose threads have exited; live shards are summed on
/// top at snapshot time.
struct HistState {
  std::mutex mu;
  std::vector<HistShard*> shards;
  std::uint64_t retired[k_n_stages][k_hist_buckets] = {};
  std::uint64_t retired_sum[k_n_stages] = {};
};

HistState* hist_state() {
  static HistState* h = new HistState;
  return h;
}

thread_local HistShard* t_hist_ptr = nullptr;

/// Per-thread histogram shard: written only by its owner with relaxed
/// load+store pairs (a plain add on the owning core), read by snapshots
/// under the state mutex.  Registration mirrors ThreadBuf.
struct HistShard {
  std::atomic<std::uint64_t> cell[k_n_stages][k_hist_buckets] = {};
  std::atomic<std::uint64_t> sum[k_n_stages] = {};

  HistShard() {
    HistState* h = hist_state();
    std::lock_guard<std::mutex> lock(h->mu);
    h->shards.push_back(this);
    t_hist_ptr = this;
  }

  ~HistShard() {
    HistState* h = hist_state();
    std::lock_guard<std::mutex> lock(h->mu);
    for (std::size_t s = 0; s < k_n_stages; ++s) {
      for (int b = 0; b < k_hist_buckets; ++b)
        h->retired[s][b] += cell[s][b].load(std::memory_order_relaxed);
      h->retired_sum[s] += sum[s].load(std::memory_order_relaxed);
    }
    for (auto it = h->shards.begin(); it != h->shards.end(); ++it)
      if (*it == this) {
        h->shards.erase(it);
        break;
      }
    t_hist_ptr = nullptr;
  }
};

HistShard& local_hist() {
  if (t_hist_ptr != nullptr) return *t_hist_ptr;
  thread_local HistShard shard;
  return shard;
}

// --- Trace state -----------------------------------------------------------

/// One recorded event.  `name` must point at a string literal.
struct TraceEvent {
  const char* name;
  std::uint64_t t0;  ///< ns, steady clock
  std::uint64_t t1;  ///< ns; == t0 for counter samples
  double value;      ///< counter samples only
  std::uint32_t tid;
  char ph;  ///< 'X' complete span, 'C' counter
};

struct ThreadBuf;

/// Shared tracer state, leaked for the same teardown-ordering reason as the
/// registry.  `mu` guards everything except the owning-thread appends to a
/// ThreadBuf's event vector (see the quiescence contract in obs.hpp).
struct TraceState {
  std::mutex mu;
  std::vector<TraceEvent> events;           ///< flushed/collected events
  std::vector<ThreadBuf*> bufs;             ///< live per-thread buffers
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
  std::string path;
  std::uint64_t t0 = 0;         ///< session start, ns
  std::uint32_t next_tid = 0;   ///< 0 is reserved for process-scope counters
  std::size_t flush_cap = 1 << 16;  ///< per-thread events before a flush
  std::size_t max_events = 1 << 22; ///< global cap; beyond it events drop
  std::uint64_t dropped = 0;
  bool session = false;          ///< between trace_begin and trace_end
  bool dump_at_exit = false;     ///< session came from KATO_TRACE
};

TraceState* trace_state() {
  static TraceState* s = new TraceState;
  return s;
}

thread_local std::string t_thread_name;
thread_local ThreadBuf* t_buf_ptr = nullptr;

/// Per-thread event buffer: registered under the state mutex on first use,
/// appended lock-free by its owner, spliced out under the mutex when full,
/// at thread exit, and at trace_end().
struct ThreadBuf {
  std::vector<TraceEvent> ev;
  std::uint32_t tid = 0;
  /// Snapshot of TraceState::flush_cap, kept here so the per-event hot path
  /// touches only this buffer.  Updated under the state mutex (trace_begin /
  /// the test hook), read unlocked by the owner — both writers run while no
  /// thread is emitting (the quiescence contract).
  std::size_t flush_cap = 1 << 16;

  ThreadBuf() {
    TraceState* s = trace_state();
    std::lock_guard<std::mutex> lock(s->mu);
    tid = ++s->next_tid;
    flush_cap = s->flush_cap;
    ev.reserve(flush_cap < 4096 ? flush_cap : 4096);
    s->bufs.push_back(this);
    if (!t_thread_name.empty()) s->thread_names.emplace_back(tid, t_thread_name);
    t_buf_ptr = this;
  }

  ~ThreadBuf() {
    TraceState* s = trace_state();
    std::lock_guard<std::mutex> lock(s->mu);
    splice_locked(*s);
    for (auto it = s->bufs.begin(); it != s->bufs.end(); ++it)
      if (*it == this) {
        s->bufs.erase(it);
        break;
      }
    t_buf_ptr = nullptr;
  }

  /// Move this buffer's events into the shared store (mutex held).
  void splice_locked(TraceState& s) {
    for (auto& e : ev) {
      if (s.events.size() >= s.max_events) {
        s.dropped += 1;
        continue;
      }
      s.events.push_back(e);
    }
    ev.clear();
  }
};

ThreadBuf& local_buf() {
  // Fast path: a plain thread_local pointer read, no init-guard branch —
  // this sits under every event on the tran per-timestep ticker.
  if (t_buf_ptr != nullptr) return *t_buf_ptr;
  thread_local ThreadBuf buf;
  return buf;
}

void push_event(TraceEvent e) {
  ThreadBuf& b = local_buf();
  e.tid = b.tid;
  b.ev.push_back(e);
  if (b.ev.size() >= b.flush_cap) {
    TraceState* s = trace_state();
    std::lock_guard<std::mutex> lock(s->mu);
    b.splice_locked(*s);
  }
}

void write_trace_json_locked(TraceState& s, std::size_t n_events) {
  std::ostream* os = &std::cout;
  std::ofstream file;
  if (s.path != "-") {
    file.open(s.path, std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "KATO_TRACE: cannot write '%s'; trace dropped\n",
                   s.path.c_str());
      return;
    }
    os = &file;
  }
  char buf[192];
  *os << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const char* text) {
    if (!first) *os << ",\n";
    first = false;
    *os << text;
  };
  for (const auto& [tid, name] : s.thread_names) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  tid, name.c_str());
    emit(buf);
  }
  for (std::size_t i = 0; i < n_events; ++i) {
    const TraceEvent& e = s.events[i];
    const double ts = static_cast<double>(e.t0 - s.t0) / 1000.0;
    if (e.ph == 'C') {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,"
                    "\"tid\":%u,\"args\":{\"value\":%g}}",
                    e.name, ts, e.tid, e.value);
    } else {
      const double dur = static_cast<double>(e.t1 - e.t0) / 1000.0;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":1,\"tid\":%u}",
                    e.name, ts, dur, e.tid);
    }
    emit(buf);
  }
  *os << "\n],\"displayTimeUnit\":\"ms\"";
  if (s.dropped > 0) *os << ",\"droppedEventCount\":" << s.dropped;
  *os << "}\n";
}

/// Startup/teardown hook: parses KATO_STATS/KATO_TRACE before main() runs
/// (no other translation unit calls into obs during static initialization)
/// and dumps at static destruction.  Function-local statics constructed
/// during main — the thread pool included — are destroyed before this, so
/// worker buffers are flushed by the time the final trace is written.
struct ObsBoot {
  ObsBoot() {
    registry()->sink = sink_from_env("KATO_STATS");
    if (auto path = sink_from_env("KATO_TRACE")) {
      trace_begin(*path);
      trace_state()->dump_at_exit = true;
    }
    if (auto path = sink_from_env("KATO_RUN_LOG")) journal_begin(*path);
  }
  ~ObsBoot() {
    journal_end();  // no-op unless a session is open
    if (trace_state()->dump_at_exit) trace_end();
    const auto& sink = registry()->sink;
    if (!sink) return;
    if (*sink == "-") {
      stats_write_json(std::cout);
      std::cout.flush();
    } else {
      std::ofstream os(*sink, std::ios::trunc);
      if (!os)
        std::fprintf(stderr, "KATO_STATS: cannot write '%s'; stats dropped\n",
                     sink->c_str());
      else
        stats_write_json(os);
    }
  }
};
ObsBoot g_boot;

}  // namespace

void SimStats::merge(const SimStats& o) {
  for (const auto& f : k_sim_fields) this->*(f.member) += o.*(f.member);
}

void bo_count(BoCounter c, std::uint64_t n) {
  registry()->bo[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
}

void record_sim(const SimStats& s) {
  Registry* r = registry();
  for (std::size_t i = 0; i < k_n_sim; ++i) {
    const std::uint64_t v = s.*(k_sim_fields[i].member);
    if (v != 0) r->sim[i].fetch_add(v, std::memory_order_relaxed);
  }
}

bool stats_enabled() { return registry()->sink.has_value(); }

void stats_write_json(std::ostream& os) {
  Registry* r = registry();
  os << "{\n";
  for (std::size_t i = 0; i < k_n_sim; ++i)
    os << "  \"" << k_sim_fields[i].name
       << "\": " << r->sim[i].load(std::memory_order_relaxed) << ",\n";
  for (std::size_t i = 0; i < k_n_bo; ++i)
    os << "  \"" << k_bo_names[i]
       << "\": " << r->bo[i].load(std::memory_order_relaxed) << ",\n";
  // Per-stage latency summaries: exact bucket-quantiles of the merged
  // histogram, in the same flat namespace so every consumer of this dump
  // (CI's json.load check, kato_report, stats_value-style greps) keeps
  // working with plain key lookups.
  for (std::size_t s = 0; s < k_n_stages; ++s) {
    const HistSnapshot h = hist_snapshot(static_cast<Stage>(s));
    const char* name = k_stage_names[s];
    os << "  \"hist_" << name << "_count\": " << h.count << ",\n"
       << "  \"hist_" << name << "_sum_ns\": " << h.sum_ns << ",\n"
       << "  \"hist_" << name << "_p50_ns\": " << h.quantile_ns(0.50)
       << ",\n"
       << "  \"hist_" << name << "_p90_ns\": " << h.quantile_ns(0.90)
       << ",\n"
       << "  \"hist_" << name << "_p99_ns\": " << h.quantile_ns(0.99)
       << (s + 1 < k_n_stages ? ",\n" : "\n");
  }
  os << "}\n";
}

std::uint64_t stats_value(const char* name) {
  Registry* r = registry();
  const std::string_view key(name);
  for (std::size_t i = 0; i < k_n_sim; ++i)
    if (key == k_sim_fields[i].name)
      return r->sim[i].load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < k_n_bo; ++i)
    if (key == k_bo_names[i]) return r->bo[i].load(std::memory_order_relaxed);
  return 0;
}

void stats_reset() {
  Registry* r = registry();
  for (auto& a : r->sim) a.store(0, std::memory_order_relaxed);
  for (auto& a : r->bo) a.store(0, std::memory_order_relaxed);
  HistState* h = hist_state();
  std::lock_guard<std::mutex> lock(h->mu);
  for (std::size_t s = 0; s < k_n_stages; ++s) {
    for (int b = 0; b < k_hist_buckets; ++b) h->retired[s][b] = 0;
    h->retired_sum[s] = 0;
  }
  for (HistShard* sh : h->shards)
    for (std::size_t s = 0; s < k_n_stages; ++s) {
      for (int b = 0; b < k_hist_buckets; ++b)
        sh->cell[s][b].store(0, std::memory_order_relaxed);
      sh->sum[s].store(0, std::memory_order_relaxed);
    }
}

// --- Latency histograms ----------------------------------------------------

const char* stage_name(Stage s) {
  return k_stage_names[static_cast<std::size_t>(s)];
}

int hist_bucket_index(std::uint64_t ns) {
  if (ns == 0) return 0;
  const int octave = 63 - std::countl_zero(ns);
  // ratio in [1, 2): exact for ns < 2^53; above that the double rounding is
  // still a pure function of ns, which is all determinism needs.
  const double ratio = static_cast<double>(ns) /
                       static_cast<double>(std::uint64_t{1} << octave);
  int sub = k_hist_sub - 1;
  while (sub > 0 && ratio < k_sub_bounds[sub]) --sub;
  return octave * k_hist_sub + sub;
}

std::uint64_t hist_bucket_lower_ns(int bucket) {
  const int octave = bucket / k_hist_sub;
  const int sub = bucket % k_hist_sub;
  const double lower =
      static_cast<double>(std::uint64_t{1} << octave) * k_sub_bounds[sub];
  // The top octave's upper sub-buckets exceed 2^64 ns (>580 years); clamp
  // instead of hitting an out-of-range double->integer conversion.
  if (lower >= 18446744073709551615.0) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(lower);
}

void hist_record(Stage s, std::uint64_t ns) {
  HistShard& h = local_hist();
  const std::size_t si = static_cast<std::size_t>(s);
  auto& cell = h.cell[si][hist_bucket_index(ns)];
  cell.store(cell.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  auto& sum = h.sum[si];
  sum.store(sum.load(std::memory_order_relaxed) + ns,
            std::memory_order_relaxed);
}

HistSnapshot hist_snapshot(Stage s) {
  HistSnapshot out;
  HistState* h = hist_state();
  const std::size_t si = static_cast<std::size_t>(s);
  std::lock_guard<std::mutex> lock(h->mu);
  for (int b = 0; b < k_hist_buckets; ++b) out.buckets[b] = h->retired[si][b];
  out.sum_ns = h->retired_sum[si];
  for (HistShard* sh : h->shards) {
    for (int b = 0; b < k_hist_buckets; ++b)
      out.buckets[b] += sh->cell[si][b].load(std::memory_order_relaxed);
    out.sum_ns += sh->sum[si].load(std::memory_order_relaxed);
  }
  for (int b = 0; b < k_hist_buckets; ++b) out.count += out.buckets[b];
  return out;
}

std::uint64_t HistSnapshot::quantile_ns(double q) const {
  if (count == 0) return 0;
  const double rd = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(rd);
  if (static_cast<double>(rank) < rd) ++rank;  // ceil
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cum = 0;
  for (int b = 0; b < k_hist_buckets; ++b) {
    cum += buckets[b];
    if (cum >= rank) return hist_bucket_lower_ns(b);
  }
  return hist_bucket_lower_ns(k_hist_buckets - 1);
}

void expose_metrics(std::ostream& os) {
  Registry* r = registry();
  const auto counter = [&os](const char* name, std::uint64_t v) {
    os << "# TYPE kato_" << name << "_total counter\n"
       << "kato_" << name << "_total " << v << "\n";
  };
  for (std::size_t i = 0; i < k_n_sim; ++i)
    counter(k_sim_fields[i].name, r->sim[i].load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < k_n_bo; ++i)
    counter(k_bo_names[i], r->bo[i].load(std::memory_order_relaxed));
  os << "# TYPE kato_stage_latency_seconds histogram\n";
  char le[48];
  for (std::size_t s = 0; s < k_n_stages; ++s) {
    const HistSnapshot h = hist_snapshot(static_cast<Stage>(s));
    const char* name = k_stage_names[s];
    // Cumulative series over the occupied buckets only (sparse exposition
    // is legal as long as `le` increases); `le` is each bucket's upper
    // bound, i.e. the next bucket's lower bound, in seconds.
    std::uint64_t cum = 0;
    for (int b = 0; b < k_hist_buckets; ++b) {
      if (h.buckets[b] == 0) continue;
      cum += h.buckets[b];
      if (b + 1 < k_hist_buckets) {
        std::snprintf(le, sizeof(le), "%.9g",
                      static_cast<double>(hist_bucket_lower_ns(b + 1)) / 1e9);
        os << "kato_stage_latency_seconds_bucket{stage=\"" << name
           << "\",le=\"" << le << "\"} " << cum << "\n";
      }
    }
    os << "kato_stage_latency_seconds_bucket{stage=\"" << name
       << "\",le=\"+Inf\"} " << h.count << "\n";
    std::snprintf(le, sizeof(le), "%.9g",
                  static_cast<double>(h.sum_ns) / 1e9);
    os << "kato_stage_latency_seconds_sum{stage=\"" << name << "\"} " << le
       << "\n"
       << "kato_stage_latency_seconds_count{stage=\"" << name << "\"} "
       << h.count << "\n";
  }
}

std::optional<std::string> parse_sink_path(const char* value) {
  if (value == nullptr || *value == '\0') return std::nullopt;
  const std::string s(value);
  // Full-string discipline (KATO_SEEDS precedent): a path with leading or
  // trailing whitespace is a shell-quoting accident, not a request — reject
  // the whole value instead of trimming a guess out of it.
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  if (is_space(s.front()) || is_space(s.back())) return std::nullopt;
  return s;
}

std::optional<std::string> sink_from_env(const char* var) {
  const char* value = std::getenv(var);
  if (value == nullptr) return std::nullopt;
  auto parsed = parse_sink_path(value);
  if (!parsed)
    std::fprintf(stderr,
                 "%s: ignoring unusable path '%s' (empty or surrounded by "
                 "whitespace); feature disabled\n",
                 var, value);
  return parsed;
}

// --- Tracer ----------------------------------------------------------------

namespace detail {

std::atomic<bool> g_trace_on{false};
#if defined(__x86_64__)
std::uint64_t g_tsc_t0 = 0;
std::uint64_t g_tsc_ns0 = 0;
double g_tsc_ns_per_tick = 0.0;
#endif

void push_span(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns) {
  push_event(TraceEvent{name, t0_ns, t1_ns, 0.0, 0, 'X'});
}

void push_span_batch(const SpanMark* marks, std::size_t n,
                     std::uint64_t t0_ns) {
  ThreadBuf& b = local_buf();
  b.ev.reserve(b.ev.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    b.ev.push_back(TraceEvent{marks[i].name, t0_ns, marks[i].t_ns, 0.0,
                              b.tid, 'X'});
    t0_ns = marks[i].t_ns;
  }
  if (b.ev.size() >= b.flush_cap) {
    TraceState* s = trace_state();
    std::lock_guard<std::mutex> lock(s->mu);
    b.splice_locked(*s);
  }
}

void push_counter(const char* name, double value) {
  const std::uint64_t now = trace_now_ns();
  push_event(TraceEvent{name, now, now, value, 0, 'C'});
}

}  // namespace detail

#if defined(__x86_64__)
/// One-time TSC-vs-steady_clock calibration over a ~2 ms spin.  Runs inside
/// the first trace_begin() — before the session flag is published, so no
/// emitter ever reads an uncalibrated conversion — and only when a session
/// actually starts (untraced processes never pay the spin).
void calibrate_tsc_locked() {
  if (detail::g_tsc_ns_per_tick != 0.0) return;
  const auto steady_ns = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  const std::uint64_t tsc_a = __builtin_ia32_rdtsc();
  const std::uint64_t ns_a = steady_ns();
  std::uint64_t ns_b = ns_a;
  while (ns_b - ns_a < 2000000) ns_b = steady_ns();
  const std::uint64_t tsc_b = __builtin_ia32_rdtsc();
  if (tsc_b <= tsc_a) return;  // non-invariant TSC: keep steady_clock
  detail::g_tsc_t0 = tsc_a;
  detail::g_tsc_ns0 = ns_a;
  detail::g_tsc_ns_per_tick =
      static_cast<double>(ns_b - ns_a) / static_cast<double>(tsc_b - tsc_a);
}
#endif

void trace_begin(const std::string& path) {
  TraceState* s = trace_state();
  {
    std::lock_guard<std::mutex> lock(s->mu);
#if defined(__x86_64__)
    calibrate_tsc_locked();
#endif
    s->events.clear();
    for (ThreadBuf* b : s->bufs) {
      b->ev.clear();
      b->flush_cap = s->flush_cap;
    }
    s->path = path;
    s->t0 = trace_now_ns();
    s->dropped = 0;
    s->session = true;
  }
  // Release pairs with trace_enabled()'s acquire: an emitter that sees the
  // flag also sees the calibration and the session state above.
  detail::g_trace_on.store(true, std::memory_order_release);
}

std::size_t trace_end() {
  TraceState* s = trace_state();
  detail::g_trace_on.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s->mu);
  if (!s->session) return 0;
  for (ThreadBuf* b : s->bufs) b->splice_locked(*s);
  const std::size_t n = s->events.size();
  write_trace_json_locked(*s, n);
  s->events.clear();
  s->session = false;
  s->dump_at_exit = false;
  return n;
}

void trace_pause() {
  detail::g_trace_on.store(false, std::memory_order_relaxed);
}

void trace_resume() {
  if (trace_state()->session)
    detail::g_trace_on.store(true, std::memory_order_release);
}

void name_this_thread(std::string name) {
  t_thread_name = std::move(name);
  // If this thread already registered a buffer, label it now; otherwise
  // ThreadBuf's constructor picks the name up with the first event.
  if (t_buf_ptr != nullptr) {
    TraceState* s = trace_state();
    std::lock_guard<std::mutex> lock(s->mu);
    s->thread_names.emplace_back(t_buf_ptr->tid, t_thread_name);
  }
}

void set_trace_buffer_capacity_for_test(std::size_t cap) {
  TraceState* s = trace_state();
  std::lock_guard<std::mutex> lock(s->mu);
  s->flush_cap = cap == 0 ? 1 : cap;
  for (ThreadBuf* b : s->bufs) b->flush_cap = s->flush_cap;
}

}  // namespace kato::obs

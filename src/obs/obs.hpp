#pragma once
// Runtime observability: solver/BO counters and a scoped-span tracer.
//
// The BO driver cannot schedule, overlap or cache evaluation work it cannot
// measure, so this subsystem gives every layer of the stack a way to report
// what it did without perturbing what it computes:
//
//   * SimStats — plain per-analysis counters (Newton iterations, damping
//     clamps, LU first-factor vs numeric-refactor vs pivot-fallback, AC
//     refactors, transient accept/reject/BE, device-table cache hits).
//     Accumulated as ordinary integer adds next to the arithmetic they
//     describe — they never feed back into it, so every instrumented path
//     stays bit-identical to the uninstrumented one (pinned by obs_test).
//     DcResult/TranResult/AcSweep carry them per analysis;
//     NetlistCircuit::evaluate_single merges them per evaluation and folds
//     the total into a process-wide registry of relaxed atomics.  The
//     registry also holds the BO-side phase counters (GP fits and their
//     gradient iterations, warm-started refits, proposal batch sizes).
//     KATO_STATS=<path|-> dumps the registry as flat JSON at process exit.
//
//   * Tracer — scoped spans ("dc", "gp_fit", "pool_chunk", ...) recorded
//     into per-thread buffers and written as Chrome trace-event JSON
//     (chrome://tracing / Perfetto) when KATO_TRACE=<path> is set.  The
//     hot-path guard is one relaxed atomic load; with tracing off a span is
//     a null pointer store and nothing else, and with KATO_OBS_DISABLE
//     defined the KATO_OBS_SPAN macro compiles to nothing at all.  Span
//     names must be string literals (the buffer stores the pointer).
//
//   * Latency histograms — always-on log2-bucketed duration histograms per
//     pipeline stage (dc/ac/tran/eval/gp_fit/acquisition), recorded by the
//     KATO_OBS_STAGE scoped timer, summarized as exact bucket-quantiles in
//     the KATO_STATS dump and as a Prometheus text snapshot via
//     expose_metrics().  See the "Latency histograms" section below.
//
//   The run journal (KATO_RUN_LOG, per-BO-iteration JSONL) lives in the
//   sibling header obs/journal.hpp.
//
// Both environment variables follow the KATO_SEEDS full-string discipline:
// an unset variable disables the feature silently, a set-but-unusable value
// (empty, or with leading/trailing whitespace) disables it with a one-line
// stderr warning instead of guessing at a path.
//
// Threading: per-thread trace buffers are appended without locks by their
// owning thread and spliced into the shared store under a mutex when full,
// at thread exit, and at trace_end(); trace_end()/trace_begin() themselves
// must be called while no other thread is emitting events (the pool is
// parked between parallel_for calls, so every call site in the repo
// satisfies this).  The registry is relaxed atomics and needs no such care.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

namespace kato::obs {

/// Counters for one MNA analysis (one DC solve, transient run or AC sweep),
/// merged upward into per-evaluation totals and the process registry.  All
/// counters are value-free observers: incrementing them never reorders or
/// changes a floating-point operation.
struct SimStats {
  // Newton (DC rungs and transient corrector solves alike).
  std::uint64_t newton_solves = 0;    ///< newton() invocations
  std::uint64_t newton_iters = 0;     ///< total iterations across solves
  std::uint64_t damping_clamps = 0;   ///< iterations where max_step clamped
  std::uint64_t gmin_rungs = 0;       ///< continuation rungs walked
  std::uint64_t dc_restarts = 0;      ///< cold restarts at the first rung
  // DC recovery ladder (escalations past the gmin ladder).
  std::uint64_t dc_homotopy_escalations = 0;  ///< source-stepping runs
  std::uint64_t dc_pseudo_transients = 0;     ///< pseudo-transient fallbacks
  // Linear solves.  First/refactor split both paths: the dense path counts
  // each full LU as a refactor after its first, the sparse path counts
  // in-place numeric refactorizations; pivot fallbacks (a refactor that had
  // to re-pivot) exist only on the sparse path.
  std::uint64_t lu_first_factors = 0;
  std::uint64_t lu_refactors = 0;
  std::uint64_t lu_pivot_fallbacks = 0;
  // AC sweep.
  std::uint64_t ac_points = 0;        ///< frequency points solved
  std::uint64_t ac_refactors = 0;     ///< sparse numeric refactors after the first
  // Transient step control.
  std::uint64_t tran_steps_accepted = 0;
  std::uint64_t tran_steps_rejected = 0;  ///< LTE rejections
  std::uint64_t tran_be_steps = 0;        ///< steps integrated with backward Euler
  std::uint64_t tran_newton_rejects = 0;  ///< step retries after Newton failure
  // Transient recovery ladder.
  std::uint64_t tran_stepfloor_restarts = 0;  ///< hmin cuts + BE restarts
  std::uint64_t tran_device_fallbacks = 0;    ///< table -> analytic rebuilds
  // Deadline enforcement (KATO_EVAL_DEADLINE_MS): analyses killed because
  // the candidate's wall-clock budget ran out.
  std::uint64_t deadline_kills = 0;
  // Device-table cache (per-assembler lookups at construction).
  std::uint64_t device_table_hits = 0;
  std::uint64_t device_table_misses = 0;

  /// Field-wise sum of `o` into *this.
  void merge(const SimStats& o);
};

/// BO-side phase counters held only in the process registry (the BO loop
/// has no per-evaluation result struct to carry them).
enum class BoCounter : int {
  gp_fits,           ///< GaussianProcess::fit calls
  gp_fit_iters,      ///< LML gradient iterations actually run
  gp_warm_starts,    ///< surrogate refits warm-started from a previous fit
  proposal_batches,  ///< simulate_batch calls issued by the drivers
  proposals,         ///< candidate designs across those batches
  evals,             ///< NetlistCircuit single-condition evaluations
  eval_failures,     ///< ... that ended infeasible/non-converged
  // Failure-reason breakdown: which stage an evaluation died in.  Summed
  // they equal eval_failures; kato_report turns them into the per-stage
  // failure table.
  fail_dc,       ///< DC operating point did not converge
  fail_ac,       ///< AC sweep failed after a good DC point
  fail_tran,     ///< transient run failed after a good DC point
  fail_measure,  ///< simulation finished but a measurement was unusable
  // Robustness layer (src/util/fault.hpp).
  gp_jitter_retries,  ///< GP Cholesky factorizations that needed jitter
  faults_injected,    ///< KATO_FAULT firings across all sites
  count_
};

/// Add `n` to one registry counter (relaxed; callable from any thread).
void bo_count(BoCounter c, std::uint64_t n = 1);

/// Fold one evaluation's SimStats into the process registry (relaxed).
void record_sim(const SimStats& s);

/// True when KATO_STATS parsed to a usable sink (the registry always
/// accumulates; this only says whether it will be dumped at exit).
bool stats_enabled();

/// Write the registry snapshot as one flat JSON object.
void stats_write_json(std::ostream& os);

/// Current value of one registry counter by its JSON name ("newton_iters",
/// "gp_fits", ...); 0 for unknown names.  Test/diagnostic hook.
std::uint64_t stats_value(const char* name);

/// Zero every registry counter (tests).
void stats_reset();

// --- Environment parsing ---------------------------------------------------

/// Strict sink-path validation: nullptr (unset), empty, or any value with
/// leading/trailing whitespace yields nullopt; everything else — including
/// "-" for stdout — is returned verbatim.  Pure (no warning, no getenv);
/// the env readers below layer the one-line stderr warning on top.
std::optional<std::string> parse_sink_path(const char* value);

/// Read environment variable `var` through parse_sink_path, warning once on
/// stderr (and returning nullopt) when it is set but unusable.  Used for
/// KATO_STATS/KATO_TRACE at startup; exposed so tests can pin the
/// discipline with setenv/unsetenv like core_test pins KATO_SEEDS.
std::optional<std::string> sink_from_env(const char* var);

// --- Tracer ----------------------------------------------------------------

/// One step-boundary mark in a batched span chain (see emit_spans).
/// `name` must be a string literal; `t_ns` is the chain's next boundary.
struct SpanMark {
  const char* name;
  std::uint64_t t_ns;
};

namespace detail {
extern std::atomic<bool> g_trace_on;
#if defined(__x86_64__)
// TSC-to-ns calibration, written once inside trace_begin() before the
// g_trace_on release-store, read (after an acquire-load of the flag) by
// every emitter: ns = g_tsc_ns0 + (rdtsc - g_tsc_t0) * g_tsc_ns_per_tick.
// Zero ns_per_tick means "not calibrated, fall back to steady_clock".
extern std::uint64_t g_tsc_t0;
extern std::uint64_t g_tsc_ns0;
extern double g_tsc_ns_per_tick;
#endif
void push_span(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns);
void push_span_batch(const SpanMark* marks, std::size_t n,
                     std::uint64_t t0_ns);
void push_counter(const char* name, double value);
}  // namespace detail

/// One load (acquire, free on x86); the only cost tracing adds to a
/// disabled hot path.  The acquire pairs with trace_begin's release-store
/// so an emitter that sees the flag also sees the clock calibration.
inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_acquire);
}

/// Monotonic timestamp for manual span construction (tran's per-timestep
/// ticker reuses one call as both the end of a step and the start of the
/// next, halving the clock reads on that hot loop).  On x86-64 an active
/// trace session reads the TSC (~17 ns here vs ~34 ns for steady_clock) —
/// the invariant TSC is the kernel's own clocksource on the machines this
/// targets, and trace_begin calibrated it against steady_clock.
inline std::uint64_t trace_now_ns() {
#if defined(__x86_64__)
  if (detail::g_tsc_ns_per_tick != 0.0)
    return detail::g_tsc_ns0 +
           static_cast<std::uint64_t>(
               static_cast<double>(__builtin_ia32_rdtsc() -
                                   detail::g_tsc_t0) *
               detail::g_tsc_ns_per_tick);
#endif
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Record a complete span [t0, t1] on this thread.  No-op when disabled;
/// `name` must be a string literal (only the pointer is stored).
inline void emit_span(const char* name, std::uint64_t t0_ns,
                      std::uint64_t t1_ns) {
  if (trace_enabled()) detail::push_span(name, t0_ns, t1_ns);
}

/// Record a chain of back-to-back spans: span i covers
/// [marks[i-1].t_ns, marks[i].t_ns] (the first starts at t0_ns).  This is
/// the bulk path for the transient per-timestep ticker: recording a mark is
/// one clock read plus a push into a cache-hot local vector, and the whole
/// chain lands in the trace buffer through a single thread-local resolution
/// and flush check — emitting each step individually from the middle of the
/// simulation loop costs ~3x more per event (cold buffer lines every step).
/// No-op when disabled.
inline void emit_spans(const SpanMark* marks, std::size_t n,
                       std::uint64_t t0_ns) {
  if (n != 0 && trace_enabled()) detail::push_span_batch(marks, n, t0_ns);
}

/// Record an instantaneous counter sample (Chrome "C" event) — the pool
/// uses this for its queue-depth gauge.  No-op when disabled.
inline void trace_counter(const char* name, double value) {
  if (trace_enabled()) detail::push_counter(name, value);
}

/// Start tracing to `path` (truncating any previous session's buffers).
/// Called by startup for KATO_TRACE and by tests/benches directly.
void trace_begin(const std::string& path);

/// Flush every thread's buffer, write the Chrome trace-event JSON file and
/// disable tracing; returns the number of events written (0 when tracing
/// was not active).  Callers guarantee no concurrent emitters (see header
/// comment).
std::size_t trace_end();

/// Temporarily suppress / re-enable event capture without ending the
/// session — the traced-vs-untraced overhead bench toggles these between
/// interleaved measurement windows.
void trace_pause();
void trace_resume();

/// Label this thread in the trace (Chrome thread_name metadata).  Cheap and
/// safe to call with tracing disabled; the pool names its workers at spawn.
void name_this_thread(std::string name);

/// Shrink the per-thread buffer flush threshold so tests can force the
/// concurrent flush path without millions of events.
void set_trace_buffer_capacity_for_test(std::size_t cap);

/// Scoped span: measures construction to destruction.  With tracing
/// disabled the constructor stores one null pointer and the destructor
/// tests it — no clock reads, no buffer touch.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(trace_enabled() ? name : nullptr),
        t0_(name_ != nullptr ? trace_now_ns() : 0) {}
  ~TraceSpan() {
    if (name_ != nullptr) detail::push_span(name_, t0_, trace_now_ns());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t t0_;
};

// --- Latency histograms ----------------------------------------------------
//
// Fixed log2-bucketed duration histograms, one per pipeline stage.  Each
// octave [2^k, 2^(k+1)) is split into 12 geometric sub-buckets, so bucket
// width is 2^(1/12) ~ 1.0595 — about 6% relative resolution, constant from
// nanoseconds to hours, in 768 flat counters per stage.  Recording is a
// bucket-index computation (count-leading-zeros plus at most 11 double
// compares against constants — no libm, so the mapping is bit-deterministic
// across machines) and two plain adds into a thread-local shard, the same
// single-owner relaxed-atomic pattern as SimStats.  Snapshots sum the
// retired totals and every live shard under a mutex; integer addition
// commutes, so the merged histogram depends only on the multiset of
// recorded durations, never on which thread recorded what (pinned by
// obs_test at KATO_THREADS=1 vs 4).  Like the counters, histograms are
// value-free: they observe durations and feed nothing back.

/// Stages with a latency histogram.  `eval` wraps one full single-condition
/// circuit evaluation; dc/ac/tran are the analyses inside it; gp_fit and
/// acquisition are the BO-side phases.
enum class Stage : int { dc, ac, tran, eval, gp_fit, acquisition, count_ };

inline constexpr int k_hist_sub = 12;  ///< sub-buckets per octave (~6%)
inline constexpr int k_hist_buckets = 64 * k_hist_sub;

/// JSON/Prometheus label for one stage ("dc", "gp_fit", ...).
const char* stage_name(Stage s);

/// Bucket index for a duration — exposed so tests can pin goldens by hand.
int hist_bucket_index(std::uint64_t ns);

/// Inclusive lower bound of one bucket in ns (floor of 2^octave * 2^(s/12)).
std::uint64_t hist_bucket_lower_ns(int bucket);

/// Record one duration into `s`'s histogram (any thread, wait-free).
void hist_record(Stage s, std::uint64_t ns);

/// Deterministic merged view of one stage's histogram.
struct HistSnapshot {
  std::uint64_t count = 0;   ///< total recorded durations
  std::uint64_t sum_ns = 0;  ///< exact sum of recorded durations
  std::array<std::uint64_t, k_hist_buckets> buckets{};

  /// Exact bucket-quantile: the lower bound of the bucket holding rank
  /// ceil(q * count) (so the true duration is within +6% of the returned
  /// value).  0 when the histogram is empty.
  std::uint64_t quantile_ns(double q) const;
};

HistSnapshot hist_snapshot(Stage s);

/// Write every counter and stage histogram in Prometheus text exposition
/// format (counters as kato_<name>_total, histograms as the cumulative
/// kato_stage_latency_seconds series) — the future daemon's /metrics body.
void expose_metrics(std::ostream& os);

/// Scoped stage timer: records construction-to-destruction into the stage
/// histogram.  Two clock reads against the ms-scale stages it wraps; always
/// on (like the counters) unless compiled out via KATO_OBS_STAGE.
class StageTimer {
 public:
  explicit StageTimer(Stage s) : stage_(s), t0_(trace_now_ns()) {}
  ~StageTimer() {
    const std::uint64_t t1 = trace_now_ns();
    hist_record(stage_, t1 > t0_ ? t1 - t0_ : 0);
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Stage stage_;
  std::uint64_t t0_;
};

}  // namespace kato::obs

// Scoped-span macro: compiles to nothing when KATO_OBS_DISABLE is defined,
// otherwise to a TraceSpan whose disabled-path cost is one branch.
#ifndef KATO_OBS_DISABLE
#define KATO_OBS_CONCAT_IMPL_(a, b) a##b
#define KATO_OBS_CONCAT_(a, b) KATO_OBS_CONCAT_IMPL_(a, b)
#define KATO_OBS_SPAN(name) \
  ::kato::obs::TraceSpan KATO_OBS_CONCAT_(kato_obs_span_, __LINE__) { name }
// Scoped stage-latency timer: histogram counterpart of KATO_OBS_SPAN.
// `stage` is a bare Stage enumerator (dc, tran, gp_fit, ...).
#define KATO_OBS_STAGE(stage)                                        \
  ::kato::obs::StageTimer KATO_OBS_CONCAT_(kato_obs_stage_,          \
                                           __LINE__) {              \
    ::kato::obs::Stage::stage                                        \
  }
#else
#define KATO_OBS_SPAN(name) static_cast<void>(0)
#define KATO_OBS_STAGE(stage) static_cast<void>(0)
#endif

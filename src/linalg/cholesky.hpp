#pragma once
// Cholesky factorization and solves for symmetric positive-definite systems.
//
// The GP stack relies on these for the marginal likelihood (Eq. 3 in the
// paper) and the predictive posterior (Eq. 4).  `cholesky_jittered` walks a
// jitter ladder so that nearly-singular kernel matrices (duplicated designs,
// tiny lengthscales) still factor.

#include <optional>

#include "linalg/matrix.hpp"

namespace kato::la {

/// Lower-triangular Cholesky factor of an SPD matrix, or nullopt if the
/// matrix is not numerically positive definite.
std::optional<Matrix> cholesky(const Matrix& a);

struct JitteredCholesky {
  Matrix l;        ///< lower factor of (a + jitter * I)
  double jitter;   ///< jitter actually applied (0 when none was needed)
};

/// Cholesky with an escalating diagonal jitter ladder (0, 1e-10, ... 1e-4,
/// scaled by the mean diagonal).  Throws std::runtime_error if the matrix
/// cannot be factored even at the largest jitter.
JitteredCholesky cholesky_jittered(const Matrix& a);

/// Solve L x = b (forward substitution) with L lower triangular.
Vector solve_lower(const Matrix& l, const Vector& b);
/// Solve L X = B for an n x m right-hand-side block in one forward sweep —
/// the batched-prediction path shares this single triangular solve across
/// all query columns instead of re-solving per candidate.
Matrix solve_lower_multi(const Matrix& l, const Matrix& b);
/// Solve L^T x = b (back substitution) with L lower triangular.
Vector solve_lower_transposed(const Matrix& l, const Vector& b);
/// Solve (L L^T) x = b.
Vector cholesky_solve(const Matrix& l, const Vector& b);
/// Inverse of (L L^T) formed explicitly (used for dL/dK in GP training).
Matrix cholesky_inverse(const Matrix& l);
/// log det(L L^T) = 2 * sum(log diag L).
double cholesky_logdet(const Matrix& l);

}  // namespace kato::la

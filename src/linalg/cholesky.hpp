#pragma once
// Cholesky factorization and solves for symmetric positive-definite systems.
//
// The GP stack relies on these for the marginal likelihood (Eq. 3 in the
// paper) and the predictive posterior (Eq. 4).  `cholesky_jittered` walks a
// jitter ladder so that nearly-singular kernel matrices (duplicated designs,
// tiny lengthscales) still factor.

#include <optional>

#include "linalg/matrix.hpp"

namespace kato::la {

/// Lower-triangular Cholesky factor of an SPD matrix, or nullopt if the
/// matrix is not numerically positive definite.
std::optional<Matrix> cholesky(const Matrix& a);

struct JitteredCholesky {
  Matrix l;        ///< lower factor of (a + jitter * I)
  double jitter;   ///< jitter actually applied (0 when none was needed)
};

/// Cholesky with an escalating diagonal jitter ladder (0, 1e-10, ... 1e-4,
/// scaled by the mean diagonal).  Throws std::runtime_error if the matrix
/// cannot be factored even at the largest jitter.  `start_attempt` skips
/// that many leading rungs as if they had failed (fault-injection hook;
/// 0 is the historical behaviour).
JitteredCholesky cholesky_jittered(const Matrix& a, int start_attempt = 0);

/// Solve L x = b (forward substitution) with L lower triangular.
Vector solve_lower(const Matrix& l, const Vector& b);
/// Solve L X = B for an n x m right-hand-side block in one forward sweep —
/// the batched-prediction path shares this single triangular solve across
/// all query columns instead of re-solving per candidate.
Matrix solve_lower_multi(const Matrix& l, const Matrix& b);
/// Solve L^T x = b (back substitution) with L lower triangular.
Vector solve_lower_transposed(const Matrix& l, const Vector& b);
/// Solve (L L^T) x = b.
Vector cholesky_solve(const Matrix& l, const Vector& b);
/// Inverse of (L L^T) formed explicitly (used for dL/dK in GP training).
Matrix cholesky_inverse(const Matrix& l);
/// log det(L L^T) = 2 * sum(log diag L).
double cholesky_logdet(const Matrix& l);

// --- Workspace-aware variants for the GP training loop ---
// The LML loop factors, solves and inverts once per Adam step; these
// overloads write into caller-owned buffers (resized on first use, reused
// afterwards) so the loop is allocation-free, and the inverse runs through a
// triangular inversion instead of 2n dense triangular solves (~3x fewer
// flops, contiguous row access).

/// Factor a (+ jitter on the diagonal) into the caller's buffer `l`.
/// Returns false when not numerically positive definite; `a` is unchanged.
bool cholesky_into(const Matrix& a, Matrix& l, double jitter = 0.0);

/// Jitter-ladder factorization into `l` (same ladder as cholesky_jittered).
/// Returns the jitter applied; throws std::runtime_error when the matrix
/// cannot be factored at the largest jitter.
double cholesky_jittered_into(const Matrix& a, Matrix& l,
                              int start_attempt = 0);

/// Solve (L L^T) x = b using `tmp` as the forward-solve scratch.
void cholesky_solve_into(const Matrix& l, const Vector& b, Vector& x,
                         Vector& tmp);

/// t = (L^{-1})^T, upper triangular, row-major (row r holds column r of
/// L^{-1}): both this inversion and the syrk in cholesky_inverse_into walk
/// contiguous rows.
void lower_inverse_transposed_into(const Matrix& l, Matrix& t);

/// inv = (L L^T)^{-1} via T = (L^{-1})^T and inv = T T^T restricted to the
/// triangular support.  Exactly symmetric by construction.  `t_scratch` is a
/// caller-owned buffer.
void cholesky_inverse_into(const Matrix& l, Matrix& inv, Matrix& t_scratch);

}  // namespace kato::la

#include "linalg/lu.hpp"

#include <cmath>
#include <stdexcept>

namespace kato::la {

namespace {
constexpr double k_singular_tol = 1e-300;
}

bool lu_solve_into(Matrix& a, Vector& b, Vector& x) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("lu_solve_into: shape mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < k_singular_tol || !std::isfinite(best)) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    const double inv_piv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv_piv;
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t j = col + 1; j < n; ++j) a(r, j) -= factor * a(col, j);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  x.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    x[ii] = s / a(ii, ii);
  }
  for (double v : x)
    if (!std::isfinite(v)) return false;
  return true;
}

std::optional<Vector> lu_solve(Matrix a, Vector b) {
  Vector x;
  if (!lu_solve_into(a, b, x)) return std::nullopt;
  return x;
}

bool lu_solve_complex_into(CMatrix& a, CVector& b, CVector& x) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("lu_solve_complex_into: shape mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < k_singular_tol || !std::isfinite(best)) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    const std::complex<double> inv_piv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const std::complex<double> factor = a(r, col) * inv_piv;
      if (factor == std::complex<double>(0.0, 0.0)) continue;
      a(r, col) = 0.0;
      for (std::size_t j = col + 1; j < n; ++j) a(r, j) -= factor * a(col, j);
      b[r] -= factor * b[col];
    }
  }
  x.assign(n, std::complex<double>(0.0, 0.0));
  for (std::size_t ii = n; ii-- > 0;) {
    std::complex<double> s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    x[ii] = s / a(ii, ii);
  }
  for (const auto& v : x)
    if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) return false;
  return true;
}

std::optional<CVector> lu_solve_complex(CMatrix a, CVector b) {
  CVector x;
  if (!lu_solve_complex_into(a, b, x)) return std::nullopt;
  return x;
}

}  // namespace kato::la

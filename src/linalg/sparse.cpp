#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/fault.hpp"

namespace kato::la {

namespace {

constexpr double k_abs_tiny = 1e-300;  ///< below this a pivot is singular
/// Refactor guard: a reused pivot smaller than this fraction of its column's
/// magnitude triggers a fresh pivoting pass (values drifted too far from the
/// ones the pivot sequence was chosen for — e.g. across a gmin ladder).
constexpr double k_repivot_rel = 1e-8;
/// Diagonal preference during pivoting: keep the structural diagonal when it
/// is within this factor of the column maximum (stabilizes the pivot
/// sequence across Newton iterations without hurting growth).
constexpr double k_diag_pref = 0.1;

double mag(double v) { return std::abs(v); }
double mag(const std::complex<double>& v) {
  // 1-norm proxy: cheaper than abs() and equivalent for pivot ranking.
  return std::abs(v.real()) + std::abs(v.imag());
}

bool finite(double v) { return std::isfinite(v); }
bool finite(const std::complex<double>& v) {
  return std::isfinite(v.real()) && std::isfinite(v.imag());
}

}  // namespace

SparsePattern::SparsePattern(std::size_t n, const std::vector<Coord>& coords)
    : n_(n) {
  for (const auto& c : coords)
    if (c.r >= n || c.c >= n)
      throw std::invalid_argument("SparsePattern: coord out of range");
  std::vector<Coord> sorted = coords;
  std::sort(sorted.begin(), sorted.end(), [](const Coord& a, const Coord& b) {
    return a.c != b.c ? a.c < b.c : a.r < b.r;
  });
  sorted.erase(std::unique(sorted.begin(), sorted.end(),
                           [](const Coord& a, const Coord& b) {
                             return a.r == b.r && a.c == b.c;
                           }),
               sorted.end());
  colp_.assign(n_ + 1, 0);
  row_.reserve(sorted.size());
  for (const auto& c : sorted) {
    ++colp_[c.c + 1];
    row_.push_back(c.r);
  }
  for (std::size_t j = 0; j < n_; ++j) colp_[j + 1] += colp_[j];
}

std::size_t SparsePattern::slot(std::size_t r, std::size_t c) const {
  if (c >= n_) return k_sparse_npos;
  const auto begin = row_.begin() + static_cast<std::ptrdiff_t>(colp_[c]);
  const auto end = row_.begin() + static_cast<std::ptrdiff_t>(colp_[c + 1]);
  const auto it = std::lower_bound(begin, end, r);
  if (it == end || *it != r) return k_sparse_npos;
  return static_cast<std::size_t>(it - row_.begin());
}

std::vector<std::size_t> min_degree_order(const SparsePattern& p) {
  const std::size_t n = p.n();
  // Symmetrized adjacency (no self loops), sorted + unique per node.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t s = p.col_ptr()[c]; s < p.col_ptr()[c + 1]; ++s) {
      const std::size_t r = p.row_idx()[s];
      if (r == c) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  std::vector<unsigned char> alive(n, 1);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> nbrs;
  for (std::size_t step = 0; step < n; ++step) {
    // Min alive degree, lowest index on ties.
    std::size_t best = k_sparse_npos;
    std::size_t best_deg = k_sparse_npos;
    for (std::size_t v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      // Degrees are maintained lazily: compact the list before counting.
      auto& a = adj[v];
      a.erase(std::remove_if(a.begin(), a.end(),
                             [&](std::size_t u) { return !alive[u]; }),
              a.end());
      if (a.size() < best_deg) {
        best_deg = a.size();
        best = v;
      }
    }
    const std::size_t v = best;
    order.push_back(v);
    alive[v] = 0;
    nbrs = adj[v];
    // Eliminate v: its alive neighborhood becomes a clique.
    for (std::size_t u : nbrs) {
      auto& a = adj[u];
      a.insert(a.end(), nbrs.begin(), nbrs.end());
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
      a.erase(std::remove(a.begin(), a.end(), u), a.end());
    }
  }
  return order;
}

template <typename T>
void SparseLuT<T>::analyze(const SparsePattern& pattern) {
  pat_ = pattern;
  q_ = min_degree_order(pat_);
  symbolic_ = false;
  factored_ = false;
  pivot_passes_ = 0;
  const std::size_t n = pat_.n();
  w_.assign(n, T{});
  rowmark_.assign(n, 0);
  colmark_.assign(n, 0);
}

template <typename T>
bool SparseLuT<T>::factor(const std::vector<T>& values) {
  if (values.size() != pat_.nnz())
    throw std::invalid_argument("SparseLu::factor: value count != pattern nnz");
  factored_ = false;
  if (symbolic_ && refactor(values)) {
    factored_ = true;
    return true;
  }
  factored_ = full_factor(values);
  return factored_;
}

template <typename T>
bool SparseLuT<T>::full_factor(const std::vector<T>& values) {
  const std::size_t n = pat_.n();
  symbolic_ = false;
  ++pivot_passes_;
  p_.assign(n, k_sparse_npos);
  pinv_.assign(n, k_sparse_npos);
  lp_.assign(1, 0);
  up_.assign(1, 0);
  li_.clear();
  lx_.clear();
  ui_.clear();
  ux_.clear();
  ud_.clear();
  ud_.reserve(n);

  // w_/rowmark_/colmark_ are all-clear between columns (reset on exit paths).
  auto cleanup = [&] {
    for (std::size_t r : nzrows_) {
      w_[r] = T{};
      rowmark_[r] = 0;
    }
    for (std::size_t j : ucols_) colmark_[j] = 0;
  };

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t cc = q_[k];
    nzrows_.clear();
    heap_.clear();
    ucols_.clear();
    // Scatter A(:, cc); queue updates from already-pivoted rows.
    auto touch = [&](std::size_t r) {
      if (rowmark_[r]) return;
      rowmark_[r] = 1;
      nzrows_.push_back(r);
      const std::size_t j = pinv_[r];
      if (j != k_sparse_npos && !colmark_[j]) {
        colmark_[j] = 1;
        heap_.push_back(j);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
      }
    };
    for (std::size_t s = pat_.col_ptr()[cc]; s < pat_.col_ptr()[cc + 1]; ++s) {
      const std::size_t r = pat_.row_idx()[s];
      touch(r);
      w_[r] = values[s];
    }
    // Left-looking updates in ascending pivot order (columns discovered
    // through fill always lie deeper, so a min-heap pops a valid
    // topological order).  Updates are applied structurally — a zero value
    // still propagates its pattern — so the recorded fill is valid for any
    // values on this pattern.
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
      const std::size_t j = heap_.back();
      heap_.pop_back();
      ucols_.push_back(j);
      const T xj = w_[p_[j]];
      for (std::size_t t = lp_[j]; t < lp_[j + 1]; ++t) {
        const std::size_t rr = li_[t];
        touch(rr);
        w_[rr] -= xj * lx_[t];
      }
    }
    // Pivot: largest magnitude among non-pivotal rows (lowest index on
    // ties), keeping the structural diagonal when competitive.
    std::size_t best = k_sparse_npos;
    double best_mag = 0.0;
    bool all_finite = true;
    for (std::size_t r : nzrows_) {
      if (pinv_[r] != k_sparse_npos) continue;
      const double m = mag(w_[r]);
      if (!finite(w_[r])) all_finite = false;
      if (m > best_mag || (m == best_mag && best != k_sparse_npos && r < best)) {
        if (m > 0.0 || best == k_sparse_npos) {
          best_mag = m;
          best = r;
        }
      }
    }
    if (!all_finite || best == k_sparse_npos || best_mag < k_abs_tiny) {
      cleanup();
      return false;
    }
    std::size_t prow = best;
    if (cc != best && pinv_[cc] == k_sparse_npos && rowmark_[cc] &&
        mag(w_[cc]) >= k_diag_pref * best_mag)
      prow = cc;
    const T piv = w_[prow];
    p_[k] = prow;
    pinv_[prow] = k;
    // U column k: the update columns, already in ascending pivot order.
    for (std::size_t j : ucols_) {
      ui_.push_back(j);
      ux_.push_back(w_[p_[j]]);
    }
    up_.push_back(ui_.size());
    ud_.push_back(piv);
    // L column k: remaining non-pivotal rows, sorted for a deterministic
    // (and cache-friendly) refactor order.
    const std::size_t l_begin = li_.size();
    for (std::size_t r : nzrows_)
      if (pinv_[r] == k_sparse_npos) li_.push_back(r);
    std::sort(li_.begin() + static_cast<std::ptrdiff_t>(l_begin), li_.end());
    for (std::size_t t = l_begin; t < li_.size(); ++t)
      lx_.push_back(w_[li_[t]] / piv);
    lp_.push_back(li_.size());
    cleanup();
  }
  symbolic_ = true;
  return true;
}

template <typename T>
bool SparseLuT<T>::refactor(const std::vector<T>& values) {
  // lu:collapse pretends the recorded pivot sequence went stale: refactor
  // reports failure exactly as the collapse guard below would, and factor()
  // falls back to a fresh pivoting pass (surfaced as lu_pivot_fallbacks).
  if (util::fault_fires(util::FaultSite::lu_collapse)) return false;
  const std::size_t n = pat_.n();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t cc = q_[k];
    for (std::size_t s = pat_.col_ptr()[cc]; s < pat_.col_ptr()[cc + 1]; ++s)
      w_[pat_.row_idx()[s]] = values[s];
    double cmax = 0.0;
    for (std::size_t t = up_[k]; t < up_[k + 1]; ++t) {
      const std::size_t j = ui_[t];
      const T xj = w_[p_[j]];
      w_[p_[j]] = T{};
      ux_[t] = xj;
      cmax = std::max(cmax, mag(xj));
      if (!(xj == T{}))
        for (std::size_t tt = lp_[j]; tt < lp_[j + 1]; ++tt)
          w_[li_[tt]] -= xj * lx_[tt];
    }
    const T piv = w_[p_[k]];
    w_[p_[k]] = T{};
    const double pmag = mag(piv);
    cmax = std::max(cmax, pmag);
    for (std::size_t t = lp_[k]; t < lp_[k + 1]; ++t) {
      const T v = w_[li_[t]];
      w_[li_[t]] = T{};
      lx_[t] = v;  // scaled below once the pivot is accepted
      cmax = std::max(cmax, mag(v));
    }
    // Pivot collapsed relative to its column (or went singular/non-finite):
    // the recorded sequence no longer fits these values — re-pivot.  w_ is
    // already clean, so the caller can go straight to full_factor.
    if (!std::isfinite(cmax) || pmag < k_abs_tiny || pmag < k_repivot_rel * cmax)
      return false;
    ud_[k] = piv;
    for (std::size_t t = lp_[k]; t < lp_[k + 1]; ++t) lx_[t] = lx_[t] / piv;
  }
  return true;
}

template <typename T>
void SparseLuT<T>::solve(const std::vector<T>& b, std::vector<T>& x) const {
  const std::size_t n = pat_.n();
  if (b.size() != n)
    throw std::invalid_argument("SparseLu::solve: rhs size mismatch");
  solve_ws_ = b;
  // Forward: L y = P b (unit diagonal), column-oriented over original rows.
  for (std::size_t k = 0; k < n; ++k) {
    const T xk = solve_ws_[p_[k]];
    if (xk == T{}) continue;
    for (std::size_t t = lp_[k]; t < lp_[k + 1]; ++t)
      solve_ws_[li_[t]] -= xk * lx_[t];
  }
  // Backward: U z = y; un-permute columns on the way out (x[q[k]] = z[k]).
  x.assign(n, T{});
  for (std::size_t k = n; k-- > 0;) {
    const T xk = solve_ws_[p_[k]] / ud_[k];
    x[q_[k]] = xk;
    if (xk == T{}) continue;
    for (std::size_t t = up_[k]; t < up_[k + 1]; ++t)
      solve_ws_[p_[ui_[t]]] -= xk * ux_[t];
  }
}

template class SparseLuT<double>;
template class SparseLuT<std::complex<double>>;

}  // namespace kato::la

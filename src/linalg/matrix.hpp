#pragma once
// Dense row-major matrix/vector types used throughout the library.
//
// The GP stack and the circuit simulator only need small-to-medium dense
// algebra (N up to a few hundred), so a simple cache-friendly row-major
// implementation is sufficient and keeps the library dependency-free.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace kato::la {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  static Matrix identity(std::size_t n);
  /// Build from nested initializer list (row major), for tests.
  static Matrix from_rows(std::initializer_list<std::initializer_list<double>> rows);
  /// Build an n x d matrix from n points of dimension d.
  static Matrix from_points(const std::vector<std::vector<double>>& pts);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  std::span<double> row(std::size_t i) { return {data_.data() + i * cols_, cols_}; }
  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }
  std::vector<double> row_vec(std::size_t i) const {
    return {data_.data() + i * cols_, data_.data() + (i + 1) * cols_};
  }
  void set_row(std::size_t i, std::span<const double> values);

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  Matrix transpose() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

/// General matrix product a(m x k) * b(k x n).
Matrix matmul(const Matrix& a, const Matrix& b);
/// a^T * b without forming the transpose.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// a * b^T without forming the transpose.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// Matrix-vector product.
Vector matvec(const Matrix& a, const Vector& x);
/// a^T * x.
Vector matvec_t(const Matrix& a, const Vector& x);

/// Rank-one outer product x y^T.
Matrix outer(const Vector& x, const Vector& y);

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Squared Euclidean distance between two equal-length vectors.
double sq_dist(std::span<const double> a, std::span<const double> b);

}  // namespace kato::la

#pragma once
// LU factorization with partial pivoting, real and complex variants.
//
// The complex solver backs the AC small-signal analysis in the circuit
// simulator (MNA matrices are complex at each frequency point); the real
// solver backs the DC Newton iterations.

#include <complex>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace kato::la {

/// Solve a x = b for a general square real matrix.  Returns nullopt when the
/// matrix is numerically singular.
std::optional<Vector> lu_solve(Matrix a, Vector b);

/// In-place variant for hot loops: factors `a` and reduces `b` in place
/// (both are clobbered) and writes the solution into `x` (resized).  No
/// allocation happens when x already has capacity n.  Returns false when
/// the matrix is numerically singular.
bool lu_solve_into(Matrix& a, Vector& b, Vector& x);

/// Dense complex matrix in row-major order (small: circuit-node count).
class CMatrix {
 public:
  using value_type = std::complex<double>;

  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  value_type& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  value_type operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<value_type> data_;
};

using CVector = std::vector<std::complex<double>>;

/// Solve a x = b for a general square complex matrix (partial pivoting).
std::optional<CVector> lu_solve_complex(CMatrix a, CVector b);

/// In-place complex variant (see lu_solve_into): `a` and `b` are clobbered,
/// the solution lands in `x`.  Returns false when singular.
bool lu_solve_complex_into(CMatrix& a, CVector& b, CVector& x);

}  // namespace kato::la

#pragma once
// Sparse LU with symbolic-factorization reuse — the KLU-style solve path
// behind the MNA circuit analyses.
//
// Circuit matrices are extremely sparse (a handful of entries per row) and
// every analysis solves the *same sparsity pattern* over and over: each
// Newton iteration of a DC solve, each frequency point of an AC sweep and
// each timestep of a transient run only changes the numeric values.  The
// classes here split the work accordingly:
//
//   SparsePattern     immutable CSC structure built once per topology; the
//                     MNA assembler resolves every device stamp to a flat
//                     value-array slot against it.
//   min_degree_order  deterministic greedy minimum-degree ordering of the
//                     symmetrized pattern (fill reduction).
//   SparseLuT<T>      numeric LU bound to a pattern.  The first factor()
//                     performs Gilbert-Peierls left-looking elimination with
//                     partial pivoting (diagonal-preferring threshold, ties
//                     broken by lowest row index, so the pivot sequence is
//                     deterministic) and records the pivot order plus the
//                     fill pattern of L and U.  Every later factor() is an
//                     in-place numeric refactorization over the recorded
//                     structure — no searching, no allocation — falling back
//                     to a fresh pivoting pass only when a reused pivot
//                     collapses relative to its column.
//
// Real (SparseLu) and complex (CSparseLu) instantiations back the DC/TRAN
// Newton iterations and the AC sweep respectively.

#include <complex>
#include <cstddef>
#include <vector>

namespace kato::la {

/// "No slot" marker: a stamp that lands on the ground row/column.
inline constexpr std::size_t k_sparse_npos = static_cast<std::size_t>(-1);

/// One structural entry (row, col) used to build a SparsePattern.
struct Coord {
  std::size_t r;
  std::size_t c;
};

/// Immutable n x n compressed-sparse-column structure.  Duplicate coords
/// collapse to a single slot; `slot(r, c)` maps an entry back to its
/// position in the value array (the assembler calls it once per stamp at
/// prepare time, never on the per-iteration path).
class SparsePattern {
 public:
  SparsePattern() = default;
  SparsePattern(std::size_t n, const std::vector<Coord>& coords);

  std::size_t n() const { return n_; }
  std::size_t nnz() const { return row_.size(); }

  /// Slot of entry (r, c) in the value array; k_sparse_npos when absent.
  std::size_t slot(std::size_t r, std::size_t c) const;

  const std::vector<std::size_t>& col_ptr() const { return colp_; }
  const std::vector<std::size_t>& row_idx() const { return row_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> colp_;  ///< size n + 1
  std::vector<std::size_t> row_;   ///< ascending within each column
};

/// Fill-reducing elimination order: greedy exact minimum degree on the
/// symmetrized pattern (A + A^T), ties broken by lowest node index so the
/// result — and therefore the whole factorization — is deterministic.
std::vector<std::size_t> min_degree_order(const SparsePattern& p);

template <typename T>
class SparseLuT {
 public:
  SparseLuT() = default;

  /// One-time symbolic setup: copy the pattern and compute the
  /// fill-reducing column order.  Clears any recorded factorization.
  void analyze(const SparsePattern& pattern);

  /// Numeric factorization from `values` (parallel to the pattern's slots).
  /// First call after analyze() pivots and records the structure; later
  /// calls refactor in place over it.  Returns false when the matrix is
  /// numerically singular (no usable pivot in some column).
  bool factor(const std::vector<T>& values);

  /// Solve A x = b with the current factorization; b is left untouched and
  /// x is resized to n.  Requires a successful factor().
  void solve(const std::vector<T>& b, std::vector<T>& x) const;

  bool factored() const { return factored_; }
  std::size_t n() const { return pat_.n(); }
  /// Entries in L + U + diagonal after factorization (fill introspection).
  std::size_t lu_nnz() const { return li_.size() + ui_.size() + ud_.size(); }
  /// Full pivoting factorizations performed so far (1 after the first
  /// factor(); grows only when a refactorization had to re-pivot).
  std::size_t pivot_passes() const { return pivot_passes_; }

 private:
  bool full_factor(const std::vector<T>& values);
  bool refactor(const std::vector<T>& values);

  SparsePattern pat_;
  std::vector<std::size_t> q_;     ///< column order (analyze)
  std::vector<std::size_t> p_;     ///< pivot position -> original row
  std::vector<std::size_t> pinv_;  ///< original row -> pivot position
  // L: unit lower triangular in pivot coordinates, stored column-wise with
  // original row indices.  U: strictly upper entries stored column-wise as
  // pivot positions in ascending order (a valid topological order for the
  // left-looking column solve); diagonal pivots separate in ud_.
  std::vector<std::size_t> lp_, li_;
  std::vector<std::size_t> up_, ui_;
  std::vector<T> lx_, ux_, ud_;
  bool symbolic_ = false;  ///< pivot sequence + fill pattern recorded
  bool factored_ = false;
  std::size_t pivot_passes_ = 0;
  std::vector<T> w_;                  ///< dense column accumulator
  mutable std::vector<T> solve_ws_;   ///< permuted rhs workspace
  std::vector<unsigned char> rowmark_, colmark_;
  std::vector<std::size_t> nzrows_, heap_, ucols_;
};

using SparseLu = SparseLuT<double>;
using CSparseLu = SparseLuT<std::complex<double>>;

}  // namespace kato::la

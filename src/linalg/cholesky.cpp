#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace kato::la {

namespace {

/// Factor the nb x nb block of `l` anchored at (j0, j0) in place, reading the
/// partially updated values already stored there.  Returns false when the
/// block is not positive definite.
bool factor_diag_block(Matrix& l, std::size_t j0, std::size_t nb) {
  for (std::size_t j = j0; j < j0 + nb; ++j) {
    double diag = l(j, j);
    for (std::size_t k = j0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < j0 + nb; ++i) {
      double s = l(i, j);
      for (std::size_t k = j0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return true;
}

/// Right-looking blocked Cholesky: factor a panel, triangular-solve the rows
/// below it, then subtract the panel's outer product from the trailing
/// submatrix.  All row segments touched are contiguous, so the O(n^3) update
/// streams through cache instead of striding over the full matrix.
constexpr std::size_t k_chol_block = 48;

}  // namespace

std::optional<Matrix> cholesky(const Matrix& a) {
  Matrix l;
  if (!cholesky_into(a, l)) return std::nullopt;
  return l;
}

JitteredCholesky cholesky_jittered(const Matrix& a, int start_attempt) {
  JitteredCholesky result;
  result.jitter = cholesky_jittered_into(a, result.l, start_attempt);
  return result;
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("solve_lower: size mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

Matrix solve_lower_multi(const Matrix& l, const Matrix& b) {
  const std::size_t n = l.rows();
  if (b.rows() != n)
    throw std::invalid_argument("solve_lower_multi: size mismatch");
  const std::size_t m = b.cols();
  Matrix x = b;
  for (std::size_t i = 0; i < n; ++i) {
    double* xi = x.data().data() + i * m;
    const double* li = l.data().data() + i * n;
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = li[k];
      if (lik == 0.0) continue;
      const double* xk = x.data().data() + k * m;
      for (std::size_t j = 0; j < m; ++j) xi[j] -= lik * xk[j];
    }
    const double inv = 1.0 / li[i];
    for (std::size_t j = 0; j < m; ++j) xi[j] *= inv;
  }
  return x;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  if (b.size() != n)
    throw std::invalid_argument("solve_lower_transposed: size mismatch");
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  return solve_lower_transposed(l, solve_lower(l, b));
}

Matrix cholesky_inverse(const Matrix& l) {
  const std::size_t n = l.rows();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    Vector col = cholesky_solve(l, e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  // Symmetrize to remove round-off asymmetry.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (inv(i, j) + inv(j, i));
      inv(i, j) = avg;
      inv(j, i) = avg;
    }
  return inv;
}

double cholesky_logdet(const Matrix& l) {
  double s = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) s += std::log(l(i, i));
  return 2.0 * s;
}

bool cholesky_into(const Matrix& a, Matrix& l, double jitter) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("cholesky_into: matrix must be square");
  const std::size_t n = a.rows();
  if (l.rows() != n || l.cols() != n) l = Matrix(n, n);
  // Copy the lower triangle (plus jitter); factored in place panel by panel
  // with the same blocked algorithm as cholesky() — bit-identical factors.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) l(i, j) = a(i, j);
    l(i, i) += jitter;
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = 0.0;
  }
  for (std::size_t j0 = 0; j0 < n; j0 += k_chol_block) {
    const std::size_t nb = std::min(k_chol_block, n - j0);
    const std::size_t j1 = j0 + nb;
    if (!factor_diag_block(l, j0, nb)) return false;
    for (std::size_t i = j1; i < n; ++i) {
      double* li = l.data().data() + i * n;
      for (std::size_t c = j0; c < j1; ++c) {
        double s = li[c];
        const double* lc = l.data().data() + c * n;
        for (std::size_t k = j0; k < c; ++k) s -= li[k] * lc[k];
        li[c] = s / lc[c];
      }
    }
    for (std::size_t i = j1; i < n; ++i) {
      double* li = l.data().data() + i * n;
      for (std::size_t j = j1; j <= i; ++j) {
        const double* lj = l.data().data() + j * n;
        double s = 0.0;
        for (std::size_t k = j0; k < j1; ++k) s += li[k] * lj[k];
        li[j] -= s;
      }
    }
  }
  return true;
}

double cholesky_jittered_into(const Matrix& a, Matrix& l, int start_attempt) {
  const std::size_t n = a.rows();
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_diag += a(i, i);
  mean_diag = n > 0 ? mean_diag / static_cast<double>(n) : 1.0;
  if (mean_diag <= 0.0) mean_diag = 1.0;

  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    // start_attempt > 0 skips the first rungs as if they had failed — the
    // gp:chol_fail injection path; 0 (the default) is bit-identical to the
    // historical ladder.
    if (attempt >= start_attempt && cholesky_into(a, l, jitter)) return jitter;
    jitter = (jitter == 0.0) ? 1e-10 * mean_diag : jitter * 10.0;
  }
  throw std::runtime_error("cholesky_jittered_into: matrix not PD at max jitter");
}

void cholesky_solve_into(const Matrix& l, const Vector& b, Vector& x,
                         Vector& tmp) {
  const std::size_t n = l.rows();
  if (b.size() != n)
    throw std::invalid_argument("cholesky_solve_into: size mismatch");
  tmp.resize(n);
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * tmp[k];
    tmp[i] = s / l(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = tmp[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
}

void lower_inverse_transposed_into(const Matrix& l, Matrix& t) {
  const std::size_t n = l.rows();
  if (t.rows() != n || t.cols() != n) t = Matrix(n, n);
  // Column j of X = L^{-1} satisfies L x = e_j; exploiting x_i = 0 for i < j
  // the forward substitution costs n^3/6 MACs total.  Stored transposed
  // (t(j, i) = X(i, j)) so each column is built along a contiguous row.
  // Two columns advance together so each L row is loaded once for both.
  std::size_t j = 0;
  for (; j + 1 < n; j += 2) {
    double* tj0 = t.data().data() + j * n;
    double* tj1 = t.data().data() + (j + 1) * n;
    for (std::size_t i = 0; i < j; ++i) tj0[i] = 0.0;
    for (std::size_t i = 0; i <= j; ++i) tj1[i] = 0.0;
    tj0[j] = 1.0 / l(j, j);
    {
      const std::size_t i = j + 1;
      const double* li = l.data().data() + i * n;
      tj0[i] = -li[j] * tj0[j] / li[i];
      tj1[i] = 1.0 / li[i];
    }
    for (std::size_t i = j + 2; i < n; ++i) {
      const double* li = l.data().data() + i * n;
      double s0 = -li[j] * tj0[j];
      double s1 = 0.0;
      for (std::size_t k = j + 1; k < i; ++k) {
        s0 -= li[k] * tj0[k];
        s1 -= li[k] * tj1[k];
      }
      tj0[i] = s0 / li[i];
      tj1[i] = s1 / li[i];
    }
  }
  for (; j < n; ++j) {
    double* tj = t.data().data() + j * n;
    for (std::size_t i = 0; i < j; ++i) tj[i] = 0.0;
    tj[j] = 1.0 / l(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      const double* li = l.data().data() + i * n;
      double s = 0.0;
      for (std::size_t k = j; k < i; ++k) s -= li[k] * tj[k];
      tj[i] = s / li[i];
    }
  }
}

void cholesky_inverse_into(const Matrix& l, Matrix& inv, Matrix& t_scratch) {
  const std::size_t n = l.rows();
  lower_inverse_transposed_into(l, t_scratch);
  if (inv.rows() != n || inv.cols() != n) inv = Matrix(n, n);
  // inv(i, j) = sum_k X(k, i) X(k, j) with X = L^{-1}: the sum starts at
  // k = max(i, j) because X is lower triangular, and both factors are
  // contiguous rows of the transposed storage.  Mirrored, so exactly
  // symmetric — no post-hoc symmetrization needed.
  for (std::size_t i = 0; i < n; ++i) {
    const double* ti = t_scratch.data().data() + i * n;
    for (std::size_t j = 0; j <= i; ++j) {
      const double* tj = t_scratch.data().data() + j * n;
      double s = 0.0;
      for (std::size_t k = i; k < n; ++k) s += ti[k] * tj[k];
      inv(i, j) = s;
      inv(j, i) = s;
    }
  }
}

}  // namespace kato::la

#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace kato::la {

std::optional<Matrix> cholesky(const Matrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("cholesky: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

JitteredCholesky cholesky_jittered(const Matrix& a) {
  const std::size_t n = a.rows();
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_diag += a(i, i);
  mean_diag = n > 0 ? mean_diag / static_cast<double>(n) : 1.0;
  if (mean_diag <= 0.0) mean_diag = 1.0;

  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Matrix shifted = a;
    for (std::size_t i = 0; i < n; ++i) shifted(i, i) += jitter;
    if (auto l = cholesky(shifted)) return {std::move(*l), jitter};
    jitter = (jitter == 0.0) ? 1e-10 * mean_diag : jitter * 10.0;
  }
  throw std::runtime_error("cholesky_jittered: matrix not PD at max jitter");
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("solve_lower: size mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  if (b.size() != n)
    throw std::invalid_argument("solve_lower_transposed: size mismatch");
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  return solve_lower_transposed(l, solve_lower(l, b));
}

Matrix cholesky_inverse(const Matrix& l) {
  const std::size_t n = l.rows();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    Vector col = cholesky_solve(l, e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  // Symmetrize to remove round-off asymmetry.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (inv(i, j) + inv(j, i));
      inv(i, j) = avg;
      inv(j, i) = avg;
    }
  return inv;
}

double cholesky_logdet(const Matrix& l) {
  double s = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) s += std::log(l(i, i));
  return 2.0 * s;
}

}  // namespace kato::la

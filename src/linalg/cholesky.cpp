#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace kato::la {

namespace {

/// Factor the nb x nb block of `l` anchored at (j0, j0) in place, reading the
/// partially updated values already stored there.  Returns false when the
/// block is not positive definite.
bool factor_diag_block(Matrix& l, std::size_t j0, std::size_t nb) {
  for (std::size_t j = j0; j < j0 + nb; ++j) {
    double diag = l(j, j);
    for (std::size_t k = j0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < j0 + nb; ++i) {
      double s = l(i, j);
      for (std::size_t k = j0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return true;
}

/// Right-looking blocked Cholesky: factor a panel, triangular-solve the rows
/// below it, then subtract the panel's outer product from the trailing
/// submatrix.  All row segments touched are contiguous, so the O(n^3) update
/// streams through cache instead of striding over the full matrix.
constexpr std::size_t k_chol_block = 48;

}  // namespace

std::optional<Matrix> cholesky(const Matrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("cholesky: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  // Copy the lower triangle; it is updated in place panel by panel.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) l(i, j) = a(i, j);

  for (std::size_t j0 = 0; j0 < n; j0 += k_chol_block) {
    const std::size_t nb = std::min(k_chol_block, n - j0);
    const std::size_t j1 = j0 + nb;
    if (!factor_diag_block(l, j0, nb)) return std::nullopt;

    // L21 = A21 * L11^{-T}: forward substitution along each row below the
    // diagonal block.
    for (std::size_t i = j1; i < n; ++i) {
      double* li = l.data().data() + i * n;
      for (std::size_t c = j0; c < j1; ++c) {
        double s = li[c];
        const double* lc = l.data().data() + c * n;
        for (std::size_t k = j0; k < c; ++k) s -= li[k] * lc[k];
        li[c] = s / lc[c];
      }
    }

    // Trailing update A22 -= L21 * L21^T (lower triangle only).  li serves
    // both roles: li[k] reads the panel columns just solved, li[j] updates
    // the trailing columns of the same row.
    for (std::size_t i = j1; i < n; ++i) {
      double* li = l.data().data() + i * n;
      for (std::size_t j = j1; j <= i; ++j) {
        const double* lj = l.data().data() + j * n;
        double s = 0.0;
        for (std::size_t k = j0; k < j1; ++k) s += li[k] * lj[k];
        li[j] -= s;
      }
    }
  }
  return l;
}

JitteredCholesky cholesky_jittered(const Matrix& a) {
  const std::size_t n = a.rows();
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_diag += a(i, i);
  mean_diag = n > 0 ? mean_diag / static_cast<double>(n) : 1.0;
  if (mean_diag <= 0.0) mean_diag = 1.0;

  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Matrix shifted = a;
    for (std::size_t i = 0; i < n; ++i) shifted(i, i) += jitter;
    if (auto l = cholesky(shifted)) return {std::move(*l), jitter};
    jitter = (jitter == 0.0) ? 1e-10 * mean_diag : jitter * 10.0;
  }
  throw std::runtime_error("cholesky_jittered: matrix not PD at max jitter");
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("solve_lower: size mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

Matrix solve_lower_multi(const Matrix& l, const Matrix& b) {
  const std::size_t n = l.rows();
  if (b.rows() != n)
    throw std::invalid_argument("solve_lower_multi: size mismatch");
  const std::size_t m = b.cols();
  Matrix x = b;
  for (std::size_t i = 0; i < n; ++i) {
    double* xi = x.data().data() + i * m;
    const double* li = l.data().data() + i * n;
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = li[k];
      if (lik == 0.0) continue;
      const double* xk = x.data().data() + k * m;
      for (std::size_t j = 0; j < m; ++j) xi[j] -= lik * xk[j];
    }
    const double inv = 1.0 / li[i];
    for (std::size_t j = 0; j < m; ++j) xi[j] *= inv;
  }
  return x;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  if (b.size() != n)
    throw std::invalid_argument("solve_lower_transposed: size mismatch");
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  return solve_lower_transposed(l, solve_lower(l, b));
}

Matrix cholesky_inverse(const Matrix& l) {
  const std::size_t n = l.rows();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    Vector col = cholesky_solve(l, e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  // Symmetrize to remove round-off asymmetry.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (inv(i, j) + inv(j, i));
      inv(i, j) = avg;
      inv(j, i) = avg;
    }
  return inv;
}

double cholesky_logdet(const Matrix& l) {
  double s = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) s += std::log(l(i, i));
  return 2.0 * s;
}

}  // namespace kato::la

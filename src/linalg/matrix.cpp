#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace kato::la {

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_)
    throw std::invalid_argument("Matrix: data size != rows*cols");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r > 0 ? rows.begin()->size() : 0;
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    if (row.size() != c)
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::from_points(const std::vector<std::vector<double>>& pts) {
  const std::size_t n = pts.size();
  const std::size_t d = n > 0 ? pts.front().size() : 0;
  Matrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    if (pts[i].size() != d)
      throw std::invalid_argument("Matrix::from_points: ragged points");
    for (std::size_t j = 0; j < d; ++j) m(i, j) = pts[i][j];
  }
  return m;
}

void Matrix::set_row(std::size_t i, std::span<const double> values) {
  if (values.size() != cols_)
    throw std::invalid_argument("Matrix::set_row: size mismatch");
  for (std::size_t j = 0; j < cols_; ++j) (*this)(i, j) = values[j];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

namespace {

// Cache tile for the triple loops below.  Row-major i-k-j order streams both
// operands, but once b's k-panel outgrows L1/L2 each i-row walk evicts it;
// tiling k (outermost) keeps a k_tile x cols panel of b hot across all rows
// of a.  Accumulation per output element stays in ascending-k order, so the
// tiled product is bit-identical to the naive loop.
constexpr std::size_t k_tile = 64;

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t k0 = 0; k0 < a.cols(); k0 += k_tile) {
    const std::size_t k1 = std::min(k0 + k_tile, a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      double* ci = c.data().data() + i * b.cols();
      for (std::size_t k = k0; k < k1; ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) continue;
        const double* bk = b.data().data() + k * b.cols();
        for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
      }
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("matmul_tn: inner dimension mismatch");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k)
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      const double* bk = b.data().data() + k * b.cols();
      double* ci = c.data().data() + i * b.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aki * bk[j];
    }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("matmul_nt: inner dimension mismatch");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.rows(); ++j)
      c(i, j) = dot(a.row(i), b.row(j));
  return c;
}

Vector matvec(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size())
    throw std::invalid_argument("matvec: dimension mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
  return y;
}

Vector matvec_t(const Matrix& a, const Vector& x) {
  if (a.rows() != x.size())
    throw std::invalid_argument("matvec_t: dimension mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * row[j];
  }
  return y;
}

Matrix outer(const Vector& x, const Vector& y) {
  Matrix m(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = 0; j < y.size(); ++j) m(i, j) = x[i] * y[j];
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double sq_dist(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("sq_dist: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

}  // namespace kato::la

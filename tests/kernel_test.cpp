#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "kernel/neuk.hpp"
#include "kernel/stationary.hpp"
#include "linalg/cholesky.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace kern = kato::kern;
namespace la = kato::la;

namespace {

la::Matrix random_points(std::size_t n, std::size_t d, kato::util::Rng& rng) {
  la::Matrix x(n, d);
  for (auto& v : x.data()) v = rng.uniform();
  return x;
}

/// Scalar loss L = sum_ij W_ij K_ij with a fixed random weight matrix — a
/// generic linear functional of the kernel matrix for gradient checking.
double weighted_sum(const la::Matrix& k, const la::Matrix& w) {
  double s = 0.0;
  for (std::size_t i = 0; i < k.rows(); ++i)
    for (std::size_t j = 0; j < k.cols(); ++j) s += w(i, j) * k(i, j);
  return s;
}

void check_param_gradient(kern::Kernel& k, const la::Matrix& x,
                          kato::util::Rng& rng, double tol) {
  la::Matrix w(x.rows(), x.rows());
  for (auto& v : w.data()) v = rng.normal();

  std::vector<double> analytic(k.n_params(), 0.0);
  k.backward(x, w, analytic);

  auto loss = [&] { return weighted_sum(k.matrix(x), w); };
  auto numeric = kato::nn::numeric_gradient(loss, k.params(), 1e-6);
  for (std::size_t i = 0; i < analytic.size(); ++i)
    EXPECT_NEAR(analytic[i], numeric[i], tol) << k.name() << " param " << i;
}

void check_input_gradient(kern::Kernel& k, const la::Matrix& x2,
                          kato::util::Rng& rng, double tol) {
  std::vector<double> x = rng.uniform_vec(k.input_dim());
  const la::Matrix g = k.input_grad(x, x2);
  la::Matrix xq(1, x.size());
  const double h = 1e-6;
  for (std::size_t m = 0; m < x.size(); ++m) {
    auto xp = x;
    auto xm = x;
    xp[m] += h;
    xm[m] -= h;
    la::Matrix q(1, x.size());
    q.set_row(0, xp);
    const la::Matrix kp = k.cross(q, x2);
    q.set_row(0, xm);
    const la::Matrix km = k.cross(q, x2);
    for (std::size_t j = 0; j < x2.rows(); ++j)
      EXPECT_NEAR(g(j, m), (kp(0, j) - km(0, j)) / (2 * h), tol)
          << k.name() << " dim " << m << " point " << j;
  }
}

void check_psd(const kern::Kernel& k, const la::Matrix& x) {
  la::Matrix m = k.matrix(x);
  // Symmetric?
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      ASSERT_NEAR(m(i, j), m(j, i), 1e-10);
  // PSD: jittered Cholesky must succeed with tiny jitter.
  const auto jc = la::cholesky_jittered(m);
  EXPECT_LE(jc.jitter, 1e-6 * m(0, 0));
}

std::unique_ptr<kern::NeukKernel> make_neuk(std::size_t d, kato::util::Rng& rng) {
  kern::NeukConfig cfg;
  cfg.latent_dim = 3;
  cfg.mix_width = 2;
  return std::make_unique<kern::NeukKernel>(d, cfg, rng);
}

}  // namespace

// ---------------------------------------------------------------------------
// Stationary kernels: parameterized over type.

class StationaryTest : public ::testing::TestWithParam<kern::StationaryType> {};

TEST_P(StationaryTest, DiagonalEqualsAmplitude) {
  kern::StationaryArd k(GetParam(), 3);
  k.params()[0] = std::log(2.5);
  std::vector<double> x{0.1, 0.5, 0.9};
  EXPECT_NEAR(k.diag(x), 2.5, 1e-12);
  la::Matrix xq(1, 3);
  xq.set_row(0, x);
  EXPECT_NEAR(k.cross(xq, xq)(0, 0), 2.5, 1e-9);
}

TEST_P(StationaryTest, DecaysWithDistance) {
  kern::StationaryArd k(GetParam(), 2);
  la::Matrix a(1, 2);
  a.set_row(0, std::vector<double>{0.0, 0.0});
  la::Matrix b(1, 2);
  b.set_row(0, std::vector<double>{0.1, 0.1});
  la::Matrix c(1, 2);
  c.set_row(0, std::vector<double>{2.0, 2.0});
  const double near = k.cross(a, b)(0, 0);
  const double far = k.cross(a, c)(0, 0);
  EXPECT_GT(near, far);
  EXPECT_GT(near, 0.0);
}

TEST_P(StationaryTest, ParamGradientMatchesFiniteDifference) {
  kato::util::Rng rng(21);
  kern::StationaryArd k(GetParam(), 3);
  // Nontrivial hyperparameters.
  for (auto& p : k.params()) p = rng.uniform(-0.5, 0.5);
  auto x = random_points(7, 3, rng);
  check_param_gradient(k, x, rng, 1e-5);
}

TEST_P(StationaryTest, InputGradientMatchesFiniteDifference) {
  kato::util::Rng rng(22);
  kern::StationaryArd k(GetParam(), 3);
  for (auto& p : k.params()) p = rng.uniform(-0.5, 0.5);
  auto x2 = random_points(6, 3, rng);
  check_input_gradient(k, x2, rng, 1e-6);
}

TEST_P(StationaryTest, MatrixIsPsd) {
  kato::util::Rng rng(23);
  kern::StationaryArd k(GetParam(), 4);
  auto x = random_points(20, 4, rng);
  check_psd(k, x);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, StationaryTest,
                         ::testing::Values(kern::StationaryType::rbf,
                                           kern::StationaryType::rq,
                                           kern::StationaryType::matern32,
                                           kern::StationaryType::matern52));

// ---------------------------------------------------------------------------
// Periodic kernel.

TEST(PeriodicKernel, PeriodicityHolds) {
  kern::PeriodicArd k(1);
  // period p = 0.5.
  k.params()[2] = std::log(0.5);
  la::Matrix a(1, 1);
  a.set_row(0, std::vector<double>{0.1});
  la::Matrix b(1, 1);
  b.set_row(0, std::vector<double>{0.1 + 0.5});
  EXPECT_NEAR(k.cross(a, b)(0, 0), k.diag(std::vector<double>{0.1}), 1e-9);
}

TEST(PeriodicKernel, ParamGradient) {
  kato::util::Rng rng(24);
  kern::PeriodicArd k(2);
  for (auto& p : k.params()) p = rng.uniform(-0.3, 0.3);
  auto x = random_points(6, 2, rng);
  check_param_gradient(k, x, rng, 1e-5);
}

TEST(PeriodicKernel, InputGradient) {
  kato::util::Rng rng(25);
  kern::PeriodicArd k(2);
  for (auto& p : k.params()) p = rng.uniform(-0.3, 0.3);
  auto x2 = random_points(5, 2, rng);
  check_input_gradient(k, x2, rng, 1e-6);
}

TEST(PeriodicKernel, MatrixIsPsd) {
  kato::util::Rng rng(26);
  kern::PeriodicArd k(3);
  auto x = random_points(15, 3, rng);
  check_psd(k, x);
}

// ---------------------------------------------------------------------------
// Neural kernel (Neuk).

TEST(NeukKernel, ConstantDiagonal) {
  kato::util::Rng rng(31);
  auto k = make_neuk(4, rng);
  std::vector<double> x1 = rng.uniform_vec(4);
  std::vector<double> x2 = rng.uniform_vec(4);
  EXPECT_NEAR(k->diag(x1), k->diag(x2), 1e-12);
  // diag matches cross(x,x).
  la::Matrix xq(1, 4);
  xq.set_row(0, x1);
  EXPECT_NEAR(k->cross(xq, xq)(0, 0), k->diag(x1), 1e-9);
}

TEST(NeukKernel, InitialDiagonalNearOne) {
  // Constructor calibrates b_k so that k(x,x) ~= 1 at init (standardized y).
  kato::util::Rng rng(32);
  auto k = make_neuk(5, rng);
  EXPECT_NEAR(k->diag(std::vector<double>(5, 0.5)), 1.0, 1e-9);
}

TEST(NeukKernel, SymmetricAndPsd) {
  kato::util::Rng rng(33);
  auto k = make_neuk(3, rng);
  // Perturb all parameters to a generic position.
  for (auto& p : k->params()) p += rng.uniform(-0.4, 0.4);
  auto x = random_points(18, 3, rng);
  check_psd(*k, x);
}

TEST(NeukKernel, PsdSurvivesLargeMixingWeights) {
  kato::util::Rng rng(34);
  auto k = make_neuk(2, rng);
  // Drive mixing weights up: softplus keeps them positive, so PSD must hold.
  for (auto& p : k->params()) p += rng.uniform(0.0, 2.0);
  auto x = random_points(12, 2, rng);
  check_psd(*k, x);
}

TEST(NeukKernel, ParamGradientMatchesFiniteDifference) {
  kato::util::Rng rng(35);
  auto k = make_neuk(3, rng);
  for (auto& p : k->params()) p += rng.uniform(-0.2, 0.2);
  auto x = random_points(6, 3, rng);
  check_param_gradient(*k, x, rng, 2e-5);
}

TEST(NeukKernel, InputGradientMatchesFiniteDifference) {
  kato::util::Rng rng(36);
  auto k = make_neuk(3, rng);
  for (auto& p : k->params()) p += rng.uniform(-0.2, 0.2);
  auto x2 = random_points(5, 3, rng);
  check_input_gradient(*k, x2, rng, 1e-6);
}

TEST(NeukKernel, CloneIsIndependent) {
  kato::util::Rng rng(37);
  auto k = make_neuk(2, rng);
  auto c = k->clone();
  ASSERT_EQ(c->n_params(), k->n_params());
  const double before = c->params()[0];
  k->params()[0] += 1.0;
  EXPECT_DOUBLE_EQ(c->params()[0], before);
}

TEST(NeukKernel, SimilarityDecreasesWithDistance) {
  kato::util::Rng rng(38);
  auto k = make_neuk(3, rng);
  std::vector<double> base(3, 0.5);
  la::Matrix xb(1, 3);
  xb.set_row(0, base);
  double prev = k->diag(base) + 1e-9;
  for (double step : {0.05, 0.2, 0.6}) {
    std::vector<double> moved{0.5 + step, 0.5 + step, 0.5 + step};
    la::Matrix xm(1, 3);
    xm.set_row(0, moved);
    const double v = k->cross(xb, xm)(0, 0);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(NeukKernel, RejectsEmptyPrimitives) {
  kato::util::Rng rng(39);
  kern::NeukConfig cfg;
  cfg.primitives.clear();
  EXPECT_THROW(kern::NeukKernel(2, cfg, rng), std::invalid_argument);
}

namespace {

/// Neuk with every parameter pinned by hand: identity transforms, zero
/// biases, unit shape parameters (alpha = p = 1) and known mixing weights.
/// In this configuration the kernel has the closed form
///   k(x,y) = exp(c + a_rbf h_rbf + a_rq h_rq + a_per h_per)
/// with r2 = ||x-y||^2, h_rbf = exp(-r2), h_rq = 1/(1+r2/2),
/// h_per = exp(-2 sum_m sin^2(pi (x_m-y_m))) — evaluated independently in
/// the tests below as a golden reference.
std::unique_ptr<kern::NeukKernel> pinned_neuk(kato::util::Rng& rng) {
  kern::NeukConfig cfg;
  cfg.latent_dim = 2;
  cfg.mix_width = 1;
  auto k = std::make_unique<kern::NeukKernel>(2, cfg, rng);
  auto p = k->params();
  std::fill(p.begin(), p.end(), 0.0);
  // Per-primitive blocks: W (2x2 row-major), b (2), then shape (rq/per only).
  p[0] = 1.0;  // rbf W = I
  p[3] = 1.0;
  p[6] = 1.0;  // rq W = I
  p[9] = 1.0;
  p[13] = 1.0;  // periodic W = I
  p[16] = 1.0;
  // Mixing: w_z = [0.2, -0.3, 0.4], b_z = 0.1, b_k = -1.0.
  p[20] = 0.2;
  p[21] = -0.3;
  p[22] = 0.4;
  p[23] = 0.1;
  p[24] = -1.0;
  return k;
}

double pinned_neuk_reference(std::span<const double> x,
                             std::span<const double> y) {
  double r2 = 0.0;
  double per = 0.0;
  for (std::size_t m = 0; m < x.size(); ++m) {
    const double d = x[m] - y[m];
    r2 += d * d;
    const double s = std::sin(M_PI * d);
    per += s * s;
  }
  const double h_rbf = std::exp(-r2);
  const double h_rq = 1.0 / (1.0 + 0.5 * r2);
  const double h_per = std::exp(-2.0 * per);
  const double c = 0.1 - 1.0;
  return std::exp(c + kern::softplus(0.2) * h_rbf +
                  kern::softplus(-0.3) * h_rq + kern::softplus(0.4) * h_per);
}

}  // namespace

TEST(NeukKernel, GoldenValuesAtPinnedParameters) {
  kato::util::Rng rng(61);
  auto k = pinned_neuk(rng);
  ASSERT_EQ(k->n_params(), 25u);

  const std::vector<std::vector<double>> pts{
      {0.0, 0.0}, {0.25, 0.75}, {0.5, 0.5}, {0.9, 0.1}};
  const la::Matrix x = la::Matrix::from_points(pts);
  const la::Matrix km = k->matrix(x);
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = 0; j < pts.size(); ++j)
      EXPECT_NEAR(km(i, j), pinned_neuk_reference(pts[i], pts[j]), 1e-12)
          << "pair " << i << "," << j;

  // Spot-check two precomputed constants so a silent change in the closed
  // form itself cannot slip through the reference function.
  // k(x,x) = exp(-0.9 + softplus(0.2) + softplus(-0.3) + softplus(0.4)).
  EXPECT_NEAR(k->diag(pts[0]), 3.9177180972212517, 1e-10);
  EXPECT_NEAR(km(0, 2), pinned_neuk_reference(pts[0], pts[2]), 1e-12);
  EXPECT_NEAR(km(0, 2), 1.045298351217701, 1e-10);
}

TEST(NeukKernel, PinnedParamGradientMatchesFiniteDifference) {
  kato::util::Rng rng(62);
  auto k = pinned_neuk(rng);
  auto x = random_points(6, 2, rng);
  check_param_gradient(*k, x, rng, 2e-5);
}

TEST(NeukKernel, PinnedInputGradientMatchesFiniteDifference) {
  kato::util::Rng rng(63);
  auto k = pinned_neuk(rng);
  auto x2 = random_points(5, 2, rng);
  check_input_gradient(*k, x2, rng, 1e-6);
}

TEST(NeukKernel, MatrixOverrideMatchesCross) {
  kato::util::Rng rng(64);
  auto k = make_neuk(4, rng);
  for (auto& p : k->params()) p += rng.uniform(-0.3, 0.3);
  auto x = random_points(14, 4, rng);
  const la::Matrix fast = k->matrix(x);
  const la::Matrix ref = k->cross(x, x);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.rows(); ++j)
      EXPECT_DOUBLE_EQ(fast(i, j), ref(i, j));
}

TEST_P(StationaryTest, MatrixOverrideMatchesCross) {
  kato::util::Rng rng(65);
  kern::StationaryArd k(GetParam(), 3);
  for (auto& p : k.params()) p = rng.uniform(-0.5, 0.5);
  auto x = random_points(12, 3, rng);
  const la::Matrix fast = k.matrix(x);
  const la::Matrix ref = k.cross(x, x);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.rows(); ++j)
      EXPECT_DOUBLE_EQ(fast(i, j), ref(i, j));
}

TEST(Softplus, ValueAndDerivative) {
  EXPECT_NEAR(kern::softplus(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(kern::softplus(40.0), 40.0, 1e-9);
  EXPECT_NEAR(kern::softplus(-40.0), std::exp(-40.0), 1e-20);
  for (double x : {-3.0, 0.0, 2.0}) {
    const double h = 1e-6;
    const double num = (kern::softplus(x + h) - kern::softplus(x - h)) / (2 * h);
    EXPECT_NEAR(kern::softplus_deriv(x), num, 1e-8);
  }
}

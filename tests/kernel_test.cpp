#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "kernel/neuk.hpp"
#include "kernel/stationary.hpp"
#include "linalg/cholesky.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace kern = kato::kern;
namespace la = kato::la;

namespace {

la::Matrix random_points(std::size_t n, std::size_t d, kato::util::Rng& rng) {
  la::Matrix x(n, d);
  for (auto& v : x.data()) v = rng.uniform();
  return x;
}

/// Scalar loss L = sum_ij W_ij K_ij with a fixed random weight matrix — a
/// generic linear functional of the kernel matrix for gradient checking.
double weighted_sum(const la::Matrix& k, const la::Matrix& w) {
  double s = 0.0;
  for (std::size_t i = 0; i < k.rows(); ++i)
    for (std::size_t j = 0; j < k.cols(); ++j) s += w(i, j) * k(i, j);
  return s;
}

void check_param_gradient(kern::Kernel& k, const la::Matrix& x,
                          kato::util::Rng& rng, double tol) {
  la::Matrix w(x.rows(), x.rows());
  for (auto& v : w.data()) v = rng.normal();

  std::vector<double> analytic(k.n_params(), 0.0);
  k.backward(x, w, analytic);

  auto loss = [&] { return weighted_sum(k.matrix(x), w); };
  auto numeric = kato::nn::numeric_gradient(loss, k.params(), 1e-6);
  for (std::size_t i = 0; i < analytic.size(); ++i)
    EXPECT_NEAR(analytic[i], numeric[i], tol) << k.name() << " param " << i;
}

void check_input_gradient(kern::Kernel& k, const la::Matrix& x2,
                          kato::util::Rng& rng, double tol) {
  std::vector<double> x = rng.uniform_vec(k.input_dim());
  const la::Matrix g = k.input_grad(x, x2);
  la::Matrix xq(1, x.size());
  const double h = 1e-6;
  for (std::size_t m = 0; m < x.size(); ++m) {
    auto xp = x;
    auto xm = x;
    xp[m] += h;
    xm[m] -= h;
    la::Matrix q(1, x.size());
    q.set_row(0, xp);
    const la::Matrix kp = k.cross(q, x2);
    q.set_row(0, xm);
    const la::Matrix km = k.cross(q, x2);
    for (std::size_t j = 0; j < x2.rows(); ++j)
      EXPECT_NEAR(g(j, m), (kp(0, j) - km(0, j)) / (2 * h), tol)
          << k.name() << " dim " << m << " point " << j;
  }
}

void check_psd(const kern::Kernel& k, const la::Matrix& x) {
  la::Matrix m = k.matrix(x);
  // Symmetric?
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      ASSERT_NEAR(m(i, j), m(j, i), 1e-10);
  // PSD: jittered Cholesky must succeed with tiny jitter.
  const auto jc = la::cholesky_jittered(m);
  EXPECT_LE(jc.jitter, 1e-6 * m(0, 0));
}

std::unique_ptr<kern::NeukKernel> make_neuk(std::size_t d, kato::util::Rng& rng) {
  kern::NeukConfig cfg;
  cfg.latent_dim = 3;
  cfg.mix_width = 2;
  return std::make_unique<kern::NeukKernel>(d, cfg, rng);
}

}  // namespace

// ---------------------------------------------------------------------------
// Stationary kernels: parameterized over type.

class StationaryTest : public ::testing::TestWithParam<kern::StationaryType> {};

TEST_P(StationaryTest, DiagonalEqualsAmplitude) {
  kern::StationaryArd k(GetParam(), 3);
  k.params()[0] = std::log(2.5);
  std::vector<double> x{0.1, 0.5, 0.9};
  EXPECT_NEAR(k.diag(x), 2.5, 1e-12);
  la::Matrix xq(1, 3);
  xq.set_row(0, x);
  EXPECT_NEAR(k.cross(xq, xq)(0, 0), 2.5, 1e-9);
}

TEST_P(StationaryTest, DecaysWithDistance) {
  kern::StationaryArd k(GetParam(), 2);
  la::Matrix a(1, 2);
  a.set_row(0, std::vector<double>{0.0, 0.0});
  la::Matrix b(1, 2);
  b.set_row(0, std::vector<double>{0.1, 0.1});
  la::Matrix c(1, 2);
  c.set_row(0, std::vector<double>{2.0, 2.0});
  const double near = k.cross(a, b)(0, 0);
  const double far = k.cross(a, c)(0, 0);
  EXPECT_GT(near, far);
  EXPECT_GT(near, 0.0);
}

TEST_P(StationaryTest, ParamGradientMatchesFiniteDifference) {
  kato::util::Rng rng(21);
  kern::StationaryArd k(GetParam(), 3);
  // Nontrivial hyperparameters.
  for (auto& p : k.params()) p = rng.uniform(-0.5, 0.5);
  auto x = random_points(7, 3, rng);
  check_param_gradient(k, x, rng, 1e-5);
}

TEST_P(StationaryTest, InputGradientMatchesFiniteDifference) {
  kato::util::Rng rng(22);
  kern::StationaryArd k(GetParam(), 3);
  for (auto& p : k.params()) p = rng.uniform(-0.5, 0.5);
  auto x2 = random_points(6, 3, rng);
  check_input_gradient(k, x2, rng, 1e-6);
}

TEST_P(StationaryTest, MatrixIsPsd) {
  kato::util::Rng rng(23);
  kern::StationaryArd k(GetParam(), 4);
  auto x = random_points(20, 4, rng);
  check_psd(k, x);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, StationaryTest,
                         ::testing::Values(kern::StationaryType::rbf,
                                           kern::StationaryType::rq,
                                           kern::StationaryType::matern32,
                                           kern::StationaryType::matern52));

// ---------------------------------------------------------------------------
// Periodic kernel.

TEST(PeriodicKernel, PeriodicityHolds) {
  kern::PeriodicArd k(1);
  // period p = 0.5.
  k.params()[2] = std::log(0.5);
  la::Matrix a(1, 1);
  a.set_row(0, std::vector<double>{0.1});
  la::Matrix b(1, 1);
  b.set_row(0, std::vector<double>{0.1 + 0.5});
  EXPECT_NEAR(k.cross(a, b)(0, 0), k.diag(std::vector<double>{0.1}), 1e-9);
}

TEST(PeriodicKernel, ParamGradient) {
  kato::util::Rng rng(24);
  kern::PeriodicArd k(2);
  for (auto& p : k.params()) p = rng.uniform(-0.3, 0.3);
  auto x = random_points(6, 2, rng);
  check_param_gradient(k, x, rng, 1e-5);
}

TEST(PeriodicKernel, InputGradient) {
  kato::util::Rng rng(25);
  kern::PeriodicArd k(2);
  for (auto& p : k.params()) p = rng.uniform(-0.3, 0.3);
  auto x2 = random_points(5, 2, rng);
  check_input_gradient(k, x2, rng, 1e-6);
}

TEST(PeriodicKernel, MatrixIsPsd) {
  kato::util::Rng rng(26);
  kern::PeriodicArd k(3);
  auto x = random_points(15, 3, rng);
  check_psd(k, x);
}

// ---------------------------------------------------------------------------
// Neural kernel (Neuk).

TEST(NeukKernel, ConstantDiagonal) {
  kato::util::Rng rng(31);
  auto k = make_neuk(4, rng);
  std::vector<double> x1 = rng.uniform_vec(4);
  std::vector<double> x2 = rng.uniform_vec(4);
  EXPECT_NEAR(k->diag(x1), k->diag(x2), 1e-12);
  // diag matches cross(x,x).
  la::Matrix xq(1, 4);
  xq.set_row(0, x1);
  EXPECT_NEAR(k->cross(xq, xq)(0, 0), k->diag(x1), 1e-9);
}

TEST(NeukKernel, InitialDiagonalNearOne) {
  // Constructor calibrates b_k so that k(x,x) ~= 1 at init (standardized y).
  kato::util::Rng rng(32);
  auto k = make_neuk(5, rng);
  EXPECT_NEAR(k->diag(std::vector<double>(5, 0.5)), 1.0, 1e-9);
}

TEST(NeukKernel, SymmetricAndPsd) {
  kato::util::Rng rng(33);
  auto k = make_neuk(3, rng);
  // Perturb all parameters to a generic position.
  for (auto& p : k->params()) p += rng.uniform(-0.4, 0.4);
  auto x = random_points(18, 3, rng);
  check_psd(*k, x);
}

TEST(NeukKernel, PsdSurvivesLargeMixingWeights) {
  kato::util::Rng rng(34);
  auto k = make_neuk(2, rng);
  // Drive mixing weights up: softplus keeps them positive, so PSD must hold.
  for (auto& p : k->params()) p += rng.uniform(0.0, 2.0);
  auto x = random_points(12, 2, rng);
  check_psd(*k, x);
}

TEST(NeukKernel, ParamGradientMatchesFiniteDifference) {
  kato::util::Rng rng(35);
  auto k = make_neuk(3, rng);
  for (auto& p : k->params()) p += rng.uniform(-0.2, 0.2);
  auto x = random_points(6, 3, rng);
  check_param_gradient(*k, x, rng, 2e-5);
}

TEST(NeukKernel, InputGradientMatchesFiniteDifference) {
  kato::util::Rng rng(36);
  auto k = make_neuk(3, rng);
  for (auto& p : k->params()) p += rng.uniform(-0.2, 0.2);
  auto x2 = random_points(5, 3, rng);
  check_input_gradient(*k, x2, rng, 1e-6);
}

TEST(NeukKernel, CloneIsIndependent) {
  kato::util::Rng rng(37);
  auto k = make_neuk(2, rng);
  auto c = k->clone();
  ASSERT_EQ(c->n_params(), k->n_params());
  const double before = c->params()[0];
  k->params()[0] += 1.0;
  EXPECT_DOUBLE_EQ(c->params()[0], before);
}

TEST(NeukKernel, SimilarityDecreasesWithDistance) {
  kato::util::Rng rng(38);
  auto k = make_neuk(3, rng);
  std::vector<double> base(3, 0.5);
  la::Matrix xb(1, 3);
  xb.set_row(0, base);
  double prev = k->diag(base) + 1e-9;
  for (double step : {0.05, 0.2, 0.6}) {
    std::vector<double> moved{0.5 + step, 0.5 + step, 0.5 + step};
    la::Matrix xm(1, 3);
    xm.set_row(0, moved);
    const double v = k->cross(xb, xm)(0, 0);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(NeukKernel, RejectsEmptyPrimitives) {
  kato::util::Rng rng(39);
  kern::NeukConfig cfg;
  cfg.primitives.clear();
  EXPECT_THROW(kern::NeukKernel(2, cfg, rng), std::invalid_argument);
}

TEST(Softplus, ValueAndDerivative) {
  EXPECT_NEAR(kern::softplus(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(kern::softplus(40.0), 40.0, 1e-9);
  EXPECT_NEAR(kern::softplus(-40.0), std::exp(-40.0), 1e-20);
  for (double x : {-3.0, 0.0, 2.0}) {
    const double h = 1e-6;
    const double num = (kern::softplus(x + h) - kern::softplus(x - h)) / (2 * h);
    EXPECT_NEAR(kern::softplus_deriv(x), num, 1e-8);
  }
}

#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace nn = kato::nn;
namespace la = kato::la;

namespace {

/// Scalar loss L = 0.5 ||f(x) - target||^2 for gradient checking.
double sq_loss(const la::Vector& y, const la::Vector& target) {
  double s = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double d = y[i] - target[i];
    s += 0.5 * d * d;
  }
  return s;
}

}  // namespace

TEST(Activations, ValuesAndDerivatives) {
  EXPECT_DOUBLE_EQ(nn::activate(nn::Activation::identity, 3.0), 3.0);
  EXPECT_NEAR(nn::activate(nn::Activation::sigmoid, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(nn::activate(nn::Activation::tanh, 0.0), 0.0, 1e-12);
  // Derivatives vs finite differences.
  for (auto act : {nn::Activation::sigmoid, nn::Activation::tanh}) {
    for (double x : {-2.0, -0.3, 0.0, 1.7}) {
      const double h = 1e-6;
      const double num =
          (nn::activate(act, x + h) - nn::activate(act, x - h)) / (2 * h);
      EXPECT_NEAR(nn::activate_deriv(act, x), num, 1e-7);
    }
  }
}

TEST(Mlp, ShapesAndDeterminism) {
  kato::util::Rng rng(5);
  nn::Mlp net({3, 8, 2}, nn::Activation::sigmoid, rng);
  EXPECT_EQ(net.in_dim(), 3u);
  EXPECT_EQ(net.out_dim(), 2u);
  EXPECT_EQ(net.n_params(), 3u * 8u + 8u + 8u * 2u + 2u);
  la::Vector x{0.1, -0.2, 0.7};
  auto y1 = net.forward(x);
  auto y2 = net.forward(x);
  ASSERT_EQ(y1.size(), 2u);
  EXPECT_DOUBLE_EQ(y1[0], y2[0]);
}

TEST(Mlp, ParameterGradientMatchesFiniteDifference) {
  kato::util::Rng rng(7);
  nn::Mlp net({4, 6, 3}, nn::Activation::sigmoid, rng);
  la::Vector x{0.3, -0.5, 0.2, 0.9};
  la::Vector target{0.1, -0.4, 0.6};

  net.zero_grad();
  nn::Mlp::Cache cache;
  auto y = net.forward(x, cache);
  la::Vector dy(3);
  for (std::size_t i = 0; i < 3; ++i) dy[i] = y[i] - target[i];
  (void)net.backward(cache, dy);

  auto loss_fn = [&] { return sq_loss(net.forward(x), target); };
  auto numeric = nn::numeric_gradient(loss_fn, net.params());
  auto analytic = net.grads();
  ASSERT_EQ(numeric.size(), analytic.size());
  for (std::size_t i = 0; i < numeric.size(); ++i)
    EXPECT_NEAR(analytic[i], numeric[i], 1e-6) << "param " << i;
}

TEST(Mlp, InputGradientMatchesFiniteDifference) {
  kato::util::Rng rng(8);
  nn::Mlp net({3, 5, 2}, nn::Activation::tanh, rng);
  la::Vector x{0.4, -0.1, 0.8};
  la::Vector target{0.2, 0.3};

  nn::Mlp::Cache cache;
  auto y = net.forward(x, cache);
  la::Vector dy(2);
  for (std::size_t i = 0; i < 2; ++i) dy[i] = y[i] - target[i];
  net.zero_grad();
  auto dx = net.backward(cache, dy);

  const double h = 1e-6;
  for (std::size_t j = 0; j < x.size(); ++j) {
    la::Vector xp = x;
    la::Vector xm = x;
    xp[j] += h;
    xm[j] -= h;
    const double num =
        (sq_loss(net.forward(xp), target) - sq_loss(net.forward(xm), target)) /
        (2 * h);
    EXPECT_NEAR(dx[j], num, 1e-7) << "input " << j;
  }
}

TEST(Mlp, JacobianMatchesFiniteDifference) {
  kato::util::Rng rng(9);
  nn::Mlp net({3, 32, 2}, nn::Activation::sigmoid, rng);  // paper's structure
  la::Vector x{0.2, 0.5, -0.3};
  auto j = net.jacobian(x);
  ASSERT_EQ(j.rows(), 2u);
  ASSERT_EQ(j.cols(), 3u);
  const double h = 1e-6;
  for (std::size_t c = 0; c < 3; ++c) {
    la::Vector xp = x;
    la::Vector xm = x;
    xp[c] += h;
    xm[c] -= h;
    auto yp = net.forward(xp);
    auto ym = net.forward(xm);
    for (std::size_t r = 0; r < 2; ++r)
      EXPECT_NEAR(j(r, c), (yp[r] - ym[r]) / (2 * h), 1e-6);
  }
}

TEST(Mlp, DeepJacobian) {
  kato::util::Rng rng(10);
  nn::Mlp net({2, 4, 4, 3}, nn::Activation::tanh, rng);
  la::Vector x{0.3, -0.7};
  auto j = net.jacobian(x);
  const double h = 1e-6;
  for (std::size_t c = 0; c < 2; ++c) {
    la::Vector xp = x, xm = x;
    xp[c] += h;
    xm[c] -= h;
    auto yp = net.forward(xp);
    auto ym = net.forward(xm);
    for (std::size_t r = 0; r < 3; ++r)
      EXPECT_NEAR(j(r, c), (yp[r] - ym[r]) / (2 * h), 1e-6);
  }
}

TEST(Mlp, GradAccumulationAcrossPoints) {
  kato::util::Rng rng(11);
  nn::Mlp net({2, 4, 1}, nn::Activation::sigmoid, rng);
  la::Vector x1{0.1, 0.2};
  la::Vector x2{-0.4, 0.9};
  la::Vector t{0.0};

  net.zero_grad();
  for (const auto& x : {x1, x2}) {
    nn::Mlp::Cache cache;
    auto y = net.forward(x, cache);
    la::Vector dy{y[0] - t[0]};
    net.backward(cache, dy);
  }
  auto loss_fn = [&] {
    return sq_loss(net.forward(x1), t) + sq_loss(net.forward(x2), t);
  };
  auto numeric = nn::numeric_gradient(loss_fn, net.params());
  auto analytic = net.grads();
  for (std::size_t i = 0; i < numeric.size(); ++i)
    EXPECT_NEAR(analytic[i], numeric[i], 1e-6);
}

TEST(Adam, MinimizesQuadratic) {
  // f(p) = sum (p_i - c_i)^2, gradient 2(p - c).
  std::vector<double> p{5.0, -3.0, 0.5};
  const std::vector<double> c{1.0, 2.0, -1.0};
  nn::Adam adam(3, 0.1);
  std::vector<double> g(3);
  for (int it = 0; it < 500; ++it) {
    for (std::size_t i = 0; i < 3; ++i) g[i] = 2.0 * (p[i] - c[i]);
    adam.step(p, g);
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(p[i], c[i], 1e-3);
}

TEST(Adam, RejectsSizeMismatch) {
  nn::Adam adam(3);
  std::vector<double> p(2), g(2);
  EXPECT_THROW(adam.step(p, g), std::invalid_argument);
}

TEST(Mlp, TrainsToFitSmallDataset) {
  // End-to-end sanity: fit y = sin(2x) on [-1,1] with the paper's MLP shape.
  kato::util::Rng rng(12);
  nn::Mlp net({1, 32, 1}, nn::Activation::sigmoid, rng);
  nn::Adam adam(net.n_params(), 0.02);
  std::vector<la::Vector> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) {
    const double x = -1.0 + 2.0 * i / 39.0;
    xs.push_back({x});
    ys.push_back(std::sin(2.0 * x));
  }
  double first_loss = 0.0, last_loss = 0.0;
  for (int epoch = 0; epoch < 800; ++epoch) {
    net.zero_grad();
    double loss = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      nn::Mlp::Cache cache;
      auto y = net.forward(xs[i], cache);
      const double r = y[0] - ys[i];
      loss += 0.5 * r * r;
      net.backward(cache, {r});
    }
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
    adam.step(net.params(), net.grads());
  }
  EXPECT_LT(last_loss, 0.05 * first_loss);
}

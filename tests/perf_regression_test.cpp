// Guards for the batched/threaded hot paths: the fast implementations must
// be drop-in replacements for the reference per-point, single-thread code.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>

#include "bo/mace.hpp"
#include "bo/surrogate.hpp"
#include "gp/gp.hpp"
#include "gp/kat_gp.hpp"
#include "kernel/neuk.hpp"
#include "kernel/stationary.hpp"
#include "linalg/cholesky.hpp"
#include "util/parallel.hpp"

namespace gp = kato::gp;
namespace bo = kato::bo;
namespace la = kato::la;
namespace kern = kato::kern;

namespace {

la::Matrix random_points(std::size_t n, std::size_t d, kato::util::Rng& rng) {
  la::Matrix x(n, d);
  for (auto& v : x.data()) v = rng.uniform();
  return x;
}

gp::GaussianProcess fitted_neuk_gp(std::size_t n, std::size_t d,
                                   std::uint64_t seed) {
  kato::util::Rng rng(seed);
  kern::NeukConfig cfg;
  gp::GaussianProcess model(std::make_unique<kern::NeukKernel>(d, cfg, rng));
  const auto x = random_points(n, d, rng);
  la::Vector y(n);
  for (std::size_t i = 0; i < n; ++i)
    y[i] = std::sin(3.0 * x(i, 0)) + 0.5 * x(i, 1);
  model.set_data(x, y);
  gp::GpFitOptions opts;
  opts.iterations = 15;
  model.fit(opts, rng);
  return model;
}

/// RAII guard for the KATO_THREADS knob.
class ThreadsEnv {
 public:
  explicit ThreadsEnv(const char* value) {
    if (value == nullptr)
      unsetenv("KATO_THREADS");
    else
      setenv("KATO_THREADS", value, 1);
  }
  ~ThreadsEnv() { unsetenv("KATO_THREADS"); }
};

bo::GpSurrogate fitted_surrogate(std::uint64_t seed) {
  kato::util::Rng rng(seed);
  gp::GpFitOptions fit{30, 0.05, 192, 1e-6};
  bo::GpSurrogate surr(3, 2, bo::KernelKind::neuk, fit, fit, rng);
  const std::size_t n = 50;
  la::Matrix x = random_points(n, 3, rng);
  la::Matrix y(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 3; ++j) s += (x(i, j) - 0.6) * (x(i, j) - 0.6);
    y(i, 0) = s;
    y(i, 1) = x(i, 0);
  }
  surr.refit(x, y, rng);
  return surr;
}

}  // namespace

TEST(PredictBatch, AgreesWithPerPointLoop) {
  const auto model = fitted_neuk_gp(80, 6, 41);
  kato::util::Rng rng(42);
  const auto q = random_points(33, 6, rng);

  const auto batch = model.predict_batch(q);
  ASSERT_EQ(batch.size(), q.rows());
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const auto ref = model.predict(q.row(i));
    EXPECT_NEAR(batch[i].mean, ref.mean, 1e-10) << "query " << i;
    EXPECT_NEAR(batch[i].var, ref.var, 1e-10) << "query " << i;
  }
}

TEST(PredictBatch, StdVariantAgreesToo) {
  const auto model = fitted_neuk_gp(60, 4, 43);
  kato::util::Rng rng(44);
  const auto q = random_points(17, 4, rng);
  const auto batch = model.predict_std_batch(q);
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const auto ref = model.predict_std(q.row(i));
    EXPECT_NEAR(batch[i].mean, ref.mean, 1e-10);
    EXPECT_NEAR(batch[i].var, ref.var, 1e-10);
  }
}

TEST(PredictBatch, ThreadCountDoesNotChangeResults) {
  const auto model = fitted_neuk_gp(70, 5, 45);
  kato::util::Rng rng(46);
  const auto q = random_points(29, 5, rng);

  std::vector<gp::GpPrediction> single;
  {
    ThreadsEnv env("1");
    single = model.predict_batch(q);
  }
  std::vector<gp::GpPrediction> threaded;
  {
    ThreadsEnv env("4");
    threaded = model.predict_batch(q);
  }
  ASSERT_EQ(single.size(), threaded.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    // Bit-identical, not just close: chunking must not reorder arithmetic.
    EXPECT_EQ(single[i].mean, threaded[i].mean) << "query " << i;
    EXPECT_EQ(single[i].var, threaded[i].var) << "query " << i;
  }
}

TEST(PredictBatch, MultiGpMatchesPerMetric) {
  kato::util::Rng rng(47);
  gp::MultiGp multi(2, [&] {
    kern::NeukConfig cfg;
    return std::make_unique<kern::NeukKernel>(3, cfg, rng);
  });
  const std::size_t n = 40;
  la::Matrix x = random_points(n, 3, rng);
  la::Matrix y(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    y(i, 0) = std::cos(2.0 * x(i, 0));
    y(i, 1) = x(i, 1) * x(i, 2);
  }
  multi.set_data(x, y);

  const auto q = random_points(11, 3, rng);
  const auto batch = multi.predict_batch(q);
  ASSERT_EQ(batch.size(), q.rows());
  for (std::size_t i = 0; i < q.rows(); ++i) {
    ASSERT_EQ(batch[i].size(), 2u);
    const auto ref = multi.predict(q.row(i));
    for (std::size_t m = 0; m < 2; ++m) {
      EXPECT_NEAR(batch[i][m].mean, ref[m].mean, 1e-10);
      EXPECT_NEAR(batch[i][m].var, ref[m].var, 1e-10);
    }
  }
}

TEST(PredictBatch, KatGpAgreesWithPerPointLoop) {
  kato::util::Rng rng(53);
  // Fitted single-metric RBF source model on a 2-d toy function.
  auto source = std::make_unique<gp::MultiGp>(1, [] {
    return std::make_unique<kern::StationaryArd>(kern::StationaryType::rbf, 2);
  });
  const std::size_t n_src = 60;
  la::Matrix xs = random_points(n_src, 2, rng);
  la::Matrix ys(n_src, 1);
  for (std::size_t i = 0; i < n_src; ++i)
    ys(i, 0) = std::sin(4.0 * xs(i, 0)) + xs(i, 1);
  source->set_data(xs, ys);
  gp::GpFitOptions fit;
  fit.iterations = 30;
  source->fit(fit, rng);

  gp::KatGpConfig cfg;
  cfg.init_iterations = 40;
  gp::KatGp kat(source.get(), 2, 1, cfg, rng);
  const std::size_t n_tgt = 20;
  la::Matrix xt = random_points(n_tgt, 2, rng);
  la::Matrix yt(n_tgt, 1);
  for (std::size_t i = 0; i < n_tgt; ++i)
    yt(i, 0) = std::sin(4.0 * xt(i, 0)) + 1.2 * xt(i, 1);
  kat.set_target_data(xt, yt);
  kat.fit(rng);

  const auto q = random_points(13, 2, rng);
  const auto batch = kat.predict_batch(q);
  ASSERT_EQ(batch.size(), q.rows());
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const auto ref = kat.predict(q.row(i));
    ASSERT_EQ(batch[i].size(), ref.size());
    for (std::size_t m = 0; m < ref.size(); ++m) {
      EXPECT_NEAR(batch[i][m].mean, ref[m].mean, 1e-10) << i;
      EXPECT_NEAR(batch[i][m].var, ref[m].var, 1e-10) << i;
    }
  }
}

TEST(ThreadedMace, ProposalsBitIdenticalToSingleThread) {
  const auto surr = fitted_surrogate(48);
  const std::vector<kato::ckt::MetricSpec> specs{{"c0", "", 0.5, true}};
  bo::MaceOptions opts;
  opts.nsga.population = 16;
  opts.nsga.generations = 6;

  auto run = [&] {
    kato::util::Rng rng(49);
    return bo::mace_proposals(surr, specs, 0.1, opts, rng, {});
  };

  kato::moo::ParetoSet single;
  {
    ThreadsEnv env("1");
    single = run();
  }
  kato::moo::ParetoSet threaded;
  {
    ThreadsEnv env("4");
    threaded = run();
  }
  // The proposal set must be bit-identical: same designs, same acquisition
  // values, same order.
  ASSERT_EQ(single.x.size(), threaded.x.size());
  for (std::size_t i = 0; i < single.x.size(); ++i) {
    EXPECT_EQ(single.x[i], threaded.x[i]) << "design " << i;
    EXPECT_EQ(single.f[i], threaded.f[i]) << "objective " << i;
  }
}

TEST(ThreadedMace, UnconstrainedVariantBitIdenticalToo) {
  const auto surr = fitted_surrogate(50);
  bo::MaceOptions opts;
  opts.nsga.population = 12;
  opts.nsga.generations = 4;
  auto run = [&] {
    kato::util::Rng rng(51);
    return bo::mace_proposals_unconstrained(surr, 0.2, opts, rng, {});
  };
  kato::moo::ParetoSet single;
  {
    ThreadsEnv env(nullptr);  // unset: defaults to 1
    single = run();
  }
  kato::moo::ParetoSet threaded;
  {
    ThreadsEnv env("3");
    threaded = run();
  }
  ASSERT_EQ(single.x.size(), threaded.x.size());
  for (std::size_t i = 0; i < single.x.size(); ++i) {
    EXPECT_EQ(single.x[i], threaded.x[i]);
    EXPECT_EQ(single.f[i], threaded.f[i]);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadsEnv env("5");
  std::vector<int> hits(1001, 0);
  kato::util::parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadsEnv env("4");
  EXPECT_THROW(
      kato::util::parallel_for(100,
                               [&](std::size_t b, std::size_t) {
                                 if (b == 0) throw std::runtime_error("boom");
                               }),
      std::runtime_error);
}

TEST(ThreadCount, ParsesEnvironment) {
  {
    ThreadsEnv env(nullptr);
    EXPECT_EQ(kato::util::thread_count(), 1u);
  }
  {
    ThreadsEnv env("6");
    EXPECT_EQ(kato::util::thread_count(), 6u);
  }
  {
    ThreadsEnv env("0");
    EXPECT_EQ(kato::util::thread_count(), 1u);
  }
  {
    ThreadsEnv env("garbage");
    EXPECT_EQ(kato::util::thread_count(), 1u);
  }
  {
    ThreadsEnv env("1000");
    EXPECT_EQ(kato::util::thread_count(), 64u);
  }
}

TEST(SolveLowerMulti, MatchesColumnwiseSolves) {
  kato::util::Rng rng(52);
  const std::size_t n = 30;
  la::Matrix b = random_points(n, n, rng);
  la::Matrix spd = la::matmul_nt(b, b);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  const auto l = la::cholesky(spd);
  ASSERT_TRUE(l.has_value());

  const std::size_t m = 7;
  la::Matrix rhs = random_points(n, m, rng);
  const la::Matrix x = la::solve_lower_multi(*l, rhs);
  for (std::size_t j = 0; j < m; ++j) {
    la::Vector col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = rhs(i, j);
    const auto ref = la::solve_lower(*l, col);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x(i, j), ref[i], 1e-12);
  }
}

// Guards for the batched/threaded hot paths: the fast implementations must
// be drop-in replacements for the reference per-point, single-thread code.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>

#include "bo/mace.hpp"
#include "bo/surrogate.hpp"
#include "gp/gp.hpp"
#include "gp/kat_gp.hpp"
#include "kernel/neuk.hpp"
#include "kernel/stationary.hpp"
#include "linalg/cholesky.hpp"
#include "util/parallel.hpp"

namespace gp = kato::gp;
namespace bo = kato::bo;
namespace la = kato::la;
namespace kern = kato::kern;

namespace {

la::Matrix random_points(std::size_t n, std::size_t d, kato::util::Rng& rng) {
  la::Matrix x(n, d);
  for (auto& v : x.data()) v = rng.uniform();
  return x;
}

gp::GaussianProcess fitted_neuk_gp(std::size_t n, std::size_t d,
                                   std::uint64_t seed) {
  kato::util::Rng rng(seed);
  kern::NeukConfig cfg;
  gp::GaussianProcess model(std::make_unique<kern::NeukKernel>(d, cfg, rng));
  const auto x = random_points(n, d, rng);
  la::Vector y(n);
  for (std::size_t i = 0; i < n; ++i)
    y[i] = std::sin(3.0 * x(i, 0)) + 0.5 * x(i, 1);
  model.set_data(x, y);
  gp::GpFitOptions opts;
  opts.iterations = 15;
  model.fit(opts, rng);
  return model;
}

/// RAII guard for the KATO_THREADS knob.
class ThreadsEnv {
 public:
  explicit ThreadsEnv(const char* value) {
    if (value == nullptr)
      unsetenv("KATO_THREADS");
    else
      setenv("KATO_THREADS", value, 1);
  }
  ~ThreadsEnv() { unsetenv("KATO_THREADS"); }
};

bo::GpSurrogate fitted_surrogate(std::uint64_t seed) {
  kato::util::Rng rng(seed);
  gp::GpFitOptions fit{30, 0.05, 192, 1e-6};
  bo::GpSurrogate surr(3, 2, bo::KernelKind::neuk, fit, fit, rng);
  const std::size_t n = 50;
  la::Matrix x = random_points(n, 3, rng);
  la::Matrix y(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 3; ++j) s += (x(i, j) - 0.6) * (x(i, j) - 0.6);
    y(i, 0) = s;
    y(i, 1) = x(i, 0);
  }
  surr.refit(x, y, rng);
  return surr;
}

}  // namespace

TEST(PredictBatch, AgreesWithPerPointLoop) {
  const auto model = fitted_neuk_gp(80, 6, 41);
  kato::util::Rng rng(42);
  const auto q = random_points(33, 6, rng);

  const auto batch = model.predict_batch(q);
  ASSERT_EQ(batch.size(), q.rows());
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const auto ref = model.predict(q.row(i));
    EXPECT_NEAR(batch[i].mean, ref.mean, 1e-10) << "query " << i;
    EXPECT_NEAR(batch[i].var, ref.var, 1e-10) << "query " << i;
  }
}

TEST(PredictBatch, StdVariantAgreesToo) {
  const auto model = fitted_neuk_gp(60, 4, 43);
  kato::util::Rng rng(44);
  const auto q = random_points(17, 4, rng);
  const auto batch = model.predict_std_batch(q);
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const auto ref = model.predict_std(q.row(i));
    EXPECT_NEAR(batch[i].mean, ref.mean, 1e-10);
    EXPECT_NEAR(batch[i].var, ref.var, 1e-10);
  }
}

TEST(PredictBatch, ThreadCountDoesNotChangeResults) {
  const auto model = fitted_neuk_gp(70, 5, 45);
  kato::util::Rng rng(46);
  const auto q = random_points(29, 5, rng);

  std::vector<gp::GpPrediction> single;
  {
    ThreadsEnv env("1");
    single = model.predict_batch(q);
  }
  std::vector<gp::GpPrediction> threaded;
  {
    ThreadsEnv env("4");
    threaded = model.predict_batch(q);
  }
  ASSERT_EQ(single.size(), threaded.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    // Bit-identical, not just close: chunking must not reorder arithmetic.
    EXPECT_EQ(single[i].mean, threaded[i].mean) << "query " << i;
    EXPECT_EQ(single[i].var, threaded[i].var) << "query " << i;
  }
}

TEST(PredictBatch, MultiGpMatchesPerMetric) {
  kato::util::Rng rng(47);
  gp::MultiGp multi(2, [&] {
    kern::NeukConfig cfg;
    return std::make_unique<kern::NeukKernel>(3, cfg, rng);
  });
  const std::size_t n = 40;
  la::Matrix x = random_points(n, 3, rng);
  la::Matrix y(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    y(i, 0) = std::cos(2.0 * x(i, 0));
    y(i, 1) = x(i, 1) * x(i, 2);
  }
  multi.set_data(x, y);

  const auto q = random_points(11, 3, rng);
  const auto batch = multi.predict_batch(q);
  ASSERT_EQ(batch.size(), q.rows());
  for (std::size_t i = 0; i < q.rows(); ++i) {
    ASSERT_EQ(batch[i].size(), 2u);
    const auto ref = multi.predict(q.row(i));
    for (std::size_t m = 0; m < 2; ++m) {
      EXPECT_NEAR(batch[i][m].mean, ref[m].mean, 1e-10);
      EXPECT_NEAR(batch[i][m].var, ref[m].var, 1e-10);
    }
  }
}

TEST(PredictBatch, KatGpAgreesWithPerPointLoop) {
  kato::util::Rng rng(53);
  // Fitted single-metric RBF source model on a 2-d toy function.
  auto source = std::make_unique<gp::MultiGp>(1, [] {
    return std::make_unique<kern::StationaryArd>(kern::StationaryType::rbf, 2);
  });
  const std::size_t n_src = 60;
  la::Matrix xs = random_points(n_src, 2, rng);
  la::Matrix ys(n_src, 1);
  for (std::size_t i = 0; i < n_src; ++i)
    ys(i, 0) = std::sin(4.0 * xs(i, 0)) + xs(i, 1);
  source->set_data(xs, ys);
  gp::GpFitOptions fit;
  fit.iterations = 30;
  source->fit(fit, rng);

  gp::KatGpConfig cfg;
  cfg.init_iterations = 40;
  gp::KatGp kat(source.get(), 2, 1, cfg, rng);
  const std::size_t n_tgt = 20;
  la::Matrix xt = random_points(n_tgt, 2, rng);
  la::Matrix yt(n_tgt, 1);
  for (std::size_t i = 0; i < n_tgt; ++i)
    yt(i, 0) = std::sin(4.0 * xt(i, 0)) + 1.2 * xt(i, 1);
  kat.set_target_data(xt, yt);
  kat.fit(rng);

  const auto q = random_points(13, 2, rng);
  const auto batch = kat.predict_batch(q);
  ASSERT_EQ(batch.size(), q.rows());
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const auto ref = kat.predict(q.row(i));
    ASSERT_EQ(batch[i].size(), ref.size());
    for (std::size_t m = 0; m < ref.size(); ++m) {
      EXPECT_NEAR(batch[i][m].mean, ref[m].mean, 1e-10) << i;
      EXPECT_NEAR(batch[i][m].var, ref[m].var, 1e-10) << i;
    }
  }
}

TEST(ThreadedMace, ProposalsBitIdenticalToSingleThread) {
  const auto surr = fitted_surrogate(48);
  const std::vector<kato::ckt::MetricSpec> specs{{"c0", "", 0.5, true}};
  bo::MaceOptions opts;
  opts.nsga.population = 16;
  opts.nsga.generations = 6;

  auto run = [&] {
    kato::util::Rng rng(49);
    return bo::mace_proposals(surr, specs, 0.1, opts, rng, {});
  };

  kato::moo::ParetoSet single;
  {
    ThreadsEnv env("1");
    single = run();
  }
  kato::moo::ParetoSet threaded;
  {
    ThreadsEnv env("4");
    threaded = run();
  }
  // The proposal set must be bit-identical: same designs, same acquisition
  // values, same order.
  ASSERT_EQ(single.x.size(), threaded.x.size());
  for (std::size_t i = 0; i < single.x.size(); ++i) {
    EXPECT_EQ(single.x[i], threaded.x[i]) << "design " << i;
    EXPECT_EQ(single.f[i], threaded.f[i]) << "objective " << i;
  }
}

TEST(ThreadedMace, UnconstrainedVariantBitIdenticalToo) {
  const auto surr = fitted_surrogate(50);
  bo::MaceOptions opts;
  opts.nsga.population = 12;
  opts.nsga.generations = 4;
  auto run = [&] {
    kato::util::Rng rng(51);
    return bo::mace_proposals_unconstrained(surr, 0.2, opts, rng, {});
  };
  kato::moo::ParetoSet single;
  {
    ThreadsEnv env(nullptr);  // unset: defaults to 1
    single = run();
  }
  kato::moo::ParetoSet threaded;
  {
    ThreadsEnv env("3");
    threaded = run();
  }
  ASSERT_EQ(single.x.size(), threaded.x.size());
  for (std::size_t i = 0; i < single.x.size(); ++i) {
    EXPECT_EQ(single.x[i], threaded.x[i]);
    EXPECT_EQ(single.f[i], threaded.f[i]);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadsEnv env("5");
  std::vector<int> hits(1001, 0);
  kato::util::parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadsEnv env("4");
  EXPECT_THROW(
      kato::util::parallel_for(100,
                               [&](std::size_t b, std::size_t) {
                                 if (b == 0) throw std::runtime_error("boom");
                               }),
      std::runtime_error);
}

TEST(ThreadCount, ParsesEnvironment) {
  const std::size_t cap = kato::util::thread_cap();
  EXPECT_GE(cap, 4u);  // floor keeps oversubscription tests meaningful
  {
    ThreadsEnv env(nullptr);
    EXPECT_EQ(kato::util::thread_count(), 1u);
  }
  {
    ThreadsEnv env("");
    EXPECT_EQ(kato::util::thread_count(), 1u);
  }
  {
    ThreadsEnv env("2");
    EXPECT_EQ(kato::util::thread_count(), 2u);
  }
  {
    // Clamped to [1, thread_cap()].
    ThreadsEnv env("6");
    EXPECT_EQ(kato::util::thread_count(), std::min<std::size_t>(6, cap));
  }
  {
    ThreadsEnv env("1000");
    EXPECT_EQ(kato::util::thread_count(), cap);
  }
  {
    ThreadsEnv env("0");
    EXPECT_EQ(kato::util::thread_count(), 1u);
  }
  {
    ThreadsEnv env("-3");
    EXPECT_EQ(kato::util::thread_count(), 1u);
  }
  {
    ThreadsEnv env("garbage");
    EXPECT_EQ(kato::util::thread_count(), 1u);
  }
  {
    // Trailing junk is rejected outright, not best-effort parsed.
    ThreadsEnv env("6abc");
    EXPECT_EQ(kato::util::thread_count(), 1u);
  }
  {
    ThreadsEnv env("2 ");
    EXPECT_EQ(kato::util::thread_count(), 1u);
  }
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  ThreadsEnv env("4");
  const std::size_t outer = 24;
  const std::size_t inner = 16;
  std::vector<int> hits(outer * inner, 0);
  kato::util::parallel_for(outer, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      kato::util::parallel_for(inner, [&](std::size_t jb, std::size_t je) {
        for (std::size_t j = jb; j < je; ++j) hits[i * inner + j] += 1;
      });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

// ---------------------------------------------------------------------------
// Fused kernel workspace path: matrix_ws/backward_ws must be drop-in
// replacements for the per-entry matrix()/backward() pair.

namespace {

/// Relative comparison: |a - b| <= tol * max(1, |a|).
void expect_rel_near(double a, double b, double tol, const char* what,
                     std::size_t idx) {
  EXPECT_NEAR(a, b, tol * std::max(1.0, std::abs(a))) << what << " [" << idx
                                                      << "]";
}

void check_fused_matches_reference(kern::Kernel& k, std::size_t n,
                                   std::uint64_t seed) {
  kato::util::Rng rng(seed);
  const la::Matrix x = random_points(n, k.input_dim(), rng);
  // Randomize hyperparameters so the ARD/shape code paths are exercised away
  // from their exact init values.
  for (auto& p : k.params()) p = 0.3 * rng.normal();

  const la::Matrix k_ref = k.matrix(x);
  auto ws = k.fit_workspace(x);
  la::Matrix k_ws;
  k.matrix_ws(*ws, k_ws);
  ASSERT_EQ(k_ws.rows(), n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      expect_rel_near(k_ref(i, j), k_ws(i, j), 1e-12, "K", i * n + j);

  // Arbitrary (asymmetric) upstream gradient.
  la::Matrix dk(n, n);
  for (auto& v : dk.data()) v = rng.normal();
  std::vector<double> grad_ref(k.n_params(), 0.0);
  k.backward(x, dk, grad_ref);
  std::vector<double> grad_ws(k.n_params(), 0.0);
  k.backward_ws(*ws, dk, grad_ws);
  for (std::size_t p = 0; p < grad_ref.size(); ++p)
    expect_rel_near(grad_ref[p], grad_ws[p], 1e-12, "grad", p);
}

}  // namespace

TEST(FusedKernel, StationaryRbfMatchesReference) {
  kern::StationaryArd k(kern::StationaryType::rbf, 5);
  check_fused_matches_reference(k, 40, 60);
}

TEST(FusedKernel, StationaryRqMatchesReference) {
  kern::StationaryArd k(kern::StationaryType::rq, 4);
  check_fused_matches_reference(k, 35, 61);
}

TEST(FusedKernel, StationaryMatern32MatchesReference) {
  kern::StationaryArd k(kern::StationaryType::matern32, 3);
  check_fused_matches_reference(k, 30, 62);
}

TEST(FusedKernel, StationaryMatern52MatchesReference) {
  kern::StationaryArd k(kern::StationaryType::matern52, 6);
  check_fused_matches_reference(k, 30, 63);
}

TEST(FusedKernel, NeukMatchesReference) {
  kato::util::Rng rng(64);
  kern::NeukConfig cfg;
  kern::NeukKernel k(6, cfg, rng);
  check_fused_matches_reference(k, 40, 65);
}

TEST(FusedKernel, PeriodicFallsBackToGenericPath) {
  kern::PeriodicArd k(3);
  check_fused_matches_reference(k, 25, 66);
}

TEST(FusedKernel, GpFitAgreesWithReferencePath) {
  // One full fit through each path from the same warm start must land on the
  // same hyperparameters (the paths agree to ~1e-12 per step).
  const auto make = [] { return fitted_neuk_gp(48, 4, 67); };
  gp::GpFitOptions ref;
  ref.iterations = 5;
  ref.use_workspace = false;
  gp::GpFitOptions fused = ref;
  fused.use_workspace = true;

  auto m_ref = make();
  auto m_ws = make();
  kato::util::Rng r1(68);
  kato::util::Rng r2(68);
  m_ref.fit(ref, r1);
  m_ws.fit(fused, r2);
  EXPECT_FALSE(m_ref.last_fit_info().workspace);
  EXPECT_TRUE(m_ws.last_fit_info().workspace);
  EXPECT_EQ(m_ref.last_fit_info().iterations, 5);
  EXPECT_EQ(m_ws.last_fit_info().iterations, 5);

  // The Neuk primitive biases are flat directions of the likelihood (the
  // primitives are stationary in u, so K is invariant to them): their exact
  // gradient is 0 and Adam steps them on cancellation noise in *both* paths.
  // Compare what is actually determined by the data — the fitted model's
  // NLL and predictions — rather than raw parameters.
  expect_rel_near(m_ref.nll(), m_ws.nll(), 1e-9, "nll", 0);
  expect_rel_near(m_ref.noise_var(), m_ws.noise_var(), 1e-9, "noise", 0);
  kato::util::Rng qrng(69);
  const auto q = random_points(7, 4, qrng);
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const auto a = m_ref.predict(q.row(i));
    const auto b = m_ws.predict(q.row(i));
    expect_rel_near(a.mean, b.mean, 1e-9, "mean", i);
    expect_rel_near(a.var, b.var, 1e-9, "var", i);
  }
}

// ---------------------------------------------------------------------------
// Parallel MultiGp training: bit-identical at any thread count.

namespace {

gp::MultiGp fitted_multi(const char* threads, std::uint64_t seed,
                         const gp::GpFitOptions& opts) {
  kato::util::Rng rng(seed);
  gp::MultiGp multi(3, [&] {
    kern::NeukConfig cfg;
    return std::make_unique<kern::NeukKernel>(4, cfg, rng);
  });
  const std::size_t n = 230;  // above max_train_points: subsampling draws RNG
  la::Matrix x = random_points(n, 4, rng);
  la::Matrix y(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    y(i, 0) = std::sin(4.0 * x(i, 0));
    y(i, 1) = x(i, 1) * x(i, 2);
    y(i, 2) = std::cos(2.0 * x(i, 3));
  }
  ThreadsEnv env(threads);
  multi.set_data(x, y);
  kato::util::Rng fit_rng(seed + 1);
  multi.fit(opts, fit_rng);
  return multi;
}

}  // namespace

TEST(ParallelMultiGpFit, BitIdenticalAcrossThreadCounts) {
  gp::GpFitOptions opts;
  opts.iterations = 4;
  opts.max_train_points = 96;  // force the RNG-driven subsample
  const auto serial = fitted_multi("1", 70, opts);
  for (const char* threads : {"2", "4"}) {
    const auto par = fitted_multi(threads, 70, opts);
    for (std::size_t m = 0; m < serial.n_metrics(); ++m) {
      const auto ps = serial.metric(m).kernel().params();
      const auto pp = par.metric(m).kernel().params();
      ASSERT_EQ(ps.size(), pp.size());
      for (std::size_t i = 0; i < ps.size(); ++i)
        EXPECT_EQ(ps[i], pp[i]) << "metric " << m << " param " << i << " at "
                                << threads << " threads";
      EXPECT_EQ(serial.metric(m).noise_var(), par.metric(m).noise_var())
          << "metric " << m << " at " << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Warm-started refits.

TEST(WarmStartRefit, SurrogateHonorsRefitBudgetAndKeepsParams) {
  kato::util::Rng rng(80);
  const gp::GpFitOptions initial{20, 0.05, 192, 1e-6};
  const gp::GpFitOptions refit{4, 0.03, 128, 1e-6};
  bo::GpSurrogate surr(3, 2, bo::KernelKind::rbf, initial, refit, rng);

  const std::size_t n = 40;
  la::Matrix x = random_points(n, 3, rng);
  la::Matrix y(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    y(i, 0) = std::sin(3.0 * x(i, 0));
    y(i, 1) = x(i, 1);
  }
  // First refit: the full initial budget.
  surr.refit(x, y, rng);
  EXPECT_EQ(surr.model().metric(0).last_fit_info().iterations, 20);

  // Posterior-only update must not touch hyperparameters.
  const std::vector<double> before(
      surr.model().metric(0).kernel().params().begin(),
      surr.model().metric(0).kernel().params().end());
  surr.refit(x, y, rng, /*train_hyper=*/false);
  const auto after = surr.model().metric(0).kernel().params();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]) << i;

  // Hyper refit: warm-started, smaller budget.
  surr.refit(x, y, rng, /*train_hyper=*/true);
  EXPECT_EQ(surr.model().metric(0).last_fit_info().iterations, 4);
}

TEST(WarmStartRefit, ZeroIterationFitPreservesHyperparameters) {
  auto model = fitted_neuk_gp(30, 3, 81);
  const std::vector<double> before(model.kernel().params().begin(),
                                   model.kernel().params().end());
  const double noise_before = model.noise_var();
  gp::GpFitOptions opts;
  opts.iterations = 0;  // refresh-only fit: the warm start must survive
  kato::util::Rng rng(82);
  model.fit(opts, rng);
  const auto after = model.kernel().params();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]) << i;
  EXPECT_EQ(noise_before, model.noise_var());
}

TEST(WarmStartRefit, RefitTraceSeedReproducible) {
  // A BO-style refit sequence (grow data, alternate posterior-only and
  // hyper refits) must be bit-identical when replayed with the same seed,
  // at any thread count.
  auto run = [](const char* threads) {
    ThreadsEnv env(threads);
    kato::util::Rng rng(83);
    const gp::GpFitOptions initial{12, 0.05, 192, 1e-6};
    const gp::GpFitOptions refit{3, 0.03, 128, 1e-6};
    bo::GpSurrogate surr(2, 2, bo::KernelKind::neuk, initial, refit, rng);
    kato::util::Rng data_rng(84);
    std::vector<double> trace;
    for (int step = 0; step < 4; ++step) {
      const std::size_t n = 20 + 8 * static_cast<std::size_t>(step);
      la::Matrix x = random_points(n, 2, data_rng);
      la::Matrix y(n, 2);
      for (std::size_t i = 0; i < n; ++i) {
        y(i, 0) = std::sin(5.0 * x(i, 0)) + x(i, 1);
        y(i, 1) = x(i, 0) * x(i, 1);
      }
      surr.refit(x, y, rng, step % 2 == 0);
      const auto p = surr.predict(std::vector<double>{0.3, 0.7});
      trace.push_back(p[0].mean);
      trace.push_back(p[0].var);
      trace.push_back(p[1].mean);
    }
    return trace;
  };
  const auto t1 = run(nullptr);
  const auto t2 = run(nullptr);
  const auto t3 = run("4");
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i], t2[i]) << i;
    EXPECT_EQ(t1[i], t3[i]) << i << " (threaded)";
  }
}

// ---------------------------------------------------------------------------
// Batched source-GP gradients (the KAT-GP training hot path).

TEST(PredictStdGradBatch, BitIdenticalToPerPointCalls) {
  const auto model = fitted_neuk_gp(50, 4, 90);
  kato::util::Rng rng(91);
  const auto q = random_points(21, 4, rng);

  std::vector<gp::GpPrediction> preds;
  la::Matrix dmean;
  la::Matrix dvar;
  model.predict_std_grad_batch(q, preds, dmean, dvar);
  ASSERT_EQ(preds.size(), q.rows());

  std::vector<gp::GpPrediction> preds_exact;
  model.predict_std_batch_exact(q, preds_exact);

  for (std::size_t i = 0; i < q.rows(); ++i) {
    gp::GpPrediction ref;
    la::Vector dm;
    la::Vector dv;
    model.predict_std_grad(q.row(i), ref, dm, dv);
    // Bit-identical: the batched path shares the kinv algebra and summation
    // order with the per-point path, so KAT-GP training results are
    // unchanged by the batching.
    EXPECT_EQ(preds[i].mean, ref.mean) << i;
    EXPECT_EQ(preds[i].var, ref.var) << i;
    EXPECT_EQ(preds_exact[i].mean, ref.mean) << i;
    EXPECT_EQ(preds_exact[i].var, ref.var) << i;
    for (std::size_t j = 0; j < dm.size(); ++j) {
      EXPECT_EQ(dmean(i, j), dm[j]) << i << "," << j;
      EXPECT_EQ(dvar(i, j), dv[j]) << i << "," << j;
    }
    const auto std_ref = model.predict_std(q.row(i));
    EXPECT_EQ(preds_exact[i].mean, std_ref.mean) << i;
    EXPECT_EQ(preds_exact[i].var, std_ref.var) << i;
  }
}

TEST(SolveLowerMulti, MatchesColumnwiseSolves) {
  kato::util::Rng rng(52);
  const std::size_t n = 30;
  la::Matrix b = random_points(n, n, rng);
  la::Matrix spd = la::matmul_nt(b, b);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  const auto l = la::cholesky(spd);
  ASSERT_TRUE(l.has_value());

  const std::size_t m = 7;
  la::Matrix rhs = random_points(n, m, rng);
  const la::Matrix x = la::solve_lower_multi(*l, rhs);
  for (std::size_t j = 0; j < m; ++j) {
    la::Vector col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = rhs(i, j);
    const auto ref = la::solve_lower(*l, col);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x(i, j), ref[i], 1e-12);
  }
}

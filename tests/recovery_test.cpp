// Fault-tolerant evaluation pipeline: KATO_FAULT / KATO_EVAL_DEADLINE_MS /
// KATO_RECOVERY parse discipline, the deterministic splitmix64 fault stream,
// a fault-injection matrix forcing every recovery path (DC homotopy, DC
// pseudo-transient, transient step-floor + device fallback, sparse LU
// re-pivot, GP jitter retry, deadline kill) with its obs counter, batch
// hardening against escaping exceptions, and (RecoveryBo suite — labelled
// slow in CTest) bit-identity of a seeded BO run with the recovery hooks
// armed-but-idle vs off.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bo/drivers.hpp"
#include "gp/gp.hpp"
#include "kernel/stationary.hpp"
#include "linalg/sparse.hpp"
#include "netlist/netlist_circuit.hpp"
#include "obs/obs.hpp"
#include "sim/dc.hpp"
#include "sim/transient.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/sampling.hpp"

namespace util = kato::util;
namespace obs = kato::obs;
namespace sim = kato::sim;
namespace la = kato::la;
namespace gp = kato::gp;
namespace kern = kato::kern;
namespace ckt = kato::ckt;
namespace bo = kato::bo;

#ifndef KATO_SOURCE_DIR
#define KATO_SOURCE_DIR "."
#endif

namespace {

std::string deck_path(const std::string& name) {
  return std::string(KATO_SOURCE_DIR) + "/circuits/netlists/" + name;
}

/// Clears every robustness knob; used as RAII so a failing assertion cannot
/// leak an armed fault into later tests.
struct CleanSlate {
  CleanSlate() { reset(); }
  ~CleanSlate() { reset(); }
  static void reset() {
    util::set_fault(std::nullopt);
    util::set_eval_deadline_ms(0);
    util::set_recovery_enabled(true);
  }
};

/// 3V through 1k over 2k: mid node settles at 2V.  Linear, so every Newton
/// call converges in one correcting iteration — recovery outcomes are then
/// fully attributable to the injected faults.
sim::Circuit divider() {
  sim::Circuit c;
  const int vin = c.new_node("vin");
  const int mid = c.new_node("mid");
  c.add_vsource(vin, sim::Circuit::ground, 3.0);
  c.add_resistor(vin, mid, 1e3);
  c.add_resistor(mid, sim::Circuit::ground, 2e3);
  return c;
}

/// RC discharge from 1V: well-conditioned transient with an analytic answer.
sim::Circuit rc_discharge(int& node) {
  sim::Circuit c;
  node = c.new_node("a");
  c.add_resistor(node, sim::Circuit::ground, 1e3);
  c.add_capacitor(node, sim::Circuit::ground, 1e-6);
  return c;
}

util::FaultSpec spec(util::FaultSite site, double rate, std::uint64_t seed) {
  util::FaultSpec s;
  s.site = site;
  s.rate = rate;
  s.seed = seed;
  return s;
}

}  // namespace

// --- KATO_FAULT / KATO_EVAL_DEADLINE_MS parse discipline --------------------

TEST(FaultEnv, ParsesWellFormedSpecs) {
  const auto a = util::parse_fault_spec("dc:singular:1:42");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->site, util::FaultSite::dc_singular);
  EXPECT_DOUBLE_EQ(a->rate, 1.0);
  EXPECT_EQ(a->seed, 42u);

  const auto b = util::parse_fault_spec("tran:nan_device:0.25:7");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->site, util::FaultSite::tran_nan_device);
  EXPECT_DOUBLE_EQ(b->rate, 0.25);
  EXPECT_EQ(b->seed, 7u);

  EXPECT_EQ(util::parse_fault_spec("lu:collapse:0.5:0")->site,
            util::FaultSite::lu_collapse);
  EXPECT_EQ(util::parse_fault_spec("gp:chol_fail:1:1")->site,
            util::FaultSite::gp_chol_fail);
  EXPECT_EQ(util::parse_fault_spec("eval:slow:1:1")->site,
            util::FaultSite::eval_slow);
  EXPECT_EQ(util::parse_fault_spec("eval:throw:1:1")->site,
            util::FaultSite::eval_throw);
}

TEST(FaultEnv, RejectsMalformedSpecsWholesale) {
  // Full-string discipline: no trimming, no partial parses, no guessing.
  EXPECT_FALSE(util::parse_fault_spec(nullptr).has_value());
  EXPECT_FALSE(util::parse_fault_spec("").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular:1").has_value());
  EXPECT_FALSE(util::parse_fault_spec("bogus:kind:1:1").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular:0:1").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular:1.5:1").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular:-0.5:1").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular:0.5x:1").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular:1:-3").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular:1:4.2").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular:1:1:extra").has_value());
  EXPECT_FALSE(util::parse_fault_spec(" dc:singular:1:1").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular:1:1 ").has_value());
  EXPECT_FALSE(util::parse_fault_spec("dc:singular: 1:1").has_value());
}

TEST(FaultEnv, FaultFromEnvWarnsAndDisablesOnBadValue) {
  unsetenv("KATO_FAULT");
  EXPECT_FALSE(util::fault_from_env().has_value());
  setenv("KATO_FAULT", "dc:singular:one:1", 1);
  EXPECT_FALSE(util::fault_from_env().has_value());
  setenv("KATO_FAULT", "tran:nan_device:1:99", 1);
  const auto spec = util::fault_from_env();
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->site, util::FaultSite::tran_nan_device);
  EXPECT_EQ(spec->seed, 99u);
  unsetenv("KATO_FAULT");
}

TEST(FaultEnv, DeadlineParseIsStrictPositiveInteger) {
  EXPECT_EQ(util::parse_deadline_ms("500"), 500u);
  EXPECT_EQ(util::parse_deadline_ms("1"), 1u);
  EXPECT_FALSE(util::parse_deadline_ms(nullptr).has_value());
  EXPECT_FALSE(util::parse_deadline_ms("").has_value());
  EXPECT_FALSE(util::parse_deadline_ms("0").has_value());
  EXPECT_FALSE(util::parse_deadline_ms("-5").has_value());
  EXPECT_FALSE(util::parse_deadline_ms("+5").has_value());
  EXPECT_FALSE(util::parse_deadline_ms("12ms").has_value());
  EXPECT_FALSE(util::parse_deadline_ms("1.5").has_value());
  EXPECT_FALSE(util::parse_deadline_ms(" 12").has_value());
  EXPECT_FALSE(util::parse_deadline_ms("12 ").has_value());

  unsetenv("KATO_EVAL_DEADLINE_MS");
  EXPECT_FALSE(util::deadline_ms_from_env().has_value());
  setenv("KATO_EVAL_DEADLINE_MS", "0", 1);
  EXPECT_FALSE(util::deadline_ms_from_env().has_value());
  setenv("KATO_EVAL_DEADLINE_MS", "250", 1);
  EXPECT_EQ(util::deadline_ms_from_env(), 250u);
  unsetenv("KATO_EVAL_DEADLINE_MS");
}

TEST(FaultEnv, StreamIsAPureFunctionOfSeedAndIndex) {
  // The schedule replays exactly: same (seed, index) -> same draw, and the
  // draws are well spread (a degenerate constant stream would make rate
  // thresholds meaningless).
  for (std::uint64_t seed : {0ull, 1ull, 42ull}) {
    double lo = 1.0;
    double hi = 0.0;
    for (std::uint64_t i = 0; i < 64; ++i) {
      const double u = util::fault_uniform(seed, i);
      EXPECT_EQ(u, util::fault_uniform(seed, i));
      EXPECT_GE(u, 0.0);
      EXPECT_LT(u, 1.0);
      lo = std::min(lo, u);
      hi = std::max(hi, u);
    }
    EXPECT_LT(lo, 0.25);
    EXPECT_GT(hi, 0.75);
  }
}

TEST(FaultEnv, FaultFiresConsumesTheStreamDeterministically) {
  CleanSlate slate;
  util::set_fault(spec(util::FaultSite::eval_throw, 0.5, 31));
  // Site mismatch costs nothing from the stream.
  EXPECT_FALSE(util::fault_fires(util::FaultSite::dc_singular));
  for (std::uint64_t i = 0; i < 32; ++i)
    EXPECT_EQ(util::fault_fires(util::FaultSite::eval_throw),
              util::fault_uniform(31, i) < 0.5)
        << "draw " << i;
  // Re-arming resets the draw counter, so the schedule replays.
  util::set_fault(spec(util::FaultSite::eval_throw, 0.5, 31));
  EXPECT_EQ(util::fault_fires(util::FaultSite::eval_throw),
            util::fault_uniform(31, 0) < 0.5);
}

// --- DC recovery ladder -----------------------------------------------------

TEST(Recovery, EmptyGminLadderIsRescuedBySourceSteppingHomotopy) {
  CleanSlate slate;
  sim::DcOptions opts;
  opts.gmin_ladder.clear();  // the ladder never runs: honest escalation

  const auto rescued = sim::solve_dc(divider(), opts);
  EXPECT_TRUE(rescued.converged) << rescued.reason;
  EXPECT_EQ(rescued.stats.dc_homotopy_escalations, 1u);
  EXPECT_EQ(rescued.stats.dc_pseudo_transients, 0u);
  EXPECT_NEAR(rescued.v(2), 2.0, 1e-6);  // mid node of the 1k/2k divider

  util::set_recovery_enabled(false);
  const auto abandoned = sim::solve_dc(divider(), opts);
  EXPECT_FALSE(abandoned.converged);
  EXPECT_EQ(abandoned.stats.dc_homotopy_escalations, 0u);
}

TEST(Recovery, DcSingularFaultForcesPseudoTransient) {
  CleanSlate slate;
  obs::stats_reset();
  util::set_fault(spec(util::FaultSite::dc_singular, 1.0, 5));

  const auto r = sim::solve_dc(divider());
  EXPECT_TRUE(r.converged) << r.reason;
  EXPECT_EQ(r.stats.dc_homotopy_escalations, 0u);  // fault skips stage 1
  EXPECT_EQ(r.stats.dc_pseudo_transients, 1u);
  EXPECT_NEAR(r.v(2), 2.0, 1e-6);
  EXPECT_GE(obs::stats_value("faults_injected"), 1u);

  // Recovery off: the injected singularity is terminal and says so.
  util::set_recovery_enabled(false);
  util::set_fault(spec(util::FaultSite::dc_singular, 1.0, 5));
  const auto dead = sim::solve_dc(divider());
  EXPECT_FALSE(dead.converged);
  EXPECT_NE(dead.reason.find("dc:singular"), std::string::npos) << dead.reason;
}

TEST(Recovery, ExpiredDeadlineKillsDcCleanly) {
  CleanSlate slate;
  const util::EvalDeadline guard(1);  // 1 ms, burned before the solve
  util::fault_sleep_ms(5);
  const auto r = sim::solve_dc(divider());
  EXPECT_FALSE(r.converged);
  EXPECT_NE(r.reason.find("deadline exceeded (KATO_EVAL_DEADLINE_MS)"),
            std::string::npos)
      << r.reason;
  EXPECT_EQ(r.stats.deadline_kills, 1u);
  // The kill must short-circuit the ladder, not walk all 11 rungs.
  EXPECT_LE(r.stats.gmin_rungs, 1u);
  EXPECT_EQ(r.stats.dc_homotopy_escalations, 0u);
  EXPECT_EQ(r.stats.dc_pseudo_transients, 0u);
}

// --- Transient recovery -----------------------------------------------------

TEST(Recovery, TranNanDeviceFaultWalksStepFloorThenDeviceFallback) {
  CleanSlate slate;
  int node = 0;
  const auto circuit = rc_discharge(node);
  sim::TranOptions opts;
  opts.tstop = 1e-3;
  opts.tstep = 1e-5;
  opts.initial_conditions = {{node, 1.0}};

  util::set_fault(spec(util::FaultSite::tran_nan_device, 1.0, 9));
  const auto rescued = sim::solve_tran(circuit, opts);
  EXPECT_TRUE(rescued.ok) << rescued.reason;
  // Rate-1 rejection walks the whole ladder: floor cut first, then the
  // table -> analytic rebuild (which stops the injection by construction).
  EXPECT_GE(rescued.stats.tran_stepfloor_restarts, 1u);
  EXPECT_EQ(rescued.stats.tran_device_fallbacks, 1u);
  // RC discharge from 1V: v(t) = exp(-t/tau), tau = 1 ms.
  const double v_end = rescued.v(rescued.n_points() - 1, node);
  EXPECT_NEAR(v_end, std::exp(-1.0), 1e-3);

  util::set_recovery_enabled(false);
  util::set_fault(spec(util::FaultSite::tran_nan_device, 1.0, 9));
  const auto dead = sim::solve_tran(circuit, opts);
  EXPECT_FALSE(dead.ok);
  EXPECT_NE(dead.reason.find("tran:nan_device"), std::string::npos)
      << dead.reason;
}

TEST(Recovery, ExpiredDeadlineKillsTranCleanly) {
  CleanSlate slate;
  int node = 0;
  const auto circuit = rc_discharge(node);
  sim::TranOptions opts;
  opts.tstop = 1e-3;
  opts.tstep = 1e-5;

  const util::EvalDeadline guard(1);
  util::fault_sleep_ms(5);
  const auto r = sim::solve_tran(circuit, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("deadline exceeded (KATO_EVAL_DEADLINE_MS)"),
            std::string::npos)
      << r.reason;
  EXPECT_GE(r.stats.deadline_kills, 1u);
}

// --- Sparse LU re-pivot -----------------------------------------------------

TEST(Recovery, LuCollapseFaultForcesFreshPivotPass) {
  CleanSlate slate;
  // 2x2 diagonally dominant system; factor once to record the structure.
  const la::SparsePattern pattern(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  const std::vector<double> values = {4.0, 1.0, 1.0, 3.0};
  la::SparseLu lu;
  lu.analyze(pattern);
  ASSERT_TRUE(lu.factor(values));
  EXPECT_EQ(lu.pivot_passes(), 1u);

  // Clean refactor reuses the recorded pivots.
  ASSERT_TRUE(lu.factor(values));
  EXPECT_EQ(lu.pivot_passes(), 1u);

  // The injected collapse makes the refactor report stale pivots; factor()
  // recovers by re-pivoting from scratch and still succeeds.
  util::set_fault(spec(util::FaultSite::lu_collapse, 1.0, 3));
  ASSERT_TRUE(lu.factor(values));
  EXPECT_EQ(lu.pivot_passes(), 2u);
  std::vector<double> x;
  lu.solve({9.0, 7.0}, x);
  EXPECT_NEAR(x[0], 20.0 / 11.0, 1e-12);
  EXPECT_NEAR(x[1], 19.0 / 11.0, 1e-12);
}

TEST(Recovery, LuCollapseFaultSurfacesAsPivotFallbackCounter) {
  CleanSlate slate;
  util::set_fault(spec(util::FaultSite::lu_collapse, 1.0, 3));
  sim::DcOptions opts;
  opts.solver = sim::MnaSolver::sparse;
  const auto r = sim::solve_dc(divider(), opts);
  EXPECT_TRUE(r.converged) << r.reason;
  // Every post-first factor() re-pivots under the rate-1 fault.
  EXPECT_GE(r.stats.lu_pivot_fallbacks, 1u);
  EXPECT_NEAR(r.v(2), 2.0, 1e-6);
}

// --- GP jitter retry --------------------------------------------------------

TEST(Recovery, GpCholFailFaultDrivesJitterRetry) {
  CleanSlate slate;
  obs::stats_reset();

  kato::util::Rng rng(11);
  auto design = kato::util::latin_hypercube(24, 2, rng);
  la::Matrix x(24, 2);
  la::Vector y(24);
  for (std::size_t i = 0; i < 24; ++i) {
    x.set_row(i, std::span<const double>(design.row(i), 2));
    y[i] = std::sin(3.0 * x(i, 0)) + x(i, 1);
  }

  util::set_fault(spec(util::FaultSite::gp_chol_fail, 1.0, 17));
  gp::GaussianProcess model(std::make_unique<kern::StationaryArd>(
      kern::StationaryType::rbf, 2));
  model.set_data(x, y);
  gp::GpFitOptions opts;
  opts.iterations = 10;
  model.fit(opts, rng);  // must survive: the ladder escalates past the fault

  EXPECT_GE(obs::stats_value("gp_jitter_retries"), 1u);
  EXPECT_GE(obs::stats_value("faults_injected"), 1u);
}

// --- Evaluation pipeline hardening ------------------------------------------

TEST(Recovery, EvalThrowBecomesPerCandidateFailureNotBatchDeath) {
  CleanSlate slate;
  const auto deck = ckt::NetlistCircuit::from_file(deck_path("opamp2.cir"),
                                                   ckt::pdk_180nm());
  const std::vector<double> mid(deck->dim(), 0.5);

  util::set_fault(spec(util::FaultSite::eval_throw, 1.0, 13));
  const auto outcome = deck->evaluate_detailed(mid);
  EXPECT_FALSE(outcome.metrics.has_value());
  EXPECT_NE(outcome.failure.find("injected fault eval:throw"),
            std::string::npos)
      << outcome.failure;

  // A batch where every worker throws still returns one slot per candidate.
  util::set_fault(spec(util::FaultSite::eval_throw, 1.0, 13));
  const auto batch = deck->evaluate_batch({mid, mid, mid});
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& slot : batch) EXPECT_FALSE(slot.has_value());

  // Disarmed, the same candidate evaluates normally again.
  util::set_fault(std::nullopt);
  EXPECT_TRUE(deck->evaluate(mid).has_value());
}

TEST(Recovery, PartialFaultScheduleMatchesTheStreamServing) {
  CleanSlate slate;
  const auto deck = ckt::NetlistCircuit::from_file(deck_path("opamp2.cir"),
                                                   ckt::pdk_180nm());
  const std::vector<double> mid(deck->dim(), 0.5);

  // Serial evaluations draw stream indices 0, 1, 2, ... in order, so the
  // failure pattern is exactly the pinned splitmix64 schedule.
  util::set_fault(spec(util::FaultSite::eval_throw, 0.5, 21));
  for (std::uint64_t i = 0; i < 6; ++i) {
    const bool should_fail = util::fault_uniform(21, i) < 0.5;
    const auto m = deck->evaluate(mid);
    EXPECT_EQ(!m.has_value(), should_fail) << "eval " << i;
  }
}

TEST(Recovery, EvalSlowFaultTripsTheDeadlineThroughThePublicPath) {
  CleanSlate slate;
  const auto deck = ckt::NetlistCircuit::from_file(deck_path("opamp2.cir"),
                                                   ckt::pdk_180nm());
  const std::vector<double> mid(deck->dim(), 0.5);
  obs::stats_reset();

  util::set_eval_deadline_ms(1);
  util::set_fault(spec(util::FaultSite::eval_slow, 1.0, 27));
  const auto outcome = deck->evaluate_detailed(mid);
  EXPECT_FALSE(outcome.metrics.has_value());
  EXPECT_NE(outcome.failure.find("deadline exceeded (KATO_EVAL_DEADLINE_MS)"),
            std::string::npos)
      << outcome.failure;
  EXPECT_GE(obs::stats_value("deadline_kills"), 1u);

  // Deadline off again: the same point evaluates fine.
  CleanSlate::reset();
  EXPECT_TRUE(deck->evaluate(mid).has_value());
}

// --- Seeded-run bit-identity (slow) -----------------------------------------

namespace {

bo::BoConfig identity_config() {
  bo::BoConfig cfg;
  cfg.n_init = 14;
  cfg.iterations = 5;
  cfg.batch = 2;
  cfg.nsga.population = 12;
  cfg.nsga.generations = 6;
  cfg.max_gp_points = 96;
  cfg.hyper_every = 3;
  cfg.gp_initial.iterations = 15;
  cfg.gp_refit.iterations = 6;
  return cfg;
}

void expect_same_run(const bo::RunResult& a, const bo::RunResult& b,
                     const char* label) {
  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    EXPECT_DOUBLE_EQ(a.trace[i], b.trace[i]) << label << " sim " << i;
  ASSERT_EQ(a.x_history.size(), b.x_history.size()) << label;
  for (std::size_t i = 0; i < a.x_history.size(); ++i)
    EXPECT_EQ(a.x_history[i], b.x_history[i]) << label << " sim " << i;
  EXPECT_EQ(a.best_metrics, b.best_metrics) << label;
}

}  // namespace

TEST(RecoveryBo, SeededRunBitIdenticalAcrossIdleRobustnessKnobs) {
  CleanSlate slate;
  const auto deck = ckt::NetlistCircuit::from_file(deck_path("opamp2.cir"),
                                                   ckt::pdk_180nm());
  const bo::BoConfig cfg = identity_config();

  // Reference: recovery enabled (the shipping default), nothing armed.
  const auto reference =
      bo::run_constrained(*deck, bo::ConstrainedMethod::kato, cfg, 5);
  ASSERT_EQ(reference.trace.size(),
            cfg.n_init + cfg.iterations * cfg.batch);  // not a vacuous compare

  // Recovery ladders disabled: hooks are value-free on every converging
  // path, so the trajectory must not move.
  util::set_recovery_enabled(false);
  const auto no_recovery =
      bo::run_constrained(*deck, bo::ConstrainedMethod::kato, cfg, 5);
  util::set_recovery_enabled(true);
  expect_same_run(reference, no_recovery, "recovery off");

  // Deadline armed far above the runtime: every loop pays the predicated
  // clock checks but nothing trips.
  util::set_eval_deadline_ms(600000);
  const auto armed_deadline =
      bo::run_constrained(*deck, bo::ConstrainedMethod::kato, cfg, 5);
  util::set_eval_deadline_ms(0);
  expect_same_run(reference, armed_deadline, "idle deadline");

  // Fault armed at rate ~0 on a site the run hits constantly: the stream
  // is consumed (draws advance) but never fires, and the trajectory holds.
  util::set_fault(spec(util::FaultSite::gp_chol_fail, 1e-12, 1));
  const auto armed_fault =
      bo::run_constrained(*deck, bo::ConstrainedMethod::kato, cfg, 5);
  util::set_fault(std::nullopt);
  expect_same_run(reference, armed_fault, "idle fault");
}

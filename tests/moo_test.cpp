#include <gtest/gtest.h>

#include <cmath>

#include "moo/nsga2.hpp"
#include "moo/pareto.hpp"
#include "util/rng.hpp"

namespace moo = kato::moo;

TEST(Dominance, BasicCases) {
  std::vector<double> a{1.0, 2.0};
  std::vector<double> b{2.0, 3.0};
  std::vector<double> c{0.5, 4.0};
  EXPECT_TRUE(moo::dominates(a, b));
  EXPECT_FALSE(moo::dominates(b, a));
  EXPECT_FALSE(moo::dominates(a, c));  // incomparable
  EXPECT_FALSE(moo::dominates(c, a));
  EXPECT_FALSE(moo::dominates(a, a));  // not strictly better anywhere
}

TEST(Dominance, MismatchThrows) {
  std::vector<double> a{1.0, 2.0};
  std::vector<double> b{1.0};
  EXPECT_THROW(moo::dominates(a, b), std::invalid_argument);
}

TEST(NonDominatedSort, LayersCorrectly) {
  // f0 layer: (0,0); f1 layer: (1,1); f2 layer: (2,2).
  std::vector<std::vector<double>> f{{1, 1}, {0, 0}, {2, 2}, {0.5, 0.6}};
  auto fronts = moo::non_dominated_sort(f);
  ASSERT_GE(fronts.size(), 3u);
  EXPECT_EQ(fronts[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(fronts[1], (std::vector<std::size_t>{3}));
  EXPECT_EQ(fronts[2], (std::vector<std::size_t>{0}));
}

TEST(NonDominatedSort, AllIncomparableIsOneFront) {
  std::vector<std::vector<double>> f{{0, 3}, {1, 2}, {2, 1}, {3, 0}};
  auto fronts = moo::non_dominated_sort(f);
  ASSERT_EQ(fronts.size(), 1u);
  EXPECT_EQ(fronts[0].size(), 4u);
}

TEST(CrowdingDistance, BoundariesInfinite) {
  std::vector<std::vector<double>> f{{0, 3}, {1, 2}, {2, 1}, {3, 0}};
  std::vector<std::size_t> front{0, 1, 2, 3};
  auto d = moo::crowding_distance(f, front);
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[3]));
  EXPECT_FALSE(std::isinf(d[1]));
  EXPECT_GT(d[1], 0.0);
}

TEST(Hypervolume2d, KnownValues) {
  // Single point (0,0) with ref (1,1): unit square.
  EXPECT_DOUBLE_EQ(moo::hypervolume_2d({{0, 0}}, {1, 1}), 1.0);
  // Staircase {(0, .5), (.5, 0)}: 1 - .25 ... compute: 0.75.
  EXPECT_DOUBLE_EQ(moo::hypervolume_2d({{0.0, 0.5}, {0.5, 0.0}}, {1, 1}), 0.75);
  // Dominated point adds nothing.
  EXPECT_DOUBLE_EQ(moo::hypervolume_2d({{0.0, 0.5}, {0.5, 0.0}, {0.6, 0.6}}, {1, 1}),
                   0.75);
  // Points outside the ref box are ignored.
  EXPECT_DOUBLE_EQ(moo::hypervolume_2d({{2.0, 2.0}}, {1, 1}), 0.0);
}

namespace {

/// ZDT1: d-dimensional benchmark with Pareto front f1 = 1 - sqrt(f0), g = 1.
std::vector<double> zdt1(const std::vector<double>& x) {
  const double f0 = x[0];
  double g = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) g += x[i];
  g = 1.0 + 9.0 * g / static_cast<double>(x.size() - 1);
  const double f1 = g * (1.0 - std::sqrt(f0 / g));
  return {f0, f1};
}

}  // namespace

TEST(Nsga2, ConvergesOnZdt1) {
  kato::util::Rng rng(77);
  moo::Nsga2Options opts;
  opts.population = 60;
  opts.generations = 120;
  auto result = moo::nsga2(zdt1, 6, 2, opts, rng);
  ASSERT_GT(result.x.size(), 10u);
  // Front quality: every returned point should be close to the true front
  // f1 = 1 - sqrt(f0) (i.e., g close to 1).
  double worst_gap = 0.0;
  for (const auto& f : result.f) {
    const double ideal = 1.0 - std::sqrt(std::min(f[0], 1.0));
    worst_gap = std::max(worst_gap, f[1] - ideal);
  }
  EXPECT_LT(worst_gap, 0.15);
  // Spread: the front should cover most of f0 in [0,1].
  double min_f0 = 1.0;
  double max_f0 = 0.0;
  for (const auto& f : result.f) {
    min_f0 = std::min(min_f0, f[0]);
    max_f0 = std::max(max_f0, f[0]);
  }
  EXPECT_LT(min_f0, 0.1);
  EXPECT_GT(max_f0, 0.7);
}

TEST(Nsga2, SeedsSurviveWhenOptimal) {
  // Single-objective degenerate case: minimize distance to 0.25 per gene.
  auto fn = [](const std::vector<double>& x) {
    double s = 0.0;
    for (double v : x) s += (v - 0.25) * (v - 0.25);
    return std::vector<double>{s};
  };
  kato::util::Rng rng(78);
  moo::Nsga2Options opts;
  opts.population = 24;
  opts.generations = 20;
  std::vector<std::vector<double>> seeds{{0.25, 0.25, 0.25}};
  auto result = moo::nsga2(fn, 3, 1, opts, rng, seeds);
  ASSERT_FALSE(result.f.empty());
  double best = 1e9;
  for (const auto& f : result.f) best = std::min(best, f[0]);
  EXPECT_LT(best, 1e-6);  // the seeded optimum cannot be lost
}

TEST(Nsga2, RespectsBounds) {
  auto fn = [](const std::vector<double>& x) {
    return std::vector<double>{x[0], 1.0 - x[1]};
  };
  kato::util::Rng rng(79);
  moo::Nsga2Options opts;
  opts.population = 20;
  opts.generations = 15;
  auto result = moo::nsga2(fn, 2, 2, opts, rng);
  for (const auto& x : result.x)
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
}

TEST(Nsga2, DeterministicGivenSeed) {
  kato::util::Rng rng1(123);
  kato::util::Rng rng2(123);
  moo::Nsga2Options opts;
  opts.population = 16;
  opts.generations = 10;
  auto r1 = moo::nsga2(zdt1, 4, 2, opts, rng1);
  auto r2 = moo::nsga2(zdt1, 4, 2, opts, rng2);
  ASSERT_EQ(r1.x.size(), r2.x.size());
  for (std::size_t i = 0; i < r1.x.size(); ++i)
    for (std::size_t j = 0; j < r1.x[i].size(); ++j)
      EXPECT_DOUBLE_EQ(r1.x[i][j], r2.x[i][j]);
}

TEST(Nsga2, ValidatesArguments) {
  kato::util::Rng rng(1);
  moo::Nsga2Options opts;
  EXPECT_THROW(moo::nsga2(zdt1, 0, 2, opts, rng), std::invalid_argument);
  opts.population = 2;
  EXPECT_THROW(moo::nsga2(zdt1, 3, 2, opts, rng), std::invalid_argument);
}

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/experiment.hpp"
#include "core/kato.hpp"

using namespace kato;

TEST(SeedList, DefaultAndEnvOverride) {
  unsetenv("KATO_SEEDS");
  auto seeds = core::seed_list(3);
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_EQ(seeds[0], 1u);
  setenv("KATO_SEEDS", "5", 1);
  EXPECT_EQ(core::seed_list(3).size(), 5u);
  setenv("KATO_SEEDS", "bogus", 1);
  EXPECT_EQ(core::seed_list(3).size(), 3u);
  unsetenv("KATO_SEEDS");
}

TEST(SeedList, RejectsMalformedAndClampsHugeCounts) {
  // Strict full-string parse: trailing garbage must not silently truncate
  // ("4abc" used to read as 4, "1e3" as 1).
  setenv("KATO_SEEDS", "4abc", 1);
  EXPECT_EQ(core::seed_list(3).size(), 3u);
  setenv("KATO_SEEDS", "1e3", 1);
  EXPECT_EQ(core::seed_list(3).size(), 3u);
  setenv("KATO_SEEDS", " 7", 1);  // leading whitespace is strtol-legal
  EXPECT_EQ(core::seed_list(3).size(), 7u);
  setenv("KATO_SEEDS", "7 ", 1);  // trailing whitespace is not
  EXPECT_EQ(core::seed_list(3).size(), 3u);
  setenv("KATO_SEEDS", "0", 1);
  EXPECT_EQ(core::seed_list(3).size(), 3u);
  setenv("KATO_SEEDS", "-5", 1);
  EXPECT_EQ(core::seed_list(3).size(), 3u);
  setenv("KATO_SEEDS", "", 1);
  EXPECT_EQ(core::seed_list(3).size(), 3u);
  // A fat-fingered huge count clamps instead of exploding the sweep.
  setenv("KATO_SEEDS", "999999999", 1);
  EXPECT_EQ(core::seed_list(3).size(), 1024u);
  setenv("KATO_SEEDS", "1024", 1);
  EXPECT_EQ(core::seed_list(3).size(), 1024u);
  unsetenv("KATO_SEEDS");
}

TEST(KatoOptimizer, FacadeEndToEnd) {
  auto circuit = ckt::make_circuit("opamp2", "180nm");
  KatoOptimizer opt(*circuit);
  opt.config().n_init = 80;
  opt.config().iterations = 4;
  const auto r = opt.optimize(1);
  EXPECT_EQ(r.trace.size(), 80u + 16u);
  EXPECT_EQ(r.x_history.size(), r.trace.size());
}

TEST(KatoOptimizer, SeedReproducibleTrace) {
  // Same seed => bit-identical simulation history and FOM/objective trace,
  // independent of the KATO_THREADS knob.  This pins the end-to-end
  // determinism contract: every stochastic component draws from explicit
  // seeded streams, and the threaded acquisition path must not reorder
  // arithmetic.
  auto circuit = ckt::make_circuit("opamp2", "180nm");

  auto run = [&](const char* threads) {
    if (threads == nullptr)
      unsetenv("KATO_THREADS");
    else
      setenv("KATO_THREADS", threads, 1);
    KatoOptimizer opt(*circuit);
    opt.config().n_init = 40;
    opt.config().iterations = 3;
    auto r = opt.optimize(7);
    unsetenv("KATO_THREADS");
    return r;
  };

  const auto r1 = run(nullptr);
  const auto r2 = run(nullptr);
  const auto r3 = run("4");

  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  for (std::size_t i = 0; i < r1.trace.size(); ++i) {
    EXPECT_EQ(r1.trace[i], r2.trace[i]) << "sim " << i;
    EXPECT_EQ(r1.trace[i], r3.trace[i]) << "sim " << i << " (threaded)";
  }
  ASSERT_EQ(r1.x_history.size(), r2.x_history.size());
  for (std::size_t i = 0; i < r1.x_history.size(); ++i) {
    EXPECT_EQ(r1.x_history[i], r2.x_history[i]) << "sim " << i;
    EXPECT_EQ(r1.x_history[i], r3.x_history[i]) << "sim " << i << " (threaded)";
  }
  EXPECT_EQ(r1.best_x, r2.best_x);
}

TEST(Experiment, SeriesAggregationAndPrinting) {
  auto circuit = ckt::make_circuit("opamp2", "180nm");
  bo::BoConfig cfg;
  cfg.n_init = 40;
  cfg.iterations = 2;
  const auto series = core::run_constrained_series(
      *circuit, bo::ConstrainedMethod::mesmoc, cfg, {1, 2});
  EXPECT_EQ(series.runs.size(), 2u);
  EXPECT_EQ(series.band.median.size(), 48u);
  // All band values are finite after sanitization.
  for (double v : series.band.median) EXPECT_TRUE(std::isfinite(v));

  std::ostringstream os;
  core::print_series(os, "test", {series}, 12);
  EXPECT_NE(os.str().find("MESMOC"), std::string::npos);
  EXPECT_NE(os.str().find("48"), std::string::npos);
}

TEST(Experiment, SimsToReachAndBestRun) {
  core::MethodSeries series;
  series.name = "m";
  bo::RunResult r1;
  r1.trace = {5.0, 4.0, 3.0, 2.0};
  bo::RunResult r2;
  r2.trace = {5.0, 5.0, 5.0, 1.0};
  series.runs = {r1, r2};
  // Minimization: reach <= 3.0 at sim 3 (run 1) and sim 4 (run 2): median 3.5.
  EXPECT_DOUBLE_EQ(core::median_sims_to_reach(series, 3.0, true), 3.5);
  // Unreachable target counts as length + 1.
  EXPECT_DOUBLE_EQ(core::median_sims_to_reach(series, 0.0, true), 5.0);
  EXPECT_DOUBLE_EQ(core::best_run(series, true).trace.back(), 1.0);
}

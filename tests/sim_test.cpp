#include <gtest/gtest.h>

#include <cmath>

#include "sim/ac.hpp"
#include "sim/circuit.hpp"
#include "sim/dc.hpp"
#include "sim/mosfet.hpp"

namespace sim = kato::sim;

namespace {

sim::MosModel nmos_model() {
  sim::MosModel m;
  m.nmos = true;
  m.vth0 = 0.5;
  m.kp = 200e-6;
  m.lambda_coef = 0.05e-6;
  return m;
}

[[maybe_unused]] sim::MosModel pmos_model() {
  sim::MosModel m = nmos_model();
  m.nmos = false;
  m.kp = 80e-6;
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// Device model.

TEST(Mosfet, SquareLawSaturation) {
  const auto m = nmos_model();
  // W/L = 10, vov = 0.3, deep saturation.
  const auto op = sim::eval_mosfet(m, 10e-6, 1e-6, 0.8, 1.5);
  const double beta = m.kp * 10.0;
  const double expected = 0.5 * beta * 0.3 * 0.3 * (1.0 + 0.05 * 1.5);
  EXPECT_NEAR(op.ids, expected, 0.05 * expected);  // smoothing deviates a bit
  EXPECT_TRUE(op.saturated);
}

TEST(Mosfet, GmMatchesFiniteDifference) {
  const auto m = nmos_model();
  const double h = 1e-7;
  for (double vgs : {0.45, 0.6, 0.9}) {
    for (double vds : {0.05, 0.4, 1.2}) {
      const auto op = sim::eval_mosfet(m, 5e-6, 0.5e-6, vgs, vds);
      const auto p = sim::eval_mosfet(m, 5e-6, 0.5e-6, vgs + h, vds);
      const auto q = sim::eval_mosfet(m, 5e-6, 0.5e-6, vgs - h, vds);
      EXPECT_NEAR(op.gm, (p.ids - q.ids) / (2 * h), 1e-6 + 0.01 * std::abs(op.gm));
      const auto pd = sim::eval_mosfet(m, 5e-6, 0.5e-6, vgs, vds + h);
      const auto qd = sim::eval_mosfet(m, 5e-6, 0.5e-6, vgs, vds - h);
      EXPECT_NEAR(op.gds, (pd.ids - qd.ids) / (2 * h),
                  1e-6 + 0.01 * std::abs(op.gds));
    }
  }
}

TEST(Mosfet, SubthresholdCurrentIsTiny) {
  const auto m = nmos_model();
  const auto op = sim::eval_mosfet(m, 10e-6, 1e-6, 0.2, 1.0);  // vgs << vth
  EXPECT_LT(op.ids, 1e-8);  // nA-scale leakage from the smoothed model
  EXPECT_GT(op.ids, 0.0);
}

TEST(Mosfet, PmosMirrorsNmos) {
  const auto n = nmos_model();
  auto p = n;
  p.nmos = false;
  const auto opn = sim::eval_mosfet(n, 10e-6, 1e-6, 0.8, 1.0);
  const auto opp = sim::eval_mosfet(p, 10e-6, 1e-6, -0.8, -1.0);
  EXPECT_NEAR(opp.ids, -opn.ids, 1e-12);
  EXPECT_NEAR(opp.gm, opn.gm, 1e-12);
  EXPECT_NEAR(opp.gds, opn.gds, 1e-12);
}

TEST(Mosfet, ReverseVdsAntisymmetric) {
  const auto m = nmos_model();
  // Swapping drain/source flips the current: ids(vgs, -vds) with the gate
  // referenced to the *new* source equals -ids.
  const auto fwd = sim::eval_mosfet(m, 5e-6, 1e-6, 0.9, 0.3);
  const auto rev = sim::eval_mosfet(m, 5e-6, 1e-6, 0.9 - 0.3, -0.3);
  EXPECT_NEAR(rev.ids, -fwd.ids, 1e-12);
}

TEST(Mosfet, LongerChannelLowersOutputConductance) {
  const auto m = nmos_model();
  const auto short_l = sim::eval_mosfet(m, 10e-6, 0.2e-6, 0.8, 1.0);
  const auto long_l = sim::eval_mosfet(m, 10e-6, 2e-6, 0.8, 1.0);
  EXPECT_GT(short_l.gds / short_l.ids, long_l.gds / long_l.ids);
}

// ---------------------------------------------------------------------------
// DC analysis.

TEST(Dc, ResistorDivider) {
  sim::Circuit ckt;
  const int vin = ckt.new_node("vin");
  const int mid = ckt.new_node("mid");
  ckt.add_vsource(vin, sim::Circuit::ground, 3.0);
  ckt.add_resistor(vin, mid, 1e3);
  ckt.add_resistor(mid, sim::Circuit::ground, 2e3);
  const auto res = sim::solve_dc(ckt);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.v(mid), 2.0, 1e-6);
  // Source current: 3V over 3k = 1 mA flowing out of the source's + terminal,
  // i.e. the branch current (p->through source->n) is -1 mA.
  EXPECT_NEAR(res.vsource_current[0], -1e-3, 1e-9);
}

TEST(Dc, DiodeResistorBias) {
  sim::Circuit ckt;
  const int vin = ckt.new_node("vin");
  const int a = ckt.new_node("a");
  ckt.add_vsource(vin, sim::Circuit::ground, 2.0);
  ckt.add_resistor(vin, a, 10e3);
  sim::Diode d;
  d.a = a;
  d.c = sim::Circuit::ground;
  d.is_sat = 1e-15;
  ckt.add_diode(d);
  const auto res = sim::solve_dc(ckt);
  ASSERT_TRUE(res.converged);
  // Forward voltage should be a diode drop; current consistent with R.
  const double vd = res.v(a);
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 0.85);
  const double i_r = (2.0 - vd) / 10e3;
  const double i_d = 1e-15 * (std::exp(vd / sim::thermal_voltage(300.0)) - 1.0);
  EXPECT_NEAR(i_r, i_d, 0.01 * i_r);
}

TEST(Dc, VccsAmplifier) {
  // VCCS driving a load resistor: v_out = -gm R v_in.
  sim::Circuit ckt;
  const int in = ckt.new_node("in");
  const int out = ckt.new_node("out");
  ckt.add_vsource(in, sim::Circuit::ground, 0.1);
  ckt.add_vccs(out, sim::Circuit::ground, in, sim::Circuit::ground, 1e-3);
  ckt.add_resistor(out, sim::Circuit::ground, 10e3);
  const auto res = sim::solve_dc(ckt);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.v(out), -1.0, 1e-6);
}

TEST(Dc, NmosDiodeConnected) {
  // Diode-connected NMOS fed by a current source settles at vgs giving ids=I.
  sim::Circuit ckt;
  const int d = ckt.new_node("d");
  ckt.add_isource(sim::Circuit::ground, d, 50e-6);  // 50uA from gnd into d
  ckt.add_mosfet(d, d, sim::Circuit::ground, 10e-6, 1e-6, nmos_model());
  const auto res = sim::solve_dc(ckt);
  ASSERT_TRUE(res.converged);
  const auto op = res.mosfet_op[0];
  EXPECT_NEAR(op.ids, 50e-6, 1e-7);
  EXPECT_GT(res.v(d), 0.5);  // above threshold
  EXPECT_LT(res.v(d), 1.2);
}

TEST(Dc, CurrentMirrorCopies) {
  sim::Circuit ckt;
  const int vdd = ckt.new_node("vdd");
  const int ref = ckt.new_node("ref");
  const int out = ckt.new_node("out");
  ckt.add_vsource(vdd, sim::Circuit::ground, 1.8);
  ckt.add_isource(vdd, ref, 20e-6);  // reference current into diode device
  ckt.add_mosfet(ref, ref, sim::Circuit::ground, 10e-6, 1e-6, nmos_model());
  ckt.add_mosfet(out, ref, sim::Circuit::ground, 20e-6, 1e-6, nmos_model());
  ckt.add_resistor(vdd, out, 20e3);
  const auto res = sim::solve_dc(ckt);
  ASSERT_TRUE(res.converged);
  // 2x width -> ~2x current (modulo lambda).
  EXPECT_NEAR(res.mosfet_op[1].ids, 40e-6, 5e-6);
}

TEST(Dc, FloatingNodeFlaggedAsFailure) {
  sim::Circuit ckt;
  const int n = ckt.new_node("float");
  ckt.add_isource(sim::Circuit::ground, n, -1e-3);  // 1 mA into a floating node
  const auto res = sim::solve_dc(ckt);
  EXPECT_FALSE(res.converged);  // |v| explodes past the sanity bound
}

TEST(Dc, WarmStartTracksSweep) {
  // Temperature sweep of a diode: forward voltage drops with temperature.
  sim::Circuit ckt;
  const int vin = ckt.new_node("vin");
  const int a = ckt.new_node("a");
  ckt.add_vsource(vin, sim::Circuit::ground, 2.0);
  ckt.add_resistor(vin, a, 10e3);
  sim::Diode d;
  d.a = a;
  d.c = sim::Circuit::ground;
  ckt.add_diode(d);

  sim::DcOptions opts;
  opts.temp = 260.0;
  auto cold = sim::solve_dc(ckt, opts);
  ASSERT_TRUE(cold.converged);
  opts.temp = 360.0;
  auto hot = sim::solve_dc(ckt, opts, &cold.node_voltage);
  ASSERT_TRUE(hot.converged);
  EXPECT_LT(hot.v(a), cold.v(a));
}

// ---------------------------------------------------------------------------
// AC analysis.

TEST(Ac, RcLowPassPole) {
  sim::Circuit ckt;
  const int in = ckt.new_node("in");
  const int out = ckt.new_node("out");
  ckt.add_vsource(in, sim::Circuit::ground, 0.0, 1.0);  // AC stimulus
  const double r = 1e3;
  const double c = 1e-9;  // pole at 159 kHz
  ckt.add_resistor(in, out, r);
  ckt.add_capacitor(out, sim::Circuit::ground, c);
  const auto op = sim::solve_dc(ckt);
  ASSERT_TRUE(op.converged);
  const auto freqs = sim::log_freq_grid(1e2, 1e9, 40);
  const auto sweep = sim::solve_ac(ckt, op, freqs);
  ASSERT_TRUE(sweep.ok);
  const double fp = 1.0 / (2.0 * M_PI * r * c);
  // -3 dB at the pole.
  EXPECT_NEAR(sim::gain_db_at(sweep, out, fp), -3.01, 0.2);
  // Passband flat at 0 dB.
  EXPECT_NEAR(sim::gain_db_at(sweep, out, 1e2), 0.0, 0.01);
  // One decade above: -20 dB/dec.
  EXPECT_NEAR(sim::gain_db_at(sweep, out, fp * 10.0), -20.0, 0.5);
}

TEST(Ac, IntegratorUnityGainAndPhaseMargin) {
  // gm into C: H(s) = gm / (sC) with tiny load conductance for DC finiteness.
  sim::Circuit ckt;
  const int in = ckt.new_node("in");
  const int out = ckt.new_node("out");
  ckt.add_vsource(in, sim::Circuit::ground, 0.0, 1.0);
  const double gm = 1e-3;
  const double c = 1e-9;
  ckt.add_vccs(out, sim::Circuit::ground, sim::Circuit::ground, in, gm);  // +gm
  ckt.add_resistor(out, sim::Circuit::ground, 1e9);
  ckt.add_capacitor(out, sim::Circuit::ground, c);
  const auto op = sim::solve_dc(ckt);
  ASSERT_TRUE(op.converged);
  // Sweep from below the dominant pole (0.16 Hz here) so the phase
  // reference is the DC phase, as phase_margin_deg requires.
  const auto sweep = sim::solve_ac(ckt, op, sim::log_freq_grid(1e-2, 1e9, 40));
  ASSERT_TRUE(sweep.ok);
  const double fu_expected = gm / (2.0 * M_PI * c);  // 159 kHz
  const double fu = sim::unity_gain_freq(sweep, out);
  EXPECT_NEAR(fu / fu_expected, 1.0, 0.02);
  // Single-pole system: phase margin ~90 degrees.
  EXPECT_NEAR(sim::phase_margin_deg(sweep, out), 90.0, 2.0);
}

TEST(Ac, CommonSourceGainMatchesHandCalc) {
  // NMOS common-source with resistive load; |A| ~= gm * (R || ro).
  sim::Circuit ckt;
  const int vdd = ckt.new_node("vdd");
  const int g = ckt.new_node("g");
  const int d = ckt.new_node("d");
  ckt.add_vsource(vdd, sim::Circuit::ground, 1.8);
  ckt.add_vsource(g, sim::Circuit::ground, 0.75, 1.0);  // bias + AC
  ckt.add_resistor(vdd, d, 20e3);
  ckt.add_mosfet(d, g, sim::Circuit::ground, 10e-6, 1e-6, nmos_model());
  const auto op = sim::solve_dc(ckt);
  ASSERT_TRUE(op.converged);
  const auto& mop = op.mosfet_op[0];
  ASSERT_TRUE(mop.saturated);
  const auto sweep = sim::solve_ac(ckt, op, sim::log_freq_grid(10.0, 1e3, 10));
  ASSERT_TRUE(sweep.ok);
  const double r_out = 1.0 / (1.0 / 20e3 + mop.gds);
  const double expected_db = 20.0 * std::log10(mop.gm * r_out);
  EXPECT_NEAR(sim::dc_gain_db(sweep, d), expected_db, 0.1);
}

TEST(Ac, QuietWithoutStimulus) {
  sim::Circuit ckt;
  const int in = ckt.new_node("in");
  const int out = ckt.new_node("out");
  ckt.add_vsource(in, sim::Circuit::ground, 1.0);  // ac = 0
  ckt.add_resistor(in, out, 1e3);
  ckt.add_resistor(out, sim::Circuit::ground, 1e3);
  const auto op = sim::solve_dc(ckt);
  const auto sweep = sim::solve_ac(ckt, op, {1e3});
  ASSERT_TRUE(sweep.ok);
  EXPECT_NEAR(std::abs(sweep.v(0, out)), 0.0, 1e-15);
}

TEST(Ac, FailedOpPropagates) {
  sim::Circuit ckt;
  const int n = ckt.new_node("float");
  ckt.add_isource(sim::Circuit::ground, n, -1e-3);
  const auto op = sim::solve_dc(ckt);
  const auto sweep = sim::solve_ac(ckt, op, {1e3});
  EXPECT_FALSE(sweep.ok);
}

TEST(Circuit, ValidatesDevices) {
  sim::Circuit ckt;
  const int a = ckt.new_node("a");
  EXPECT_THROW(ckt.add_resistor(a, 99, 1e3), std::invalid_argument);
  EXPECT_THROW(ckt.add_resistor(a, 0, -5.0), std::invalid_argument);
  EXPECT_THROW(ckt.add_mosfet(a, a, 0, -1e-6, 1e-6, nmos_model()),
               std::invalid_argument);
}

TEST(FreqGrid, LogSpacing) {
  const auto f = sim::log_freq_grid(10.0, 1000.0, 10);
  ASSERT_EQ(f.size(), 21u);
  EXPECT_NEAR(f.front(), 10.0, 1e-9);
  EXPECT_NEAR(f.back(), 1000.0, 1e-6);
  EXPECT_THROW(sim::log_freq_grid(-1.0, 10.0, 10), std::invalid_argument);
}

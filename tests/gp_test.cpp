#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gp/gp.hpp"
#include "gp/kat_gp.hpp"
#include "kernel/neuk.hpp"
#include "kernel/stationary.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"
#include "util/sampling.hpp"

namespace gp = kato::gp;
namespace kern = kato::kern;
namespace la = kato::la;

namespace {

std::unique_ptr<kern::Kernel> rbf(std::size_t d) {
  return std::make_unique<kern::StationaryArd>(kern::StationaryType::rbf, d);
}

std::unique_ptr<kern::Kernel> neuk(std::size_t d, std::uint64_t seed) {
  kato::util::Rng rng(seed);
  kern::NeukConfig cfg;
  cfg.latent_dim = 3;
  return std::make_unique<kern::NeukKernel>(d, cfg, rng);
}

/// Smooth 2-D test function on the unit square.
double smooth_fn(std::span<const double> x) {
  return std::sin(3.0 * x[0]) + 0.5 * std::cos(5.0 * x[1]) + x[0] * x[1];
}

struct Dataset {
  la::Matrix x;
  la::Vector y;
};

Dataset sample_dataset(std::size_t n, std::uint64_t seed) {
  kato::util::Rng rng(seed);
  auto design = kato::util::latin_hypercube(n, 2, rng);
  Dataset d{la::Matrix(n, 2), la::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    d.x.set_row(i, std::span<const double>(design.row(i), 2));
    d.y[i] = smooth_fn(d.x.row(i));
  }
  return d;
}

}  // namespace

TEST(GaussianProcess, InterpolatesTrainingData) {
  auto data = sample_dataset(30, 100);
  gp::GaussianProcess model(rbf(2));
  model.set_data(data.x, data.y);
  kato::util::Rng rng(1);
  gp::GpFitOptions opts;
  opts.iterations = 120;
  model.fit(opts, rng);
  for (std::size_t i = 0; i < 30; i += 5) {
    const auto p = model.predict(data.x.row(i));
    EXPECT_NEAR(p.mean, data.y[i], 0.15) << "train point " << i;
  }
}

TEST(GaussianProcess, GeneralizesToHeldOut) {
  auto train = sample_dataset(60, 101);
  auto test = sample_dataset(20, 202);
  gp::GaussianProcess model(rbf(2));
  model.set_data(train.x, train.y);
  kato::util::Rng rng(2);
  gp::GpFitOptions opts;
  opts.iterations = 150;
  model.fit(opts, rng);
  double rmse = 0.0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto p = model.predict(test.x.row(i));
    rmse += (p.mean - test.y[i]) * (p.mean - test.y[i]);
  }
  rmse = std::sqrt(rmse / 20.0);
  EXPECT_LT(rmse, 0.15);
}

TEST(GaussianProcess, VarianceSmallAtDataLargeAway) {
  auto data = sample_dataset(40, 103);
  gp::GaussianProcess model(rbf(2));
  model.set_data(data.x, data.y);
  kato::util::Rng rng(3);
  gp::GpFitOptions opts;
  opts.iterations = 100;
  model.fit(opts, rng);
  const auto at_data = model.predict_std(data.x.row(0));
  // Far outside the unit box, far from all samples.
  std::vector<double> far{4.0, -3.0};
  const auto away = model.predict_std(far);
  EXPECT_LT(at_data.var, away.var);
  EXPECT_GT(away.var, 0.3);  // should approach the prior amplitude
}

TEST(GaussianProcess, FitReducesNll) {
  auto data = sample_dataset(50, 104);
  gp::GaussianProcess model(rbf(2));
  model.set_data(data.x, data.y);
  const double before = model.nll();
  kato::util::Rng rng(4);
  gp::GpFitOptions opts;
  opts.iterations = 100;
  model.fit(opts, rng);
  EXPECT_LT(model.nll(), before);
}

TEST(GaussianProcess, NeukSurrogateFitsToo) {
  auto train = sample_dataset(60, 105);
  auto test = sample_dataset(15, 206);
  gp::GaussianProcess model(neuk(2, 55));
  model.set_data(train.x, train.y);
  kato::util::Rng rng(5);
  gp::GpFitOptions opts;
  opts.iterations = 200;
  opts.lr = 0.03;
  model.fit(opts, rng);
  double rmse = 0.0;
  for (std::size_t i = 0; i < 15; ++i) {
    const auto p = model.predict(test.x.row(i));
    rmse += (p.mean - test.y[i]) * (p.mean - test.y[i]);
  }
  rmse = std::sqrt(rmse / 15.0);
  EXPECT_LT(rmse, 0.25);
}

TEST(GaussianProcess, PredictStdGradMatchesFiniteDifference) {
  auto data = sample_dataset(25, 106);
  gp::GaussianProcess model(rbf(2));
  model.set_data(data.x, data.y);
  kato::util::Rng rng(6);
  gp::GpFitOptions opts;
  opts.iterations = 60;
  model.fit(opts, rng);

  std::vector<double> x{0.37, 0.61};
  gp::GpPrediction pred;
  la::Vector dmean, dvar;
  model.predict_std_grad(x, pred, dmean, dvar);

  const double h = 1e-6;
  for (std::size_t j = 0; j < 2; ++j) {
    auto xp = x;
    auto xm = x;
    xp[j] += h;
    xm[j] -= h;
    const auto pp = model.predict_std(xp);
    const auto pm = model.predict_std(xm);
    EXPECT_NEAR(dmean[j], (pp.mean - pm.mean) / (2 * h), 1e-5);
    EXPECT_NEAR(dvar[j], (pp.var - pm.var) / (2 * h), 1e-5);
  }
}

TEST(GaussianProcess, HandlesConstantTargets) {
  la::Matrix x(5, 1);
  for (std::size_t i = 0; i < 5; ++i) x(i, 0) = 0.2 * static_cast<double>(i);
  la::Vector y(5, 3.0);
  gp::GaussianProcess model(rbf(1));
  model.set_data(x, y);
  const auto p = model.predict(std::vector<double>{0.5});
  EXPECT_NEAR(p.mean, 3.0, 1e-6);
}

TEST(GaussianProcess, RejectsBadData) {
  gp::GaussianProcess model(rbf(2));
  la::Matrix x(3, 1);  // wrong dim
  la::Vector y(3, 0.0);
  EXPECT_THROW(model.set_data(x, y), std::invalid_argument);
  la::Matrix x2(3, 2);
  la::Vector y2(2, 0.0);  // wrong n
  EXPECT_THROW(model.set_data(x2, y2), std::invalid_argument);
}

TEST(MultiGp, IndependentMetrics) {
  kato::util::Rng rng(7);
  const std::size_t n = 40;
  auto design = kato::util::latin_hypercube(n, 2, rng);
  la::Matrix x(n, 2);
  la::Matrix y(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x.set_row(i, std::span<const double>(design.row(i), 2));
    y(i, 0) = x(i, 0) + x(i, 1);          // metric 0: linear
    y(i, 1) = std::sin(4.0 * x(i, 0));    // metric 1: nonlinear in x0 only
  }
  gp::MultiGp model(2, [] { return rbf(2); });
  model.set_data(x, y);
  gp::GpFitOptions opts;
  opts.iterations = 100;
  model.fit(opts, rng);
  std::vector<double> q{0.3, 0.7};
  auto preds = model.predict(q);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_NEAR(preds[0].mean, 1.0, 0.1);
  EXPECT_NEAR(preds[1].mean, std::sin(1.2), 0.15);
}

// ---------------------------------------------------------------------------
// KAT-GP transfer tests: source and target are related nonlinear functions on
// different input spaces (3-D source, 2-D target), mimicking transfer between
// circuit topologies with different design variables.

namespace {

/// Aligned ("technology node") transfer: same design space, the target is an
/// affine warp of a wiggly source response.
double node_source_fn(std::span<const double> x) {
  return std::sin(6.0 * x[0]) + std::cos(4.0 * x[1]) * x[1];
}
double node_target_fn(std::span<const double> x) {
  return 1.4 * node_source_fn(x) + 0.5;
}

/// Cross-dimensional ("topology") transfer: 3-D source, 2-D target; the ideal
/// encoder maps (t0, t1) -> (t0, t1, 0.3) and the decoder scales and shifts.
double topo_source_fn(std::span<const double> x) {
  return std::sin(3.0 * x[0]) + x[1] * x[1] - 0.5 * x[2];
}
double topo_target_fn(std::span<const double> x) {
  std::vector<double> s{x[0], x[1], 0.3};
  return 1.5 * topo_source_fn(s) + 0.7;
}

struct TransferSetup {
  std::unique_ptr<gp::MultiGp> source;
  la::Matrix xt;
  la::Matrix yt;
};

TransferSetup make_transfer(std::size_t src_dim, std::size_t n_src,
                            std::size_t n_tgt, std::uint64_t seed,
                            double (*src_fn)(std::span<const double>),
                            double (*tgt_fn)(std::span<const double>)) {
  kato::util::Rng rng(seed);
  TransferSetup ts;
  auto src_design = kato::util::latin_hypercube(n_src, src_dim, rng);
  la::Matrix xs(n_src, src_dim);
  la::Matrix ys(n_src, 1);
  for (std::size_t i = 0; i < n_src; ++i) {
    xs.set_row(i, std::span<const double>(src_design.row(i), src_dim));
    ys(i, 0) = src_fn(xs.row(i));
  }
  ts.source = std::make_unique<gp::MultiGp>(1, [src_dim] { return rbf(src_dim); });
  ts.source->set_data(xs, ys);
  gp::GpFitOptions opts;
  opts.iterations = 120;
  ts.source->fit(opts, rng);

  auto tgt_design = kato::util::latin_hypercube(n_tgt, 2, rng);
  ts.xt = la::Matrix(n_tgt, 2);
  ts.yt = la::Matrix(n_tgt, 1);
  for (std::size_t i = 0; i < n_tgt; ++i) {
    ts.xt.set_row(i, std::span<const double>(tgt_design.row(i), 2));
    ts.yt(i, 0) = tgt_fn(ts.xt.row(i));
  }
  return ts;
}

double test_rmse(const std::function<double(std::span<const double>)>& model,
                 double (*truth)(std::span<const double>), std::uint64_t seed) {
  kato::util::Rng rng(seed);
  double se = 0.0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    std::vector<double> q = rng.uniform_vec(2);
    se += std::pow(model(q) - truth(q), 2);
  }
  return std::sqrt(se / n);
}

}  // namespace

TEST(KatGp, TrainingReducesExactNll) {
  auto ts = make_transfer(3, 80, 40, 300, topo_source_fn, topo_target_fn);
  kato::util::Rng rng(8);
  gp::KatGpConfig cfg;
  cfg.init_iterations = 120;
  gp::KatGp kat(ts.source.get(), 2, 1, cfg, rng);
  kat.set_target_data(ts.xt, ts.yt);
  const double before = kat.nll();
  kat.fit(rng);
  const double after = kat.nll();
  EXPECT_LE(after, before);
}

TEST(KatGp, NodeTransferBeatsScratchGp) {
  // Aligned transfer with 12 target points: KAT-GP leaning on a 100-point
  // source model must beat a from-scratch GP trained on the same 12 points.
  auto ts = make_transfer(2, 100, 12, 301, node_source_fn, node_target_fn);
  kato::util::Rng rng(9);

  gp::KatGpConfig cfg;
  gp::KatGp kat(ts.source.get(), 2, 1, cfg, rng);
  kat.set_target_data(ts.xt, ts.yt);
  kat.fit(rng);

  gp::GaussianProcess scratch(rbf(2));
  la::Vector yt(ts.yt.rows());
  for (std::size_t i = 0; i < yt.size(); ++i) yt[i] = ts.yt(i, 0);
  scratch.set_data(ts.xt, yt);
  gp::GpFitOptions opts;
  opts.iterations = 120;
  scratch.fit(opts, rng);

  const double kat_rmse = test_rmse(
      [&](std::span<const double> q) { return kat.predict(q)[0].mean; },
      node_target_fn, 555);
  const double gp_rmse = test_rmse(
      [&](std::span<const double> q) { return scratch.predict(q).mean; },
      node_target_fn, 555);
  EXPECT_LT(kat_rmse, gp_rmse);
  EXPECT_LT(kat_rmse, 0.3);  // absolute quality, target std is ~1
}

TEST(KatGp, TopologyTransferLearnsCrossDimensionalMap) {
  // 3-D source -> 2-D target.  The encoder must discover the embedding; the
  // identity-biased init plus training should land near the truth.
  auto ts = make_transfer(3, 150, 12, 302, topo_source_fn, topo_target_fn);
  kato::util::Rng rng(10);
  gp::KatGpConfig cfg;
  gp::KatGp kat(ts.source.get(), 2, 1, cfg, rng);
  kat.set_target_data(ts.xt, ts.yt);
  kat.fit(rng);
  const double kat_rmse = test_rmse(
      [&](std::span<const double> q) { return kat.predict(q)[0].mean; },
      topo_target_fn, 556);
  EXPECT_LT(kat_rmse, 0.3);
}

TEST(KatGp, PredictShapesAndFiniteValues) {
  auto ts = make_transfer(3, 40, 20, 303, topo_source_fn, topo_target_fn);
  kato::util::Rng rng(11);
  gp::KatGpConfig cfg;
  cfg.init_iterations = 50;
  gp::KatGp kat(ts.source.get(), 2, 1, cfg, rng);
  kat.set_target_data(ts.xt, ts.yt);
  kat.fit(rng);
  auto preds = kat.predict(std::vector<double>{0.4, 0.6});
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_TRUE(std::isfinite(preds[0].mean));
  EXPECT_GT(preds[0].var, 0.0);
}

TEST(KatGp, RefitAfterNewDataImproves) {
  auto ts = make_transfer(2, 100, 10, 304, node_source_fn, node_target_fn);
  kato::util::Rng rng(12);
  gp::KatGpConfig cfg;
  gp::KatGp kat(ts.source.get(), 2, 1, cfg, rng);
  kat.set_target_data(ts.xt, ts.yt);
  kat.fit(rng);

  // Add 10 more points (BO-style growth) and refit warm-started.
  auto more = make_transfer(2, 4, 20, 305, node_source_fn, node_target_fn);
  la::Matrix x2(20, 2);
  la::Matrix y2(20, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    x2.set_row(i, ts.xt.row(i));
    y2(i, 0) = ts.yt(i, 0);
  }
  for (std::size_t i = 0; i < 10; ++i) {
    x2.set_row(10 + i, more.xt.row(i));
    y2(10 + i, 0) = more.yt(i, 0);
  }
  kat.set_target_data(x2, y2);
  kat.fit(rng);
  const double rmse = test_rmse(
      [&](std::span<const double> q) { return kat.predict(q)[0].mean; },
      node_target_fn, 557);
  EXPECT_LT(rmse, 0.35);
}

TEST(KatGp, RejectsMismatchedData) {
  auto ts = make_transfer(3, 30, 10, 306, topo_source_fn, topo_target_fn);
  kato::util::Rng rng(13);
  gp::KatGpConfig cfg;
  gp::KatGp kat(ts.source.get(), 2, 1, cfg, rng);
  la::Matrix bad_x(10, 3);  // wrong target dim
  EXPECT_THROW(kat.set_target_data(bad_x, ts.yt), std::invalid_argument);
}

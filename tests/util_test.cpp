#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/sampling.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ku = kato::util;

TEST(Rng, DeterministicForSameSeed) {
  ku::Rng a(42);
  ku::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  ku::Rng a(1);
  ku::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  ku::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  ku::Rng rng(11);
  auto v = rng.normal_vec(20000);
  EXPECT_NEAR(ku::mean(v), 0.0, 0.05);
  EXPECT_NEAR(ku::stddev(v), 1.0, 0.05);
}

TEST(Rng, PermutationIsPermutation) {
  ku::Rng rng(3);
  auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, ChoiceDistinct) {
  ku::Rng rng(5);
  auto c = rng.choice(100, 30);
  std::set<std::size_t> seen(c.begin(), c.end());
  EXPECT_EQ(seen.size(), 30u);
  for (auto i : seen) EXPECT_LT(i, 100u);
}

TEST(Rng, ChoiceThrowsWhenKTooLarge) {
  ku::Rng rng(5);
  EXPECT_THROW(rng.choice(3, 4), std::invalid_argument);
}

TEST(Rng, SplitStreamsIndependent) {
  ku::Rng parent(9);
  ku::Rng child = parent.split();
  // Child draws must not equal the parent's subsequent draws.
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (parent.uniform() == child.uniform()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Sampling, LatinHypercubeStratified) {
  ku::Rng rng(13);
  const std::size_t n = 16;
  auto m = ku::latin_hypercube(n, 3, rng);
  // Exactly one point per 1/n bin in every dimension.
  for (std::size_t j = 0; j < 3; ++j) {
    std::vector<int> bin_count(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = m.data[i * 3 + j];
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
      ++bin_count[static_cast<std::size_t>(v * static_cast<double>(n))];
    }
    for (int c : bin_count) EXPECT_EQ(c, 1);
  }
}

TEST(Sampling, ScaleRoundTrip) {
  std::vector<double> lo{-1.0, 0.0, 10.0};
  std::vector<double> hi{1.0, 5.0, 20.0};
  std::vector<double> unit{0.25, 0.5, 0.75};
  auto x = ku::scale_to_box(unit, lo, hi);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 2.5);
  EXPECT_DOUBLE_EQ(x[2], 17.5);
  auto u = ku::scale_to_unit(x, lo, hi);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(u[i], unit[i], 1e-12);
}

TEST(Stats, BasicMoments) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ku::mean(v), 2.5);
  EXPECT_DOUBLE_EQ(ku::variance(v), 1.25);
  EXPECT_DOUBLE_EQ(ku::median(v), 2.5);
}

TEST(Stats, QuantileInterpolation) {
  std::vector<double> v{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ku::quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ku::quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(ku::quantile(v, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(ku::quantile(v, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(ku::quantile(v, 0.1), 0.4);
}

TEST(Stats, EmptyThrows) {
  std::vector<double> v;
  EXPECT_THROW(ku::mean(v), std::invalid_argument);
  EXPECT_THROW(ku::quantile(v, 0.5), std::invalid_argument);
}

TEST(Stats, RunningBest) {
  std::vector<double> v{3.0, 1.0, 4.0, 1.0, 5.0};
  auto mx = ku::running_max(v);
  auto mn = ku::running_min(v);
  EXPECT_EQ(mx, (std::vector<double>{3, 3, 4, 4, 5}));
  EXPECT_EQ(mn, (std::vector<double>{3, 1, 1, 1, 1}));
}

TEST(Stats, AggregateTraces) {
  std::vector<std::vector<double>> traces{{1, 2}, {3, 4}, {5, 6}};
  auto band = ku::aggregate_traces(traces);
  EXPECT_DOUBLE_EQ(band.median[0], 3.0);
  EXPECT_DOUBLE_EQ(band.median[1], 4.0);
  EXPECT_DOUBLE_EQ(band.q25[0], 2.0);
  EXPECT_DOUBLE_EQ(band.q75[0], 4.0);
}

TEST(Stats, AggregateTracesRejectsRagged) {
  std::vector<std::vector<double>> traces{{1, 2}, {3}};
  EXPECT_THROW(ku::aggregate_traces(traces), std::invalid_argument);
}

TEST(Table, AlignedOutput) {
  ku::Table t({"method", "value"});
  t.add_row({"kato", "1.0"});
  t.add_row("mace", {2.5}, 1);
  const auto s = t.to_string();
  EXPECT_NE(s.find("method"), std::string::npos);
  EXPECT_NE(s.find("kato"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(Table, CsvOutput) {
  ku::Table t({"a", "b"});
  t.add_row({"x", "y"});
  EXPECT_EQ(t.to_csv(), "a,b\nx,y\n");
}

TEST(Table, RejectsWrongArity) {
  ku::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace la = kato::la;

TEST(Matrix, ConstructionAndIndexing) {
  la::Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(la::Matrix::from_rows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  auto m = la::Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(Matrix, MatmulAgainstKnown) {
  auto a = la::Matrix::from_rows({{1, 2}, {3, 4}});
  auto b = la::Matrix::from_rows({{5, 6}, {7, 8}});
  auto c = la::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulVariantsConsistent) {
  kato::util::Rng rng(1);
  la::Matrix a(4, 3);
  la::Matrix b(4, 5);
  for (auto& v : a.data()) v = rng.normal();
  for (auto& v : b.data()) v = rng.normal();
  auto tn = la::matmul_tn(a, b);                    // a^T b : 3x5
  auto ref = la::matmul(a.transpose(), b);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_NEAR(tn(i, j), ref(i, j), 1e-12);

  auto nt = la::matmul_nt(a.transpose(), b.transpose());  // (3x4)*(4x5)
  auto ref2 = la::matmul(a.transpose(), b);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_NEAR(nt(i, j), ref2(i, j), 1e-12);
}

TEST(Matrix, MatvecAndOuter) {
  auto a = la::Matrix::from_rows({{1, 2}, {3, 4}});
  la::Vector x{1.0, -1.0};
  auto y = la::matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  auto yt = la::matvec_t(a, x);
  EXPECT_DOUBLE_EQ(yt[0], -2.0);
  EXPECT_DOUBLE_EQ(yt[1], -2.0);
  auto o = la::outer(x, x);
  EXPECT_DOUBLE_EQ(o(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(o(1, 1), 1.0);
}

TEST(Cholesky, FactorsSpdMatrix) {
  auto a = la::Matrix::from_rows({{4, 2}, {2, 3}});
  auto l = la::cholesky(a);
  ASSERT_TRUE(l.has_value());
  // Reconstruct.
  auto rec = la::matmul_nt(*l, *l);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(rec(i, j), a(i, j), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  auto a = la::Matrix::from_rows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(la::cholesky(a).has_value());
}

TEST(Cholesky, JitterLadderRecoversSingular) {
  // Rank-deficient PSD matrix: ones(3,3).
  la::Matrix a(3, 3, 1.0);
  auto jc = la::cholesky_jittered(a);
  EXPECT_GT(jc.jitter, 0.0);
  EXPECT_EQ(jc.l.rows(), 3u);
}

TEST(Cholesky, SolveMatchesDirect) {
  kato::util::Rng rng(2);
  const std::size_t n = 12;
  la::Matrix b(n, n);
  for (auto& v : b.data()) v = rng.normal();
  la::Matrix a = la::matmul_nt(b, b);  // SPD
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  la::Vector rhs = rng.normal_vec(n);
  auto l = la::cholesky(a);
  ASSERT_TRUE(l.has_value());
  auto x = la::cholesky_solve(*l, rhs);
  auto ax = la::matvec(a, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-8);
}

TEST(Cholesky, InverseAndLogdet) {
  auto a = la::Matrix::from_rows({{2, 0.5}, {0.5, 1}});
  auto l = la::cholesky(a);
  ASSERT_TRUE(l.has_value());
  auto inv = la::cholesky_inverse(*l);
  auto prod = la::matmul(a, inv);
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(la::cholesky_logdet(*l), std::log(2.0 * 1.0 - 0.25), 1e-12);
}

TEST(Lu, SolvesGeneralSystem) {
  auto a = la::Matrix::from_rows({{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}});
  la::Vector b{-8, 0, 3};
  auto x = la::lu_solve(a, b);
  ASSERT_TRUE(x.has_value());
  auto ax = la::matvec(a, *x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(Lu, DetectsSingular) {
  auto a = la::Matrix::from_rows({{1, 2}, {2, 4}});
  la::Vector b{1, 2};
  EXPECT_FALSE(la::lu_solve(a, b).has_value());
}

TEST(Lu, ComplexSolve) {
  using cd = std::complex<double>;
  la::CMatrix a(2, 2);
  a(0, 0) = cd(1, 1);
  a(0, 1) = cd(0, -1);
  a(1, 0) = cd(2, 0);
  a(1, 1) = cd(1, -1);
  la::CVector b{cd(1, 0), cd(0, 1)};
  auto x = la::lu_solve_complex(a, b);
  ASSERT_TRUE(x.has_value());
  // Verify residual.
  for (std::size_t i = 0; i < 2; ++i) {
    cd r = -b[i];
    for (std::size_t j = 0; j < 2; ++j) r += a(i, j) * (*x)[j];
    EXPECT_NEAR(std::abs(r), 0.0, 1e-12);
  }
}

TEST(Lu, ComplexSingularDetected) {
  using cd = std::complex<double>;
  la::CMatrix a(2, 2);
  a(0, 0) = cd(1, 0);
  a(0, 1) = cd(2, 0);
  a(1, 0) = cd(2, 0);
  a(1, 1) = cd(4, 0);
  la::CVector b{cd(1, 0), cd(1, 0)};
  EXPECT_FALSE(la::lu_solve_complex(a, b).has_value());
}

TEST(VectorOps, DotNormAxpySqdist) {
  la::Vector a{1, 2, 3};
  la::Vector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(la::dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(la::norm2(a), std::sqrt(14.0));
  la::axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  EXPECT_DOUBLE_EQ(la::sq_dist(a, la::Vector{1, 2, 4}), 1.0);
}

// ---------------------------------------------------------------------------
// Large-matrix paths: the tiled matmul crosses its 64-wide k tile and the
// blocked Cholesky crosses its 48-wide panel only above those sizes, so the
// small-matrix tests above never execute the multi-block code.

namespace {

la::Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  kato::util::Rng rng(seed);
  la::Matrix m(r, c);
  for (auto& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

/// Reference triple loop, deliberately independent of the tiled kernel.
la::Matrix naive_matmul(const la::Matrix& a, const la::Matrix& b) {
  la::Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

}  // namespace

TEST(Matmul, TiledPathMatchesNaiveAcrossTileBoundary) {
  // Inner dimension 150 spans three k tiles (64 + 64 + 22).
  const auto a = random_matrix(37, 150, 101);
  const auto b = random_matrix(150, 41, 102);
  const auto c = la::matmul(a, b);
  const auto ref = naive_matmul(a, b);
  for (std::size_t i = 0; i < c.rows(); ++i)
    for (std::size_t j = 0; j < c.cols(); ++j)
      EXPECT_NEAR(c(i, j), ref(i, j), 1e-10) << i << "," << j;
}

TEST(Cholesky, BlockedPathReconstructsLargeSpd) {
  // n = 96 exercises two panels: diagonal factor, panel solve and trailing
  // update all run at least once.
  const std::size_t n = 96;
  const auto b = random_matrix(n, n, 103);
  la::Matrix spd = la::matmul_nt(b, b);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);

  const auto l = la::cholesky(spd);
  ASSERT_TRUE(l.has_value());
  // Strictly lower triangular factor: upper part must stay zero.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      EXPECT_DOUBLE_EQ((*l)(i, j), 0.0);
  // L L^T reproduces the input.
  const la::Matrix rec = la::matmul_nt(*l, *l);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(rec(i, j), spd(i, j), 1e-9) << i << "," << j;
}

TEST(Cholesky, BlockedSolveMatchesDirectResidual) {
  const std::size_t n = 80;
  const auto b = random_matrix(n, n, 104);
  la::Matrix spd = la::matmul_nt(b, b);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  const auto l = la::cholesky(spd);
  ASSERT_TRUE(l.has_value());

  kato::util::Rng rng(105);
  const la::Vector rhs = rng.normal_vec(n);
  const la::Vector x = la::cholesky_solve(*l, rhs);
  const la::Vector ax = la::matvec(spd, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-8);
}

#include <gtest/gtest.h>

#include <cmath>

#include "bo/acquisition.hpp"
#include "bo/drivers.hpp"
#include "bo/mace.hpp"
#include "bo/surrogate.hpp"
#include "circuits/factory.hpp"

namespace bo = kato::bo;
namespace gp = kato::gp;
namespace ckt = kato::ckt;

// ---------------------------------------------------------------------------
// Acquisition functions.

TEST(Acquisition, NormalHelpers) {
  EXPECT_NEAR(bo::norm_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(bo::norm_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(bo::norm_pdf(0.0), 0.39894, 1e-5);
}

TEST(Acquisition, EiPositiveAndMonotoneInMean) {
  gp::GpPrediction good{0.0, 0.04};   // mean well below incumbent
  gp::GpPrediction poor{2.0, 0.04};
  const double y_best = 1.0;
  EXPECT_GT(bo::expected_improvement(good, y_best),
            bo::expected_improvement(poor, y_best));
  EXPECT_GE(bo::expected_improvement(poor, y_best), 0.0);
}

TEST(Acquisition, EiGrowsWithUncertaintyAtIncumbent) {
  gp::GpPrediction narrow{1.0, 0.01};
  gp::GpPrediction wide{1.0, 1.0};
  EXPECT_GT(bo::expected_improvement(wide, 1.0),
            bo::expected_improvement(narrow, 1.0));
}

TEST(Acquisition, PiIsHalfAtIncumbent) {
  gp::GpPrediction p{1.0, 0.25};
  EXPECT_NEAR(bo::probability_of_improvement(p, 1.0), 0.5, 1e-12);
}

TEST(Acquisition, UcbClampedAtZero) {
  gp::GpPrediction hopeless{10.0, 0.01};
  EXPECT_DOUBLE_EQ(bo::ucb_improvement(hopeless, 0.0, 2.0), 0.0);
  gp::GpPrediction promising{0.5, 1.0};
  EXPECT_GT(bo::ucb_improvement(promising, 1.0, 2.0), 0.0);
}

TEST(Acquisition, PfRespectsDirectionsAndCertainty) {
  std::vector<ckt::MetricSpec> specs{{"Gain", "dB", 60.0, true},
                                     {"I", "uA", 6.0, false}};
  // Confidently feasible on both.
  std::vector<gp::GpPrediction> ok{{80.0, 1.0}, {3.0, 0.01}};
  EXPECT_GT(bo::probability_of_feasibility(ok, specs), 0.99);
  // Confidently infeasible on the first.
  std::vector<gp::GpPrediction> bad{{40.0, 1.0}, {3.0, 0.01}};
  EXPECT_LT(bo::probability_of_feasibility(bad, specs), 1e-6);
  // On the boundary with wide uncertainty: about half.
  std::vector<gp::GpPrediction> edge{{60.0, 25.0}, {3.0, 0.01}};
  EXPECT_NEAR(bo::probability_of_feasibility(edge, specs), 0.5, 0.01);
}

TEST(Acquisition, ViolationTerms) {
  std::vector<ckt::MetricSpec> specs{{"Gain", "dB", 60.0, true}};
  std::vector<gp::GpPrediction> pred{{50.0, 4.0}};
  EXPECT_DOUBLE_EQ(bo::total_violation(pred, specs, {1.0}), 10.0);
  EXPECT_DOUBLE_EQ(bo::total_violation_scaled(pred, specs), 5.0);
  std::vector<gp::GpPrediction> fine{{70.0, 4.0}};
  EXPECT_DOUBLE_EQ(bo::total_violation(fine, specs, {1.0}), 0.0);
}

// ---------------------------------------------------------------------------
// MACE proposals on a synthetic constrained problem.

namespace {

/// Toy constrained problem: minimize f0 = ||x - 0.7||^2 subject to
/// c(x) = x0 >= 0.5 (metric layout [obj, c]).
struct ToyProblem {
  static double objective(std::span<const double> x) {
    double s = 0.0;
    for (double v : x) s += (v - 0.7) * (v - 0.7);
    return s;
  }
  static std::vector<ckt::MetricSpec> specs() {
    return {{"c0", "", 0.5, true}};
  }
};

bo::GpSurrogate fitted_toy_surrogate(kato::util::Rng& rng, std::size_t n = 60) {
  gp::GpFitOptions fast{60, 0.05, 192, 1e-6};
  bo::GpSurrogate surr(2, 2, bo::KernelKind::rbf, fast, fast, rng);
  kato::la::Matrix x(n, 2);
  kato::la::Matrix y(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = rng.uniform_vec(2);
    x.set_row(i, p);
    y(i, 0) = ToyProblem::objective(p);
    y(i, 1) = p[0];
  }
  surr.refit(x, y, rng);
  return surr;
}

}  // namespace

TEST(Mace, ProposalsConcentrateNearConstrainedOptimum) {
  kato::util::Rng rng(11);
  auto surr = fitted_toy_surrogate(rng);
  bo::MaceOptions opts;
  opts.nsga.population = 32;
  opts.nsga.generations = 25;
  const auto specs = ToyProblem::specs();
  const auto set = bo::mace_proposals(surr, specs, 0.05, opts, rng, {});
  ASSERT_FALSE(set.x.empty());
  // A healthy share of proposals should be near the optimum (0.7, 0.7) and
  // on the feasible side.
  int near = 0;
  for (const auto& x : set.x)
    if (x[0] > 0.45 && std::abs(x[0] - 0.7) < 0.25 && std::abs(x[1] - 0.7) < 0.25)
      ++near;
  EXPECT_GT(near, 0);
}

TEST(Mace, FullVariantProducesSixObjectives) {
  kato::util::Rng rng(12);
  auto surr = fitted_toy_surrogate(rng);
  bo::MaceOptions opts;
  opts.variant = bo::MaceVariant::full;
  opts.nsga.population = 16;
  opts.nsga.generations = 5;
  const auto set =
      bo::mace_proposals(surr, ToyProblem::specs(), 0.05, opts, rng, {});
  ASSERT_FALSE(set.f.empty());
  EXPECT_EQ(set.f.front().size(), 6u);
}

TEST(Mace, SelectBatchDistinctAndSized) {
  kato::util::Rng rng(13);
  kato::moo::ParetoSet set;
  set.x = {{0.1, 0.1}, {0.2, 0.2}, {0.1, 0.1}};  // contains a duplicate
  set.f = {{0.0}, {0.0}, {0.0}};
  const auto batch = bo::select_batch(set, 4, 2, rng);
  EXPECT_EQ(batch.size(), 4u);  // filled with random points as needed
  // No exact duplicates among the first picks.
  for (std::size_t i = 0; i < batch.size(); ++i)
    for (std::size_t j = i + 1; j < batch.size(); ++j)
      EXPECT_FALSE(batch[i] == batch[j]);
}

// ---------------------------------------------------------------------------
// End-to-end drivers on the real circuits (small budgets).

TEST(Drivers, KatoConstrainedFindsFeasibleTwoStage) {
  auto circuit = ckt::make_circuit("opamp2", "180nm");
  bo::BoConfig cfg;
  cfg.n_init = 120;
  cfg.iterations = 6;
  const auto r = bo::run_constrained(*circuit, bo::ConstrainedMethod::kato,
                                     cfg, 1);
  EXPECT_EQ(r.trace.size(), cfg.n_init + cfg.batch * cfg.iterations);
  ASSERT_FALSE(r.best_metrics.empty());
  EXPECT_TRUE(circuit->feasible(r.best_metrics));
  // Trace is monotone non-increasing once finite.
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    if (std::isfinite(r.trace[i - 1])) {
      EXPECT_LE(r.trace[i], r.trace[i - 1]);
    }
  }
}

TEST(Drivers, KatoBeatsRandomSearchOnFom) {
  // Averaged over seeds: a single head-to-head race is a coin flip on easy
  // landscapes, but BO must win in expectation.
  auto circuit = ckt::make_circuit("opamp2", "180nm");
  kato::util::Rng rng(3);
  const auto norm = ckt::calibrate_fom(*circuit, 150, rng);
  bo::BoConfig cfg;
  cfg.n_init = 10;
  cfg.iterations = 20;
  double kato_sum = 0.0;
  double rs_sum = 0.0;
  for (std::uint64_t seed : {5, 6, 7}) {
    kato_sum += bo::run_fom(*circuit, norm, bo::FomMethod::kato, cfg, seed)
                    .trace.back();
    rs_sum += bo::run_fom(*circuit, norm, bo::FomMethod::random_search, cfg,
                          seed)
                  .trace.back();
  }
  EXPECT_GE(kato_sum, rs_sum);
}

TEST(Drivers, AllConstrainedMethodsRun) {
  auto circuit = ckt::make_circuit("opamp2", "180nm");
  bo::BoConfig cfg;
  cfg.n_init = 60;
  cfg.iterations = 2;
  for (auto m : {bo::ConstrainedMethod::mace_full, bo::ConstrainedMethod::mesmoc,
                 bo::ConstrainedMethod::usemoc}) {
    const auto r = bo::run_constrained(*circuit, m, cfg, 2);
    EXPECT_EQ(r.trace.size(), cfg.n_init + cfg.batch * cfg.iterations)
        << bo::to_string(m);
  }
}

TEST(Drivers, SmacRfRuns) {
  auto circuit = ckt::make_circuit("opamp2", "180nm");
  kato::util::Rng rng(4);
  const auto norm = ckt::calibrate_fom(*circuit, 120, rng);
  bo::BoConfig cfg;
  cfg.n_init = 12;
  cfg.iterations = 3;
  const auto r = bo::run_fom(*circuit, norm, bo::FomMethod::smac_rf, cfg, 6);
  EXPECT_EQ(r.trace.size(), cfg.n_init + cfg.batch * cfg.iterations);
  EXPECT_TRUE(std::isfinite(r.trace.back()));
}

TEST(Drivers, TransferSourceAndStlRun) {
  auto src_circuit = ckt::make_circuit("opamp2", "180nm");
  auto tgt_circuit = ckt::make_circuit("opamp2", "40nm");
  const auto source =
      bo::build_transfer_source(*src_circuit, 60, bo::KernelKind::rbf, 7);
  EXPECT_EQ(source.x.rows(), 60u);
  EXPECT_EQ(source.y.cols(), src_circuit->n_metrics());

  bo::BoConfig cfg;
  cfg.n_init = 60;
  cfg.iterations = 3;
  cfg.kat.init_iterations = 60;  // keep the test fast
  const auto r = bo::run_constrained(*tgt_circuit, bo::ConstrainedMethod::kato,
                                     cfg, 8, &source);
  EXPECT_EQ(r.trace.size(), cfg.n_init + cfg.batch * cfg.iterations);
  // STL weights were initialized with the sample counts and only grow.
  EXPECT_GE(r.stl_w_kat, 60.0);
  EXPECT_GE(r.stl_w_self, 60.0);
}

TEST(Drivers, TlmboRequiresSource) {
  auto circuit = ckt::make_circuit("opamp2", "40nm");
  kato::util::Rng rng(5);
  const auto norm = ckt::calibrate_fom(*circuit, 120, rng);
  bo::BoConfig cfg;
  EXPECT_THROW(
      (void)bo::run_fom(*circuit, norm, bo::FomMethod::tlmbo, cfg, 1, nullptr),
      std::invalid_argument);
}

// PVT-corner and Monte Carlo mismatch workloads: .corner/.mc parsing and
// validation diagnostics, golden hand-computed worst-over-corners /
// quantile-over-MC aggregation, seeded MC reproducibility, bit-identity of
// the evaluate_batch fan-out across KATO_THREADS, and evaluate_detailed
// naming the failing corner/sample.  The CornerBo suite (slow label) runs
// the corner-annotated opamp2 deck end-to-end through seeded BO on both
// PDK nodes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "circuits/factory.hpp"
#include "core/experiment.hpp"
#include "netlist/netlist_circuit.hpp"
#include "util/rng.hpp"

namespace ckt = kato::ckt;
namespace net = kato::net;
namespace bo = kato::bo;
namespace core = kato::core;

#ifndef KATO_SOURCE_DIR
#define KATO_SOURCE_DIR "."
#endif

namespace {

std::string deck_path(const std::string& name) {
  return std::string(KATO_SOURCE_DIR) + "/circuits/netlists/" + name;
}

ckt::NetlistCircuit load(const std::string& text,
                         const std::string& node = "180nm") {
  return ckt::NetlistCircuit(net::parse_netlist(text, "test.cir"),
                             ckt::pdk_by_name(node));
}

void expect_diag(const std::string& text, int line, const std::string& needle) {
  try {
    load(text);
    FAIL() << "deck accepted; expected diagnostic containing '" << needle << "'";
  } catch (const net::NetlistError& err) {
    EXPECT_EQ(err.line(), line) << err.what();
    EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
        << err.what();
  }
}

/// Resistor divider with three corners: vdd spread plus an rtop override.
/// Linear circuit, so every per-condition metric is a closed-form divider.
const char* kDividerCorners =
    "vs in 0 {vdd}\n"
    ".param rtop = 1k\n"
    ".var rbot 1k 2k lin\n"
    "r1 in out {rtop}\n"
    "r2 out 0 {rbot}\n"
    ".spec objective Vout V = vdc(out)\n"
    ".spec Vcap V <= 10 = vdc(out)\n"
    ".spec Vfloor V >= 0.1 = vdc(out)\n"
    ".corner tt\n"
    ".corner lo vdd_scale=0.9\n"
    ".corner hi vdd_scale=1.1 rtop=2k\n";

}  // namespace

// ---------------------------------------------------------------------------
// Parsing and load-time validation.

TEST(CornerParse, CardsPopulateDeckAndCircuit) {
  const auto c = load(kDividerCorners);
  ASSERT_EQ(c.n_corners(), 3u);
  EXPECT_EQ(c.corner_name(0), "tt");
  EXPECT_EQ(c.corner_name(1), "lo");
  EXPECT_EQ(c.corner_name(2), "hi");
  EXPECT_EQ(c.n_mc_samples(), 1u);
  EXPECT_DOUBLE_EQ(c.mc_quantile(), 1.0);
}

TEST(CornerParse, NoCornerCardsMeansSingleNominal) {
  const auto c = load(
      "vs in 0 {vdd}\n"
      ".var rr 500 2000 lin\n"
      "r1 in out 1k\n"
      "r2 out 0 {rr}\n"
      ".spec objective Vout V = vdc(out)\n");
  EXPECT_EQ(c.n_corners(), 1u);
  EXPECT_EQ(c.corner_name(0), "nominal");
  EXPECT_EQ(c.n_mc_samples(), 1u);
}

TEST(CornerDiag, DuplicateCornerName) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var rr 500 2000 lin\n"
      "r1 in out 1k\n"
      "r2 out 0 {rr}\n"
      ".spec objective Vout V = vdc(out)\n"
      ".corner tt\n"
      ".corner tt temp=348\n",
      7, "duplicate corner 'tt'");
}

TEST(CornerDiag, UnknownOverrideKey) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var rr 500 2000 lin\n"
      "r1 in out 1k\n"
      "r2 out 0 {rr}\n"
      ".spec objective Vout V = vdc(out)\n"
      ".corner ss rbogus=2k\n",
      6, "overrides unknown parameter 'rbogus'");
}

TEST(CornerDiag, BadMcCountAndKeys) {
  const char* head =
      "vs in 0 1.0\n"
      ".var rr 500 2000 lin\n"
      "r1 in out 1k\n"
      "r2 out 0 {rr}\n"
      ".spec objective Vout V = vdc(out)\n";
  expect_diag(std::string(head) + ".mc 0\n", 6,
              "sample count must be an integer in [1, 4096]");
  expect_diag(std::string(head) + ".mc 2.5\n", 6,
              "sample count must be an integer in [1, 4096]");
  expect_diag(std::string(head) + ".mc 8192\n", 6,
              "sample count must be an integer in [1, 4096]");
  expect_diag(std::string(head) + ".mc 4 quantile=0\n", 6,
              "quantile must be in (0, 1]");
  expect_diag(std::string(head) + ".mc 4 vth_sigma=-1m\n", 6,
              "vth_sigma must be >= 0");
  expect_diag(std::string(head) + ".mc 4 sigma=1m\n", 6, "unknown key 'sigma'");
  expect_diag(std::string(head) + ".mc 4\n.mc 4\n", 7, "duplicate .mc");
}

// ---------------------------------------------------------------------------
// Golden aggregation.

TEST(CornerAgg, WorstOverCornersGoldenDivider) {
  const auto c = load(kDividerCorners);
  const double u = 0.25;
  const double rbot = 1000.0 + u * 1000.0;
  // Per-corner closed forms (gmin perturbs at ~1e-9, checked loosely);
  // aggregation itself is checked bit-exactly against evaluate_single.
  const double vdd = 1.8;
  const double tt = vdd * rbot / (1000.0 + rbot);
  const double lo = 0.9 * vdd * rbot / (1000.0 + rbot);
  const double hi = 1.1 * vdd * rbot / (2000.0 + rbot);
  const auto m = c.evaluate({u});
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->size(), 3u);
  // Objective (minimized) and the <= spec take the max across corners; the
  // >= spec takes the min.
  EXPECT_NEAR((*m)[0], std::max({tt, lo, hi}), 1e-6);
  EXPECT_NEAR((*m)[1], std::max({tt, lo, hi}), 1e-6);
  EXPECT_NEAR((*m)[2], std::min({tt, lo, hi}), 1e-6);

  // Bit-exact: hand-aggregate the public per-condition evaluations.
  std::vector<std::vector<double>> per_corner;
  for (std::size_t k = 0; k < c.n_corners(); ++k) {
    const auto one = c.evaluate_single({u}, k, 0);
    ASSERT_TRUE(one.metrics.has_value()) << one.failure;
    per_corner.push_back(*one.metrics);
  }
  for (std::size_t mi = 0; mi < 3; ++mi) {
    double worst_max = per_corner[0][mi];
    double worst_min = per_corner[0][mi];
    for (const auto& pc : per_corner) {
      worst_max = std::max(worst_max, pc[mi]);
      worst_min = std::min(worst_min, pc[mi]);
    }
    const double expect = mi == 2 ? worst_min : worst_max;
    EXPECT_EQ((*m)[mi], expect) << "metric " << mi;
  }
}

TEST(CornerAgg, McQuantileGoldenHandAggregation) {
  // 3 corners x 8 samples on the shipped corner deck; quantile 0.875 with
  // K = 8 picks rank ceil(0.875*8) = 7, i.e. the second-worst sample per
  // corner, then worst across corners.  Hand-aggregate from the public
  // per-condition API and require bit-identity with evaluate().
  const auto c = ckt::NetlistCircuit::from_file(
      deck_path("opamp2_corners.cir"), ckt::pdk_180nm());
  ASSERT_EQ(c->n_corners(), 3u);
  ASSERT_EQ(c->n_mc_samples(), 8u);
  EXPECT_DOUBLE_EQ(c->mc_quantile(), 0.875);
  const auto x = c->expert_design();
  const auto m = c->evaluate(x);
  ASSERT_TRUE(m.has_value());

  const std::size_t n_metrics = m->size();
  const std::size_t kk = c->n_mc_samples();
  std::vector<std::vector<double>> conds;  // [corner*K + sample][metric]
  for (std::size_t corner = 0; corner < c->n_corners(); ++corner)
    for (std::size_t s = 0; s < kk; ++s) {
      const auto one = c->evaluate_single(x, corner, s);
      ASSERT_TRUE(one.metrics.has_value()) << one.failure;
      conds.push_back(*one.metrics);
    }

  // Metric directions: objective + Gain/PM/GBW are all >= specs except the
  // objective itself.
  const std::size_t rank = 7;  // ceil(0.875 * 8)
  for (std::size_t mi = 0; mi < n_metrics; ++mi) {
    const bool smaller_better = mi == 0;
    double worst = 0.0;
    for (std::size_t corner = 0; corner < c->n_corners(); ++corner) {
      std::vector<double> samples(kk);
      for (std::size_t s = 0; s < kk; ++s)
        samples[s] = conds[corner * kk + s][mi];
      std::sort(samples.begin(), samples.end());
      const double q = smaller_better ? samples[rank - 1] : samples[kk - rank];
      if (corner == 0)
        worst = q;
      else
        worst = smaller_better ? std::max(worst, q) : std::min(worst, q);
    }
    EXPECT_EQ((*m)[mi], worst) << "metric " << mi;
  }

  // Mismatch draws actually spread the samples: some pair of MC samples in
  // corner 0 must differ in the objective.
  bool spread = false;
  for (std::size_t s = 1; s < kk; ++s)
    spread = spread || conds[s][0] != conds[0][0];
  EXPECT_TRUE(spread);
}

TEST(CornerAgg, BufferTranCornerDeckEvaluatesOnBothNodes) {
  // Transient-measure robust deck: 3 corners x 4 mismatch samples of the
  // step buffer, default quantile (worst sample).
  for (const char* node : {"180nm", "40nm"}) {
    const auto c = ckt::NetlistCircuit::from_file(
        deck_path("buffer_tran_corners.cir"), ckt::pdk_by_name(node));
    ASSERT_EQ(c->n_corners(), 3u) << node;
    ASSERT_EQ(c->n_mc_samples(), 4u) << node;
    EXPECT_DOUBLE_EQ(c->mc_quantile(), 1.0) << node;
    const auto m = c->evaluate(c->expert_design());
    ASSERT_TRUE(m.has_value()) << node << ": "
        << c->evaluate_detailed(c->expert_design()).failure;
    EXPECT_GT((*m)[0], 0.0) << node;  // worst-case power is positive
  }
}

TEST(CornerAgg, SeededMcReproducibleAcrossRerunsAndInstances) {
  const auto c1 = ckt::NetlistCircuit::from_file(
      deck_path("opamp2_corners.cir"), ckt::pdk_180nm());
  const auto c2 = ckt::NetlistCircuit::from_file(
      deck_path("opamp2_corners.cir"), ckt::pdk_180nm());
  const auto x = c1->expert_design();
  const auto a = c1->evaluate(x);
  const auto b = c1->evaluate(x);   // rerun, same instance
  const auto c = c2->evaluate(x);   // fresh instance
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]) << "metric " << i;
    EXPECT_EQ((*a)[i], (*c)[i]) << "metric " << i;
  }
}

TEST(CornerAgg, BatchBitIdenticalAcrossThreadCounts) {
  const auto c = ckt::NetlistCircuit::from_file(
      deck_path("opamp2_corners.cir"), ckt::pdk_180nm());
  std::vector<std::vector<double>> xs;
  kato::util::Rng rng(17);
  for (int i = 0; i < 5; ++i) {
    std::vector<double> x(c->dim());
    for (auto& v : x) v = rng.uniform();
    xs.push_back(std::move(x));
  }
  const char* prev = std::getenv("KATO_THREADS");
  const std::string saved = prev ? prev : "";
  setenv("KATO_THREADS", "1", 1);
  const auto serial = c->evaluate_batch(xs);
  setenv("KATO_THREADS", "4", 1);
  const auto parallel = c->evaluate_batch(xs);
  if (prev)
    setenv("KATO_THREADS", saved.c_str(), 1);
  else
    unsetenv("KATO_THREADS");

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].has_value(), parallel[i].has_value()) << "slot " << i;
    if (!serial[i]) continue;
    for (std::size_t mi = 0; mi < serial[i]->size(); ++mi)
      EXPECT_EQ((*serial[i])[mi], (*parallel[i])[mi])
          << "slot " << i << " metric " << mi;
    // The batch path must also match the serial evaluate() aggregation.
    const auto direct = c->evaluate(xs[i]);
    ASSERT_TRUE(direct.has_value());
    for (std::size_t mi = 0; mi < serial[i]->size(); ++mi)
      EXPECT_EQ((*serial[i])[mi], (*direct)[mi]) << "slot " << i;
  }
}

TEST(CornerAgg, DetailedNamesFailingCornerAndSample) {
  // The 'dead' corner flips the supply negative, so isupply()'s delivery
  // guard rejects every candidate in that corner; the failure string must
  // name it.  MC is on, so the sample index is reported too.
  const auto c = load(
      ".param vsrc = vdd\n"
      "vs in 0 {vsrc}\n"
      ".var rr 500 2000 lin\n"
      "r1 in out 1k\n"
      "r2 out 0 {rr}\n"
      ".spec objective Isup uA = isupply(vs)*1e6\n"
      ".corner tt\n"
      ".corner dead vsrc=-1\n"
      ".mc 2 vth_sigma=0 beta_sigma=0\n");
  const auto out = c.evaluate_detailed({0.5});
  ASSERT_FALSE(out.metrics.has_value());
  EXPECT_NE(out.failure.find("corner 'dead'"), std::string::npos) << out.failure;
  EXPECT_NE(out.failure.find("mc sample 0"), std::string::npos) << out.failure;
  EXPECT_NE(out.failure.find("isupply"), std::string::npos) << out.failure;
}

TEST(CornerAgg, PlainDeckFailureStringIsUnprefixed) {
  // Without .corner/.mc cards the failure string keeps the pre-corner
  // format — no "corner ..." prefix.
  const auto c = load(
      "vs in 0 -1.0\n"
      ".var rr 500 2000 lin\n"
      "r1 in out 1k\n"
      "r2 out 0 {rr}\n"
      ".spec objective Isup uA = isupply(vs)*1e6\n");
  const auto out = c.evaluate_detailed({0.5});
  ASSERT_FALSE(out.metrics.has_value());
  EXPECT_EQ(out.failure.find("corner"), std::string::npos) << out.failure;
  EXPECT_NE(out.failure.find("isupply"), std::string::npos) << out.failure;
}

// ---------------------------------------------------------------------------
// End-to-end seeded BO on the corner deck (slow label).

TEST(CornerBo, EndToEndBothNodesReproducible) {
  for (const char* node : {"180nm", "40nm"}) {
    const auto c = ckt::make_circuit(
        "netlist:" + deck_path("opamp2_corners.cir"), node);
    bo::BoConfig cfg;
    cfg.n_init = 10;
    cfg.iterations = 2;
    cfg.batch = 2;
    cfg.nsga.population = 12;
    cfg.nsga.generations = 6;
    cfg.max_gp_points = 64;
    cfg.hyper_every = 2;
    cfg.gp_initial.iterations = 12;
    cfg.gp_refit.iterations = 5;
    const char* prev = std::getenv("KATO_THREADS");
    const std::string saved = prev ? prev : "";
    setenv("KATO_THREADS", "1", 1);
    const auto r1 = bo::run_constrained(*c, bo::ConstrainedMethod::kato, cfg, 5);
    setenv("KATO_THREADS", "4", 1);
    const auto r2 = bo::run_constrained(*c, bo::ConstrainedMethod::kato, cfg, 5);
    if (prev)
      setenv("KATO_THREADS", saved.c_str(), 1);
    else
      unsetenv("KATO_THREADS");
    ASSERT_EQ(r1.trace.size(), r2.trace.size()) << node;
    EXPECT_EQ(r1.trace.size(), cfg.n_init + cfg.batch * cfg.iterations);
    for (std::size_t i = 0; i < r1.trace.size(); ++i)
      EXPECT_DOUBLE_EQ(r1.trace[i], r2.trace[i]) << node << " sim " << i;
    ASSERT_EQ(r1.x_history.size(), r2.x_history.size()) << node;
    for (std::size_t i = 0; i < r1.x_history.size(); ++i)
      EXPECT_EQ(r1.x_history[i], r2.x_history[i]) << node << " sim " << i;
  }
}

TEST(CornerBo, CornerRobustTransferAcrossNodes) {
  // The fig6(h) scenario in miniature: source knowledge on the 180nm corner
  // deck feeds a KAT/STL run on the 40nm corner deck.
  const auto src = ckt::make_circuit(
      "netlist:" + deck_path("opamp2_corners.cir"), "180nm");
  const auto tgt = ckt::make_circuit(
      "netlist:" + deck_path("opamp2_corners.cir"), "40nm");
  bo::BoConfig cfg;
  cfg.n_init = 8;
  cfg.iterations = 2;
  cfg.batch = 2;
  cfg.nsga.population = 12;
  cfg.nsga.generations = 6;
  cfg.max_gp_points = 64;
  cfg.hyper_every = 2;
  cfg.gp_initial.iterations = 12;
  cfg.gp_refit.iterations = 5;
  cfg.kat.init_iterations = 40;
  cfg.kat.refit_iterations = 8;
  const auto cmp = core::run_transfer_comparison(*src, *tgt, 30, cfg, {1},
                                                 bo::KernelKind::rbf, 7);
  EXPECT_GT(cmp.source.x.rows(), 0u);
  ASSERT_EQ(cmp.with_transfer.runs.size(), 1u);
  const std::size_t expect_sims = cfg.n_init + cfg.batch * cfg.iterations;
  EXPECT_EQ(cmp.with_transfer.runs[0].trace.size(), expect_sims);
  EXPECT_EQ(cmp.without_transfer.runs[0].trace.size(), expect_sims);
}

// Observability subsystem: KATO_STATS/KATO_TRACE env parsing discipline,
// counter goldens hand-countable on small circuits, trace-file schema,
// concurrent flush integrity under KATO_THREADS, the stats registry, and
// (ObsBo suite — labelled slow in CTest) bit-identity of a seeded BO run
// with tracing on vs off.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bo/drivers.hpp"
#include "netlist/netlist_circuit.hpp"
#include "obs/journal.hpp"
#include "obs/obs.hpp"
#include "sim/dc.hpp"
#include "sim/transient.hpp"

namespace obs = kato::obs;
namespace sim = kato::sim;
namespace ckt = kato::ckt;
namespace bo = kato::bo;

#ifndef KATO_SOURCE_DIR
#define KATO_SOURCE_DIR "."
#endif

namespace {

std::string deck_path(const std::string& name) {
  return std::string(KATO_SOURCE_DIR) + "/circuits/netlists/" + name;
}

std::string trace_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

sim::MosModel nmos_model() {
  sim::MosModel m;
  m.nmos = true;
  m.vth0 = 0.5;
  m.kp = 200e-6;
  m.lambda_coef = 0.05e-6;
  return m;
}

/// 3V through 1k over 2k: linear, so Newton takes exactly one correcting
/// iteration plus one convergence check.
sim::Circuit divider() {
  sim::Circuit c;
  const int vin = c.new_node("vin");
  const int mid = c.new_node("mid");
  c.add_vsource(vin, sim::Circuit::ground, 3.0);
  c.add_resistor(vin, mid, 1e3);
  c.add_resistor(mid, sim::Circuit::ground, 2e3);
  return c;
}

// --- Env parsing -----------------------------------------------------------

TEST(ObsEnv, ParseSinkPathFullStringDiscipline) {
  EXPECT_FALSE(obs::parse_sink_path(nullptr).has_value());
  EXPECT_FALSE(obs::parse_sink_path("").has_value());
  EXPECT_FALSE(obs::parse_sink_path(" /tmp/t.json").has_value());
  EXPECT_FALSE(obs::parse_sink_path("/tmp/t.json ").has_value());
  EXPECT_FALSE(obs::parse_sink_path("\t/tmp/t.json").has_value());
  EXPECT_FALSE(obs::parse_sink_path("/tmp/t.json\n").has_value());
  EXPECT_FALSE(obs::parse_sink_path(" ").has_value());
  ASSERT_TRUE(obs::parse_sink_path("-").has_value());
  EXPECT_EQ(*obs::parse_sink_path("-"), "-");
  ASSERT_TRUE(obs::parse_sink_path("/tmp/t.json").has_value());
  EXPECT_EQ(*obs::parse_sink_path("/tmp/t.json"), "/tmp/t.json");
  // Interior spaces are legal path characters; only the edges are policed.
  ASSERT_TRUE(obs::parse_sink_path("out dir/t.json").has_value());
  EXPECT_EQ(*obs::parse_sink_path("out dir/t.json"), "out dir/t.json");
}

TEST(ObsEnv, SinkFromEnvMirrorsSeedListDiscipline) {
  unsetenv("KATO_STATS");
  EXPECT_FALSE(obs::sink_from_env("KATO_STATS").has_value());
  setenv("KATO_STATS", "", 1);
  EXPECT_FALSE(obs::sink_from_env("KATO_STATS").has_value());
  setenv("KATO_STATS", " stats.json", 1);
  EXPECT_FALSE(obs::sink_from_env("KATO_STATS").has_value());
  setenv("KATO_STATS", "stats.json ", 1);
  EXPECT_FALSE(obs::sink_from_env("KATO_STATS").has_value());
  setenv("KATO_STATS", "-", 1);
  ASSERT_TRUE(obs::sink_from_env("KATO_STATS").has_value());
  EXPECT_EQ(*obs::sink_from_env("KATO_STATS"), "-");
  setenv("KATO_STATS", "stats.json", 1);
  ASSERT_TRUE(obs::sink_from_env("KATO_STATS").has_value());
  EXPECT_EQ(*obs::sink_from_env("KATO_STATS"), "stats.json");
  unsetenv("KATO_STATS");
}

// --- Counter goldens -------------------------------------------------------

TEST(ObsCounters, DividerNewtonGoldenDense) {
  sim::DcOptions opts;
  opts.gmin_ladder = {1e-12};
  opts.max_step = 10.0;  // no damping on a 3 V linear solve
  const auto res = sim::solve_dc(divider(), opts);
  ASSERT_TRUE(res.converged);
  // Linear circuit: iteration 1 lands the exact solution, iteration 2
  // observes |dV| < tol.  Each dense iteration runs one full LU; the first
  // counts as the first factor, the second as a refactor.
  EXPECT_EQ(res.stats.newton_solves, 1u);
  EXPECT_EQ(res.stats.newton_iters, 2u);
  EXPECT_EQ(res.stats.damping_clamps, 0u);
  EXPECT_EQ(res.stats.lu_first_factors, 1u);
  EXPECT_EQ(res.stats.lu_refactors, 1u);
  EXPECT_EQ(res.stats.lu_pivot_fallbacks, 0u);
  EXPECT_EQ(res.stats.gmin_rungs, 1u);
  EXPECT_EQ(res.stats.dc_restarts, 0u);
  ASSERT_EQ(res.rung_stats.size(), 1u);
  EXPECT_EQ(res.rung_stats[0].newton_iters, 2u);
  EXPECT_EQ(res.rung_stats[0].damping_clamps, 0u);
  EXPECT_TRUE(res.rung_stats[0].converged);
}

TEST(ObsCounters, SparseLadderFirstFactorVsRefactorSplit) {
  sim::DcOptions opts;
  opts.solver = sim::MnaSolver::sparse;
  opts.gmin_ladder = {1e-4, 1e-8, 1e-12};
  opts.max_step = 10.0;
  const auto res = sim::solve_dc(divider(), opts);
  ASSERT_TRUE(res.converged);
  // Symbolic reuse across the whole ladder: exactly one first factor, every
  // later Newton iteration is an in-place numeric refactorization and none
  // of them needs a pivot fallback on this well-conditioned system.
  EXPECT_EQ(res.stats.newton_solves, 3u);
  EXPECT_EQ(res.stats.lu_first_factors, 1u);
  EXPECT_EQ(res.stats.lu_refactors, res.stats.newton_iters - 1);
  EXPECT_EQ(res.stats.lu_pivot_fallbacks, 0u);
  EXPECT_EQ(res.stats.gmin_rungs, 3u);
  ASSERT_EQ(res.rung_stats.size(), 3u);
  for (const auto& r : res.rung_stats) EXPECT_TRUE(r.converged);
}

TEST(ObsCounters, TranAcceptCountsMatchTimeAxis) {
  // RC relaxation: 1 V source charges mid through 1k into 1 uF, with the
  // node forced to 0 at t = 0 — the LTE controller takes real steps.
  sim::Circuit c;
  const int vin = c.new_node("vin");
  const int mid = c.new_node("mid");
  c.add_vsource(vin, sim::Circuit::ground, 1.0);
  c.add_resistor(vin, mid, 1e3);
  c.add_capacitor(mid, sim::Circuit::ground, 1e-6);
  sim::TranOptions opts;
  opts.tstop = 5e-3;
  opts.tstep = 1e-5;
  opts.initial_conditions = {{mid, 0.0}};
  const auto res = sim::solve_tran(c, opts);
  ASSERT_TRUE(res.ok) << res.reason;
  // One recorded time point per accepted step, plus the t = 0 sample.
  EXPECT_EQ(res.stats.tran_steps_accepted + 1, res.time.size());
  EXPECT_GE(res.stats.tran_be_steps, 1u);  // the startup step is BE
  EXPECT_EQ(res.stats.tran_newton_rejects, 0u);
  // Every accepted or LTE-rejected step ran one Newton solve; the internal
  // t = 0 operating point contributes the rest.
  EXPECT_GE(res.stats.newton_solves,
            res.stats.tran_steps_accepted + res.stats.tran_steps_rejected);
  EXPECT_GT(res.stats.newton_iters, res.stats.newton_solves);
}

TEST(ObsCounters, DcFailureReasonNamesRungAndIterationBudget) {
  // Diode-connected NMOS pulled up through 10k: genuinely nonlinear, so one
  // allowed iteration on a one-rung ladder cannot converge.
  sim::Circuit c;
  const int vdd = c.new_node("vdd");
  const int d = c.new_node("d");
  c.add_vsource(vdd, sim::Circuit::ground, 1.8);
  c.add_resistor(vdd, d, 10e3);
  c.add_mosfet(d, d, sim::Circuit::ground, 10e-6, 1e-6, nmos_model());
  sim::DcOptions opts;
  opts.gmin_ladder = {1e-12};
  opts.max_iterations = 1;
  const auto res = sim::solve_dc(c, opts);
  ASSERT_FALSE(res.converged);
  EXPECT_NE(res.reason.find("gmin rung 1/1"), std::string::npos) << res.reason;
  EXPECT_NE(res.reason.find("newton 1/1"), std::string::npos) << res.reason;
  EXPECT_NE(res.reason.find("at gmin="), std::string::npos) << res.reason;
}

// --- Stats registry --------------------------------------------------------

TEST(ObsStats, RegistryAggregatesNetlistEvaluation) {
  const auto deck =
      ckt::NetlistCircuit::from_file(deck_path("buffer_tran.cir"), ckt::pdk_180nm());
  const std::vector<double> mid(deck->space().dim(), 0.5);
  obs::stats_reset();
  const auto outcome = deck->evaluate_detailed(mid);
  ASSERT_TRUE(outcome.metrics.has_value()) << outcome.failure;
  // The per-outcome stats and the process registry must agree: the registry
  // is fed exactly once per simulated condition, from evaluate_single.
  EXPECT_GT(outcome.stats.newton_iters, 0u);
  EXPECT_GT(outcome.stats.tran_steps_accepted, 0u);
  EXPECT_EQ(obs::stats_value("newton_iters"), outcome.stats.newton_iters);
  EXPECT_EQ(obs::stats_value("tran_steps_accepted"),
            outcome.stats.tran_steps_accepted);
  EXPECT_EQ(obs::stats_value("lu_first_factors"),
            outcome.stats.lu_first_factors);
  EXPECT_EQ(obs::stats_value("evals"), 1u);
  EXPECT_EQ(obs::stats_value("eval_failures"), 0u);

  std::ostringstream json;
  obs::stats_write_json(json);
  const std::string s = json.str();
  EXPECT_NE(s.find("\"newton_iters\": "), std::string::npos);
  EXPECT_NE(s.find("\"gp_fits\": "), std::string::npos);
  EXPECT_EQ(s.front(), '{');
  obs::stats_reset();
  EXPECT_EQ(obs::stats_value("newton_iters"), 0u);
}

// --- Trace schema and concurrent flush -------------------------------------

// The span-count assertions below require KATO_OBS_SPAN to emit; under
// KATO_OBS_DISABLE the macro compiles to nothing, so the tests would count
// zero events by design rather than by defect.
#ifndef KATO_OBS_DISABLE

/// Structural check of one emitted event line (the writer emits one JSON
/// object per line; Perfetto-required keys must all be present).
void expect_event_line(const std::string& line) {
  EXPECT_EQ(line.rfind("{\"name\":\"", 0), 0u) << line;
  EXPECT_NE(line.find("\"ph\":\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"pid\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"tid\":"), std::string::npos) << line;
}

std::uint32_t event_tid(const std::string& line) {
  const auto pos = line.find("\"tid\":");
  return static_cast<std::uint32_t>(
      std::strtoul(line.c_str() + pos + 6, nullptr, 10));
}

TEST(ObsTrace, SchemaValidAndThreadBuffersSurviveConcurrentFlush) {
  const auto deck =
      ckt::NetlistCircuit::from_file(deck_path("opamp2.cir"), ckt::pdk_180nm());
  const std::vector<std::vector<double>> xs(
      32, std::vector<double>(deck->space().dim(), 0.5));
  const auto serial = deck->evaluate_batch(xs);

  const std::string path = trace_path("obs_trace_schema.json");
  setenv("KATO_THREADS", "4", 1);
  // Warm the pool untraced so the workers are spawned and parked — a parked
  // worker wakes in microseconds and reliably claims chunks of the traced
  // batch, whereas thread spawn can lose the race against fast evals.
  (void)deck->evaluate_batch(xs);
  obs::set_trace_buffer_capacity_for_test(4);  // force mid-run flushes
  obs::trace_begin(path);
  const auto traced = deck->evaluate_batch(xs);
  const std::size_t n_events = obs::trace_end();
  obs::set_trace_buffer_capacity_for_test(1 << 16);
  unsetenv("KATO_THREADS");

  EXPECT_GT(n_events, 0u);
  ASSERT_EQ(traced.size(), serial.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_TRUE(traced[i].has_value());
    EXPECT_EQ(*traced[i], *serial[i]) << "candidate " << i;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"traceEvents\":[");
  std::size_t events_seen = 0;
  std::set<std::uint32_t> tids;
  bool saw_footer = false;
  while (std::getline(in, line)) {
    if (line.rfind("]", 0) == 0) {
      EXPECT_NE(line.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
      saw_footer = true;
      break;
    }
    if (line.size() >= 2 && line.compare(line.size() - 2, 2, ",\n") == 0)
      line.resize(line.size() - 2);
    if (!line.empty() && line.back() == ',') line.pop_back();
    expect_event_line(line);
    tids.insert(event_tid(line));
    ++events_seen;
  }
  EXPECT_TRUE(saw_footer);
  // thread_name metadata rows plus every collected event.
  EXPECT_GE(events_seen, n_events);
  // The fan-out ran on >= 2 threads and each one's buffer made it to disk.
  EXPECT_GE(tids.size(), 2u);
}

TEST(ObsTrace, PauseResumeAndEndWithoutSession) {
  EXPECT_EQ(obs::trace_end(), 0u);  // no session: clean no-op
  EXPECT_FALSE(obs::trace_enabled());
  obs::trace_resume();  // resume outside a session must not enable capture
  EXPECT_FALSE(obs::trace_enabled());

  const std::string path = trace_path("obs_trace_pause.json");
  obs::trace_begin(path);
  EXPECT_TRUE(obs::trace_enabled());
  { KATO_OBS_SPAN("kept"); }
  obs::trace_pause();
  EXPECT_FALSE(obs::trace_enabled());
  { KATO_OBS_SPAN("suppressed"); }
  obs::trace_resume();
  EXPECT_TRUE(obs::trace_enabled());
  const std::size_t n = obs::trace_end();
  EXPECT_EQ(n, 1u);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"name\":\"kept\""), std::string::npos);
  EXPECT_EQ(ss.str().find("suppressed"), std::string::npos);
}

#endif  // KATO_OBS_DISABLE

// --- Latency histograms ----------------------------------------------------

TEST(ObsHist, BucketIndexHandGoldens) {
  // Bucket = octave * 12 + sub, sub from the 2^(s/12) ladder.  All of these
  // are hand-derivable: 3 ns sits in octave 1 at ratio 1.5, between
  // 2^(7/12) ~ 1.4983 and 2^(8/12) ~ 1.5874, so sub = 7.
  EXPECT_EQ(obs::hist_bucket_index(0), 0);
  EXPECT_EQ(obs::hist_bucket_index(1), 0);
  EXPECT_EQ(obs::hist_bucket_index(2), 12);
  EXPECT_EQ(obs::hist_bucket_index(3), 19);
  EXPECT_EQ(obs::hist_bucket_index(4), 24);
  // 1000/512 ~ 1.953 is above 2^(11/12) ~ 1.8877: last sub of octave 9.
  EXPECT_EQ(obs::hist_bucket_index(1000), 9 * 12 + 11);
  EXPECT_EQ(obs::hist_bucket_index(1024), 10 * 12);
  EXPECT_EQ(obs::hist_bucket_index(std::uint64_t{1} << 40), 40 * 12);

  // Exact powers of two open their octave.
  EXPECT_EQ(obs::hist_bucket_lower_ns(0), 1u);
  EXPECT_EQ(obs::hist_bucket_lower_ns(12), 2u);
  EXPECT_EQ(obs::hist_bucket_lower_ns(24), 4u);
  EXPECT_EQ(obs::hist_bucket_lower_ns(40 * 12), std::uint64_t{1} << 40);

  // Bracketing invariant, lower(b) <= v < lower(b+1), holds once the
  // integer floor of the bound is finer than the ~6% bucket width (tiny
  // octaves truncate their bounds onto each other).
  for (std::uint64_t v : {std::uint64_t{1000}, std::uint64_t{123456},
                          std::uint64_t{987654321},
                          (std::uint64_t{1} << 40) + 12345}) {
    const int b = obs::hist_bucket_index(v);
    EXPECT_LE(obs::hist_bucket_lower_ns(b), v) << v;
    EXPECT_LT(v, obs::hist_bucket_lower_ns(b + 1)) << v;
  }
  // Bounds stay strictly increasing through the top octave (no clamp
  // collision below 2^64 ns).
  EXPECT_LT(obs::hist_bucket_lower_ns(obs::k_hist_buckets - 2),
            obs::hist_bucket_lower_ns(obs::k_hist_buckets - 1));
}

TEST(ObsHist, QuantileHandGoldens) {
  obs::HistSnapshot empty;
  EXPECT_EQ(empty.quantile_ns(0.5), 0u);

  // 10 durations near 100 ns, 89 near 1 us, 1 near 10 us: rank walks are
  // hand-checkable.  rank(p50) = 50 and rank(p99) = 99 both land in the
  // middle bucket (cumulative 10 -> 99 -> 100); only q = 1.0 reaches the
  // outlier bucket and q = 0 clamps to rank 1.
  const int b_lo = obs::hist_bucket_index(100);
  const int b_mid = obs::hist_bucket_index(1000);
  const int b_hi = obs::hist_bucket_index(10000);
  obs::HistSnapshot h;
  h.buckets[static_cast<std::size_t>(b_lo)] = 10;
  h.buckets[static_cast<std::size_t>(b_mid)] = 89;
  h.buckets[static_cast<std::size_t>(b_hi)] = 1;
  h.count = 100;
  EXPECT_EQ(h.quantile_ns(0.0), obs::hist_bucket_lower_ns(b_lo));
  EXPECT_EQ(h.quantile_ns(0.10), obs::hist_bucket_lower_ns(b_lo));
  EXPECT_EQ(h.quantile_ns(0.50), obs::hist_bucket_lower_ns(b_mid));
  EXPECT_EQ(h.quantile_ns(0.90), obs::hist_bucket_lower_ns(b_mid));
  EXPECT_EQ(h.quantile_ns(0.99), obs::hist_bucket_lower_ns(b_mid));
  EXPECT_EQ(h.quantile_ns(1.0), obs::hist_bucket_lower_ns(b_hi));
}

TEST(ObsHist, RecordSnapshotStatsDumpAndReset) {
  obs::stats_reset();
  obs::hist_record(obs::Stage::dc, 100);
  obs::hist_record(obs::Stage::dc, 100);
  obs::hist_record(obs::Stage::dc, 5000);
  const auto h = obs::hist_snapshot(obs::Stage::dc);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum_ns, 5200u);
  EXPECT_EQ(h.buckets[static_cast<std::size_t>(obs::hist_bucket_index(100))],
            2u);
  EXPECT_EQ(h.buckets[static_cast<std::size_t>(obs::hist_bucket_index(5000))],
            1u);
  // Untouched stages stay empty.
  EXPECT_EQ(obs::hist_snapshot(obs::Stage::gp_fit).count, 0u);

  std::ostringstream json;
  obs::stats_write_json(json);
  const std::string s = json.str();
  EXPECT_NE(s.find("\"hist_dc_count\": 3"), std::string::npos) << s;
  EXPECT_NE(s.find("\"hist_dc_sum_ns\": 5200"), std::string::npos) << s;
  EXPECT_NE(s.find("\"hist_dc_p50_ns\": "), std::string::npos);
  EXPECT_NE(s.find("\"hist_dc_p90_ns\": "), std::string::npos);
  EXPECT_NE(s.find("\"hist_tran_p99_ns\": "), std::string::npos);
  EXPECT_NE(s.find("\"hist_gp_fit_p99_ns\": "), std::string::npos);
  EXPECT_NE(s.find("\"fail_dc\": "), std::string::npos);

  obs::stats_reset();
  EXPECT_EQ(obs::hist_snapshot(obs::Stage::dc).count, 0u);
}

TEST(ObsHist, ShardMergeBitIdenticalAcrossThreadCounts) {
  // The same multiset of durations recorded by one thread and by four must
  // merge to the same snapshot: shards hold plain integer adds, and
  // addition commutes.  This is the property that makes histogram output
  // independent of KATO_THREADS for a given set of simulated work.
  std::vector<std::uint64_t> durations(2048);
  for (std::size_t i = 0; i < durations.size(); ++i)
    durations[i] = (i * 37) % 100000 + 1;

  obs::stats_reset();
  for (const std::uint64_t v : durations)
    obs::hist_record(obs::Stage::tran, v);
  const auto serial = obs::hist_snapshot(obs::Stage::tran);

  obs::stats_reset();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&durations, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < durations.size();
           i += 4)
        obs::hist_record(obs::Stage::tran, durations[i]);
    });
  }
  for (auto& w : workers) w.join();  // exits retire shards into the totals
  const auto sharded = obs::hist_snapshot(obs::Stage::tran);

  EXPECT_EQ(serial.count, sharded.count);
  EXPECT_EQ(serial.sum_ns, sharded.sum_ns);
  EXPECT_EQ(serial.buckets, sharded.buckets);
  obs::stats_reset();
}

TEST(ObsHist, ExposeMetricsIsPrometheusText) {
  obs::stats_reset();
  obs::bo_count(obs::BoCounter::evals, 3);
  obs::bo_count(obs::BoCounter::fail_dc, 1);
  obs::hist_record(obs::Stage::dc, 1500);
  obs::hist_record(obs::Stage::dc, 1500);
  obs::hist_record(obs::Stage::dc, 40000);

  std::ostringstream os;
  obs::expose_metrics(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("# TYPE kato_evals_total counter\nkato_evals_total 3\n"),
            std::string::npos);
  EXPECT_NE(s.find("kato_fail_dc_total 1\n"), std::string::npos);
  EXPECT_NE(s.find("# TYPE kato_newton_iters_total counter"),
            std::string::npos);
  EXPECT_NE(s.find("# TYPE kato_stage_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(s.find("kato_stage_latency_seconds_bucket{stage=\"dc\",le=\""),
            std::string::npos);
  EXPECT_NE(s.find("kato_stage_latency_seconds_bucket{stage=\"dc\","
                   "le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(s.find("kato_stage_latency_seconds_count{stage=\"dc\"} 3\n"),
            std::string::npos);
  EXPECT_NE(s.find("kato_stage_latency_seconds_sum{stage=\"dc\"} "),
            std::string::npos);
  // Empty stages still expose their +Inf/_sum/_count triple.
  EXPECT_NE(s.find("kato_stage_latency_seconds_count{stage=\"gp_fit\"} 0\n"),
            std::string::npos);

  // Structural pass: every line is a comment or `name[{labels}] value` with
  // a parseable number — what a Prometheus scraper requires.
  std::istringstream lines(s);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE kato_", 0), 0u) << line;
      continue;
    }
    EXPECT_EQ(line.rfind("kato_", 0), 0u) << line;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << line;
    const auto brace = line.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(line[space - 1], '}') << line;
    }
  }
  obs::stats_reset();
}

// --- Run journal (writer and helpers) --------------------------------------

TEST(ObsJournal, JsonHelpersGoldens) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("x\n\t\r"), "x\\n\\t\\r");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");

  EXPECT_EQ(obs::json_num(2.0), "2");
  EXPECT_EQ(obs::json_num(1.5), "1.5");
  EXPECT_EQ(obs::json_num(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_num(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_num(std::nan("")), "null");
  EXPECT_EQ(obs::json_array({1.0, 0.5,
                             std::numeric_limits<double>::infinity()}),
            "[1,0.5,null]");
  EXPECT_EQ(obs::json_array({}), "[]");

  obs::JsonObj o;
  o.str("event", "x").uint("n", 2).boolean("ok", true).num("v", 0.25);
  o.raw("a", "[1,2]");
  EXPECT_EQ(o.take(),
            "{\"event\":\"x\",\"n\":2,\"ok\":true,\"v\":0.25,\"a\":[1,2]}");
}

TEST(ObsJournal, WriterLifecycleTruncationAndBadPath) {
  EXPECT_FALSE(obs::journal_enabled());
  EXPECT_EQ(obs::journal_end(), 0u);  // no session: clean no-op

  const std::string path = trace_path("obs_journal_lifecycle.jsonl");
  obs::journal_begin(path);
  EXPECT_TRUE(obs::journal_enabled());
  obs::journal_write("{\"event\":\"a\"}");
  obs::journal_write("{\"event\":\"b\"}");
  EXPECT_EQ(obs::journal_end(), 2u);
  EXPECT_FALSE(obs::journal_enabled());
  {
    std::ifstream in(path);
    std::string l1, l2, extra;
    ASSERT_TRUE(std::getline(in, l1));
    ASSERT_TRUE(std::getline(in, l2));
    EXPECT_EQ(l1, "{\"event\":\"a\"}");
    EXPECT_EQ(l2, "{\"event\":\"b\"}");
    EXPECT_FALSE(std::getline(in, extra));
  }

  // A new session truncates the previous file.
  obs::journal_begin(path);
  obs::journal_write("{\"event\":\"c\"}");
  EXPECT_EQ(obs::journal_end(), 1u);
  {
    std::ifstream in(path);
    std::string l1, extra;
    ASSERT_TRUE(std::getline(in, l1));
    EXPECT_EQ(l1, "{\"event\":\"c\"}");
    EXPECT_FALSE(std::getline(in, extra));
  }

  // Unwritable path: warn-and-disable, never half-enable.
  obs::journal_begin("/nonexistent_kato_dir/journal.jsonl");
  EXPECT_FALSE(obs::journal_enabled());
  EXPECT_EQ(obs::journal_end(), 0u);

  // Disabled writes are dropped, not queued.
  obs::journal_write("{\"event\":\"dropped\"}");
  obs::journal_begin(path);
  EXPECT_EQ(obs::journal_end(), 0u);
}

TEST(ObsJournal, RunIdsAreProcessUnique) {
  const auto a = obs::journal_next_run_id();
  const auto b = obs::journal_next_run_id();
  EXPECT_LT(a, b);
}

TEST(ObsJournal, RunLogEnvFollowsSinkDiscipline) {
  // KATO_RUN_LOG goes through the same sink_from_env gate as
  // KATO_STATS/KATO_TRACE: full-string parse, whitespace edges rejected.
  unsetenv("KATO_RUN_LOG");
  EXPECT_FALSE(obs::sink_from_env("KATO_RUN_LOG").has_value());
  setenv("KATO_RUN_LOG", "", 1);
  EXPECT_FALSE(obs::sink_from_env("KATO_RUN_LOG").has_value());
  setenv("KATO_RUN_LOG", " run.jsonl", 1);
  EXPECT_FALSE(obs::sink_from_env("KATO_RUN_LOG").has_value());
  setenv("KATO_RUN_LOG", "run.jsonl\t", 1);
  EXPECT_FALSE(obs::sink_from_env("KATO_RUN_LOG").has_value());
  setenv("KATO_RUN_LOG", "-", 1);
  ASSERT_TRUE(obs::sink_from_env("KATO_RUN_LOG").has_value());
  EXPECT_EQ(*obs::sink_from_env("KATO_RUN_LOG"), "-");
  setenv("KATO_RUN_LOG", "run.jsonl", 1);
  ASSERT_TRUE(obs::sink_from_env("KATO_RUN_LOG").has_value());
  EXPECT_EQ(*obs::sink_from_env("KATO_RUN_LOG"), "run.jsonl");
  unsetenv("KATO_RUN_LOG");
}

// --- Off-path bit-identity (slow) ------------------------------------------

TEST(ObsBo, SeededRunBitIdenticalWithTracingOn) {
  const auto deck =
      ckt::NetlistCircuit::from_file(deck_path("opamp2.cir"), ckt::pdk_180nm());
  bo::BoConfig cfg;
  cfg.n_init = 14;
  cfg.iterations = 5;
  cfg.batch = 2;
  cfg.nsga.population = 12;
  cfg.nsga.generations = 6;
  cfg.max_gp_points = 96;
  cfg.hyper_every = 3;
  cfg.gp_initial.iterations = 15;
  cfg.gp_refit.iterations = 6;

  const auto plain =
      bo::run_constrained(*deck, bo::ConstrainedMethod::kato, cfg, 5);

  obs::trace_begin(trace_path("obs_bo_identity.json"));
  const auto traced =
      bo::run_constrained(*deck, bo::ConstrainedMethod::kato, cfg, 5);
  const std::size_t n_events = obs::trace_end();
#ifndef KATO_OBS_DISABLE
  EXPECT_GT(n_events, 0u);
#else
  (void)n_events;
#endif

  // Counters never feed arithmetic and spans only read the clock, so the
  // optimization trajectory must be bit-identical with tracing enabled.
  ASSERT_EQ(plain.trace.size(), traced.trace.size());
  for (std::size_t i = 0; i < plain.trace.size(); ++i)
    EXPECT_DOUBLE_EQ(plain.trace[i], traced.trace[i]) << "sim " << i;
  ASSERT_EQ(plain.x_history.size(), traced.x_history.size());
  for (std::size_t i = 0; i < plain.x_history.size(); ++i)
    EXPECT_EQ(plain.x_history[i], traced.x_history[i]) << "sim " << i;
  EXPECT_EQ(plain.best_metrics, traced.best_metrics);
}

/// Shared config for the journaled-run tests: small enough to stay inside
/// the slow-suite budget, large enough to exercise DOE + refits + proposals.
bo::BoConfig journal_test_config() {
  bo::BoConfig cfg;
  cfg.n_init = 14;
  cfg.iterations = 5;
  cfg.batch = 2;
  cfg.nsga.population = 12;
  cfg.nsga.generations = 6;
  cfg.max_gp_points = 96;
  cfg.hyper_every = 3;
  cfg.gp_initial.iterations = 15;
  cfg.gp_refit.iterations = 6;
  return cfg;
}

/// Run the same seeded constrained optimization with the journal off and
/// on; require a bit-identical trajectory and a schema-complete journal
/// whose run_end replays the run's own best-so-far curve.
void check_journaled_run(const std::string& deck_name) {
  const auto deck =
      ckt::NetlistCircuit::from_file(deck_path(deck_name), ckt::pdk_180nm());
  const bo::BoConfig cfg = journal_test_config();

  const auto plain =
      bo::run_constrained(*deck, bo::ConstrainedMethod::kato, cfg, 5);

  const std::string path = trace_path("obs_journal_" + deck_name + ".jsonl");
  obs::journal_begin(path);
  ASSERT_TRUE(obs::journal_enabled());
  const auto journaled =
      bo::run_constrained(*deck, bo::ConstrainedMethod::kato, cfg, 5);
  const std::size_t lines = obs::journal_end();

  // Journaling is value-free: same seed, same trajectory, to the bit.
  ASSERT_EQ(plain.trace.size(), journaled.trace.size());
  for (std::size_t i = 0; i < plain.trace.size(); ++i)
    EXPECT_DOUBLE_EQ(plain.trace[i], journaled.trace[i]) << "sim " << i;
  ASSERT_EQ(plain.x_history.size(), journaled.x_history.size());
  for (std::size_t i = 0; i < plain.x_history.size(); ++i)
    EXPECT_EQ(plain.x_history[i], journaled.x_history[i]) << "sim " << i;
  EXPECT_EQ(plain.best_metrics, journaled.best_metrics);

  // run_begin + DOE record + one record per BO iteration + run_end.
  EXPECT_EQ(lines, 2u + 1u + cfg.iterations);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> events;
  std::string line;
  while (std::getline(in, line)) events.push_back(line);
  ASSERT_EQ(events.size(), lines);
  for (const auto& e : events) {
    EXPECT_EQ(e.front(), '{') << e;
    EXPECT_EQ(e.back(), '}') << e;
  }
  const std::string& begin = events.front();
  EXPECT_NE(begin.find("\"event\":\"run_begin\""), std::string::npos);
  EXPECT_NE(begin.find("\"mode\":\"constrained\""), std::string::npos);
  EXPECT_NE(begin.find("\"method\":\"KATO\""), std::string::npos);
  EXPECT_NE(begin.find("\"seed\":5"), std::string::npos);
  EXPECT_NE(begin.find("\"config\":{"), std::string::npos);
  EXPECT_NE(begin.find("\"iterations\":5"), std::string::npos);

  EXPECT_NE(events[1].find("\"phase\":\"doe\""), std::string::npos);
  EXPECT_NE(events[1].find("\"iter\":-1"), std::string::npos);
  std::size_t n_iteration = 0;
  for (std::size_t i = 1; i + 1 < events.size(); ++i) {
    EXPECT_NE(events[i].find("\"event\":\"iteration\""), std::string::npos);
    EXPECT_NE(events[i].find("\"proposals\":["), std::string::npos);
    EXPECT_NE(events[i].find("\"trace\":["), std::string::npos);
    EXPECT_NE(events[i].find("\"best\":"), std::string::npos);
    ++n_iteration;
  }
  EXPECT_EQ(n_iteration, 1u + cfg.iterations);

  const std::string& end = events.back();
  EXPECT_NE(end.find("\"event\":\"run_end\""), std::string::npos);
  EXPECT_NE(end.find("\"sims\":" + std::to_string(journaled.trace.size())),
            std::string::npos);
  EXPECT_NE(end.find("\"best\":" + obs::json_num(journaled.trace.back())),
            std::string::npos);
  EXPECT_NE(end.find("\"regret_curve\":["), std::string::npos);

  // Replay: the run_end regret curve is exactly the concatenation of the
  // per-iteration trace segments — and both match the in-memory result.
  const std::string expected_curve =
      "\"regret_curve\":" + obs::json_array(journaled.trace);
  EXPECT_NE(end.find(expected_curve), std::string::npos);
  std::string replayed;
  for (std::size_t i = 1; i + 1 < events.size(); ++i) {
    const auto pos = events[i].find("\"trace\":[");
    ASSERT_NE(pos, std::string::npos);
    const auto close = events[i].find(']', pos);
    ASSERT_NE(close, std::string::npos);
    std::string seg = events[i].substr(pos + 9, close - (pos + 9));
    if (!seg.empty() && !replayed.empty()) replayed += ',';
    replayed += seg;
  }
  EXPECT_EQ("[" + replayed + "]", obs::json_array(journaled.trace));
}

TEST(ObsBo, JournaledOpamp2RunBitIdenticalAndSchemaComplete) {
  check_journaled_run("opamp2.cir");
}

TEST(ObsBo, JournaledBufferTranRunBitIdenticalAndSchemaComplete) {
  check_journaled_run("buffer_tran.cir");
}

}  // namespace

// Observability subsystem: KATO_STATS/KATO_TRACE env parsing discipline,
// counter goldens hand-countable on small circuits, trace-file schema,
// concurrent flush integrity under KATO_THREADS, the stats registry, and
// (ObsBo suite — labelled slow in CTest) bit-identity of a seeded BO run
// with tracing on vs off.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bo/drivers.hpp"
#include "netlist/netlist_circuit.hpp"
#include "obs/obs.hpp"
#include "sim/dc.hpp"
#include "sim/transient.hpp"

namespace obs = kato::obs;
namespace sim = kato::sim;
namespace ckt = kato::ckt;
namespace bo = kato::bo;

#ifndef KATO_SOURCE_DIR
#define KATO_SOURCE_DIR "."
#endif

namespace {

std::string deck_path(const std::string& name) {
  return std::string(KATO_SOURCE_DIR) + "/circuits/netlists/" + name;
}

std::string trace_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

sim::MosModel nmos_model() {
  sim::MosModel m;
  m.nmos = true;
  m.vth0 = 0.5;
  m.kp = 200e-6;
  m.lambda_coef = 0.05e-6;
  return m;
}

/// 3V through 1k over 2k: linear, so Newton takes exactly one correcting
/// iteration plus one convergence check.
sim::Circuit divider() {
  sim::Circuit c;
  const int vin = c.new_node("vin");
  const int mid = c.new_node("mid");
  c.add_vsource(vin, sim::Circuit::ground, 3.0);
  c.add_resistor(vin, mid, 1e3);
  c.add_resistor(mid, sim::Circuit::ground, 2e3);
  return c;
}

// --- Env parsing -----------------------------------------------------------

TEST(ObsEnv, ParseSinkPathFullStringDiscipline) {
  EXPECT_FALSE(obs::parse_sink_path(nullptr).has_value());
  EXPECT_FALSE(obs::parse_sink_path("").has_value());
  EXPECT_FALSE(obs::parse_sink_path(" /tmp/t.json").has_value());
  EXPECT_FALSE(obs::parse_sink_path("/tmp/t.json ").has_value());
  EXPECT_FALSE(obs::parse_sink_path("\t/tmp/t.json").has_value());
  EXPECT_FALSE(obs::parse_sink_path("/tmp/t.json\n").has_value());
  EXPECT_FALSE(obs::parse_sink_path(" ").has_value());
  ASSERT_TRUE(obs::parse_sink_path("-").has_value());
  EXPECT_EQ(*obs::parse_sink_path("-"), "-");
  ASSERT_TRUE(obs::parse_sink_path("/tmp/t.json").has_value());
  EXPECT_EQ(*obs::parse_sink_path("/tmp/t.json"), "/tmp/t.json");
  // Interior spaces are legal path characters; only the edges are policed.
  ASSERT_TRUE(obs::parse_sink_path("out dir/t.json").has_value());
  EXPECT_EQ(*obs::parse_sink_path("out dir/t.json"), "out dir/t.json");
}

TEST(ObsEnv, SinkFromEnvMirrorsSeedListDiscipline) {
  unsetenv("KATO_STATS");
  EXPECT_FALSE(obs::sink_from_env("KATO_STATS").has_value());
  setenv("KATO_STATS", "", 1);
  EXPECT_FALSE(obs::sink_from_env("KATO_STATS").has_value());
  setenv("KATO_STATS", " stats.json", 1);
  EXPECT_FALSE(obs::sink_from_env("KATO_STATS").has_value());
  setenv("KATO_STATS", "stats.json ", 1);
  EXPECT_FALSE(obs::sink_from_env("KATO_STATS").has_value());
  setenv("KATO_STATS", "-", 1);
  ASSERT_TRUE(obs::sink_from_env("KATO_STATS").has_value());
  EXPECT_EQ(*obs::sink_from_env("KATO_STATS"), "-");
  setenv("KATO_STATS", "stats.json", 1);
  ASSERT_TRUE(obs::sink_from_env("KATO_STATS").has_value());
  EXPECT_EQ(*obs::sink_from_env("KATO_STATS"), "stats.json");
  unsetenv("KATO_STATS");
}

// --- Counter goldens -------------------------------------------------------

TEST(ObsCounters, DividerNewtonGoldenDense) {
  sim::DcOptions opts;
  opts.gmin_ladder = {1e-12};
  opts.max_step = 10.0;  // no damping on a 3 V linear solve
  const auto res = sim::solve_dc(divider(), opts);
  ASSERT_TRUE(res.converged);
  // Linear circuit: iteration 1 lands the exact solution, iteration 2
  // observes |dV| < tol.  Each dense iteration runs one full LU; the first
  // counts as the first factor, the second as a refactor.
  EXPECT_EQ(res.stats.newton_solves, 1u);
  EXPECT_EQ(res.stats.newton_iters, 2u);
  EXPECT_EQ(res.stats.damping_clamps, 0u);
  EXPECT_EQ(res.stats.lu_first_factors, 1u);
  EXPECT_EQ(res.stats.lu_refactors, 1u);
  EXPECT_EQ(res.stats.lu_pivot_fallbacks, 0u);
  EXPECT_EQ(res.stats.gmin_rungs, 1u);
  EXPECT_EQ(res.stats.dc_restarts, 0u);
  ASSERT_EQ(res.rung_stats.size(), 1u);
  EXPECT_EQ(res.rung_stats[0].newton_iters, 2u);
  EXPECT_EQ(res.rung_stats[0].damping_clamps, 0u);
  EXPECT_TRUE(res.rung_stats[0].converged);
}

TEST(ObsCounters, SparseLadderFirstFactorVsRefactorSplit) {
  sim::DcOptions opts;
  opts.solver = sim::MnaSolver::sparse;
  opts.gmin_ladder = {1e-4, 1e-8, 1e-12};
  opts.max_step = 10.0;
  const auto res = sim::solve_dc(divider(), opts);
  ASSERT_TRUE(res.converged);
  // Symbolic reuse across the whole ladder: exactly one first factor, every
  // later Newton iteration is an in-place numeric refactorization and none
  // of them needs a pivot fallback on this well-conditioned system.
  EXPECT_EQ(res.stats.newton_solves, 3u);
  EXPECT_EQ(res.stats.lu_first_factors, 1u);
  EXPECT_EQ(res.stats.lu_refactors, res.stats.newton_iters - 1);
  EXPECT_EQ(res.stats.lu_pivot_fallbacks, 0u);
  EXPECT_EQ(res.stats.gmin_rungs, 3u);
  ASSERT_EQ(res.rung_stats.size(), 3u);
  for (const auto& r : res.rung_stats) EXPECT_TRUE(r.converged);
}

TEST(ObsCounters, TranAcceptCountsMatchTimeAxis) {
  // RC relaxation: 1 V source charges mid through 1k into 1 uF, with the
  // node forced to 0 at t = 0 — the LTE controller takes real steps.
  sim::Circuit c;
  const int vin = c.new_node("vin");
  const int mid = c.new_node("mid");
  c.add_vsource(vin, sim::Circuit::ground, 1.0);
  c.add_resistor(vin, mid, 1e3);
  c.add_capacitor(mid, sim::Circuit::ground, 1e-6);
  sim::TranOptions opts;
  opts.tstop = 5e-3;
  opts.tstep = 1e-5;
  opts.initial_conditions = {{mid, 0.0}};
  const auto res = sim::solve_tran(c, opts);
  ASSERT_TRUE(res.ok) << res.reason;
  // One recorded time point per accepted step, plus the t = 0 sample.
  EXPECT_EQ(res.stats.tran_steps_accepted + 1, res.time.size());
  EXPECT_GE(res.stats.tran_be_steps, 1u);  // the startup step is BE
  EXPECT_EQ(res.stats.tran_newton_rejects, 0u);
  // Every accepted or LTE-rejected step ran one Newton solve; the internal
  // t = 0 operating point contributes the rest.
  EXPECT_GE(res.stats.newton_solves,
            res.stats.tran_steps_accepted + res.stats.tran_steps_rejected);
  EXPECT_GT(res.stats.newton_iters, res.stats.newton_solves);
}

TEST(ObsCounters, DcFailureReasonNamesRungAndIterationBudget) {
  // Diode-connected NMOS pulled up through 10k: genuinely nonlinear, so one
  // allowed iteration on a one-rung ladder cannot converge.
  sim::Circuit c;
  const int vdd = c.new_node("vdd");
  const int d = c.new_node("d");
  c.add_vsource(vdd, sim::Circuit::ground, 1.8);
  c.add_resistor(vdd, d, 10e3);
  c.add_mosfet(d, d, sim::Circuit::ground, 10e-6, 1e-6, nmos_model());
  sim::DcOptions opts;
  opts.gmin_ladder = {1e-12};
  opts.max_iterations = 1;
  const auto res = sim::solve_dc(c, opts);
  ASSERT_FALSE(res.converged);
  EXPECT_NE(res.reason.find("gmin rung 1/1"), std::string::npos) << res.reason;
  EXPECT_NE(res.reason.find("newton 1/1"), std::string::npos) << res.reason;
  EXPECT_NE(res.reason.find("at gmin="), std::string::npos) << res.reason;
}

// --- Stats registry --------------------------------------------------------

TEST(ObsStats, RegistryAggregatesNetlistEvaluation) {
  const auto deck =
      ckt::NetlistCircuit::from_file(deck_path("buffer_tran.cir"), ckt::pdk_180nm());
  const std::vector<double> mid(deck->space().dim(), 0.5);
  obs::stats_reset();
  const auto outcome = deck->evaluate_detailed(mid);
  ASSERT_TRUE(outcome.metrics.has_value()) << outcome.failure;
  // The per-outcome stats and the process registry must agree: the registry
  // is fed exactly once per simulated condition, from evaluate_single.
  EXPECT_GT(outcome.stats.newton_iters, 0u);
  EXPECT_GT(outcome.stats.tran_steps_accepted, 0u);
  EXPECT_EQ(obs::stats_value("newton_iters"), outcome.stats.newton_iters);
  EXPECT_EQ(obs::stats_value("tran_steps_accepted"),
            outcome.stats.tran_steps_accepted);
  EXPECT_EQ(obs::stats_value("lu_first_factors"),
            outcome.stats.lu_first_factors);
  EXPECT_EQ(obs::stats_value("evals"), 1u);
  EXPECT_EQ(obs::stats_value("eval_failures"), 0u);

  std::ostringstream json;
  obs::stats_write_json(json);
  const std::string s = json.str();
  EXPECT_NE(s.find("\"newton_iters\": "), std::string::npos);
  EXPECT_NE(s.find("\"gp_fits\": "), std::string::npos);
  EXPECT_EQ(s.front(), '{');
  obs::stats_reset();
  EXPECT_EQ(obs::stats_value("newton_iters"), 0u);
}

// --- Trace schema and concurrent flush -------------------------------------

/// Structural check of one emitted event line (the writer emits one JSON
/// object per line; Perfetto-required keys must all be present).
void expect_event_line(const std::string& line) {
  EXPECT_EQ(line.rfind("{\"name\":\"", 0), 0u) << line;
  EXPECT_NE(line.find("\"ph\":\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"pid\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"tid\":"), std::string::npos) << line;
}

std::uint32_t event_tid(const std::string& line) {
  const auto pos = line.find("\"tid\":");
  return static_cast<std::uint32_t>(
      std::strtoul(line.c_str() + pos + 6, nullptr, 10));
}

TEST(ObsTrace, SchemaValidAndThreadBuffersSurviveConcurrentFlush) {
  const auto deck =
      ckt::NetlistCircuit::from_file(deck_path("opamp2.cir"), ckt::pdk_180nm());
  const std::vector<std::vector<double>> xs(
      32, std::vector<double>(deck->space().dim(), 0.5));
  const auto serial = deck->evaluate_batch(xs);

  const std::string path = trace_path("obs_trace_schema.json");
  setenv("KATO_THREADS", "4", 1);
  // Warm the pool untraced so the workers are spawned and parked — a parked
  // worker wakes in microseconds and reliably claims chunks of the traced
  // batch, whereas thread spawn can lose the race against fast evals.
  (void)deck->evaluate_batch(xs);
  obs::set_trace_buffer_capacity_for_test(4);  // force mid-run flushes
  obs::trace_begin(path);
  const auto traced = deck->evaluate_batch(xs);
  const std::size_t n_events = obs::trace_end();
  obs::set_trace_buffer_capacity_for_test(1 << 16);
  unsetenv("KATO_THREADS");

  EXPECT_GT(n_events, 0u);
  ASSERT_EQ(traced.size(), serial.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_TRUE(traced[i].has_value());
    EXPECT_EQ(*traced[i], *serial[i]) << "candidate " << i;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"traceEvents\":[");
  std::size_t events_seen = 0;
  std::set<std::uint32_t> tids;
  bool saw_footer = false;
  while (std::getline(in, line)) {
    if (line.rfind("]", 0) == 0) {
      EXPECT_NE(line.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
      saw_footer = true;
      break;
    }
    if (line.size() >= 2 && line.compare(line.size() - 2, 2, ",\n") == 0)
      line.resize(line.size() - 2);
    if (!line.empty() && line.back() == ',') line.pop_back();
    expect_event_line(line);
    tids.insert(event_tid(line));
    ++events_seen;
  }
  EXPECT_TRUE(saw_footer);
  // thread_name metadata rows plus every collected event.
  EXPECT_GE(events_seen, n_events);
  // The fan-out ran on >= 2 threads and each one's buffer made it to disk.
  EXPECT_GE(tids.size(), 2u);
}

TEST(ObsTrace, PauseResumeAndEndWithoutSession) {
  EXPECT_EQ(obs::trace_end(), 0u);  // no session: clean no-op
  EXPECT_FALSE(obs::trace_enabled());
  obs::trace_resume();  // resume outside a session must not enable capture
  EXPECT_FALSE(obs::trace_enabled());

  const std::string path = trace_path("obs_trace_pause.json");
  obs::trace_begin(path);
  EXPECT_TRUE(obs::trace_enabled());
  { KATO_OBS_SPAN("kept"); }
  obs::trace_pause();
  EXPECT_FALSE(obs::trace_enabled());
  { KATO_OBS_SPAN("suppressed"); }
  obs::trace_resume();
  EXPECT_TRUE(obs::trace_enabled());
  const std::size_t n = obs::trace_end();
  EXPECT_EQ(n, 1u);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"name\":\"kept\""), std::string::npos);
  EXPECT_EQ(ss.str().find("suppressed"), std::string::npos);
}

// --- Off-path bit-identity (slow) ------------------------------------------

TEST(ObsBo, SeededRunBitIdenticalWithTracingOn) {
  const auto deck =
      ckt::NetlistCircuit::from_file(deck_path("opamp2.cir"), ckt::pdk_180nm());
  bo::BoConfig cfg;
  cfg.n_init = 14;
  cfg.iterations = 5;
  cfg.batch = 2;
  cfg.nsga.population = 12;
  cfg.nsga.generations = 6;
  cfg.max_gp_points = 96;
  cfg.hyper_every = 3;
  cfg.gp_initial.iterations = 15;
  cfg.gp_refit.iterations = 6;

  const auto plain =
      bo::run_constrained(*deck, bo::ConstrainedMethod::kato, cfg, 5);

  obs::trace_begin(trace_path("obs_bo_identity.json"));
  const auto traced =
      bo::run_constrained(*deck, bo::ConstrainedMethod::kato, cfg, 5);
  const std::size_t n_events = obs::trace_end();
  EXPECT_GT(n_events, 0u);

  // Counters never feed arithmetic and spans only read the clock, so the
  // optimization trajectory must be bit-identical with tracing enabled.
  ASSERT_EQ(plain.trace.size(), traced.trace.size());
  for (std::size_t i = 0; i < plain.trace.size(); ++i)
    EXPECT_DOUBLE_EQ(plain.trace[i], traced.trace[i]) << "sim " << i;
  ASSERT_EQ(plain.x_history.size(), traced.x_history.size());
  for (std::size_t i = 0; i < plain.x_history.size(); ++i)
    EXPECT_EQ(plain.x_history[i], traced.x_history[i]) << "sim " << i;
  EXPECT_EQ(plain.best_metrics, traced.best_metrics);
}

}  // namespace

// Table-based device models (sim/device_table.hpp):
//
//   * bit-identity of the hoisted analytic path (MosPre + eval_mosfet_pre,
//     and the assembler's SoA stamp loop) against the pinned eval_mosfet
//     reference — this is the KATO_DEVICE_TABLE=0 "bit-identical to the
//     historical behavior" guarantee;
//   * table-vs-analytic accuracy: ids/gm/gds within 1e-4 relative over a
//     dense bias sweep on both PDK nodes at every deck temperature;
//   * KATO_DEVICE_TABLE env routing and the process-wide table cache;
//   * end-to-end SizingCircuit::evaluate agreement between the two paths on
//     the shipped decks;
//   * seeded 5-iteration BO reproducibility per path (DeviceTableBo suite —
//     labelled slow in CTest).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bo/drivers.hpp"
#include "circuits/pdk.hpp"
#include "netlist/netlist_circuit.hpp"
#include "netlist/parser.hpp"
#include "sim/circuit.hpp"
#include "sim/device_table.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"
#include "sim/mosfet.hpp"

namespace sim = kato::sim;
namespace ckt = kato::ckt;
namespace net = kato::net;
namespace bo = kato::bo;
namespace la = kato::la;

#ifndef KATO_SOURCE_DIR
#define KATO_SOURCE_DIR "."
#endif

namespace {

std::string deck_path(const std::string& name) {
  return std::string(KATO_SOURCE_DIR) + "/circuits/netlists/" + name;
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

/// The model set the accuracy/bit-identity sweeps cover: both PDK nodes,
/// both polarities, plus MC-mismatch-style perturbed variants (vth0 shift,
/// kp scale) to make sure the table normalization really keeps those
/// outside the table.
std::vector<sim::MosModel> sweep_models() {
  std::vector<sim::MosModel> models{ckt::pdk_180nm().nmos,
                                    ckt::pdk_180nm().pmos,
                                    ckt::pdk_40nm().nmos,
                                    ckt::pdk_40nm().pmos};
  sim::MosModel shifted = ckt::pdk_180nm().nmos;
  shifted.vth0 += 0.032;
  shifted.kp *= 0.87;
  models.push_back(shifted);
  sim::MosModel shifted_p = ckt::pdk_40nm().pmos;
  shifted_p.vth0 -= 0.021;
  shifted_p.kp *= 1.13;
  models.push_back(shifted_p);
  return models;
}

// Every temperature the shipped decks simulate at: the .corner overrides of
// opamp2_corners/buffer_tran_corners (348 K, 273 K), the nominal 300 K, and
// the bandgap TC sweep grid.
const double k_deck_temps[] = {253.0, 273.0, 300.0, 323.0, 348.0, 373.0};

}  // namespace

// ---------------------------------------------------------------------------
// KATO_DEVICE_TABLE routing (mirrors the KATO_SPARSE contract).

TEST(DeviceEvalResolve, AutomaticPicksTableAndEnvOverrides) {
  {
    ScopedEnv env("KATO_DEVICE_TABLE", "");
    EXPECT_EQ(sim::resolve_device_eval(sim::DeviceEval::automatic),
              sim::DeviceEval::table);
    EXPECT_EQ(sim::resolve_device_eval(sim::DeviceEval::analytic),
              sim::DeviceEval::analytic);
    EXPECT_EQ(sim::resolve_device_eval(sim::DeviceEval::table),
              sim::DeviceEval::table);
  }
  {
    ScopedEnv env("KATO_DEVICE_TABLE", "0");
    EXPECT_EQ(sim::resolve_device_eval(sim::DeviceEval::automatic),
              sim::DeviceEval::analytic);
    EXPECT_EQ(sim::resolve_device_eval(sim::DeviceEval::table),
              sim::DeviceEval::analytic);
  }
  {
    ScopedEnv env("KATO_DEVICE_TABLE", "analytic");
    EXPECT_EQ(sim::resolve_device_eval(sim::DeviceEval::automatic),
              sim::DeviceEval::analytic);
  }
  {
    ScopedEnv env("KATO_DEVICE_TABLE", "1");
    EXPECT_EQ(sim::resolve_device_eval(sim::DeviceEval::analytic),
              sim::DeviceEval::table);
  }
  {
    ScopedEnv env("KATO_DEVICE_TABLE", "table");
    EXPECT_EQ(sim::resolve_device_eval(sim::DeviceEval::analytic),
              sim::DeviceEval::table);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity of the hoisted analytic path: eval_mosfet_pre must reproduce
// the pinned eval_mosfet reference exactly (same bits), for every polarity,
// temperature, geometry and bias quadrant.  This is what makes
// KATO_DEVICE_TABLE=0 equal to the pre-table behavior.

TEST(MosPreAnalytic, BitIdenticalToEvalMosfet) {
  for (const auto& m : sweep_models()) {
    for (double temp : {233.0, 273.0, 300.0, 348.0, 398.0}) {
      for (const auto& wl : {std::pair{1e-6, 0.18e-6}, std::pair{10e-6, 1e-6},
                             std::pair{50e-6, 2e-6}}) {
        const sim::MosPre p = sim::mos_precompute(m, wl.first, wl.second, temp);
        for (double vgs = -2.0; vgs <= 2.0; vgs += 0.0371) {
          for (double vds = -2.0; vds <= 2.0; vds += 0.0407) {
            const sim::MosOp ref =
                sim::eval_mosfet(m, wl.first, wl.second, vgs, vds, temp);
            const sim::MosOp got = sim::eval_mosfet_pre(p, vgs, vds);
            // EXPECT_EQ on doubles: exact bit agreement, not a tolerance.
            ASSERT_EQ(got.ids, ref.ids)
                << "vgs=" << vgs << " vds=" << vds << " T=" << temp;
            ASSERT_EQ(got.gm, ref.gm)
                << "vgs=" << vgs << " vds=" << vds << " T=" << temp;
            ASSERT_EQ(got.gds, ref.gds)
                << "vgs=" << vgs << " vds=" << vds << " T=" << temp;
            ASSERT_EQ(got.saturated, ref.saturated)
                << "vgs=" << vgs << " vds=" << vds << " T=" << temp;
          }
        }
      }
    }
  }
}

// The assembler's analytic SoA loop must stamp exactly what the historical
// per-device eval_mosfet loop stamped.  One device with s = ground keeps
// every accumulation order reproducible by hand, so the Jacobian cells and
// KCL rows can be pinned bitwise.
TEST(MosPreAnalytic, AssemblerStampsMatchReferenceBitwise) {
  for (bool nmos : {true, false}) {
    sim::Circuit c;
    const int vd = c.new_node("d");
    const int vg = c.new_node("g");
    c.add_vsource(vg, sim::Circuit::ground, nmos ? 0.9 : -0.9);
    c.add_resistor(vd, sim::Circuit::ground, 10e3);
    const sim::MosModel model =
        nmos ? ckt::pdk_180nm().nmos : ckt::pdk_180nm().pmos;
    c.add_mosfet(vd, vg, sim::Circuit::ground, 8e-6, 0.54e-6, model);

    const double gmin = 1e-9;
    const double temp = 330.0;
    sim::MnaAssembler asmblr(
        c, sim::MnaOptions{gmin, temp, sim::MnaSolver::dense,
                           sim::DeviceEval::analytic});
    la::Matrix jac;
    la::Vector res;
    // A few arbitrary (non-converged) iterates, covering forward and
    // reverse vds of both polarities.
    const double points[][2] = {
        {0.7, 1.1}, {0.2, -0.4}, {-0.9, 0.3}, {1.4, 0.05}, {-0.1, -1.2}};
    for (const auto& pt : points) {
      la::Vector x(c.mna_size(), 0.0);
      const std::size_t id = static_cast<std::size_t>(vd) - 1;
      const std::size_t ig = static_cast<std::size_t>(vg) - 1;
      x[id] = pt[0];
      x[ig] = pt[1];
      x[c.mna_size() - 1] = 3.3e-5;  // vsource branch current
      ASSERT_TRUE(asmblr.assemble(x, jac, res));

      const sim::MosOp op = sim::eval_mosfet(model, 8e-6, 0.54e-6, x[ig] - 0.0,
                                             x[id] - 0.0, temp);
      const double g_load = 1.0 / 10e3;
      // Jacobian cells in assembly order: gmin diagonal, resistor, mosfet.
      EXPECT_EQ(jac(id, id), gmin + g_load + op.gds);
      EXPECT_EQ(jac(id, ig), op.gm);
      // Residual row of the drain in assembly order: gmin, resistor, ids.
      EXPECT_EQ(res[id], gmin * x[id] + g_load * (x[id] - 0.0) + op.ids);
    }
  }
}

// ---------------------------------------------------------------------------
// Table accuracy vs the analytic reference.

TEST(DeviceTableAccuracy, IdsGmGdsWithin1e4OfAnalytic) {
  double worst = 0.0;
  for (const auto& m : sweep_models()) {
    for (double temp : k_deck_temps) {
      const auto table = sim::device_table_for(m.subthreshold_n, temp);
      const sim::MosPre p = sim::mos_precompute(m, 6e-6, 0.36e-6, temp);
      // Covers both PDK supply boxes (1.8 V / 1.1 V) with margin, all four
      // bias quadrants (forward/reverse vds, on/off).
      const double span = 2.0;
      for (double vgs = -span; vgs <= span; vgs += 0.0131) {
        for (double vds = -span; vds <= span; vds += 0.0173) {
          const sim::MosOp ref = sim::eval_mosfet_pre(p, vgs, vds);
          const sim::MosOp tab = sim::eval_mosfet_table(*table, p, vgs, vds);
          // Relative to the analytic value, floored at the model's own
          // conductance floor (1e-12): below that the device is off and
          // the comparison measures noise, not the table.
          const double e_ids =
              std::abs(tab.ids - ref.ids) / std::max(std::abs(ref.ids), 1e-12);
          const double e_gm =
              std::abs(tab.gm - ref.gm) / std::max(std::abs(ref.gm), 1e-12);
          const double e_gds =
              std::abs(tab.gds - ref.gds) / std::max(std::abs(ref.gds), 1e-12);
          const double e = std::max({e_ids, e_gm, e_gds});
          if (e > worst) worst = e;
          ASSERT_LE(e, 1e-4) << "model n=" << m.subthreshold_n
                             << " nmos=" << m.nmos << " T=" << temp
                             << " vgs=" << vgs << " vds=" << vds;
        }
      }
    }
  }
  // The bound should not be accidentally loose: the sweep must exercise
  // errors within two decades of the limit.
  EXPECT_GT(worst, 1e-8);
}

TEST(DeviceTableAccuracy, ExactAtKnotsAndInTails) {
  const auto t = sim::device_table_for(1.45, 300.0);
  const double nvt2 = t->nvt2();
  // Knots carry the exact analytic values (Hermite interpolates, never
  // smooths); the lookup reproduces them to rounding (the grid-index
  // arithmetic can land an ULP off the exact cell boundary).
  for (std::size_t i = 0; i < t->n_knots(); i += 97) {
    const double vov = t->vov_min() + t->step() * static_cast<double>(i);
    double veff = 0.0;
    double dveff = 0.0;
    t->veff_at(vov, veff, dveff);
    const double veff_ref = nvt2 * sim::mos_softplus(vov / nvt2);
    EXPECT_NEAR(veff, veff_ref, 1e-12 * std::max(1.0, std::abs(veff_ref)));
    EXPECT_NEAR(dveff, sim::mos_logistic(vov / nvt2), 1e-12);
  }
  // Outside the grid the exact analytic expressions take over.
  for (double vov : {-7.3, 5.9, 123.0, -55.0}) {
    double veff = 0.0;
    double dveff = 0.0;
    t->veff_at(vov, veff, dveff);
    EXPECT_EQ(veff, nvt2 * sim::mos_softplus(vov / nvt2));
    EXPECT_EQ(dveff, sim::mos_logistic(vov / nvt2));
  }
}

// ---------------------------------------------------------------------------
// Cache behavior: one build per (subthreshold_n, temp) key, shared
// process-wide.

TEST(DeviceTableCache, SharedPerKey) {
  const auto a = sim::device_table_for(1.45, 300.0);
  const auto b = sim::device_table_for(1.45, 300.0);
  EXPECT_EQ(a.get(), b.get());
  const auto c = sim::device_table_for(1.45, 348.0);
  EXPECT_NE(a.get(), c.get());
  const auto d = sim::device_table_for(1.35, 300.0);
  EXPECT_NE(a.get(), d.get());
  EXPECT_GE(sim::device_table_cache_size(), 3u);
  EXPECT_GT(a->n_knots(), 100u);
  EXPECT_LT(a->step(), a->nvt2());
}

// ---------------------------------------------------------------------------
// End-to-end: SizingCircuit::evaluate with the table path must agree with
// the analytic path within spec-level tolerance on the shipped decks.

namespace {

void expect_paths_agree(const std::string& deck, double rel_tol) {
  ckt::NetlistCircuit circuit(net::parse_netlist_file(deck_path(deck)),
                              ckt::pdk_180nm());
  const auto x = circuit.expert_design();
  circuit.set_device_eval(sim::DeviceEval::analytic);
  const auto analytic = circuit.evaluate(x);
  circuit.set_device_eval(sim::DeviceEval::table);
  const auto table = circuit.evaluate(x);
  ASSERT_TRUE(analytic.has_value()) << deck;
  ASSERT_TRUE(table.has_value()) << deck;
  ASSERT_EQ(analytic->size(), table->size());
  for (std::size_t i = 0; i < analytic->size(); ++i) {
    const double ref = (*analytic)[i];
    const double got = (*table)[i];
    EXPECT_LE(std::abs(got - ref), rel_tol * std::max(std::abs(ref), 1e-9))
        << deck << " metric " << i << ": analytic " << ref << " vs table "
        << got;
  }
}

}  // namespace

TEST(DeviceTableEndToEnd, Opamp2MetricsAgree) {
  expect_paths_agree("opamp2.cir", 1e-2);
}

TEST(DeviceTableEndToEnd, BufferTranMetricsAgree) {
  expect_paths_agree("buffer_tran.cir", 1e-2);
}

TEST(DeviceTableEndToEnd, LadderMetricsAgree) {
  expect_paths_agree("ladder.cir", 1e-2);
}

// Env routing reaches the solvers through the default `automatic` request.
TEST(DeviceTableEndToEnd, EnvSelectsPathLikeExplicitRequest) {
  ckt::NetlistCircuit circuit(
      net::parse_netlist_file(deck_path("opamp2.cir")), ckt::pdk_180nm());
  const auto x = circuit.expert_design();
  circuit.set_device_eval(sim::DeviceEval::analytic);
  const auto analytic = circuit.evaluate(x);
  circuit.set_device_eval(sim::DeviceEval::automatic);
  std::optional<std::vector<double>> via_env;
  {
    ScopedEnv env("KATO_DEVICE_TABLE", "0");
    via_env = circuit.evaluate(x);
  }
  ASSERT_TRUE(analytic.has_value());
  ASSERT_TRUE(via_env.has_value());
  for (std::size_t i = 0; i < analytic->size(); ++i)
    EXPECT_EQ((*via_env)[i], (*analytic)[i]) << "metric " << i;
}

// ---------------------------------------------------------------------------
// Seeded BO reproducibility per device path (slow label): the optimizer
// trajectory is a deterministic function of (deck, seed, path).

namespace {

bo::RunResult run_bo(sim::DeviceEval eval) {
  ckt::NetlistCircuit circuit(
      net::parse_netlist_file(deck_path("opamp2.cir")), ckt::pdk_180nm());
  circuit.set_device_eval(eval);
  bo::BoConfig cfg;
  cfg.n_init = 10;
  cfg.iterations = 5;
  cfg.batch = 1;
  cfg.nsga.population = 10;
  cfg.nsga.generations = 5;
  cfg.max_gp_points = 64;
  cfg.hyper_every = 3;
  cfg.gp_initial.iterations = 10;
  cfg.gp_refit.iterations = 4;
  return bo::run_constrained(circuit, bo::ConstrainedMethod::kato, cfg, 11);
}

}  // namespace

TEST(DeviceTableBo, SeededFiveIterationRunReproduciblePerPath) {
  for (sim::DeviceEval eval :
       {sim::DeviceEval::analytic, sim::DeviceEval::table}) {
    const auto r1 = run_bo(eval);
    const auto r2 = run_bo(eval);
    ASSERT_EQ(r1.trace.size(), 15u);  // n_init + batch * iterations
    ASSERT_EQ(r1.trace.size(), r2.trace.size());
    for (std::size_t i = 0; i < r1.trace.size(); ++i)
      EXPECT_DOUBLE_EQ(r1.trace[i], r2.trace[i]) << "sim " << i;
    ASSERT_EQ(r1.x_history.size(), r2.x_history.size());
    for (std::size_t i = 0; i < r1.x_history.size(); ++i)
      EXPECT_EQ(r1.x_history[i], r2.x_history[i]) << "sim " << i;
  }
}

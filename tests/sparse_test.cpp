// Sparse MNA solver suite: the SparseLu kernel against the dense LU, the
// symbolic-reuse refactorization contract, the sparse-vs-dense golden
// comparison across every analysis (DC/AC/TRAN) and shipped deck, and the
// thread-parallel batch-evaluation equality guarantees.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <string>
#include <vector>

#include "circuits/factory.hpp"
#include "circuits/pdk.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "netlist/netlist_circuit.hpp"
#include "netlist/parser.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"
#include "sim/transient.hpp"
#include "util/rng.hpp"

#ifndef KATO_SOURCE_DIR
#define KATO_SOURCE_DIR "."
#endif

namespace {

using namespace kato;

std::string deck_path(const std::string& name) {
  return std::string(KATO_SOURCE_DIR) + "/circuits/netlists/" + name;
}

/// Scoped environment override (restores the previous value on destruction).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

/// Random sparse test system: banded plus a few long-range entries plus a
/// vsource-style zero-diagonal branch row — the structure partial pivoting
/// must handle.
struct TestSystem {
  la::SparsePattern pattern;
  std::vector<double> values;
  la::Matrix dense;
  la::Vector rhs;
};

TestSystem make_system(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<la::Coord> coords;
  for (std::size_t i = 0; i < n; ++i) {
    coords.push_back({i, i});
    if (i + 1 < n) {
      coords.push_back({i, i + 1});
      coords.push_back({i + 1, i});
    }
    const std::size_t far = (i * 7 + 3) % n;
    coords.push_back({i, far});
  }
  // Branch-row pair: zero diagonal at the last row/column.
  coords.push_back({n - 1, 0});
  coords.push_back({0, n - 1});

  TestSystem sys;
  sys.pattern = la::SparsePattern(n, coords);
  sys.values.assign(sys.pattern.nnz(), 0.0);
  sys.dense = la::Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t s = sys.pattern.col_ptr()[c]; s < sys.pattern.col_ptr()[c + 1];
         ++s) {
      const std::size_t r = sys.pattern.row_idx()[s];
      double v = rng.uniform() * 2.0 - 1.0;
      if (r == c) v += (r == n - 1) ? 0.0 : 4.0;  // last diagonal ~ random
      sys.values[s] = v;
      sys.dense(r, c) = v;
    }
  sys.rhs.resize(n);
  for (auto& v : sys.rhs) v = rng.uniform() * 2.0 - 1.0;
  return sys;
}

TEST(SparsePattern, SlotsAndDuplicates) {
  const std::vector<la::Coord> coords{{0, 0}, {1, 0}, {0, 0}, {2, 2}, {1, 2}};
  const la::SparsePattern p(3, coords);
  EXPECT_EQ(p.n(), 3u);
  EXPECT_EQ(p.nnz(), 4u);  // duplicate (0,0) collapsed
  EXPECT_NE(p.slot(0, 0), la::k_sparse_npos);
  EXPECT_NE(p.slot(1, 0), la::k_sparse_npos);
  EXPECT_NE(p.slot(1, 2), la::k_sparse_npos);
  EXPECT_EQ(p.slot(2, 0), la::k_sparse_npos);
  EXPECT_EQ(p.slot(0, 1), la::k_sparse_npos);
}

TEST(SparseLu, MinDegreeOrderIsPermutation) {
  const auto sys = make_system(40, 7);
  const auto order = la::min_degree_order(sys.pattern);
  ASSERT_EQ(order.size(), 40u);
  std::vector<char> seen(40, 0);
  for (std::size_t v : order) {
    ASSERT_LT(v, 40u);
    EXPECT_FALSE(seen[v]) << "node visited twice";
    seen[v] = 1;
  }
}

TEST(SparseLu, MatchesDenseRandom) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto sys = make_system(60, seed);
    la::SparseLu lu;
    lu.analyze(sys.pattern);
    ASSERT_TRUE(lu.factor(sys.values)) << "seed " << seed;
    la::Vector x;
    lu.solve(sys.rhs, x);
    const auto ref = la::lu_solve(sys.dense, sys.rhs);
    ASSERT_TRUE(ref.has_value());
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_NEAR(x[i], (*ref)[i], 1e-10) << "seed " << seed << " i " << i;
  }
}

TEST(SparseLu, ComplexMatchesDense) {
  const std::size_t n = 40;
  const auto sys = make_system(n, 11);
  util::Rng rng(12);
  la::CMatrix dense(n, n);
  std::vector<std::complex<double>> values(sys.pattern.nnz());
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t s = sys.pattern.col_ptr()[c]; s < sys.pattern.col_ptr()[c + 1];
         ++s) {
      const std::size_t r = sys.pattern.row_idx()[s];
      const std::complex<double> v(sys.values[s], rng.uniform() - 0.5);
      values[s] = v;
      dense(r, c) = v;
    }
  la::CVector rhs(n);
  for (auto& v : rhs) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};

  la::CSparseLu lu;
  lu.analyze(sys.pattern);
  ASSERT_TRUE(lu.factor(values));
  la::CVector x;
  lu.solve(rhs, x);
  const auto ref = la::lu_solve_complex(dense, rhs);
  ASSERT_TRUE(ref.has_value());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), (*ref)[i].real(), 1e-10) << i;
    EXPECT_NEAR(x[i].imag(), (*ref)[i].imag(), 1e-10) << i;
  }
}

TEST(SparseLu, RefactorReusesSymbolicAndMatchesFreshFactor) {
  auto sys = make_system(60, 21);
  la::SparseLu lu;
  lu.analyze(sys.pattern);
  ASSERT_TRUE(lu.factor(sys.values));
  EXPECT_EQ(lu.pivot_passes(), 1u);

  // Perturb values mildly (same pattern): the second factor must take the
  // recorded-pivot refactor path, not a fresh pivoting pass.
  auto perturbed = sys.values;
  util::Rng rng(22);
  for (auto& v : perturbed) v *= 1.0 + 0.05 * (rng.uniform() - 0.5);
  ASSERT_TRUE(lu.factor(perturbed));
  EXPECT_EQ(lu.pivot_passes(), 1u) << "mild value change must not re-pivot";

  la::Vector x_re;
  lu.solve(sys.rhs, x_re);
  la::SparseLu fresh;
  fresh.analyze(sys.pattern);
  ASSERT_TRUE(fresh.factor(perturbed));
  la::Vector x_fresh;
  fresh.solve(sys.rhs, x_fresh);
  for (std::size_t i = 0; i < x_re.size(); ++i)
    EXPECT_NEAR(x_re[i], x_fresh[i], 1e-10) << i;
}

TEST(SparseLu, RepivotsWhenRecordedPivotCollapses) {
  auto sys = make_system(60, 31);
  la::SparseLu lu;
  lu.analyze(sys.pattern);
  ASSERT_TRUE(lu.factor(sys.values));
  ASSERT_EQ(lu.pivot_passes(), 1u);

  // Collapse the strong diagonal the first pass pivoted on: every diagonal
  // entry goes to ~0 while off-diagonals survive, so the recorded sequence
  // hits the relative-pivot guard and the factorization re-pivots — and
  // still solves correctly.
  auto collapsed = sys.values;
  la::Matrix dense(60, 60);
  for (std::size_t c = 0; c < 60; ++c)
    for (std::size_t s = sys.pattern.col_ptr()[c];
         s < sys.pattern.col_ptr()[c + 1]; ++s) {
      const std::size_t r = sys.pattern.row_idx()[s];
      if (r == c) collapsed[s] = 1e-14 * collapsed[s];
      dense(r, c) = collapsed[s];
    }
  ASSERT_TRUE(lu.factor(collapsed));
  EXPECT_GT(lu.pivot_passes(), 1u) << "collapsed pivots must trigger re-pivot";
  la::Vector x;
  lu.solve(sys.rhs, x);
  const auto ref = la::lu_solve(dense, sys.rhs);
  ASSERT_TRUE(ref.has_value());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], (*ref)[i], 1e-8 * std::max(1.0, std::abs((*ref)[i]))) << i;
}

TEST(SparseLu, SingularReturnsFalse) {
  const std::vector<la::Coord> coords{{0, 0}, {1, 1}, {0, 1}};
  const la::SparsePattern p(3, coords);  // row/col 2 empty: structurally singular
  la::SparseLu lu;
  lu.analyze(p);
  EXPECT_FALSE(lu.factor({1.0, 1.0, 0.5}));
  EXPECT_FALSE(lu.factored());

  // Numerically singular: two identical rows.
  const std::vector<la::Coord> c2{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const la::SparsePattern p2(2, c2);
  la::SparseLu lu2;
  lu2.analyze(p2);
  EXPECT_FALSE(lu2.factor({1.0, 1.0, 2.0, 2.0}));
}

TEST(SparseLu, DenseLuSolveIntoMatchesByValueVariant) {
  const auto sys = make_system(30, 41);
  auto a = sys.dense;
  auto b = sys.rhs;
  la::Vector x;
  ASSERT_TRUE(la::lu_solve_into(a, b, x));
  const auto ref = la::lu_solve(sys.dense, sys.rhs);
  ASSERT_TRUE(ref.has_value());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], (*ref)[i]);
}

// ---------------------------------------------------------------------------
// Satellites: pinned log_freq_grid counts and fmt_double renderings.

TEST(LogFreqGrid, PinnedCounts) {
  // Integer-indexed grids: the count is decades * per_decade + 1, immune to
  // the accumulated `e += step` drift of the historical implementation.
  EXPECT_EQ(sim::log_freq_grid(1.0, 1e8, 10).size(), 81u);
  EXPECT_EQ(sim::log_freq_grid(10.0, 1e9, 10).size(), 81u);
  EXPECT_EQ(sim::log_freq_grid(10.0, 1e9, 7).size(), 57u);
  EXPECT_EQ(sim::log_freq_grid(1.0, 1e10, 9).size(), 91u);
  EXPECT_EQ(sim::log_freq_grid(2.0, 2e9, 10).size(), 91u);
  EXPECT_EQ(sim::log_freq_grid(1.0, 10.0, 1).size(), 2u);

  const auto g = sim::log_freq_grid(1.0, 1e6, 10);
  ASSERT_EQ(g.size(), 61u);
  EXPECT_DOUBLE_EQ(g.front(), 1.0);
  EXPECT_NEAR(g.back(), 1e6, 1e6 * 1e-12);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
}

TEST(FmtDouble, PinnedRenderings) {
  EXPECT_EQ(sim::fmt_double(1e-12), "1e-12");
  EXPECT_EQ(sim::fmt_double(0.5), "0.5");
  EXPECT_EQ(sim::fmt_double(0.0), "0");
  EXPECT_EQ(sim::fmt_double(-42.0), "-42");
  EXPECT_EQ(sim::fmt_double(3.141592653589793), "3.14159");
  EXPECT_EQ(sim::fmt_double(2500000.0), "2.5e+06");
}

// ---------------------------------------------------------------------------
// Sparse-vs-dense golden suite: every analysis agrees to <= 1e-9 between the
// two solve paths on the shipped decks, on both PDK nodes.

class SparseVsDense : public ::testing::TestWithParam<const char*> {};

void compare_metrics(const ckt::SizingCircuit& circuit,
                     const std::vector<double>& x) {
  std::optional<std::vector<double>> sparse;
  std::optional<std::vector<double>> dense;
  {
    ScopedEnv env("KATO_SPARSE", "1");
    sparse = circuit.evaluate(x);
  }
  {
    ScopedEnv env("KATO_SPARSE", "0");
    dense = circuit.evaluate(x);
  }
  ASSERT_EQ(sparse.has_value(), dense.has_value());
  if (!sparse) return;
  ASSERT_EQ(sparse->size(), dense->size());
  for (std::size_t j = 0; j < sparse->size(); ++j)
    EXPECT_NEAR((*sparse)[j], (*dense)[j], 1e-9) << "metric " << j;
}

TEST_P(SparseVsDense, Opamp2DcAcMetrics) {
  const auto circuit = ckt::NetlistCircuit::from_file(deck_path("opamp2.cir"),
                                                      ckt::pdk_by_name(GetParam()));
  compare_metrics(*circuit, circuit->expert_design());
  util::Rng rng(77);
  for (int i = 0; i < 8; ++i)
    compare_metrics(*circuit, rng.uniform_vec(circuit->dim()));
}

TEST_P(SparseVsDense, BufferTranMetrics) {
  const auto circuit = ckt::NetlistCircuit::from_file(
      deck_path("buffer_tran.cir"), ckt::pdk_by_name(GetParam()));
  compare_metrics(*circuit, circuit->expert_design());
  util::Rng rng(78);
  for (int i = 0; i < 4; ++i)
    compare_metrics(*circuit, rng.uniform_vec(circuit->dim()));
}

TEST_P(SparseVsDense, LadderTranMetrics) {
  const auto circuit = ckt::NetlistCircuit::from_file(
      deck_path("ladder.cir"), ckt::pdk_by_name(GetParam()));
  // The scaling workload really is past the crossover (~150 nodes), so the
  // automatic path picks sparse on it.
  const auto elab = circuit->elaborate(circuit->expert_design());
  EXPECT_GE(elab.circuit.n_nodes(), 100u);
  EXPECT_GE(elab.circuit.mna_size(), sim::k_mna_sparse_crossover);
  compare_metrics(*circuit, circuit->expert_design());
  util::Rng rng(79);
  for (int i = 0; i < 2; ++i)
    compare_metrics(*circuit, rng.uniform_vec(circuit->dim()));
}

TEST_P(SparseVsDense, RawAnalysesAgreeOnBuffer) {
  // Below the metric layer: node-level DC voltages, AC sweep values and a
  // fixed-grid transient (identical timesteps on both paths by
  // construction) compared point by point.
  const auto circuit = ckt::NetlistCircuit::from_file(
      deck_path("buffer_tran.cir"), ckt::pdk_by_name(GetParam()));
  const auto elab = circuit->elaborate(circuit->expert_design());

  sim::DcOptions dc_s;
  dc_s.solver = sim::MnaSolver::sparse;
  sim::DcOptions dc_d;
  dc_d.solver = sim::MnaSolver::dense;
  const auto op_s = sim::solve_dc(elab.circuit, dc_s);
  const auto op_d = sim::solve_dc(elab.circuit, dc_d);
  ASSERT_TRUE(op_s.converged);
  ASSERT_TRUE(op_d.converged);
  for (std::size_t i = 0; i < op_s.node_voltage.size(); ++i)
    EXPECT_NEAR(op_s.node_voltage[i], op_d.node_voltage[i], 1e-9) << "node " << i;

  const auto freqs = sim::log_freq_grid(10.0, 1e9, 10);
  const auto ac_s = sim::solve_ac(elab.circuit, op_d, freqs, sim::MnaSolver::sparse);
  const auto ac_d = sim::solve_ac(elab.circuit, op_d, freqs, sim::MnaSolver::dense);
  ASSERT_TRUE(ac_s.ok);
  ASSERT_TRUE(ac_d.ok);
  for (std::size_t f = 0; f < freqs.size(); ++f)
    for (std::size_t node = 0; node < elab.circuit.n_nodes(); ++node) {
      const auto vs = ac_s.v(f, static_cast<int>(node));
      const auto vd = ac_d.v(f, static_cast<int>(node));
      EXPECT_NEAR(vs.real(), vd.real(), 1e-9) << "f " << f << " node " << node;
      EXPECT_NEAR(vs.imag(), vd.imag(), 1e-9) << "f " << f << " node " << node;
    }

  sim::TranOptions tr;
  tr.tstop = 3e-6;
  tr.tstep = tr.tstop / 128.0;
  tr.fixed_step = true;
  tr.solver = sim::MnaSolver::sparse;
  const auto tran_s = sim::solve_tran(elab.circuit, tr, &op_d);
  tr.solver = sim::MnaSolver::dense;
  const auto tran_d = sim::solve_tran(elab.circuit, tr, &op_d);
  ASSERT_TRUE(tran_s.ok) << tran_s.reason;
  ASSERT_TRUE(tran_d.ok) << tran_d.reason;
  ASSERT_EQ(tran_s.n_points(), tran_d.n_points());
  for (std::size_t t = 0; t < tran_s.n_points(); ++t) {
    EXPECT_EQ(tran_s.time[t], tran_d.time[t]);
    for (std::size_t node = 0; node < elab.circuit.n_nodes(); ++node)
      EXPECT_NEAR(tran_s.v(t, static_cast<int>(node)),
                  tran_d.v(t, static_cast<int>(node)), 1e-9)
          << "t " << t << " node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(BothNodes, SparseVsDense,
                         ::testing::Values("180nm", "40nm"));

// ---------------------------------------------------------------------------
// Batch evaluation: bit-identical to the serial loop at any KATO_THREADS.

TEST(EvalBatch, MatchesSerialLoopAtAnyThreadCount) {
  const auto circuit = ckt::NetlistCircuit::from_file(deck_path("opamp2.cir"),
                                                      ckt::pdk_180nm());
  util::Rng rng(91);
  std::vector<std::vector<double>> cands;
  for (int i = 0; i < 6; ++i) cands.push_back(rng.uniform_vec(circuit->dim()));
  cands.push_back(circuit->expert_design());

  std::vector<std::optional<std::vector<double>>> serial;
  for (const auto& x : cands) serial.push_back(circuit->evaluate(x));

  for (const char* threads : {"1", "4"}) {
    ScopedEnv env("KATO_THREADS", threads);
    const auto batch = circuit->evaluate_batch(cands);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(batch[i].has_value(), serial[i].has_value())
          << "threads " << threads << " cand " << i;
      if (!serial[i]) continue;
      ASSERT_EQ(batch[i]->size(), serial[i]->size());
      for (std::size_t j = 0; j < serial[i]->size(); ++j)
        EXPECT_EQ((*batch[i])[j], (*serial[i])[j])
            << "threads " << threads << " cand " << i << " metric " << j
            << " (must be bit-identical)";
    }
  }
}

TEST(EvalBatch, LadderBatchBitIdenticalAcrossThreads) {
  const auto circuit = ckt::NetlistCircuit::from_file(deck_path("ladder.cir"),
                                                      ckt::pdk_180nm());
  util::Rng rng(92);
  std::vector<std::vector<double>> cands;
  for (int i = 0; i < 4; ++i) cands.push_back(rng.uniform_vec(circuit->dim()));

  std::vector<std::vector<std::optional<std::vector<double>>>> results;
  for (const char* threads : {"1", "4"}) {
    ScopedEnv env("KATO_THREADS", threads);
    results.push_back(circuit->evaluate_batch(cands));
  }
  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    ASSERT_EQ(results[0][i].has_value(), results[1][i].has_value());
    if (!results[0][i]) continue;
    for (std::size_t j = 0; j < results[0][i]->size(); ++j)
      EXPECT_EQ((*results[0][i])[j], (*results[1][i])[j]) << i << "," << j;
  }
}

TEST(EvalBatch, DefaultImplementationIsSerialLoop) {
  // Hand-written circuits get the base-class batch: exactly the serial loop.
  const auto circuit = ckt::make_circuit("opamp2", "180nm");
  util::Rng rng(93);
  std::vector<std::vector<double>> cands;
  for (int i = 0; i < 3; ++i) cands.push_back(rng.uniform_vec(circuit->dim()));
  const auto batch = circuit->evaluate_batch(cands);
  ASSERT_EQ(batch.size(), cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const auto one = circuit->evaluate(cands[i]);
    ASSERT_EQ(batch[i].has_value(), one.has_value());
    if (one) {
      for (std::size_t j = 0; j < one->size(); ++j)
        EXPECT_EQ((*batch[i])[j], (*one)[j]);
    }
  }
}

}  // namespace

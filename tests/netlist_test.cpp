// Netlist front-end: lexer/parser exactness, hierarchy flattening, the
// diagnostic contract (every rejection carries file/line), golden
// equivalence of the shipped opamp2 deck against the hand-written C++
// topology, and seeded BO reproducibility on a deck (NetlistBo suite —
// labelled slow in CTest).

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/factory.hpp"
#include "core/experiment.hpp"
#include "netlist/netlist_circuit.hpp"
#include "util/rng.hpp"

namespace ckt = kato::ckt;
namespace net = kato::net;
namespace bo = kato::bo;
namespace core = kato::core;

#ifndef KATO_SOURCE_DIR
#define KATO_SOURCE_DIR "."
#endif

namespace {

std::string deck_path(const std::string& name) {
  return std::string(KATO_SOURCE_DIR) + "/circuits/netlists/" + name;
}

ckt::NetlistCircuit load(const std::string& text, const std::string& node = "180nm") {
  return ckt::NetlistCircuit(net::parse_netlist(text, "test.cir"),
                             ckt::pdk_by_name(node));
}

/// Expect construction to throw a NetlistError on `line` whose message
/// contains `needle`.
void expect_diag(const std::string& text, int line, const std::string& needle) {
  try {
    load(text);
    FAIL() << "deck accepted; expected diagnostic containing '" << needle << "'";
  } catch (const net::NetlistError& err) {
    EXPECT_EQ(err.line(), line) << err.what();
    EXPECT_EQ(err.file(), "test.cir") << err.what();
    EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
        << err.what();
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Values and expressions.

TEST(NetlistParse, SuffixedNumbersMatchENotationExactly) {
  // The lexer applies SI suffixes by appending the power-of-ten exponent to
  // the digit string before strtod, so suffixed and e-notation spellings of
  // a value produce the same double bit for bit.
  const auto c = load(
      "vs in 0 1.0\n"
      "r1 in out 2.5k\n"
      "r2 out 0 1meg\n"
      "c1 out 0 0.3p\n"
      "c2 out 0 10pF\n"  // trailing unit letters ignored
      ".var rr 1 2 lin\n"
      "r3 out 0 {rr}\n"
      ".spec objective V V = vdc(out)\n");
  const auto elab = c.elaborate({0.0});
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[0].r, 2.5e3);
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[1].r, 1e6);
  EXPECT_DOUBLE_EQ(elab.circuit.capacitors()[0].c, 0.3e-12);
  EXPECT_DOUBLE_EQ(elab.circuit.capacitors()[1].c, 10e-12);
}

TEST(NetlistParse, ExpressionPrecedenceAndFunctions) {
  const auto c = load(
      ".param a = 2+3*4\n"           // 14
      ".param b = {(2+3)*4}\n"       // 20
      ".param c = cond(is180, 7, 9)\n"
      ".param d = max(sqrt(16), 2)/2\n"
      "vs in 0 1.0\n"
      "r1 in out {a}\n"
      "r2 out 0 {b}\n"
      "r3 out 0 {c}\n"
      "r4 out 0 {d}\n"
      ".var u 1 2 lin\n"
      "r5 out 0 {u*10}\n"
      ".spec objective V V = vdc(out)\n");
  const auto elab = c.elaborate({0.0});
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[0].r, 14.0);
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[1].r, 20.0);
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[2].r, 7.0);  // 180nm PDK
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[3].r, 2.0);
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[4].r, 10.0);
}

TEST(NetlistParse, ContinuationLinesAndComments) {
  const auto c = load(
      "* full-line comment\n"
      "vs in 0\n"
      "+ 1.0        ; inline comment\n"
      "r1 in out 1k\n"
      "r2 out 0 1k\n"
      ".spec objective V V = vdc(out)\n"
      ".var u 1 2 lin\n"
      "r3 out 0 {u}\n");
  const auto elab = c.elaborate({0.5});
  EXPECT_DOUBLE_EQ(elab.circuit.vsources()[0].dc, 1.0);
}

TEST(NetlistParse, NumericNodeNamesKeepTheirSpelling) {
  // "2a" must stay node "2a" — not be lexed as the number 2 with trailing
  // letters dropped — and must be addressable from measures.
  const auto c = load(
      "vs 1 0 1.0\n"
      "r1 1 2a 1k\n"
      "r2 2a 0 1k\n"
      ".var u 1 2 lin\n"
      "r3 2a 0 {u*1k}\n"
      ".spec objective V V = vdc(2a)\n");
  const auto elab = c.elaborate({0.0});
  EXPECT_EQ(elab.nodes.count("2a"), 1u);
  EXPECT_EQ(elab.nodes.count("1"), 1u);
  const auto m = c.evaluate({0.0});  // r2 || r3 = 500 against r1 = 1k
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR((*m)[0], 1.0 / 3.0, 1e-9);
}

TEST(NetlistParse, CommentLineBetweenContinuations) {
  const auto c = load(
      "vs in 0\n"
      "* annotation between card and continuation\n"
      "+ 1.0\n"
      "r1 in out 1k\n"
      ".var u 1 2 lin\n"
      "r2 out 0 {u}\n"
      ".spec objective V V = vdc(out)\n");
  EXPECT_DOUBLE_EQ(c.elaborate({0.5}).circuit.vsources()[0].dc, 1.0);
}

TEST(NetlistParse, DiodeModelOverridesApply) {
  const auto c = load(
      ".model dx d is=2e-15 n=1.2 xti=2.5\n"
      "vs in 0 1.0\n"
      "r1 in out 1k\n"
      "d1 out 0 dx area=2\n"
      ".var u 1 2 lin\n"
      "r2 out 0 {u*1k}\n"
      ".spec objective V V = vdc(out)\n");
  const auto elab = c.elaborate({0.5});
  ASSERT_EQ(elab.circuit.diodes().size(), 1u);
  EXPECT_DOUBLE_EQ(elab.circuit.diodes()[0].is_sat, 2e-15);
  EXPECT_DOUBLE_EQ(elab.circuit.diodes()[0].ideality, 1.2);
  EXPECT_DOUBLE_EQ(elab.circuit.diodes()[0].xti, 2.5);
  EXPECT_DOUBLE_EQ(elab.circuit.diodes()[0].area, 2.0);  // card override wins
}

TEST(NetlistParse, SubcktFlatteningWithParams) {
  const auto c = load(
      ".subckt div a b rtopv=1k rbotv=1k\n"
      "rtop a m {rtopv}\n"
      "rbot m b {rbotv}\n"
      ".ends\n"
      "vs in 0 1.0\n"
      "x1 in out div rtopv=2k\n"
      "x2 out 0 div rbotv=3k\n"
      ".var u 1 2 lin\n"
      "rl out 0 {u*1e3}\n"
      ".spec objective V V = vdc(out)\n");
  const auto elab = c.elaborate({0.0});
  ASSERT_EQ(elab.circuit.resistors().size(), 5u);
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[0].r, 2e3);  // x1 rtop override
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[1].r, 1e3);  // x1 rbot default
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[2].r, 1e3);  // x2 rtop default
  EXPECT_DOUBLE_EQ(elab.circuit.resistors()[3].r, 3e3);  // x2 rbot override
  // Flat node names: in, out, x1.m, x2.m -> 4 named nodes + ground.
  EXPECT_EQ(elab.circuit.n_nodes(), 5u);
  EXPECT_EQ(elab.nodes.count("x1.m"), 1u);
  EXPECT_EQ(elab.nodes.count("x2.m"), 1u);
}

TEST(NetlistCircuit, DcDividerEvaluates) {
  const auto c = load(
      "vs in 0 1.0\n"
      ".var rr 500 2000 lin\n"
      "r1 in out 1k\n"
      "r2 out 0 {rr}\n"
      ".spec objective Vout V = vdc(out)\n");
  EXPECT_EQ(c.dim(), 1u);
  EXPECT_EQ(c.n_metrics(), 1u);
  EXPECT_EQ(c.objective_name(), "Vout(V)");
  // Default expert: mid-box.
  EXPECT_DOUBLE_EQ(c.expert_design()[0], 0.5);
  const double u = 0.25;
  const double rr = 500.0 + u * 1500.0;
  const auto m = c.evaluate({u});
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR((*m)[0], rr / (1000.0 + rr), 1e-9);
}

// ---------------------------------------------------------------------------
// Diagnostics: every rejection carries file/line.

TEST(NetlistDiag, MalformedCardCarriesLine) {
  expect_diag(
      "vs in 0 1.0\n"
      "r1 in out\n"  // missing value
      ".spec objective V V = vdc(in)\n",
      2, "expected a value");
}

TEST(NetlistDiag, UndefinedParamCarriesLine) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "r2 out 0 {nope}\n"
      ".spec objective V V = vdc(out)\n",
      4, "undefined parameter or variable 'nope'");
}

TEST(NetlistDiag, DanglingNodeCarriesLine) {
  expect_diag(
      "vs in 0 1.0\n"
      "r1 in out 1k\n"  // 'out' touched once
      "r2 in 0 2k\n"
      ".var u 1 2 lin\n"
      "r3 in 0 {u}\n"
      ".spec objective V V = vdc(in)\n",
      2, "dangling node 'out'");
}

TEST(NetlistDiag, DanglingNodeBehindSubcktPortIsCaught) {
  // The X-card port connection itself is wiring, not a terminal: 'out' is
  // only touched by the single capacitor inside the subckt, so it must
  // still lint as dangling.
  expect_diag(
      ".subckt load a\n"
      "c1 a 0 1p\n"
      ".ends\n"
      "vs in 0 1.0\n"
      "r1 in 0 1k\n"
      ".var u 1 2 lin\n"
      "r2 in 0 {u}\n"
      "x1 out load\n"
      ".spec objective V V = vdc(in)\n",
      8, "dangling node 'out'");
}

TEST(NetlistDiag, UnknownDiodeModelCarriesLine) {
  expect_diag(
      "vs in 0 1.0\n"
      "r1 in out 1k\n"
      "d1 out 0 nope\n"
      ".var u 1 2 lin\n"
      "r2 out 0 {u}\n"
      ".spec objective V V = vdc(out)\n",
      3, "unknown diode model 'nope'");
}

TEST(NetlistDiag, MissingAcPointsAtTheAcConstraint) {
  // The diagnostic must anchor at the AC measure that needs the sweep, not
  // at the (DC-only) objective.
  expect_diag(
      "vs in 0 1.0 ac 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "c1 out 0 1p\n"
      ".spec objective V V = vdc(out)\n"
      ".spec G dB >= 10 = gain_db(out)\n",
      6, "no '.ac");
}

TEST(NetlistDiag, CyclicSubcktCarriesLine) {
  expect_diag(
      ".subckt a x y\n"
      "xb x y b\n"
      ".ends\n"
      ".subckt b x y\n"
      "xa x y a\n"  // closes the a -> b -> a cycle
      ".ends\n"
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in 0 {u}\n"
      "x1 in 0 a\n"
      ".spec objective V V = vdc(in)\n",
      5, "cyclic subckt");
}

TEST(NetlistDiag, AcMeasureWithoutAcLine) {
  expect_diag(
      "vs in 0 1.0 ac 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "c1 out 0 1p\n"
      ".spec objective G dB = gain_db(out)\n",
      5, "no '.ac");
}

TEST(NetlistDiag, UnknownModelCarriesLine) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "m1 out in 0 nch w=1u l=1u\n"
      ".spec objective V V = vdc(out)\n",
      4, "unknown MOSFET model 'nch'");
}

TEST(NetlistDiag, MeasureFunctionOutsideSpec) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "r2 out 0 {vdc(out)}\n"
      ".spec objective V V = vdc(out)\n",
      4, "only valid in .spec");
}

TEST(NetlistDiag, UnknownMeasureListsSupportedSet) {
  // The unknown-measure diagnostic names the whole supported set, so a typo
  // in a .spec line is self-documenting.
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "r2 out 0 1k\n"
      ".spec objective V V = slewrate(out)\n",
      5,
      "unknown measure function 'slewrate' (supported: avg_power gain_db "
      "gain_db_at isupply ivsrc overshoot pm prop_delay settling_time "
      "slew_rate ugf value_at vdc vmax vmin)");
}

TEST(NetlistDiag, UnknownDirectiveListsSupportedSet) {
  expect_diag(
      "vs in 0 1.0\n"
      ".noise out\n",
      2,
      "unknown directive '.noise' (supported: .title .param .var .model "
      ".subckt/.ends .ac .tran .ic .temp .spec .corner .mc .expert .end)");
}

TEST(NetlistDiag, UnknownMeasureTarget) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "r2 out 0 1k\n"
      ".spec objective V V = vdc(nowhere)\n",
      5, "unknown node 'nowhere'");
}

TEST(NetlistDiag, MissingObjective) {
  try {
    load(
        "vs in 0 1.0\n"
        ".var u 1 2 lin\n"
        "r1 in out {u}\n"
        "r2 out 0 1k\n"
        ".spec V V >= 0.1 = vdc(out)\n");
    FAIL() << "deck without objective accepted";
  } catch (const net::NetlistError& err) {
    EXPECT_NE(std::string(err.what()).find("no '.spec objective'"),
              std::string::npos)
        << err.what();
  }
}

TEST(NetlistDiag, DuplicateParam) {
  try {
    net::parse_netlist(".param a = 1\n.param a = 2\n", "test.cir");
    FAIL() << "duplicate .param accepted";
  } catch (const net::NetlistError& err) {
    EXPECT_EQ(err.line(), 2);
    EXPECT_NE(std::string(err.what()).find("duplicate parameter 'a'"),
              std::string::npos);
  }
}

TEST(NetlistDiag, BadVarRangeCarriesLine) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 2 1 lin\n"  // lo > hi
      "r1 in out {u}\n"
      "r2 out 0 1k\n"
      ".spec objective V V = vdc(out)\n",
      2, "need lo < hi");
}

// ---------------------------------------------------------------------------
// Factory integration.

TEST(NetlistFactory, LoadsDeckAndListsKindsOnError) {
  const auto c = ckt::make_circuit("netlist:" + deck_path("opamp2.cir"), "180nm");
  EXPECT_EQ(c->name(), "netlist-opamp2-180nm");
  EXPECT_EQ(c->dim(), 8u);

  try {
    ckt::make_circuit("opamp9", "180nm");
    FAIL() << "unknown kind accepted";
  } catch (const std::invalid_argument& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("opamp9"), std::string::npos);
    EXPECT_NE(msg.find("registered kinds"), std::string::npos);
    EXPECT_NE(msg.find("netlist:"), std::string::npos);
  }
  EXPECT_THROW(ckt::make_circuit("netlist:/no/such/deck.cir", "180nm"),
               std::invalid_argument);
  try {
    ckt::make_circuit("opamp2", "28nm");
    FAIL() << "unknown node accepted";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("180nm"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Golden equivalence with the hand-written two-stage OpAmp.

class NetlistGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(NetlistGolden, SpaceAndSpecsMatchHardcoded) {
  const auto hard = ckt::make_circuit("opamp2", GetParam());
  const auto soft =
      ckt::make_circuit("netlist:" + deck_path("opamp2.cir"), GetParam());
  const auto& hs = hard->space();
  const auto& ss = soft->space();
  ASSERT_EQ(hs.dim(), ss.dim());
  for (std::size_t i = 0; i < hs.dim(); ++i) {
    EXPECT_DOUBLE_EQ(hs.lo[i], ss.lo[i]) << "var " << i;
    EXPECT_DOUBLE_EQ(hs.hi[i], ss.hi[i]) << "var " << i;
    EXPECT_EQ(hs.log_scale[i], ss.log_scale[i]) << "var " << i;
  }
  ASSERT_EQ(hard->constraints().size(), soft->constraints().size());
  for (std::size_t i = 0; i < hard->constraints().size(); ++i) {
    EXPECT_DOUBLE_EQ(hard->constraints()[i].bound, soft->constraints()[i].bound);
    EXPECT_EQ(hard->constraints()[i].is_lower_bound,
              soft->constraints()[i].is_lower_bound);
    EXPECT_EQ(hard->constraints()[i].name, soft->constraints()[i].name);
  }
  EXPECT_EQ(hard->objective_name(), soft->objective_name());
}

TEST_P(NetlistGolden, MetricsMatchHardcodedOnSeededPoints) {
  const auto hard = ckt::make_circuit("opamp2", GetParam());
  const auto soft =
      ckt::make_circuit("netlist:" + deck_path("opamp2.cir"), GetParam());

  // Expert design: identical coordinates and identical metrics.
  ASSERT_EQ(hard->expert_design(), soft->expert_design());
  const auto em_h = hard->evaluate(hard->expert_design());
  const auto em_s = soft->evaluate(soft->expert_design());
  ASSERT_TRUE(em_h && em_s);
  for (std::size_t j = 0; j < em_h->size(); ++j)
    EXPECT_NEAR((*em_h)[j], (*em_s)[j], 1e-9);

  kato::util::Rng rng(GetParam() == std::string("180nm") ? 1234 : 4321);
  int compared = 0;
  for (int i = 0; i < 30; ++i) {
    const auto x = rng.uniform_vec(hard->dim());
    const auto a = hard->evaluate(x);
    const auto b = soft->evaluate(x);
    ASSERT_EQ(a.has_value(), b.has_value()) << "point " << i;
    if (!a) continue;
    ++compared;
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t j = 0; j < a->size(); ++j)
      EXPECT_NEAR((*a)[j], (*b)[j], 1e-9) << "point " << i << " metric " << j;
  }
  // The acceptance bar: >= 16 successfully simulated points per node.
  EXPECT_GE(compared, 16);
}

INSTANTIATE_TEST_SUITE_P(BothNodes, NetlistGolden,
                         ::testing::Values("180nm", "40nm"));

// ---------------------------------------------------------------------------
// Seeded BO on decks (slow label).

TEST(NetlistBo, SeededFiveIterationRunIsReproducible) {
  const auto c = ckt::make_circuit("netlist:" + deck_path("opamp2.cir"), "180nm");
  bo::BoConfig cfg;
  cfg.n_init = 14;
  cfg.iterations = 5;
  cfg.batch = 2;
  cfg.nsga.population = 12;
  cfg.nsga.generations = 6;
  cfg.max_gp_points = 96;
  cfg.hyper_every = 3;
  cfg.gp_initial.iterations = 15;
  cfg.gp_refit.iterations = 6;
  const auto r1 = bo::run_constrained(*c, bo::ConstrainedMethod::kato, cfg, 5);
  const auto r2 = bo::run_constrained(*c, bo::ConstrainedMethod::kato, cfg, 5);
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  EXPECT_EQ(r1.trace.size(), cfg.n_init + cfg.batch * cfg.iterations);
  for (std::size_t i = 0; i < r1.trace.size(); ++i)
    EXPECT_DOUBLE_EQ(r1.trace[i], r2.trace[i]) << "sim " << i;
  ASSERT_EQ(r1.x_history.size(), r2.x_history.size());
  for (std::size_t i = 0; i < r1.x_history.size(); ++i)
    EXPECT_EQ(r1.x_history[i], r2.x_history[i]) << "sim " << i;
}

TEST(NetlistBo, TransferBetweenTwoNetlistVariants) {
  // KAT/STL transfer with BOTH endpoints defined by decks: source knowledge
  // from opamp2.cir feeds a KATO run on the opamp2_fast.cir variant.
  const auto src = ckt::make_circuit("netlist:" + deck_path("opamp2.cir"), "180nm");
  const auto tgt =
      ckt::make_circuit("netlist:" + deck_path("opamp2_fast.cir"), "180nm");
  bo::BoConfig cfg;
  cfg.n_init = 10;
  cfg.iterations = 2;
  cfg.batch = 2;
  cfg.nsga.population = 12;
  cfg.nsga.generations = 6;
  cfg.max_gp_points = 64;
  cfg.hyper_every = 2;
  cfg.gp_initial.iterations = 12;
  cfg.gp_refit.iterations = 5;
  cfg.kat.init_iterations = 40;
  cfg.kat.refit_iterations = 8;
  const auto cmp = core::run_transfer_comparison(*src, *tgt, 40, cfg, {1},
                                                 bo::KernelKind::rbf, 7);
  EXPECT_GT(cmp.source.x.rows(), 0u);
  EXPECT_EQ(cmp.source.dim, src->dim());
  ASSERT_EQ(cmp.with_transfer.runs.size(), 1u);
  ASSERT_EQ(cmp.without_transfer.runs.size(), 1u);
  const std::size_t expect_sims = cfg.n_init + cfg.batch * cfg.iterations;
  EXPECT_EQ(cmp.with_transfer.runs[0].trace.size(), expect_sims);
  EXPECT_EQ(cmp.without_transfer.runs[0].trace.size(), expect_sims);
}

// Transient engine: waveform evaluation, integrator golden accuracy against
// closed-form RC / oscillator solutions, observed convergence orders (trap
// ~2, backward Euler ~1), failure-reason plumbing (DcResult ->
// NetlistCircuit), netlist .tran/.ic/measure integration, golden
// equivalence of the shipped buffer_tran deck against the built-in
// StepBuffer workload, and seeded transient-BO reproducibility across
// KATO_THREADS settings (TranBo suite — labelled slow in CTest).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "bo/drivers.hpp"
#include "circuits/factory.hpp"
#include "netlist/netlist_circuit.hpp"
#include "sim/transient.hpp"
#include "util/rng.hpp"

namespace ckt = kato::ckt;
namespace net = kato::net;
namespace sim = kato::sim;
namespace bo = kato::bo;

#ifndef KATO_SOURCE_DIR
#define KATO_SOURCE_DIR "."
#endif

namespace {

std::string deck_path(const std::string& name) {
  return std::string(KATO_SOURCE_DIR) + "/circuits/netlists/" + name;
}

ckt::NetlistCircuit load(const std::string& text,
                         const std::string& node = "180nm") {
  return ckt::NetlistCircuit(net::parse_netlist(text, "test.cir"),
                             ckt::pdk_by_name(node));
}

/// RC to ground, charged to 1 V via an initial condition: v = e^{-t/tau}.
sim::Circuit rc_discharge(int& node, double r = 1e3, double c = 1e-6) {
  sim::Circuit ckt;
  node = ckt.new_node("a");
  ckt.add_resistor(node, sim::Circuit::ground, r);
  ckt.add_capacitor(node, sim::Circuit::ground, c);
  return ckt;
}

double rc_discharge_max_error(const sim::TranResult& res, int node,
                              double tau) {
  double max_err = 0.0;
  for (std::size_t i = 0; i < res.n_points(); ++i)
    max_err = std::max(max_err,
                       std::abs(res.v(i, node) - std::exp(-res.time[i] / tau)));
  return max_err;
}

/// RAII guard for the KATO_THREADS knob.
class ThreadsEnv {
 public:
  explicit ThreadsEnv(const char* value) {
    if (value == nullptr)
      unsetenv("KATO_THREADS");
    else
      setenv("KATO_THREADS", value, 1);
  }
  ~ThreadsEnv() { unsetenv("KATO_THREADS"); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Waveform evaluation.

TEST(Waveform, PulseShape) {
  sim::Waveform w;
  w.kind = sim::Waveform::Kind::pulse;
  w.v1 = 0.0;
  w.v2 = 2.0;
  w.td = 1e-6;
  w.tr = 1e-7;
  w.tf = 2e-7;
  w.pw = 1e-6;
  w.period = 4e-6;
  EXPECT_DOUBLE_EQ(sim::waveform_value(w, -1.0, 0.0), 0.0);   // before td
  EXPECT_NEAR(sim::waveform_value(w, -1.0, 1.05e-6), 1.0, 1e-12);  // mid-rise
  EXPECT_DOUBLE_EQ(sim::waveform_value(w, -1.0, 1.5e-6), 2.0);     // plateau
  EXPECT_NEAR(sim::waveform_value(w, -1.0, 1e-6 + 1e-7 + 1e-6 + 1e-7), 1.0,
              1e-12);  // mid-fall
  EXPECT_DOUBLE_EQ(sim::waveform_value(w, -1.0, 3e-6), 0.0);  // back at v1
  // One period later: plateau again.
  EXPECT_DOUBLE_EQ(sim::waveform_value(w, -1.0, 5.5e-6), 2.0);
}

TEST(Waveform, PwlAndSineShape) {
  sim::Waveform pwl;
  pwl.kind = sim::Waveform::Kind::pwl;
  pwl.t = {1.0, 2.0, 4.0};
  pwl.v = {0.0, 1.0, -1.0};
  EXPECT_DOUBLE_EQ(sim::waveform_value(pwl, 9.0, 0.5), 0.0);  // clamped left
  EXPECT_DOUBLE_EQ(sim::waveform_value(pwl, 9.0, 1.5), 0.5);
  EXPECT_DOUBLE_EQ(sim::waveform_value(pwl, 9.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(sim::waveform_value(pwl, 9.0, 5.0), -1.0);  // clamped right

  sim::Waveform s;
  s.kind = sim::Waveform::Kind::sine;
  s.vo = 0.5;
  s.va = 2.0;
  s.freq = 1e3;
  s.td = 1e-3;
  EXPECT_DOUBLE_EQ(sim::waveform_value(s, 7.0, 0.0), 0.5);  // before td
  EXPECT_NEAR(sim::waveform_value(s, 7.0, 1e-3 + 0.25e-3), 2.5, 1e-9);
  // The quiet default stays at dc.
  EXPECT_DOUBLE_EQ(sim::waveform_value(sim::Waveform{}, 7.0, 123.0), 7.0);
}

TEST(Waveform, ValidationRejectsMalformed) {
  sim::Circuit ckt;
  const int a = ckt.new_node("a");
  sim::Waveform w;
  w.kind = sim::Waveform::Kind::pulse;
  w.v1 = 0.0;
  w.v2 = 1.0;
  w.tr = 0.0;  // instant edges are not representable
  w.tf = 1e-9;
  EXPECT_THROW(ckt.add_vsource(a, 0, 0.0, 0.0, w), std::invalid_argument);
  sim::Waveform pwl;
  pwl.kind = sim::Waveform::Kind::pwl;
  pwl.t = {0.0, 1.0, 0.5};
  pwl.v = {0.0, 1.0, 2.0};
  EXPECT_THROW(ckt.add_vsource(a, 0, 0.0, 0.0, pwl), std::invalid_argument);
}

TEST(Waveform, PwlBinarySearchMatchesLinearScanBitExactly) {
  // Dense PWL ramp with irregular spacing; the binary-search lookup must
  // select the same segment — and therefore the bit-identical interpolated
  // value — as the original linear scan, replicated here verbatim.
  sim::Waveform w;
  w.kind = sim::Waveform::Kind::pwl;
  kato::util::Rng rng(99);
  double t = 0.0;
  for (int i = 0; i < 512; ++i) {
    t += 1e-9 * (0.1 + rng.uniform());
    w.t.push_back(t);
    w.v.push_back(std::sin(0.37 * static_cast<double>(i)) + rng.uniform());
  }
  auto linear_scan = [&](double time) {
    if (time <= w.t.front()) return w.v.front();
    if (time >= w.t.back()) return w.v.back();
    std::size_t i = 1;
    while (w.t[i] < time) ++i;
    const double f = (time - w.t[i - 1]) / (w.t[i] - w.t[i - 1]);
    return w.v[i - 1] + f * (w.v[i] - w.v[i - 1]);
  };
  // Uniform queries across (and beyond) the span, plus every breakpoint
  // exactly and points just off each breakpoint.
  for (int q = -10; q < 2100; ++q) {
    const double time = static_cast<double>(q) * (t / 2000.0);
    EXPECT_EQ(sim::waveform_value(w, 0.0, time), linear_scan(time)) << time;
  }
  for (std::size_t i = 0; i < w.t.size(); ++i) {
    EXPECT_EQ(sim::waveform_value(w, 0.0, w.t[i]), linear_scan(w.t[i])) << i;
    const double eps = 1e-12;
    EXPECT_EQ(sim::waveform_value(w, 0.0, w.t[i] - eps),
              linear_scan(w.t[i] - eps));
    EXPECT_EQ(sim::waveform_value(w, 0.0, w.t[i] + eps),
              linear_scan(w.t[i] + eps));
  }
}

// ---------------------------------------------------------------------------
// tran_prop_delay contract: never negative, missing crossing = 2x window.

namespace {

/// Hand-built two-node result: index 1 = in, index 2 = out.
sim::TranResult two_node_result(const std::vector<double>& time,
                                const std::vector<double>& vin,
                                const std::vector<double>& vout) {
  sim::TranResult res;
  res.ok = true;
  res.time = time;
  for (std::size_t i = 0; i < time.size(); ++i) {
    kato::la::Vector v(3, 0.0);
    v[1] = vin[i];
    v[2] = vout[i];
    res.node_voltage.push_back(std::move(v));
  }
  return res;
}

}  // namespace

TEST(PropDelay, PositiveDelayUnchanged) {
  // in crosses 0.5 at t=1, out at t=3 -> delay 2.
  const auto res = two_node_result({0, 1, 2, 3, 4},
                                   {0, 0.5, 1, 1, 1},
                                   {0, 0, 0, 0.5, 1});
  EXPECT_DOUBLE_EQ(sim::tran_prop_delay(res, 1, 2), 2.0);
}

TEST(PropDelay, OutputLeadingInputClampsAtZero) {
  // out crosses 0.5 at t=1, in at t=3: the raw difference is -2 and used
  // to be returned as-is, poisoning worst-case aggregation.
  const auto res = two_node_result({0, 1, 2, 3, 4},
                                   {0, 0, 0, 0.5, 1},
                                   {0, 0.5, 1, 1, 1});
  EXPECT_DOUBLE_EQ(sim::tran_prop_delay(res, 1, 2), 0.0);
}

TEST(PropDelay, MissingCrossingReturnsTwiceWindowSentinel) {
  // Flat output never completes a swing -> sentinel 2 * window, finite yet
  // strictly larger than any genuine delay (always < window).
  const auto flat_out = two_node_result({0, 1, 2, 3, 4},
                                        {0, 0.5, 1, 1, 1},
                                        {0, 0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(sim::tran_prop_delay(flat_out, 1, 2), 8.0);
  const auto flat_in = two_node_result({0, 1, 2, 3, 4},
                                       {0, 0, 0, 0, 0},
                                       {0, 0.5, 1, 1, 1});
  EXPECT_DOUBLE_EQ(sim::tran_prop_delay(flat_in, 1, 2), 8.0);
  // Degenerate results keep returning 0.
  EXPECT_DOUBLE_EQ(sim::tran_prop_delay(two_node_result({0}, {0}, {0}), 1, 2),
                   0.0);
}

// ---------------------------------------------------------------------------
// Integrator golden accuracy (closed-form solutions).

TEST(TranRc, DischargeMatchesAnalyticAdaptive) {
  int a = 0;
  const auto ckt = rc_discharge(a);
  sim::TranOptions opts;  // default adaptive trapezoidal tolerances
  opts.tstop = 5e-3;      // 5 tau
  opts.tstep = 5e-6;
  opts.initial_conditions = {{a, 1.0}};
  const auto res = sim::solve_tran(ckt, opts);
  ASSERT_TRUE(res.ok) << res.reason;
  EXPECT_DOUBLE_EQ(res.v(0, a), 1.0);  // IC honored
  EXPECT_LT(rc_discharge_max_error(res, a, 1e-3), 2e-4);
  EXPECT_NEAR(res.time.back(), 5e-3, 1e-12);
}

TEST(TranRc, StepResponseWithin1e6) {
  // Pulse-driven RC charge: after the (fast) edge the output follows
  // 1 - e^{-t'/tau}.  Trapezoidal, default tolerances, fixed tau/1000 grid:
  // the acceptance bar is 1e-6 absolute against the closed form.
  sim::Circuit ckt;
  const int in = ckt.new_node("in");
  const int out = ckt.new_node("out");
  sim::Waveform w;
  w.kind = sim::Waveform::Kind::pulse;
  w.v1 = 0.0;
  w.v2 = 1.0;
  w.td = 0.0;
  w.tr = 1e-9;  // edge much faster than tau = 1 ms
  w.tf = 1e-9;
  w.pw = 1.0;
  w.period = 0.0;
  ckt.add_vsource(in, sim::Circuit::ground, 0.0, 0.0, w);
  ckt.add_resistor(in, out, 1e3);
  ckt.add_capacitor(out, sim::Circuit::ground, 1e-6);

  sim::TranOptions opts;  // default trapezoidal tolerances
  opts.tstop = 5e-3;
  opts.tstep = 1e-6;  // tau / 1000
  opts.fixed_step = true;
  const auto res = sim::solve_tran(ckt, opts);
  ASSERT_TRUE(res.ok) << res.reason;
  double max_err = 0.0;
  for (std::size_t i = 0; i < res.n_points(); ++i) {
    const double t = res.time[i] - 1e-9;  // measure from the edge end
    if (t < 1e-6) continue;  // skip the sub-resolution edge interval
    const double exact = 1.0 - std::exp(-t / 1e-3);
    max_err = std::max(max_err, std::abs(res.v(i, out) - exact));
  }
  EXPECT_LT(max_err, 1e-6);
}

TEST(TranOrder, TrapezoidalIsSecondOrder) {
  int a = 0;
  const auto ckt = rc_discharge(a);
  auto run = [&](double h) {
    sim::TranOptions opts;
    opts.tstop = 5e-3;
    opts.tstep = h;
    opts.fixed_step = true;
    opts.initial_conditions = {{a, 1.0}};
    const auto res = sim::solve_tran(ckt, opts);
    EXPECT_TRUE(res.ok) << res.reason;
    return rc_discharge_max_error(res, a, 1e-3);
  };
  const double coarse = run(5e-6);
  const double fine = run(2.5e-6);
  // Halving the step divides the error by ~4.
  EXPECT_NEAR(coarse / fine, 4.0, 0.7);
}

TEST(TranOrder, BackwardEulerIsFirstOrder) {
  int a = 0;
  const auto ckt = rc_discharge(a);
  auto run = [&](double h) {
    sim::TranOptions opts;
    opts.tstop = 5e-3;
    opts.tstep = h;
    opts.fixed_step = true;
    opts.backward_euler = true;
    opts.initial_conditions = {{a, 1.0}};
    const auto res = sim::solve_tran(ckt, opts);
    EXPECT_TRUE(res.ok) << res.reason;
    return rc_discharge_max_error(res, a, 1e-3);
  };
  const double coarse = run(5e-6);
  const double fine = run(2.5e-6);
  // Halving the step divides the error by ~2 — and BE is far less accurate
  // than trapezoidal at the same step (see TrapezoidalIsSecondOrder).
  EXPECT_NEAR(coarse / fine, 2.0, 0.3);
  EXPECT_GT(fine, 1e-4);
}

TEST(TranOsc, TrapezoidalPreservesOscillation) {
  // Gyrator-coupled capacitor pair — the RLC-style second-order system:
  //   C va' = -g vb,  C vb' = g va  =>  va = cos(w t), w = g / C.
  // The A-stable trapezoidal rule preserves the amplitude; backward Euler
  // damps it artificially.
  sim::Circuit ckt;
  const int a = ckt.new_node("a");
  const int b = ckt.new_node("b");
  const double g = 1e-3;
  const double c = 1e-6;  // w = 1e3 rad/s
  ckt.add_capacitor(a, sim::Circuit::ground, c);
  ckt.add_capacitor(b, sim::Circuit::ground, c);
  ckt.add_vccs(a, sim::Circuit::ground, b, sim::Circuit::ground, g);
  ckt.add_vccs(b, sim::Circuit::ground, a, sim::Circuit::ground, -g);

  const double period = 2.0 * M_PI / (g / c);
  sim::TranOptions opts;
  opts.tstop = 3.0 * period;
  opts.tstep = period / 400.0;
  opts.fixed_step = true;
  opts.initial_conditions = {{a, 1.0}};
  const auto trap = sim::solve_tran(ckt, opts);
  ASSERT_TRUE(trap.ok) << trap.reason;
  double max_err = 0.0;
  for (std::size_t i = 0; i < trap.n_points(); ++i)
    max_err = std::max(max_err, std::abs(trap.v(i, a) -
                                         std::cos(1e3 * trap.time[i])));
  EXPECT_LT(max_err, 2e-3);  // amplitude and phase both held over 3 periods

  sim::TranOptions be = opts;
  be.backward_euler = true;
  const auto damped = sim::solve_tran(ckt, be);
  ASSERT_TRUE(damped.ok) << damped.reason;
  // BE's artificial damping shrinks the final-cycle amplitude noticeably;
  // the trapezoidal rule holds it (compare the peak after t = 2 periods).
  auto late_peak = [&](const sim::TranResult& r) {
    double peak = 0.0;
    for (std::size_t i = 0; i < r.n_points(); ++i)
      if (r.time[i] >= 2.0 * period)
        peak = std::max(peak, std::abs(r.v(i, a)));
    return peak;
  };
  EXPECT_LT(late_peak(damped), 0.95);
  EXPECT_GT(late_peak(trap), 0.999);
}

// ---------------------------------------------------------------------------
// Failure reasons: DcResult -> solve_tran -> NetlistCircuit.

TEST(TranReason, DcFailureCarriesReason) {
  sim::Circuit ckt;
  const int n = ckt.new_node("float");
  ckt.add_isource(sim::Circuit::ground, n, -1e-3);
  const auto op = sim::solve_dc(ckt);
  ASSERT_FALSE(op.converged);
  EXPECT_FALSE(op.reason.empty());
  EXPECT_NE(op.reason.find("Newton did not converge"), std::string::npos)
      << op.reason;
  EXPECT_NE(op.reason.find("gmin="), std::string::npos) << op.reason;

  sim::TranOptions opts;
  opts.tstop = 1e-6;
  const auto res = sim::solve_tran(ckt, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("t=0 operating point failed"), std::string::npos)
      << res.reason;
}

TEST(TranReason, BadOptionsCarryReason) {
  int a = 0;
  const auto ckt = rc_discharge(a);
  sim::TranOptions opts;  // tstop unset
  const auto res = sim::solve_tran(ckt, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("tstop"), std::string::npos);
}

TEST(TranReason, NetlistSurfacesDcFailure) {
  // 1 mA into 1 GOhm wants 1 MV: the DC sanity screen rejects it and the
  // reason must reach the NetlistCircuit caller.
  const auto c = load(
      "i1 0 a 1m\n"
      "r1 a 0 1e9\n"
      ".var u 1 2 lin\n"
      "r2 a 0 {u*1e9}\n"
      ".spec objective V V = vdc(a)\n");
  const auto outcome = c.evaluate_detailed({0.5});
  EXPECT_FALSE(outcome.metrics.has_value());
  EXPECT_NE(outcome.failure.find("DC operating point failed"),
            std::string::npos)
      << outcome.failure;
  // The sim::DcResult reason travels through (not a bare "failed").
  EXPECT_GT(outcome.failure.size(),
            std::string("DC operating point failed: ").size());
  EXPECT_FALSE(c.evaluate({0.5}).has_value());
}

// ---------------------------------------------------------------------------
// Netlist integration: .tran / .ic / waveforms / transient measures.

TEST(NetlistTran, RcDeckMatchesAnalytic) {
  // RC discharge expressed entirely as a deck: .ic starts the cap at 1 V,
  // the transient measures read the decay.
  const auto c = load(
      ".var rr 900 1100 lin\n"
      "r1 a 0 {rr}\n"
      "c1 a 0 1u\n"
      "r2 a 0 2k\n"
      ".tran 2u 2m fixed\n"
      ".ic v(a)=1\n"
      ".spec objective Vend V = vmax(a) - 1\n"
      ".spec Vmin V <= 1 = vmin(a)\n"
      ".spec Vhalf V <= 1 = value_at(a, 500u)\n");
  // u = 0.5 -> rr = 1000 || 2k = 666.67 ohm, tau = 666.67 us.
  const auto m = c.evaluate({0.5});
  ASSERT_TRUE(m.has_value());
  // vmax = initial 1 V; objective = vmax - 1 = 0.
  EXPECT_NEAR((*m)[0], 0.0, 1e-9);
  // vmin = final value: exp(-2m / 666.67u) = exp(-3).
  EXPECT_NEAR((*m)[1], std::exp(-3.0), 1e-4);
  // value_at samples the decay: exp(-500u / 666.67u) = exp(-0.75).
  EXPECT_NEAR((*m)[2], std::exp(-0.75), 1e-4);
}

TEST(NetlistTran, PulseMeasuresEvaluate) {
  const auto c = load(
      "vin in 0 pulse(0 1 10u 1u 1u 1 0)\n"
      "r1 in out 1k\n"
      "c1 out 0 1n\n"  // tau = 1 us
      ".var u 1 2 lin\n"
      "r2 out 0 {u*1e9}\n"
      ".tran 20n 40u\n"
      ".spec objective Delay s = prop_delay(in, out)\n"
      ".spec Slew V/s >= 1 = slew_rate(out)\n"
      ".spec Settle s <= 1 = settling_time(out, 0.01)\n"
      ".spec Peak V <= 2 = vmax(out)\n");
  const auto m = c.evaluate({0.5});
  ASSERT_TRUE(m.has_value());
  // Single-pole delay from 50% input to 50% output ~ tau ln 2.
  EXPECT_NEAR((*m)[0], 1e-6 * std::log(2.0), 0.15e-6);
  // RC exponential 10-90 slew ~ 0.8 / (2.2 tau), stretched a little by the
  // 1 us input ramp.
  EXPECT_NEAR((*m)[1], 0.8 / (2.2e-6), 0.1 * 0.8 / 2.2e-6);
  // 1% settling ~ td + edge + tau ln(100).
  EXPECT_NEAR((*m)[2], 11e-6 + 4.6e-6, 0.6e-6);
  EXPECT_NEAR((*m)[3], 1.0, 1e-3);
}

TEST(NetlistTran, OmittedDcUsesWaveformStart) {
  const auto c = load(
      "vin in 0 pulse(0.25 1 1u 10n 10n 1 0)\n"
      "r1 in out 1k\n"
      "r2 out 0 1k\n"
      ".var u 1 2 lin\n"
      "r3 out 0 {u*1e9}\n"
      ".tran 10n 2u\n"
      ".spec objective V V = vdc(out)\n");
  const auto m = c.evaluate({0.5});
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR((*m)[0], 0.125, 1e-6);  // divider of the waveform's t=0 value
}

// ---------------------------------------------------------------------------
// Diagnostics (file/line + supported sets).

namespace {

/// Expect construction to throw a NetlistError on `line` whose message
/// contains `needle`.
void expect_diag(const std::string& text, int line, const std::string& needle) {
  try {
    load(text);
    FAIL() << "deck accepted; expected diagnostic containing '" << needle << "'";
  } catch (const net::NetlistError& err) {
    EXPECT_EQ(err.line(), line) << err.what();
    EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
        << err.what();
  }
}

}  // namespace

TEST(NetlistTranDiag, TranMeasureWithoutTranLine) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "c1 out 0 1p\n"
      ".spec objective S V/s = slew_rate(out)\n",
      5, "no '.tran");
}

TEST(NetlistTranDiag, BadPulseArityCarriesLine) {
  expect_diag(
      "vin in 0 pulse(0 1 1u)\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "c1 out 0 1p\n"
      ".tran 1n 1u\n"
      ".spec objective V V = vmax(out)\n",
      1, "pulse needs 7 arguments");
}

TEST(NetlistTranDiag, BadIcNodeCarriesLine) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "c1 out 0 1p\n"
      ".tran 1n 1u\n"
      ".ic v(nowhere)=1\n"
      ".spec objective V V = vmax(out)\n",
      6, "unknown node 'nowhere' in .ic");
}

TEST(NetlistTranDiag, IcWithoutTran) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "c1 out 0 1p\n"
      ".ic v(out)=1\n"
      ".spec objective V V = vdc(out)\n",
      5, ".ic without a .tran");
}

TEST(NetlistTranDiag, BadTranRangeCarriesLine) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in out {u}\n"
      "c1 out 0 1p\n"
      ".tran 2u 1u\n"
      ".spec objective V V = vmax(out)\n",
      5, "0 < tstep <= tstop");
}

TEST(NetlistTranDiag, UnknownTranOptionListsSupported) {
  expect_diag(
      "vs in 0 1.0\n"
      ".var u 1 2 lin\n"
      "r1 in 0 {u}\n"
      ".tran 1n 1u euler\n"
      ".spec objective V V = vdc(in)\n",
      4, "(supported: fixed, be)");
}

// ---------------------------------------------------------------------------
// Golden equivalence with the built-in step-buffer workload.

class TranGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(TranGolden, SpaceAndSpecsMatchHardcoded) {
  const auto hard = ckt::make_circuit("buffer", GetParam());
  const auto soft =
      ckt::make_circuit("netlist:" + deck_path("buffer_tran.cir"), GetParam());
  const auto& hs = hard->space();
  const auto& ss = soft->space();
  ASSERT_EQ(hs.dim(), ss.dim());
  for (std::size_t i = 0; i < hs.dim(); ++i) {
    EXPECT_DOUBLE_EQ(hs.lo[i], ss.lo[i]) << "var " << i;
    EXPECT_DOUBLE_EQ(hs.hi[i], ss.hi[i]) << "var " << i;
    EXPECT_EQ(hs.log_scale[i], ss.log_scale[i]) << "var " << i;
  }
  ASSERT_EQ(hard->constraints().size(), soft->constraints().size());
  for (std::size_t i = 0; i < hard->constraints().size(); ++i) {
    EXPECT_DOUBLE_EQ(hard->constraints()[i].bound, soft->constraints()[i].bound);
    EXPECT_EQ(hard->constraints()[i].is_lower_bound,
              soft->constraints()[i].is_lower_bound);
    EXPECT_EQ(hard->constraints()[i].name, soft->constraints()[i].name);
    EXPECT_EQ(hard->constraints()[i].unit, soft->constraints()[i].unit);
  }
  EXPECT_EQ(hard->objective_name(), soft->objective_name());
}

TEST_P(TranGolden, MetricsMatchHardcodedOnSeededPoints) {
  const auto hard = ckt::make_circuit("buffer", GetParam());
  const auto soft =
      ckt::make_circuit("netlist:" + deck_path("buffer_tran.cir"), GetParam());

  // Expert design: identical coordinates and identical metrics.
  ASSERT_EQ(hard->expert_design(), soft->expert_design());
  const auto em_h = hard->evaluate(hard->expert_design());
  const auto em_s = soft->evaluate(soft->expert_design());
  ASSERT_TRUE(em_h && em_s);
  ASSERT_TRUE(hard->feasible(*em_h));  // the expert rows must be feasible
  for (std::size_t j = 0; j < em_h->size(); ++j)
    EXPECT_NEAR((*em_h)[j], (*em_s)[j], 1e-9);

  kato::util::Rng rng(GetParam() == std::string("180nm") ? 2024 : 4202);
  int compared = 0;
  for (int i = 0; i < 12; ++i) {
    const auto x = rng.uniform_vec(hard->dim());
    const auto a = hard->evaluate(x);
    const auto b = soft->evaluate(x);
    ASSERT_EQ(a.has_value(), b.has_value()) << "point " << i;
    if (!a) continue;
    ++compared;
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t j = 0; j < a->size(); ++j)
      EXPECT_NEAR((*a)[j], (*b)[j], 1e-9) << "point " << i << " metric " << j;
  }
  EXPECT_GE(compared, 8);
}

INSTANTIATE_TEST_SUITE_P(BothNodes, TranGolden,
                         ::testing::Values("180nm", "40nm"));

// ---------------------------------------------------------------------------
// Seeded transient BO (slow label): bit-identical across reruns and thread
// counts — the transient engine is pure double arithmetic, so the whole
// DC -> TRAN -> measures -> BO pipeline must reproduce exactly.

TEST(TranBo, SeededFiveIterationRunIsReproducible) {
  const auto c = ckt::make_circuit("buffer", "180nm");
  bo::BoConfig cfg;
  cfg.n_init = 12;
  cfg.iterations = 5;
  cfg.batch = 2;
  cfg.nsga.population = 12;
  cfg.nsga.generations = 6;
  cfg.max_gp_points = 96;
  cfg.hyper_every = 3;
  cfg.gp_initial.iterations = 15;
  cfg.gp_refit.iterations = 6;

  bo::RunResult r1, r2, r3;
  {
    ThreadsEnv env("1");
    r1 = bo::run_constrained(*c, bo::ConstrainedMethod::kato, cfg, 5);
    r2 = bo::run_constrained(*c, bo::ConstrainedMethod::kato, cfg, 5);
  }
  {
    ThreadsEnv env("4");
    r3 = bo::run_constrained(*c, bo::ConstrainedMethod::kato, cfg, 5);
  }
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  EXPECT_EQ(r1.trace.size(), cfg.n_init + cfg.batch * cfg.iterations);
  for (std::size_t i = 0; i < r1.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.trace[i], r2.trace[i]) << "sim " << i;
    EXPECT_DOUBLE_EQ(r1.trace[i], r3.trace[i]) << "sim " << i << " (threads)";
  }
  ASSERT_EQ(r1.x_history.size(), r3.x_history.size());
  for (std::size_t i = 0; i < r1.x_history.size(); ++i)
    EXPECT_EQ(r1.x_history[i], r3.x_history[i]) << "sim " << i;
}

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "circuits/factory.hpp"
#include "circuits/sizing_problem.hpp"
#include "util/rng.hpp"

namespace ckt = kato::ckt;

TEST(Pdk, NodesDiffer) {
  const auto& p180 = ckt::pdk_180nm();
  const auto& p40 = ckt::pdk_40nm();
  EXPECT_GT(p180.vdd, p40.vdd);
  EXPECT_GT(p180.lmin, p40.lmin);
  EXPECT_LT(p180.nmos.kp, p40.nmos.kp);
  EXPECT_THROW(ckt::pdk_by_name("7nm"), std::invalid_argument);
}

TEST(DesignSpace, LogAndLinearMapping) {
  ckt::DesignSpace s;
  s.add("log", 1.0, 100.0, true);
  s.add("lin", 0.0, 10.0, false);
  auto x = s.to_physical({0.5, 0.5});
  EXPECT_NEAR(x[0], 10.0, 1e-9);  // geometric midpoint
  EXPECT_NEAR(x[1], 5.0, 1e-9);   // arithmetic midpoint
  // Clamping out-of-box inputs.
  auto lo = s.to_physical({-1.0, -1.0});
  EXPECT_NEAR(lo[0], 1.0, 1e-12);
  EXPECT_NEAR(lo[1], 0.0, 1e-12);
}

TEST(DesignSpace, RejectsBadRanges) {
  ckt::DesignSpace s;
  EXPECT_THROW(s.add("bad", 5.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.add("bad-log", -1.0, 1.0, true), std::invalid_argument);
  EXPECT_THROW(s.add("equal", 2.0, 2.0), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(s.add("nan-lo", nan, 1.0), std::invalid_argument);
  EXPECT_THROW(s.add("inf-hi", 1.0, inf), std::invalid_argument);
  // Errors must name the offending variable — they surface from inside
  // sizing runs and netlist decks.
  try {
    s.add("w1", 5.0, 1.0);
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'w1'"), std::string::npos);
  }
  s.add("ok", 1.0, 2.0);
  EXPECT_THROW(s.add("ok", 1.0, 2.0), std::invalid_argument);  // duplicate
}

TEST(MetricSpec, DirectionsAndViolation) {
  ckt::MetricSpec lower{"Gain", "dB", 60.0, true};
  EXPECT_TRUE(lower.satisfied(65.0));
  EXPECT_FALSE(lower.satisfied(55.0));
  EXPECT_DOUBLE_EQ(lower.violation(55.0), 5.0);
  EXPECT_DOUBLE_EQ(lower.violation(65.0), 0.0);
  ckt::MetricSpec upper{"I", "uA", 6.0, false};
  EXPECT_TRUE(upper.satisfied(5.0));
  EXPECT_FALSE(upper.satisfied(7.5));
  EXPECT_DOUBLE_EQ(upper.violation(7.5), 1.5);
}

class CircuitFixture
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(CircuitFixture, ExpertDesignIsFeasible) {
  auto c = ckt::make_circuit(GetParam().first, GetParam().second);
  const auto m = c->evaluate(c->expert_design());
  ASSERT_TRUE(m.has_value()) << c->name();
  EXPECT_EQ(m->size(), c->n_metrics());
  EXPECT_TRUE(c->feasible(*m)) << c->name();
}

TEST_P(CircuitFixture, EvaluationIsDeterministic) {
  auto c = ckt::make_circuit(GetParam().first, GetParam().second);
  kato::util::Rng rng(3);
  const auto x = rng.uniform_vec(c->dim());
  const auto a = c->evaluate(x);
  const auto b = c->evaluate(x);
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a) {
    for (std::size_t i = 0; i < a->size(); ++i)
      EXPECT_DOUBLE_EQ((*a)[i], (*b)[i]);
  }
}

TEST_P(CircuitFixture, RandomSamplingMostlySimulates) {
  auto c = ckt::make_circuit(GetParam().first, GetParam().second);
  kato::util::Rng rng(9);
  int ok = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i)
    if (c->evaluate(rng.uniform_vec(c->dim()))) ++ok;
  // The drivers rely on a healthy success rate for surrogate fitting.
  EXPECT_GT(ok, n / 2) << c->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllCircuits, CircuitFixture,
    ::testing::Values(std::make_pair("opamp2", "180nm"),
                      std::make_pair("opamp2", "40nm"),
                      std::make_pair("opamp3", "180nm"),
                      std::make_pair("opamp3", "40nm"),
                      std::make_pair("bandgap", "180nm"),
                      std::make_pair("stage2", "180nm")));

TEST(TwoStage, MoreCurrentBuysBandwidth) {
  // Sizing trend: raising both stage currents from the expert point should
  // raise GBW (gm grows with I).
  auto c = ckt::make_circuit("opamp2", "180nm");
  auto x = c->expert_design();
  const auto base = c->evaluate(x);
  ASSERT_TRUE(base);
  auto x_hot = x;
  x_hot[6] = std::min(1.0, x[6] + 0.2);  // I1
  x_hot[7] = std::min(1.0, x[7] + 0.2);  // I2
  const auto hot = c->evaluate(x_hot);
  ASSERT_TRUE(hot);
  EXPECT_GT((*hot)[0], (*base)[0]);  // more current drawn
  EXPECT_GT((*hot)[3], (*base)[3]);  // more GBW
}

TEST(TwoStage, BiggerCompensationCapSlowsAmplifier) {
  auto c = ckt::make_circuit("opamp2", "180nm");
  auto x = c->expert_design();
  const auto base = c->evaluate(x);
  ASSERT_TRUE(base);
  auto x_cc = x;
  x_cc[4] = std::min(1.0, x[4] + 0.3);  // Cc up
  const auto slow = c->evaluate(x_cc);
  ASSERT_TRUE(slow);
  EXPECT_LT((*slow)[3], (*base)[3]);  // GBW drops
}

TEST(Bandgap, TcNullsNearRatioTen) {
  // The classic bandgap property: TC has a sharp minimum where the PTAT
  // gain R2/R1 cancels the CTAT slope (ratio ~10 for ln(8) area ratio).
  auto c = ckt::make_circuit("bandgap", "180nm");
  const auto& sp = c->space();
  auto unit_of = [&](std::size_t i, double v) {
    return std::log(v / sp.lo[i]) / std::log(sp.hi[i] / sp.lo[i]);
  };
  std::vector<double> base{0.5, 0.5, 0.6, 0.6, 0.0, 0.0, 0.5};
  base[4] = unit_of(4, 60e3);
  auto tc_at = [&](double ratio) {
    auto x = base;
    x[5] = unit_of(5, ratio * 60e3);
    const auto m = c->evaluate(x);
    return m ? (*m)[0] : 1e9;
  };
  const double at6 = tc_at(6.0);
  const double at10 = tc_at(10.0);
  const double at14 = tc_at(14.0);
  EXPECT_LT(at10, at6);
  EXPECT_LT(at10, at14);
  EXPECT_LT(at10, 200.0);  // near-nulled
}

TEST(Fom, CalibrationAndValue) {
  auto c = ckt::make_circuit("opamp2", "180nm");
  kato::util::Rng rng(17);
  const auto norm = ckt::calibrate_fom(*c, 120, rng);
  ASSERT_EQ(norm.weight.size(), c->n_metrics());
  EXPECT_DOUBLE_EQ(norm.weight[0], -1.0);  // objective minimized
  for (std::size_t i = 0; i < norm.weight.size(); ++i)
    EXPECT_LT(norm.f_min[i], norm.f_max[i]);

  // The expert design (feasible, moderate current) must score higher than a
  // random infeasible design on average.
  const auto expert = c->evaluate(c->expert_design());
  ASSERT_TRUE(expert);
  const double expert_fom = ckt::fom_value(norm, *expert);
  double worse = 0.0;
  int n_rand = 0;
  for (int i = 0; i < 20; ++i) {
    const auto m = c->evaluate(rng.uniform_vec(c->dim()));
    if (!m || c->feasible(*m)) continue;
    worse += ckt::fom_value(norm, *m);
    ++n_rand;
  }
  ASSERT_GT(n_rand, 0);
  EXPECT_GT(expert_fom, worse / n_rand);
}

TEST(Fom, ClipsAtBound) {
  ckt::FomNormalization norm;
  norm.f_min = {0.0, 0.0};
  norm.f_max = {10.0, 100.0};
  norm.bound = {10.0, 60.0};
  norm.weight = {-1.0, 1.0};
  // Above the bound, extra constraint margin must not increase the FOM.
  const double at_bound = ckt::fom_value(norm, {5.0, 60.0});
  const double over = ckt::fom_value(norm, {5.0, 90.0});
  EXPECT_DOUBLE_EQ(at_bound, over);
}

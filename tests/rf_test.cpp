#include <gtest/gtest.h>

#include <cmath>

#include "rf/random_forest.hpp"
#include "util/rng.hpp"

namespace rf = kato::rf;

namespace {

double target_fn(const std::vector<double>& x) {
  return std::sin(4.0 * x[0]) + 0.5 * x[1] * x[1];
}

std::pair<std::vector<std::vector<double>>, std::vector<double>> make_data(
    std::size_t n, std::uint64_t seed) {
  kato::util::Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    x.push_back(rng.uniform_vec(2));
    y.push_back(target_fn(x.back()));
  }
  return {x, y};
}

}  // namespace

TEST(RandomForest, FitsSmoothFunction) {
  auto [x, y] = make_data(300, 1);
  rf::RandomForest forest;
  kato::util::Rng rng(2);
  forest.fit(x, y, rng);
  auto [xt, yt] = make_data(60, 3);
  double se = 0.0;
  for (std::size_t i = 0; i < xt.size(); ++i) {
    const auto p = forest.predict(xt[i]);
    se += (p.mean - yt[i]) * (p.mean - yt[i]);
  }
  EXPECT_LT(std::sqrt(se / 60.0), 0.2);  // function range is ~2.5
}

TEST(RandomForest, AccurateInsideTrainingRegionOnly) {
  // Train only on the left part of the box; trees extrapolate with their
  // boundary leaves, so accuracy must degrade on the unseen right side.
  kato::util::Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    auto p = rng.uniform_vec(2);
    p[0] *= 0.4;
    x.push_back(p);
    y.push_back(target_fn(x.back()));
  }
  rf::RandomForest forest;
  forest.fit(x, y, rng);
  double se_in = 0.0;
  double se_out = 0.0;
  for (int i = 0; i < 60; ++i) {
    std::vector<double> in{rng.uniform(0.0, 0.4), rng.uniform()};
    std::vector<double> out{rng.uniform(0.8, 1.0), rng.uniform()};
    se_in += std::pow(forest.predict(in).mean - target_fn(in), 2);
    se_out += std::pow(forest.predict(out).mean - target_fn(out), 2);
  }
  EXPECT_LT(se_in, se_out);
}

TEST(RandomForest, DeterministicGivenSeed) {
  auto [x, y] = make_data(100, 5);
  rf::RandomForest a;
  rf::RandomForest b;
  kato::util::Rng r1(7);
  kato::util::Rng r2(7);
  a.fit(x, y, r1);
  b.fit(x, y, r2);
  std::vector<double> q{0.3, 0.7};
  EXPECT_DOUBLE_EQ(a.predict(q).mean, b.predict(q).mean);
}

TEST(RandomForest, ErrorsOnMisuse) {
  rf::RandomForest forest;
  std::vector<double> q{0.5};
  EXPECT_THROW((void)forest.predict(q), std::logic_error);
  kato::util::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  EXPECT_THROW(forest.fit(x, y, rng), std::invalid_argument);
}

TEST(RandomForest, HandlesConstantTargets) {
  kato::util::Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<double> y(50, 2.5);
  for (int i = 0; i < 50; ++i) x.push_back(rng.uniform_vec(3));
  rf::RandomForest forest;
  forest.fit(x, y, rng);
  const auto p = forest.predict(std::vector<double>{0.5, 0.5, 0.5});
  EXPECT_NEAR(p.mean, 2.5, 1e-9);
}

#!/usr/bin/env python3
"""Render Markdown reports from KATO run journals and stats dumps.

A journal is the JSONL stream produced by KATO_RUN_LOG=<path> (see
src/obs/journal.hpp): one self-contained JSON object per line, with
`run_begin` / `iteration` / `run_end` events per optimization run plus
optional `series_begin` / `series_end` brackets from the experiment harness.
A stats dump is the flat JSON written by KATO_STATS=<path>, which carries the
solver/BO counters, the failure-stage breakdown and the per-stage latency
histogram quantiles.

Usage:
  kato_report.py RUN.jsonl                     single-run convergence report
  kato_report.py RUN.jsonl --stats STATS.json  ... plus latency percentiles
                                               and the failure breakdown
  kato_report.py A.jsonl B.jsonl               A/B diff of two journals
                                               (matched on circuit/mode/
                                               method/seed), used by CI
  kato_report.py RUN.jsonl --check             validate only: every line must
                                               parse, every event must carry
                                               its required keys, and each
                                               run's concatenated iteration
                                               traces must replay its
                                               run_end.regret_curve exactly

Stdlib only, like bench/compare_baseline.py.  Exit code 1 on validation
errors or unreadable inputs.
"""

import argparse
import json
import sys

# Required keys per event type — mirrors the emitters in src/bo/drivers.cpp
# and src/core/experiment.cpp; obs_test pins the same schema from the C++
# side, this tool enforces it on every ingest.
REQUIRED = {
    "run_begin": ["run", "mode", "method", "circuit", "dim", "n_metrics",
                  "seed", "config"],
    "iteration": ["run", "phase", "iter", "sims", "n_prop", "n_valid",
                  "n_feasible", "eval_ms", "proposals", "trace", "best"],
    "run_end": ["run", "sims", "best", "best_x", "stl_w_kat", "stl_w_self",
                "regret_curve"],
    "series_begin": ["name", "circuit", "mode", "n_seeds", "seeds"],
    "series_end": ["name", "circuit", "mode", "n_seeds", "seeds"],
}

STAGES = ["dc", "ac", "tran", "eval", "gp_fit", "acquisition"]
FAIL_KEYS = ["fail_dc", "fail_ac", "fail_tran", "fail_measure"]
RECOVERY_KEYS = [
    "dc_homotopy_escalations", "dc_pseudo_transients",
    "tran_stepfloor_restarts", "tran_device_fallbacks",
    "lu_pivot_fallbacks", "gp_jitter_retries",
    "deadline_kills", "faults_injected",
]


def load_journal(path, errors):
    """Parse a JSONL journal, appending schema problems to `errors`."""
    events = []
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as exc:
        errors.append(f"{path}: {exc}")
        return events
    for i, line in enumerate(lines, 1):
        if not line.strip():
            errors.append(f"{path}:{i}: blank line")
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}:{i}: not valid JSON ({exc})")
            continue
        kind = event.get("event")
        if kind not in REQUIRED:
            errors.append(f"{path}:{i}: unknown event type {kind!r}")
            continue
        missing = [k for k in REQUIRED[kind] if k not in event]
        if missing:
            errors.append(f"{path}:{i}: {kind} missing keys {missing}")
            continue
        events.append(event)
    return events


def group_runs(events, path, errors):
    """Group per-run events by run id and check the replay invariant.

    Run ids are unique within one process but restart at 1 in the next, so a
    journal built by concatenating per-deck runs (the committed CI reference)
    reuses ids; a repeated run_begin for an id opens a new generation rather
    than clobbering the earlier run.
    """
    runs = {}
    generation = {}
    for event in events:
        if "run" not in event:
            continue
        rid = event["run"]
        kind = event["event"]
        if kind == "run_begin":
            generation[rid] = generation.get(rid, -1) + 1
        key = (generation.get(rid, 0), rid)
        run = runs.setdefault(key, {"begin": None, "iters": [], "end": None})
        if kind == "run_begin":
            run["begin"] = event
        elif kind == "iteration":
            run["iters"].append(event)
        elif kind == "run_end":
            run["end"] = event
    for rid, run in sorted(runs.items()):
        if run["begin"] is None:
            errors.append(f"{path}: run {rid_str(rid)} has no run_begin")
        if run["end"] is None:
            # A killed run legitimately leaves a parseable prefix; only
            # --check treats it as an error, reporting still renders it.
            continue
        replay = [v for it in run["iters"] for v in it["trace"]]
        curve = run["end"]["regret_curve"]
        if replay != curve:
            errors.append(
                f"{path}: run {rid_str(rid)} regret_curve does not replay "
                f"from its iteration traces ({len(replay)} vs "
                f"{len(curve)} points)")
        if run["end"]["sims"] != len(curve):
            errors.append(
                f"{path}: run {rid_str(rid)} run_end.sims != curve length")
    return runs


def rid_str(rid):
    generation, run = rid
    return str(run) if generation == 0 else f"{run}#{generation + 1}"


def run_key(run):
    begin = run["begin"]
    return (begin["circuit"], begin["mode"], begin["method"], begin["seed"])


def fmt(value, digits=4):
    if value is None:
        return "inf"  # non-finite best-so-far serializes as null
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def fmt_ns(ns):
    if ns is None:
        return "-"
    if ns >= 1e9:
        return f"{ns / 1e9:.3g} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3g} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3g} us"
    return f"{ns:.0f} ns"


def table(header, rows):
    out = ["| " + " | ".join(header) + " |",
           "|" + "|".join("---" for _ in header) + "|"]
    out += ["| " + " | ".join(row) + " |" for row in rows]
    return out


def report_runs(runs):
    lines = []
    for rid, run in sorted(runs.items()):
        if run["begin"] is None:
            continue
        begin, end = run["begin"], run["end"]
        lines.append(
            f"### Run {rid_str(rid)}: {begin['circuit']} · {begin['method']} "
            f"({begin['mode']}) · seed {begin['seed']}")
        lines.append("")
        rows = []
        for it in run["iters"]:
            gp = it.get("gp") or {}
            rows.append([
                str(it["iter"]), it["phase"], str(it["sims"]),
                f"{it['n_feasible']}/{it['n_prop']}",
                fmt(it["best"]),
                fmt(it["eval_ms"], 3),
                fmt(gp.get("nll")) if gp else "-",
                ("warm" if gp.get("warm") else
                 "cold" if gp.get("hyper") else "-") if gp else "-",
            ])
        lines += table(["iter", "phase", "sims", "feas/prop", "best",
                        "eval ms", "gp nll", "gp fit"], rows)
        lines.append("")
        if end is None:
            lines.append("**run_end missing — journal is a truncated "
                         "prefix (run killed or still in flight).**")
        else:
            lines.append(
                f"**Final:** best {fmt(end['best'])} after {end['sims']} "
                f"simulations; STL weights kat={fmt(end['stl_w_kat'])} "
                f"self={fmt(end['stl_w_self'])}.")
        lines.append("")
    return lines


def report_stats(stats, title="Stage latency percentiles"):
    lines = [f"### {title}", ""]
    rows = []
    for stage in STAGES:
        count = stats.get(f"hist_{stage}_count", 0)
        if count == 0:
            continue
        rows.append([stage, str(count)] + [
            fmt_ns(stats.get(f"hist_{stage}_p{q}_ns")) for q in (50, 90, 99)])
    if rows:
        lines += table(["stage", "count", "p50", "p90", "p99"], rows)
    else:
        lines.append("(no stage durations recorded)")
    lines.append("")
    evals = stats.get("evals", 0)
    failures = stats.get("eval_failures", 0)
    lines.append("### Failure breakdown")
    lines.append("")
    lines.append(f"{failures} of {evals} evaluations failed.")
    if failures:
        lines.append("")
        rows = []
        for key in FAIL_KEYS:
            n = stats.get(key, 0)
            if n:
                rows.append([key.replace("fail_", ""), str(n),
                             f"{100.0 * n / failures:.1f}%"])
        lines += table(["stage", "failures", "share"], rows)
    lines.append("")
    rows = [[key, str(stats.get(key, 0))]
            for key in RECOVERY_KEYS if stats.get(key, 0)]
    if rows:
        lines.append("### Recovery events")
        lines.append("")
        lines += table(["event", "count"], rows)
        lines.append("")
    return lines


def report_ab(runs_a, runs_b, label_a, label_b):
    lines = [f"### A/B: {label_a} vs {label_b}", ""]
    index_b = {run_key(r): r for r in runs_b.values()
               if r["begin"] is not None}
    rows = []
    matched = 0
    for _, run_a in sorted(runs_a.items()):
        if run_a["begin"] is None or run_a["end"] is None:
            continue
        key = run_key(run_a)
        run_b = index_b.get(key)
        if run_b is None or run_b["end"] is None:
            rows.append([" · ".join(map(str, key)), fmt(run_a["end"]["best"]),
                         "-", "-", "unmatched"])
            continue
        matched += 1
        best_a, best_b = run_a["end"]["best"], run_b["end"]["best"]
        if best_a is None or best_b is None:
            delta, verdict = "-", "infeasible"
        else:
            delta = fmt(best_b - best_a)
            verdict = "same" if best_a == best_b else (
                "B better" if (best_b < best_a) == (key[1] == "constrained")
                else "A better")
        rows.append([" · ".join(map(str, key)), fmt(best_a), fmt(best_b),
                     delta, verdict])
    lines += table([f"run (circuit · mode · method · seed)", "best A",
                    "best B", "delta", "verdict"], rows)
    lines.append("")
    lines.append(f"{matched} matched run(s); best is minimized in "
                 "constrained mode, maximized in fom mode.")
    lines.append("")
    return lines


def main():
    parser = argparse.ArgumentParser(
        description="Markdown reports from KATO run journals / stats dumps")
    parser.add_argument("journal", help="run journal (JSONL)")
    parser.add_argument("journal_b", nargs="?",
                        help="second journal for an A/B diff")
    parser.add_argument("--stats", help="KATO_STATS dump for latency/failure "
                                        "tables")
    parser.add_argument("--stats-b", help="second stats dump (A/B)")
    parser.add_argument("--check", action="store_true",
                        help="validate schema and regret replay, no report")
    parser.add_argument("--title", default="KATO run report")
    args = parser.parse_args()

    errors = []
    events_a = load_journal(args.journal, errors)
    runs_a = group_runs(events_a, args.journal, errors)

    if args.check:
        for rid, run in sorted(runs_a.items()):
            if run["end"] is None:
                errors.append(
                    f"{args.journal}: run {rid_str(rid)} has no run_end")
        for err in errors:
            print("CHECK FAIL:", err, file=sys.stderr)
        if errors:
            return 1
        n_iters = sum(len(r["iters"]) for r in runs_a.values())
        print(f"{args.journal}: OK ({len(events_a)} events, "
              f"{len(runs_a)} run(s), {n_iters} iteration record(s))")
        return 0

    lines = [f"## {args.title}", ""]
    if args.journal_b:
        events_b = load_journal(args.journal_b, errors)
        runs_b = group_runs(events_b, args.journal_b, errors)
        lines += report_ab(runs_a, runs_b, args.journal, args.journal_b)
    else:
        lines += report_runs(runs_a)
    if args.stats:
        try:
            lines += report_stats(json.load(open(args.stats)))
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{args.stats}: {exc}")
    if args.stats_b:
        try:
            lines += report_stats(json.load(open(args.stats_b)),
                                  title=f"Stage latency ({args.stats_b})")
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{args.stats_b}: {exc}")

    print("\n".join(lines))
    for err in errors:
        print("WARNING:", err, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

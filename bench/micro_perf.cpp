// Microbenchmarks for the hot paths (google-benchmark): Neuk kernel-matrix
// construction and backward pass, GP fit step and prediction, MNA DC solve
// and AC sweep, NSGA-II generations.

#include <benchmark/benchmark.h>

#include "bo/surrogate.hpp"
#include "circuits/factory.hpp"
#include "gp/gp.hpp"
#include "kernel/neuk.hpp"
#include "moo/nsga2.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "util/sampling.hpp"

using namespace kato;

namespace {

la::Matrix random_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  util::Rng rng(seed);
  la::Matrix x(n, d);
  for (auto& v : x.data()) v = rng.uniform();
  return x;
}

void bm_neuk_matrix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  kern::NeukConfig cfg;
  kern::NeukKernel k(8, cfg, rng);
  const auto x = random_points(n, 8, 2);
  for (auto _ : state) benchmark::DoNotOptimize(k.matrix(x));
}
BENCHMARK(bm_neuk_matrix)->Arg(64)->Arg(128)->Arg(256);

void bm_neuk_backward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  kern::NeukConfig cfg;
  kern::NeukKernel k(8, cfg, rng);
  const auto x = random_points(n, 8, 2);
  la::Matrix dk(n, n, 1.0);
  std::vector<double> grad(k.n_params());
  for (auto _ : state) {
    std::fill(grad.begin(), grad.end(), 0.0);
    k.backward(x, dk, grad);
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(bm_neuk_backward)->Arg(64)->Arg(128);

void bm_gp_fit_step(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  kern::NeukConfig cfg;
  gp::GaussianProcess model(std::make_unique<kern::NeukKernel>(8, cfg, rng));
  const auto x = random_points(n, 8, 4);
  la::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = std::sin(3.0 * x(i, 0)) + x(i, 1);
  model.set_data(x, y);
  gp::GpFitOptions opts;
  opts.iterations = 1;
  for (auto _ : state) {
    model.fit(opts, rng);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(bm_gp_fit_step)->Arg(128)->Arg(256);

void bm_gp_predict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  kern::NeukConfig cfg;
  gp::GaussianProcess model(std::make_unique<kern::NeukKernel>(8, cfg, rng));
  const auto x = random_points(n, 8, 6);
  la::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = std::sin(3.0 * x(i, 0));
  model.set_data(x, y);
  const auto q = rng.uniform_vec(8);
  for (auto _ : state) benchmark::DoNotOptimize(model.predict(q));
}
BENCHMARK(bm_gp_predict)->Arg(128)->Arg(320);

void bm_dc_opamp2(benchmark::State& state) {
  auto circuit = ckt::make_circuit("opamp2", "180nm");
  const auto x = circuit->expert_design();
  for (auto _ : state) benchmark::DoNotOptimize(circuit->evaluate(x));
}
BENCHMARK(bm_dc_opamp2);

void bm_bandgap_eval(benchmark::State& state) {
  auto circuit = ckt::make_circuit("bandgap", "180nm");
  const auto x = circuit->expert_design();
  for (auto _ : state) benchmark::DoNotOptimize(circuit->evaluate(x));
}
BENCHMARK(bm_bandgap_eval);

void bm_nsga2(benchmark::State& state) {
  auto fn = [](const std::vector<double>& x) {
    double g = 0.0;
    for (std::size_t i = 1; i < x.size(); ++i) g += x[i];
    return std::vector<double>{x[0], 1.0 + g - std::sqrt(x[0] / (1.0 + g))};
  };
  moo::Nsga2Options opts;
  opts.population = 32;
  opts.generations = 20;
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(moo::nsga2(fn, 8, 2, opts, rng));
  }
}
BENCHMARK(bm_nsga2);

}  // namespace

BENCHMARK_MAIN();
